// odbgc_analyze — summarize and compare controller decision ledgers
// (odbgc_run --decisions-out) and time-series streams (--timeseries-out).
//
//   odbgc_analyze --ledger=dec.jsonl [--timeseries=ts.jsonl]
//   odbgc_analyze --diff --a=saio.jsonl --b=saga.jsonl
//                 [--label-a=saio --label-b=saga]
//                 [--io-target=PCT --garbage-target=PCT]
//
// Summary mode prints one run's controller behavior: decision counts per
// reason code, how often the chosen interval moved, an oscillation index
// (mean |Δinterval| / mean interval, plus the fraction of consecutive
// moves that reversed direction), estimator error against the verifier
// oracle, and the achieved I/O / garbage percentages against the
// policy's target.
//
// Diff mode reproduces the paper's fig4/fig5 comparison: which of two
// runs tracks an I/O budget more accurately and which tracks a garbage
// target more accurately. Targets default to each run's own recorded
// target (an io%% for saio/coupled, a garbage%% for saga) and can be
// overridden. Verdict lines are stable `diff key=value` text so shell
// gates can grep them.
//
// Exit 0: analyzed fine. Exit 2: usage. Exit 3: unreadable or
// unparseable input.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/json.h"

namespace {

using odbgc::JsonValue;

struct Decision {
  double seq = 0.0;
  double tick = 0.0;
  double collection = 0.0;  // 0 for idle decisions
  std::string policy;
  std::string reason;
  double chosen_interval = 0.0;
  double target = 0.0;
  double io_pct = 0.0;
  double garbage_pct = 0.0;
  double actual_garbage_bytes = 0.0;
  double estimate_bytes = 0.0;
  double db_used_bytes = 0.0;
};

// Everything summary mode prints and diff mode compares.
struct LedgerSummary {
  std::string path;
  size_t decisions = 0;
  size_t idle_decisions = 0;
  std::map<std::string, size_t> policies;
  std::map<std::string, size_t> reasons;
  size_t rate_changes = 0;        // decisions whose interval moved
  double oscillation_index = 0.0; // mean |Δinterval| / mean interval
  double flip_fraction = 0.0;     // direction reversals among moves
  size_t estimator_samples = 0;
  double estimator_error_mean_pp = 0.0;
  double estimator_error_max_pp = 0.0;
  double mean_io_pct = 0.0;
  double mean_garbage_pct = 0.0;
  double mean_target = 0.0;
  // "io" when the dominant policy targets an I/O budget (saio/coupled),
  // "garbage" when it targets a garbage fraction (saga), else "none".
  std::string target_kind = "none";
};

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

double Num(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : 0.0;
}

std::string Str(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value()
                                          : std::string();
}

// Parses one JSONL file; false (with a message) on I/O or parse failure.
bool LoadJsonlObjects(const std::string& path,
                      std::vector<JsonValue>* out, std::string* error) {
  std::string text;
  if (!ReadFile(path, &text)) {
    *error = "cannot read '" + path + "'";
    return false;
  }
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    ++line_no;
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    JsonValue v;
    std::string parse_error;
    if (!JsonValue::Parse(line, &v, &parse_error) || !v.is_object()) {
      *error = path + " line " + std::to_string(line_no) + ": " +
               (parse_error.empty() ? "not an object" : parse_error);
      return false;
    }
    out->push_back(std::move(v));
  }
  return true;
}

bool LoadLedger(const std::string& path, std::vector<Decision>* out,
                std::string* error) {
  std::vector<JsonValue> objects;
  if (!LoadJsonlObjects(path, &objects, error)) return false;
  for (const JsonValue& obj : objects) {
    Decision d;
    d.seq = Num(obj, "seq");
    d.tick = Num(obj, "tick");
    d.collection = Num(obj, "collection");
    d.policy = Str(obj, "policy");
    d.reason = Str(obj, "reason");
    d.chosen_interval = Num(obj, "chosen_interval");
    d.target = Num(obj, "target");
    d.io_pct = Num(obj, "io_pct");
    d.garbage_pct = Num(obj, "garbage_pct");
    d.actual_garbage_bytes = Num(obj, "actual_garbage_bytes");
    d.estimate_bytes = Num(obj, "estimate_bytes");
    d.db_used_bytes = Num(obj, "db_used_bytes");
    out->push_back(std::move(d));
  }
  return true;
}

LedgerSummary Summarize(const std::string& path,
                        const std::vector<Decision>& decisions) {
  LedgerSummary s;
  s.path = path;
  s.decisions = decisions.size();

  double interval_sum = 0.0;
  double abs_delta_sum = 0.0;
  size_t moves = 0;
  size_t flips = 0;
  double prev_interval = 0.0;
  double prev_delta = 0.0;
  bool have_prev = false;
  bool have_prev_delta = false;
  double io_sum = 0.0;
  double garbage_sum = 0.0;
  double target_sum = 0.0;
  double est_err_sum = 0.0;

  for (const Decision& d : decisions) {
    if (d.collection == 0.0) ++s.idle_decisions;
    ++s.policies[d.policy];
    ++s.reasons[d.reason];
    interval_sum += d.chosen_interval;
    io_sum += d.io_pct;
    garbage_sum += d.garbage_pct;
    target_sum += d.target;
    if (have_prev) {
      const double delta = d.chosen_interval - prev_interval;
      if (delta != 0.0) {
        ++s.rate_changes;
        abs_delta_sum += std::fabs(delta);
        ++moves;
        if (have_prev_delta && delta * prev_delta < 0.0) ++flips;
        prev_delta = delta;
        have_prev_delta = true;
      }
    }
    prev_interval = d.chosen_interval;
    have_prev = true;
    if (d.db_used_bytes > 0.0) {
      const double err_pp =
          100.0 *
          std::fabs(d.estimate_bytes - d.actual_garbage_bytes) /
          d.db_used_bytes;
      est_err_sum += err_pp;
      if (err_pp > s.estimator_error_max_pp) {
        s.estimator_error_max_pp = err_pp;
      }
      ++s.estimator_samples;
    }
  }

  const double n = static_cast<double>(s.decisions);
  if (s.decisions > 0) {
    s.mean_io_pct = io_sum / n;
    s.mean_garbage_pct = garbage_sum / n;
    s.mean_target = target_sum / n;
    const double mean_interval = interval_sum / n;
    if (moves > 0 && mean_interval > 0.0) {
      s.oscillation_index =
          (abs_delta_sum / static_cast<double>(moves)) / mean_interval;
    }
    if (moves > 1) {
      s.flip_fraction =
          static_cast<double>(flips) / static_cast<double>(moves - 1);
    }
  }
  if (s.estimator_samples > 0) {
    s.estimator_error_mean_pp =
        est_err_sum / static_cast<double>(s.estimator_samples);
  }

  // Dominant policy decides which quantity `target` denotes.
  size_t best = 0;
  std::string dominant;
  for (const auto& [policy, count] : s.policies) {
    if (count > best) {
      best = count;
      dominant = policy;
    }
  }
  if (dominant == "saio" || dominant == "coupled") {
    s.target_kind = "io";
  } else if (dominant == "saga") {
    s.target_kind = "garbage";
  }
  return s;
}

void PrintSummary(const LedgerSummary& s, const char* label) {
  std::printf("%s ledger=%s\n", label, s.path.c_str());
  std::printf("%s decisions=%zu idle=%zu\n", label, s.decisions,
              s.idle_decisions);
  for (const auto& [policy, count] : s.policies) {
    std::printf("%s policy %s=%zu\n", label, policy.c_str(), count);
  }
  for (const auto& [reason, count] : s.reasons) {
    std::printf("%s reason %s=%zu\n", label, reason.c_str(), count);
  }
  std::printf("%s rate_changes=%zu oscillation_index=%.4f "
              "flip_fraction=%.4f\n",
              label, s.rate_changes, s.oscillation_index, s.flip_fraction);
  std::printf("%s estimator_error_mean_pp=%.4f "
              "estimator_error_max_pp=%.4f\n",
              label, s.estimator_error_mean_pp, s.estimator_error_max_pp);
  std::printf("%s mean_io_pct=%.4f mean_garbage_pct=%.4f "
              "mean_target=%.4f target_kind=%s\n",
              label, s.mean_io_pct, s.mean_garbage_pct, s.mean_target,
              s.target_kind.c_str());
}

// Mean absolute gap between the oracle and estimator garbage gauges
// across time-series frames (the fig6 tracking error). Returns the
// number of frames that carried both gauges.
size_t TimeSeriesTrackingError(const std::vector<JsonValue>& frames,
                               double* mean_gap_pp) {
  size_t samples = 0;
  double gap_sum = 0.0;
  for (const JsonValue& frame : frames) {
    const JsonValue* gauges = frame.Find("gauges");
    if (gauges == nullptr || !gauges->is_object()) continue;
    const JsonValue* actual = gauges->Find("sim.garbage_pct");
    const JsonValue* estimate = gauges->Find("sim.estimator_garbage_pct");
    if (actual == nullptr || !actual->is_number() || estimate == nullptr ||
        !estimate->is_number()) {
      continue;
    }
    gap_sum += std::fabs(actual->number_value() - estimate->number_value());
    ++samples;
  }
  *mean_gap_pp = samples > 0 ? gap_sum / static_cast<double>(samples) : 0.0;
  return samples;
}

// Picks the target for one accuracy axis: an explicit flag wins, then a
// run whose policy natively targets that axis, then the paper's default.
double ResolveTarget(double flag_value, const LedgerSummary& a,
                     const LedgerSummary& b, const std::string& kind) {
  if (flag_value >= 0.0) return flag_value;
  if (a.target_kind == kind && a.decisions > 0) return a.mean_target;
  if (b.target_kind == kind && b.decisions > 0) return b.mean_target;
  return 10.0;
}

}  // namespace

int main(int argc, char** argv) {
  using odbgc::Flags;

  Flags flags;
  std::string error;
  if (!Flags::Parse(argc, argv, &flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const bool help = flags.GetBool("help", false);
  const bool diff = flags.GetBool("diff", false);
  const std::string ledger_path = flags.GetString("ledger", "");
  const std::string timeseries_path = flags.GetString("timeseries", "");
  const std::string a_path = flags.GetString("a", "");
  const std::string b_path = flags.GetString("b", "");
  const std::string label_a = flags.GetString("label-a", "A");
  const std::string label_b = flags.GetString("label-b", "B");
  const double io_target = flags.GetDouble("io-target", -1.0);
  const double garbage_target = flags.GetDouble("garbage-target", -1.0);
  if (help || (diff ? (a_path.empty() || b_path.empty())
                    : ledger_path.empty())) {
    std::fprintf(
        stderr,
        "usage: odbgc_analyze --ledger=DEC.jsonl [--timeseries=TS.jsonl]\n"
        "       odbgc_analyze --diff --a=DEC.jsonl --b=DEC.jsonl\n"
        "                     [--label-a=NAME --label-b=NAME]\n"
        "                     [--io-target=PCT --garbage-target=PCT]\n");
    return help ? 0 : 2;
  }
  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
    return 2;
  }

  if (!diff) {
    std::vector<Decision> decisions;
    if (!LoadLedger(ledger_path, &decisions, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 3;
    }
    PrintSummary(Summarize(ledger_path, decisions), "run");
    if (!timeseries_path.empty()) {
      std::vector<JsonValue> frames;
      if (!LoadJsonlObjects(timeseries_path, &frames, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 3;
      }
      double mean_gap_pp = 0.0;
      const size_t samples = TimeSeriesTrackingError(frames, &mean_gap_pp);
      std::printf("run timeseries_frames=%zu tracking_samples=%zu "
                  "tracking_error_mean_pp=%.4f\n",
                  frames.size(), samples, mean_gap_pp);
    }
    return 0;
  }

  std::vector<Decision> decisions_a;
  std::vector<Decision> decisions_b;
  if (!LoadLedger(a_path, &decisions_a, &error) ||
      !LoadLedger(b_path, &decisions_b, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 3;
  }
  const LedgerSummary a = Summarize(a_path, decisions_a);
  const LedgerSummary b = Summarize(b_path, decisions_b);
  PrintSummary(a, label_a.c_str());
  PrintSummary(b, label_b.c_str());

  const double io_ref = ResolveTarget(io_target, a, b, "io");
  const double garbage_ref = ResolveTarget(garbage_target, a, b, "garbage");
  const double io_dev_a = std::fabs(a.mean_io_pct - io_ref);
  const double io_dev_b = std::fabs(b.mean_io_pct - io_ref);
  const double garbage_dev_a = std::fabs(a.mean_garbage_pct - garbage_ref);
  const double garbage_dev_b = std::fabs(b.mean_garbage_pct - garbage_ref);

  std::printf("diff io_target_pct=%.4f garbage_target_pct=%.4f\n", io_ref,
              garbage_ref);
  std::printf("diff io_dev %s=%.4f %s=%.4f io_accuracy_winner=%s\n",
              label_a.c_str(), io_dev_a, label_b.c_str(), io_dev_b,
              io_dev_a <= io_dev_b ? label_a.c_str() : label_b.c_str());
  std::printf(
      "diff garbage_dev %s=%.4f %s=%.4f garbage_accuracy_winner=%s\n",
      label_a.c_str(), garbage_dev_a, label_b.c_str(), garbage_dev_b,
      garbage_dev_a <= garbage_dev_b ? label_a.c_str() : label_b.c_str());
  std::printf(
      "diff oscillation %s=%.4f %s=%.4f oscillation_winner=%s\n",
      label_a.c_str(), a.oscillation_index, label_b.c_str(),
      b.oscillation_index,
      a.oscillation_index <= b.oscillation_index ? label_a.c_str()
                                                 : label_b.c_str());
  std::printf(
      "diff estimator_error_mean_pp %s=%.4f %s=%.4f estimator_winner=%s\n",
      label_a.c_str(), a.estimator_error_mean_pp, label_b.c_str(),
      b.estimator_error_mean_pp,
      a.estimator_error_mean_pp <= b.estimator_error_mean_pp
          ? label_a.c_str()
          : label_b.c_str());
  return 0;
}
