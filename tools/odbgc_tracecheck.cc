// odbgc_tracecheck — validate a Chrome/Perfetto trace_event JSON file
// produced by odbgc_run --trace-out (or SweepRunner::ExportTrace).
//
//   odbgc_tracecheck run.json
//   odbgc_tracecheck --require-span=collection --require-span=scan t.json
//   odbgc_tracecheck --strict-names t.json
//
// Exit 0: the file parses with util/json, is a trace_event object with a
// traceEvents array, every event carries the required ph/ts/pid/tid
// fields (plus name for non-metadata events and "s" for instants), B/E
// spans balance per tid, and timestamps never decrease within a tid
// (the simulation's tick timebase is monotonic, so a regression means a
// corrupted or reordered export). With --strict-names, every span and
// instant name must come from the known vocabulary below — a tripwire
// for renamed or misspelled emit sites. Exit 1: any violation (each is
// printed).

#include <cstdio>
#include <cstring>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/json.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

// Every span and instant name the simulator emits (--strict-names).
// Grown alongside the emit sites; docs/OBSERVABILITY.md carries the
// same table with the meaning of each.
const char* const kKnownSpanNames[] = {
    "collection", "collection_batch", "copy",           "get_trace",
    "idle_period", "phase",           "plan",           "recovery",
    "remembered_set", "repair",       "run_simulation", "scan",
    "verifier",
};
const char* const kKnownInstantNames[] = {
    "collection_aborted_corrupt",
    "crash",
    "fault_retry",
    "page_read",
    "page_write",
    "policy_decision",
    "quarantine",
    "timeseries_sample",
};

bool NameKnown(const char* const* table, size_t count,
               const std::string& name) {
  for (size_t i = 0; i < count; ++i) {
    if (name == table[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using odbgc::Flags;
  using odbgc::JsonValue;

  Flags flags;
  std::string error;
  if (!Flags::Parse(argc, argv, &flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  // Repeated --require-span flags collapse to the last value in the
  // parser; accept a comma-separated list instead.
  std::string require = flags.GetString("require-span", "");
  const bool strict_names = flags.GetBool("strict-names", false);
  if (flags.GetBool("help", false) || flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: odbgc_tracecheck [--require-span=a,b,...] "
                 "[--strict-names] FILE\n");
    return flags.GetBool("help", false) ? 0 : 2;
  }
  const std::string& path = flags.positional()[0];

  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    return 1;
  }
  JsonValue doc;
  if (!JsonValue::Parse(text, &doc, &error)) {
    std::fprintf(stderr, "invalid JSON: %s\n", error.c_str());
    return 1;
  }
  if (!doc.is_object()) {
    std::fprintf(stderr, "top level is not an object\n");
    return 1;
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "missing traceEvents array\n");
    return 1;
  }

  int violations = 0;
  auto complain = [&](size_t i, const char* what) {
    if (violations < 20) {
      std::fprintf(stderr, "event %zu: %s\n", i, what);
    }
    ++violations;
  };

  // Per-tid span stack depth (B/E balance), last-seen timestamp
  // (monotonicity), and the set of span/instant names seen, for
  // --require-span.
  std::map<double, long> depth;
  std::map<double, double> last_ts;
  std::map<std::string, uint64_t> names_seen;
  const std::vector<JsonValue>& items = events->array_items();
  for (size_t i = 0; i < items.size(); ++i) {
    const JsonValue& e = items[i];
    if (!e.is_object()) {
      complain(i, "not an object");
      continue;
    }
    const JsonValue* ph = e.Find("ph");
    const JsonValue* ts = e.Find("ts");
    const JsonValue* pid = e.Find("pid");
    const JsonValue* tid = e.Find("tid");
    if (ph == nullptr || !ph->is_string() ||
        ph->string_value().size() != 1) {
      complain(i, "missing or malformed ph");
      continue;
    }
    if (ts == nullptr || !ts->is_number()) complain(i, "missing ts");
    if (pid == nullptr || !pid->is_number()) complain(i, "missing pid");
    if (tid == nullptr || !tid->is_number()) complain(i, "missing tid");
    const char phc = ph->string_value()[0];
    const JsonValue* name = e.Find("name");
    if (name == nullptr || !name->is_string()) {
      complain(i, "missing name");
      continue;
    }
    if (tid == nullptr || !tid->is_number()) continue;
    // The simulation's tick timebase only moves forward: within a tid,
    // a decreasing ts means a reordered or corrupted export. Metadata
    // ('M') events carry no meaningful ts and are exempt.
    if (phc != 'M' && ts != nullptr && ts->is_number()) {
      const double tid_key = tid->number_value();
      auto it = last_ts.find(tid_key);
      if (it != last_ts.end() && ts->number_value() < it->second) {
        complain(i, "ts decreased within tid");
      } else {
        last_ts[tid_key] = ts->number_value();
      }
    }
    switch (phc) {
      case 'B':
        ++depth[tid->number_value()];
        ++names_seen[name->string_value()];
        if (strict_names &&
            !NameKnown(kKnownSpanNames, std::size(kKnownSpanNames),
                       name->string_value())) {
          complain(i, "span name outside the known vocabulary");
        }
        break;
      case 'E':
        if (--depth[tid->number_value()] < 0) {
          complain(i, "E without matching B");
        }
        break;
      case 'i': {
        const JsonValue* s = e.Find("s");
        if (s == nullptr || !s->is_string()) {
          complain(i, "instant missing scope \"s\"");
        }
        ++names_seen[name->string_value()];
        if (strict_names &&
            !NameKnown(kKnownInstantNames, std::size(kKnownInstantNames),
                       name->string_value())) {
          complain(i, "instant name outside the known vocabulary");
        }
        break;
      }
      case 'C':
      case 'M':
        break;
      default:
        complain(i, "unknown ph");
        break;
    }
  }
  for (const auto& [tid, d] : depth) {
    if (d != 0) {
      std::fprintf(stderr, "tid %.0f: %ld unclosed span(s)\n", tid, d);
      ++violations;
    }
  }

  // Required span/instant names (comma-separated).
  size_t pos = 0;
  while (pos < require.size()) {
    size_t comma = require.find(',', pos);
    if (comma == std::string::npos) comma = require.size();
    std::string want = require.substr(pos, comma - pos);
    pos = comma + 1;
    if (want.empty()) continue;
    if (names_seen.find(want) == names_seen.end()) {
      std::fprintf(stderr, "required span '%s' never appears\n",
                   want.c_str());
      ++violations;
    }
  }

  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
    return 2;
  }
  if (violations > 0) {
    std::fprintf(stderr, "%d violation(s) in %zu events\n", violations,
                 items.size());
    return 1;
  }
  std::printf("ok: %zu events, %zu distinct span/instant names\n",
              items.size(), names_seen.size());
  return 0;
}
