#!/usr/bin/env bash
# Telemetry-overhead gate: the policy hot paths must not pay for the
# telemetry layer when it is compiled in but idle (no Telemetry object
# attached). Builds bench/micro_policy_overhead twice — with
# -DODBGC_TELEMETRY=OFF and with the default ON — runs both, and fails
# if the *geometric mean* of the per-benchmark regressions exceeds the
# budget (2% by default; override: TOLERANCE_PCT=N).
#
# Why the geomean and not per-benchmark gates: these functions run in
# 1.5–20 ns, where code placement alone (function alignment, BTB
# aliasing) moves any single benchmark by ±10% between otherwise
# identical binaries — we normalize with -falign-functions=64 and
# average across the suite so placement luck cancels out while a real
# across-the-board regression still trips the gate. Per-benchmark
# deltas are printed for inspection either way.
#
# Why interleaved rounds: running the whole OFF suite then the whole ON
# suite bakes machine drift (thermal throttle, noisy neighbors) into
# one side of every comparison — on a busy host that alone swings the
# geomean by ±8%. Instead the two binaries run alternately for ROUNDS
# rounds (default 3) and each benchmark keeps its per-side minimum:
# minima discard slow outliers, and interleaving gives both sides the
# same exposure to any drift.
#
# Usage: tools/check_overhead.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."

prefix="${1:-build-overhead}"
tolerance="${TOLERANCE_PCT:-2}"
repetitions="${REPETITIONS:-5}"
rounds="${ROUNDS:-3}"

build() {
  local dir="$1" telemetry="$2"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
      -DODBGC_TELEMETRY="$telemetry" \
      -DCMAKE_CXX_FLAGS="-falign-functions=64" > /dev/null
  cmake --build "$dir" -j "$(nproc)" --target micro_policy_overhead \
      > /dev/null
}

run_once() {
  local dir="$1" out="$2"
  "./$dir/bench/micro_policy_overhead" \
      --benchmark_repetitions="$repetitions" \
      --benchmark_report_aggregates_only=true \
      --benchmark_format=json > "$out"
}

tmpdir="$(mktemp -d /tmp/overhead.XXXXXX)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== building micro_policy_overhead (ODBGC_TELEMETRY=OFF)"
build "$prefix-off" OFF
echo "== building micro_policy_overhead (ODBGC_TELEMETRY=ON)"
build "$prefix-on" ON
echo "== running $rounds interleaved OFF/ON rounds (idle telemetry)"
for round in $(seq 1 "$rounds"); do
  run_once "$prefix-off" "$tmpdir/off_$round.json"
  run_once "$prefix-on" "$tmpdir/on_$round.json"
done

python3 - "$tmpdir" "$rounds" "$tolerance" <<'PY'
import json
import math
import sys

tmpdir, rounds, tolerance = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])

def medians(path):
    with open(path) as f:
        doc = json.load(f)
    # With aggregate reporting each benchmark yields *_mean/_median/
    # _stddev entries; keep the median real time.
    return {b["run_name"]: b["real_time"] for b in doc["benchmarks"]
            if b.get("aggregate_name") == "median"}

def best(side):
    runs = [medians(f"{tmpdir}/{side}_{r}.json")
            for r in range(1, rounds + 1)]
    return {name: min(run[name] for run in runs if name in run)
            for name in runs[0]}

off = best("off")
on = best("on")
common = sorted(set(off) & set(on))
if not common:
    sys.exit("no common benchmarks between the two runs")

log_ratios = []
print(f"{'benchmark':<44} {'off (ns)':>10} {'on (ns)':>10} {'delta':>8}")
for name in common:
    ratio = on[name] / off[name]
    log_ratios.append(math.log(ratio))
    print(f"{name:<44} {off[name]:>10.2f} {on[name]:>10.2f} "
          f"{(ratio - 1) * 100:>+7.2f}%")

geomean_pct = (math.exp(sum(log_ratios) / len(log_ratios)) - 1) * 100
print(f"\ngeomean idle-telemetry overhead over {len(common)} benchmarks: "
      f"{geomean_pct:+.2f}% (budget {tolerance}%)")
if geomean_pct > tolerance:
    sys.exit("FAIL: idle-telemetry overhead exceeds the budget")
print("OK")
PY
