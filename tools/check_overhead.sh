#!/usr/bin/env bash
# Telemetry-overhead gate: the policy hot paths must not pay for the
# telemetry layer when it is compiled in but idle (no Telemetry object
# attached). Builds bench/micro_policy_overhead twice — with
# -DODBGC_TELEMETRY=OFF and with the default ON — runs both, and fails
# if the *geometric mean* of the per-benchmark median regressions
# exceeds the budget (2% by default; override: TOLERANCE_PCT=N).
#
# Why the geomean and not per-benchmark gates: these functions run in
# 1.5–20 ns, where code placement alone (function alignment, BTB
# aliasing) moves any single benchmark by ±10% between otherwise
# identical binaries — we normalize with -falign-functions=64 and
# average across the suite so placement luck cancels out while a real
# across-the-board regression still trips the gate. Per-benchmark
# deltas are printed for inspection either way.
#
# Usage: tools/check_overhead.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."

prefix="${1:-build-overhead}"
tolerance="${TOLERANCE_PCT:-2}"
repetitions="${REPETITIONS:-7}"

build_and_run() {
  local dir="$1" telemetry="$2" out="$3"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
      -DODBGC_TELEMETRY="$telemetry" \
      -DCMAKE_CXX_FLAGS="-falign-functions=64" > /dev/null
  cmake --build "$dir" -j "$(nproc)" --target micro_policy_overhead \
      > /dev/null
  "./$dir/bench/micro_policy_overhead" \
      --benchmark_repetitions="$repetitions" \
      --benchmark_report_aggregates_only=true \
      --benchmark_format=json > "$out"
}

off_json="$(mktemp /tmp/overhead_off.XXXXXX.json)"
on_json="$(mktemp /tmp/overhead_on.XXXXXX.json)"
trap 'rm -f "$off_json" "$on_json"' EXIT

echo "== building + running micro_policy_overhead (ODBGC_TELEMETRY=OFF)"
build_and_run "$prefix-off" OFF "$off_json"
echo "== building + running micro_policy_overhead (ODBGC_TELEMETRY=ON, idle)"
build_and_run "$prefix-on" ON "$on_json"

python3 - "$off_json" "$on_json" "$tolerance" <<'PY'
import json
import math
import sys

off_path, on_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])

def medians(path):
    with open(path) as f:
        doc = json.load(f)
    # With aggregate reporting each benchmark yields *_mean/_median/
    # _stddev entries; keep the median real time.
    return {b["run_name"]: b["real_time"] for b in doc["benchmarks"]
            if b.get("aggregate_name") == "median"}

off = medians(off_path)
on = medians(on_path)
common = sorted(set(off) & set(on))
if not common:
    sys.exit("no common benchmarks between the two runs")

log_ratios = []
print(f"{'benchmark':<44} {'off (ns)':>10} {'on (ns)':>10} {'delta':>8}")
for name in common:
    ratio = on[name] / off[name]
    log_ratios.append(math.log(ratio))
    print(f"{name:<44} {off[name]:>10.2f} {on[name]:>10.2f} "
          f"{(ratio - 1) * 100:>+7.2f}%")

geomean_pct = (math.exp(sum(log_ratios) / len(log_ratios)) - 1) * 100
print(f"\ngeomean idle-telemetry overhead over {len(common)} benchmarks: "
      f"{geomean_pct:+.2f}% (budget {tolerance}%)")
if geomean_pct > tolerance:
    sys.exit("FAIL: idle-telemetry overhead exceeds the budget")
print("OK")
PY
