// odbgc_traceinfo — inspect a binary trace file.
//
//   odbgc_traceinfo app.trace

#include <cstdio>
#include <string>
#include <vector>

#include "sim/trace_analysis.h"
#include "tools/tool_common.h"
#include "trace/trace.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace odbgc;
  Flags flags;
  std::string error;
  if (!Flags::Parse(argc, argv, &flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  bool assumptions = flags.GetBool("assumptions", false);
  if (flags.GetBool("help", false) || flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: odbgc_traceinfo [--assumptions] FILE\n"
                 "  --assumptions  profile the trace against the policies'\n"
                 "                 assumptions (garbage-per-overwrite rate,\n"
                 "                 burstiness, benign-overwrite share)\n");
    return flags.GetBool("help", false) ? 0 : 2;
  }
  const std::string& path = flags.positional()[0];
  Trace trace;
  if (!Trace::LoadFrom(path, &trace)) {
    std::fprintf(stderr, "error: cannot read trace '%s'\n", path.c_str());
    return 1;
  }

  Trace::Summary s = trace.Summarize();
  std::printf("%s: %zu events\n", path.c_str(), trace.size());
  std::printf("  creates        %10llu  (%.2f MB, avg %.1f B/object)\n",
              static_cast<unsigned long long>(s.creates),
              s.created_bytes / 1.0e6,
              s.creates ? static_cast<double>(s.created_bytes) /
                              static_cast<double>(s.creates)
                        : 0.0);
  std::printf("  reads          %10llu\n",
              static_cast<unsigned long long>(s.reads));
  std::printf("  pointer writes %10llu\n",
              static_cast<unsigned long long>(s.write_refs));
  std::printf("  garbage marks  %10llu  (%.2f MB in %llu objects)\n",
              static_cast<unsigned long long>(s.garbage_marks),
              s.ground_truth_garbage_bytes / 1.0e6,
              static_cast<unsigned long long>(
                  s.ground_truth_garbage_objects));

  // Per-phase event breakdown.
  struct Segment {
    Phase phase;
    uint64_t events = 0;
    uint64_t creates = 0;
    uint64_t writes = 0;
    uint64_t garbage_bytes = 0;
  };
  std::vector<Segment> segments;
  uint64_t idle_marks = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == EventKind::kPhaseMark) {
      segments.push_back(Segment{static_cast<Phase>(e.a)});
      continue;
    }
    if (e.kind == EventKind::kIdleMark) ++idle_marks;
    if (segments.empty()) continue;
    Segment& seg = segments.back();
    ++seg.events;
    if (e.kind == EventKind::kCreate) ++seg.creates;
    if (e.kind == EventKind::kWriteRef) ++seg.writes;
    if (e.kind == EventKind::kGarbageMark) seg.garbage_bytes += e.a;
  }
  if (!segments.empty()) {
    std::printf("  phases:\n");
    for (const Segment& seg : segments) {
      std::printf("    %-9s %9llu events, %7llu creates, %7llu writes, "
                  "%6.2f MB garbage\n",
                  PhaseName(seg.phase).c_str(),
                  static_cast<unsigned long long>(seg.events),
                  static_cast<unsigned long long>(seg.creates),
                  static_cast<unsigned long long>(seg.writes),
                  seg.garbage_bytes / 1.0e6);
    }
  }
  if (idle_marks > 0) {
    std::printf("  idle windows   %10llu\n",
                static_cast<unsigned long long>(idle_marks));
  }

  if (assumptions) {
    AssumptionReport a = AnalyzeAssumptions(trace);
    std::printf("assumption profile (windows of %llu overwrites):\n",
                static_cast<unsigned long long>(a.window_overwrites));
    std::printf("  pointer overwrites      %llu\n",
                static_cast<unsigned long long>(a.pointer_overwrites));
    std::printf("  garbage per overwrite   %.1f B overall\n",
                a.garbage_per_overwrite);
    std::printf("  windowed rate           mean %.1f, stddev %.1f, max "
                "%.1f B/ow\n",
                a.window_gpo.mean(), a.window_gpo.stddev(),
                a.window_gpo.max());
    std::printf("  burstiness              %.2f (garbage share of the "
                "busiest 10%% of windows)\n",
                a.burstiness);
    std::printf("  benign overwrite share  <= %.2f\n",
                a.benign_overwrite_fraction);
    std::printf("  reading it: wide windowed spread or burstiness near 1 "
                "predicts SAGA\n  estimation trouble; a high benign share "
                "weakens UpdatedPointer and FGS\n  (see "
                "bench/ext_assumption_stress).\n");
  }
  return 0;
}
