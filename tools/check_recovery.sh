#!/usr/bin/env bash
# Crash-anywhere recovery fuzzer over the odbgc_run CLI: runs a golden
# OO7 simulation to completion, then repeatedly kills the same run at
# randomized event indices (--crash-at-event), resumes each victim from
# its last checkpoint, and requires the resumed report to be
# byte-identical to the golden one.
#
# Usage: tools/check_recovery.sh [build-dir]
#   ODBGC_RECOVERY_KILLS   kill points to try (default 50)
#   ODBGC_RECOVERY_SEED    RNG seed for the kill schedule (default 1)
#   ODBGC_RECOVERY_OO7     OO7 preset (default tiny; small' = smallprime)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
RUN="$BUILD_DIR/tools/odbgc_run"
KILLS="${ODBGC_RECOVERY_KILLS:-50}"
SEED="${ODBGC_RECOVERY_SEED:-1}"
OO7="${ODBGC_RECOVERY_OO7:-tiny}"

if [[ ! -x "$RUN" ]]; then
  echo "error: $RUN not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

WORK="$(mktemp -d /tmp/odbgc_recovery.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

run_one() {  # policy
  local policy="$1"
  local golden="$WORK/golden-$policy.json"
  local ckpt="$WORK/run-$policy.ckpt"

  "$RUN" --workload=oo7 --oo7="$OO7" --policy="$policy" --seed=4 \
      --json="$golden" > /dev/null
  # Event count bounds the kill range; read it from the golden report.
  local events
  events="$(python3 -c "
import json
print(json.load(open('$golden'))['events'])")"

  echo "== $policy: $KILLS random kill points over $events events =="
  local resumed_count=0
  for ((i = 0; i < KILLS; ++i)); do
    # Deterministic kill schedule: a python LCG keyed by (seed, i).
    local kill
    kill="$(python3 -c "
x = ($SEED * 2654435761 + $i) & 0xFFFFFFFFFFFFFFFF
x = (x * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
print(1 + (x >> 33) % ($events - 1))")"
    rm -f "$ckpt" "$ckpt.prev" "$ckpt.tmp"

    set +e
    "$RUN" --workload=oo7 --oo7="$OO7" --policy="$policy" --seed=4 \
        --checkpoint="$ckpt" --checkpoint-every=500 \
        --crash-at-event="$kill" > /dev/null 2>&1
    local crash_exit=$?
    set -e
    if [[ $crash_exit -ne 5 ]]; then
      echo "FAIL: kill at event $kill exited $crash_exit, want 5" >&2
      exit 1
    fi
    [[ -f "$ckpt" ]] && resumed_count=$((resumed_count + 1))

    local resumed="$WORK/resumed-$policy.json"
    "$RUN" --workload=oo7 --oo7="$OO7" --policy="$policy" --seed=4 \
        --checkpoint="$ckpt" --resume --json="$resumed" > /dev/null 2>&1
    if ! cmp -s "$golden" "$resumed"; then
      echo "FAIL: resume after kill at event $kill diverged from golden" >&2
      diff <(head -c 400 "$golden") <(head -c 400 "$resumed") >&2 || true
      exit 1
    fi
  done
  echo "   $KILLS/$KILLS byte-identical ($resumed_count resumed from a checkpoint)"
}

run_one saio
run_one saga

echo "OK: crash-anywhere recovery fuzz green ($((2 * KILLS)) kill points)"
