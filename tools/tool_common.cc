#include "tools/tool_common.h"

#include <cstdio>

#include "core/alloc_triggered.h"
#include "core/saio.h"
#include "oo7/generator.h"
#include "workloads/synthetic.h"

namespace odbgc::tools {

bool BuildOo7Params(const Flags& flags, Oo7Params* params,
                    std::string* error) {
  std::string preset = flags.GetString("oo7", "smallprime");
  if (preset == "smallprime") {
    *params = Oo7Params::SmallPrime();
  } else if (preset == "small") {
    *params = Oo7Params::Small();
  } else if (preset == "tiny") {
    *params = Oo7Params::Tiny();
  } else {
    *error = "unknown --oo7 preset '" + preset + "'";
    return false;
  }
  params->num_conn_per_atomic = static_cast<uint32_t>(
      flags.GetInt("connectivity", params->num_conn_per_atomic));
  params->num_modules =
      static_cast<uint32_t>(flags.GetInt("modules", params->num_modules));
  return true;
}

bool BuildWorkloadTrace(const Flags& flags, Trace* trace,
                        std::string* error) {
  std::string workload = flags.GetString("workload", "oo7");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  if (workload == "oo7") {
    Oo7Params params;
    if (!BuildOo7Params(flags, &params, error)) return false;
    Oo7Generator gen(params, seed);
    int64_t idle = flags.GetInt("idle-after-reorg1", 0);
    std::string app = flags.GetString("app", "yny");
    if (app == "yny") {
      // The paper's four-phase Yong/Naughton/Yu application.
      trace->Append(PhaseMarkEvent(Phase::kGenDb));
      gen.GenDb(trace);
      trace->Append(PhaseMarkEvent(Phase::kReorg1));
      gen.Reorg1(trace);
      if (idle != 0) trace->Append(IdleMarkEvent(static_cast<uint32_t>(idle)));
      trace->Append(PhaseMarkEvent(Phase::kTraverse));
      gen.Traverse(trace);
      trace->Append(PhaseMarkEvent(Phase::kReorg2));
      gen.Reorg2(trace);
    } else if (app == "structural") {
      // Rounds of whole-composite churn interleaved with traversals.
      int64_t rounds = flags.GetInt("rounds", 6);
      int64_t per_round = flags.GetInt("per-round", 10);
      trace->Append(PhaseMarkEvent(Phase::kGenDb));
      gen.GenDb(trace);
      for (int64_t r = 0; r < rounds; ++r) {
        trace->Append(PhaseMarkEvent(Phase::kReorg1));
        gen.StructuralDelete(trace, static_cast<int>(per_round));
        gen.StructuralInsert(trace, static_cast<int>(per_round));
        if (idle != 0 && r == 0) {
          trace->Append(IdleMarkEvent(static_cast<uint32_t>(idle)));
        }
        trace->Append(PhaseMarkEvent(Phase::kTraverse));
        gen.TraverseT6(trace);
      }
    } else if (app == "t2") {
      // Build, then an update-heavy traversal (OO7 T2b/T2c style).
      int64_t updates = flags.GetInt("updates-per-part", 1);
      trace->Append(PhaseMarkEvent(Phase::kGenDb));
      gen.GenDb(trace);
      trace->Append(PhaseMarkEvent(Phase::kTraverse));
      gen.TraverseT2(trace, static_cast<int>(updates));
    } else {
      *error = "unknown --app '" + app + "' (yny|structural|t2)";
      return false;
    }
    return true;
  }
  if (workload == "uniform-churn") {
    UniformChurnOptions o;
    o.seed = seed;
    o.cycles = static_cast<int>(flags.GetInt("cycles", o.cycles));
    o.list_count = static_cast<int>(flags.GetInt("lists", o.list_count));
    o.target_length =
        static_cast<int>(flags.GetInt("length", o.target_length));
    *trace = MakeUniformChurn(o);
    return true;
  }
  if (workload == "bursty-deletes") {
    BurstyDeleteOptions o;
    o.seed = seed;
    o.bursts = static_cast<int>(flags.GetInt("bursts", o.bursts));
    o.quiet_cycles_per_burst = static_cast<int>(
        flags.GetInt("quiet-cycles", o.quiet_cycles_per_burst));
    o.lists_per_burst =
        static_cast<int>(flags.GetInt("lists", o.lists_per_burst));
    o.list_length = static_cast<int>(flags.GetInt("length", o.list_length));
    *trace = MakeBurstyDeletes(o);
    return true;
  }
  if (workload == "growing-db") {
    GrowingDatabaseOptions o;
    o.seed = seed;
    o.cycles = static_cast<int>(flags.GetInt("cycles", o.cycles));
    o.retain_every =
        static_cast<int>(flags.GetInt("retain-every", o.retain_every));
    *trace = MakeGrowingDatabase(o);
    return true;
  }
  if (workload == "message-queue") {
    MessageQueueOptions o;
    o.seed = seed;
    o.cycles = static_cast<int>(flags.GetInt("cycles", o.cycles));
    o.batch = static_cast<int>(flags.GetInt("batch", o.batch));
    *trace = MakeMessageQueue(o);
    return true;
  }
  *error = "unknown --workload '" + workload + "'";
  return false;
}

bool BuildSimConfig(const Flags& flags, SimConfig* config,
                    std::string* error) {
  config->store.partition_bytes =
      static_cast<uint32_t>(flags.GetInt("partition-kb", 96)) * 1024;
  config->store.page_bytes =
      static_cast<uint32_t>(flags.GetInt("page-kb", 8)) * 1024;
  config->store.buffer_pages =
      static_cast<uint32_t>(flags.GetInt("buffer-pages", 12));
  config->preamble_collections =
      static_cast<uint32_t>(flags.GetInt("preamble", 10));
  config->store.enable_disk_timing = flags.GetBool("disk-timing", false);

  std::string policy = flags.GetString("policy", "saga");
  if (policy == "fixed") {
    config->policy = PolicyKind::kFixedRate;
    config->fixed_rate_overwrites =
        static_cast<uint64_t>(flags.GetInt("rate", 200));
  } else if (policy == "heuristic") {
    config->policy = PolicyKind::kConnectivityHeuristic;
  } else if (policy == "alloc-rate") {
    config->policy = PolicyKind::kAllocationRate;
    config->allocation_rate_bytes =
        static_cast<uint64_t>(flags.GetInt("alloc-bytes", 96 * 1024));
  } else if (policy == "alloc-triggered") {
    config->policy = PolicyKind::kAllocationTriggered;
  } else if (policy == "saio") {
    config->policy = PolicyKind::kSaio;
    config->saio_frac = flags.GetDouble("saio-frac", 0.10);
    std::string hist = flags.GetString("hist", "0");
    config->saio_history = hist == "inf"
                               ? SaioPolicy::kInfiniteHistory
                               : static_cast<size_t>(std::stoll(hist));
    config->saio_opportunism = flags.GetBool("opportunism", false);
  } else if (policy == "saga") {
    config->policy = PolicyKind::kSaga;
    config->saga.garbage_frac = flags.GetDouble("saga-frac", 0.10);
    config->saga.opportunism = flags.GetBool("opportunism", false);
  } else if (policy == "coupled") {
    config->policy = PolicyKind::kCoupled;
    config->coupled.io_frac = flags.GetDouble("saio-frac", 0.10);
    config->coupled.garbage_ref_frac = flags.GetDouble("ref-frac", 0.10);
  } else {
    *error = "unknown --policy '" + policy + "'";
    return false;
  }

  std::string estimator = flags.GetString("estimator", "fgshb");
  if (estimator == "oracle") {
    config->estimator = EstimatorKind::kOracle;
  } else if (estimator == "cgscb") {
    config->estimator = EstimatorKind::kCgsCb;
  } else if (estimator == "cgshb") {
    config->estimator = EstimatorKind::kCgsHb;
  } else if (estimator == "fgscb") {
    config->estimator = EstimatorKind::kFgsCb;
  } else if (estimator == "fgshb") {
    config->estimator = EstimatorKind::kFgsHb;
  } else {
    *error = "unknown --estimator '" + estimator + "'";
    return false;
  }
  config->fgs_history_factor = flags.GetDouble("history-factor", 0.8);

  std::string selector = flags.GetString("selector", "updated");
  if (selector == "updated") {
    config->selector = SelectorKind::kUpdatedPointer;
  } else if (selector == "random") {
    config->selector = SelectorKind::kRandom;
  } else if (selector == "roundrobin") {
    config->selector = SelectorKind::kRoundRobin;
  } else if (selector == "oracle") {
    config->selector = SelectorKind::kMostGarbageOracle;
  } else if (selector == "lru") {
    config->selector = SelectorKind::kLeastRecentlyCollected;
  } else if (selector == "density") {
    config->selector = SelectorKind::kOverwriteDensity;
  } else {
    *error = "unknown --selector '" + selector + "'";
    return false;
  }
  config->selector_seed = static_cast<uint64_t>(flags.GetInt("seed", 1)) *
                              7919 + 17;

  // Fault injection & self-healing. All defaults are "off": a run that
  // passes none of these stays byte-identical to a faultless build.
  FaultPlan& fault = config->store.fault;
  fault.read_fault_prob = flags.GetDouble("read-fault-prob", 0.0);
  fault.write_fault_prob = flags.GetDouble("write-fault-prob", 0.0);
  fault.torn_write_prob = flags.GetDouble("torn-prob", 0.0);
  fault.bitflip_prob = flags.GetDouble("bitflip-prob", 0.0);
  fault.decay_prob = flags.GetDouble("decay-prob", 0.0);
  fault.decay_latency = static_cast<uint32_t>(
      flags.GetInt("decay-latency", fault.decay_latency));
  fault.dead_page_prob = flags.GetDouble("dead-page-prob", 0.0);
  fault.dead_partition_prob = flags.GetDouble("dead-partition-prob", 0.0);
  fault.seed = static_cast<uint64_t>(
      flags.GetInt("fault-seed", static_cast<int64_t>(fault.seed)));
  fault.commit_protocol = flags.GetBool("commit-protocol", false);
  config->scrub_interval_events =
      static_cast<uint32_t>(flags.GetInt("scrub-interval", 0));
  config->scrub_pages_per_quantum = static_cast<uint32_t>(
      flags.GetInt("scrub-pages", config->scrub_pages_per_quantum));
  config->auto_repair = !flags.GetBool("no-auto-repair", false);
  config->verify_after_repair =
      !flags.GetBool("no-verify-after-repair", false);

  // Capacity & overload governor. All defaults are "off": uncapped,
  // ungoverned runs stay byte-identical to pre-governor builds.
  config->store.max_db_bytes =
      static_cast<uint64_t>(flags.GetInt("max-db-mb", 0)) * 1024 * 1024;
  GovernorConfig& gov = config->governor;
  gov.enabled = flags.GetBool("governor", false);
  gov.yellow_frac = flags.GetDouble("governor-yellow", gov.yellow_frac);
  gov.red_frac = flags.GetDouble("governor-red", gov.red_frac);
  gov.hysteresis_frac =
      flags.GetDouble("governor-hysteresis", gov.hysteresis_frac);
  gov.check_interval_events = static_cast<uint32_t>(
      flags.GetInt("governor-check-interval", gov.check_interval_events));
  gov.boost_interval_overwrites = static_cast<uint64_t>(flags.GetInt(
      "governor-boost-interval",
      static_cast<int64_t>(gov.boost_interval_overwrites)));
  gov.emergency_max_collections = static_cast<uint32_t>(flags.GetInt(
      "governor-emergency-max", gov.emergency_max_collections));
  gov.safe_mode_divergence_frac = flags.GetDouble(
      "safe-mode-divergence", gov.safe_mode_divergence_frac);
  gov.safe_mode_flip_frac =
      flags.GetDouble("safe-mode-flip", gov.safe_mode_flip_frac);
  gov.safe_mode_fixed_interval = static_cast<uint64_t>(flags.GetInt(
      "safe-mode-rate", static_cast<int64_t>(gov.safe_mode_fixed_interval)));
  if (gov.enabled &&
      (gov.yellow_frac <= 0.0 || gov.yellow_frac > gov.red_frac ||
       gov.red_frac > 1.0)) {
    *error = "--governor-yellow/--governor-red must satisfy "
             "0 < yellow <= red <= 1";
    return false;
  }
  return true;
}

void PrintCommonUsage() {
  std::fprintf(stderr, R"(Workload flags:
  --workload=oo7|uniform-churn|bursty-deletes|growing-db|message-queue
  --seed=N
  oo7:     --oo7=smallprime|small|tiny --connectivity=3|6|9 --modules=N
           --app=yny|structural|t2  (default yny, the paper's application)
           --idle-after-reorg1=MAXCOLLS   (insert a quiescent window)
           structural: --rounds=N --per-round=N;  t2: --updates-per-part=N
  others:  --cycles --lists --length --bursts --quiet-cycles
           --retain-every --batch

Simulation flags:
  --policy=fixed|heuristic|alloc-rate|alloc-triggered|saio|saga|coupled
  --rate=N (fixed)  --saio-frac=F  --hist=N|inf  --saga-frac=F
  --ref-frac=F (coupled)  --opportunism
  --estimator=oracle|cgscb|cgshb|fgscb|fgshb  --history-factor=H
  --selector=updated|random|roundrobin|oracle|lru|density
  --partition-kb=96 --page-kb=8 --buffer-pages=12 --preamble=10
  --disk-timing   (report simulated elapsed disk time)

Fault injection & self-healing:
  --read-fault-prob=F --write-fault-prob=F   (transient, retried)
  --torn-prob=F                              (torn write, repaired on read)
  --bitflip-prob=F --decay-prob=F --decay-latency=N   (silent corruption,
                   caught by checksum on read or by the scrubber)
  --dead-page-prob=F --dead-partition-prob=F (permanent device faults)
  --fault-seed=N --commit-protocol
  --scrub-interval=EVENTS --scrub-pages=N    (background media scrub)
  --no-auto-repair --no-verify-after-repair

Capacity & overload governor:
  --max-db-mb=N       (capacity ceiling; exhausting it exits 6)
  --governor          (enable the pressure governor)
  --governor-yellow=F --governor-red=F --governor-hysteresis=F
  --governor-check-interval=EVENTS --governor-boost-interval=OVERWRITES
  --governor-emergency-max=N
  --safe-mode-divergence=F --safe-mode-flip=F --safe-mode-rate=OVERWRITES
)");
}

bool CheckNoUnusedFlags(const Flags& flags, std::string* error) {
  std::vector<std::string> unused = flags.UnusedKeys();
  if (unused.empty()) return true;
  *error = "unknown flag(s):";
  for (const std::string& k : unused) *error += " --" + k;
  return false;
}

}  // namespace odbgc::tools
