// odbgc_tracegen — generate an application trace to a binary file.
//
//   odbgc_tracegen --out=app.trace --workload=oo7 --connectivity=6
//   odbgc_tracegen --out=q.trace --workload=message-queue --cycles=50000

#include <cstdio>
#include <string>

#include "tools/tool_common.h"
#include "trace/trace.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace odbgc;
  Flags flags;
  std::string error;
  if (!Flags::Parse(argc, argv, &flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::fprintf(stderr,
                 "usage: odbgc_tracegen --out=FILE [workload flags]\n");
    tools::PrintCommonUsage();
    return 0;
  }
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out=FILE is required (--help for usage)\n");
    return 2;
  }

  Trace trace;
  if (!tools::BuildWorkloadTrace(flags, &trace, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  // Simulation flags are not meaningful here, but tolerate none: catch
  // typos early.
  if (!tools::CheckNoUnusedFlags(flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!trace.SaveTo(out)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out.c_str());
    return 1;
  }
  Trace::Summary s = trace.Summarize();
  std::printf("wrote %s: %zu events (%llu creates, %llu reads, %llu "
              "writes), %.2f MB created, %.2f MB ground-truth garbage\n",
              out.c_str(), trace.size(),
              static_cast<unsigned long long>(s.creates),
              static_cast<unsigned long long>(s.reads),
              static_cast<unsigned long long>(s.write_refs),
              s.created_bytes / 1.0e6,
              s.ground_truth_garbage_bytes / 1.0e6);
  return 0;
}
