#ifndef ODBGC_TOOLS_TOOL_COMMON_H_
#define ODBGC_TOOLS_TOOL_COMMON_H_

#include <string>

#include "oo7/params.h"
#include "sim/config.h"
#include "trace/trace.h"
#include "util/flags.h"

namespace odbgc::tools {

// Exit codes shared by the CLI tools (documented in README.md and
// docs/RECOVERY.md; asserted by tests/flags_test.cc). Scripts and CI
// branch on these, so their values are API.
inline constexpr int kExitOk = 0;            // success
inline constexpr int kExitUsage = 2;         // bad flags / unknown values
inline constexpr int kExitIo = 3;            // unreadable/unwritable file,
                                             // corrupt checkpoint
inline constexpr int kExitSimFailure = 4;    // deadline, failed sweep
                                             // runs, verifier violations
inline constexpr int kExitCrashInjected = 5; // --crash-at-event fired;
                                             // resume to continue
inline constexpr int kExitSpaceExhausted = 6; // --max-db-mb capacity hit
                                              // with no way to grow

// Flag vocabulary shared by the CLI tools. All functions return false
// and fill *error on unknown values.

// --oo7=smallprime|small|tiny  --connectivity=N  --modules=N
bool BuildOo7Params(const Flags& flags, Oo7Params* params,
                    std::string* error);

// --workload=oo7|uniform-churn|bursty-deletes|growing-db|message-queue
// --seed=N plus per-workload knobs (--cycles, --lists, --bursts, ...).
// For oo7: the Oo7Params flags above and --idle-after-reorg1=N to insert
// a quiescent window.
bool BuildWorkloadTrace(const Flags& flags, Trace* trace,
                        std::string* error);

// --policy=fixed|heuristic|saio|saga|coupled
// --rate=N (fixed) --saio-frac=F --hist=N|inf --saga-frac=F
// --estimator=oracle|cgscb|cgshb|fgscb|fgshb --history-factor=H
// --selector=updated|random|roundrobin|oracle
// --partition-kb=N --page-kb=N --buffer-pages=N --preamble=N
// --opportunism (enables the quiescence extension)
// Fault injection & self-healing: --read-fault-prob=F --write-fault-prob=F
// --torn-prob=F --bitflip-prob=F --decay-prob=F --decay-latency=N
// --dead-page-prob=F --dead-partition-prob=F --fault-seed=N
// --commit-protocol --scrub-interval=N --scrub-pages=N
// --no-auto-repair --no-verify-after-repair
bool BuildSimConfig(const Flags& flags, SimConfig* config,
                    std::string* error);

// Prints the flag vocabulary (used by every tool's --help).
void PrintCommonUsage();

// Reports flags that were never consumed; returns false if any.
bool CheckNoUnusedFlags(const Flags& flags, std::string* error);

}  // namespace odbgc::tools

#endif  // ODBGC_TOOLS_TOOL_COMMON_H_
