#!/usr/bin/env python3
"""Compare fresh benchmark runs against the committed baselines.

Usage:
    tools/bench_diff.py --baseline=BENCH_core.json \
        --run=run1.json [--run=run2.json ...] [--max-regression=0.20]
    tools/bench_diff.py \
        --pair=BENCH_core.json:BENCH_hotpath_run.json \
        --pair=BENCH_multi_tenant.json:BENCH_multi_tenant_run.json

Both micro_core_hotpath and ext_multi_tenant emit run JSON with the
same section shape ({name, ops_per_sec, checksum}), so one diff tool
gates all committed baselines. Two checks per benchmark section:
  * correctness: every run's checksum must equal the baseline's
    checksum_after — the sections digest observable simulation state, so
    any drift is a behavior change, not noise. A mismatch always fails.
  * performance: ops_per_sec must not fall more than --max-regression
    (default 20%) below the baseline's after.ops_per_sec. List a run
    file several times (comma-separated in --pair, or repeated --run)
    to take the per-section best. Timing on shared CI runners is noisy,
    hence the generous threshold; the CI job is non-blocking and exists
    to flag trends, not to gate merges.

Exit 0 when every section of every pair passes, 1 on any checksum
mismatch or over-threshold regression, 2 on usage/file errors.
"""

import argparse
import json
import sys


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def diff_pair(baseline_path, run_paths, max_regression):
    """Diff one baseline against its run files; returns failure count."""
    baseline = load_json(baseline_path)
    base_sections = {s["name"]: s for s in baseline.get("sections", [])}
    # Per-section best across runs; checksums must agree in every run.
    run_sections = {}
    checksum_conflicts = []
    for path in run_paths:
        for s in load_json(path).get("sections", []):
            name = s["name"]
            prev = run_sections.get(name)
            if prev is not None and prev.get("checksum") != s.get("checksum"):
                checksum_conflicts.append(name)
            if prev is None or float(s["ops_per_sec"]) > float(
                    prev["ops_per_sec"]):
                run_sections[name] = s

    failures = 0
    print(f"== {baseline_path} vs {', '.join(run_paths)}")
    for name in checksum_conflicts:
        print(f"{name:24} FAIL (checksum differs between runs — "
              f"non-deterministic section)")
        failures += 1
    print(f"{'section':24} {'baseline':>14} {'run':>14} "
          f"{'ratio':>7}  verdict")
    for name, base in base_sections.items():
        r = run_sections.get(name)
        if r is None:
            print(f"{name:24} {'-':>14} {'-':>14} {'-':>7}  "
                  f"FAIL (missing from run)")
            failures += 1
            continue
        verdicts = []
        if r.get("checksum") != base.get("checksum_after"):
            verdicts.append(
                f"checksum {r.get('checksum')} != "
                f"baseline {base.get('checksum_after')}")
        base_ops = float(base["after"]["ops_per_sec"])
        run_ops = float(r["ops_per_sec"])
        ratio = run_ops / base_ops if base_ops > 0 else 0.0
        if ratio < 1.0 - max_regression:
            verdicts.append(f"ops/sec regressed {100 * (1 - ratio):.1f}%")
        verdict = "ok" if not verdicts else "FAIL (" + "; ".join(verdicts) + ")"
        if verdicts:
            failures += 1
        print(f"{name:24} {base_ops:14.0f} {run_ops:14.0f} "
              f"{ratio:7.2f}  {verdict}")

    extra = set(run_sections) - set(base_sections)
    for name in sorted(extra):
        print(f"{name:24} (new section, no baseline — informational)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Diff benchmark runs against committed baselines")
    parser.add_argument("--baseline", default="BENCH_core.json")
    parser.add_argument("--run", action="append", default=None,
                        help="run JSON; repeat to take per-section best")
    parser.add_argument("--pair", action="append", default=None,
                        metavar="BASELINE:RUN[,RUN...]",
                        help="gate an extra baseline/run pair; repeatable. "
                             "When given, --baseline/--run are ignored.")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="max allowed ops/sec drop vs baseline "
                             "(fraction, default 0.20)")
    args = parser.parse_args()

    if args.pair:
        pairs = []
        for spec in args.pair:
            baseline_path, sep, runs = spec.partition(":")
            if not sep or not runs:
                print(f"error: --pair wants BASELINE:RUN[,RUN...], "
                      f"got {spec!r}", file=sys.stderr)
                return 2
            pairs.append((baseline_path, runs.split(",")))
    else:
        pairs = [(args.baseline, args.run or ["BENCH_hotpath_run.json"])]

    failures = 0
    for i, (baseline_path, run_paths) in enumerate(pairs):
        if i:
            print()
        failures += diff_pair(baseline_path, run_paths, args.max_regression)

    if failures:
        print(f"\n{failures} section(s) failed "
              f"(threshold {100 * args.max_regression:.0f}%)")
        return 1
    print("\nall sections within threshold, checksums match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
