// odbgc_run — run a garbage-collection simulation and report.
//
//   odbgc_run --workload=oo7 --policy=saga --saga-frac=0.1
//   odbgc_run --trace=app.trace --policy=saio --saio-frac=0.05
//             --log-csv=collections.csv
//
// Durability / sweeps:
//   odbgc_run --workload=oo7 --checkpoint=run.ckpt --checkpoint-every=5000
//   odbgc_run --workload=oo7 --checkpoint=run.ckpt --resume --json=out.json
//   odbgc_run --runs=8 --base-seed=1 --threads=4 --sweep-json=sweep.json
//
// Exit codes (tools/tool_common.h; tables in README.md and
// docs/RECOVERY.md):
//   0  success
//   2  configuration / usage error (bad flags, unknown values)
//   3  I/O or checkpoint error (unreadable trace, unwritable report,
//      corrupt checkpoint, failed checkpoint write)
//   4  simulation failure (deadline exceeded, failed sweep runs,
//      --verify violations)
//   5  injected crash reached (--crash-at-event fired; resume with
//      --resume to continue from the last checkpoint)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/build_info.h"
#include "obs/perfetto_export.h"
#include "obs/progress.h"
#include "oo7/params.h"
#include "sim/checkpoint.h"
#include "sim/errors.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "sim/simulation.h"
#include "storage/verifier.h"
#include "tools/tool_common.h"
#include "trace/trace.h"
#include "util/flags.h"

namespace {

// Exit codes (see the header comment; defined once in tool_common.h so
// tests and other tools reference the same values).
using odbgc::tools::kExitOk;
using odbgc::tools::kExitUsage;
using odbgc::tools::kExitIo;
using odbgc::tools::kExitSimFailure;
using odbgc::tools::kExitCrashInjected;
using odbgc::tools::kExitSpaceExhausted;

bool DumpCollectionLogCsv(const odbgc::SimResult& result,
                          const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "collection,phase,overwrite_time,app_io,gc_io_delta,"
               "partition,bytes_reclaimed,bytes_live,db_used_bytes,"
               "actual_garbage_pct,estimated_garbage_pct,"
               "target_garbage_pct,next_dt\n");
  for (const odbgc::CollectionRecord& r : result.log) {
    std::fprintf(f,
                 "%llu,%s,%llu,%llu,%llu,%u,%llu,%llu,%llu,%.4f,%.4f,"
                 "%.4f,%llu\n",
                 static_cast<unsigned long long>(r.index),
                 odbgc::PhaseName(r.phase).c_str(),
                 static_cast<unsigned long long>(r.overwrite_time),
                 static_cast<unsigned long long>(r.app_io),
                 static_cast<unsigned long long>(r.gc_io_delta),
                 r.partition,
                 static_cast<unsigned long long>(r.bytes_reclaimed),
                 static_cast<unsigned long long>(r.bytes_live),
                 static_cast<unsigned long long>(r.db_used_bytes),
                 r.actual_garbage_pct, r.estimated_garbage_pct,
                 r.target_garbage_pct,
                 static_cast<unsigned long long>(r.next_dt));
  }
  std::fclose(f);
  return true;
}

// Sweep mode (--runs=N): fans N seeds of the OO7 workload across a
// thread pool with per-run failure isolation. One failed run does not
// abort the others; its status lands in the sweep report instead.
int RunSweep(odbgc::Flags& flags, const odbgc::SimConfig& config,
             int64_t runs) {
  using namespace odbgc;
  std::string error;
  const std::string workload = flags.GetString("workload", "oo7");
  if (workload != "oo7") {
    std::fprintf(stderr, "error: --runs sweeps support --workload=oo7 only\n");
    return kExitUsage;
  }
  Oo7Params params;
  if (!tools::BuildOo7Params(flags, &params, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitUsage;
  }
  const uint64_t base_seed =
      static_cast<uint64_t>(flags.GetInt("base-seed", 1));
  const std::string sweep_json = flags.GetString("sweep-json", "");
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  SweepOptions options;
  options.max_attempts = 1 + static_cast<int>(flags.GetInt("retries", 0));
  options.retry_backoff_ms = flags.GetDouble("retry-backoff-ms", 0.0);
  options.run_deadline_ms = flags.GetDouble("run-deadline-ms", 0.0);
  // Resumable sweeps: per-run checkpoints under the given prefix. A
  // rerun of an interrupted sweep (--resume is implied by an existing
  // checkpoint) continues each run from where it stopped.
  options.checkpoint_prefix = flags.GetString("checkpoint", "");
  options.checkpoint_every =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every", 0));
  flags.GetBool("resume", false);  // implied in sweep mode; consume it
  if (options.checkpoint_every > 0 && options.checkpoint_prefix.empty()) {
    std::fprintf(stderr, "error: --checkpoint-every requires --checkpoint\n");
    return kExitUsage;
  }
  // Deliberate failure injection: crash every run (or just the run with
  // seed --crash-seed) after N applied events. Used by the recovery
  // smoke to prove one failing run does not disturb the others.
  const uint64_t crash_at_event =
      static_cast<uint64_t>(flags.GetInt("crash-at-event", 0));
  const uint64_t crash_seed =
      static_cast<uint64_t>(flags.GetInt("crash-seed", 0));
  const bool progress = flags.GetBool("progress", false);
  if (options.max_attempts < 1) {
    std::fprintf(stderr, "error: --retries must be >= 0\n");
    return kExitUsage;
  }
  if (!tools::CheckNoUnusedFlags(flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitUsage;
  }

  std::vector<SweepPoint> points;
  points.reserve(static_cast<size_t>(runs));
  for (int64_t i = 0; i < runs; ++i) {
    SweepPoint p{config, params, base_seed + static_cast<uint64_t>(i)};
    if (crash_at_event != 0 && (crash_seed == 0 || p.seed == crash_seed)) {
      p.config.store.fault.crash_at_event = crash_at_event;
    }
    points.push_back(p);
  }
  SweepRunner runner(threads);
  if (progress) runner.set_progress_stream(stderr);
  std::vector<RunOutcome> outcomes = runner.RunWithStatus(points, options);

  size_t failed = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const RunStatus& st = outcomes[i].status;
    if (st.ok()) continue;
    ++failed;
    std::fprintf(stderr, "run %zu (seed %llu) failed [%s, %d attempt%s]: %s\n",
                 i, static_cast<unsigned long long>(points[i].seed),
                 SimErrorKindName(st.error_kind), st.attempts,
                 st.attempts == 1 ? "" : "s", st.message.c_str());
  }
  std::printf("sweep             %lld runs on %d threads: %zu ok, %zu failed\n",
              static_cast<long long>(runs), runner.threads(),
              outcomes.size() - failed, failed);
  if (!sweep_json.empty()) {
    if (!WriteSweepReportJson(points, outcomes, sweep_json)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", sweep_json.c_str());
      return kExitIo;
    }
    std::printf("sweep report      %s\n", sweep_json.c_str());
  }
  return failed == 0 ? kExitOk : kExitSimFailure;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace odbgc;
  Flags flags;
  std::string error;
  if (!Flags::Parse(argc, argv, &flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::fprintf(stderr,
                 "usage: odbgc_run [--trace=FILE | workload flags] "
                 "[simulation flags] [--log-csv=FILE] [--json=FILE]\n"
                 "  observability: --version  --telemetry  "
                 "--trace-out=FILE [--no-page-events] "
                 "[--trace-events-cap=N]  --progress\n"
                 "                 --decisions-out=FILE  "
                 "--timeseries-out=FILE [--sample-every=N]\n"
                 "  durability:    --checkpoint=FILE --checkpoint-every=N  "
                 "--resume  --crash-at-event=N  --deadline-ms=X\n"
                 "  verification:  --verify=none|heap|partition "
                 "(post-run; violations exit 4)\n"
                 "  sweeps:        --runs=N [--base-seed=N --threads=N "
                 "--retries=N --retry-backoff-ms=X --run-deadline-ms=X "
                 "--sweep-json=FILE --crash-at-event=N --crash-seed=S]\n"
                 "  exit codes:    0 ok, 2 usage, 3 I/O or checkpoint, "
                 "4 simulation failure, 5 injected crash\n");
    tools::PrintCommonUsage();
    return 0;
  }
  if (flags.GetBool("version", false)) {
    const obs::BuildInfo& b = obs::GetBuildInfo();
    std::printf("odbgc_run %s%s (%s, telemetry %s)\n", b.git_sha,
                b.git_dirty ? "-dirty" : "", b.build_type,
                b.telemetry ? "on" : "off");
    return 0;
  }

  // Sweep mode builds its own workload and never loads a trace file.
  const int64_t runs = flags.GetInt("runs", 0);
  if (runs > 0) {
    SimConfig sweep_config;
    if (!tools::BuildSimConfig(flags, &sweep_config, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return kExitUsage;
    }
    sweep_config.deadline_ms = flags.GetDouble("deadline-ms", 0.0);
    return RunSweep(flags, sweep_config, runs);
  }

  Trace trace;
  std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    if (!Trace::LoadFrom(trace_path, &trace)) {
      std::fprintf(stderr, "error: cannot read trace '%s'\n",
                   trace_path.c_str());
      return kExitIo;
    }
  } else if (!tools::BuildWorkloadTrace(flags, &trace, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitUsage;
  }

  SimConfig config;
  if (!tools::BuildSimConfig(flags, &config, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitUsage;
  }
  std::string csv_path = flags.GetString("log-csv", "");
  std::string json_path = flags.GetString("json", "");

  // Durability flags (see the header comment for the recovery protocol).
  const std::string checkpoint_path = flags.GetString("checkpoint", "");
  const uint64_t checkpoint_every =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every", 0));
  const bool resume = flags.GetBool("resume", false);
  config.store.fault.crash_at_event =
      static_cast<uint64_t>(flags.GetInt("crash-at-event", 0));
  config.deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  if ((checkpoint_every > 0 || resume) && checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint-every/--resume require --checkpoint\n");
    return kExitUsage;
  }

  // Observability flags. --trace-out implies trace capture; --telemetry
  // alone collects metrics only (cheapest useful configuration).
  std::string trace_out = flags.GetString("trace-out", "");
  std::string decisions_out = flags.GetString("decisions-out", "");
  std::string timeseries_out = flags.GetString("timeseries-out", "");
  const int64_t sample_every = flags.GetInt(
      "sample-every",
      static_cast<int64_t>(obs::TimeSeriesSampler::kDefaultIntervalEvents));
  config.telemetry.enabled = flags.GetBool("telemetry", false) ||
                             !trace_out.empty() || !decisions_out.empty() ||
                             !timeseries_out.empty();
  config.telemetry.capture_trace = !trace_out.empty();
  config.telemetry.page_events = !flags.GetBool("no-page-events", false);
  config.telemetry.max_trace_events = static_cast<size_t>(flags.GetInt(
      "trace-events-cap",
      static_cast<int64_t>(config.telemetry.max_trace_events)));
  config.telemetry.record_decisions = !decisions_out.empty();
  if (!timeseries_out.empty()) {
    if (sample_every <= 0) {
      std::fprintf(stderr, "error: --sample-every must be positive\n");
      return kExitUsage;
    }
    config.telemetry.sample_interval_events =
        static_cast<uint64_t>(sample_every);
  }
  const bool progress = flags.GetBool("progress", false);

  // Post-run verification: --verify=heap runs the full cross-partition
  // heap verifier; --verify=partition runs the partition-local verifier
  // on every partition (the scrubber/repair entry point, satellite of
  // docs/RECOVERY.md's self-healing contract). Violations exit 4.
  const std::string verify_mode = flags.GetString("verify", "none");
  if (verify_mode != "none" && verify_mode != "heap" &&
      verify_mode != "partition") {
    std::fprintf(stderr,
                 "error: unknown --verify '%s' (none|heap|partition)\n",
                 verify_mode.c_str());
    return kExitUsage;
  }

  if (!tools::CheckNoUnusedFlags(flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitUsage;
  }
  if ((!trace_out.empty() || !decisions_out.empty() ||
       !timeseries_out.empty()) &&
      !obs::GetBuildInfo().telemetry) {
    std::fprintf(stderr,
                 "error: --trace-out/--decisions-out/--timeseries-out "
                 "require a build with ODBGC_TELEMETRY=ON\n");
    return 2;
  }

  std::unique_ptr<Simulation> sim_ptr;
  if (resume) {
    ResumeResult resumed = ResumeFromCheckpoint(config, checkpoint_path);
    if (resumed.ok()) {
      std::fprintf(stderr, "resumed from %s at event %llu%s\n",
                   resumed.loaded_path.c_str(),
                   static_cast<unsigned long long>(resumed.events_applied),
                   resumed.used_fallback ? " (fallback .prev image)" : "");
      sim_ptr = std::move(resumed.sim);
    } else if (resumed.primary_error == CheckpointError::kOpenFailed) {
      // No checkpoint was ever written (e.g. the crash preceded the
      // first checkpoint interval): start from the beginning.
      std::fprintf(stderr, "no checkpoint at %s; starting fresh\n",
                   checkpoint_path.c_str());
      sim_ptr = std::make_unique<Simulation>(config);
    } else {
      std::fprintf(stderr, "error: cannot resume from '%s': %s\n",
                   checkpoint_path.c_str(),
                   CheckpointErrorName(resumed.primary_error));
      return kExitIo;
    }
  } else {
    sim_ptr = std::make_unique<Simulation>(config);
  }
  Simulation& sim = *sim_ptr;
  obs::ProgressReporter reporter(stderr);
  if (progress) sim.set_progress(&reporter);
  SimResult r;
  try {
    r = sim.RunFrom(trace, checkpoint_path, checkpoint_every);
  } catch (const SimCrashInjected& e) {
    std::fprintf(stderr,
                 "crash injected after event %llu; resume with "
                 "--checkpoint=%s --resume\n",
                 static_cast<unsigned long long>(e.at_event()),
                 checkpoint_path.empty() ? "FILE" : checkpoint_path.c_str());
    return kExitCrashInjected;
  } catch (const SimCheckpointWriteError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitIo;
  } catch (const SpaceExhaustedError& e) {
    // Must precede the generic SimError handler: capacity exhaustion has
    // its own exit code so operators can tell "db full" from "sim broke".
    std::fprintf(stderr,
                 "error: %s\n"
                 "hint: raise --max-db-mb, or enable --governor so "
                 "emergency collection and backpressure engage before "
                 "the ceiling\n",
                 e.what());
    return kExitSpaceExhausted;
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: simulation failed (%s): %s\n",
                 SimErrorKindName(e.kind()), e.what());
    return kExitSimFailure;
  }

  if (verify_mode == "heap") {
    VerifierReport vr = VerifyHeap(sim.store());
    if (!vr.ok()) {
      std::fprintf(stderr, "error: heap verifier: %s\n",
                   vr.Summary().c_str());
      return kExitSimFailure;
    }
    std::printf("verify            heap clean (%llu objects, %llu slots)\n",
                static_cast<unsigned long long>(vr.objects_checked),
                static_cast<unsigned long long>(vr.slots_checked));
  } else if (verify_mode == "partition") {
    size_t bad = 0;
    for (PartitionId p = 0;
         p < static_cast<PartitionId>(sim.store().partition_count()); ++p) {
      VerifierReport vr = VerifyPartition(sim.store(), p);
      if (vr.ok()) continue;
      ++bad;
      std::fprintf(stderr, "error: partition %u verifier: %s\n", p,
                   vr.Summary().c_str());
    }
    if (bad > 0) return kExitSimFailure;
    std::printf("verify            %zu partitions clean\n",
                sim.store().partition_count());
  }

  std::printf("policy            %s\n", sim.policy().name().c_str());
  std::printf("events            %llu (%llu pointer overwrites)\n",
              static_cast<unsigned long long>(r.clock.events),
              static_cast<unsigned long long>(
                  r.clock.pointer_overwrites));
  std::printf("collections       %llu (+%llu idle)\n",
              static_cast<unsigned long long>(r.collections),
              static_cast<unsigned long long>(r.idle_collections));
  std::printf("I/O operations    %llu app, %llu gc (%.2f%% gc%s)\n",
              static_cast<unsigned long long>(r.clock.app_io),
              static_cast<unsigned long long>(r.clock.gc_io),
              r.achieved_gc_io_pct,
              r.window_opened ? ", post-preamble" : ", whole run");
  std::printf("garbage           mean %.2f%% of database "
              "(%.2f MB reclaimed, %.2f MB left)\n",
              r.garbage_pct.mean(), r.total_reclaimed_bytes / 1.0e6,
              r.final_actual_garbage_bytes / 1.0e6);
  std::printf("database          %.2f MB in %zu partitions\n",
              r.final_db_used_bytes / 1.0e6, r.final_partition_count);
  std::printf("buffer pool       %llu hits, %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(r.buffer_hits),
              static_cast<unsigned long long>(r.buffer_misses),
              100.0 * static_cast<double>(r.buffer_hits) /
                  static_cast<double>(r.buffer_hits + r.buffer_misses));
  if (r.partitions_quarantined > 0 || r.pages_scrubbed > 0 ||
      r.checksum_failures > 0 || r.device_faults > 0) {
    std::printf("self-healing      %llu checksum + %llu device detections, "
                "%llu pages scrubbed, %llu quarantined / %llu repaired\n",
                static_cast<unsigned long long>(r.checksum_failures),
                static_cast<unsigned long long>(r.device_faults),
                static_cast<unsigned long long>(r.pages_scrubbed),
                static_cast<unsigned long long>(r.partitions_quarantined),
                static_cast<unsigned long long>(r.partitions_repaired));
  }
  if (r.disk_app_ms > 0.0 || r.disk_gc_ms > 0.0) {
    std::printf("disk time         %.1f s app + %.1f s gc "
                "(%llu sequential, %llu random transfers)\n",
                r.disk_app_ms / 1000.0, r.disk_gc_ms / 1000.0,
                static_cast<unsigned long long>(
                    r.disk_sequential_transfers),
                static_cast<unsigned long long>(r.disk_random_transfers));
  }
  if (!r.phase_stats.empty()) {
    std::printf("phases:\n");
    for (const PhaseStats& p : r.phase_stats) {
      std::printf("  %-9s %8llu colls, app io %8llu, gc io %8llu, "
                  "garbage %6.2f%%\n",
                  PhaseName(p.phase).c_str(),
                  static_cast<unsigned long long>(p.collections),
                  static_cast<unsigned long long>(p.app_io),
                  static_cast<unsigned long long>(p.gc_io),
                  p.garbage_pct.mean());
    }
  }

  if (!csv_path.empty()) {
    if (!DumpCollectionLogCsv(r, csv_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
      return kExitIo;
    }
    std::printf("collection log    %s (%zu rows)\n", csv_path.c_str(),
                r.log.size());
  }
  if (!json_path.empty()) {
    if (!WriteResultJson(r, json_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return kExitIo;
    }
    std::printf("json report       %s\n", json_path.c_str());
  }
  if (!decisions_out.empty()) {
    if (!WriteDecisionsJsonl(r, decisions_out)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   decisions_out.c_str());
      return kExitIo;
    }
    std::printf("decision ledger   %s (%zu records", decisions_out.c_str(),
                r.decisions.size());
    if (r.decisions_dropped > 0) {
      std::printf(", %llu dropped at cap",
                  static_cast<unsigned long long>(r.decisions_dropped));
    }
    std::printf(")\n");
  }
  if (!timeseries_out.empty()) {
    if (!WriteTimeSeriesJsonl(r, timeseries_out)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   timeseries_out.c_str());
      return kExitIo;
    }
    std::printf("time series       %s (%zu frames", timeseries_out.c_str(),
                r.timeseries.size());
    if (r.timeseries_dropped > 0) {
      std::printf(", %llu dropped at cap",
                  static_cast<unsigned long long>(r.timeseries_dropped));
    }
    std::printf(")\n");
  }
  if (!trace_out.empty()) {
    obs::Telemetry* tel = sim.telemetry();
    if (tel == nullptr || tel->recorder() == nullptr) {
      std::fprintf(stderr, "error: no trace was recorded\n");
      return kExitSimFailure;
    }
    std::vector<obs::TraceThread> threads{
        obs::TraceThread{tel->recorder(), 1, "simulation"}};
    if (!obs::WriteChromeTrace(threads, trace_out)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", trace_out.c_str());
      return kExitIo;
    }
    std::printf("chrome trace      %s (%zu events", trace_out.c_str(),
                tel->recorder()->size());
    if (tel->recorder()->dropped_events() > 0) {
      std::printf(", %llu dropped at cap",
                  static_cast<unsigned long long>(
                      tel->recorder()->dropped_events()));
    }
    std::printf(")\n");
  }
  return kExitOk;
}
