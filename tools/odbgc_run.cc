// odbgc_run — run a garbage-collection simulation and report.
//
//   odbgc_run --workload=oo7 --policy=saga --saga-frac=0.1
//   odbgc_run --trace=app.trace --policy=saio --saio-frac=0.05
//             --log-csv=collections.csv

#include <cstdio>
#include <string>
#include <vector>

#include "obs/build_info.h"
#include "obs/perfetto_export.h"
#include "obs/progress.h"
#include "sim/report.h"
#include "sim/simulation.h"
#include "tools/tool_common.h"
#include "trace/trace.h"
#include "util/flags.h"

namespace {

bool DumpCollectionLogCsv(const odbgc::SimResult& result,
                          const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "collection,phase,overwrite_time,app_io,gc_io_delta,"
               "partition,bytes_reclaimed,bytes_live,db_used_bytes,"
               "actual_garbage_pct,estimated_garbage_pct,"
               "target_garbage_pct,next_dt\n");
  for (const odbgc::CollectionRecord& r : result.log) {
    std::fprintf(f,
                 "%llu,%s,%llu,%llu,%llu,%u,%llu,%llu,%llu,%.4f,%.4f,"
                 "%.4f,%llu\n",
                 static_cast<unsigned long long>(r.index),
                 odbgc::PhaseName(r.phase).c_str(),
                 static_cast<unsigned long long>(r.overwrite_time),
                 static_cast<unsigned long long>(r.app_io),
                 static_cast<unsigned long long>(r.gc_io_delta),
                 r.partition,
                 static_cast<unsigned long long>(r.bytes_reclaimed),
                 static_cast<unsigned long long>(r.bytes_live),
                 static_cast<unsigned long long>(r.db_used_bytes),
                 r.actual_garbage_pct, r.estimated_garbage_pct,
                 r.target_garbage_pct,
                 static_cast<unsigned long long>(r.next_dt));
  }
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace odbgc;
  Flags flags;
  std::string error;
  if (!Flags::Parse(argc, argv, &flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::fprintf(stderr,
                 "usage: odbgc_run [--trace=FILE | workload flags] "
                 "[simulation flags] [--log-csv=FILE] [--json=FILE]\n"
                 "  observability: --version  --telemetry  "
                 "--trace-out=FILE [--no-page-events] "
                 "[--trace-events-cap=N]  --progress\n");
    tools::PrintCommonUsage();
    return 0;
  }
  if (flags.GetBool("version", false)) {
    const obs::BuildInfo& b = obs::GetBuildInfo();
    std::printf("odbgc_run %s%s (%s, telemetry %s)\n", b.git_sha,
                b.git_dirty ? "-dirty" : "", b.build_type,
                b.telemetry ? "on" : "off");
    return 0;
  }

  Trace trace;
  std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    if (!Trace::LoadFrom(trace_path, &trace)) {
      std::fprintf(stderr, "error: cannot read trace '%s'\n",
                   trace_path.c_str());
      return 1;
    }
  } else if (!tools::BuildWorkloadTrace(flags, &trace, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  SimConfig config;
  if (!tools::BuildSimConfig(flags, &config, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::string csv_path = flags.GetString("log-csv", "");
  std::string json_path = flags.GetString("json", "");

  // Observability flags. --trace-out implies trace capture; --telemetry
  // alone collects metrics only (cheapest useful configuration).
  std::string trace_out = flags.GetString("trace-out", "");
  config.telemetry.enabled =
      flags.GetBool("telemetry", false) || !trace_out.empty();
  config.telemetry.capture_trace = !trace_out.empty();
  config.telemetry.page_events = !flags.GetBool("no-page-events", false);
  config.telemetry.max_trace_events = static_cast<size_t>(flags.GetInt(
      "trace-events-cap",
      static_cast<int64_t>(config.telemetry.max_trace_events)));
  const bool progress = flags.GetBool("progress", false);

  if (!tools::CheckNoUnusedFlags(flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!trace_out.empty() && !obs::GetBuildInfo().telemetry) {
    std::fprintf(stderr,
                 "error: --trace-out requires a build with "
                 "ODBGC_TELEMETRY=ON\n");
    return 2;
  }

  Simulation sim(config);
  obs::ProgressReporter reporter(stderr);
  if (progress) sim.set_progress(&reporter);
  SimResult r = sim.Run(trace);

  std::printf("policy            %s\n", sim.policy().name().c_str());
  std::printf("events            %llu (%llu pointer overwrites)\n",
              static_cast<unsigned long long>(r.clock.events),
              static_cast<unsigned long long>(
                  r.clock.pointer_overwrites));
  std::printf("collections       %llu (+%llu idle)\n",
              static_cast<unsigned long long>(r.collections),
              static_cast<unsigned long long>(r.idle_collections));
  std::printf("I/O operations    %llu app, %llu gc (%.2f%% gc%s)\n",
              static_cast<unsigned long long>(r.clock.app_io),
              static_cast<unsigned long long>(r.clock.gc_io),
              r.achieved_gc_io_pct,
              r.window_opened ? ", post-preamble" : ", whole run");
  std::printf("garbage           mean %.2f%% of database "
              "(%.2f MB reclaimed, %.2f MB left)\n",
              r.garbage_pct.mean(), r.total_reclaimed_bytes / 1.0e6,
              r.final_actual_garbage_bytes / 1.0e6);
  std::printf("database          %.2f MB in %zu partitions\n",
              r.final_db_used_bytes / 1.0e6, r.final_partition_count);
  std::printf("buffer pool       %llu hits, %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(r.buffer_hits),
              static_cast<unsigned long long>(r.buffer_misses),
              100.0 * static_cast<double>(r.buffer_hits) /
                  static_cast<double>(r.buffer_hits + r.buffer_misses));
  if (r.disk_app_ms > 0.0 || r.disk_gc_ms > 0.0) {
    std::printf("disk time         %.1f s app + %.1f s gc "
                "(%llu sequential, %llu random transfers)\n",
                r.disk_app_ms / 1000.0, r.disk_gc_ms / 1000.0,
                static_cast<unsigned long long>(
                    r.disk_sequential_transfers),
                static_cast<unsigned long long>(r.disk_random_transfers));
  }
  if (!r.phase_stats.empty()) {
    std::printf("phases:\n");
    for (const PhaseStats& p : r.phase_stats) {
      std::printf("  %-9s %8llu colls, app io %8llu, gc io %8llu, "
                  "garbage %6.2f%%\n",
                  PhaseName(p.phase).c_str(),
                  static_cast<unsigned long long>(p.collections),
                  static_cast<unsigned long long>(p.app_io),
                  static_cast<unsigned long long>(p.gc_io),
                  p.garbage_pct.mean());
    }
  }

  if (!csv_path.empty()) {
    if (!DumpCollectionLogCsv(r, csv_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    std::printf("collection log    %s (%zu rows)\n", csv_path.c_str(),
                r.log.size());
  }
  if (!json_path.empty()) {
    if (!WriteResultJson(r, json_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    std::printf("json report       %s\n", json_path.c_str());
  }
  if (!trace_out.empty()) {
    obs::Telemetry* tel = sim.telemetry();
    if (tel == nullptr || tel->recorder() == nullptr) {
      std::fprintf(stderr, "error: no trace was recorded\n");
      return 1;
    }
    std::vector<obs::TraceThread> threads{
        obs::TraceThread{tel->recorder(), 1, "simulation"}};
    if (!obs::WriteChromeTrace(threads, trace_out)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", trace_out.c_str());
      return 1;
    }
    std::printf("chrome trace      %s (%zu events", trace_out.c_str(),
                tel->recorder()->size());
    if (tel->recorder()->dropped_events() > 0) {
      std::printf(", %llu dropped at cap",
                  static_cast<unsigned long long>(
                      tel->recorder()->dropped_events()));
    }
    std::printf(")\n");
  }
  return 0;
}
