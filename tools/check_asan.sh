#!/usr/bin/env bash
# Builds the storage / collector stack under AddressSanitizer and runs
# the tests that exercise the fault injector, crash recovery, and the
# heap verifier (plus the corrupt-trace loader corpora, which is where a
# reader bug would touch memory it should not).
# Usage: tools/check_asan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DODBGC_SANITIZE=address
cmake --build "$BUILD_DIR" --target \
  fault_injection_test self_healing_test recovery_test buffer_pool_test \
  fuzz_test storage_test collector_test -j "$(nproc)"

for t in fault_injection_test self_healing_test recovery_test \
         buffer_pool_test fuzz_test storage_test collector_test; do
  echo "== ${t} under address sanitizer =="
  "$BUILD_DIR/tests/$t"
done
echo "OK: no address sanitizer reports"
