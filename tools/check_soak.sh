#!/usr/bin/env bash
# Chaos soak for the self-healing storage stack: runs many seeds of an
# OO7 Small' simulation under the full silent-corruption plan (bit
# flips, latent media decay, permanent dead pages, dead partition
# devices) with the background scrubber alternating off/on, requires
# every run to finish cleanly with --verify=partition, and asserts the
# self-healing invariants on each JSON report (every quarantined
# partition repaired, every aborted collection accounted for by a
# quarantine). A subset of seeds is additionally killed halfway via
# --crash-at-event and resumed; the resumed report must be
# byte-identical to the uninterrupted run, proving checkpointing
# captures the injector health state, quarantine flags and scrub
# cursor. Exit codes observed must be exactly 0 (clean) or 5 -> 0
# (injected crash, then resume) -- see docs/RECOVERY.md.
#
# A second leg soaks the overload governor: capacity-capped governed
# uniform-churn runs under the same silent-corruption plan, with the
# ungoverned twin required to exit 6 and a subset of governed seeds
# killed mid-degradation and resumed to byte-identity (checkpoint v5
# carries the governor and safe-mode state).
#
# Usage: tools/check_soak.sh [build-dir]
#   ODBGC_SOAK_SEEDS            seeds to soak (default 50)
#   ODBGC_SOAK_CRASHES          crash/resume pairs among those seeds (default 8)
#   ODBGC_SOAK_OO7              OO7 preset (default smallprime)
#   ODBGC_SOAK_OVERLOAD_SEEDS   governed capped seeds (default 10)
#   ODBGC_SOAK_OVERLOAD_CRASHES crash/resume pairs among those (default 4)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
RUN="$BUILD_DIR/tools/odbgc_run"
SEEDS="${ODBGC_SOAK_SEEDS:-50}"
CRASHES="${ODBGC_SOAK_CRASHES:-8}"
OO7="${ODBGC_SOAK_OO7:-smallprime}"

if [[ ! -x "$RUN" ]]; then
  echo "error: $RUN not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

WORK="$(mktemp -d /tmp/odbgc_soak.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

# The chaos plan: every new fault kind at once. Probabilities are per
# physical page transfer; dead-partition-prob conditions on a dead page
# (a fifth of dead pages take the whole device down).
chaos() {  # seed scrub-interval extra args...
  local seed="$1" scrub="$2"
  shift 2
  "$RUN" --workload=oo7 --oo7="$OO7" --policy=saga --seed="$seed" \
      --fault-seed="$((1000 + seed))" \
      --bitflip-prob=0.01 --decay-prob=0.005 --decay-latency=32 \
      --dead-page-prob=0.002 --dead-partition-prob=0.2 \
      --scrub-interval="$scrub" --scrub-pages=8 "$@"
}

echo "== soak: $SEEDS seeds of $OO7 under the full chaos plan =="
for ((s = 1; s <= SEEDS; ++s)); do
  # Alternate the scrubber off/on so both detection paths soak: demand
  # reads + collection scans alone, and scrub-first.
  scrub=$(( s % 2 == 0 ? 32 : 0 ))
  if ! chaos "$s" "$scrub" --verify=partition \
      --json="$WORK/run-$s.json" > /dev/null; then
    echo "FAIL: seed $s (scrub=$scrub) did not exit 0 with a clean verify" >&2
    exit 1
  fi
done

# Invariants over every report: quarantined == repaired (the end-of-run
# drain guarantees no partition is left quarantined), every aborted
# collection is matched by a quarantine of the aborting partition, and
# the soak as a whole actually exercised each fault kind.
python3 - "$WORK" "$SEEDS" <<'EOF'
import json, sys
work, seeds = sys.argv[1], int(sys.argv[2])
tot = {}
for s in range(1, seeds + 1):
    r = json.load(open("%s/run-%d.json" % (work, s)))
    h = r.get("self_healing", {})
    q, rep = h.get("partitions_quarantined", 0), h.get("partitions_repaired", 0)
    assert q == rep, "seed %d: quarantined %d != repaired %d" % (s, q, rep)
    log = h.get("quarantine_log", [])
    assert len(log) == q, "seed %d: quarantine_log has %d entries, want %d" % (
        s, len(log), q)
    for e in log:
        assert e["repaired_event"] >= e["detected_event"] > 0, \
            "seed %d: bad quarantine window %r" % (s, e)
    aborted = h.get("collections_aborted_corrupt", 0)
    assert aborted <= q, "seed %d: %d aborts but only %d quarantines" % (
        s, aborted, q)
    for k, v in h.items():
        if k != "quarantine_log":
            tot[k] = tot.get(k, 0) + v
for k in ("bitflips_injected", "decays_armed", "device_faults",
          "checksum_failures", "scrub_detections", "pages_scrubbed",
          "partitions_quarantined", "collections_aborted_corrupt"):
    assert tot.get(k, 0) > 0, "soak never exercised %s" % k
print("   invariants OK over %d seeds: %d bitflips, %d decays, %d device "
      "faults ->\n   %d checksum failures + %d scrub detections, "
      "%d quarantined == repaired,\n   %d collections aborted" % (
          seeds, tot["bitflips_injected"], tot["decays_armed"],
          tot["device_faults"], tot["checksum_failures"],
          tot["scrub_detections"], tot["partitions_quarantined"],
          tot["collections_aborted_corrupt"]))
EOF

# Crash-at-event under chaos: kill a spread of the soaked seeds halfway,
# resume from the checkpoint, and require byte-identity with the
# uninterrupted report (exit codes: 5 for the kill, 0 for the resume).
echo "== soak: $CRASHES crash/resume pairs under the same chaos plan =="
for ((i = 0; i < CRASHES; ++i)); do
  s=$(( 1 + i * SEEDS / CRASHES ))
  scrub=$(( s % 2 == 0 ? 32 : 0 ))
  golden="$WORK/run-$s.json"
  events="$(python3 -c "
import json
print(json.load(open('$golden'))['events'])")"
  ckpt="$WORK/crash-$s.ckpt"
  rm -f "$ckpt" "$ckpt.prev" "$ckpt.tmp"
  set +e
  chaos "$s" "$scrub" --checkpoint="$ckpt" --checkpoint-every=500 \
      --crash-at-event="$((events / 2))" > /dev/null 2>&1
  crash_exit=$?
  set -e
  if [[ $crash_exit -ne 5 ]]; then
    echo "FAIL: seed $s kill at event $((events / 2)) exited $crash_exit, want 5" >&2
    exit 1
  fi
  chaos "$s" "$scrub" --checkpoint="$ckpt" --resume \
      --json="$WORK/resumed-$s.json" > /dev/null
  if ! cmp -s "$golden" "$WORK/resumed-$s.json"; then
    echo "FAIL: seed $s resume diverged from the uninterrupted chaos run" >&2
    diff <(head -c 400 "$golden") <(head -c 400 "$WORK/resumed-$s.json") >&2 || true
    exit 1
  fi
done
echo "   $CRASHES/$CRASHES crash/resume pairs byte-identical"

# Overload chaos soak: governed, capacity-capped uniform-churn runs
# under the same silent-corruption plan. The ungoverned twin must hit
# the ceiling (exit 6); every governed seed must survive its cap with
# at least one intervention and a clean partition verify; and a subset
# is killed mid-degradation and resumed, requiring byte-identity with
# the uninterrupted report.
OSEEDS="${ODBGC_SOAK_OVERLOAD_SEEDS:-10}"
OCRASHES="${ODBGC_SOAK_OVERLOAD_CRASHES:-4}"

capped() {  # seed extra args... (pass --governor yourself)
  local seed="$1"
  shift
  "$RUN" --workload=uniform-churn --cycles=4000 --lists=8 --length=16 \
      --policy=fixed --rate=1000000 --max-db-mb=1 \
      --seed="$seed" --fault-seed="$((2000 + seed))" \
      --bitflip-prob=0.01 --decay-prob=0.005 --decay-latency=32 \
      --scrub-interval=32 --scrub-pages=8 "$@"
}

echo "== soak: overload control (capped, ungoverned -> exit 6) =="
set +e
capped 1 > /dev/null 2>&1
control_exit=$?
set -e
if [[ $control_exit -ne 6 ]]; then
  echo "FAIL: capped ungoverned control exited $control_exit, want 6" >&2
  exit 1
fi

echo "== soak: $OSEEDS governed capped seeds under the chaos plan =="
for ((s = 1; s <= OSEEDS; ++s)); do
  if ! capped "$s" --governor --verify=partition \
      --json="$WORK/overload-$s.json" > /dev/null; then
    echo "FAIL: governed seed $s did not survive its capacity cap" >&2
    exit 1
  fi
done
python3 - "$WORK" "$OSEEDS" <<'EOF'
import json, sys
work, seeds = sys.argv[1], int(sys.argv[2])
boosts = emergencies = 0
for s in range(1, seeds + 1):
    o = json.load(open("%s/overload-%d.json" % (work, s)))["overload"]
    acted = o["governor_boost_collections"] + o["governor_emergency_collections"]
    assert acted > 0, "seed %d survived without intervening: %r" % (s, o)
    assert o["peak_utilization_pct"] < 100.0, "seed %d: %r" % (s, o)
    boosts += o["governor_boost_collections"]
    emergencies += o["governor_emergency_collections"]
print("   governed invariants OK over %d seeds: %d boosts, %d emergency "
      "collections, every peak under the ceiling" % (seeds, boosts, emergencies))
EOF

echo "== soak: $OCRASHES governed crash/resume pairs mid-degradation =="
for ((i = 0; i < OCRASHES; ++i)); do
  s=$(( 1 + i * OSEEDS / OCRASHES ))
  golden="$WORK/overload-$s.json"
  events="$(python3 -c "
import json
print(json.load(open('$golden'))['events'])")"
  ckpt="$WORK/overload-crash-$s.ckpt"
  rm -f "$ckpt" "$ckpt.prev" "$ckpt.tmp"
  set +e
  capped "$s" --governor --verify=partition --checkpoint="$ckpt" \
      --checkpoint-every=500 --crash-at-event="$((events / 2))" \
      > /dev/null 2>&1
  crash_exit=$?
  set -e
  if [[ $crash_exit -ne 5 ]]; then
    echo "FAIL: governed seed $s kill exited $crash_exit, want 5" >&2
    exit 1
  fi
  capped "$s" --governor --verify=partition --checkpoint="$ckpt" --resume \
      --json="$WORK/overload-resumed-$s.json" > /dev/null
  if ! cmp -s "$golden" "$WORK/overload-resumed-$s.json"; then
    echo "FAIL: governed seed $s resume diverged mid-degradation" >&2
    diff <(head -c 400 "$golden") \
        <(head -c 400 "$WORK/overload-resumed-$s.json") >&2 || true
    exit 1
  fi
done
echo "   $OCRASHES/$OCRASHES governed crash/resume pairs byte-identical"

echo "OK: chaos soak green ($SEEDS seeds + $CRASHES crash/resume pairs," \
    "every corruption detected and repaired; $OSEEDS governed capped" \
    "seeds + $OCRASHES mid-degradation resumes)"
