#!/usr/bin/env bash
# Full local gate: plain build + complete test suite, then both
# sanitizer passes (tools/check_asan.sh, tools/check_tsan.sh). Each
# flavor builds into its own directory so the gates do not disturb an
# existing working build. Usage: tools/check_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-check -j "$(nproc)"
ctest --test-dir build-check --output-on-failure

tools/check_asan.sh build-asan
tools/check_tsan.sh build-tsan

echo "OK: plain suite + asan + tsan all green"
