#!/usr/bin/env bash
# Full local gate: plain build + complete test suite + a telemetry
# smoke (export a trace, validate it with odbgc_tracecheck), then both
# sanitizer passes (tools/check_asan.sh, tools/check_tsan.sh). Each
# flavor builds into its own directory so the gates do not disturb an
# existing working build. Usage: tools/check_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-check -j "$(nproc)"
ctest --test-dir build-check --output-on-failure

# Telemetry smoke: a real OO7 run must export a valid Chrome trace
# containing the core span taxonomy, and --version must answer.
trace_tmp="$(mktemp /tmp/odbgc_trace.XXXXXX.json)"
trap 'rm -f "$trace_tmp"' EXIT
./build-check/tools/odbgc_run --version
./build-check/tools/odbgc_run --workload=oo7 --policy=saga \
    --saga-frac=0.10 --trace-out="$trace_tmp" > /dev/null
./build-check/tools/odbgc_tracecheck \
    --require-span=collection,scan,copy,page_read,page_write,policy_decision \
    "$trace_tmp"

tools/check_asan.sh build-asan
tools/check_tsan.sh build-tsan

echo "OK: plain suite + telemetry smoke + asan + tsan all green"
