#!/usr/bin/env bash
# Full local gate: plain build + complete test suite + a telemetry
# smoke (export a trace, validate it with odbgc_tracecheck), a
# checkpoint/resume + recovery-fuzz smoke (docs/RECOVERY.md), a
# parallel-collection bench smoke (checksums must agree across
# --gc-threads), a self-healing chaos smoke (silent corruption must be
# detected, quarantined and repaired — docs/RECOVERY.md), then both
# sanitizer passes (tools/check_asan.sh, tools/check_tsan.sh). Each
# flavor builds into its own directory so the gates do not disturb an
# existing working build. Usage: tools/check_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build-check -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-check -j "$(nproc)"
ctest --test-dir build-check --output-on-failure

# Telemetry smoke: a real OO7 run must export a valid Chrome trace
# containing the core span taxonomy plus the controller-introspection
# instants, under strict name checking, and --version must answer.
trace_tmp="$(mktemp /tmp/odbgc_trace.XXXXXX.json)"
trap 'rm -f "$trace_tmp"' EXIT
./build-check/tools/odbgc_run --version
./build-check/tools/odbgc_run --workload=oo7 --policy=saga \
    --saga-frac=0.10 --trace-out="$trace_tmp" \
    --decisions-out=/dev/null --timeseries-out=/dev/null > /dev/null
./build-check/tools/odbgc_tracecheck --strict-names \
    --require-span=collection,scan,copy,page_read,page_write,policy_decision,timeseries_sample \
    "$trace_tmp"

# Checkpoint/resume smoke on OO7 Small': kill a SAIO run halfway via
# --crash-at-event, resume from its checkpoint, and require the resumed
# report to be byte-identical to the uninterrupted run (exit codes: 5
# for the injected crash, 0 for the resume).
ckpt_dir="$(mktemp -d /tmp/odbgc_ckpt.XXXXXX)"
trap 'rm -f "$trace_tmp"; rm -rf "$ckpt_dir"' EXIT
run="./build-check/tools/odbgc_run"
"$run" --workload=oo7 --oo7=smallprime --policy=saio --seed=4 \
    --json="$ckpt_dir/golden.json" > /dev/null
events="$(python3 -c "
import json
print(json.load(open('$ckpt_dir/golden.json'))['events'])")"
set +e
"$run" --workload=oo7 --oo7=smallprime --policy=saio --seed=4 \
    --checkpoint="$ckpt_dir/run.ckpt" --checkpoint-every=10000 \
    --crash-at-event="$((events / 2))" > /dev/null 2>&1
[ $? -eq 5 ] || { echo "FAIL: crash run should exit 5"; exit 1; }
set -e
"$run" --workload=oo7 --oo7=smallprime --policy=saio --seed=4 \
    --checkpoint="$ckpt_dir/run.ckpt" --resume \
    --json="$ckpt_dir/resumed.json" > /dev/null
cmp "$ckpt_dir/golden.json" "$ckpt_dir/resumed.json"
echo "checkpoint/resume smoke: byte-identical after halfway kill"

# Controller-introspection smoke: SAIO and SAGA runs over OO7 Small'
# must export decision ledgers whose A/B diff reproduces the paper's
# accuracy ordering (figures 4/5): SAIO holds the I/O target better,
# SAGA holds the garbage target better.
"$run" --workload=oo7 --oo7=smallprime --policy=saio --seed=4 \
    --saio-frac=0.10 --decisions-out="$ckpt_dir/saio.jsonl" > /dev/null
"$run" --workload=oo7 --oo7=smallprime --policy=saga --seed=4 \
    --saga-frac=0.10 --decisions-out="$ckpt_dir/saga.jsonl" > /dev/null
analyze_out="$(./build-check/tools/odbgc_analyze --diff \
    --a="$ckpt_dir/saio.jsonl" --b="$ckpt_dir/saga.jsonl" \
    --label-a=saio --label-b=saga)"
echo "$analyze_out" | grep -q 'io_accuracy_winner=saio' || {
  echo "FAIL: analyze diff lost fig4 ordering:"; echo "$analyze_out"
  exit 1; }
echo "$analyze_out" | grep -q 'garbage_accuracy_winner=saga' || {
  echo "FAIL: analyze diff lost fig5 ordering:"; echo "$analyze_out"
  exit 1; }
echo "analyze smoke: SAIO wins I/O accuracy, SAGA wins garbage accuracy"

# Sweep failure isolation: one deliberately crashed run must land as
# structured failure data while the other runs stay byte-identical to a
# clean sweep, across thread counts.
"$run" --workload=oo7 --oo7=tiny --policy=saga --runs=4 --threads=1 \
    --sweep-json="$ckpt_dir/sweep-clean.json" > /dev/null
set +e
"$run" --workload=oo7 --oo7=tiny --policy=saga --runs=4 --threads=4 \
    --crash-at-event=2000 --crash-seed=2 \
    --sweep-json="$ckpt_dir/sweep-fail.json" > /dev/null 2>&1
sweep_exit=$?
set -e
[ "$sweep_exit" -eq 4 ] || {
  echo "FAIL: sweep with a crashed run exited $sweep_exit, want 4"; exit 1; }
python3 - "$ckpt_dir" <<'EOF'
import json, sys
d = sys.argv[1]
clean = json.load(open(d + "/sweep-clean.json"))
fail = json.load(open(d + "/sweep-fail.json"))
assert fail["summary"] == {"total": 4, "ok": 3, "failed": 1}, fail["summary"]
for c, f in zip(clean["runs"], fail["runs"]):
    if f["status"] == "failed":
        assert f["error_kind"] == "crash_injected", f
    else:
        assert c["report"] == f["report"], "run %d diverged" % f["index"]
print("sweep isolation smoke: 1 structured failure, 3 runs unchanged")
EOF

# Parallel-collection bench smoke: the hot-path micro-bench asserts
# internally that CollectBatch matches the serial sweep checksum; here we
# additionally require every section checksum to be identical across
# --gc-threads values (separate processes, separate pools).
bench_dir="$(mktemp -d /tmp/odbgc_bench.XXXXXX)"
trap 'rm -f "$trace_tmp"; rm -rf "$ckpt_dir" "$bench_dir"' EXIT
bench="$PWD/build-check/bench/micro_core_hotpath"
(cd "$bench_dir" && "$bench" --gc-threads=1 > /dev/null &&
    mv BENCH_hotpath_run.json t1.json)
(cd "$bench_dir" && "$bench" --gc-threads=4 > /dev/null &&
    mv BENCH_hotpath_run.json t4.json)
python3 - "$bench_dir" <<'EOF'
import json, sys
d = sys.argv[1]
t1 = json.load(open(d + "/t1.json"))
t4 = json.load(open(d + "/t4.json"))
c1 = {s["name"]: s["checksum"] for s in t1["sections"]}
c4 = {s["name"]: s["checksum"] for s in t4["sections"]}
assert c1 == c4, "checksums diverged across --gc-threads: %r vs %r" % (c1, c4)
print("bench smoke: %d section checksums identical at gc-threads 1 and 4"
      % len(c1))
EOF

# Multi-tenant smoke: the sharded engine's 100-client cell must produce
# byte-identical fleet checksums at two apply-lane counts run in
# separate processes (the in-binary --check-threads re-run is skipped —
# this cross-process compare subsumes it).
mt_bench="$PWD/build-check/bench/ext_multi_tenant"
(cd "$bench_dir" && "$mt_bench" --clients=100 --threads=1 \
    --check-threads=0 --trace-cache-mb=1 --json-out=mt1.json > /dev/null)
(cd "$bench_dir" && "$mt_bench" --clients=100 --threads=3 \
    --check-threads=0 --trace-cache-mb=1 --json-out=mt3.json > /dev/null)
python3 - "$bench_dir" <<'EOF'
import json, sys
d = sys.argv[1]
t1 = json.load(open(d + "/mt1.json"))
t3 = json.load(open(d + "/mt3.json"))
c1 = {s["name"]: s["checksum"] for s in t1["sections"]}
c3 = {s["name"]: s["checksum"] for s in t3["sections"]}
assert c1 == c3, "fleet checksums diverged across --threads: %r vs %r" % (
    c1, c3)
s1 = t1["sections"][0]
assert s1["clients"] == 100 and s1["ops"] > 0, s1
print("multi-tenant smoke: 100-client fleet checksum identical at "
      "threads 1 and 3 (%d events)" % s1["ops"])
EOF

# Self-healing smoke: one OO7 Small' run under the full silent
# corruption plan (bit flips + latent decay + dead pages/partitions,
# scrubber on) must finish cleanly with --verify=partition, repair
# every quarantined partition, and actually detect damage. The full
# 50-seed chaos soak runs in CI (tools/check_soak.sh).
"$run" --workload=oo7 --oo7=smallprime --policy=saga --seed=3 \
    --fault-seed=1003 --bitflip-prob=0.01 --decay-prob=0.005 \
    --decay-latency=32 --dead-page-prob=0.002 --dead-partition-prob=0.2 \
    --scrub-interval=32 --scrub-pages=8 --verify=partition \
    --json="$ckpt_dir/chaos.json" > /dev/null
python3 - "$ckpt_dir" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1] + "/chaos.json"))["self_healing"]
assert h["checksum_failures"] > 0, "chaos run injected nothing"
assert h["partitions_quarantined"] == h["partitions_repaired"] > 0, h
print("self-healing smoke: %d corruptions detected, %d partitions "
      "quarantined and repaired, verify clean"
      % (h["checksum_failures"], h["partitions_repaired"]))
EOF

# Overload-governor smoke: the same capacity-capped uniform-churn run
# (lazy fixed-rate policy, 1 MB ceiling) must exit 6 ungoverned and
# complete with --governor, with the report showing interventions and a
# peak utilization held under the ceiling. The multi-seed governed
# chaos soak runs in CI (tools/check_soak.sh).
overload_flags="--workload=uniform-churn --cycles=4000 --lists=8 \
    --length=16 --policy=fixed --rate=1000000 --max-db-mb=1"
set +e
"$run" $overload_flags > /dev/null 2>&1
overload_exit=$?
set -e
[ "$overload_exit" -eq 6 ] || {
  echo "FAIL: capped ungoverned run exited $overload_exit, want 6"; exit 1; }
"$run" $overload_flags --governor \
    --json="$ckpt_dir/overload.json" > /dev/null
python3 - "$ckpt_dir" <<'EOF'
import json, sys
o = json.load(open(sys.argv[1] + "/overload.json"))["overload"]
boosts = o["governor_boost_collections"]
emergencies = o["governor_emergency_collections"]
assert boosts + emergencies > 0, "governor survived without intervening: %r" % o
assert o["peak_utilization_pct"] < 100.0, o
print("overload smoke: exit 6 ungoverned; governed run survived the same cap "
      "(%d boosts, %d emergencies, peak %.1f%%)"
      % (boosts, emergencies, o["peak_utilization_pct"]))
EOF

# Crash-anywhere recovery fuzz (a short schedule here; CI runs the full
# 50-kill-point pass — see .github/workflows/ci.yml).
ODBGC_RECOVERY_KILLS="${ODBGC_RECOVERY_KILLS:-5}" \
    tools/check_recovery.sh build-check

tools/check_asan.sh build-asan
tools/check_tsan.sh build-tsan

echo "OK: plain suite + telemetry + checkpoint/recovery + asan + tsan green"
