#!/usr/bin/env bash
# Builds the parallel engine under ThreadSanitizer and runs the tests
# that exercise it. Usage: tools/check_tsan.sh [build-dir]
# Pass ODBGC_SANITIZE=address in the environment to run under ASan
# instead (same build flow, different -fsanitize flavor).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
SANITIZER="${ODBGC_SANITIZE:-thread}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DODBGC_SANITIZE="$SANITIZER"
cmake --build "$BUILD_DIR" \
  --target parallel_test simulation_test parallel_collect_test \
  self_healing_test client_mux_test multi_tenant_test overload_test \
  -j "$(nproc)"

echo "== parallel_test under ${SANITIZER} sanitizer =="
"$BUILD_DIR/tests/parallel_test"
echo "== simulation_test under ${SANITIZER} sanitizer =="
"$BUILD_DIR/tests/simulation_test"
echo "== parallel_collect_test (intra-run parallel collector) under ${SANITIZER} sanitizer =="
"$BUILD_DIR/tests/parallel_collect_test"
echo "== self_healing_test (chaos sweeps across thread counts) under ${SANITIZER} sanitizer =="
"$BUILD_DIR/tests/self_healing_test"
echo "== client_mux_test (streaming merge determinism) under ${SANITIZER} sanitizer =="
"$BUILD_DIR/tests/client_mux_test"
echo "== multi_tenant_test (sharded apply + budget coordinator) under ${SANITIZER} sanitizer =="
"$BUILD_DIR/tests/multi_tenant_test"
echo "== overload_test (governor + governed fleet backpressure) under ${SANITIZER} sanitizer =="
"$BUILD_DIR/tests/overload_test"
echo "OK: no ${SANITIZER} sanitizer reports"
