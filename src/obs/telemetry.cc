#include "obs/telemetry.h"

namespace odbgc::obs {

Telemetry::Telemetry(const TelemetryOptions& options) : options_(options) {
  if (options_.capture_trace) {
    recorder_ = std::make_unique<TraceRecorder>(options_.max_trace_events);
    page_events_ = options_.page_events;
  }
}

}  // namespace odbgc::obs
