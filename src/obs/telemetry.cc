#include "obs/telemetry.h"

#include "util/snapshot.h"

namespace odbgc::obs {

Telemetry::Telemetry(const TelemetryOptions& options) : options_(options) {
  if (options_.capture_trace) {
    recorder_ = std::make_unique<TraceRecorder>(options_.max_trace_events);
    page_events_ = options_.page_events;
  }
  if (options_.record_decisions) {
    ledger_ = std::make_unique<DecisionLedger>(options_.decision_capacity);
  }
  if (options_.sample_interval_events != 0) {
    sampler_ = std::make_unique<TimeSeriesSampler>(
        options_.sample_interval_events, options_.sample_capacity);
  }
}

void Telemetry::SaveState(SnapshotWriter& w) const {
  w.Tag("TEL0");
  w.U64(ticks_);
  metrics_.SaveState(w);
  w.Bool(ledger_ != nullptr);
  if (ledger_ != nullptr) ledger_->SaveState(w);
  w.Bool(sampler_ != nullptr);
  if (sampler_ != nullptr) sampler_->SaveState(w);
  w.Tag("TELE");
}

void Telemetry::RestoreState(SnapshotReader& r) {
  r.Tag("TEL0");
  ticks_ = r.U64();
  metrics_.RestoreState(r);
  // The checkpoint fingerprint deliberately excludes telemetry options,
  // so a resume may run with a different ledger/sampler configuration
  // than the checkpointing process. Saved streams the current
  // configuration did not enable are parsed into scratch objects and
  // discarded rather than failing the restore.
  if (r.Bool()) {
    DecisionLedger scratch(1);
    (ledger_ != nullptr ? *ledger_ : scratch).RestoreState(r);
  }
  if (r.Bool()) {
    TimeSeriesSampler scratch(0, 1);
    (sampler_ != nullptr ? *sampler_ : scratch).RestoreState(r);
  }
  r.Tag("TELE");
}

}  // namespace odbgc::obs
