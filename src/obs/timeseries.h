#ifndef ODBGC_OBS_TIMESERIES_H_
#define ODBGC_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace odbgc {
class SnapshotReader;
class SnapshotWriter;
}  // namespace odbgc

namespace odbgc::obs {

// One periodic snapshot of the metrics registry, stamped with the
// simulation's deterministic clocks. The sequence of frames is the
// learned-policy feature stream and what fig6-style time-series plots
// consume; it is a pure function of the simulated execution, so it is
// byte-identical across sweep thread counts and across crash/resume.
struct TimeSeriesFrame {
  uint64_t seq = 0;          // 0-based frame index, never reused
  uint64_t event = 0;        // trace event cursor when sampled
  uint64_t tick = 0;         // logical tick when sampled
  uint64_t collections = 0;  // collections completed so far
  TelemetrySnapshot metrics;
};

// Samples the registry every `interval_events` applied trace events into
// a bounded ring (newest `capacity` frames kept; shed frames counted).
class TimeSeriesSampler {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 13;
  static constexpr uint64_t kDefaultIntervalEvents = 1024;

  TimeSeriesSampler(uint64_t interval_events, size_t capacity);

  uint64_t interval() const { return interval_; }
  // True when a frame is owed at this event count.
  bool Due(uint64_t events) const {
    return interval_ != 0 && events % interval_ == 0;
  }

  void Sample(uint64_t event, uint64_t tick, uint64_t collections,
              const MetricsRegistry& registry);

  size_t size() const { return ring_.size(); }
  uint64_t total() const { return total_; }
  uint64_t dropped() const { return total_ - ring_.size(); }

  // Frames oldest-first.
  std::vector<TimeSeriesFrame> Frames() const;

  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  uint64_t interval_;
  size_t capacity_;
  std::vector<TimeSeriesFrame> ring_;
  size_t head_ = 0;  // index of the oldest frame once the ring is full
  uint64_t total_ = 0;
};

}  // namespace odbgc::obs

#endif  // ODBGC_OBS_TIMESERIES_H_
