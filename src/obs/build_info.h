#ifndef ODBGC_OBS_BUILD_INFO_H_
#define ODBGC_OBS_BUILD_INFO_H_

namespace odbgc::obs {

// Build provenance stamped at CMake configure time (see
// src/obs/build_info.cc.in) and echoed into every exported JSON so runs
// stay attributable to the binary that produced them. The git sha is
// captured when CMake configures, so it can trail the working tree by
// uncommitted changes; `git_dirty` flags a tree that had local edits.
struct BuildInfo {
  const char* git_sha;     // short sha, "unknown" outside a git checkout
  bool git_dirty;          // working tree had uncommitted changes
  const char* build_type;  // CMAKE_BUILD_TYPE
  bool telemetry;          // compiled with ODBGC_TELEMETRY
};

const BuildInfo& GetBuildInfo();

}  // namespace odbgc::obs

#endif  // ODBGC_OBS_BUILD_INFO_H_
