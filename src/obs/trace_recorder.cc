#include "obs/trace_recorder.h"

namespace odbgc::obs {

TraceRecorder::TraceRecorder(size_t max_events) : max_events_(max_events) {}

bool TraceRecorder::Admit() {
  if (events_.size() < max_events_) return true;
  ++dropped_;
  return false;
}

void TraceRecorder::Append(char ph, const char* name, uint64_t ts,
                           std::initializer_list<TraceArg> args) {
  TraceEventRec rec;
  rec.ph = ph;
  rec.name = name;
  rec.ts = ts;
  if (args.size() > 0) rec.args.assign(args.begin(), args.end());
  events_.push_back(std::move(rec));
}

void TraceRecorder::Begin(const char* name, uint64_t ts,
                          std::initializer_list<TraceArg> args) {
  // Once the cap is hit, whole spans are dropped Begin+End as a pair
  // (dropped_span_depth tracked via open_spans_ bookkeeping below) so
  // the retained stream still nests correctly.
  if (!Admit()) {
    ++dropped_spans_depth_;
    return;
  }
  ++open_spans_;
  Append('B', name, ts, args);
}

void TraceRecorder::End(const char* name, uint64_t ts,
                        std::initializer_list<TraceArg> args) {
  if (dropped_spans_depth_ > 0) {
    // This End matches a Begin that was dropped at the cap.
    --dropped_spans_depth_;
    ++dropped_;
    return;
  }
  if (open_spans_ == 0) return;  // unmatched End: ignore
  --open_spans_;
  // An admitted Begin always gets its End, even past the cap, so the
  // exported stream stays balanced.
  Append('E', name, ts, args);
}

void TraceRecorder::Instant(const char* name, uint64_t ts,
                            std::initializer_list<TraceArg> args) {
  if (!Admit()) return;
  Append('i', name, ts, args);
}

void TraceRecorder::CounterSample(const char* name, uint64_t ts,
                                  double value) {
  if (!Admit()) return;
  Append('C', name, ts, {TraceArg{"value", value}});
}

}  // namespace odbgc::obs
