#ifndef ODBGC_OBS_PROGRESS_H_
#define ODBGC_OBS_PROGRESS_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>

namespace odbgc::obs {

// One sampled line of live run state, assembled by the Simulation.
struct ProgressSample {
  uint64_t events = 0;
  uint64_t total_events = 0;  // 0 when unknown (incremental drivers)
  uint64_t collections = 0;
  uint64_t app_io = 0;
  uint64_t gc_io = 0;
  // Estimator-vs-ground-truth garbage error in percentage points;
  // meaningful only when has_estimate.
  bool has_estimate = false;
  double estimate_error_pp = 0.0;
  // Self-healing state (PR 7's counters); the printed line only grows a
  // suffix when any of these is nonzero, so healthy runs are unchanged.
  uint64_t pages_scrubbed = 0;
  uint32_t scrub_cursor_partition = 0;
  uint64_t quarantined_partitions = 0;
  uint64_t pending_corruption = 0;
};

// Live progress for one simulation run: periodic single-line reports to
// a stream (stderr by convention — stdout stays machine-readable).
// Wall-clock throttled, so the caller may offer samples as often as it
// likes; offers between intervals are dropped in a few instructions.
// Reporting never touches simulation state: runs with and without
// --progress are byte-identical on stdout and in every exported file.
class ProgressReporter {
 public:
  explicit ProgressReporter(std::FILE* out = stderr,
                            double interval_seconds = 0.5);

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  // Prints a line if at least the interval elapsed since the last one.
  void MaybeReport(const ProgressSample& sample);

  // Prints the closing line (always, regardless of the interval).
  void Finish(const ProgressSample& sample);

  uint64_t lines_printed() const { return lines_; }

 private:
  using Clock = std::chrono::steady_clock;

  void PrintLine(const ProgressSample& sample, bool final_line);

  std::FILE* out_;
  std::chrono::nanoseconds interval_;
  Clock::time_point start_;
  Clock::time_point last_report_;
  uint64_t last_events_ = 0;
  uint64_t lines_ = 0;
};

// Live progress for a sweep: "done/total runs" lines as workers finish.
// Thread-safe (workers report concurrently); wall-clock throttled like
// ProgressReporter, with the final run always reported.
class SweepProgress {
 public:
  SweepProgress(std::FILE* out, uint64_t total_runs,
                double interval_seconds = 1.0);

  SweepProgress(const SweepProgress&) = delete;
  SweepProgress& operator=(const SweepProgress&) = delete;

  // Called by a worker when one run completes.
  void OnRunDone();

  uint64_t done() const;

 private:
  using Clock = std::chrono::steady_clock;

  std::FILE* out_;
  uint64_t total_;
  std::chrono::nanoseconds interval_;
  Clock::time_point start_;

  mutable std::mutex mu_;
  uint64_t done_ = 0;
  Clock::time_point last_report_;
};

}  // namespace odbgc::obs

#endif  // ODBGC_OBS_PROGRESS_H_
