#ifndef ODBGC_OBS_DECISION_LEDGER_H_
#define ODBGC_OBS_DECISION_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace odbgc {
class SnapshotReader;
class SnapshotWriter;
}  // namespace odbgc

namespace odbgc::obs {

// Why a rate policy chose the interval it chose. One closed vocabulary
// across all five policy families so downstream consumers (odbgc_analyze,
// learned-policy feature extraction) never parse free-form strings.
// docs/POLICIES.md tables which codes each policy can emit.
enum class DecisionReason : uint8_t {
  kIntervalElapsed = 0,  // fixed/connectivity: static interval re-armed
  kAllocInterval,        // alloc_rate: allocation-clock interval re-armed
  kPartitionGrowth,      // alloc_triggered: partition count grew
  kBudgetSolve,          // saio/coupled: closed-form I/O budget solve
  kOverBudgetFloor,      // saio/coupled: already over budget, floored at 1
  kScaleFloor,           // coupled: garbage scale clamped up to min_scale
  kScaleCeiling,         // coupled: garbage scale clamped down to max_scale
  kSlopeSolve,           // saga: garbage-slope solve inside [dt_min, dt_max]
  kDegenerateSlopeMin,   // saga: unusable slope while over target -> dt_min
  kDegenerateSlopeMax,   // saga: unusable slope while under target -> dt_max
  kDtMinClamp,           // saga: solved dt clamped up to dt_min
  kDtMaxClamp,           // saga: solved dt clamped down to dt_max
  kIdleReschedule,       // saga: threshold recomputed after an idle collection
  kBudgetGrant,          // coordinator: shard's GC I/O budget raised
  kBudgetRevoke,         // coordinator: shard's GC I/O budget lowered
  kGovernorBoost,        // governor: yellow-watermark forced collection
  kEmergencyGc,          // governor: red-watermark synchronous collection
  kAdmissionDefer,       // mux/engine: client chunk deferred at a safe point
  kSafeModeEnter,        // governor: swapped to the fixed-rate fallback
  kSafeModeExit,         // governor: hysteresis-gated return to the policy
  kBreakerOpen,          // coordinator: shard circuit breaker opened
  kBreakerClose,         // coordinator: shard circuit breaker closed
};

// Stable wire name for a reason code ("budget_solve", ...).
const char* DecisionReasonName(DecisionReason r);

// One policy decision: the run context the controller saw (filled by the
// simulation just before the policy's OnCollection/OnIdleCollection) plus
// what the policy decided (filled by the policy's cold recording path).
struct PolicyDecisionRecord {
  // --- context ---
  uint64_t seq = 0;          // 0-based decision index, never reused
  uint64_t tick = 0;         // logical tick at decision time
  uint64_t event = 0;        // trace event cursor at decision time
  uint64_t collection = 0;   // 1-based collection index; 0 for idle decisions
  uint64_t app_io = 0;       // cumulative application transfers
  uint64_t gc_io = 0;        // cumulative GC transfers
  double io_pct = 0.0;       // GC share of all transfers so far, percent
  double garbage_pct = 0.0;  // oracle garbage / used bytes, percent
  uint64_t actual_garbage_bytes = 0;    // whole-database verifier oracle
  uint64_t estimate_bytes = 0;          // the policy's own estimator view
  uint64_t estimator_spread_bytes = 0;  // max-min across attached estimators
  uint64_t db_used_bytes = 0;
  uint64_t collection_gc_io = 0;  // this collection's copy traffic
  uint64_t bytes_reclaimed = 0;   // this collection's reclaim
  // --- decision ---
  std::string policy;  // RatePolicy::name()
  DecisionReason reason = DecisionReason::kIntervalElapsed;
  double chosen_interval = 0.0;  // policy-clock units until the next trigger
  uint64_t next_threshold = 0;   // absolute clock threshold armed
  double target = 0.0;  // io%% (saio/coupled) or garbage%% (saga); else 0
};

// Bounded ring of the most recent decisions. Writes are two-phase: the
// simulation stages run context with SetContext, then the policy merges
// its half in via Append. The ring keeps the newest `capacity` records
// and counts what it sheds, so a long run degrades to a suffix rather
// than failing. Snapshot/restored through checkpoints for byte-identical
// crash/resume exports.
class DecisionLedger {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit DecisionLedger(size_t capacity);

  // Stage the context half of the next record. Decision fields in `ctx`
  // are ignored; Append overwrites them.
  void SetContext(const PolicyDecisionRecord& ctx) { context_ = ctx; }

  // Complete and commit the staged record with the policy's decision.
  void Append(const char* policy, DecisionReason reason,
              double chosen_interval, uint64_t next_threshold, double target);

  size_t capacity() const { return capacity_; }
  size_t size() const { return ring_.size(); }
  uint64_t total() const { return total_; }
  uint64_t dropped() const { return total_ - ring_.size(); }

  // Records oldest-first.
  std::vector<PolicyDecisionRecord> Records() const;

  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  size_t capacity_;
  std::vector<PolicyDecisionRecord> ring_;
  size_t head_ = 0;  // index of the oldest record once the ring is full
  uint64_t total_ = 0;
  PolicyDecisionRecord context_;
};

}  // namespace odbgc::obs

#endif  // ODBGC_OBS_DECISION_LEDGER_H_
