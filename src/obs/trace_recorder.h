#ifndef ODBGC_OBS_TRACE_RECORDER_H_
#define ODBGC_OBS_TRACE_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace odbgc::obs {

// One typed argument of a trace event. Keys and the names of events are
// expected to be static string literals; string *values* are owned.
struct TraceArg {
  enum class Kind : uint8_t { kU64, kF64, kString };

  TraceArg(const char* k, uint64_t v) : key(k), kind(Kind::kU64), u64(v) {}
  TraceArg(const char* k, uint32_t v) : key(k), kind(Kind::kU64), u64(v) {}
  TraceArg(const char* k, int v)
      : key(k), kind(Kind::kU64), u64(static_cast<uint64_t>(v)) {}
  TraceArg(const char* k, double v) : key(k), kind(Kind::kF64), f64(v) {}
  TraceArg(const char* k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}

  const char* key;
  Kind kind;
  uint64_t u64 = 0;
  double f64 = 0.0;
  std::string str;
};

// One recorded event, 1:1 with a Chrome trace_event entry. `ph` follows
// the trace-event vocabulary: 'B'/'E' nested span begin/end, 'i'
// instant, 'C' counter sample.
struct TraceEventRec {
  char ph = 'i';
  const char* name = "";
  uint64_t ts = 0;  // microseconds on the recorder's timebase
  std::vector<TraceArg> args;
};

// Append-only event buffer for one logical thread of execution (one
// Simulation, or one sweep worker). Not thread-safe by design: each
// concurrent context records into its own recorder and the exporter
// merges them under distinct tids.
//
// The buffer is capped (page-level instants on a long run are the big
// spender); once full, further events are counted in dropped_events()
// instead of silently vanishing — the exporter surfaces the count.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t max_events = kDefaultMaxEvents);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static constexpr size_t kDefaultMaxEvents = 2u << 20;

  void Begin(const char* name, uint64_t ts,
             std::initializer_list<TraceArg> args = {});
  void End(const char* name, uint64_t ts,
           std::initializer_list<TraceArg> args = {});
  void Instant(const char* name, uint64_t ts,
               std::initializer_list<TraceArg> args = {});
  void CounterSample(const char* name, uint64_t ts, double value);

  const std::vector<TraceEventRec>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  uint64_t dropped_events() const { return dropped_; }
  // Spans currently open (Begin without matching End).
  size_t open_spans() const { return open_spans_; }

 private:
  bool Admit();
  void Append(char ph, const char* name, uint64_t ts,
              std::initializer_list<TraceArg> args);

  size_t max_events_;
  std::vector<TraceEventRec> events_;
  uint64_t dropped_ = 0;
  size_t open_spans_ = 0;
  // Nesting depth of spans whose Begin fell past the cap; their Ends are
  // dropped too so the retained stream stays balanced.
  size_t dropped_spans_depth_ = 0;
};

}  // namespace odbgc::obs

#endif  // ODBGC_OBS_TRACE_RECORDER_H_
