#include "obs/decision_ledger.h"

#include "util/snapshot.h"

namespace odbgc::obs {

const char* DecisionReasonName(DecisionReason r) {
  switch (r) {
    case DecisionReason::kIntervalElapsed:
      return "interval_elapsed";
    case DecisionReason::kAllocInterval:
      return "alloc_interval";
    case DecisionReason::kPartitionGrowth:
      return "partition_growth";
    case DecisionReason::kBudgetSolve:
      return "budget_solve";
    case DecisionReason::kOverBudgetFloor:
      return "over_budget_floor";
    case DecisionReason::kScaleFloor:
      return "scale_floor";
    case DecisionReason::kScaleCeiling:
      return "scale_ceiling";
    case DecisionReason::kSlopeSolve:
      return "slope_solve";
    case DecisionReason::kDegenerateSlopeMin:
      return "degenerate_slope_min";
    case DecisionReason::kDegenerateSlopeMax:
      return "degenerate_slope_max";
    case DecisionReason::kDtMinClamp:
      return "dt_min_clamp";
    case DecisionReason::kDtMaxClamp:
      return "dt_max_clamp";
    case DecisionReason::kIdleReschedule:
      return "idle_reschedule";
    case DecisionReason::kBudgetGrant:
      return "budget_grant";
    case DecisionReason::kBudgetRevoke:
      return "budget_revoke";
    case DecisionReason::kGovernorBoost:
      return "governor_boost";
    case DecisionReason::kEmergencyGc:
      return "emergency_gc";
    case DecisionReason::kAdmissionDefer:
      return "admission_defer";
    case DecisionReason::kSafeModeEnter:
      return "safe_mode_enter";
    case DecisionReason::kSafeModeExit:
      return "safe_mode_exit";
    case DecisionReason::kBreakerOpen:
      return "breaker_open";
    case DecisionReason::kBreakerClose:
      return "breaker_close";
  }
  return "unknown";
}

DecisionLedger::DecisionLedger(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void DecisionLedger::Append(const char* policy, DecisionReason reason,
                            double chosen_interval, uint64_t next_threshold,
                            double target) {
  PolicyDecisionRecord rec = context_;
  rec.seq = total_;
  rec.policy = policy;
  rec.reason = reason;
  rec.chosen_interval = chosen_interval;
  rec.next_threshold = next_threshold;
  rec.target = target;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[head_] = std::move(rec);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<PolicyDecisionRecord> DecisionLedger::Records() const {
  std::vector<PolicyDecisionRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

namespace {

void SaveRecord(SnapshotWriter& w, const PolicyDecisionRecord& r) {
  w.U64(r.seq);
  w.U64(r.tick);
  w.U64(r.event);
  w.U64(r.collection);
  w.U64(r.app_io);
  w.U64(r.gc_io);
  w.F64(r.io_pct);
  w.F64(r.garbage_pct);
  w.U64(r.actual_garbage_bytes);
  w.U64(r.estimate_bytes);
  w.U64(r.estimator_spread_bytes);
  w.U64(r.db_used_bytes);
  w.U64(r.collection_gc_io);
  w.U64(r.bytes_reclaimed);
  w.Str(r.policy);
  w.U8(static_cast<uint8_t>(r.reason));
  w.F64(r.chosen_interval);
  w.U64(r.next_threshold);
  w.F64(r.target);
}

PolicyDecisionRecord RestoreRecord(SnapshotReader& r) {
  PolicyDecisionRecord rec;
  rec.seq = r.U64();
  rec.tick = r.U64();
  rec.event = r.U64();
  rec.collection = r.U64();
  rec.app_io = r.U64();
  rec.gc_io = r.U64();
  rec.io_pct = r.F64();
  rec.garbage_pct = r.F64();
  rec.actual_garbage_bytes = r.U64();
  rec.estimate_bytes = r.U64();
  rec.estimator_spread_bytes = r.U64();
  rec.db_used_bytes = r.U64();
  rec.collection_gc_io = r.U64();
  rec.bytes_reclaimed = r.U64();
  rec.policy = r.Str();
  rec.reason = static_cast<DecisionReason>(r.U8());
  rec.chosen_interval = r.F64();
  rec.next_threshold = r.U64();
  rec.target = r.F64();
  return rec;
}

}  // namespace

void DecisionLedger::SaveState(SnapshotWriter& w) const {
  w.Tag("DLG0");
  w.U64(total_);
  w.U64(ring_.size());
  // Oldest-first, so restore can refill a ring of any capacity and keep
  // the newest suffix.
  for (size_t i = 0; i < ring_.size(); ++i) {
    SaveRecord(w, ring_[(head_ + i) % ring_.size()]);
  }
  w.Tag("DLGE");
}

void DecisionLedger::RestoreState(SnapshotReader& r) {
  r.Tag("DLG0");
  total_ = r.U64();
  const uint64_t n = r.U64();
  ring_.clear();
  head_ = 0;
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    PolicyDecisionRecord rec = RestoreRecord(r);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(rec));
    } else {
      ring_[head_] = std::move(rec);
      head_ = (head_ + 1) % capacity_;
    }
  }
  r.Tag("DLGE");
}

}  // namespace odbgc::obs
