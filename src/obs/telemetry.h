#ifndef ODBGC_OBS_TELEMETRY_H_
#define ODBGC_OBS_TELEMETRY_H_

#include <cstdint>
#include <initializer_list>
#include <memory>

#include "obs/decision_ledger.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace_recorder.h"

namespace odbgc {
class SnapshotReader;
class SnapshotWriter;
}  // namespace odbgc

// Compile-time master switch. Built with -DODBGC_TELEMETRY=0 (CMake
// option ODBGC_TELEMETRY=OFF) every instrumentation site in the hot
// paths compiles away to nothing; the obs library itself still builds so
// exporters and tests of the data structures keep working. The default
// is on: the runtime cost of disabled-but-compiled-in telemetry is one
// pointer null check per instrumented site.
#ifndef ODBGC_TELEMETRY
#define ODBGC_TELEMETRY 1
#endif

#if ODBGC_TELEMETRY
// `ODBGC_IF_TEL(tel) { ... }` runs the block iff telemetry is attached.
// The [[unlikely]] hint makes the compiler outline the block to a cold
// section, keeping un-instrumented runs at a predicted-not-taken branch.
#define ODBGC_IF_TEL(tel) if ((tel) != nullptr) [[unlikely]]
#else
// The discarded-branch body is still type-checked, so instrumented code
// cannot rot, but the optimizer deletes it entirely.
#define ODBGC_IF_TEL(tel) if constexpr (false)
#endif

namespace odbgc::obs {

// Per-run telemetry configuration. Default-constructed options disable
// everything, leaving instrumented components with a null telemetry
// pointer — behavior and output stay byte-identical to a build that
// never heard of telemetry.
struct TelemetryOptions {
  // Master runtime switch: collect counters/gauges/histograms.
  bool enabled = false;
  // Also record structured trace events (spans + instants).
  bool capture_trace = false;
  // Emit a per-physical-transfer instant event into the trace. These are
  // the bulk of a trace's volume; the metrics counters are kept
  // regardless.
  bool page_events = true;
  // Trace buffer cap; see TraceRecorder.
  size_t max_trace_events = TraceRecorder::kDefaultMaxEvents;
  // Record every rate-policy decision into a bounded ledger
  // (--decisions-out). Implies metric collection stays meaningful even
  // when `enabled` is false, so any() treats it as an enable.
  bool record_decisions = false;
  size_t decision_capacity = DecisionLedger::kDefaultCapacity;
  // Snapshot the metrics registry every N applied trace events into
  // time-series frames (--timeseries-out). 0 disables sampling.
  uint64_t sample_interval_events = 0;
  size_t sample_capacity = TimeSeriesSampler::kDefaultCapacity;

  bool any() const {
    return enabled || capture_trace || record_decisions ||
           sample_interval_events != 0;
  }
};

// One run's telemetry context: a metrics registry, an optional trace
// recorder, and the deterministic timebase they share. Owned by the
// Simulation (one per run, never shared across threads) and attached to
// the components it wires together — the same pattern DiskModel and
// FaultInjector use.
//
// Timebase: `ticks` is a logical microsecond counter advanced by the
// instrumented components themselves — one tick per simulated physical
// page transfer and one per applied trace event. It is a function of
// the simulation's deterministic execution only, so recorded traces are
// reproducible run-to-run and across sweep thread counts.
class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryOptions& options() const { return options_; }

  // --- timebase ---
  void Advance(uint64_t ticks = 1) { ticks_ += ticks; }
  uint64_t now() const { return ticks_; }

  // --- metrics ---
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TelemetrySnapshot Snapshot() const { return metrics_.Snapshot(); }

  // --- structured trace ---
  // Null when capture_trace is off; instrumentation sites test this
  // before building args.
  TraceRecorder* recorder() { return recorder_.get(); }
  const TraceRecorder* recorder() const { return recorder_.get(); }
  // True when per-transfer page I/O instants should be recorded.
  bool page_events() const { return page_events_; }

  // --- decision ledger / time-series sampler ---
  // Null unless the corresponding option enabled them; recording sites
  // test for null, so unconfigured streams cost nothing.
  DecisionLedger* ledger() { return ledger_.get(); }
  const DecisionLedger* ledger() const { return ledger_.get(); }
  TimeSeriesSampler* sampler() { return sampler_.get(); }
  const TimeSeriesSampler* sampler() const { return sampler_.get(); }

  // Checkpoint support: ticks, every metric, the decision ledger and the
  // sampled frames round-trip bit-exactly, so a crash/resume run exports
  // byte-identical streams. The structured trace recorder is NOT part of
  // the snapshot (traces remain per-process).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

  void Instant(const char* name, std::initializer_list<TraceArg> args = {}) {
    if (recorder_) recorder_->Instant(name, ticks_, args);
  }
  void Begin(const char* name, std::initializer_list<TraceArg> args = {}) {
    if (recorder_) recorder_->Begin(name, ticks_, args);
  }
  void End(const char* name, std::initializer_list<TraceArg> args = {}) {
    if (recorder_) recorder_->End(name, ticks_, args);
  }

 private:
  TelemetryOptions options_;
  uint64_t ticks_ = 0;
  MetricsRegistry metrics_;
  std::unique_ptr<TraceRecorder> recorder_;
  std::unique_ptr<DecisionLedger> ledger_;
  std::unique_ptr<TimeSeriesSampler> sampler_;
  bool page_events_ = false;
};

// RAII span: Begin at construction, End at destruction. A null telemetry
// pointer makes every operation a no-op, which is also how the
// compiled-out configuration routes around it.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* tel, const char* name,
             std::initializer_list<TraceArg> args = {})
      : tel_(tel), name_(name) {
    if (tel_ != nullptr) tel_->Begin(name_, args);
  }
  ~ScopedSpan() {
    if (tel_ != nullptr) tel_->End(name_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Telemetry* tel_;
  const char* name_;
};

}  // namespace odbgc::obs

// Declares a scoped span named `var`. Compiled out (the span object is
// constructed with a constant null telemetry pointer, which the
// optimizer deletes) when ODBGC_TELEMETRY is 0.
#if ODBGC_TELEMETRY
#define ODBGC_TEL_SPAN(var, tel, ...) \
  ::odbgc::obs::ScopedSpan var((tel), __VA_ARGS__)
#else
#define ODBGC_TEL_SPAN(var, tel, ...) \
  ::odbgc::obs::ScopedSpan var(nullptr, __VA_ARGS__)
#endif

#endif  // ODBGC_OBS_TELEMETRY_H_
