#include "obs/timeseries.h"

#include "util/snapshot.h"

namespace odbgc::obs {

TimeSeriesSampler::TimeSeriesSampler(uint64_t interval_events, size_t capacity)
    : interval_(interval_events), capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesSampler::Sample(uint64_t event, uint64_t tick,
                               uint64_t collections,
                               const MetricsRegistry& registry) {
  TimeSeriesFrame frame;
  frame.seq = total_;
  frame.event = event;
  frame.tick = tick;
  frame.collections = collections;
  frame.metrics = registry.Snapshot();
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(frame));
  } else {
    ring_[head_] = std::move(frame);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TimeSeriesFrame> TimeSeriesSampler::Frames() const {
  std::vector<TimeSeriesFrame> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

namespace {

void SaveSnapshot(SnapshotWriter& w, const TelemetrySnapshot& s) {
  w.U64(s.counters.size());
  for (const CounterSnapshot& c : s.counters) {
    w.Str(c.id);
    w.U64(c.value);
  }
  w.U64(s.gauges.size());
  for (const GaugeSnapshot& g : s.gauges) {
    w.Str(g.id);
    w.F64(g.value);
  }
  w.U64(s.histograms.size());
  for (const HistogramSnapshot& h : s.histograms) {
    w.Str(h.id);
    w.U64(h.count);
    w.U64(h.min);
    w.U64(h.max);
    w.F64(h.mean);
    w.F64(h.p50);
    w.F64(h.p95);
    w.F64(h.p99);
  }
}

TelemetrySnapshot RestoreSnapshot(SnapshotReader& r) {
  TelemetrySnapshot s;
  const uint64_t nc = r.U64();
  for (uint64_t i = 0; i < nc && r.ok(); ++i) {
    CounterSnapshot c;
    c.id = r.Str();
    c.value = r.U64();
    s.counters.push_back(std::move(c));
  }
  const uint64_t ng = r.U64();
  for (uint64_t i = 0; i < ng && r.ok(); ++i) {
    GaugeSnapshot g;
    g.id = r.Str();
    g.value = r.F64();
    s.gauges.push_back(std::move(g));
  }
  const uint64_t nh = r.U64();
  for (uint64_t i = 0; i < nh && r.ok(); ++i) {
    HistogramSnapshot h;
    h.id = r.Str();
    h.count = r.U64();
    h.min = r.U64();
    h.max = r.U64();
    h.mean = r.F64();
    h.p50 = r.F64();
    h.p95 = r.F64();
    h.p99 = r.F64();
    s.histograms.push_back(std::move(h));
  }
  return s;
}

}  // namespace

void TimeSeriesSampler::SaveState(SnapshotWriter& w) const {
  w.Tag("TSS0");
  w.U64(total_);
  w.U64(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    const TimeSeriesFrame& f = ring_[(head_ + i) % ring_.size()];
    w.U64(f.seq);
    w.U64(f.event);
    w.U64(f.tick);
    w.U64(f.collections);
    SaveSnapshot(w, f.metrics);
  }
  w.Tag("TSSE");
}

void TimeSeriesSampler::RestoreState(SnapshotReader& r) {
  r.Tag("TSS0");
  total_ = r.U64();
  const uint64_t n = r.U64();
  ring_.clear();
  head_ = 0;
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    TimeSeriesFrame f;
    f.seq = r.U64();
    f.event = r.U64();
    f.tick = r.U64();
    f.collections = r.U64();
    f.metrics = RestoreSnapshot(r);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(f));
    } else {
      ring_[head_] = std::move(f);
      head_ = (head_ + 1) % capacity_;
    }
  }
  r.Tag("TSSE");
}

}  // namespace odbgc::obs
