#ifndef ODBGC_OBS_PERFETTO_EXPORT_H_
#define ODBGC_OBS_PERFETTO_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace_recorder.h"

namespace odbgc::obs {

// One logical thread of a Chrome/Perfetto trace: a recorder plus the
// tid and thread name it is exported under.
struct TraceThread {
  const TraceRecorder* recorder = nullptr;
  int tid = 0;
  std::string name;  // thread_name metadata ("simulation", "worker-3")
};

// Serializes recorders into the Chrome trace_event JSON object format
// ({"traceEvents": [...], ...}), loadable in ui.perfetto.dev and
// chrome://tracing. Every event carries the required ph/ts/pid/tid
// fields; build provenance and the per-recorder dropped-event counts go
// into "otherData". `ts` is whatever timebase the recorders used
// (deterministic sim ticks for Simulation traces, wall microseconds for
// sweep profiles); "displayTimeUnit" is ms either way.
std::string ChromeTraceJson(const std::vector<TraceThread>& threads,
                            const std::string& process_name = "odbgc");

// Writes ChromeTraceJson to `path`; false on I/O failure.
bool WriteChromeTrace(const std::vector<TraceThread>& threads,
                      const std::string& path,
                      const std::string& process_name = "odbgc");

}  // namespace odbgc::obs

#endif  // ODBGC_OBS_PERFETTO_EXPORT_H_
