#include "obs/perfetto_export.h"

#include <cstdio>

#include "obs/build_info.h"
#include "util/json.h"

namespace odbgc::obs {

namespace {

constexpr int kPid = 1;

void WriteArgs(JsonWriter& w, const std::vector<TraceArg>& args) {
  w.Key("args");
  w.BeginObject();
  for (const TraceArg& a : args) {
    w.Key(a.key);
    switch (a.kind) {
      case TraceArg::Kind::kU64:
        w.Value(a.u64);
        break;
      case TraceArg::Kind::kF64:
        w.Value(a.f64);
        break;
      case TraceArg::Kind::kString:
        w.Value(a.str);
        break;
    }
  }
  w.EndObject();
}

void WriteEvent(JsonWriter& w, const TraceEventRec& e, int tid) {
  w.BeginObject();
  w.Key("name");
  w.Value(e.name);
  w.Key("ph");
  w.Value(std::string(1, e.ph));
  w.Key("ts");
  w.Value(e.ts);
  w.Key("pid");
  w.Value(static_cast<uint64_t>(kPid));
  w.Key("tid");
  w.Value(static_cast<uint64_t>(tid));
  if (e.ph == 'i') {
    w.Key("s");  // instant scope: thread
    w.Value("t");
  }
  if (!e.args.empty()) WriteArgs(w, e.args);
  w.EndObject();
}

void WriteMetadata(JsonWriter& w, const char* name, int tid,
                   const std::string& value) {
  w.BeginObject();
  w.Key("name");
  w.Value(name);
  w.Key("ph");
  w.Value("M");
  w.Key("ts");
  w.Value(uint64_t{0});
  w.Key("pid");
  w.Value(static_cast<uint64_t>(kPid));
  w.Key("tid");
  w.Value(static_cast<uint64_t>(tid));
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.Value(value);
  w.EndObject();
  w.EndObject();
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceThread>& threads,
                            const std::string& process_name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  WriteMetadata(w, "process_name", 0, process_name);
  for (const TraceThread& t : threads) {
    if (!t.name.empty()) WriteMetadata(w, "thread_name", t.tid, t.name);
  }
  for (const TraceThread& t : threads) {
    if (t.recorder == nullptr) continue;
    for (const TraceEventRec& e : t.recorder->events()) {
      WriteEvent(w, e, t.tid);
    }
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.Value("ms");

  uint64_t dropped = 0;
  for (const TraceThread& t : threads) {
    if (t.recorder != nullptr) dropped += t.recorder->dropped_events();
  }
  const BuildInfo& build = GetBuildInfo();
  w.Key("otherData");
  w.BeginObject();
  w.Key("git_sha");
  w.Value(build.git_sha);
  w.Key("git_dirty");
  w.Value(build.git_dirty);
  w.Key("build_type");
  w.Value(build.build_type);
  w.Key("telemetry");
  w.Value(build.telemetry);
  w.Key("dropped_events");
  w.Value(dropped);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

bool WriteChromeTrace(const std::vector<TraceThread>& threads,
                      const std::string& path,
                      const std::string& process_name) {
  std::string json = ChromeTraceJson(threads, process_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace odbgc::obs
