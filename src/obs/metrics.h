#ifndef ODBGC_OBS_METRICS_H_
#define ODBGC_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace odbgc {
class SnapshotReader;
class SnapshotWriter;
}  // namespace odbgc

namespace odbgc::obs {

// A monotonic counter. Instrumented code holds the Counter* obtained
// from the registry at attach time and bumps `value` directly: the hot
// path is a plain 64-bit increment — no lookup, no lock, no atomic
// (telemetry is per-Simulation, and a Simulation is single-threaded
// even inside a parallel sweep).
struct Counter {
  uint64_t value = 0;

  void Add(uint64_t n) { value += n; }
  void Increment() { ++value; }
};

// A last-value gauge (e.g. resident buffer pages, partition count).
struct Gauge {
  double value = 0.0;

  void Set(double v) { value = v; }
};

// Log-scaled histogram: one bucket per power of two (bucket 0 holds the
// value 0, bucket b >= 1 holds [2^(b-1), 2^b)). Percentiles interpolate
// linearly inside the winning bucket and are clamped to the observed
// [min, max], so exact-value distributions (all samples equal) report
// exact percentiles.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  // p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  const uint64_t* buckets() const { return buckets_; }

  // Folds another histogram's samples into this one (bucket-wise sum plus
  // the running stats). Used to aggregate per-shard stall histograms into
  // one fleet-wide distribution; merging preserves every per-bucket count,
  // so percentiles of the merge equal percentiles of the pooled samples
  // at this histogram's bucket resolution.
  void Merge(const Histogram& other);

  // Bit-exact serialization (buckets + running stats) for checkpointed
  // telemetry; see MetricsRegistry::SaveState.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

// Point-in-time copies of the registry, embedded into SimResult so that
// reports stay plain copyable data. Entries are sorted by id, making the
// snapshot — and any JSON printed from it — deterministic.
struct CounterSnapshot {
  std::string id;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string id;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string id;
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct TelemetrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// Registry of named metrics. Ids are expected to be static string
// literals ("storage.page_reads.app"); registration happens once at
// attach time and returns a stable pointer, so steady-state updates
// never touch the registry again. Re-registering an id returns the
// existing instrument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const char* id);
  Gauge* GetGauge(const char* id);
  Histogram* GetHistogram(const char* id);

  // Sorted-by-id copy of every registered instrument.
  TelemetrySnapshot Snapshot() const;

  // Checkpoint support. SaveState serializes every instrument sorted by
  // id; RestoreState re-registers each id (instruments registered before
  // the restore keep their pointers — registration only appends) and
  // overwrites its value, so a resumed run continues the original run's
  // streams bit-exactly.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  template <typename T>
  struct Entry {
    std::string id;
    std::unique_ptr<T> instrument;
  };

  template <typename T>
  static T* FindOrCreate(std::vector<Entry<T>>* entries, const char* id);

  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

}  // namespace odbgc::obs

#endif  // ODBGC_OBS_METRICS_H_
