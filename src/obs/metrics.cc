#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace odbgc::obs {

namespace {

// Lower bound of bucket b: 0, 1, 2, 4, 8, ...
double BucketLow(size_t b) {
  if (b == 0) return 0.0;
  return static_cast<double>(uint64_t{1} << (b - 1));
}

// Exclusive upper bound of bucket b: 1, 2, 4, 8, ... (bucket 64 would
// overflow a shift; its bound is 2^64).
double BucketHigh(size_t b) {
  if (b == 0) return 1.0;
  if (b >= 64) return 18446744073709551616.0;  // 2^64
  return static_cast<double>(uint64_t{1} << b);
}

}  // namespace

void Histogram::Record(uint64_t value) {
  size_t bucket = value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 100.0) return static_cast<double>(max_);
  // Rank of the requested percentile (1-based, nearest-rank with
  // interpolation inside the bucket).
  const double rank = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[b];
    if (static_cast<double>(seen) < rank) continue;
    // Linear interpolation across the bucket's value range.
    const double frac =
        (rank - before) / static_cast<double>(buckets_[b]);
    double v = BucketLow(b) + frac * (BucketHigh(b) - BucketLow(b));
    // Clamp to the observed extremes so degenerate distributions
    // (single value, narrow range) report exact results.
    v = std::max(v, static_cast<double>(min()));
    v = std::min(v, static_cast<double>(max_));
    return v;
  }
  return static_cast<double>(max_);
}

template <typename T>
T* MetricsRegistry::FindOrCreate(std::vector<Entry<T>>* entries,
                                 const char* id) {
  for (Entry<T>& e : *entries) {
    if (e.id == id) return e.instrument.get();
  }
  entries->push_back(Entry<T>{id, std::make_unique<T>()});
  return entries->back().instrument.get();
}

Counter* MetricsRegistry::GetCounter(const char* id) {
  return FindOrCreate(&counters_, id);
}

Gauge* MetricsRegistry::GetGauge(const char* id) {
  return FindOrCreate(&gauges_, id);
}

Histogram* MetricsRegistry::GetHistogram(const char* id) {
  return FindOrCreate(&histograms_, id);
}

TelemetrySnapshot MetricsRegistry::Snapshot() const {
  TelemetrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const Entry<Counter>& e : counters_) {
    snap.counters.push_back(CounterSnapshot{e.id, e.instrument->value});
  }
  snap.gauges.reserve(gauges_.size());
  for (const Entry<Gauge>& e : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{e.id, e.instrument->value});
  }
  snap.histograms.reserve(histograms_.size());
  for (const Entry<Histogram>& e : histograms_) {
    const Histogram& h = *e.instrument;
    snap.histograms.push_back(HistogramSnapshot{
        e.id, h.count(), h.min(), h.max(), h.mean(), h.Percentile(50.0),
        h.Percentile(95.0), h.Percentile(99.0)});
  }
  auto by_id = [](const auto& a, const auto& b) { return a.id < b.id; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_id);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_id);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_id);
  return snap;
}

}  // namespace odbgc::obs
