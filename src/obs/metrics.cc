#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "util/snapshot.h"

namespace odbgc::obs {

namespace {

// Lower bound of bucket b: 0, 1, 2, 4, 8, ...
double BucketLow(size_t b) {
  if (b == 0) return 0.0;
  return static_cast<double>(uint64_t{1} << (b - 1));
}

// Exclusive upper bound of bucket b: 1, 2, 4, 8, ... (bucket 64 would
// overflow a shift; its bound is 2^64).
double BucketHigh(size_t b) {
  if (b == 0) return 1.0;
  if (b >= 64) return 18446744073709551616.0;  // 2^64
  return static_cast<double>(uint64_t{1} << b);
}

}  // namespace

void Histogram::Record(uint64_t value) {
  size_t bucket = value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 100.0) return static_cast<double>(max_);
  // Rank of the requested percentile (1-based, nearest-rank with
  // interpolation inside the bucket).
  const double rank = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[b];
    if (static_cast<double>(seen) < rank) continue;
    // Linear interpolation across the bucket's value range.
    const double frac =
        (rank - before) / static_cast<double>(buckets_[b]);
    double v = BucketLow(b) + frac * (BucketHigh(b) - BucketLow(b));
    // Clamp to the observed extremes so degenerate distributions
    // (single value, narrow range) report exact results.
    v = std::max(v, static_cast<double>(min()));
    v = std::min(v, static_cast<double>(max_));
    return v;
  }
  return static_cast<double>(max_);
}

void Histogram::SaveState(SnapshotWriter& w) const {
  for (size_t b = 0; b < kBuckets; ++b) w.U64(buckets_[b]);
  w.U64(count_);
  w.U64(sum_);
  w.U64(min_);
  w.U64(max_);
}

void Histogram::RestoreState(SnapshotReader& r) {
  for (size_t b = 0; b < kBuckets; ++b) buckets_[b] = r.U64();
  count_ = r.U64();
  sum_ = r.U64();
  min_ = r.U64();
  max_ = r.U64();
}

template <typename T>
T* MetricsRegistry::FindOrCreate(std::vector<Entry<T>>* entries,
                                 const char* id) {
  for (Entry<T>& e : *entries) {
    if (e.id == id) return e.instrument.get();
  }
  entries->push_back(Entry<T>{id, std::make_unique<T>()});
  return entries->back().instrument.get();
}

Counter* MetricsRegistry::GetCounter(const char* id) {
  return FindOrCreate(&counters_, id);
}

Gauge* MetricsRegistry::GetGauge(const char* id) {
  return FindOrCreate(&gauges_, id);
}

Histogram* MetricsRegistry::GetHistogram(const char* id) {
  return FindOrCreate(&histograms_, id);
}

TelemetrySnapshot MetricsRegistry::Snapshot() const {
  TelemetrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const Entry<Counter>& e : counters_) {
    snap.counters.push_back(CounterSnapshot{e.id, e.instrument->value});
  }
  snap.gauges.reserve(gauges_.size());
  for (const Entry<Gauge>& e : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{e.id, e.instrument->value});
  }
  snap.histograms.reserve(histograms_.size());
  for (const Entry<Histogram>& e : histograms_) {
    const Histogram& h = *e.instrument;
    snap.histograms.push_back(HistogramSnapshot{
        e.id, h.count(), h.min(), h.max(), h.mean(), h.Percentile(50.0),
        h.Percentile(95.0), h.Percentile(99.0)});
  }
  auto by_id = [](const auto& a, const auto& b) { return a.id < b.id; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_id);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_id);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_id);
  return snap;
}

void MetricsRegistry::SaveState(SnapshotWriter& w) const {
  // Serialize in sorted-id order so the stream does not depend on
  // registration order (lazy registration can differ between an original
  // and a resumed process; Snapshot() sorts anyway).
  auto sorted_ids = [](const auto& entries) {
    std::vector<const std::string*> ids;
    ids.reserve(entries.size());
    for (const auto& e : entries) ids.push_back(&e.id);
    std::sort(ids.begin(), ids.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    return ids;
  };
  w.Tag("MET0");
  w.U64(counters_.size());
  for (const std::string* id : sorted_ids(counters_)) {
    w.Str(*id);
    for (const Entry<Counter>& e : counters_) {
      if (e.id == *id) w.U64(e.instrument->value);
    }
  }
  w.U64(gauges_.size());
  for (const std::string* id : sorted_ids(gauges_)) {
    w.Str(*id);
    for (const Entry<Gauge>& e : gauges_) {
      if (e.id == *id) w.F64(e.instrument->value);
    }
  }
  w.U64(histograms_.size());
  for (const std::string* id : sorted_ids(histograms_)) {
    w.Str(*id);
    for (const Entry<Histogram>& e : histograms_) {
      if (e.id == *id) e.instrument->SaveState(w);
    }
  }
  w.Tag("METE");
}

void MetricsRegistry::RestoreState(SnapshotReader& r) {
  r.Tag("MET0");
  const uint64_t nc = r.U64();
  for (uint64_t i = 0; i < nc && r.ok(); ++i) {
    const std::string id = r.Str();
    GetCounter(id.c_str())->value = r.U64();
  }
  const uint64_t ng = r.U64();
  for (uint64_t i = 0; i < ng && r.ok(); ++i) {
    const std::string id = r.Str();
    GetGauge(id.c_str())->value = r.F64();
  }
  const uint64_t nh = r.U64();
  for (uint64_t i = 0; i < nh && r.ok(); ++i) {
    const std::string id = r.Str();
    GetHistogram(id.c_str())->RestoreState(r);
  }
  r.Tag("METE");
}

}  // namespace odbgc::obs
