#include "obs/progress.h"

namespace odbgc::obs {

namespace {

std::chrono::nanoseconds SecondsToNs(double s) {
  return std::chrono::nanoseconds(
      static_cast<int64_t>(s * 1e9 < 0.0 ? 0.0 : s * 1e9));
}

}  // namespace

ProgressReporter::ProgressReporter(std::FILE* out, double interval_seconds)
    : out_(out),
      interval_(SecondsToNs(interval_seconds)),
      start_(Clock::now()),
      last_report_(start_ - interval_) {}

void ProgressReporter::MaybeReport(const ProgressSample& sample) {
  Clock::time_point now = Clock::now();
  if (now - last_report_ < interval_) return;
  last_report_ = now;
  PrintLine(sample, /*final_line=*/false);
}

void ProgressReporter::Finish(const ProgressSample& sample) {
  last_report_ = Clock::now();
  PrintLine(sample, /*final_line=*/true);
}

void ProgressReporter::PrintLine(const ProgressSample& sample,
                                 bool final_line) {
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start_).count();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(sample.events) / elapsed : 0.0;
  const uint64_t total_io = sample.app_io + sample.gc_io;
  const double gc_pct =
      total_io > 0
          ? 100.0 * static_cast<double>(sample.gc_io) /
                static_cast<double>(total_io)
          : 0.0;

  char pct[16] = "";
  if (sample.total_events > 0) {
    std::snprintf(pct, sizeof(pct), "%3.0f%% ",
                  100.0 * static_cast<double>(sample.events) /
                      static_cast<double>(sample.total_events));
  }
  char err[32] = "";
  if (sample.has_estimate) {
    std::snprintf(err, sizeof(err), ", est err %+.2fpp",
                  sample.estimate_error_pp);
  }
  // Self-healing suffix, only once any of its state is nonzero — the
  // line stays identical to older builds on healthy runs.
  char heal[96] = "";
  if (sample.pages_scrubbed > 0 || sample.quarantined_partitions > 0 ||
      sample.pending_corruption > 0) {
    std::snprintf(heal, sizeof(heal),
                  ", scrub %llu pages@p%u, %llu quarantined, %llu pending",
                  static_cast<unsigned long long>(sample.pages_scrubbed),
                  sample.scrub_cursor_partition,
                  static_cast<unsigned long long>(
                      sample.quarantined_partitions),
                  static_cast<unsigned long long>(sample.pending_corruption));
  }
  std::fprintf(out_,
               "%s[%s%llu events, %.0f ev/s] %llu collections, "
               "gc-io %.2f%%%s%s\n",
               final_line ? "progress: done " : "progress: ", pct,
               static_cast<unsigned long long>(sample.events), rate,
               static_cast<unsigned long long>(sample.collections), gc_pct,
               err, heal);
  std::fflush(out_);
  ++lines_;
  last_events_ = sample.events;
}

SweepProgress::SweepProgress(std::FILE* out, uint64_t total_runs,
                             double interval_seconds)
    : out_(out),
      total_(total_runs),
      interval_(SecondsToNs(interval_seconds)),
      start_(Clock::now()),
      last_report_(start_ - interval_) {}

void SweepProgress::OnRunDone() {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  Clock::time_point now = Clock::now();
  const bool last = done_ == total_;
  if (!last && now - last_report_ < interval_) return;
  last_report_ = now;
  const double elapsed =
      std::chrono::duration<double>(now - start_).count();
  std::fprintf(out_, "sweep: %llu/%llu runs (%.0f%%), %.1fs elapsed\n",
               static_cast<unsigned long long>(done_),
               static_cast<unsigned long long>(total_),
               total_ > 0
                   ? 100.0 * static_cast<double>(done_) /
                         static_cast<double>(total_)
                   : 100.0,
               elapsed);
  std::fflush(out_);
}

uint64_t SweepProgress::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

}  // namespace odbgc::obs
