#ifndef ODBGC_TRACE_TRACE_H_
#define ODBGC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.h"

namespace odbgc {

// Why loading a binary trace failed. Malformed files are data, not logic
// errors: the loader reports them as values and never asserts or reads
// past what the file actually holds.
enum class TraceLoadError {
  kNone = 0,         // success
  kOpenFailed,       // file could not be opened
  kTruncatedHeader,  // shorter than magic + version + count
  kBadMagic,
  kBadVersion,
  kBadEventCount,    // count field overflows the record-size math
  kTruncatedEvents,  // count promises more events than the file holds
  kBadEventKind,     // record with an out-of-range event kind
  kTrailingBytes,    // bytes past the last promised event
};

// Stable name for error messages ("bad-magic", ...).
const char* TraceLoadErrorName(TraceLoadError e);

// An application trace: a flat event sequence plus summary statistics.
class Trace {
 public:
  Trace() = default;

  void Append(const TraceEvent& e) { events_.push_back(e); }
  void Reserve(size_t n) { events_.reserve(n); }

  const std::vector<TraceEvent>& events() const { return events_; }
  // Mutable event access for in-place rewriting (RemapObjectIds' move
  // overload). Shared/cached traces are handed out as const and must
  // never come through here.
  std::vector<TraceEvent>& mutable_events() { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const TraceEvent& operator[](size_t i) const { return events_[i]; }

  // Summary counters (computed on demand).
  struct Summary {
    uint64_t creates = 0;
    uint64_t reads = 0;
    uint64_t updates = 0;
    uint64_t write_refs = 0;
    uint64_t garbage_marks = 0;
    uint64_t ground_truth_garbage_bytes = 0;
    uint64_t ground_truth_garbage_objects = 0;
    uint64_t created_bytes = 0;
    uint64_t created_objects = 0;
  };
  Summary Summarize() const;

  // Binary round-trip. Format: magic, version, count, then packed events.
  // Returns false on I/O or format errors.
  bool SaveTo(const std::string& path) const;

  // Typed loader: every field is bounds-checked against the file's real
  // size before any allocation sized from it (a corrupt count field must
  // not drive a multi-gigabyte reserve), and a malformed file leaves
  // *out empty. Returns kNone on success.
  static TraceLoadError Load(const std::string& path, Trace* out);
  // Legacy boolean wrapper around Load().
  static bool LoadFrom(const std::string& path, Trace* out);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace odbgc

#endif  // ODBGC_TRACE_TRACE_H_
