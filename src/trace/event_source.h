#ifndef ODBGC_TRACE_EVENT_SOURCE_H_
#define ODBGC_TRACE_EVENT_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "trace/trace.h"

namespace odbgc {

// A pull-based stream of trace events — the streaming counterpart of a
// materialized Trace. The multi-tenant client mux (sim/client_mux.h)
// draws one event at a time from thousands of these, so an
// implementation must hold O(its own live set) state, never O(events it
// will ever emit). Implementations are single-consumer and need not be
// thread-safe; the mux drains them serially.
class EventSource {
 public:
  virtual ~EventSource() = default;

  // Produces the next event into *out. Returns false when the source is
  // exhausted (and forever after); *out is untouched in that case.
  virtual bool Next(TraceEvent* out) = 0;

  // The largest object id this source will ever emit (its private id
  // space starts at 1). Must be answerable before any event is drawn —
  // the mux assigns each client a disjoint id range up front from this.
  virtual uint32_t max_object_id() const = 0;

  // Resident bytes attributable to this source's own state (shadow
  // lists, pending buffers). Shared immutable data (a cached trace) is
  // excluded — the owner of the cache accounts for it once.
  virtual size_t ApproxMemoryBytes() const { return 0; }
};

// An EventSource replaying a materialized trace through a cursor. Holds
// only a shared_ptr and an index, so thousands of clients can replay the
// same cached trace with no copies. The caller supplies max_object_id
// (typically MaxObjectId(*trace), computed once per distinct trace and
// reused across every client sharing it).
class TraceCursorSource : public EventSource {
 public:
  TraceCursorSource(std::shared_ptr<const Trace> trace,
                    uint32_t max_object_id)
      : trace_(std::move(trace)), max_id_(max_object_id) {}

  bool Next(TraceEvent* out) override {
    if (trace_ == nullptr || pos_ >= trace_->size()) return false;
    *out = (*trace_)[pos_++];
    return true;
  }

  uint32_t max_object_id() const override { return max_id_; }

 private:
  std::shared_ptr<const Trace> trace_;
  size_t pos_ = 0;
  uint32_t max_id_;
};

}  // namespace odbgc

#endif  // ODBGC_TRACE_EVENT_SOURCE_H_
