#include "trace/trace.h"

#include <cstdio>
#include <memory>
#include <vector>

namespace odbgc {

std::string PhaseName(Phase p) {
  switch (p) {
    case Phase::kNone:
      return "None";
    case Phase::kGenDb:
      return "GenDB";
    case Phase::kReorg1:
      return "Reorg1";
    case Phase::kTraverse:
      return "Traverse";
    case Phase::kReorg2:
      return "Reorg2";
  }
  return "Unknown";
}

Trace::Summary Trace::Summarize() const {
  Summary s;
  for (const TraceEvent& e : events_) {
    switch (e.kind) {
      case EventKind::kCreate:
        ++s.creates;
        s.created_bytes += e.b;
        ++s.created_objects;
        break;
      case EventKind::kRead:
        ++s.reads;
        break;
      case EventKind::kUpdate:
        ++s.updates;
        break;
      case EventKind::kWriteRef:
        ++s.write_refs;
        break;
      case EventKind::kGarbageMark:
        ++s.garbage_marks;
        s.ground_truth_garbage_bytes += e.a;
        s.ground_truth_garbage_objects += e.b;
        break;
      default:
        break;
    }
  }
  return s;
}

namespace {

constexpr uint32_t kMagic = 0x4f444254;  // "ODBT"
constexpr uint32_t kVersion = 2;         // v2 added the clustering hint

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool Trace::SaveTo(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  uint64_t count = events_.size();
  if (std::fwrite(&kMagic, sizeof(kMagic), 1, f.get()) != 1) return false;
  if (std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1) return false;
  if (std::fwrite(&count, sizeof(count), 1, f.get()) != 1) return false;
  for (const TraceEvent& e : events_) {
    uint32_t rec[5] = {static_cast<uint32_t>(e.kind), e.a, e.b, e.c, e.d};
    if (std::fwrite(rec, sizeof(rec), 1, f.get()) != 1) return false;
  }
  return true;
}

const char* TraceLoadErrorName(TraceLoadError e) {
  switch (e) {
    case TraceLoadError::kNone:
      return "none";
    case TraceLoadError::kOpenFailed:
      return "open-failed";
    case TraceLoadError::kTruncatedHeader:
      return "truncated-header";
    case TraceLoadError::kBadMagic:
      return "bad-magic";
    case TraceLoadError::kBadVersion:
      return "bad-version";
    case TraceLoadError::kBadEventCount:
      return "bad-event-count";
    case TraceLoadError::kTruncatedEvents:
      return "truncated-events";
    case TraceLoadError::kBadEventKind:
      return "bad-event-kind";
    case TraceLoadError::kTrailingBytes:
      return "trailing-bytes";
  }
  return "unknown";
}

TraceLoadError Trace::Load(const std::string& path, Trace* out) {
  constexpr uint64_t kHeaderBytes = sizeof(kMagic) + sizeof(kVersion) +
                                    sizeof(uint64_t);
  constexpr uint64_t kRecordBytes = 5 * sizeof(uint32_t);
  out->events_.clear();
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return TraceLoadError::kOpenFailed;
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1) {
    return TraceLoadError::kTruncatedHeader;
  }
  if (magic != kMagic) return TraceLoadError::kBadMagic;
  if (std::fread(&version, sizeof(version), 1, f.get()) != 1) {
    return TraceLoadError::kTruncatedHeader;
  }
  if (version != kVersion) return TraceLoadError::kBadVersion;
  if (std::fread(&count, sizeof(count), 1, f.get()) != 1) {
    return TraceLoadError::kTruncatedHeader;
  }
  // Validate the count against the file's real size before sizing any
  // allocation from it.
  if (count > (UINT64_MAX - kHeaderBytes) / kRecordBytes) {
    return TraceLoadError::kBadEventCount;
  }
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return TraceLoadError::kOpenFailed;
  }
  long end = std::ftell(f.get());
  if (end < 0) return TraceLoadError::kOpenFailed;
  const uint64_t file_bytes = static_cast<uint64_t>(end);
  const uint64_t expected = kHeaderBytes + count * kRecordBytes;
  if (file_bytes < expected) return TraceLoadError::kTruncatedEvents;
  if (file_bytes > expected) return TraceLoadError::kTrailingBytes;
  if (std::fseek(f.get(), static_cast<long>(kHeaderBytes), SEEK_SET) != 0) {
    return TraceLoadError::kOpenFailed;
  }
  out->events_.reserve(count);
  // Batched reads: one fread per ~4K records instead of one per record
  // (stdio's per-call overhead dominates 20-byte reads on big traces).
  constexpr size_t kBatchRecords = 4096;
  std::vector<uint32_t> buf(kBatchRecords * 5);
  uint64_t remaining = count;
  while (remaining > 0) {
    const size_t batch = remaining < kBatchRecords
                             ? static_cast<size_t>(remaining)
                             : kBatchRecords;
    if (std::fread(buf.data(), kRecordBytes, batch, f.get()) != batch) {
      out->events_.clear();
      return TraceLoadError::kTruncatedEvents;
    }
    for (size_t i = 0; i < batch; ++i) {
      const uint32_t* rec = &buf[i * 5];
      if (rec[0] > static_cast<uint32_t>(EventKind::kUpdate)) {
        out->events_.clear();
        return TraceLoadError::kBadEventKind;
      }
      out->events_.push_back(TraceEvent{static_cast<EventKind>(rec[0]),
                                        rec[1], rec[2], rec[3], rec[4]});
    }
    remaining -= batch;
  }
  return TraceLoadError::kNone;
}

bool Trace::LoadFrom(const std::string& path, Trace* out) {
  return Load(path, out) == TraceLoadError::kNone;
}

}  // namespace odbgc
