#ifndef ODBGC_TRACE_EVENT_H_
#define ODBGC_TRACE_EVENT_H_

#include <cstdint>
#include <string>

namespace odbgc {

// Phases of the test application (Figure 2). kNone marks traces that do
// not use phase annotations.
enum class Phase : uint8_t {
  kNone = 0,
  kGenDb = 1,
  kReorg1 = 2,
  kTraverse = 3,
  kReorg2 = 4,
};

std::string PhaseName(Phase p);

// Database application events, in the spirit of the CU-Boulder trace
// system [CWZ93]: object creations, accesses and pointer modifications,
// plus two kinds of annotation the simulator consumes.
enum class EventKind : uint8_t {
  // a = object id, b = size in bytes, c = number of pointer slots,
  // d = clustering hint (an existing object id the new object should be
  // placed near, or 0 for no preference). OO7-style applications cluster
  // a composite part's objects together; the hint models that placement.
  kCreate = 0,
  // a = object id.
  kRead = 1,
  // a = source object, b = slot index, c = new target (0 = null).
  kWriteRef = 2,
  // a = object id.
  kAddRoot = 3,
  // a = object id.
  kRemoveRoot = 4,
  // Ground-truth annotation: the preceding unlink detached a cluster of
  // a bytes across b objects. Only the oracle paths may consume it.
  kGarbageMark = 5,
  // a = static_cast<uint32_t>(Phase).
  kPhaseMark = 6,
  // The application is quiescent: the collector may opportunistically
  // run beyond its user-stated limits (the extension sketched in the
  // paper's Section 5). a = maximum collections the idle period allows.
  kIdleMark = 7,
  // a = object id. A non-pointer modification (e.g. OO7's T2 attribute
  // updates): dirties the object's pages without touching connectivity
  // — I/O happens, the overwrite clock does not advance.
  kUpdate = 8,
};

struct TraceEvent {
  EventKind kind;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint32_t d = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

inline TraceEvent CreateEvent(uint32_t id, uint32_t size, uint32_t slots,
                              uint32_t near_hint = 0) {
  return {EventKind::kCreate, id, size, slots, near_hint};
}
inline TraceEvent ReadEvent(uint32_t id) {
  return {EventKind::kRead, id, 0, 0, 0};
}
inline TraceEvent WriteRefEvent(uint32_t src, uint32_t slot,
                                uint32_t target) {
  return {EventKind::kWriteRef, src, slot, target, 0};
}
inline TraceEvent AddRootEvent(uint32_t id) {
  return {EventKind::kAddRoot, id, 0, 0, 0};
}
inline TraceEvent RemoveRootEvent(uint32_t id) {
  return {EventKind::kRemoveRoot, id, 0, 0, 0};
}
inline TraceEvent GarbageMarkEvent(uint32_t bytes, uint32_t objects) {
  return {EventKind::kGarbageMark, bytes, objects, 0, 0};
}
inline TraceEvent PhaseMarkEvent(Phase p) {
  return {EventKind::kPhaseMark, static_cast<uint32_t>(p), 0, 0, 0};
}
inline TraceEvent IdleMarkEvent(uint32_t max_collections) {
  return {EventKind::kIdleMark, max_collections, 0, 0, 0};
}
inline TraceEvent UpdateEvent(uint32_t id) {
  return {EventKind::kUpdate, id, 0, 0, 0};
}

}  // namespace odbgc

#endif  // ODBGC_TRACE_EVENT_H_
