#include "gc/partition_selector.h"

#include "storage/reachability.h"
#include "util/check.h"

namespace odbgc {

PartitionId UpdatedPointerSelector::Select(const ObjectStore& store) {
  ODBGC_CHECK(store.partition_count() > 0);
  PartitionId best = kInvalidPartition;
  uint64_t best_overwrites = 0;
  uint64_t best_stamp = ~0ull;
  bool have = false;
  for (const Partition& p : store.partitions()) {
    if (store.IsQuarantined(p.id())) continue;
    uint64_t ow = p.overwrites();
    uint64_t stamp = p.last_collected_stamp();
    // Prefer more overwrites; break ties toward the least recently
    // collected partition so quiescent databases still rotate.
    if (!have || ow > best_overwrites ||
        (ow == best_overwrites && stamp < best_stamp)) {
      have = true;
      best = p.id();
      best_overwrites = ow;
      best_stamp = stamp;
    }
  }
  return best;
}

PartitionId RandomSelector::Select(const ObjectStore& store) {
  ODBGC_CHECK(store.partition_count() > 0);
  if (store.quarantined_count() == 0) {
    // The common (healthy) path: one draw over all partitions, exactly
    // the historical RNG consumption.
    return static_cast<PartitionId>(rng_.NextBelow(store.partition_count()));
  }
  std::vector<PartitionId> healthy;
  healthy.reserve(store.partition_count());
  for (const Partition& p : store.partitions()) {
    if (!store.IsQuarantined(p.id())) healthy.push_back(p.id());
  }
  if (healthy.empty()) return kInvalidPartition;
  return healthy[rng_.NextBelow(healthy.size())];
}

PartitionId RoundRobinSelector::Select(const ObjectStore& store) {
  ODBGC_CHECK(store.partition_count() > 0);
  const PartitionId count =
      static_cast<PartitionId>(store.partition_count());
  for (PartitionId step = 0; step < count; ++step) {
    PartitionId p = (next_ + step) % count;
    if (store.IsQuarantined(p)) continue;
    next_ = p + 1;
    return p;
  }
  return kInvalidPartition;
}

PartitionId MostGarbageOracleSelector::Select(const ObjectStore& store) {
  ODBGC_CHECK(store.partition_count() > 0);
  ScanReachabilityInto(store, &scan_, &scratch_);
  PartitionId best = kInvalidPartition;
  uint64_t best_garbage = 0;
  bool have = false;
  for (const Partition& p : store.partitions()) {
    if (store.IsQuarantined(p.id())) continue;
    uint64_t g = UnreachableBytesInPartition(store, scan_, p.id());
    if (!have || g > best_garbage) {
      have = true;
      best_garbage = g;
      best = p.id();
    }
  }
  return best;
}

PartitionId LeastRecentlyCollectedSelector::Select(
    const ObjectStore& store) {
  ODBGC_CHECK(store.partition_count() > 0);
  PartitionId best = kInvalidPartition;
  uint64_t best_stamp = ~0ull;
  bool have = false;
  for (const Partition& p : store.partitions()) {
    if (store.IsQuarantined(p.id())) continue;
    if (!have || p.last_collected_stamp() < best_stamp) {
      have = true;
      best_stamp = p.last_collected_stamp();
      best = p.id();
    }
  }
  return best;
}

PartitionId OverwriteDensitySelector::Select(const ObjectStore& store) {
  ODBGC_CHECK(store.partition_count() > 0);
  PartitionId best = kInvalidPartition;
  double best_density = -1.0;
  uint64_t best_stamp = ~0ull;
  for (const Partition& p : store.partitions()) {
    if (store.IsQuarantined(p.id())) continue;
    double density =
        p.used() == 0
            ? 0.0
            : static_cast<double>(p.overwrites()) /
                  static_cast<double>(p.used());
    uint64_t stamp = p.last_collected_stamp();
    if (density > best_density ||
        (density == best_density && stamp < best_stamp)) {
      best_density = density;
      best = p.id();
      best_stamp = stamp;
    }
  }
  return best;
}

std::unique_ptr<PartitionSelector> MakeSelector(SelectorKind kind,
                                                uint64_t seed) {
  switch (kind) {
    case SelectorKind::kUpdatedPointer:
      return std::make_unique<UpdatedPointerSelector>();
    case SelectorKind::kRandom:
      return std::make_unique<RandomSelector>(seed);
    case SelectorKind::kRoundRobin:
      return std::make_unique<RoundRobinSelector>();
    case SelectorKind::kMostGarbageOracle:
      return std::make_unique<MostGarbageOracleSelector>();
    case SelectorKind::kLeastRecentlyCollected:
      return std::make_unique<LeastRecentlyCollectedSelector>();
    case SelectorKind::kOverwriteDensity:
      return std::make_unique<OverwriteDensitySelector>();
  }
  ODBGC_CHECK_MSG(false, "unknown selector kind");
  return nullptr;
}

}  // namespace odbgc
