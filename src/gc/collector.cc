#include "gc/collector.h"

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace odbgc {

void Collector::AttachTelemetry(obs::Telemetry* telemetry) {
  tel_ = telemetry;
  if (tel_ == nullptr) return;
  obs::MetricsRegistry& m = tel_->metrics();
  ti_.collections = m.GetCounter("gc.collections");
  ti_.crashes = m.GetCounter("gc.crashes");
  ti_.recoveries = m.GetCounter("gc.recoveries");
  ti_.bytes_reclaimed = m.GetCounter("gc.bytes_reclaimed");
  ti_.gc_io = m.GetHistogram("gc.collection_io_ops");
  ti_.reclaimed = m.GetHistogram("gc.collection_reclaimed_bytes");
  ti_.live = m.GetHistogram("gc.collection_live_bytes");
  ti_.batch_partitions = m.GetHistogram("gc.batch_partitions");
  ti_.batch_replans = m.GetCounter("gc.batch_replans");
}

void Collector::SaveState(SnapshotWriter& w) const {
  ODBGC_CHECK_MSG(!journal_.pending,
                  "checkpoint with a pending GC recovery");
  w.Tag("COLL");
  w.U64(collections_);
  w.U64(attempts_);
  w.U64(crashes_);
  w.Bool(commit_protocol_);
  w.U8(static_cast<uint8_t>(crash_point_));
  w.U64(crash_attempt_);
}

void Collector::RestoreState(SnapshotReader& r) {
  r.Tag("COLL");
  collections_ = r.U64();
  attempts_ = r.U64();
  crashes_ = r.U64();
  commit_protocol_ = r.Bool();
  const uint8_t point = r.U8();
  if (point > static_cast<uint8_t>(CrashPoint::kMidRememberedSet)) {
    r.MarkMalformed("bad crash point in collector state");
    return;
  }
  crash_point_ = static_cast<CrashPoint>(point);
  crash_attempt_ = r.U64();
  journal_ = Journal();
}

void Collector::ScheduleCrash(CrashPoint point, uint64_t attempt) {
  ODBGC_CHECK(point != CrashPoint::kNone);
  crash_point_ = point;
  // 1-based; 0 means "the next Collect call".
  crash_attempt_ = attempt == 0 ? attempts_ + 1 : attempt;
}

void Collector::PlanPartition(const ObjectStore& store, PartitionId partition,
                              MarkBitmap& mark, CollectionPlan* plan) {
  std::vector<ObjectId>& copy_order = plan->copy_order;
  std::vector<ObjectId>& reclaim = plan->reclaim;
  copy_order.clear();
  reclaim.clear();
  plan->new_used = 0;
  plan->reclaimed_bytes = 0;

  // Partition roots: global roots in this partition, plus objects with at
  // least one referencing slot held by an object outside this partition
  // (the store's cross-partition in-ref counters answer that in O(1) per
  // object; the reverse-index lists are never scanned).
  //
  // Marking uses a word-packed bitmap over object ids: TestAndSet makes
  // first-visit detection one masked or, and the whole mark state of a
  // database-sized id space stays L1-resident. copy_order doubles as the
  // BFS worklist (head cursor), which makes it exactly the Cheney
  // breadth-first copy order.
  mark.Reset(store.max_object_id() + 1);
  const ObjectRecord* headers = store.header_arena();
  uint32_t new_used = 0;
  auto visit = [&](ObjectId id) {
    if (mark.TestAndSet(id)) {
      copy_order.push_back(id);
      new_used += headers[id].size;
    }
  };
  for (ObjectId root : store.roots()) {
    if (headers[root].partition == partition) visit(root);
  }
  // Externally pinned objects (the cross-shard remembered set): a
  // referencer in another store holds them live, exactly as an in-store
  // cross-partition in-ref would. The pin list is sorted by id, so this
  // walk is deterministic.
  for (const auto& [pinned, count] : store.external_pins()) {
    (void)count;
    if (store.Exists(pinned) && headers[pinned].partition == partition) {
      visit(pinned);
    }
  }
  // The newest allocation is pinned: the application still holds a
  // transient reference to it even if it is not linked in yet.
  const ObjectId newest = store.newest_object();
  if (newest != kNullObject && store.Exists(newest) &&
      headers[newest].partition == partition) {
    visit(newest);
  }
  const Partition& part = store.partition(partition);
  const std::vector<ObjectId>& resident = part.objects();
  const size_t resident_count = resident.size();
  for (size_t i = 0; i < resident_count; ++i) {
    // Resident ids are dense in the list but their headers are not;
    // stream the header loads ahead of the xpart test.
    if (i + 8 < resident_count) __builtin_prefetch(&headers[resident[i + 8]]);
    const ObjectId id = resident[i];
    if (!store.Exists(id)) continue;
    if (headers[id].xpart_in_refs > 0) visit(id);
  }

  // Cheney breadth-first traversal; pointers leaving the partition are
  // not traversed.
  const Slot* slot_arena = store.slot_arena();
  for (size_t head = 0; head < copy_order.size(); ++head) {
    if (head + 1 < copy_order.size()) {
      // Pull the next worklist entry's slot range in while this one scans.
      __builtin_prefetch(slot_arena + headers[copy_order[head + 1]].slot_begin);
    }
    const ObjectRecord& rec = headers[copy_order[head]];
    const Slot* slots = slot_arena + rec.slot_begin;
    const uint32_t n = rec.slot_count;
    for (uint32_t i = 0; i < n; ++i) {
      const ObjectId target = slots[i].target;
      // The next slots' target headers are data-dependent loads; start
      // them early so the partition test below rarely stalls.
      if (i + 4 < n && slots[i + 4].target != kNullObject) {
        __builtin_prefetch(&headers[slots[i + 4].target]);
      }
      if (target == kNullObject) continue;
      if (headers[target].partition != partition) continue;
      visit(target);
    }
  }

  // Plan the reclaim set and the compacted layout WITHOUT mutating the
  // store: nothing is destroyed or relocated until the flip, so a crash
  // before the commit point leaves from-space fully authoritative.
  for (ObjectId id : part.objects()) {
    if (mark.Test(id)) continue;
    ODBGC_CHECK_MSG(!store.IsRoot(id), "collector reclaiming a root");
    ODBGC_CHECK_MSG(!store.IsExternallyPinned(id),
                    "collector reclaiming an externally pinned object");
    plan->reclaimed_bytes += store.object(id).size;
    reclaim.push_back(id);
  }
  plan->new_used = new_used;
}

void Collector::EnsurePlanCache(const ObjectStore& store) {
  if (cache_serial_ != store.store_serial()) {
    cache_serial_ = store.store_serial();
    plan_cache_.clear();
    plan_cache_epoch_.clear();
    plan_cache_valid_.clear();
  }
  const size_t n = store.partition_count();
  if (plan_cache_.size() < n) {
    plan_cache_.resize(n);
    plan_cache_epoch_.resize(n, 0);
    plan_cache_valid_.resize(n, 0);
  }
}

CollectionReport Collector::Collect(ObjectStore& store,
                                    PartitionId partition) {
  ODBGC_CHECK_MSG(!journal_.pending,
                  "Collect while crash recovery is pending");
  if (store.IsQuarantined(partition)) {
    // A quarantined partition's pages are suspect and its derived state
    // is pending repair; collecting it could consume corrupt data.
    CollectionReport report;
    report.partition = partition;
    report.skipped_quarantine = true;
    return report;
  }
  EnsurePlanCache(store);
  const uint64_t epoch = store.plan_epoch(partition);
  CollectionPlan& plan = plan_cache_[partition];
  if (!plan_cache_valid_[partition] || plan_cache_epoch_[partition] != epoch) {
    PlanPartition(store, partition, mark_scratch_, &plan);
    plan_cache_epoch_[partition] = epoch;
    plan_cache_valid_[partition] = 1;
  }
  return ApplyCollection(store, partition, plan);
}

std::vector<CollectionReport> Collector::CollectBatch(
    ObjectStore& store, const std::vector<PartitionId>& partitions,
    ThreadPool* pool) {
  ODBGC_CHECK_MSG(!journal_.pending,
                  "CollectBatch while crash recovery is pending");
  std::vector<CollectionReport> reports;
  const size_t n = partitions.size();
  reports.reserve(n);
  if (n == 0) return reports;

  // Duplicate partitions would alias plans; reject them.
  std::vector<char> in_batch(store.partition_count(), 0);
  for (size_t i = 0; i < n; ++i) {
    ODBGC_CHECK(partitions[i] < store.partition_count());
    ODBGC_CHECK_MSG(!in_batch[partitions[i]],
                    "CollectBatch: duplicate partition");
    in_batch[partitions[i]] = 1;
  }

  ODBGC_TEL_SPAN(batch_span, tel_, "collection_batch",
                 {{"partitions", static_cast<uint64_t>(n)}});
  ODBGC_IF_TEL(tel_) { ti_.batch_partitions->Record(n); }

  // Phase 1 — plan every partition concurrently. Planning is a pure read
  // of the store; each task owns a private mark bitmap (indexed by worker,
  // with one extra slot for the submitting thread), so there is no shared
  // mutable state and no atomics. A partition whose cached plan is still
  // epoch-valid reuses it (a copy; the shared cache is strictly read-only
  // here, so workers never race on it).
  EnsurePlanCache(store);
  std::vector<uint64_t> epochs(n);
  for (size_t i = 0; i < n; ++i) epochs[i] = store.plan_epoch(partitions[i]);
  ODBGC_IF_TEL(tel_) { tel_->Begin("plan"); }
  std::vector<CollectionPlan> plans(n);
  auto plan_one = [&](size_t i, MarkBitmap& mark) {
    const PartitionId p = partitions[i];
    if (plan_cache_valid_[p] && plan_cache_epoch_[p] == epochs[i]) {
      plans[i] = plan_cache_[p];
    } else {
      PlanPartition(store, p, mark, &plans[i]);
    }
  };
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    std::vector<MarkBitmap> marks(static_cast<size_t>(pool->size()) + 1);
    pool->ParallelFor(n, [&](size_t i) {
      int w = ThreadPool::current_worker_index();
      const size_t slot = (w < 0 || w >= pool->size())
                              ? static_cast<size_t>(pool->size())
                              : static_cast<size_t>(w);
      plan_one(i, marks[slot]);
    });
  } else {
    for (size_t i = 0; i < n; ++i) plan_one(i, mark_scratch_);
  }
  ODBGC_IF_TEL(tel_) { tel_->End("plan"); }

  // Phase 2 — apply serially in the given order. A plan computed against
  // the pre-batch snapshot can go stale: destroying partition A's garbage
  // detaches its out-pointers, which may drop a cross-partition in-ref
  // into a later partition B and shrink B's root set. Every such change
  // bumps B's plan epoch (that is the plan-epoch contract), so staleness
  // detection is one integer compare against the epoch the plan was made
  // at; a dirtied partition is re-planned serially right before its
  // apply, reproducing what the serial loop would have seen. Everything
  // else a plan reads is untouched by other partitions' applies, and
  // apply-time I/O re-reads source positions fresh — so the batch is
  // byte-identical to the serial loop at any thread count.
  for (size_t k = 0; k < n; ++k) {
    const PartitionId p = partitions[k];
    if (store.plan_epoch(p) != epochs[k]) {
      ODBGC_IF_TEL(tel_) { ti_.batch_replans->Increment(); }
      PlanPartition(store, p, mark_scratch_, &plans[k]);
    }
    reports.push_back(ApplyCollection(store, p, plans[k]));
    // A scheduled crash stops the batch; the caller must Recover().
    if (reports.back().crashed) break;
  }
  return reports;
}

CollectionReport Collector::ApplyCollection(ObjectStore& store,
                                            PartitionId partition,
                                            const CollectionPlan& plan) {
  ODBGC_CHECK_MSG(!journal_.pending,
                  "Collect while crash recovery is pending");
  if (store.IsQuarantined(partition)) {
    // Covers CollectBatch too: a partition quarantined after its plan was
    // computed (e.g. an earlier apply's remembered-set read hit a corrupt
    // page) must not be applied.
    CollectionReport skipped;
    skipped.partition = partition;
    skipped.skipped_quarantine = true;
    return skipped;
  }
  ++attempts_;
  const bool crash_now =
      crash_point_ != CrashPoint::kNone && attempts_ == crash_attempt_;
  const CrashPoint crash_point =
      crash_now ? crash_point_ : CrashPoint::kNone;
  // A scheduled crash forces the durable protocol for this collection so
  // that the commit record it relies on actually exists.
  const bool protocol = commit_protocol_ || crash_now;

  Partition& part = store.mutable_partition(partition);
  CollectionReport report;
  report.partition = partition;
  report.bytes_before = part.used();
  report.overwrites_at_collection = part.overwrites();

  const IoStats before_io = store.io_stats();

  ODBGC_TEL_SPAN(collection_span, tel_, "collection",
                 {{"partition", partition},
                  {"bytes_before", report.bytes_before}});
  ODBGC_IF_TEL(tel_) { tel_->Begin("scan"); }

  // 1. Read the partition's from-space (sequential scan of its used pages).
  // The marking itself already happened in PlanPartition — it is a pure
  // in-memory computation, so planning ahead of this read changes no I/O.
  if (part.used() > 0) {
    store.TouchRange(partition, 0, part.used(), /*dirty=*/false,
                     IoContext::kCollector);
  }

  // Damage gate: if the from-space scan surfaced a detection (checksum
  // mismatch, device fault) in this partition, abort before anything is
  // written or flipped. Nothing has mutated yet — plan was a pure memory
  // computation and step 1 was read-only — so from-space remains
  // authoritative and the caller can quarantine + repair, then retry.
  if (store.buffer_pool().HasPendingCorruption(partition)) {
    report.aborted_corrupt = true;
    const IoStats at_abort = store.io_stats();
    report.gc_reads = at_abort.gc_reads - before_io.gc_reads;
    report.gc_writes = at_abort.gc_writes - before_io.gc_writes;
    ODBGC_IF_TEL(tel_) { tel_->End("scan"); }
    ODBGC_IF_TEL(tel_) {
      tel_->Instant("collection_aborted_corrupt",
                    {{"partition", partition}});
    }
    return report;
  }

  const std::vector<ObjectId>& copy_order = plan.copy_order;
  const std::vector<ObjectId>& reclaim = plan.reclaim;
  const uint32_t new_used = plan.new_used;
  const uint64_t reclaimed_bytes = plan.reclaimed_bytes;
  const uint64_t live_bytes = new_used;
  ODBGC_CHECK(report.bytes_before == live_bytes + reclaimed_bytes);

  report.bytes_live = live_bytes;
  report.bytes_reclaimed = reclaimed_bytes;
  report.objects_live = copy_order.size();
  report.objects_reclaimed = reclaim.size();

  ODBGC_IF_TEL(tel_) {
    tel_->End("scan", {{"objects_live", report.objects_live},
                       {"objects_reclaimed", report.objects_reclaimed}});
  }

  // Simulated power cut: capture the durable journal, drop the volatile
  // buffer contents, and hand the partial report back to the caller.
  auto crash = [&](bool committed) -> CollectionReport {
    journal_.pending = true;
    journal_.committed = committed;
    journal_.point = crash_point;
    journal_.partition = partition;
    journal_.copy_order = copy_order;
    journal_.reclaim = reclaim;
    journal_.new_used = new_used;
    journal_.live_bytes = live_bytes;
    journal_.reclaimed_bytes = reclaimed_bytes;
    journal_.reclaimed_objects = reclaim.size();
    journal_.dirty_pages_lost = store.buffer_pool().DiscardAll();
    ++crashes_;
    crash_point_ = CrashPoint::kNone;  // single shot
    crash_attempt_ = 0;
    const IoStats at_crash = store.io_stats();
    report.gc_reads = at_crash.gc_reads - before_io.gc_reads;
    report.gc_writes = at_crash.gc_writes - before_io.gc_writes;
    report.crashed = true;
    report.crash_point = journal_.point;
    journal_.report = report;
    ODBGC_IF_TEL(tel_) {
      ti_.crashes->Increment();
      tel_->Instant("crash", {{"partition", partition},
                              {"crash_point", CrashPointName(journal_.point)},
                              {"committed", committed ? 1 : 0}});
    }
    return report;
  };

  // 2. Write the compacted to-space.
  ODBGC_IF_TEL(tel_) { tel_->Begin("copy", {{"bytes_live", live_bytes}}); }
  if (new_used > 0) {
    store.TouchRange(partition, 0, new_used, /*dirty=*/true,
                     IoContext::kCollector);
  }
  if (crash_point == CrashPoint::kAfterCopy) {
    ODBGC_IF_TEL(tel_) { tel_->End("copy"); }
    return crash(/*committed=*/false);
  }

  // 3. Commit point: force the to-space copy to disk, then make the
  // commit record durable (write-through, never cached).
  if (protocol) {
    store.buffer_pool().FlushPartition(partition, IoContext::kCollector);
    store.CommitRecordWrite(partition, IoContext::kCollector);
  }
  ODBGC_IF_TEL(tel_) { tel_->End("copy"); }
  if (crash_point == CrashPoint::kBeforeFlip) {
    return crash(/*committed=*/true);
  }

  // 4. Flip: destroy garbage, relocate survivors, drop the stale tail.
  ApplyFlip(store, partition, copy_order, reclaim, new_used);

  // 5. Remembered-set update: relocation invalidates external pointers
  // into this partition, so the referencing slot of every external source
  // is rewritten, costing a read (and dirty write-back) of its page.
  ODBGC_IF_TEL(tel_) { tel_->Begin("remembered_set"); }
  if (crash_point == CrashPoint::kMidRememberedSet) {
    const uint64_t total =
        UpdateRememberedSets(store, partition, copy_order, 0, 0);
    UpdateRememberedSets(store, partition, copy_order, 0, total / 2);
    ODBGC_IF_TEL(tel_) { tel_->End("remembered_set"); }
    return crash(/*committed=*/true);
  }
  const uint64_t external_updates =
      UpdateRememberedSets(store, partition, copy_order, 0, UINT64_MAX);
  ODBGC_IF_TEL(tel_) {
    tel_->End("remembered_set", {{"external_updates", external_updates}});
  }

  // 6. Clear the commit record and finish partition bookkeeping.
  if (protocol) {
    store.CommitRecordWrite(partition, IoContext::kCollector);
  }
  FinishCollection(store, partition, copy_order, new_used, reclaimed_bytes,
                   reclaim.size());

  const IoStats after_io = store.io_stats();
  report.gc_reads = after_io.gc_reads - before_io.gc_reads;
  report.gc_writes = after_io.gc_writes - before_io.gc_writes;
  ODBGC_IF_TEL(tel_) {
    ti_.collections->Increment();
    ti_.bytes_reclaimed->Add(report.bytes_reclaimed);
    ti_.gc_io->Record(report.gc_io());
    ti_.reclaimed->Record(report.bytes_reclaimed);
    ti_.live->Record(report.bytes_live);
  }
  return report;
}

RecoveryReport Collector::Recover(ObjectStore& store) {
  ODBGC_CHECK_MSG(journal_.pending, "Recover without a pending crash");
  RecoveryReport rec;
  rec.crash_point = journal_.point;
  rec.dirty_pages_lost = journal_.dirty_pages_lost;
  const PartitionId partition = journal_.partition;
  const IoStats before_io = store.io_stats();

  ODBGC_TEL_SPAN(recovery_span, tel_, "recovery",
                 {{"partition", partition},
                  {"crash_point", CrashPointName(journal_.point)}});

  // Restart probe: read the commit record to learn whether the crashed
  // collection reached its commit point.
  store.CommitRecordRead(partition, IoContext::kCollector);

  if (!journal_.committed) {
    // Roll back. The flip never became durable, so from-space remains
    // authoritative: no object was destroyed or moved, and the partial
    // to-space copy died with the buffer pool. Dropping the journal is
    // the whole undo.
    rec.rolled_forward = false;
  } else {
    // Roll forward: the commit record is durable, so the collection must
    // complete. kBeforeFlip crashed with the flip still unapplied;
    // kMidRememberedSet crashed after it.
    rec.rolled_forward = true;
    if (journal_.point == CrashPoint::kBeforeFlip) {
      ApplyFlip(store, partition, journal_.copy_order, journal_.reclaim,
                journal_.new_used);
    }
    // Redo every remembered-set update. The update set is recomputed from
    // the survivors' reverse index (external object positions are
    // unchanged by the crash) and replayed in full: the crash dropped the
    // volatile buffer, so recovery cannot know which rewrites reached
    // disk, and page rewrites are idempotent.
    rec.redo_external_updates = UpdateRememberedSets(
        store, partition, journal_.copy_order, 0, UINT64_MAX);
    store.CommitRecordWrite(partition, IoContext::kCollector);  // clear
    FinishCollection(store, partition, journal_.copy_order,
                     journal_.new_used, journal_.reclaimed_bytes,
                     journal_.reclaimed_objects);
  }

  const IoStats after_io = store.io_stats();
  rec.gc_reads = after_io.gc_reads - before_io.gc_reads;
  rec.gc_writes = after_io.gc_writes - before_io.gc_writes;
  if (rec.rolled_forward) {
    rec.completed = journal_.report;
    rec.completed.gc_reads += rec.gc_reads;
    rec.completed.gc_writes += rec.gc_writes;
  }
  ODBGC_IF_TEL(tel_) {
    ti_.recoveries->Increment();
    if (rec.rolled_forward) {
      // The crashed collection completed via redo; account for it the same
      // way a normal completion would have been.
      ti_.collections->Increment();
      ti_.bytes_reclaimed->Add(rec.completed.bytes_reclaimed);
      ti_.gc_io->Record(rec.completed.gc_io());
      ti_.reclaimed->Record(rec.completed.bytes_reclaimed);
      ti_.live->Record(rec.completed.bytes_live);
    }
  }
  journal_ = Journal{};
  return rec;
}

void Collector::ApplyFlip(ObjectStore& store, PartitionId partition,
                          const std::vector<ObjectId>& copy_order,
                          const std::vector<ObjectId>& reclaim,
                          uint32_t new_used) {
  // Destroying a garbage object detaches its out-pointers, which may
  // clear external references into other partitions (their floating
  // garbage becomes collectable later).
  for (ObjectId id : reclaim) store.DestroyObject(id);
  // Compact survivors in copy order (to-space starts at offset 0).
  uint32_t offset = 0;
  for (ObjectId id : copy_order) {
    store.Relocate(id, offset);
    offset += store.object(id).size;
  }
  ODBGC_CHECK(offset == new_used);
  // Pages past the compacted tail no longer exist; drop without flushing.
  const uint32_t page_bytes = store.config().page_bytes;
  const uint32_t first_dead_page = (new_used + page_bytes - 1) / page_bytes;
  store.buffer_pool().DropPartitionTail(partition, first_dead_page);
}

uint64_t Collector::UpdateRememberedSets(ObjectStore& store,
                                         PartitionId partition,
                                         const std::vector<ObjectId>& copy_order,
                                         uint64_t first, uint64_t count) {
  // Gather pass: walk the survivors' in-ref lists and collect the page
  // ranges of external sources. This is a pure memory walk; the
  // buffer-pool touches are issued afterwards in gather order, which is
  // exactly the order the historical interleaved walk used (touches never
  // move objects, so gathering first cannot change what is gathered).
  // The in-ref lists are short, so software prefetch overhead costs more
  // here than the stalls it hides; the hardware prefetcher handles the
  // sequential entry reads.
  std::vector<RemsetTouch>& touches = remset_scratch_;
  touches.clear();
  const ObjectRecord* headers = store.header_arena();
  const std::vector<InRef>* in_refs = store.in_ref_arena();
  for (ObjectId id : copy_order) {
    // A survivor's cross-partition in-ref counter is exactly the number
    // of entries this walk would keep; zero means the whole list is
    // same-partition sources (rewritten by the copy), so skip the list
    // walk — most OO7 objects are only referenced from their own cluster.
    if (headers[id].xpart_in_refs == 0) continue;
    for (const InRef& ir : in_refs[id]) {
      const ObjectRecord& s = headers[ir.src];
      if (s.partition == partition) continue;  // rewritten by the copy
      touches.push_back(RemsetTouch{s.partition, s.offset, s.size});
    }
  }
  const uint64_t total = touches.size();
  // Touch entries with ordinal in [first, first + count), clamped.
  uint64_t end = total;
  if (first < total && count < total - first) end = first + count;
  for (uint64_t i = first; i < end; ++i) {
    const RemsetTouch& t = touches[i];
    store.TouchRange(t.partition, t.offset, t.size, /*dirty=*/true,
                     IoContext::kCollector);
  }
  return total;
}

void Collector::FinishCollection(ObjectStore& store, PartitionId partition,
                                 const std::vector<ObjectId>& copy_order,
                                 uint32_t new_used, uint64_t reclaimed_bytes,
                                 uint64_t reclaimed_objects) {
  Partition& part = store.mutable_partition(partition);
  const uint32_t old_used = part.used();
  if (part.ResetAfterCollection(copy_order, new_used)) {
    store.BumpPlanEpoch(partition);
  }
  part.set_last_collected_stamp(++collections_);
  store.AdjustUsedBytes(partition, old_used, new_used);
  store.RecordGarbageCollected(reclaimed_bytes, reclaimed_objects);
}

}  // namespace odbgc
