#include "gc/collector.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace odbgc {

CollectionReport Collector::Collect(ObjectStore& store,
                                    PartitionId partition) {
  Partition& part = store.mutable_partition(partition);
  CollectionReport report;
  report.partition = partition;
  report.bytes_before = part.used();
  report.overwrites_at_collection = part.overwrites();

  const IoStats before_io = store.io_stats();

  // Read the partition's from-space (sequential scan of its used pages).
  if (part.used() > 0) {
    store.TouchRange(partition, 0, part.used(), /*dirty=*/false,
                     IoContext::kCollector);
  }

  // Partition roots: global roots in this partition, plus objects with at
  // least one referencing slot held by an object outside this partition.
  std::deque<ObjectId> queue;
  std::unordered_set<ObjectId> marked;
  auto mark = [&](ObjectId id) {
    if (marked.insert(id).second) queue.push_back(id);
  };
  for (ObjectId root : store.roots()) {
    if (store.object(root).partition == partition) mark(root);
  }
  // The newest allocation is pinned: the application still holds a
  // transient reference to it even if it is not linked in yet.
  ObjectId newest = store.newest_object();
  if (newest != kNullObject && store.Exists(newest) &&
      store.object(newest).partition == partition) {
    mark(newest);
  }
  for (ObjectId id : part.objects()) {
    if (!store.Exists(id)) continue;
    const ObjectRecord& rec = store.object(id);
    for (ObjectId src : rec.in_refs) {
      if (store.object(src).partition != partition) {
        mark(id);
        break;
      }
    }
  }

  // Cheney breadth-first copy order; pointers leaving the partition are
  // not traversed.
  std::vector<ObjectId> copy_order;
  while (!queue.empty()) {
    ObjectId id = queue.front();
    queue.pop_front();
    copy_order.push_back(id);
    const ObjectRecord& rec = store.object(id);
    for (ObjectId target : rec.slots) {
      if (target == kNullObject) continue;
      if (store.object(target).partition != partition) continue;
      mark(target);
    }
  }

  // Reclaim everything unreached. Destroying a garbage object detaches
  // its out-pointers, which may clear external references into other
  // partitions (their floating garbage becomes collectable later).
  uint64_t reclaimed_bytes = 0;
  uint64_t reclaimed_objects = 0;
  std::vector<ObjectId> old_objects = part.objects();
  for (ObjectId id : old_objects) {
    if (marked.count(id) != 0) continue;
    ODBGC_CHECK_MSG(!store.IsRoot(id), "collector reclaiming a root");
    reclaimed_bytes += store.object(id).size;
    ++reclaimed_objects;
    store.DestroyObject(id);
  }

  // Compact survivors in copy order (to-space starts at offset 0).
  uint32_t new_used = 0;
  uint64_t live_bytes = 0;
  for (ObjectId id : copy_order) {
    ObjectRecord& rec = store.mutable_object(id);
    store.Relocate(id, new_used);
    new_used += rec.size;
    live_bytes += rec.size;
  }
  ODBGC_CHECK(report.bytes_before == live_bytes + reclaimed_bytes);

  // Write the compacted to-space.
  if (new_used > 0) {
    store.TouchRange(partition, 0, new_used, /*dirty=*/true,
                     IoContext::kCollector);
  }
  // Pages past the compacted tail no longer exist; drop without flushing.
  uint32_t page_bytes = store.config().page_bytes;
  uint32_t first_dead_page = (new_used + page_bytes - 1) / page_bytes;
  store.buffer_pool().DropPartitionTail(partition, first_dead_page);

  // Relocation invalidates external pointers into this partition: the
  // collector must update the referencing slot of every external source,
  // costing a read (and dirty write-back) of that source's page.
  for (ObjectId id : copy_order) {
    const ObjectRecord& rec = store.object(id);
    for (ObjectId src : rec.in_refs) {
      const ObjectRecord& s = store.object(src);
      if (s.partition == partition) continue;  // rewritten by the copy
      store.TouchRange(s.partition, s.offset, s.size, /*dirty=*/true,
                       IoContext::kCollector);
    }
  }

  uint32_t old_used = part.used();
  report.objects_live = copy_order.size();
  part.ResetAfterCollection(std::move(copy_order), new_used);
  part.set_last_collected_stamp(++collections_);
  store.AdjustUsedBytes(old_used, new_used);
  store.RecordGarbageCollected(reclaimed_bytes, reclaimed_objects);

  const IoStats after_io = store.io_stats();
  report.bytes_live = live_bytes;
  report.bytes_reclaimed = reclaimed_bytes;
  report.objects_reclaimed = reclaimed_objects;
  report.gc_reads = after_io.gc_reads - before_io.gc_reads;
  report.gc_writes = after_io.gc_writes - before_io.gc_writes;
  return report;
}

}  // namespace odbgc
