#include "gc/collector.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace odbgc {

void Collector::AttachTelemetry(obs::Telemetry* telemetry) {
  tel_ = telemetry;
  if (tel_ == nullptr) return;
  obs::MetricsRegistry& m = tel_->metrics();
  ti_.collections = m.GetCounter("gc.collections");
  ti_.crashes = m.GetCounter("gc.crashes");
  ti_.recoveries = m.GetCounter("gc.recoveries");
  ti_.bytes_reclaimed = m.GetCounter("gc.bytes_reclaimed");
  ti_.gc_io = m.GetHistogram("gc.collection_io_ops");
  ti_.reclaimed = m.GetHistogram("gc.collection_reclaimed_bytes");
  ti_.live = m.GetHistogram("gc.collection_live_bytes");
}

void Collector::SaveState(SnapshotWriter& w) const {
  ODBGC_CHECK_MSG(!journal_.pending,
                  "checkpoint with a pending GC recovery");
  w.Tag("COLL");
  w.U64(collections_);
  w.U64(attempts_);
  w.U64(crashes_);
  w.Bool(commit_protocol_);
  w.U8(static_cast<uint8_t>(crash_point_));
  w.U64(crash_attempt_);
}

void Collector::RestoreState(SnapshotReader& r) {
  r.Tag("COLL");
  collections_ = r.U64();
  attempts_ = r.U64();
  crashes_ = r.U64();
  commit_protocol_ = r.Bool();
  const uint8_t point = r.U8();
  if (point > static_cast<uint8_t>(CrashPoint::kMidRememberedSet)) {
    r.MarkMalformed("bad crash point in collector state");
    return;
  }
  crash_point_ = static_cast<CrashPoint>(point);
  crash_attempt_ = r.U64();
  journal_ = Journal();
}

void Collector::ScheduleCrash(CrashPoint point, uint64_t attempt) {
  ODBGC_CHECK(point != CrashPoint::kNone);
  crash_point_ = point;
  // 1-based; 0 means "the next Collect call".
  crash_attempt_ = attempt == 0 ? attempts_ + 1 : attempt;
}

CollectionReport Collector::Collect(ObjectStore& store,
                                    PartitionId partition) {
  ODBGC_CHECK_MSG(!journal_.pending,
                  "Collect while crash recovery is pending");
  ++attempts_;
  const bool crash_now =
      crash_point_ != CrashPoint::kNone && attempts_ == crash_attempt_;
  const CrashPoint crash_point =
      crash_now ? crash_point_ : CrashPoint::kNone;
  // A scheduled crash forces the durable protocol for this collection so
  // that the commit record it relies on actually exists.
  const bool protocol = commit_protocol_ || crash_now;

  Partition& part = store.mutable_partition(partition);
  CollectionReport report;
  report.partition = partition;
  report.bytes_before = part.used();
  report.overwrites_at_collection = part.overwrites();

  const IoStats before_io = store.io_stats();

  ODBGC_TEL_SPAN(collection_span, tel_, "collection",
                 {{"partition", partition},
                  {"bytes_before", report.bytes_before}});
  ODBGC_IF_TEL(tel_) { tel_->Begin("scan"); }

  // 1. Read the partition's from-space (sequential scan of its used pages).
  if (part.used() > 0) {
    store.TouchRange(partition, 0, part.used(), /*dirty=*/false,
                     IoContext::kCollector);
  }

  // Partition roots: global roots in this partition, plus objects with at
  // least one referencing slot held by an object outside this partition
  // (the store's cross-partition in-ref counters answer that in O(1) per
  // object; the reverse-index lists are never scanned).
  //
  // Marking is epoch-stamped against the store's dense mark array: an
  // object is marked iff its stamp equals this collection's epoch, so no
  // per-collection set is allocated and clearing is free. copy_order
  // doubles as the BFS worklist (head cursor), which makes it exactly
  // the Cheney breadth-first copy order.
  const uint32_t epoch = store.BeginMarkEpoch();
  std::vector<uint32_t>& mark_epochs = store.mark_epochs();
  std::vector<ObjectId> copy_order;
  auto mark = [&](ObjectId id) {
    if (mark_epochs[id] != epoch) {
      mark_epochs[id] = epoch;
      copy_order.push_back(id);
    }
  };
  for (ObjectId root : store.roots()) {
    if (store.object(root).partition == partition) mark(root);
  }
  // The newest allocation is pinned: the application still holds a
  // transient reference to it even if it is not linked in yet.
  ObjectId newest = store.newest_object();
  if (newest != kNullObject && store.Exists(newest) &&
      store.object(newest).partition == partition) {
    mark(newest);
  }
  for (ObjectId id : part.objects()) {
    if (!store.Exists(id)) continue;
    if (store.object(id).xpart_in_refs > 0) mark(id);
  }

  // Cheney breadth-first traversal; pointers leaving the partition are
  // not traversed.
  for (size_t head = 0; head < copy_order.size(); ++head) {
    const ObjectRecord& rec = store.object(copy_order[head]);
    for (ObjectId target : rec.slots) {
      if (target == kNullObject) continue;
      if (store.object(target).partition != partition) continue;
      mark(target);
    }
  }

  // Plan the reclaim set and the compacted layout WITHOUT mutating the
  // store: nothing is destroyed or relocated until the flip (step 4), so a
  // crash before the commit point leaves from-space fully authoritative.
  std::vector<ObjectId> reclaim;
  uint64_t reclaimed_bytes = 0;
  for (ObjectId id : part.objects()) {
    if (mark_epochs[id] == epoch) continue;
    ODBGC_CHECK_MSG(!store.IsRoot(id), "collector reclaiming a root");
    reclaimed_bytes += store.object(id).size;
    reclaim.push_back(id);
  }
  uint32_t new_used = 0;
  for (ObjectId id : copy_order) new_used += store.object(id).size;
  const uint64_t live_bytes = new_used;
  ODBGC_CHECK(report.bytes_before == live_bytes + reclaimed_bytes);

  report.bytes_live = live_bytes;
  report.bytes_reclaimed = reclaimed_bytes;
  report.objects_live = copy_order.size();
  report.objects_reclaimed = reclaim.size();

  ODBGC_IF_TEL(tel_) {
    tel_->End("scan", {{"objects_live", report.objects_live},
                       {"objects_reclaimed", report.objects_reclaimed}});
  }

  // Simulated power cut: capture the durable journal, drop the volatile
  // buffer contents, and hand the partial report back to the caller.
  auto crash = [&](bool committed) -> CollectionReport {
    journal_.pending = true;
    journal_.committed = committed;
    journal_.point = crash_point;
    journal_.partition = partition;
    journal_.copy_order = copy_order;
    journal_.reclaim = reclaim;
    journal_.new_used = new_used;
    journal_.live_bytes = live_bytes;
    journal_.reclaimed_bytes = reclaimed_bytes;
    journal_.reclaimed_objects = reclaim.size();
    journal_.dirty_pages_lost = store.buffer_pool().DiscardAll();
    ++crashes_;
    crash_point_ = CrashPoint::kNone;  // single shot
    crash_attempt_ = 0;
    const IoStats at_crash = store.io_stats();
    report.gc_reads = at_crash.gc_reads - before_io.gc_reads;
    report.gc_writes = at_crash.gc_writes - before_io.gc_writes;
    report.crashed = true;
    report.crash_point = journal_.point;
    journal_.report = report;
    ODBGC_IF_TEL(tel_) {
      ti_.crashes->Increment();
      tel_->Instant("crash", {{"partition", partition},
                              {"crash_point", CrashPointName(journal_.point)},
                              {"committed", committed ? 1 : 0}});
    }
    return report;
  };

  // 2. Write the compacted to-space.
  ODBGC_IF_TEL(tel_) { tel_->Begin("copy", {{"bytes_live", live_bytes}}); }
  if (new_used > 0) {
    store.TouchRange(partition, 0, new_used, /*dirty=*/true,
                     IoContext::kCollector);
  }
  if (crash_point == CrashPoint::kAfterCopy) {
    ODBGC_IF_TEL(tel_) { tel_->End("copy"); }
    return crash(/*committed=*/false);
  }

  // 3. Commit point: force the to-space copy to disk, then make the
  // commit record durable (write-through, never cached).
  if (protocol) {
    store.buffer_pool().FlushPartition(partition, IoContext::kCollector);
    store.CommitRecordWrite(partition, IoContext::kCollector);
  }
  ODBGC_IF_TEL(tel_) { tel_->End("copy"); }
  if (crash_point == CrashPoint::kBeforeFlip) {
    return crash(/*committed=*/true);
  }

  // 4. Flip: destroy garbage, relocate survivors, drop the stale tail.
  ApplyFlip(store, partition, copy_order, reclaim, new_used);

  // 5. Remembered-set update: relocation invalidates external pointers
  // into this partition, so the referencing slot of every external source
  // is rewritten, costing a read (and dirty write-back) of its page.
  ODBGC_IF_TEL(tel_) { tel_->Begin("remembered_set"); }
  if (crash_point == CrashPoint::kMidRememberedSet) {
    const uint64_t total =
        UpdateRememberedSets(store, partition, copy_order, 0, 0);
    UpdateRememberedSets(store, partition, copy_order, 0, total / 2);
    ODBGC_IF_TEL(tel_) { tel_->End("remembered_set"); }
    return crash(/*committed=*/true);
  }
  const uint64_t external_updates =
      UpdateRememberedSets(store, partition, copy_order, 0, UINT64_MAX);
  ODBGC_IF_TEL(tel_) {
    tel_->End("remembered_set", {{"external_updates", external_updates}});
  }

  // 6. Clear the commit record and finish partition bookkeeping.
  if (protocol) {
    store.CommitRecordWrite(partition, IoContext::kCollector);
  }
  FinishCollection(store, partition, std::move(copy_order), new_used,
                   reclaimed_bytes, reclaim.size());

  const IoStats after_io = store.io_stats();
  report.gc_reads = after_io.gc_reads - before_io.gc_reads;
  report.gc_writes = after_io.gc_writes - before_io.gc_writes;
  ODBGC_IF_TEL(tel_) {
    ti_.collections->Increment();
    ti_.bytes_reclaimed->Add(report.bytes_reclaimed);
    ti_.gc_io->Record(report.gc_io());
    ti_.reclaimed->Record(report.bytes_reclaimed);
    ti_.live->Record(report.bytes_live);
  }
  return report;
}

RecoveryReport Collector::Recover(ObjectStore& store) {
  ODBGC_CHECK_MSG(journal_.pending, "Recover without a pending crash");
  RecoveryReport rec;
  rec.crash_point = journal_.point;
  rec.dirty_pages_lost = journal_.dirty_pages_lost;
  const PartitionId partition = journal_.partition;
  const IoStats before_io = store.io_stats();

  ODBGC_TEL_SPAN(recovery_span, tel_, "recovery",
                 {{"partition", partition},
                  {"crash_point", CrashPointName(journal_.point)}});

  // Restart probe: read the commit record to learn whether the crashed
  // collection reached its commit point.
  store.CommitRecordRead(partition, IoContext::kCollector);

  if (!journal_.committed) {
    // Roll back. The flip never became durable, so from-space remains
    // authoritative: no object was destroyed or moved, and the partial
    // to-space copy died with the buffer pool. Dropping the journal is
    // the whole undo.
    rec.rolled_forward = false;
  } else {
    // Roll forward: the commit record is durable, so the collection must
    // complete. kBeforeFlip crashed with the flip still unapplied;
    // kMidRememberedSet crashed after it.
    rec.rolled_forward = true;
    if (journal_.point == CrashPoint::kBeforeFlip) {
      ApplyFlip(store, partition, journal_.copy_order, journal_.reclaim,
                journal_.new_used);
    }
    // Redo every remembered-set update. The update set is recomputed from
    // the survivors' reverse index (external object positions are
    // unchanged by the crash) and replayed in full: the crash dropped the
    // volatile buffer, so recovery cannot know which rewrites reached
    // disk, and page rewrites are idempotent.
    rec.redo_external_updates = UpdateRememberedSets(
        store, partition, journal_.copy_order, 0, UINT64_MAX);
    store.CommitRecordWrite(partition, IoContext::kCollector);  // clear
    FinishCollection(store, partition, std::move(journal_.copy_order),
                     journal_.new_used, journal_.reclaimed_bytes,
                     journal_.reclaimed_objects);
  }

  const IoStats after_io = store.io_stats();
  rec.gc_reads = after_io.gc_reads - before_io.gc_reads;
  rec.gc_writes = after_io.gc_writes - before_io.gc_writes;
  if (rec.rolled_forward) {
    rec.completed = journal_.report;
    rec.completed.gc_reads += rec.gc_reads;
    rec.completed.gc_writes += rec.gc_writes;
  }
  ODBGC_IF_TEL(tel_) {
    ti_.recoveries->Increment();
    if (rec.rolled_forward) {
      // The crashed collection completed via redo; account for it the same
      // way a normal completion would have been.
      ti_.collections->Increment();
      ti_.bytes_reclaimed->Add(rec.completed.bytes_reclaimed);
      ti_.gc_io->Record(rec.completed.gc_io());
      ti_.reclaimed->Record(rec.completed.bytes_reclaimed);
      ti_.live->Record(rec.completed.bytes_live);
    }
  }
  journal_ = Journal{};
  return rec;
}

void Collector::ApplyFlip(ObjectStore& store, PartitionId partition,
                          const std::vector<ObjectId>& copy_order,
                          const std::vector<ObjectId>& reclaim,
                          uint32_t new_used) {
  // Destroying a garbage object detaches its out-pointers, which may
  // clear external references into other partitions (their floating
  // garbage becomes collectable later).
  for (ObjectId id : reclaim) store.DestroyObject(id);
  // Compact survivors in copy order (to-space starts at offset 0).
  uint32_t offset = 0;
  for (ObjectId id : copy_order) {
    store.Relocate(id, offset);
    offset += store.object(id).size;
  }
  ODBGC_CHECK(offset == new_used);
  // Pages past the compacted tail no longer exist; drop without flushing.
  const uint32_t page_bytes = store.config().page_bytes;
  const uint32_t first_dead_page = (new_used + page_bytes - 1) / page_bytes;
  store.buffer_pool().DropPartitionTail(partition, first_dead_page);
}

uint64_t Collector::UpdateRememberedSets(ObjectStore& store,
                                         PartitionId partition,
                                         const std::vector<ObjectId>& copy_order,
                                         uint64_t first, uint64_t count) {
  uint64_t ordinal = 0;
  uint64_t touched = 0;
  for (ObjectId id : copy_order) {
    for (ObjectId src : store.object(id).in_refs) {
      const ObjectRecord& s = store.object(src);
      if (s.partition == partition) continue;  // rewritten by the copy
      if (ordinal >= first && touched < count) {
        store.TouchRange(s.partition, s.offset, s.size, /*dirty=*/true,
                         IoContext::kCollector);
        ++touched;
      }
      ++ordinal;
    }
  }
  return ordinal;
}

void Collector::FinishCollection(ObjectStore& store, PartitionId partition,
                                 std::vector<ObjectId> copy_order,
                                 uint32_t new_used, uint64_t reclaimed_bytes,
                                 uint64_t reclaimed_objects) {
  Partition& part = store.mutable_partition(partition);
  const uint32_t old_used = part.used();
  part.ResetAfterCollection(std::move(copy_order), new_used);
  part.set_last_collected_stamp(++collections_);
  store.AdjustUsedBytes(partition, old_used, new_used);
  store.RecordGarbageCollected(reclaimed_bytes, reclaimed_objects);
}

}  // namespace odbgc
