#ifndef ODBGC_GC_PARTITION_SELECTOR_H_
#define ODBGC_GC_PARTITION_SELECTOR_H_

#include <memory>
#include <string>

#include "storage/object_store.h"
#include "storage/reachability.h"
#include "storage/types.h"
#include "util/random.h"
#include "util/snapshot.h"

namespace odbgc {

// Decides which partition a collection operates on (the policy area
// studied in [CWZ94]; this paper fixes UpdatedPointer and studies the
// collection *rate*, but the selection policy matters to the CGS/CB
// estimator — see Section 4.1.2 and the selection ablation bench).
//
// Quarantined partitions (ObjectStore::IsQuarantined) are never
// selected; if every partition is quarantined, Select returns
// kInvalidPartition and the caller skips the collection. With no
// quarantine in effect every selector behaves bit-for-bit as before.
class PartitionSelector {
 public:
  virtual ~PartitionSelector() = default;
  virtual PartitionId Select(const ObjectStore& store) = 0;
  virtual std::string name() const = 0;

  // Checkpoint hooks. Stateless selectors (the default) save nothing;
  // stateful ones (Random's RNG stream, RoundRobin's cursor) override.
  virtual void SaveState(SnapshotWriter& /*w*/) const {}
  virtual void RestoreState(SnapshotReader& /*r*/) {}
};

// UPDATEDPOINTER [CWZ94]: collect the partition with the most pointer
// overwrites since its last collection (overwrites correlate strongly
// with garbage). Ties break toward the least recently collected.
class UpdatedPointerSelector : public PartitionSelector {
 public:
  PartitionId Select(const ObjectStore& store) override;
  std::string name() const override { return "UpdatedPointer"; }
};

// Uniform-random selection. CGS/CB's representativeness assumption holds
// under this policy (ablation E10).
class RandomSelector : public PartitionSelector {
 public:
  explicit RandomSelector(uint64_t seed) : rng_(seed) {}
  PartitionId Select(const ObjectStore& store) override;
  std::string name() const override { return "Random"; }
  void SaveState(SnapshotWriter& w) const override {
    for (uint64_t s : rng_.state()) w.U64(s);
  }
  void RestoreState(SnapshotReader& r) override {
    std::array<uint64_t, 4> s;
    for (uint64_t& x : s) x = r.U64();
    rng_.set_state(s);
  }

 private:
  Rng rng_;
};

// Cycles through partitions in order.
class RoundRobinSelector : public PartitionSelector {
 public:
  PartitionId Select(const ObjectStore& store) override;
  std::string name() const override { return "RoundRobin"; }
  void SaveState(SnapshotWriter& w) const override { w.U32(next_); }
  void RestoreState(SnapshotReader& r) override { next_ = r.U32(); }

 private:
  PartitionId next_ = 0;
};

// Oracle: full reachability scan, collect the partition holding the most
// unreachable bytes. Impractical in a real system; used as the upper
// bound in ablations. The scan workspace persists across Select calls.
class MostGarbageOracleSelector : public PartitionSelector {
 public:
  PartitionId Select(const ObjectStore& store) override;
  std::string name() const override { return "MostGarbageOracle"; }

 private:
  ReachabilityResult scan_;
  ReachabilityScratch scratch_;
};

// Pure rotation by collection recency: always collect the partition
// whose last collection is longest ago. Unlike RoundRobin it stays fair
// as the database grows (new partitions are immediately "oldest").
class LeastRecentlyCollectedSelector : public PartitionSelector {
 public:
  PartitionId Select(const ObjectStore& store) override;
  std::string name() const override { return "LeastRecentlyCollected"; }
};

// UpdatedPointer normalized by partition fill: overwrites per used byte.
// Prefers partitions whose overwrite activity is *dense* rather than
// merely voluminous, which discounts large partitions that absorb many
// benign overwrites.
class OverwriteDensitySelector : public PartitionSelector {
 public:
  PartitionId Select(const ObjectStore& store) override;
  std::string name() const override { return "OverwriteDensity"; }
};

enum class SelectorKind {
  kUpdatedPointer,
  kRandom,
  kRoundRobin,
  kMostGarbageOracle,
  kLeastRecentlyCollected,
  kOverwriteDensity,
};

std::unique_ptr<PartitionSelector> MakeSelector(SelectorKind kind,
                                                uint64_t seed);

}  // namespace odbgc

#endif  // ODBGC_GC_PARTITION_SELECTOR_H_
