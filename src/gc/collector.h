#ifndef ODBGC_GC_COLLECTOR_H_
#define ODBGC_GC_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "obs/telemetry.h"
#include "storage/fault_injector.h"
#include "storage/mark_bitmap.h"
#include "storage/object_store.h"
#include "storage/types.h"
#include "util/snapshot.h"
#include "util/thread_pool.h"

namespace odbgc {

// Outcome of one partition collection.
struct CollectionReport {
  PartitionId partition = kInvalidPartition;
  uint64_t bytes_before = 0;        // partition bytes in use before
  uint64_t bytes_live = 0;          // surviving bytes after compaction
  uint64_t bytes_reclaimed = 0;     // bytes_before - bytes_live
  uint64_t objects_live = 0;
  uint64_t objects_reclaimed = 0;
  uint64_t gc_reads = 0;            // I/O operations attributed to this GC
  uint64_t gc_writes = 0;
  uint64_t gc_io() const { return gc_reads + gc_writes; }
  // FGS value of the partition at selection time (pointer overwrites
  // accumulated since its previous collection); consumed by FGS/HB.
  uint64_t overwrites_at_collection = 0;
  // An injected crash interrupted this collection at `crash_point`; the
  // store is mid-protocol and the caller must run Recover() before doing
  // anything else with it. The reclaim/live figures above are the values
  // the collection *would* have produced; whether they materialize is
  // decided by recovery (roll forward) or not (roll back).
  bool crashed = false;
  CrashPoint crash_point = CrashPoint::kNone;
  // The partition was quarantined at Collect time; nothing was read,
  // written, or mutated. The caller should pick another partition.
  bool skipped_quarantine = false;
  // The step-1 from-space scan surfaced a corruption detection (checksum
  // mismatch or device fault) in this partition, and the collection
  // aborted *before its commit point*: no object was destroyed, moved,
  // or rewritten, so from-space stays fully authoritative. gc_reads
  // counts the scan that found the damage; the caller quarantines and
  // repairs, then may retry.
  bool aborted_corrupt = false;
};

// Outcome of recovering from an injected crash.
struct RecoveryReport {
  CrashPoint crash_point = CrashPoint::kNone;
  // True: the commit record was durable, so recovery completed the
  // collection (redo). False: the crash preceded the commit point, so
  // recovery discarded the partial collection (undo) and the partition's
  // from-space stayed authoritative.
  bool rolled_forward = false;
  uint64_t redo_external_updates = 0;  // remembered-set entries redone
  size_t dirty_pages_lost = 0;   // volatile buffer contents lost at crash
  uint64_t gc_reads = 0;         // recovery's own I/O
  uint64_t gc_writes = 0;
  // The completed collection (valid only when rolled_forward): the
  // crashed attempt's report finished by recovery, with recovery I/O
  // folded into gc_reads/gc_writes.
  CollectionReport completed;
};

// Partitioned copying collector (Section 3.1, after [CWZ94]):
//
//  * The unit of collection is one partition.
//  * Partition roots are the global roots residing in the partition plus
//    every object referenced from outside the partition (pointers leaving
//    the collected partition are not traversed; pointers entering it are
//    treated as roots, which is what makes the collection safe without
//    scanning other partitions).
//  * Live objects are copied breadth first (Cheney) to offset-compacted
//    positions, improving reference locality.
//  * Everything not reached is reclaimed.
//
// Every collection is split into a read-only *plan* (mark into a bitmap,
// derive the Cheney copy order, the reclaim set, and the compacted
// layout — no store mutation, no I/O dependence) and an *apply* (the
// I/O, the flip, the remembered-set rewrite, the bookkeeping). Collect()
// runs plan+apply for one partition; CollectBatch() plans many
// partitions concurrently on a thread pool and then applies them
// serially in the given order, which keeps the result — reports, I/O
// accounting, and final heap state — byte-identical to calling Collect()
// in a loop at any thread count. Staleness repair: applying partition A
// can unlink cross-partition references into a later partition B (A's
// garbage held pointers into B), which shrinks B's root set; the batch
// detects this and re-plans B serially before applying it, exactly as
// the serial loop would have seen it.
//
// I/O model: the collector scans the partition's used pages (reads),
// writes the compacted survivors, and — because relocation changes object
// positions — reads and rewrites the page of every external object that
// holds a pointer into the partition. All transfers go through the store's
// buffer pool tagged IoContext::kCollector.
//
// Crash consistency (atomic partition-flip commit protocol): with the
// commit protocol enabled, a collection orders its effects as
//
//   1. read from-space, mark, compute the compacted layout
//   2. write to-space                       <- CrashPoint::kAfterCopy
//   3. flush to-space + write commit record (durable, write-through)
//                                           <- CrashPoint::kBeforeFlip
//   4. flip: destroy garbage, relocate survivors, drop the stale tail
//   5. remembered-set update: rewrite every external referencing page
//                                           <- CrashPoint::kMidRememberedSet
//   6. clear commit record, finish partition bookkeeping
//
// The commit record (step 3) is the atomicity point: a crash before it
// rolls back (from-space untouched, nothing logically changed), a crash
// after it rolls forward (recovery replays the flip and/or redoes the
// remembered-set updates from the durable record). Either way no
// reachable object is ever lost. A crash also drops the buffer pool's
// volatile contents, so recovery pays realistic re-read costs.
class Collector {
 public:
  Collector() = default;

  CollectionReport Collect(ObjectStore& store, PartitionId partition);

  // Collects `partitions` (distinct ids) with the planning phase fanned
  // out over `pool` (or planned inline when pool is null / single
  // threaded) and the apply phase run serially in the given order.
  // Returns one report per partition, in order. If a scheduled crash
  // fires mid-batch the batch stops at the crashed collection (the
  // returned vector is short; its last report has crashed == true) and
  // the caller must Recover() before collecting again.
  std::vector<CollectionReport> CollectBatch(
      ObjectStore& store, const std::vector<PartitionId>& partitions,
      ThreadPool* pool = nullptr);

  // Runs the durable commit protocol on every collection (two
  // write-through metadata transfers plus a to-space flush per
  // collection). Off by default: zero-fault runs stay byte-identical to
  // the protocol-free collector. A scheduled crash forces the protocol
  // for the crashed collection regardless.
  void set_commit_protocol(bool on) { commit_protocol_ = on; }
  bool commit_protocol() const { return commit_protocol_; }

  // Schedules a single injected crash: the `attempt`-th Collect call
  // (1-based, counting every call including rolled-back ones) stops at
  // `point`. The schedule clears once it fires.
  void ScheduleCrash(CrashPoint point, uint64_t attempt);

  // True after a crashed Collect until Recover is called. Collect CHECKs
  // that no recovery is pending.
  bool needs_recovery() const { return journal_.pending; }

  // Rolls the interrupted collection back (crash before the commit
  // point) or forward (crash after it). Leaves the heap verifier-clean.
  RecoveryReport Recover(ObjectStore& store);

  uint64_t collections_performed() const { return collections_; }
  uint64_t crashes_injected() const { return crashes_; }

  // Checkpoint hooks. Checkpoints are taken between trace events, never
  // inside a collection, so the journal must be quiescent (no pending
  // recovery) — CHECKed on save. The crash schedule is part of the
  // persisted state: a resumed run keeps an unfired schedule.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

  // Attaches per-run telemetry (not owned; may be null). A collection
  // records a `collection` span with `scan` / `copy` / `remembered_set`
  // child spans; crashes record an instant and Recover() a `recovery`
  // span. Collection-shape histograms (gc I/O, reclaimed, live) are kept
  // as metrics.
  void AttachTelemetry(obs::Telemetry* telemetry);

 private:
  // Read-only result of marking one partition: everything a collection
  // decides before it mutates anything.
  struct CollectionPlan {
    std::vector<ObjectId> copy_order;  // survivors, Cheney BFS order
    std::vector<ObjectId> reclaim;     // garbage, partition-list order
    uint32_t new_used = 0;             // compacted survivor bytes
    uint64_t reclaimed_bytes = 0;
  };

  // Durable commit-record contents, captured at the crash point. In a
  // real system this is the journal page the commit protocol writes; the
  // simulation keeps it in memory and charges the I/O explicitly.
  struct Journal {
    bool pending = false;
    bool committed = false;  // commit record durable at crash time
    CrashPoint point = CrashPoint::kNone;
    PartitionId partition = kInvalidPartition;
    std::vector<ObjectId> copy_order;  // survivors in to-space order
    std::vector<ObjectId> reclaim;     // garbage not yet destroyed
    uint32_t new_used = 0;
    uint64_t live_bytes = 0;
    uint64_t reclaimed_bytes = 0;
    uint64_t reclaimed_objects = 0;
    size_t dirty_pages_lost = 0;
    CollectionReport report;  // partial report at crash time
  };

  // One pending remembered-set page rewrite (gathered, then applied in
  // gather order).
  struct RemsetTouch {
    PartitionId partition;
    uint32_t offset;
    uint32_t size;
  };

  // Marks `partition` into `mark` (Reset here) and fills `*plan`. Pure
  // read of the store — safe to run concurrently with other
  // PlanPartition calls as long as each has its own bitmap and plan.
  static void PlanPartition(const ObjectStore& store, PartitionId partition,
                            MarkBitmap& mark, CollectionPlan* plan);

  // Points the plan cache at `store` (keyed by its serial; a different or
  // restored store starts cold) and spans it over the current partition
  // count.
  void EnsurePlanCache(const ObjectStore& store);

  // Steps 2-6 (I/O, flip, remembered sets, bookkeeping, crash handling)
  // for a partition whose plan is already computed. `plan` is scratch
  // owned by the caller; its vectors are copied into the journal on a
  // crash and into the partition's survivor list on completion.
  CollectionReport ApplyCollection(ObjectStore& store, PartitionId partition,
                                   const CollectionPlan& plan);

  // Applies the logical flip: destroys the reclaim set, relocates the
  // survivors to the compacted layout, and drops the stale buffer tail.
  void ApplyFlip(ObjectStore& store, PartitionId partition,
                 const std::vector<ObjectId>& copy_order,
                 const std::vector<ObjectId>& reclaim, uint32_t new_used);

  // Rewrites the page of external objects referencing a survivor:
  // entries with ordinal in [first, first + count) are touched (count = 0
  // just counts). Returns the total number of external referencing
  // entries, regardless of how many were touched. The walk gathers the
  // external (partition, offset, size) triples first (a pure prefetched
  // memory pass over the survivors' in-ref lists), then issues the page
  // touches in the same order the interleaved walk would have.
  uint64_t UpdateRememberedSets(ObjectStore& store, PartitionId partition,
                                const std::vector<ObjectId>& copy_order,
                                uint64_t first, uint64_t count);

  // Finishes partition bookkeeping and store-level accounting shared by
  // the normal path and roll-forward recovery.
  void FinishCollection(ObjectStore& store, PartitionId partition,
                        const std::vector<ObjectId>& copy_order,
                        uint32_t new_used, uint64_t reclaimed_bytes,
                        uint64_t reclaimed_objects);

  obs::Telemetry* tel_ = nullptr;
  struct TelInstruments {
    obs::Counter* collections = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* bytes_reclaimed = nullptr;
    obs::Histogram* gc_io = nullptr;
    obs::Histogram* reclaimed = nullptr;
    obs::Histogram* live = nullptr;
    obs::Histogram* batch_partitions = nullptr;
    obs::Counter* batch_replans = nullptr;
  } ti_;

  uint64_t collections_ = 0;
  uint64_t attempts_ = 0;
  uint64_t crashes_ = 0;
  bool commit_protocol_ = false;
  CrashPoint crash_point_ = CrashPoint::kNone;
  uint64_t crash_attempt_ = 0;
  Journal journal_;

  // Serial-path scratch, reused across collections (no alloc churn).
  MarkBitmap mark_scratch_;
  std::vector<RemsetTouch> remset_scratch_;

  // Plan cache: one slot per partition, valid while the store's
  // plan-input epoch for it is unchanged (ObjectStore::plan_epoch
  // documents exactly what bumps it). Steady-state collections — collect,
  // mutate elsewhere, collect again — skip the whole mark/plan phase.
  // Collect() fills entries; CollectBatch() only reads them (its planning
  // workers share the cache concurrently, so the batch never writes it).
  uint64_t cache_serial_ = 0;
  std::vector<CollectionPlan> plan_cache_;
  std::vector<uint64_t> plan_cache_epoch_;
  std::vector<char> plan_cache_valid_;
};

}  // namespace odbgc

#endif  // ODBGC_GC_COLLECTOR_H_
