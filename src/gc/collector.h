#ifndef ODBGC_GC_COLLECTOR_H_
#define ODBGC_GC_COLLECTOR_H_

#include <cstdint>

#include "storage/object_store.h"
#include "storage/types.h"

namespace odbgc {

// Outcome of one partition collection.
struct CollectionReport {
  PartitionId partition = kInvalidPartition;
  uint64_t bytes_before = 0;        // partition bytes in use before
  uint64_t bytes_live = 0;          // surviving bytes after compaction
  uint64_t bytes_reclaimed = 0;     // bytes_before - bytes_live
  uint64_t objects_live = 0;
  uint64_t objects_reclaimed = 0;
  uint64_t gc_reads = 0;            // I/O operations attributed to this GC
  uint64_t gc_writes = 0;
  uint64_t gc_io() const { return gc_reads + gc_writes; }
  // FGS value of the partition at selection time (pointer overwrites
  // accumulated since its previous collection); consumed by FGS/HB.
  uint64_t overwrites_at_collection = 0;
};

// Partitioned copying collector (Section 3.1, after [CWZ94]):
//
//  * The unit of collection is one partition.
//  * Partition roots are the global roots residing in the partition plus
//    every object referenced from outside the partition (pointers leaving
//    the collected partition are not traversed; pointers entering it are
//    treated as roots, which is what makes the collection safe without
//    scanning other partitions).
//  * Live objects are copied breadth first (Cheney) to offset-compacted
//    positions, improving reference locality.
//  * Everything not reached is reclaimed.
//
// I/O model: the collector scans the partition's used pages (reads),
// writes the compacted survivors, and — because relocation changes object
// positions — reads and rewrites the page of every external object that
// holds a pointer into the partition. All transfers go through the store's
// buffer pool tagged IoContext::kCollector.
class Collector {
 public:
  Collector() = default;

  CollectionReport Collect(ObjectStore& store, PartitionId partition);

  uint64_t collections_performed() const { return collections_; }

 private:
  uint64_t collections_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_GC_COLLECTOR_H_
