#ifndef ODBGC_GC_COLLECTOR_H_
#define ODBGC_GC_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "obs/telemetry.h"
#include "storage/fault_injector.h"
#include "storage/object_store.h"
#include "storage/types.h"
#include "util/snapshot.h"

namespace odbgc {

// Outcome of one partition collection.
struct CollectionReport {
  PartitionId partition = kInvalidPartition;
  uint64_t bytes_before = 0;        // partition bytes in use before
  uint64_t bytes_live = 0;          // surviving bytes after compaction
  uint64_t bytes_reclaimed = 0;     // bytes_before - bytes_live
  uint64_t objects_live = 0;
  uint64_t objects_reclaimed = 0;
  uint64_t gc_reads = 0;            // I/O operations attributed to this GC
  uint64_t gc_writes = 0;
  uint64_t gc_io() const { return gc_reads + gc_writes; }
  // FGS value of the partition at selection time (pointer overwrites
  // accumulated since its previous collection); consumed by FGS/HB.
  uint64_t overwrites_at_collection = 0;
  // An injected crash interrupted this collection at `crash_point`; the
  // store is mid-protocol and the caller must run Recover() before doing
  // anything else with it. The reclaim/live figures above are the values
  // the collection *would* have produced; whether they materialize is
  // decided by recovery (roll forward) or not (roll back).
  bool crashed = false;
  CrashPoint crash_point = CrashPoint::kNone;
};

// Outcome of recovering from an injected crash.
struct RecoveryReport {
  CrashPoint crash_point = CrashPoint::kNone;
  // True: the commit record was durable, so recovery completed the
  // collection (redo). False: the crash preceded the commit point, so
  // recovery discarded the partial collection (undo) and the partition's
  // from-space stayed authoritative.
  bool rolled_forward = false;
  uint64_t redo_external_updates = 0;  // remembered-set entries redone
  size_t dirty_pages_lost = 0;   // volatile buffer contents lost at crash
  uint64_t gc_reads = 0;         // recovery's own I/O
  uint64_t gc_writes = 0;
  // The completed collection (valid only when rolled_forward): the
  // crashed attempt's report finished by recovery, with recovery I/O
  // folded into gc_reads/gc_writes.
  CollectionReport completed;
};

// Partitioned copying collector (Section 3.1, after [CWZ94]):
//
//  * The unit of collection is one partition.
//  * Partition roots are the global roots residing in the partition plus
//    every object referenced from outside the partition (pointers leaving
//    the collected partition are not traversed; pointers entering it are
//    treated as roots, which is what makes the collection safe without
//    scanning other partitions).
//  * Live objects are copied breadth first (Cheney) to offset-compacted
//    positions, improving reference locality.
//  * Everything not reached is reclaimed.
//
// I/O model: the collector scans the partition's used pages (reads),
// writes the compacted survivors, and — because relocation changes object
// positions — reads and rewrites the page of every external object that
// holds a pointer into the partition. All transfers go through the store's
// buffer pool tagged IoContext::kCollector.
//
// Crash consistency (atomic partition-flip commit protocol): with the
// commit protocol enabled, a collection orders its effects as
//
//   1. read from-space, mark, compute the compacted layout
//   2. write to-space                       <- CrashPoint::kAfterCopy
//   3. flush to-space + write commit record (durable, write-through)
//                                           <- CrashPoint::kBeforeFlip
//   4. flip: destroy garbage, relocate survivors, drop the stale tail
//   5. remembered-set update: rewrite every external referencing page
//                                           <- CrashPoint::kMidRememberedSet
//   6. clear commit record, finish partition bookkeeping
//
// The commit record (step 3) is the atomicity point: a crash before it
// rolls back (from-space untouched, nothing logically changed), a crash
// after it rolls forward (recovery replays the flip and/or redoes the
// remembered-set updates from the durable record). Either way no
// reachable object is ever lost. A crash also drops the buffer pool's
// volatile contents, so recovery pays realistic re-read costs.
class Collector {
 public:
  Collector() = default;

  CollectionReport Collect(ObjectStore& store, PartitionId partition);

  // Runs the durable commit protocol on every collection (two
  // write-through metadata transfers plus a to-space flush per
  // collection). Off by default: zero-fault runs stay byte-identical to
  // the protocol-free collector. A scheduled crash forces the protocol
  // for the crashed collection regardless.
  void set_commit_protocol(bool on) { commit_protocol_ = on; }
  bool commit_protocol() const { return commit_protocol_; }

  // Schedules a single injected crash: the `attempt`-th Collect call
  // (1-based, counting every call including rolled-back ones) stops at
  // `point`. The schedule clears once it fires.
  void ScheduleCrash(CrashPoint point, uint64_t attempt);

  // True after a crashed Collect until Recover is called. Collect CHECKs
  // that no recovery is pending.
  bool needs_recovery() const { return journal_.pending; }

  // Rolls the interrupted collection back (crash before the commit
  // point) or forward (crash after it). Leaves the heap verifier-clean.
  RecoveryReport Recover(ObjectStore& store);

  uint64_t collections_performed() const { return collections_; }
  uint64_t crashes_injected() const { return crashes_; }

  // Checkpoint hooks. Checkpoints are taken between trace events, never
  // inside a collection, so the journal must be quiescent (no pending
  // recovery) — CHECKed on save. The crash schedule is part of the
  // persisted state: a resumed run keeps an unfired schedule.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

  // Attaches per-run telemetry (not owned; may be null). A collection
  // records a `collection` span with `scan` / `copy` / `remembered_set`
  // child spans; crashes record an instant and Recover() a `recovery`
  // span. Collection-shape histograms (gc I/O, reclaimed, live) are kept
  // as metrics.
  void AttachTelemetry(obs::Telemetry* telemetry);

 private:
  // Durable commit-record contents, captured at the crash point. In a
  // real system this is the journal page the commit protocol writes; the
  // simulation keeps it in memory and charges the I/O explicitly.
  struct Journal {
    bool pending = false;
    bool committed = false;  // commit record durable at crash time
    CrashPoint point = CrashPoint::kNone;
    PartitionId partition = kInvalidPartition;
    std::vector<ObjectId> copy_order;  // survivors in to-space order
    std::vector<ObjectId> reclaim;     // garbage not yet destroyed
    uint32_t new_used = 0;
    uint64_t live_bytes = 0;
    uint64_t reclaimed_bytes = 0;
    uint64_t reclaimed_objects = 0;
    size_t dirty_pages_lost = 0;
    CollectionReport report;  // partial report at crash time
  };

  // Applies the logical flip: destroys the reclaim set, relocates the
  // survivors to the compacted layout, and drops the stale buffer tail.
  void ApplyFlip(ObjectStore& store, PartitionId partition,
                 const std::vector<ObjectId>& copy_order,
                 const std::vector<ObjectId>& reclaim, uint32_t new_used);

  // Rewrites the page of external objects referencing a survivor:
  // entries with ordinal in [first, first + count) are touched (count = 0
  // just counts). Returns the total number of external referencing
  // entries, regardless of how many were touched.
  uint64_t UpdateRememberedSets(ObjectStore& store, PartitionId partition,
                                const std::vector<ObjectId>& copy_order,
                                uint64_t first, uint64_t count);

  // Finishes partition bookkeeping and store-level accounting shared by
  // the normal path and roll-forward recovery.
  void FinishCollection(ObjectStore& store, PartitionId partition,
                        std::vector<ObjectId> copy_order, uint32_t new_used,
                        uint64_t reclaimed_bytes, uint64_t reclaimed_objects);

  obs::Telemetry* tel_ = nullptr;
  struct TelInstruments {
    obs::Counter* collections = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* bytes_reclaimed = nullptr;
    obs::Histogram* gc_io = nullptr;
    obs::Histogram* reclaimed = nullptr;
    obs::Histogram* live = nullptr;
  } ti_;

  uint64_t collections_ = 0;
  uint64_t attempts_ = 0;
  uint64_t crashes_ = 0;
  bool commit_protocol_ = false;
  CrashPoint crash_point_ = CrashPoint::kNone;
  uint64_t crash_attempt_ = 0;
  Journal journal_;
};

}  // namespace odbgc

#endif  // ODBGC_GC_COLLECTOR_H_
