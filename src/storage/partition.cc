#include "storage/partition.h"

#include "util/check.h"

namespace odbgc {

Partition::Partition(PartitionId id, uint32_t capacity_bytes)
    : id_(id), capacity_(capacity_bytes) {}

uint32_t Partition::Allocate(ObjectId obj, uint32_t size) {
  ODBGC_CHECK_MSG(Fits(size), "partition overflow");
  uint32_t offset = used_;
  used_ += size;
  objects_.push_back(obj);
  return offset;
}

bool Partition::ResetAfterCollection(const std::vector<ObjectId>& survivors,
                                     uint32_t new_used) {
  ODBGC_CHECK(new_used <= capacity_);
  const bool changed = used_ != new_used || objects_ != survivors;
  objects_ = survivors;
  used_ = new_used;
  ResetOverwrites();
  RecordCollection();
  return changed;
}

void Partition::SaveState(SnapshotWriter& w) const {
  w.U32(used_);
  w.VecU32(objects_);
  w.U64(overwrites_);
  w.U64(collections_);
  w.U64(last_collected_stamp_);
}

void Partition::RestoreState(SnapshotReader& r) {
  used_ = r.U32();
  objects_ = r.VecU32();
  overwrites_ = r.U64();
  collections_ = r.U64();
  last_collected_stamp_ = r.U64();
}

}  // namespace odbgc
