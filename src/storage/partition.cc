#include "storage/partition.h"

#include "util/check.h"

namespace odbgc {

Partition::Partition(PartitionId id, uint32_t capacity_bytes)
    : id_(id), capacity_(capacity_bytes) {}

uint32_t Partition::Allocate(ObjectId obj, uint32_t size) {
  ODBGC_CHECK_MSG(Fits(size), "partition overflow");
  uint32_t offset = used_;
  used_ += size;
  objects_.push_back(obj);
  return offset;
}

void Partition::ResetAfterCollection(std::vector<ObjectId> survivors,
                                     uint32_t new_used) {
  ODBGC_CHECK(new_used <= capacity_);
  objects_ = std::move(survivors);
  used_ = new_used;
  ResetOverwrites();
  RecordCollection();
}

}  // namespace odbgc
