#ifndef ODBGC_STORAGE_SCRUBBER_H_
#define ODBGC_STORAGE_SCRUBBER_H_

#include <cstdint>

#include "storage/object_store.h"
#include "util/snapshot.h"

namespace odbgc {

// Outcome of one scrub quantum.
struct ScrubReport {
  uint64_t pages_scrubbed = 0;   // media reads issued this quantum
  uint64_t corruption_found = 0; // detections surfaced by those reads
};

// Deterministic background media scrubber. Walks the used pages of every
// healthy partition in a fixed order (partition id, then page index),
// reading each page through the buffer pool's uncached read-through path
// so the stored image — not a cached RAM copy — is checked against its
// page checksum. Latent damage (silent bit-flips, materialized decay) is
// thereby found proactively, before a demand read or a collection scan
// consumes it; detections land in the pool's corruption-event queue for
// the host to quarantine.
//
// The walk is resumable: each quantum scrubs at most `budget` pages from
// a persistent cursor and wraps at the end of the database. Driven by
// Simulation at trace-event boundaries, so its reads interleave with the
// workload at deterministic points (byte-identical at any --threads).
// Quarantined partitions are skipped — repair, not the scrubber, owns
// them while they are out of service.
class Scrubber {
 public:
  Scrubber() = default;

  // Scrubs up to `budget` pages starting at the cursor. Empty partitions
  // and quarantined partitions are skipped without consuming budget.
  ScrubReport ScrubQuantum(ObjectStore& store, uint32_t budget);

  PartitionId cursor_partition() const { return part_; }
  uint32_t cursor_page() const { return page_; }

  // Checkpoint hooks (cursor only; the pool owns detection state).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  PartitionId part_ = 0;
  uint32_t page_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_SCRUBBER_H_
