#ifndef ODBGC_STORAGE_FAULT_INJECTOR_H_
#define ODBGC_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "storage/types.h"
#include "util/random.h"
#include "util/snapshot.h"

namespace odbgc {

// Named points inside one partition collection at which an injected
// crash can interrupt the collector (see gc/collector.h for the commit
// protocol these bracket).
enum class CrashPoint : uint8_t {
  kNone = 0,
  // To-space copy written, commit record NOT yet durable. Recovery must
  // roll the collection back; from-space stays authoritative.
  kAfterCopy = 1,
  // Commit record durable, forwarding flip not yet applied. Recovery must
  // roll forward past the commit point.
  kBeforeFlip = 2,
  // Flip applied, remembered-set (external pointer) updates interrupted
  // midway. Recovery must redo the updates from the commit record.
  kMidRememberedSet = 3,
};

const char* CrashPointName(CrashPoint p);

// Deterministic fault schedule for one run. Part of the run's
// configuration, so identical seed + identical plan reproduces the exact
// same fault sequence (at any --threads; runner.h's ApplyRunSeeds mixes
// the per-run seed in). All knobs default to "no faults": a default plan
// leaves behavior and output byte-identical to a build without it.
struct FaultPlan {
  // Mixed with the run seed by ApplyRunSeeds; used raw when a store is
  // constructed directly (unit fixtures).
  uint64_t seed = 0;

  // Per-attempt probability that a page read / write transfer fails
  // transiently. A failed attempt is retried (with backoff) up to
  // max_retries times; if every attempt fails the error is permanent.
  double read_fault_prob = 0.0;
  double write_fault_prob = 0.0;
  // Probability that a completed write leaves the page torn. A torn page
  // is detected on its next read and repaired by a rewrite.
  double torn_write_prob = 0.0;
  // Probability that a completed write silently flips bits in the stored
  // page image. Nothing is reported at write time; the per-page checksum
  // catches the mismatch on the next media read (demand miss or scrub).
  double bitflip_prob = 0.0;
  // Latent media decay: probability that a completed write leaves the
  // page on a weak sector that rots after decay_latency further physical
  // transfers (to any page). Like a bit-flip, the rot is only observable
  // as a checksum mismatch once the page is next read from media.
  double decay_prob = 0.0;
  uint32_t decay_latency = 64;
  // Permanent device faults: probability that a completed write kills the
  // page's physical location for good (every later transfer fails without
  // retry), and — given a dead page — the conditional probability that the
  // whole partition's device dies with it. Dead locations stay dead until
  // repair remaps them (HealPage / HealPartition).
  double dead_page_prob = 0.0;
  double dead_partition_prob = 0.0;
  uint32_t max_retries = 3;
  // Base backoff charged to the disk-time model before the first retry;
  // doubles per subsequent retry. Ignored unless disk timing is enabled.
  double retry_backoff_ms = 0.5;

  // Single-shot crash schedule: the crash_at_collection-th call of
  // Collector::Collect (1-based) stops at crash_point; the simulation
  // then runs recovery. kNone disables.
  CrashPoint crash_point = CrashPoint::kNone;
  uint64_t crash_at_collection = 0;
  // Whole-process crash schedule: kill the simulation after the Nth
  // applied trace event (1-based; 0 disables). Unlike crash_point this
  // models losing the process anywhere, not just inside a collection;
  // the run aborts with SimCrashInjected and is expected to be resumed
  // from its last checkpoint (sim/checkpoint.h).
  uint64_t crash_at_event = 0;
  // Run the durable commit protocol (to-space flush + commit-record
  // write-through) on every collection, not only the crashed one. Costs
  // extra GC writes; required for crash consistency in faulted runs.
  bool commit_protocol = false;

  bool io_faults_enabled() const {
    return read_fault_prob > 0.0 || write_fault_prob > 0.0 ||
           torn_write_prob > 0.0 || bitflip_prob > 0.0 || decay_prob > 0.0 ||
           dead_page_prob > 0.0;
  }
  bool enabled() const {
    return io_faults_enabled() || crash_point != CrashPoint::kNone ||
           commit_protocol || crash_at_event != 0;
  }
};

// Outcome of injecting faults into one physical page transfer.
struct FaultOutcome {
  uint32_t retries = 0;      // failed attempts that were retried
  bool permanent = false;    // every attempt failed
  bool torn = false;         // write completed but left the page torn
  bool repaired_tear = false;  // read detected a torn page (rewrite due)
  // The read returned a page image whose CRC does not match its stored
  // checksum (earlier bit-flip or materialized decay). The page's logical
  // content is unusable until repair rewrites it from the primary copy.
  bool corrupt = false;
  bool bitflipped = false;   // write silently corrupted the stored image
  bool decay_armed = false;  // write landed on a weak sector (latent)
  // The page's (or its partition's) physical location is permanently
  // dead: the transfer failed outright, no retry can help.
  bool dead = false;
};

// Deterministic fault source for the buffer pool's physical transfers.
// One injector per ObjectStore: its RNG stream is consumed in transfer
// order, which is itself deterministic per run, so a (plan, seed) pair
// fully determines every fault. Tracks the set of currently-torn pages:
// a tear persists until the page is rewritten or its read repairs it.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Decides the fate of one read / write transfer of `page`. Each call
  // advances the RNG by the number of attempts, plus — per completed
  // write — one draw per enabled post-write fault kind (tear, bit-flip,
  // decay, dead page; disabled kinds draw nothing, so adding a knob at
  // probability zero leaves existing fault streams untouched).
  FaultOutcome OnRead(PageId page);
  FaultOutcome OnWrite(PageId page);

  const FaultPlan& plan() const { return plan_; }
  size_t torn_page_count() const { return torn_.size(); }
  size_t corrupt_page_count() const { return corrupt_.size(); }
  size_t decaying_page_count() const { return decaying_.size(); }
  size_t dead_page_count() const { return dead_pages_.size(); }
  size_t dead_partition_count() const { return dead_partitions_.size(); }
  bool page_dead(PageId page) const {
    return dead_partitions_.count(page.partition) != 0 ||
           dead_pages_.count(page) != 0;
  }
  bool partition_dead(PartitionId p) const {
    return dead_partitions_.count(p) != 0;
  }

  // Repair hooks: clear all health state for one page / every page of a
  // partition (models rewriting from the primary copy plus remapping dead
  // locations to spare sectors or a replacement device).
  void HealPage(PageId page);
  void HealPartition(PartitionId p);
  // Pages at index >= first_page of `p` were physically discarded (the
  // partition shrank); their content no longer exists, so pending tears,
  // corruption and decay schedules for them are moot. Dead locations stay
  // dead — a device fault outlives the data.
  void ForgetTail(PartitionId p, uint32_t first_page);

  // Checkpoint hooks: RNG stream position and the per-page health state
  // (the plan itself is configuration and travels with SimConfig).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  // Runs the retry loop for one transfer with per-attempt failure
  // probability `prob`.
  FaultOutcome Attempt(double prob);

  FaultPlan plan_;
  Rng rng_;
  std::unordered_set<PageId, PageIdHash> torn_;
  // Pages whose stored image fails its checksum (detected on next read).
  std::unordered_set<PageId, PageIdHash> corrupt_;
  // Weak sectors: page -> transfer count at which the image rots.
  std::unordered_map<PageId, uint64_t, PageIdHash> decaying_;
  std::unordered_set<PageId, PageIdHash> dead_pages_;
  std::unordered_set<PartitionId> dead_partitions_;
  uint64_t transfers_ = 0;  // physical transfers seen (decay clock)
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_FAULT_INJECTOR_H_
