#ifndef ODBGC_STORAGE_FAULT_INJECTOR_H_
#define ODBGC_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <unordered_set>

#include "storage/types.h"
#include "util/random.h"
#include "util/snapshot.h"

namespace odbgc {

// Named points inside one partition collection at which an injected
// crash can interrupt the collector (see gc/collector.h for the commit
// protocol these bracket).
enum class CrashPoint : uint8_t {
  kNone = 0,
  // To-space copy written, commit record NOT yet durable. Recovery must
  // roll the collection back; from-space stays authoritative.
  kAfterCopy = 1,
  // Commit record durable, forwarding flip not yet applied. Recovery must
  // roll forward past the commit point.
  kBeforeFlip = 2,
  // Flip applied, remembered-set (external pointer) updates interrupted
  // midway. Recovery must redo the updates from the commit record.
  kMidRememberedSet = 3,
};

const char* CrashPointName(CrashPoint p);

// Deterministic fault schedule for one run. Part of the run's
// configuration, so identical seed + identical plan reproduces the exact
// same fault sequence (at any --threads; runner.h's ApplyRunSeeds mixes
// the per-run seed in). All knobs default to "no faults": a default plan
// leaves behavior and output byte-identical to a build without it.
struct FaultPlan {
  // Mixed with the run seed by ApplyRunSeeds; used raw when a store is
  // constructed directly (unit fixtures).
  uint64_t seed = 0;

  // Per-attempt probability that a page read / write transfer fails
  // transiently. A failed attempt is retried (with backoff) up to
  // max_retries times; if every attempt fails the error is permanent.
  double read_fault_prob = 0.0;
  double write_fault_prob = 0.0;
  // Probability that a completed write leaves the page torn. A torn page
  // is detected on its next read and repaired by a rewrite.
  double torn_write_prob = 0.0;
  uint32_t max_retries = 3;
  // Base backoff charged to the disk-time model before the first retry;
  // doubles per subsequent retry. Ignored unless disk timing is enabled.
  double retry_backoff_ms = 0.5;

  // Single-shot crash schedule: the crash_at_collection-th call of
  // Collector::Collect (1-based) stops at crash_point; the simulation
  // then runs recovery. kNone disables.
  CrashPoint crash_point = CrashPoint::kNone;
  uint64_t crash_at_collection = 0;
  // Whole-process crash schedule: kill the simulation after the Nth
  // applied trace event (1-based; 0 disables). Unlike crash_point this
  // models losing the process anywhere, not just inside a collection;
  // the run aborts with SimCrashInjected and is expected to be resumed
  // from its last checkpoint (sim/checkpoint.h).
  uint64_t crash_at_event = 0;
  // Run the durable commit protocol (to-space flush + commit-record
  // write-through) on every collection, not only the crashed one. Costs
  // extra GC writes; required for crash consistency in faulted runs.
  bool commit_protocol = false;

  bool io_faults_enabled() const {
    return read_fault_prob > 0.0 || write_fault_prob > 0.0 ||
           torn_write_prob > 0.0;
  }
  bool enabled() const {
    return io_faults_enabled() || crash_point != CrashPoint::kNone ||
           commit_protocol || crash_at_event != 0;
  }
};

// Outcome of injecting faults into one physical page transfer.
struct FaultOutcome {
  uint32_t retries = 0;      // failed attempts that were retried
  bool permanent = false;    // every attempt failed
  bool torn = false;         // write completed but left the page torn
  bool repaired_tear = false;  // read detected a torn page (rewrite due)
};

// Deterministic fault source for the buffer pool's physical transfers.
// One injector per ObjectStore: its RNG stream is consumed in transfer
// order, which is itself deterministic per run, so a (plan, seed) pair
// fully determines every fault. Tracks the set of currently-torn pages:
// a tear persists until the page is rewritten or its read repairs it.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Decides the fate of one read / write transfer of `page`. Each call
  // advances the RNG by the number of attempts (plus one draw per
  // completed write for the tear decision).
  FaultOutcome OnRead(PageId page);
  FaultOutcome OnWrite(PageId page);

  const FaultPlan& plan() const { return plan_; }
  size_t torn_page_count() const { return torn_.size(); }

  // Checkpoint hooks: RNG stream position and the torn-page set (the
  // plan itself is configuration and travels with SimConfig).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  // Runs the retry loop for one transfer with per-attempt failure
  // probability `prob`.
  FaultOutcome Attempt(double prob);

  FaultPlan plan_;
  Rng rng_;
  std::unordered_set<PageId, PageIdHash> torn_;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_FAULT_INJECTOR_H_
