#include "storage/verifier.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "storage/reachability.h"

namespace odbgc {
namespace {

// Collects violations with a cap on the rendered strings.
class ViolationSink {
 public:
  ViolationSink(VerifierReport* report, size_t max) : report_(report),
                                                      max_(max) {}

  __attribute__((format(printf, 2, 3)))
  void Add(const char* fmt, ...) {
    ++report_->violation_count;
    if (report_->violations.size() >= max_) return;
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    report_->violations.emplace_back(buf);
  }

 private:
  VerifierReport* report_;
  size_t max_;
};

}  // namespace

std::string VerifierReport::Summary() const {
  if (ok()) return "clean";
  std::string s = std::to_string(violation_count) + " violation(s):";
  for (const std::string& v : violations) {
    s += " [" + v + "]";
  }
  if (violation_count > violations.size()) s += " ...";
  return s;
}

VerifierReport VerifyHeap(const ObjectStore& store,
                          const VerifierOptions& options) {
  VerifierReport report;
  ViolationSink sink(&report, options.max_violations);

  // 1 & 2. Partition layout + object/partition agreement. Membership
  // counts double as the "appears exactly once" check below.
  std::unordered_map<ObjectId, uint32_t> listed;
  for (const Partition& part : store.partitions()) {
    ++report.partitions_checked;
    if (part.used() > part.capacity()) {
      sink.Add("partition %u used %u > capacity %u", part.id(), part.used(),
               part.capacity());
    }
    uint64_t packed = 0;  // running offset of contiguous packing
    for (ObjectId id : part.objects()) {
      ++listed[id];
      if (!store.Exists(id)) {
        sink.Add("partition %u lists destroyed object %u", part.id(), id);
        continue;
      }
      const ObjectRecord& rec = store.object(id);
      if (rec.partition != part.id()) {
        sink.Add("object %u listed in partition %u but records %u", id,
                 part.id(), rec.partition);
        continue;
      }
      if (rec.offset != packed) {
        sink.Add("object %u at offset %u, expected %" PRIu64
                 " (stale from-space position)",
                 id, rec.offset, packed);
      }
      packed += rec.size;
    }
    if (packed != part.used()) {
      sink.Add("partition %u used %u != resident bytes %" PRIu64, part.id(),
               part.used(), packed);
    }
    if (store.indexed_free_bytes(part.id()) != part.free_bytes()) {
      sink.Add("partition %u free-space index %u != free bytes %u", part.id(),
               store.indexed_free_bytes(part.id()), part.free_bytes());
    }
  }

  // 2..4. Per-object checks and the forward half of the remembered-set
  // comparison: count (src -> target) reference edges from the slots.
  std::unordered_map<uint64_t, int64_t> edges;  // (src<<32|target) -> count
  auto edge_key = [](ObjectId src, ObjectId target) {
    return (static_cast<uint64_t>(src) << 32) | target;
  };
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    ++report.objects_checked;
    const ObjectRecord& rec = store.object(id);
    if (rec.size == 0) sink.Add("object %u has zero size", id);
    if (rec.partition >= store.partition_count()) {
      sink.Add("object %u in invalid partition %u", id, rec.partition);
    } else {
      uint32_t times = 0;
      auto it = listed.find(id);
      if (it != listed.end()) times = it->second;
      if (times != 1) {
        sink.Add("object %u listed %u times by its partition", id, times);
      }
      if (rec.offset + static_cast<uint64_t>(rec.size) >
          store.partition(rec.partition).capacity()) {
        sink.Add("object %u overruns partition %u", id, rec.partition);
      }
    }
    for (ObjectId target : rec.slots) {
      ++report.slots_checked;
      if (target == kNullObject) continue;
      if (!store.Exists(target)) {
        sink.Add("object %u slot points at destroyed object %u", id, target);
        continue;
      }
      ++edges[edge_key(id, target)];
    }
  }
  // Reverse half: every in_refs entry must consume exactly one forward
  // edge; leftovers in either direction are remembered-set corruption.
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    for (ObjectId src : store.object(id).in_refs) {
      if (!store.Exists(src)) {
        sink.Add("object %u in_refs names destroyed object %u", id, src);
        continue;
      }
      if (--edges[edge_key(src, id)] < 0) {
        sink.Add("stale in_refs entry %u -> %u (no matching slot)", src, id);
      }
    }
  }
  for (const auto& [key, count] : edges) {
    if (count > 0) {
      sink.Add("missing in_refs entry %u -> %u (x%" PRId64 ")",
               static_cast<ObjectId>(key >> 32),
               static_cast<ObjectId>(key & 0xffffffffu), count);
    }
  }

  // 4b. O(1)-maintenance indices: parallel-array sizes, slot back-pointers
  // (each non-null slot's backref must address its own entry in the
  // target's in_refs), and the cross-partition in-ref counters the
  // collector's root discovery depends on. All indexing is guarded so a
  // desynced size is reported, not crashed on.
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    const ObjectRecord& rec = store.object(id);
    if (rec.in_ref_slots.size() != rec.in_refs.size()) {
      sink.Add("object %u in_ref_slots size %zu != in_refs size %zu", id,
               rec.in_ref_slots.size(), rec.in_refs.size());
    }
    if (rec.slot_backrefs.size() != rec.slots.size()) {
      sink.Add("object %u slot_backrefs size %zu != slots size %zu", id,
               rec.slot_backrefs.size(), rec.slots.size());
    }
    const size_t slot_n = rec.slots.size() < rec.slot_backrefs.size()
                              ? rec.slots.size()
                              : rec.slot_backrefs.size();
    for (size_t j = 0; j < slot_n; ++j) {
      const ObjectId target = rec.slots[j];
      if (target == kNullObject || !store.Exists(target)) continue;
      const ObjectRecord& t = store.object(target);
      const uint32_t b = rec.slot_backrefs[j];
      if (b >= t.in_refs.size() || b >= t.in_ref_slots.size() ||
          t.in_refs[b] != id || t.in_ref_slots[b] != j) {
        sink.Add("object %u slot %zu backref %u does not index its entry in "
                 "target %u",
                 id, j, b, target);
      }
    }
    uint32_t xpart = 0;
    for (ObjectId src : rec.in_refs) {
      if (!store.Exists(src)) continue;
      if (store.object(src).partition != rec.partition) ++xpart;
    }
    if (xpart != rec.xpart_in_refs) {
      sink.Add("object %u xpart_in_refs %u != recount %u", id,
               rec.xpart_in_refs, xpart);
    }
  }

  // 5. Roots.
  for (ObjectId root : store.roots()) {
    if (!store.Exists(root)) sink.Add("root %u does not exist", root);
  }

  // 6. Ground-truth reachability agreement.
  if (options.check_reachability_agreement) {
    ReachabilityResult scan = ScanReachability(store);
    if (scan.unreachable_bytes != store.actual_garbage_bytes()) {
      sink.Add("scanner finds %" PRIu64
               " unreachable bytes, markers claim %" PRIu64,
               scan.unreachable_bytes, store.actual_garbage_bytes());
    }
  }

  return report;
}

}  // namespace odbgc
