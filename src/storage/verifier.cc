#include "storage/verifier.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "storage/reachability.h"

namespace odbgc {
namespace {

// Collects violations with a cap on the rendered strings.
class ViolationSink {
 public:
  ViolationSink(VerifierReport* report, size_t max) : report_(report),
                                                      max_(max) {}

  __attribute__((format(printf, 2, 3)))
  void Add(const char* fmt, ...) {
    ++report_->violation_count;
    if (report_->violations.size() >= max_) return;
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    report_->violations.emplace_back(buf);
  }

 private:
  VerifierReport* report_;
  size_t max_;
};

}  // namespace

std::string VerifierReport::Summary() const {
  if (ok()) return "clean";
  std::string s = std::to_string(violation_count) + " violation(s):";
  for (const std::string& v : violations) {
    s += " [" + v + "]";
  }
  if (violation_count > violations.size()) s += " ...";
  return s;
}

VerifierReport VerifyHeap(const ObjectStore& store,
                          const VerifierOptions& options) {
  VerifierReport report;
  ViolationSink sink(&report, options.max_violations);

  // 1 & 2. Partition layout + object/partition agreement. Membership
  // counts double as the "appears exactly once" check below.
  std::unordered_map<ObjectId, uint32_t> listed;
  for (const Partition& part : store.partitions()) {
    ++report.partitions_checked;
    if (part.used() > part.capacity()) {
      sink.Add("partition %u used %u > capacity %u", part.id(), part.used(),
               part.capacity());
    }
    uint64_t packed = 0;  // running offset of contiguous packing
    for (ObjectId id : part.objects()) {
      ++listed[id];
      if (!store.Exists(id)) {
        sink.Add("partition %u lists destroyed object %u", part.id(), id);
        continue;
      }
      const ObjectRecord& rec = store.object(id);
      if (rec.partition != part.id()) {
        sink.Add("object %u listed in partition %u but records %u", id,
                 part.id(), rec.partition);
        continue;
      }
      if (rec.offset != packed) {
        sink.Add("object %u at offset %u, expected %" PRIu64
                 " (stale from-space position)",
                 id, rec.offset, packed);
      }
      packed += rec.size;
    }
    if (packed != part.used()) {
      sink.Add("partition %u used %u != resident bytes %" PRIu64, part.id(),
               part.used(), packed);
    }
  }

  // 2..4. Per-object checks and the forward half of the remembered-set
  // comparison: count (src -> target) reference edges from the slots.
  std::unordered_map<uint64_t, int64_t> edges;  // (src<<32|target) -> count
  auto edge_key = [](ObjectId src, ObjectId target) {
    return (static_cast<uint64_t>(src) << 32) | target;
  };
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    ++report.objects_checked;
    const ObjectRecord& rec = store.object(id);
    if (rec.size == 0) sink.Add("object %u has zero size", id);
    if (rec.partition >= store.partition_count()) {
      sink.Add("object %u in invalid partition %u", id, rec.partition);
    } else {
      uint32_t times = 0;
      auto it = listed.find(id);
      if (it != listed.end()) times = it->second;
      if (times != 1) {
        sink.Add("object %u listed %u times by its partition", id, times);
      }
      if (rec.offset + static_cast<uint64_t>(rec.size) >
          store.partition(rec.partition).capacity()) {
        sink.Add("object %u overruns partition %u", id, rec.partition);
      }
    }
    for (ObjectId target : rec.slots) {
      ++report.slots_checked;
      if (target == kNullObject) continue;
      if (!store.Exists(target)) {
        sink.Add("object %u slot points at destroyed object %u", id, target);
        continue;
      }
      ++edges[edge_key(id, target)];
    }
  }
  // Reverse half: every in_refs entry must consume exactly one forward
  // edge; leftovers in either direction are remembered-set corruption.
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    for (ObjectId src : store.object(id).in_refs) {
      if (!store.Exists(src)) {
        sink.Add("object %u in_refs names destroyed object %u", id, src);
        continue;
      }
      if (--edges[edge_key(src, id)] < 0) {
        sink.Add("stale in_refs entry %u -> %u (no matching slot)", src, id);
      }
    }
  }
  for (const auto& [key, count] : edges) {
    if (count > 0) {
      sink.Add("missing in_refs entry %u -> %u (x%" PRId64 ")",
               static_cast<ObjectId>(key >> 32),
               static_cast<ObjectId>(key & 0xffffffffu), count);
    }
  }

  // 5. Roots.
  for (ObjectId root : store.roots()) {
    if (!store.Exists(root)) sink.Add("root %u does not exist", root);
  }

  // 6. Ground-truth reachability agreement.
  if (options.check_reachability_agreement) {
    ReachabilityResult scan = ScanReachability(store);
    if (scan.unreachable_bytes != store.actual_garbage_bytes()) {
      sink.Add("scanner finds %" PRIu64
               " unreachable bytes, markers claim %" PRIu64,
               scan.unreachable_bytes, store.actual_garbage_bytes());
    }
  }

  return report;
}

}  // namespace odbgc
