#include "storage/verifier.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "storage/reachability.h"

namespace odbgc {
namespace {

// Collects violations with a cap on the rendered strings.
class ViolationSink {
 public:
  ViolationSink(VerifierReport* report, size_t max) : report_(report),
                                                      max_(max) {}

  __attribute__((format(printf, 2, 3)))
  void Add(const char* fmt, ...) {
    ++report_->violation_count;
    if (report_->violations.size() >= max_) return;
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    report_->violations.emplace_back(buf);
  }

 private:
  VerifierReport* report_;
  size_t max_;
};

}  // namespace

std::string VerifierReport::Summary() const {
  if (ok()) return "clean";
  std::string s = std::to_string(violation_count) + " violation(s):";
  for (const std::string& v : violations) {
    s += " [" + v + "]";
  }
  if (violation_count > violations.size()) s += " ...";
  return s;
}

VerifierReport VerifyHeap(const ObjectStore& store,
                          const VerifierOptions& options) {
  VerifierReport report;
  ViolationSink sink(&report, options.max_violations);

  // 1 & 2. Partition layout + object/partition agreement. Membership
  // counts double as the "appears exactly once" check below.
  std::unordered_map<ObjectId, uint32_t> listed;
  for (const Partition& part : store.partitions()) {
    ++report.partitions_checked;
    if (part.used() > part.capacity()) {
      sink.Add("partition %u used %u > capacity %u", part.id(), part.used(),
               part.capacity());
    }
    uint64_t packed = 0;  // running offset of contiguous packing
    for (ObjectId id : part.objects()) {
      ++listed[id];
      if (!store.Exists(id)) {
        sink.Add("partition %u lists destroyed object %u", part.id(), id);
        continue;
      }
      const ObjectRecord& rec = store.object(id);
      if (rec.partition != part.id()) {
        sink.Add("object %u listed in partition %u but records %u", id,
                 part.id(), rec.partition);
        continue;
      }
      if (rec.offset != packed) {
        sink.Add("object %u at offset %u, expected %" PRIu64
                 " (stale from-space position)",
                 id, rec.offset, packed);
      }
      packed += rec.size;
    }
    if (packed != part.used()) {
      sink.Add("partition %u used %u != resident bytes %" PRIu64, part.id(),
               part.used(), packed);
    }
    // A quarantined partition is deliberately reported full by the
    // allocation index; skip the agreement check until repair releases it.
    if (!store.IsQuarantined(part.id()) &&
        store.indexed_free_bytes(part.id()) != part.free_bytes()) {
      sink.Add("partition %u free-space index %u != free bytes %u", part.id(),
               store.indexed_free_bytes(part.id()), part.free_bytes());
    }
  }

  // 2..4. Per-object checks and the forward half of the remembered-set
  // comparison: count (src -> target) reference edges from the slots.
  std::unordered_map<uint64_t, int64_t> edges;  // (src<<32|target) -> count
  auto edge_key = [](ObjectId src, ObjectId target) {
    return (static_cast<uint64_t>(src) << 32) | target;
  };
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    ++report.objects_checked;
    const ObjectRecord& rec = store.object(id);
    if (rec.size == 0) sink.Add("object %u has zero size", id);
    if (rec.partition >= store.partition_count()) {
      sink.Add("object %u in invalid partition %u", id, rec.partition);
    } else {
      uint32_t times = 0;
      auto it = listed.find(id);
      if (it != listed.end()) times = it->second;
      if (times != 1) {
        sink.Add("object %u listed %u times by its partition", id, times);
      }
      if (rec.offset + static_cast<uint64_t>(rec.size) >
          store.partition(rec.partition).capacity()) {
        sink.Add("object %u overruns partition %u", id, rec.partition);
      }
    }
    for (const Slot& sl : store.slots(id)) {
      const ObjectId target = sl.target;
      ++report.slots_checked;
      if (target == kNullObject) continue;
      if (!store.Exists(target)) {
        sink.Add("object %u slot points at destroyed object %u", id, target);
        continue;
      }
      ++edges[edge_key(id, target)];
    }
  }
  // Reverse half: every in_refs entry must consume exactly one forward
  // edge; leftovers in either direction are remembered-set corruption.
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    for (const InRef& ir : store.in_refs(id)) {
      if (!store.Exists(ir.src)) {
        sink.Add("object %u in_refs names destroyed object %u", id, ir.src);
        continue;
      }
      if (--edges[edge_key(ir.src, id)] < 0) {
        sink.Add("stale in_refs entry %u -> %u (no matching slot)", ir.src,
                 id);
      }
    }
  }
  for (const auto& [key, count] : edges) {
    if (count > 0) {
      sink.Add("missing in_refs entry %u -> %u (x%" PRId64 ")",
               static_cast<ObjectId>(key >> 32),
               static_cast<ObjectId>(key & 0xffffffffu), count);
    }
  }

  // 4b. O(1)-maintenance indices: slot back-pointers (each non-null
  // slot's backref must address its own entry in the target's in-ref
  // list) and the cross-partition in-ref counters the collector's root
  // discovery depends on. The historical parallel-array size checks are
  // structural now: the slot arenas share one range per object, and each
  // in-ref entry carries its own source slot. All indexing is guarded so
  // a desynced index is reported, not crashed on.
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    const ObjectRecord& rec = store.object(id);
    const std::span<const Slot> slots = store.slots(id);
    for (size_t j = 0; j < slots.size(); ++j) {
      const ObjectId target = slots[j].target;
      if (target == kNullObject || !store.Exists(target)) continue;
      const std::vector<InRef>& tin = store.in_refs(target);
      const uint32_t b = slots[j].backref;
      if (b >= tin.size() || tin[b].src != id ||
          tin[b].backref_pos != rec.slot_begin + j) {
        // Partition ids lead the message so quarantine decisions can be
        // targeted straight from the summary.
        sink.Add("partition %u object %u slot %zu backref %u does not index "
                 "its entry in target %u (partition %u)",
                 rec.partition, id, j, b, target,
                 store.object(target).partition);
      }
    }
    uint32_t xpart = 0;
    for (const InRef& ir : store.in_refs(id)) {
      if (!store.Exists(ir.src)) continue;
      if (store.object(ir.src).partition != rec.partition) ++xpart;
    }
    if (xpart != rec.xpart_in_refs) {
      sink.Add("partition %u object %u xpart_in_refs %u != recount %u",
               rec.partition, id, rec.xpart_in_refs, xpart);
    }
  }

  // 5. Roots.
  for (ObjectId root : store.roots()) {
    if (!store.Exists(root)) sink.Add("root %u does not exist", root);
  }

  // 5b. External pins: sorted, positive counts, live targets. A pin on a
  // destroyed object means a remote referencer outlived its target — the
  // exchange protocol failed to revoke.
  {
    const auto& pins = store.external_pins();
    for (size_t i = 0; i < pins.size(); ++i) {
      if (i > 0 && pins[i].first <= pins[i - 1].first) {
        sink.Add("external pins out of order at entry %zu", i);
      }
      if (pins[i].second == 0) {
        sink.Add("external pin on object %u has zero count", pins[i].first);
      }
      if (!store.Exists(pins[i].first)) {
        sink.Add("externally pinned object %u does not exist",
                 pins[i].first);
      }
    }
  }

  // 6. Ground-truth reachability agreement.
  if (options.check_reachability_agreement) {
    ReachabilityResult scan = ScanReachability(store);
    if (scan.unreachable_bytes != store.actual_garbage_bytes()) {
      sink.Add("scanner finds %" PRIu64
               " unreachable bytes, markers claim %" PRIu64,
               scan.unreachable_bytes, store.actual_garbage_bytes());
    }
  }

  return report;
}

VerifierReport VerifyPartition(const ObjectStore& store, PartitionId pid,
                               const VerifierOptions& options) {
  VerifierReport report;
  ViolationSink sink(&report, options.max_violations);
  if (pid >= store.partition_count()) {
    sink.Add("partition %u does not exist (%zu partitions)", pid,
             store.partition_count());
    return report;
  }
  const Partition& part = store.partition(pid);
  ++report.partitions_checked;

  // Layout + packing (check 1), per-resident record agreement, slot
  // validity and 4b index consistency — the partition-attributable
  // subset of VerifyHeap.
  if (part.used() > part.capacity()) {
    sink.Add("partition %u used %u > capacity %u", pid, part.used(),
             part.capacity());
  }
  uint64_t packed = 0;
  for (ObjectId id : part.objects()) {
    if (!store.Exists(id)) {
      sink.Add("partition %u lists destroyed object %u", pid, id);
      continue;
    }
    ++report.objects_checked;
    const ObjectRecord& rec = store.object(id);
    if (rec.partition != pid) {
      sink.Add("object %u listed in partition %u but records %u", id, pid,
               rec.partition);
      continue;
    }
    if (rec.size == 0) sink.Add("object %u has zero size", id);
    if (rec.offset != packed) {
      sink.Add("object %u at offset %u, expected %" PRIu64
               " (stale from-space position)",
               id, rec.offset, packed);
    }
    packed += rec.size;
    if (rec.offset + static_cast<uint64_t>(rec.size) > part.capacity()) {
      sink.Add("object %u overruns partition %u", id, pid);
    }
    const std::span<const Slot> slots = store.slots(id);
    for (size_t j = 0; j < slots.size(); ++j) {
      const ObjectId target = slots[j].target;
      ++report.slots_checked;
      if (target == kNullObject) continue;
      if (!store.Exists(target)) {
        sink.Add("object %u slot points at destroyed object %u", id, target);
        continue;
      }
      const std::vector<InRef>& tin = store.in_refs(target);
      const uint32_t b = slots[j].backref;
      if (b >= tin.size() || tin[b].src != id ||
          tin[b].backref_pos != rec.slot_begin + j) {
        sink.Add("partition %u object %u slot %zu backref %u does not index "
                 "its entry in target %u (partition %u)",
                 pid, id, j, b, target, store.object(target).partition);
      }
    }
    uint32_t xpart = 0;
    for (const InRef& ir : store.in_refs(id)) {
      if (!store.Exists(ir.src)) {
        sink.Add("object %u in_refs names destroyed object %u", id, ir.src);
        continue;
      }
      if (store.object(ir.src).partition != pid) ++xpart;
    }
    if (xpart != rec.xpart_in_refs) {
      sink.Add("partition %u object %u xpart_in_refs %u != recount %u", pid,
               id, rec.xpart_in_refs, xpart);
    }
  }
  if (packed != part.used()) {
    sink.Add("partition %u used %u != resident bytes %" PRIu64, pid,
             part.used(), packed);
  }
  // A quarantined partition is deliberately reported full by the index;
  // only a healthy partition's entry must agree with its free bytes.
  if (!store.IsQuarantined(pid) &&
      store.indexed_free_bytes(pid) != part.free_bytes()) {
    sink.Add("partition %u free-space index %u != free bytes %u", pid,
             store.indexed_free_bytes(pid), part.free_bytes());
  }
  return report;
}

RepairReport RepairHeap(ObjectStore& store) {
  RepairReport report;
  store.RebuildDerivedState();
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    ++report.objects_rebuilt;
    report.in_refs_rebuilt += store.in_refs(id).size();
  }
  report.partitions_reindexed = store.partition_count();
  return report;
}

}  // namespace odbgc
