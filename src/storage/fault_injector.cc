#include "storage/fault_injector.h"

#include <algorithm>
#include <vector>

namespace odbgc {

const char* CrashPointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kAfterCopy:
      return "after-copy";
    case CrashPoint::kBeforeFlip:
      return "before-flip";
    case CrashPoint::kMidRememberedSet:
      return "mid-remembered-set";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed)
    : plan_(plan), rng_(seed) {}

FaultOutcome FaultInjector::Attempt(double prob) {
  FaultOutcome o;
  if (prob <= 0.0) return o;
  for (uint32_t attempt = 0; attempt <= plan_.max_retries; ++attempt) {
    if (!rng_.NextBool(prob)) return o;  // this attempt succeeded
    if (attempt == plan_.max_retries) {
      o.permanent = true;  // retries exhausted
    } else {
      ++o.retries;
    }
  }
  return o;
}

FaultOutcome FaultInjector::OnRead(PageId page) {
  FaultOutcome o = Attempt(plan_.read_fault_prob);
  if (!o.permanent) {
    auto it = torn_.find(page);
    if (it != torn_.end()) {
      // The read detects the tear (checksum mismatch); the caller must
      // rewrite the page from redundancy.
      o.repaired_tear = true;
      torn_.erase(it);
    }
  }
  return o;
}

void FaultInjector::SaveState(SnapshotWriter& w) const {
  for (uint64_t s : rng_.state()) w.U64(s);
  // The torn set is unordered in memory; serialize sorted so the bytes
  // (and the payload CRC) are stable across runs.
  std::vector<PageId> torn(torn_.begin(), torn_.end());
  std::sort(torn.begin(), torn.end(), [](const PageId& a, const PageId& b) {
    return a.partition != b.partition ? a.partition < b.partition
                                      : a.page_index < b.page_index;
  });
  w.U64(torn.size());
  for (const PageId& p : torn) {
    w.U32(p.partition);
    w.U32(p.page_index);
  }
}

void FaultInjector::RestoreState(SnapshotReader& r) {
  std::array<uint64_t, 4> s;
  for (uint64_t& x : s) x = r.U64();
  rng_.set_state(s);
  torn_.clear();
  uint64_t n = r.U64();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    PageId p{r.U32(), r.U32()};
    torn_.insert(p);
  }
}

FaultOutcome FaultInjector::OnWrite(PageId page) {
  FaultOutcome o = Attempt(plan_.write_fault_prob);
  if (o.permanent) return o;  // nothing reached the platter
  if (plan_.torn_write_prob > 0.0 && rng_.NextBool(plan_.torn_write_prob)) {
    o.torn = true;
    torn_.insert(page);
  } else {
    // A clean rewrite replaces any earlier torn image of the page.
    torn_.erase(page);
  }
  return o;
}

}  // namespace odbgc
