#include "storage/fault_injector.h"

#include <algorithm>
#include <vector>

namespace odbgc {

const char* CrashPointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kAfterCopy:
      return "after-copy";
    case CrashPoint::kBeforeFlip:
      return "before-flip";
    case CrashPoint::kMidRememberedSet:
      return "mid-remembered-set";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed)
    : plan_(plan), rng_(seed) {}

FaultOutcome FaultInjector::Attempt(double prob) {
  FaultOutcome o;
  if (prob <= 0.0) return o;
  for (uint32_t attempt = 0; attempt <= plan_.max_retries; ++attempt) {
    if (!rng_.NextBool(prob)) return o;  // this attempt succeeded
    if (attempt == plan_.max_retries) {
      o.permanent = true;  // retries exhausted
    } else {
      ++o.retries;
    }
  }
  return o;
}

FaultOutcome FaultInjector::OnRead(PageId page) {
  ++transfers_;
  if (page_dead(page)) {
    FaultOutcome o;
    o.dead = true;
    return o;
  }
  FaultOutcome o = Attempt(plan_.read_fault_prob);
  if (!o.permanent) {
    auto it = torn_.find(page);
    if (it != torn_.end()) {
      // The read detects the tear (checksum mismatch); the caller must
      // rewrite the page from redundancy.
      o.repaired_tear = true;
      torn_.erase(it);
    }
    // Weak sectors rot on their own clock: the decay becomes a real
    // checksum mismatch once enough transfers have passed.
    auto decay = decaying_.find(page);
    if (decay != decaying_.end() && decay->second <= transfers_) {
      corrupt_.insert(page);
      decaying_.erase(decay);
    }
    if (corrupt_.count(page) != 0) {
      // Checksum mismatch: the page image is garbage. Unlike a tear
      // there is no in-page redundancy to rewrite from; the page stays
      // corrupt until repair reconstructs it from the primary copy.
      o.corrupt = true;
    }
  }
  return o;
}

namespace {

bool PageIdLess(const PageId& a, const PageId& b) {
  return a.partition != b.partition ? a.partition < b.partition
                                    : a.page_index < b.page_index;
}

// The page-health sets are unordered in memory; serialize sorted so the
// bytes (and the payload CRC) are stable across runs.
void SavePageSet(SnapshotWriter& w,
                 const std::unordered_set<PageId, PageIdHash>& set) {
  std::vector<PageId> pages(set.begin(), set.end());
  std::sort(pages.begin(), pages.end(), PageIdLess);
  w.U64(pages.size());
  for (const PageId& p : pages) {
    w.U32(p.partition);
    w.U32(p.page_index);
  }
}

void LoadPageSet(SnapshotReader& r,
                 std::unordered_set<PageId, PageIdHash>* set) {
  set->clear();
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    PageId p{r.U32(), r.U32()};
    set->insert(p);
  }
}

}  // namespace

void FaultInjector::SaveState(SnapshotWriter& w) const {
  for (uint64_t s : rng_.state()) w.U64(s);
  SavePageSet(w, torn_);
  w.U64(transfers_);
  SavePageSet(w, corrupt_);
  std::vector<std::pair<PageId, uint64_t>> decaying(decaying_.begin(),
                                                    decaying_.end());
  std::sort(decaying.begin(), decaying.end(),
            [](const auto& a, const auto& b) {
              return PageIdLess(a.first, b.first);
            });
  w.U64(decaying.size());
  for (const auto& [page, due] : decaying) {
    w.U32(page.partition);
    w.U32(page.page_index);
    w.U64(due);
  }
  SavePageSet(w, dead_pages_);
  std::vector<PartitionId> dead_parts(dead_partitions_.begin(),
                                      dead_partitions_.end());
  std::sort(dead_parts.begin(), dead_parts.end());
  w.U64(dead_parts.size());
  for (PartitionId p : dead_parts) w.U32(p);
}

void FaultInjector::RestoreState(SnapshotReader& r) {
  std::array<uint64_t, 4> s;
  for (uint64_t& x : s) x = r.U64();
  rng_.set_state(s);
  LoadPageSet(r, &torn_);
  transfers_ = r.U64();
  LoadPageSet(r, &corrupt_);
  decaying_.clear();
  const uint64_t decay_count = r.U64();
  for (uint64_t i = 0; i < decay_count && r.ok(); ++i) {
    PageId p{r.U32(), r.U32()};
    decaying_[p] = r.U64();
  }
  LoadPageSet(r, &dead_pages_);
  dead_partitions_.clear();
  const uint64_t dead_part_count = r.U64();
  for (uint64_t i = 0; i < dead_part_count && r.ok(); ++i) {
    dead_partitions_.insert(r.U32());
  }
}

FaultOutcome FaultInjector::OnWrite(PageId page) {
  ++transfers_;
  if (page_dead(page)) {
    FaultOutcome o;
    o.dead = true;
    return o;
  }
  FaultOutcome o = Attempt(plan_.write_fault_prob);
  if (o.permanent) return o;  // nothing reached the platter
  if (plan_.torn_write_prob > 0.0 && rng_.NextBool(plan_.torn_write_prob)) {
    o.torn = true;
    torn_.insert(page);
  } else {
    // A clean rewrite replaces any earlier torn image of the page.
    torn_.erase(page);
  }
  // A completed write lays down a fresh image, superseding any earlier
  // corruption or pending decay of the old one...
  corrupt_.erase(page);
  decaying_.erase(page);
  // ...and then rolls its own dice. Draw order is fixed (bit-flip, decay,
  // dead page, dead partition) and every draw is gated on its knob so
  // zero-probability kinds consume no randomness.
  if (plan_.bitflip_prob > 0.0 && rng_.NextBool(plan_.bitflip_prob)) {
    o.bitflipped = true;
    corrupt_.insert(page);
  }
  if (plan_.decay_prob > 0.0 && rng_.NextBool(plan_.decay_prob)) {
    o.decay_armed = true;
    decaying_[page] = transfers_ + plan_.decay_latency;
  }
  if (plan_.dead_page_prob > 0.0 && rng_.NextBool(plan_.dead_page_prob)) {
    // The location failed as the write landed: the write is lost and the
    // page (possibly the whole partition's device) is dead from now on.
    o.dead = true;
    dead_pages_.insert(page);
    if (plan_.dead_partition_prob > 0.0 &&
        rng_.NextBool(plan_.dead_partition_prob)) {
      dead_partitions_.insert(page.partition);
    }
  }
  return o;
}

void FaultInjector::HealPage(PageId page) {
  torn_.erase(page);
  corrupt_.erase(page);
  decaying_.erase(page);
  dead_pages_.erase(page);
}

void FaultInjector::HealPartition(PartitionId p) {
  for (auto it = torn_.begin(); it != torn_.end();) {
    it = it->partition == p ? torn_.erase(it) : std::next(it);
  }
  for (auto it = corrupt_.begin(); it != corrupt_.end();) {
    it = it->partition == p ? corrupt_.erase(it) : std::next(it);
  }
  for (auto it = decaying_.begin(); it != decaying_.end();) {
    it = it->first.partition == p ? decaying_.erase(it) : std::next(it);
  }
  for (auto it = dead_pages_.begin(); it != dead_pages_.end();) {
    it = it->partition == p ? dead_pages_.erase(it) : std::next(it);
  }
  dead_partitions_.erase(p);
}

void FaultInjector::ForgetTail(PartitionId p, uint32_t first_page) {
  for (auto it = torn_.begin(); it != torn_.end();) {
    const bool drop = it->partition == p && it->page_index >= first_page &&
                      it->page_index != kMetaPageIndex;
    it = drop ? torn_.erase(it) : std::next(it);
  }
  for (auto it = corrupt_.begin(); it != corrupt_.end();) {
    const bool drop = it->partition == p && it->page_index >= first_page &&
                      it->page_index != kMetaPageIndex;
    it = drop ? corrupt_.erase(it) : std::next(it);
  }
  for (auto it = decaying_.begin(); it != decaying_.end();) {
    const bool drop = it->first.partition == p &&
                      it->first.page_index >= first_page &&
                      it->first.page_index != kMetaPageIndex;
    it = drop ? decaying_.erase(it) : std::next(it);
  }
}

}  // namespace odbgc
