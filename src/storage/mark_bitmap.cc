#include "storage/mark_bitmap.h"

namespace odbgc {

void MarkBitmap::Reset(size_t bits) {
  bits_ = bits;
  const size_t words = (bits + 63) / 64;
  if (words > words_.size()) {
    words_.assign(words, 0);
  } else if (words > 0) {
    std::memset(words_.data(), 0, words * sizeof(uint64_t));
  }
}

uint64_t MarkBitmap::CountSet() const {
  uint64_t n = 0;
  const size_t words = word_count();
  for (size_t wi = 0; wi < words; ++wi) {
    n += static_cast<uint64_t>(std::popcount(words_[wi]));
  }
  return n;
}

}  // namespace odbgc
