#include "storage/free_space_index.h"

#include <algorithm>

#include "util/check.h"

namespace odbgc {

void FreeSpaceIndex::PushPartition(uint32_t free_bytes) {
  if (count_ == leaves_) {
    // Double the leaf span and rebuild (amortized O(1) per push).
    const size_t new_leaves = leaves_ == 0 ? 1 : leaves_ * 2;
    std::vector<uint32_t> grown(2 * new_leaves, 0);
    for (size_t p = 0; p < count_; ++p) {
      grown[new_leaves + p] = tree_[leaves_ + p];
    }
    for (size_t i = new_leaves - 1; i >= 1; --i) {
      grown[i] = std::max(grown[2 * i], grown[2 * i + 1]);
    }
    tree_ = std::move(grown);
    leaves_ = new_leaves;
  }
  const size_t p = count_++;
  Update(static_cast<uint32_t>(p), free_bytes);
}

void FreeSpaceIndex::Update(uint32_t p, uint32_t free_bytes) {
  ODBGC_CHECK(p < count_);
  size_t i = leaves_ + p;
  tree_[i] = free_bytes;
  for (i >>= 1; i >= 1; i >>= 1) {
    const uint32_t top = std::max(tree_[2 * i], tree_[2 * i + 1]);
    if (tree_[i] == top) break;  // ancestors already correct
    tree_[i] = top;
  }
}

uint32_t FreeSpaceIndex::FirstFit(uint32_t size) const {
  if (count_ == 0 || tree_[1] < size) return kNotFound;
  size_t node = 1;
  while (node < leaves_) {
    const size_t left = 2 * node;
    node = tree_[left] >= size ? left : left + 1;
  }
  const size_t p = node - leaves_;
  ODBGC_CHECK(p < count_);  // unused leaves are 0 and size > 0
  return static_cast<uint32_t>(p);
}

}  // namespace odbgc
