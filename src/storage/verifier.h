#ifndef ODBGC_STORAGE_VERIFIER_H_
#define ODBGC_STORAGE_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/object_store.h"

namespace odbgc {

// What the heap verifier checks (see VerifyHeap). The reachability
// agreement check compares the ground-truth garbage markers against a
// full scan; it is only meaningful for marker-driven stores (trace
// replays), so bare fixtures can switch it off.
struct VerifierOptions {
  bool check_reachability_agreement = true;
  // At most this many violations are rendered as strings; the total
  // count is always exact.
  size_t max_violations = 16;
};

// Outcome of one verification pass.
struct VerifierReport {
  uint64_t objects_checked = 0;
  uint64_t slots_checked = 0;
  uint64_t partitions_checked = 0;
  uint64_t violation_count = 0;
  std::vector<std::string> violations;  // first max_violations, rendered

  bool ok() const { return violation_count == 0; }
  // One-line human summary ("clean" or the first violations).
  std::string Summary() const;
};

// Exhaustive heap invariant check, runnable after any recovery and
// (optionally, via SimConfig) after every collection:
//
//  1. Partition layout — every partition's resident list names existing
//     objects of that partition, packed contiguously from offset 0 with
//     used() == sum of sizes. A violation here is the moral equivalent of
//     a leftover forwarding pointer: an object stranded at a stale
//     from-space position after an interrupted relocation.
//  2. Object/partition agreement — every existing object appears in
//     exactly its own partition's list, exactly once.
//  3. Pointer-slot validity — every non-null slot targets an existing
//     object.
//  4. Remembered-set completeness — the reverse index (in_refs) is
//     multiset-exact against the forward slots: no missing entry (a lost
//     external root for a future collection) and no stale entry.
//  4b. O(1)-maintenance index consistency — in_ref_slots / slot_backrefs
//     mirror in_refs / slots entry-for-entry (every non-null slot's
//     back-pointer addresses its own in_refs entry), each object's
//     xpart_in_refs matches a recount, and the allocation free-space
//     index agrees with every partition's actual free bytes.
//  5. Root validity — every root exists.
//  6. Reachability agreement (optional) — a full ground-truth scan finds
//     exactly the garbage the marker accounting claims.
VerifierReport VerifyHeap(const ObjectStore& store,
                          const VerifierOptions& options = {});

}  // namespace odbgc

#endif  // ODBGC_STORAGE_VERIFIER_H_
