#ifndef ODBGC_STORAGE_VERIFIER_H_
#define ODBGC_STORAGE_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/object_store.h"

namespace odbgc {

// What the heap verifier checks (see VerifyHeap). The reachability
// agreement check compares the ground-truth garbage markers against a
// full scan; it is only meaningful for marker-driven stores (trace
// replays), so bare fixtures can switch it off.
struct VerifierOptions {
  bool check_reachability_agreement = true;
  // At most this many violations are rendered as strings; the total
  // count is always exact.
  size_t max_violations = 16;
};

// Outcome of one verification pass.
struct VerifierReport {
  uint64_t objects_checked = 0;
  uint64_t slots_checked = 0;
  uint64_t partitions_checked = 0;
  uint64_t violation_count = 0;
  std::vector<std::string> violations;  // first max_violations, rendered

  bool ok() const { return violation_count == 0; }
  // One-line human summary ("clean" or the first violations).
  std::string Summary() const;
};

// Exhaustive heap invariant check, runnable after any recovery and
// (optionally, via SimConfig) after every collection:
//
//  1. Partition layout — every partition's resident list names existing
//     objects of that partition, packed contiguously from offset 0 with
//     used() == sum of sizes. A violation here is the moral equivalent of
//     a leftover forwarding pointer: an object stranded at a stale
//     from-space position after an interrupted relocation.
//  2. Object/partition agreement — every existing object appears in
//     exactly its own partition's list, exactly once.
//  3. Pointer-slot validity — every non-null slot targets an existing
//     object.
//  4. Remembered-set completeness — the reverse index (in_refs) is
//     multiset-exact against the forward slots: no missing entry (a lost
//     external root for a future collection) and no stale entry.
//  4b. O(1)-maintenance index consistency — in_ref_slots / slot_backrefs
//     mirror in_refs / slots entry-for-entry (every non-null slot's
//     back-pointer addresses its own in_refs entry), each object's
//     xpart_in_refs matches a recount, and the allocation free-space
//     index agrees with every partition's actual free bytes.
//  5. Root validity — every root exists.
//  6. Reachability agreement (optional) — a full ground-truth scan finds
//     exactly the garbage the marker accounting claims.
VerifierReport VerifyHeap(const ObjectStore& store,
                          const VerifierOptions& options = {});

// Partition-scoped subset of VerifyHeap for incremental checking (scrub
// quanta, post-repair validation, odbgc_run --verify=partition): layout
// and packing of `pid` (check 1), record agreement and slot validity for
// its residents (2, 3), back-reference identity and xpart recounts for
// its residents (4b), and the free-space index entry for `pid`. The
// store-global checks (full remembered-set multiset, roots, reachability
// agreement) stay with VerifyHeap — they cannot be attributed to one
// partition.
VerifierReport VerifyPartition(const ObjectStore& store, PartitionId pid,
                               const VerifierOptions& options = {});

// Outcome of one repair pass.
struct RepairReport {
  uint64_t objects_rebuilt = 0;   // existing objects whose edges were redone
  uint64_t in_refs_rebuilt = 0;   // reverse-index entries reconstructed
  uint64_t partitions_reindexed = 0;  // free-space index entries refreshed
};

// Derived-state repair: reconstructs the reverse index (in-ref lists +
// slot back-references), the cross-partition in-ref counters, and the
// free-space index from the primary data (slot arena + partition lists +
// headers). After RepairHeap, a VerifyHeap pass with reachability
// agreement off reports clean index state no matter how desynced the
// derived structures were. Deterministic: the rebuilt state depends only
// on the primary data, never on the corruption history.
RepairReport RepairHeap(ObjectStore& store);

}  // namespace odbgc

#endif  // ODBGC_STORAGE_VERIFIER_H_
