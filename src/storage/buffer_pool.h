#ifndef ODBGC_STORAGE_BUFFER_POOL_H_
#define ODBGC_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/disk_model.h"
#include "storage/types.h"

namespace odbgc {

// LRU page buffer. The paper sets the buffer to the partition size
// (12 x 8 KB pages, Section 3.1): small enough that a collection's
// sequential scan does not retain the whole database, large enough that a
// partition fits during collection.
//
// The pool does not hold data — the simulation tracks object contents
// elsewhere — it only decides which page accesses hit the buffer and which
// cost disk I/O operations, and attributes those operations to the
// application or the collector.
class BufferPool {
 public:
  explicit BufferPool(uint32_t frame_count);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Touches a page. A miss costs one read I/O (plus one write I/O if a
  // dirty page must be evicted). `dirty` marks the page as modified.
  void Access(PageId page, bool dirty, IoContext ctx);

  // Drops any cached pages of `partition` with page_index >= first_dropped
  // without writing them back. Used after a collection compacts a
  // partition: the discarded from-space tail must not be flushed later.
  void DropPartitionTail(PartitionId partition, uint32_t first_dropped);

  // Writes back all dirty pages (end-of-run accounting), attributing the
  // writes to `ctx`.
  void FlushAll(IoContext ctx);

  // Attaches an optional disk service-time model: every physical
  // transfer (read on miss, write-back on eviction or flush) is reported
  // to it. Not owned; may be null.
  void AttachDiskModel(DiskModel* model) { disk_ = model; }

  const IoStats& stats() const { return stats_; }
  uint32_t frame_count() const { return frame_count_; }
  size_t resident_pages() const { return lru_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Frame {
    PageId page;
    bool dirty;
  };
  using LruList = std::list<Frame>;

  void CountRead(PageId page, IoContext ctx);
  void CountWrite(PageId page, IoContext ctx);

  uint32_t frame_count_;
  DiskModel* disk_ = nullptr;
  LruList lru_;  // front = most recently used
  std::unordered_map<PageId, LruList::iterator, PageIdHash> map_;
  IoStats stats_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_BUFFER_POOL_H_
