#ifndef ODBGC_STORAGE_BUFFER_POOL_H_
#define ODBGC_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/telemetry.h"
#include "storage/disk_model.h"
#include "storage/fault_injector.h"
#include "storage/types.h"
#include "util/snapshot.h"

namespace odbgc {

// How a page was found to be damaged. The pool surfaces detections as
// typed events (below) that the simulation drains at event boundaries to
// make quarantine decisions.
enum class CorruptionKind : uint8_t {
  kChecksum = 0,     // read returned an image failing its page CRC
  kDeviceFault = 1,  // transfer lost to a permanently dead page/device
  kScrub = 2,        // checksum mismatch found by a scrub read
};

const char* CorruptionKindName(CorruptionKind kind);

// One detected-damage event, in detection order.
struct CorruptionEvent {
  PageId page{0, 0};
  CorruptionKind kind = CorruptionKind::kChecksum;
};

// LRU page buffer. The paper sets the buffer to the partition size
// (12 x 8 KB pages, Section 3.1): small enough that a collection's
// sequential scan does not retain the whole database, large enough that a
// partition fits during collection.
//
// The pool does not hold data — the simulation tracks object contents
// elsewhere — it only decides which page accesses hit the buffer and which
// cost disk I/O operations, and attributes those operations to the
// application or the collector. With a fault injector attached, each
// physical transfer may additionally fail transiently (retried with
// backoff, retries charged to the issuing context), fail permanently, or
// leave / detect a torn page; all outcomes surface in IoStats.
//
// Layout: a fixed array of frames linked into an intrusive doubly-linked
// LRU list (head = most recently used), plus a direct-mapped page table:
// one flat row-major array of frame indices, indexed
// partition * row_stride + page_index (page ids are dense within a
// partition; the stride grows geometrically and rarely). A hit is a
// single indexed load and a few pointer swaps; no node allocation, no
// hashing, no per-partition row pointer to chase.
class BufferPool {
 public:
  // `pages_per_partition_hint`, if non-zero, pre-sizes each page-table
  // row so steady-state lookups never grow a row. Purely a capacity hint;
  // pages beyond it still work.
  explicit BufferPool(uint32_t frame_count,
                      uint32_t pages_per_partition_hint = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Touches a page. A miss costs one read I/O (plus one write I/O if a
  // dirty page must be evicted). `dirty` marks the page as modified.
  // Pinned pages are never chosen as eviction victims.
  //
  // The hit path is inline — it is the single hottest operation in the
  // simulator (every object touch and every remembered-set rewrite lands
  // here) and amounts to two array lookups plus an LRU splice. Misses
  // (I/O accounting, eviction) take the out-of-line slow path.
  void Access(PageId page, bool dirty, IoContext ctx) {
    if (page.partition < table_partitions_ && page.page_index < row_stride_) {
      const int32_t f = table_[static_cast<size_t>(page.partition) *
                                   row_stride_ +
                               page.page_index];
      if (f != kNoFrame) {
        ++hits_;
        ODBGC_IF_TEL(tel_) { tc_.hits->Increment(); }
        frames_[f].dirty = frames_[f].dirty || dirty;
        if (lru_head_ != f) {
          Unlink(f);
          PushFront(f);
        }
        return;
      }
    }
    AccessMiss(page, dirty, ctx);
  }

  // Pin / unpin a resident page. Pins nest; a pinned frame survives
  // eviction pressure (it is skipped when hunting for a victim) and may
  // not be dropped by DropPartitionTail. The page must be resident (pin
  // it in the same breath as the Access that faulted it in) and pin
  // counts must balance — both are CHECKed.
  void Pin(PageId page);
  void Unpin(PageId page);
  size_t pinned_pages() const { return pinned_pages_; }

  // Drops any cached pages of `partition` with page_index >= first_dropped
  // without writing them back. Used after a collection compacts a
  // partition: the discarded from-space tail must not be flushed later.
  void DropPartitionTail(PartitionId partition, uint32_t first_dropped);

  // Writes back all dirty pages (end-of-run accounting), attributing the
  // writes to `ctx`.
  void FlushAll(IoContext ctx);

  // Writes back the dirty pages of one partition (they stay resident and
  // become clean). The collector's commit protocol uses this to make
  // to-space durable before the commit record is written.
  void FlushPartition(PartitionId partition, IoContext ctx);

  // Simulates losing all volatile state at a crash: every frame (pinned
  // or not) is dropped with no write-back. Returns the number of dirty
  // pages whose contents were lost.
  size_t DiscardAll();

  // One uncached, durable page write / read (the collector's commit
  // record). Costs one transfer, never occupies a frame.
  void WriteThrough(PageId page, IoContext ctx) { CountWrite(page, ctx); }
  void ReadThrough(PageId page, IoContext ctx) { CountRead(page, ctx); }

  // Attaches an optional disk service-time model: every physical
  // transfer (read on miss, write-back on eviction or flush) is reported
  // to it. Not owned; may be null.
  void AttachDiskModel(DiskModel* model) { disk_ = model; }

  // Attaches an optional deterministic fault injector consulted on every
  // physical transfer. Not owned; may be null.
  void AttachFaultInjector(FaultInjector* injector) { fault_ = injector; }

  // Attaches per-run telemetry (not owned; may be null). Every physical
  // transfer advances the telemetry timebase by one tick, bumps the
  // storage counters, and — when page events are enabled — records a
  // page_read/page_write instant. Counter handles are resolved here,
  // once, so the hot path is a null check plus plain increments.
  void AttachTelemetry(obs::Telemetry* telemetry);

  // Damage detections (checksum mismatches, dead-device transfers) since
  // the last drain, in detection order. The simulation polls this at
  // event boundaries to quarantine the affected partitions; with no fault
  // injector attached the queue is always empty.
  std::vector<CorruptionEvent> TakeCorruptionEvents() {
    return std::move(pending_corruption_);
  }
  bool HasPendingCorruption(PartitionId partition) const {
    for (const CorruptionEvent& e : pending_corruption_) {
      if (e.page.partition == partition) return true;
    }
    return false;
  }
  size_t pending_corruption_count() const {
    return pending_corruption_.size();
  }

  // Marks subsequent transfers as scrub reads: detections they surface
  // are typed kScrub instead of kChecksum. The scrubber brackets its
  // quantum with this so repair accounting can tell proactive detection
  // from demand-read detection apart.
  void SetScrubbing(bool scrubbing) { scrubbing_ = scrubbing; }

  const IoStats& stats() const { return stats_; }
  uint32_t frame_count() const { return frame_count_; }
  size_t resident_pages() const { return resident_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Checkpoint hooks. Residency is serialized in LRU order (head first)
  // and rebuilt exactly, so post-restore hit/miss/eviction sequences —
  // and therefore all downstream I/O accounting — are byte-identical to
  // a run that never checkpointed. Pin counts must be zero (checkpoints
  // are taken between events, never inside a collection); CHECKed.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  static constexpr int32_t kNoFrame = -1;

  struct Frame {
    PageId page{0, 0};
    uint32_t pins = 0;
    bool dirty = false;
    // Intrusive LRU links (frame indices). A free frame reuses `next` as
    // its free-list link.
    int32_t prev = kNoFrame;
    int32_t next = kNoFrame;
  };

  // Slow path of Access: the page is not resident — count the read,
  // evict if the pool is full, and install the page in a fresh frame.
  // Also inline: miss-heavy hot loops (reorg churn, scan-through
  // workloads) take this path every other touch.
  void AccessMiss(PageId page, bool dirty, IoContext ctx) {
    ++misses_;
    ODBGC_IF_TEL(tel_) { tc_.misses->Increment(); }
    CountRead(page, ctx);
    int32_t fresh;
    if (resident_ >= frame_count_) {
      // Evict the least recently used unpinned frame and reuse it in
      // place: clear its table slot and splice it straight to the LRU
      // head — no free-list round trip through ReleaseFrame (a full pool
      // stays full, and miss-heavy workloads evict on every miss).
      int32_t victim = lru_tail_;
      while (victim != kNoFrame && frames_[victim].pins != 0) {
        victim = frames_[victim].prev;
      }
      ODBGC_CHECK_MSG(victim != kNoFrame,
                      "every buffer frame is pinned; cannot evict");
      if (frames_[victim].dirty) CountWrite(frames_[victim].page, ctx);
      ODBGC_IF_TEL(tel_) { tc_.evictions->Increment(); }
      ClearSlot(frames_[victim].page);
      if (lru_head_ != victim) {
        Unlink(victim);
        PushFront(victim);
      }
      fresh = victim;
    } else {
      fresh = free_head_;
      free_head_ = frames_[fresh].next;
      PushFront(fresh);
      ++resident_;
    }
    frames_[fresh].page = page;
    frames_[fresh].dirty = dirty;
    frames_[fresh].pins = 0;
    SetSlot(page, fresh);
  }

  // Transfer accounting. With no disk model, fault injector, or
  // telemetry attached (the common bench/test configuration) a transfer
  // is a single counter increment, inlined here; any attached model
  // takes the out-of-line path.
  void CountRead(PageId page, IoContext ctx) {
    if (disk_ == nullptr && fault_ == nullptr && tel_ == nullptr) {
      ++(ctx == IoContext::kApplication ? stats_.app_reads
                                        : stats_.gc_reads);
      return;
    }
    RecordTransfer(page, ctx, /*is_write=*/false);
  }
  void CountWrite(PageId page, IoContext ctx) {
    if (disk_ == nullptr && fault_ == nullptr && tel_ == nullptr) {
      ++(ctx == IoContext::kApplication ? stats_.app_writes
                                        : stats_.gc_writes);
      return;
    }
    RecordTransfer(page, ctx, /*is_write=*/true);
  }
  // Shared transfer accounting: counts the base transfer, advances
  // telemetry, then consults the fault injector for retries / permanent
  // errors / tears.
  void RecordTransfer(PageId page, IoContext ctx, bool is_write);

  // Frame index of a resident page, or kNoFrame.
  int32_t Lookup(PageId page) const;
  // Records `frame` as the residence of `page`, growing the table.
  void SetSlot(PageId page, int32_t frame) {
    if (page.partition >= table_partitions_ || page.page_index >= row_stride_) {
      GrowTable(page);
    }
    table_[static_cast<size_t>(page.partition) * row_stride_ +
           page.page_index] = frame;
  }
  void ClearSlot(PageId page) {
    table_[static_cast<size_t>(page.partition) * row_stride_ +
           page.page_index] = kNoFrame;
  }
  // Grows the flat table so `page` indexes in bounds: appends rows for
  // new partitions (cheap) and remaps to a wider stride when a page
  // index exceeds the current one (rare, geometric).
  void GrowTable(PageId page);
  // LRU splices, inline for the Access hit path.
  void Unlink(int32_t f) {
    Frame& frame = frames_[f];
    if (frame.prev != kNoFrame) {
      frames_[frame.prev].next = frame.next;
    } else {
      lru_head_ = frame.next;
    }
    if (frame.next != kNoFrame) {
      frames_[frame.next].prev = frame.prev;
    } else {
      lru_tail_ = frame.prev;
    }
  }
  void PushFront(int32_t f) {
    Frame& frame = frames_[f];
    frame.prev = kNoFrame;
    frame.next = lru_head_;
    if (lru_head_ != kNoFrame) frames_[lru_head_].prev = f;
    lru_head_ = f;
    if (lru_tail_ == kNoFrame) lru_tail_ = f;
  }
  // Removes a resident frame entirely (table slot, LRU list, free list).
  void ReleaseFrame(int32_t f);
  void ResetFreeList();

  uint32_t frame_count_;
  uint32_t pages_hint_;
  DiskModel* disk_ = nullptr;
  FaultInjector* fault_ = nullptr;
  obs::Telemetry* tel_ = nullptr;
  // Counter handles cached at AttachTelemetry (valid iff tel_ != null).
  struct TelCounters {
    obs::Counter* reads_app = nullptr;
    obs::Counter* reads_gc = nullptr;
    obs::Counter* writes_app = nullptr;
    obs::Counter* writes_gc = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* fault_retries = nullptr;
    obs::Counter* fault_permanent = nullptr;
    obs::Counter* torn_writes = nullptr;
    obs::Counter* torn_repairs = nullptr;
    obs::Counter* checksum_failures = nullptr;
    obs::Counter* bitflips = nullptr;
    obs::Counter* device_faults = nullptr;
    // Stall attribution: retry counts of application-context transfers
    // that hit transient faults (gc-context retries are not app-visible).
    obs::Histogram* fault_retry_stall = nullptr;
  } tc_;
  std::vector<Frame> frames_;
  int32_t lru_head_ = kNoFrame;  // most recently used
  int32_t lru_tail_ = kNoFrame;  // least recently used
  int32_t free_head_ = kNoFrame;
  uint32_t resident_ = 0;
  // Flat page table: table_[partition * row_stride_ + page_index] = frame
  // index or kNoFrame. Rows are appended as partitions appear; the stride
  // widens (with a remap) only when a page index outgrows it, which the
  // pages-per-partition hint makes a cold one-time event.
  std::vector<int32_t> table_;
  uint32_t table_partitions_ = 0;  // rows in table_
  uint32_t row_stride_ = 0;        // columns per row
  IoStats stats_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  size_t pinned_pages_ = 0;
  bool scrubbing_ = false;
  std::vector<CorruptionEvent> pending_corruption_;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_BUFFER_POOL_H_
