#ifndef ODBGC_STORAGE_BUFFER_POOL_H_
#define ODBGC_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/telemetry.h"
#include "storage/disk_model.h"
#include "storage/fault_injector.h"
#include "storage/types.h"
#include "util/snapshot.h"

namespace odbgc {

// LRU page buffer. The paper sets the buffer to the partition size
// (12 x 8 KB pages, Section 3.1): small enough that a collection's
// sequential scan does not retain the whole database, large enough that a
// partition fits during collection.
//
// The pool does not hold data — the simulation tracks object contents
// elsewhere — it only decides which page accesses hit the buffer and which
// cost disk I/O operations, and attributes those operations to the
// application or the collector. With a fault injector attached, each
// physical transfer may additionally fail transiently (retried with
// backoff, retries charged to the issuing context), fail permanently, or
// leave / detect a torn page; all outcomes surface in IoStats.
//
// Layout: a fixed array of frames linked into an intrusive doubly-linked
// LRU list (head = most recently used), plus a direct-mapped page table
// (per-partition rows of frame indices — page ids are dense within a
// partition). An access is two array lookups and a few pointer swaps; no
// node allocation, no hashing, no pointer chasing through list nodes.
class BufferPool {
 public:
  // `pages_per_partition_hint`, if non-zero, pre-sizes each page-table
  // row so steady-state lookups never grow a row. Purely a capacity hint;
  // pages beyond it still work.
  explicit BufferPool(uint32_t frame_count,
                      uint32_t pages_per_partition_hint = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Touches a page. A miss costs one read I/O (plus one write I/O if a
  // dirty page must be evicted). `dirty` marks the page as modified.
  // Pinned pages are never chosen as eviction victims.
  void Access(PageId page, bool dirty, IoContext ctx);

  // Pin / unpin a resident page. Pins nest; a pinned frame survives
  // eviction pressure (it is skipped when hunting for a victim) and may
  // not be dropped by DropPartitionTail. The page must be resident (pin
  // it in the same breath as the Access that faulted it in) and pin
  // counts must balance — both are CHECKed.
  void Pin(PageId page);
  void Unpin(PageId page);
  size_t pinned_pages() const { return pinned_pages_; }

  // Drops any cached pages of `partition` with page_index >= first_dropped
  // without writing them back. Used after a collection compacts a
  // partition: the discarded from-space tail must not be flushed later.
  void DropPartitionTail(PartitionId partition, uint32_t first_dropped);

  // Writes back all dirty pages (end-of-run accounting), attributing the
  // writes to `ctx`.
  void FlushAll(IoContext ctx);

  // Writes back the dirty pages of one partition (they stay resident and
  // become clean). The collector's commit protocol uses this to make
  // to-space durable before the commit record is written.
  void FlushPartition(PartitionId partition, IoContext ctx);

  // Simulates losing all volatile state at a crash: every frame (pinned
  // or not) is dropped with no write-back. Returns the number of dirty
  // pages whose contents were lost.
  size_t DiscardAll();

  // One uncached, durable page write / read (the collector's commit
  // record). Costs one transfer, never occupies a frame.
  void WriteThrough(PageId page, IoContext ctx) { CountWrite(page, ctx); }
  void ReadThrough(PageId page, IoContext ctx) { CountRead(page, ctx); }

  // Attaches an optional disk service-time model: every physical
  // transfer (read on miss, write-back on eviction or flush) is reported
  // to it. Not owned; may be null.
  void AttachDiskModel(DiskModel* model) { disk_ = model; }

  // Attaches an optional deterministic fault injector consulted on every
  // physical transfer. Not owned; may be null.
  void AttachFaultInjector(FaultInjector* injector) { fault_ = injector; }

  // Attaches per-run telemetry (not owned; may be null). Every physical
  // transfer advances the telemetry timebase by one tick, bumps the
  // storage counters, and — when page events are enabled — records a
  // page_read/page_write instant. Counter handles are resolved here,
  // once, so the hot path is a null check plus plain increments.
  void AttachTelemetry(obs::Telemetry* telemetry);

  const IoStats& stats() const { return stats_; }
  uint32_t frame_count() const { return frame_count_; }
  size_t resident_pages() const { return resident_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Checkpoint hooks. Residency is serialized in LRU order (head first)
  // and rebuilt exactly, so post-restore hit/miss/eviction sequences —
  // and therefore all downstream I/O accounting — are byte-identical to
  // a run that never checkpointed. Pin counts must be zero (checkpoints
  // are taken between events, never inside a collection); CHECKed.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  static constexpr int32_t kNoFrame = -1;

  struct Frame {
    PageId page{0, 0};
    uint32_t pins = 0;
    bool dirty = false;
    // Intrusive LRU links (frame indices). A free frame reuses `next` as
    // its free-list link.
    int32_t prev = kNoFrame;
    int32_t next = kNoFrame;
  };

  void CountRead(PageId page, IoContext ctx);
  void CountWrite(PageId page, IoContext ctx);
  // Shared transfer accounting: counts the base transfer, then consults
  // the fault injector for retries / permanent errors / tears.
  void RecordTransfer(PageId page, IoContext ctx, bool is_write);

  // Frame index of a resident page, or kNoFrame.
  int32_t Lookup(PageId page) const;
  // Records `frame` as the residence of `page`, growing the table.
  void SetSlot(PageId page, int32_t frame);
  void ClearSlot(PageId page);
  void Unlink(int32_t f);
  void PushFront(int32_t f);
  // Removes a resident frame entirely (table slot, LRU list, free list).
  void ReleaseFrame(int32_t f);
  void ResetFreeList();

  uint32_t frame_count_;
  uint32_t pages_hint_;
  DiskModel* disk_ = nullptr;
  FaultInjector* fault_ = nullptr;
  obs::Telemetry* tel_ = nullptr;
  // Counter handles cached at AttachTelemetry (valid iff tel_ != null).
  struct TelCounters {
    obs::Counter* reads_app = nullptr;
    obs::Counter* reads_gc = nullptr;
    obs::Counter* writes_app = nullptr;
    obs::Counter* writes_gc = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* fault_retries = nullptr;
    obs::Counter* fault_permanent = nullptr;
    obs::Counter* torn_writes = nullptr;
    obs::Counter* torn_repairs = nullptr;
  } tc_;
  std::vector<Frame> frames_;
  int32_t lru_head_ = kNoFrame;  // most recently used
  int32_t lru_tail_ = kNoFrame;  // least recently used
  int32_t free_head_ = kNoFrame;
  uint32_t resident_ = 0;
  // table_[partition][page_index] = frame index or kNoFrame. Rows grow on
  // demand (partition page indices are dense and small).
  std::vector<std::vector<int32_t>> table_;
  IoStats stats_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  size_t pinned_pages_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_BUFFER_POOL_H_
