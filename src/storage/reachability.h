#ifndef ODBGC_STORAGE_REACHABILITY_H_
#define ODBGC_STORAGE_REACHABILITY_H_

#include <cstdint>
#include <vector>

#include "storage/mark_bitmap.h"
#include "storage/object_store.h"

namespace odbgc {

// Result of a whole-database reachability scan.
struct ReachabilityResult {
  MarkBitmap reachable;  // indexed by ObjectId; operator[] as before
  uint64_t reachable_bytes = 0;
  uint64_t reachable_objects = 0;
  uint64_t unreachable_bytes = 0;
  uint64_t unreachable_objects = 0;
};

// Reusable scan workspace. Hot callers (the oracle selector, the fuzz
// workload's shadow scans) scan once per collection or per mutation;
// keeping the worklist — and, via ScanReachabilityInto, the result's
// bitmap — alive across scans stops every scan from churning the
// allocator.
struct ReachabilityScratch {
  std::vector<ObjectId> worklist;
};

// Exhaustive breadth-first scan from the root set over all pointer slots.
// This is the "scan the entire database" operation the paper calls
// prohibitively expensive for a live system (Section 2.4); we provide it
// as (a) the validator for the generator's ground-truth garbage markers,
// and (b) the basis of the oracle partition selector used in ablations.
// `scratch`, if given, lends its worklist buffer to the scan.
ReachabilityResult ScanReachability(const ObjectStore& store,
                                    ReachabilityScratch* scratch = nullptr);

// In-place variant: overwrites `*result`, reusing its bitmap capacity.
void ScanReachabilityInto(const ObjectStore& store, ReachabilityResult* result,
                          ReachabilityScratch* scratch = nullptr);

// Unreachable bytes currently stored in partition `p`.
uint64_t UnreachableBytesInPartition(const ObjectStore& store,
                                     const ReachabilityResult& scan,
                                     PartitionId p);

}  // namespace odbgc

#endif  // ODBGC_STORAGE_REACHABILITY_H_
