#include "storage/object_store.h"

#include <algorithm>

#include "util/check.h"

namespace odbgc {

ObjectStore::ObjectStore(const StoreConfig& config) : config_(config) {
  ODBGC_CHECK(config.page_bytes > 0);
  ODBGC_CHECK(config.partition_bytes % config.page_bytes == 0);
  pool_ = std::make_unique<BufferPool>(
      config.buffer_pages, config.partition_bytes / config.page_bytes);
  if (config.enable_disk_timing) {
    disk_ = std::make_unique<DiskModel>(
        config.disk, config.page_bytes,
        config.partition_bytes / config.page_bytes);
    pool_->AttachDiskModel(disk_.get());
  }
  if (config.fault.io_faults_enabled()) {
    fault_ = std::make_unique<FaultInjector>(config.fault, config.fault.seed);
    pool_->AttachFaultInjector(fault_.get());
  }
  objects_.resize(1);  // id 0 = null
}

Partition& ObjectStore::PartitionFor(uint32_t size, ObjectId near_hint) {
  ODBGC_CHECK_MSG(size <= config_.partition_bytes,
                  "object larger than a partition");
  if (near_hint != kNullObject && Exists(near_hint)) {
    Partition& near = partitions_[objects_[near_hint].partition];
    if (near.Fits(size)) return near;
  }
  if (!partitions_.empty() && partitions_[alloc_cursor_].Fits(size)) {
    return partitions_[alloc_cursor_];
  }
  // First fit over existing partitions (space freed by collections is
  // reused before the database grows). The free-space index returns the
  // lowest-id partition that fits — the same answer the historical O(P)
  // scan gave — in O(log P).
  const uint32_t fit = free_index_.FirstFit(size);
  if (fit != FreeSpaceIndex::kNotFound) {
    alloc_cursor_ = fit;
    return partitions_[fit];
  }
  // Grow: allocation never triggers a collection (Section 3.1).
  PartitionId id = static_cast<PartitionId>(partitions_.size());
  partitions_.emplace_back(id, config_.partition_bytes);
  free_index_.PushPartition(config_.partition_bytes);
  alloc_cursor_ = id;
  return partitions_.back();
}

void ObjectStore::CreateObject(ObjectId id, uint32_t size,
                               uint32_t num_slots, ObjectId near_hint) {
  ODBGC_CHECK(id != kNullObject);
  ODBGC_CHECK(size > 0);
  if (id >= objects_.size()) objects_.resize(id + 1);
  Partition& part = PartitionFor(size, near_hint);
  ObjectRecord& rec = objects_[id];
  ODBGC_CHECK_MSG(!rec.exists, "duplicate object id");
  rec.exists = true;
  rec.size = size;
  rec.partition = part.id();
  rec.offset = part.Allocate(id, size);
  free_index_.Update(part.id(), part.free_bytes());
  rec.slots.assign(num_slots, kNullObject);
  rec.slot_backrefs.assign(num_slots, 0);
  rec.in_refs.clear();
  rec.in_ref_slots.clear();
  rec.xpart_in_refs = 0;
  used_bytes_ += size;
  allocated_bytes_total_ += size;
  ++live_objects_;
  newest_object_ = id;
  TouchRange(rec.partition, rec.offset, rec.size, /*dirty=*/true,
             IoContext::kApplication);
}

void ObjectStore::ReadObject(ObjectId id) {
  const ObjectRecord& rec = object(id);
  TouchRange(rec.partition, rec.offset, rec.size, /*dirty=*/false,
             IoContext::kApplication);
}

void ObjectStore::UpdateObject(ObjectId id) {
  const ObjectRecord& rec = object(id);
  TouchRange(rec.partition, rec.offset, rec.size, /*dirty=*/true,
             IoContext::kApplication);
}

void ObjectStore::AttachInRef(ObjectId src, uint32_t slot, ObjectId target) {
  ObjectRecord& s = objects_[src];
  ObjectRecord& t = objects_[target];
  s.slot_backrefs[slot] = static_cast<uint32_t>(t.in_refs.size());
  t.in_refs.push_back(src);
  t.in_ref_slots.push_back(slot);
  if (s.partition != t.partition) ++t.xpart_in_refs;
}

void ObjectStore::DetachInRef(ObjectId src, uint32_t slot, ObjectId target) {
  ObjectRecord& s = objects_[src];
  ObjectRecord& t = objects_[target];
  const uint32_t idx = s.slot_backrefs[slot];
  ODBGC_CHECK_MSG(idx < t.in_refs.size() && t.in_refs[idx] == src &&
                      t.in_ref_slots[idx] == slot,
                  "reverse index out of sync");
  if (s.partition != t.partition) {
    ODBGC_CHECK_MSG(t.xpart_in_refs > 0, "reverse index out of sync");
    --t.xpart_in_refs;
  }
  // Swap-erase (in_refs is an unordered multiset); the moved entry's
  // owning slot is patched to its new position.
  const uint32_t last = static_cast<uint32_t>(t.in_refs.size()) - 1;
  if (idx != last) {
    const ObjectId moved_src = t.in_refs[last];
    const uint32_t moved_slot = t.in_ref_slots[last];
    t.in_refs[idx] = moved_src;
    t.in_ref_slots[idx] = moved_slot;
    objects_[moved_src].slot_backrefs[moved_slot] = idx;
  }
  t.in_refs.pop_back();
  t.in_ref_slots.pop_back();
}

PartitionId ObjectStore::WriteRef(ObjectId src, uint32_t slot,
                                  ObjectId new_target) {
  ObjectRecord& s = mutable_object(src);
  ODBGC_CHECK(slot < s.slots.size());
  ObjectId old_target = s.slots[slot];
  if (old_target == new_target) {
    // Writing the same value still dirties the source page but is not a
    // pointer overwrite (connectivity unchanged).
    TouchRange(s.partition, s.offset, s.size, /*dirty=*/true,
               IoContext::kApplication);
    return kInvalidPartition;
  }
  s.slots[slot] = new_target;
  TouchRange(s.partition, s.offset, s.size, /*dirty=*/true,
             IoContext::kApplication);

  PartitionId overwritten_partition = kInvalidPartition;
  if (old_target != kNullObject) {
    ObjectRecord& ot = mutable_object(old_target);
    DetachInRef(src, slot, old_target);
    // The old target became less connected: charge the overwrite to the
    // partition that holds it (feeds FGS and UpdatedPointer selection).
    partitions_[ot.partition].RecordOverwrite();
    ++pointer_overwrites_;
    overwritten_partition = ot.partition;
  }
  if (new_target != kNullObject) {
    mutable_object(new_target);  // existence check
    AttachInRef(src, slot, new_target);
  }
  return overwritten_partition;
}

void ObjectStore::AddRoot(ObjectId id) {
  ODBGC_CHECK(Exists(id));
  ODBGC_CHECK(!IsRoot(id));
  roots_.push_back(id);
}

void ObjectStore::RemoveRoot(ObjectId id) {
  auto it = std::find(roots_.begin(), roots_.end(), id);
  ODBGC_CHECK(it != roots_.end());
  roots_.erase(it);
}

bool ObjectStore::IsRoot(ObjectId id) const {
  return std::find(roots_.begin(), roots_.end(), id) != roots_.end();
}

void ObjectStore::RecordGarbageCreated(uint64_t bytes, uint64_t objects) {
  garbage_created_bytes_ += bytes;
  garbage_created_objects_ += objects;
}

void ObjectStore::RecordGarbageCollected(uint64_t bytes, uint64_t objects) {
  garbage_collected_bytes_ += bytes;
  garbage_collected_objects_ += objects;
}

const ObjectRecord& ObjectStore::object(ObjectId id) const {
  ODBGC_CHECK(id < objects_.size() && objects_[id].exists);
  return objects_[id];
}

ObjectRecord& ObjectStore::mutable_object(ObjectId id) {
  ODBGC_CHECK(id < objects_.size() && objects_[id].exists);
  return objects_[id];
}

bool ObjectStore::Exists(ObjectId id) const {
  return id < objects_.size() && objects_[id].exists;
}

const Partition& ObjectStore::partition(PartitionId p) const {
  ODBGC_CHECK(p < partitions_.size());
  return partitions_[p];
}

Partition& ObjectStore::mutable_partition(PartitionId p) {
  ODBGC_CHECK(p < partitions_.size());
  return partitions_[p];
}

void ObjectStore::TouchRange(PartitionId partition, uint32_t offset,
                             uint32_t len, bool dirty, IoContext ctx) {
  ODBGC_CHECK(partition < partitions_.size());
  uint32_t first = offset / config_.page_bytes;
  uint32_t last = (offset + len - 1) / config_.page_bytes;
  for (uint32_t pg = first; pg <= last; ++pg) {
    pool_->Access(PageId{partition, pg}, dirty, ctx);
  }
}

void ObjectStore::CommitRecordWrite(PartitionId partition, IoContext ctx) {
  ODBGC_CHECK(partition < partitions_.size());
  pool_->WriteThrough(PageId{partition, kMetaPageIndex}, ctx);
}

void ObjectStore::CommitRecordRead(PartitionId partition, IoContext ctx) {
  ODBGC_CHECK(partition < partitions_.size());
  pool_->ReadThrough(PageId{partition, kMetaPageIndex}, ctx);
}

void ObjectStore::DestroyObject(ObjectId id) {
  ObjectRecord& rec = mutable_object(id);
  for (uint32_t slot = 0; slot < rec.slots.size(); ++slot) {
    const ObjectId target = rec.slots[slot];
    if (target == kNullObject) continue;
    // The target may itself have been destroyed earlier in this sweep.
    if (!Exists(target)) continue;
    DetachInRef(id, slot, target);
  }
  // Note: used_bytes_ is not reduced here. The object's bytes still occupy
  // from-space until the collector compacts the partition and calls
  // AdjustUsedBytes().
  --live_objects_;
  rec.exists = false;
  rec.slots.clear();
  rec.slots.shrink_to_fit();
  rec.slot_backrefs.clear();
  rec.slot_backrefs.shrink_to_fit();
  rec.in_refs.clear();
  rec.in_refs.shrink_to_fit();
  rec.in_ref_slots.clear();
  rec.in_ref_slots.shrink_to_fit();
  rec.xpart_in_refs = 0;
}

void ObjectStore::Relocate(ObjectId id, uint32_t new_offset) {
  mutable_object(id).offset = new_offset;
}

void ObjectStore::AdjustUsedBytes(PartitionId partition, uint32_t old_used,
                                  uint32_t new_used) {
  ODBGC_CHECK(used_bytes_ + new_used >= old_used);
  used_bytes_ = used_bytes_ - old_used + new_used;
  ODBGC_CHECK(partition < partitions_.size());
  free_index_.Update(partition, partitions_[partition].free_bytes());
}

void ObjectStore::SaveState(SnapshotWriter& w) const {
  w.Tag("STOR");
  w.U64(partitions_.size());
  for (const Partition& p : partitions_) p.SaveState(w);

  w.U64(objects_.size());
  for (const ObjectRecord& rec : objects_) {
    w.Bool(rec.exists);
    if (!rec.exists) continue;
    w.U32(rec.size);
    w.U32(rec.partition);
    w.U32(rec.offset);
    w.VecU32(rec.slots);
    w.VecU32(rec.in_refs);
    w.VecU32(rec.in_ref_slots);
    w.VecU32(rec.slot_backrefs);
    w.U32(rec.xpart_in_refs);
  }

  w.VecU32(roots_);
  w.U32(newest_object_);
  w.U32(alloc_cursor_);

  w.Tag("POOL");
  pool_->SaveState(w);
  w.Bool(disk_ != nullptr);
  if (disk_ != nullptr) disk_->SaveState(w);
  w.Bool(fault_ != nullptr);
  if (fault_ != nullptr) fault_->SaveState(w);

  w.Tag("CNTR");
  w.U64(used_bytes_);
  w.U64(live_objects_);
  w.U64(pointer_overwrites_);
  w.U64(allocated_bytes_total_);
  w.U64(garbage_created_bytes_);
  w.U64(garbage_created_objects_);
  w.U64(garbage_collected_bytes_);
  w.U64(garbage_collected_objects_);
}

void ObjectStore::RestoreState(SnapshotReader& r) {
  r.Tag("STOR");
  const uint64_t part_count = r.U64();
  if (!r.ok()) return;
  partitions_.clear();
  free_index_ = FreeSpaceIndex();
  for (uint64_t i = 0; i < part_count && r.ok(); ++i) {
    partitions_.emplace_back(static_cast<PartitionId>(i),
                             config_.partition_bytes);
    partitions_.back().RestoreState(r);
    free_index_.PushPartition(partitions_.back().free_bytes());
  }

  const uint64_t obj_count = r.U64();
  if (!r.ok()) return;
  objects_.clear();
  objects_.resize(static_cast<size_t>(obj_count));
  for (uint64_t i = 0; i < obj_count && r.ok(); ++i) {
    ObjectRecord& rec = objects_[i];
    rec.exists = r.Bool();
    if (!rec.exists) continue;
    rec.size = r.U32();
    rec.partition = r.U32();
    rec.offset = r.U32();
    rec.slots = r.VecU32();
    rec.in_refs = r.VecU32();
    rec.in_ref_slots = r.VecU32();
    rec.slot_backrefs = r.VecU32();
    rec.xpart_in_refs = r.U32();
  }

  roots_ = r.VecU32();
  newest_object_ = r.U32();
  alloc_cursor_ = r.U32();

  r.Tag("POOL");
  pool_->RestoreState(r);
  if (r.Bool()) {
    if (disk_ == nullptr) {
      r.MarkMalformed("snapshot has disk-model state but timing is off");
      return;
    }
    disk_->RestoreState(r);
  }
  if (r.Bool()) {
    if (fault_ == nullptr) {
      r.MarkMalformed("snapshot has fault-injector state but faults are off");
      return;
    }
    fault_->RestoreState(r);
  }

  r.Tag("CNTR");
  used_bytes_ = r.U64();
  live_objects_ = r.U64();
  pointer_overwrites_ = r.U64();
  allocated_bytes_total_ = r.U64();
  garbage_created_bytes_ = r.U64();
  garbage_created_objects_ = r.U64();
  garbage_collected_bytes_ = r.U64();
  garbage_collected_objects_ = r.U64();

  // Transient marking state: reset, not restored. Mark stamps only ever
  // compare equal to the *current* epoch, so starting over at 0 cannot
  // change any collection's outcome.
  mark_epochs_.clear();
  mark_epoch_ = 0;
}

uint32_t ObjectStore::BeginMarkEpoch() {
  if (++mark_epoch_ == 0) {
    // Epoch counter wrapped (once per 2^32 collections): stale stamps
    // from the previous era could alias, so clear the array.
    std::fill(mark_epochs_.begin(), mark_epochs_.end(), 0u);
    mark_epoch_ = 1;
  }
  mark_epochs_.resize(objects_.size(), 0u);
  return mark_epoch_;
}

}  // namespace odbgc
