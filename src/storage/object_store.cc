#include "storage/object_store.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "sim/errors.h"
#include "util/check.h"

namespace odbgc {

namespace {
// Store identity for the collector's plan-cache keying. Process-global
// and monotonic: also advanced on every RestoreState, so a restored
// store never aliases its own pre-restore cache entries. Never observable
// in simulation output.
std::atomic<uint64_t> g_store_serial{0};
}  // namespace

ObjectStore::ObjectStore(const StoreConfig& config)
    : config_(config), serial_(++g_store_serial) {
  ODBGC_CHECK(config.page_bytes > 0);
  ODBGC_CHECK(config.partition_bytes % config.page_bytes == 0);
  pool_ = std::make_unique<BufferPool>(
      config.buffer_pages, config.partition_bytes / config.page_bytes);
  if (config.enable_disk_timing) {
    disk_ = std::make_unique<DiskModel>(
        config.disk, config.page_bytes,
        config.partition_bytes / config.page_bytes);
    pool_->AttachDiskModel(disk_.get());
  }
  if (config.fault.io_faults_enabled()) {
    fault_ = std::make_unique<FaultInjector>(config.fault, config.fault.seed);
    pool_->AttachFaultInjector(fault_.get());
  }
  if (std::has_single_bit(config.page_bytes)) {
    page_shift_ = std::countr_zero(config.page_bytes);
  }
  objects_.resize(1);  // id 0 = null
  in_refs_.resize(1);
}

Partition& ObjectStore::PartitionFor(uint32_t size, ObjectId near_hint) {
  ODBGC_CHECK_MSG(size <= config_.partition_bytes,
                  "object larger than a partition");
  if (near_hint != kNullObject && Exists(near_hint)) {
    Partition& near = partitions_[objects_[near_hint].partition];
    if (near.Fits(size) && !IsQuarantined(near.id())) return near;
  }
  if (!partitions_.empty() && partitions_[alloc_cursor_].Fits(size) &&
      !IsQuarantined(alloc_cursor_)) {
    return partitions_[alloc_cursor_];
  }
  // First fit over existing partitions (space freed by collections is
  // reused before the database grows). The free-space index returns the
  // lowest-id partition that fits — the same answer the historical O(P)
  // scan gave — in O(log P).
  const uint32_t fit = free_index_.FirstFit(size);
  if (fit != FreeSpaceIndex::kNotFound) {
    alloc_cursor_ = fit;
    return partitions_[fit];
  }
  // Grow: allocation never triggers a collection (Section 3.1). Under a
  // capacity ceiling the growth is bounded: when the next partition
  // would push the committed footprint past max_db_bytes, allocation
  // has truly outrun collection and the store raises the typed error
  // instead of silently growing.
  if (config_.max_db_bytes > 0 &&
      committed_bytes() + config_.partition_bytes > config_.max_db_bytes) {
    throw SpaceExhaustedError(used_bytes_, committed_bytes(),
                              config_.max_db_bytes);
  }
  PartitionId id = static_cast<PartitionId>(partitions_.size());
  partitions_.emplace_back(id, config_.partition_bytes);
  plan_epochs_.push_back(0);
  if (!quarantined_.empty()) quarantined_.push_back(0);
  free_index_.PushPartition(config_.partition_bytes);
  alloc_cursor_ = id;
  return partitions_.back();
}

bool ObjectStore::QuarantinePartition(PartitionId p) {
  ODBGC_CHECK(p < partitions_.size());
  if (IsQuarantined(p)) return false;
  if (quarantined_.size() < partitions_.size()) {
    quarantined_.resize(partitions_.size(), 0);
  }
  quarantined_[p] = 1;
  ++quarantined_count_;
  // Hide the partition from the allocator: the free-space index reports
  // it full, and PartitionFor's cursor / hint fast paths check the flag.
  free_index_.Update(p, 0);
  ++plan_epochs_[p];
  return true;
}

void ObjectStore::ReleasePartition(PartitionId p) {
  ODBGC_CHECK(p < partitions_.size());
  ODBGC_CHECK_MSG(IsQuarantined(p), "releasing a healthy partition");
  quarantined_[p] = 0;
  --quarantined_count_;
  free_index_.Update(p, partitions_[p].free_bytes());
  ++plan_epochs_[p];
}

uint64_t ObjectStore::quarantined_used_bytes() const {
  if (quarantined_count_ == 0) return 0;
  uint64_t total = 0;
  for (const Partition& part : partitions_) {
    if (IsQuarantined(part.id())) total += part.used();
  }
  return total;
}

void ObjectStore::RebuildDerivedState() {
  // Wipe the derived side completely, then rebuild it from the primary
  // data in canonical (source id, slot index) order. The result is
  // verifier-identical to incrementally maintained state (the in-ref
  // lists are unordered multisets) and deterministic regardless of the
  // history that preceded the rebuild.
  for (size_t i = 0; i < objects_.size(); ++i) {
    in_refs_[i].clear();
    objects_[i].xpart_in_refs = 0;
  }
  for (ObjectId id = 1; id < objects_.size(); ++id) {
    const ObjectRecord& rec = objects_[id];
    if (!rec.exists) continue;
    for (uint32_t j = 0; j < rec.slot_count; ++j) {
      const uint32_t pos = rec.slot_begin + j;
      const ObjectId target = slot_arena_[pos].target;
      if (target == kNullObject || !Exists(target)) continue;
      std::vector<InRef>& tin = in_refs_[target];
      slot_arena_[pos].backref = static_cast<uint32_t>(tin.size());
      tin.push_back(InRef{id, pos});
      if (rec.partition != objects_[target].partition) {
        ++objects_[target].xpart_in_refs;
      }
    }
  }
  for (const Partition& part : partitions_) {
    free_index_.Update(part.id(),
                       IsQuarantined(part.id()) ? 0 : part.free_bytes());
  }
  // Every partition's planning inputs may have changed.
  for (uint64_t& epoch : plan_epochs_) ++epoch;
}

void ObjectStore::CreateObject(ObjectId id, uint32_t size,
                               uint32_t num_slots, ObjectId near_hint) {
  ODBGC_CHECK(id != kNullObject);
  ODBGC_CHECK(size > 0);
  if (id >= objects_.size()) {
    objects_.resize(id + 1);
    in_refs_.resize(id + 1);
  }
  Partition& part = PartitionFor(size, near_hint);
  ObjectRecord& rec = objects_[id];
  ODBGC_CHECK_MSG(!rec.exists, "duplicate object id");
  rec.exists = true;
  rec.size = size;
  rec.partition = part.id();
  rec.offset = part.Allocate(id, size);
  free_index_.Update(part.id(), part.free_bytes());
  // Bump-allocate this object's slot range at the arena tail. Ranges of
  // destroyed (or re-created) objects are abandoned, not recycled.
  rec.slot_begin = static_cast<uint32_t>(slot_arena_.size());
  rec.slot_count = num_slots;
  slot_arena_.resize(slot_arena_.size() + num_slots);
  in_refs_[id].clear();
  rec.xpart_in_refs = 0;
  used_bytes_ += size;
  allocated_bytes_total_ += size;
  ++live_objects_;
  ++plan_epochs_[rec.partition];
  // The pin moves off the previous newest allocation, un-rooting it for
  // its partition's planner.
  if (config_.pin_newest_allocation && newest_object_ != kNullObject &&
      newest_object_ != id && Exists(newest_object_)) {
    ++plan_epochs_[objects_[newest_object_].partition];
  }
  newest_object_ = id;
  TouchRange(rec.partition, rec.offset, rec.size, /*dirty=*/true,
             IoContext::kApplication);
}

void ObjectStore::ReadObject(ObjectId id) {
  const ObjectRecord& rec = object(id);
  TouchRange(rec.partition, rec.offset, rec.size, /*dirty=*/false,
             IoContext::kApplication);
}

void ObjectStore::UpdateObject(ObjectId id) {
  const ObjectRecord& rec = object(id);
  TouchRange(rec.partition, rec.offset, rec.size, /*dirty=*/true,
             IoContext::kApplication);
}

void ObjectStore::AttachInRef(ObjectId src, uint32_t slot, ObjectId target) {
  ObjectRecord& s = objects_[src];
  ObjectRecord& t = objects_[target];
  std::vector<InRef>& tin = in_refs_[target];
  const uint32_t pos = s.slot_begin + slot;
  slot_arena_[pos].backref = static_cast<uint32_t>(tin.size());
  tin.push_back(InRef{src, pos});
  // Plan inputs: the source partition's out-edges changed; a
  // cross-partition edge also changes the target's root-candidacy.
  ++plan_epochs_[s.partition];
  if (s.partition != t.partition) {
    ++t.xpart_in_refs;
    ++plan_epochs_[t.partition];
  }
}

void ObjectStore::DetachInRef(ObjectId src, uint32_t slot, ObjectId target) {
  ObjectRecord& s = objects_[src];
  ObjectRecord& t = objects_[target];
  std::vector<InRef>& tin = in_refs_[target];
  const uint32_t pos = s.slot_begin + slot;
  const uint32_t idx = slot_arena_[pos].backref;
  // Bounds are checked here (a desynced index must not swap-erase through
  // a foreign list); the deeper entry-identity invariant — tin[idx] names
  // exactly (src, pos) — is the verifier's job, keeping a random entry
  // load out of every pointer overwrite.
  ODBGC_CHECK_MSG(idx < tin.size(), "reverse index out of sync");
  ++plan_epochs_[s.partition];
  if (s.partition != t.partition) {
    ODBGC_CHECK_MSG(t.xpart_in_refs > 0, "reverse index out of sync");
    --t.xpart_in_refs;
    ++plan_epochs_[t.partition];
  }
  // Swap-erase (the in-ref list is an unordered multiset); the moved
  // entry's owning slot is patched to its new position. The entry carries
  // its arena position, so no source-header load is needed here.
  const uint32_t last = static_cast<uint32_t>(tin.size()) - 1;
  if (idx != last) {
    const InRef moved = tin[last];
    tin[idx] = moved;
    slot_arena_[moved.backref_pos].backref = idx;
  }
  tin.pop_back();
}

void ObjectStore::AddRoot(ObjectId id) {
  ODBGC_CHECK(Exists(id));
  ODBGC_CHECK(!IsRoot(id));
  roots_.push_back(id);
  ++plan_epochs_[objects_[id].partition];
}

void ObjectStore::RemoveRoot(ObjectId id) {
  auto it = std::find(roots_.begin(), roots_.end(), id);
  ODBGC_CHECK(it != roots_.end());
  // erase() preserves the relative order of the remaining roots, so only
  // the departing root's partition sees a plan-input change.
  roots_.erase(it);
  if (Exists(id)) ++plan_epochs_[objects_[id].partition];
}

bool ObjectStore::IsRoot(ObjectId id) const {
  return std::find(roots_.begin(), roots_.end(), id) != roots_.end();
}

void ObjectStore::AddExternalPin(ObjectId id) {
  ODBGC_CHECK(Exists(id));
  auto it = std::lower_bound(
      external_pins_.begin(), external_pins_.end(), id,
      [](const std::pair<ObjectId, uint32_t>& e, ObjectId v) {
        return e.first < v;
      });
  if (it != external_pins_.end() && it->first == id) {
    ++it->second;
  } else {
    external_pins_.insert(it, {id, 1u});
  }
  // The pinned object became a planning root of its partition.
  ++plan_epochs_[objects_[id].partition];
}

void ObjectStore::RemoveExternalPin(ObjectId id) {
  auto it = std::lower_bound(
      external_pins_.begin(), external_pins_.end(), id,
      [](const std::pair<ObjectId, uint32_t>& e, ObjectId v) {
        return e.first < v;
      });
  ODBGC_CHECK_MSG(it != external_pins_.end() && it->first == id,
                  "removing an external pin that was never added");
  if (--it->second == 0) external_pins_.erase(it);
  if (Exists(id)) ++plan_epochs_[objects_[id].partition];
}

bool ObjectStore::IsExternallyPinned(ObjectId id) const {
  auto it = std::lower_bound(
      external_pins_.begin(), external_pins_.end(), id,
      [](const std::pair<ObjectId, uint32_t>& e, ObjectId v) {
        return e.first < v;
      });
  return it != external_pins_.end() && it->first == id;
}

void ObjectStore::RecordGarbageCreated(uint64_t bytes, uint64_t objects) {
  garbage_created_bytes_ += bytes;
  garbage_created_objects_ += objects;
}

void ObjectStore::RecordGarbageCollected(uint64_t bytes, uint64_t objects) {
  garbage_collected_bytes_ += bytes;
  garbage_collected_objects_ += objects;
}

const Partition& ObjectStore::partition(PartitionId p) const {
  ODBGC_CHECK(p < partitions_.size());
  return partitions_[p];
}

Partition& ObjectStore::mutable_partition(PartitionId p) {
  ODBGC_CHECK(p < partitions_.size());
  return partitions_[p];
}

void ObjectStore::CommitRecordWrite(PartitionId partition, IoContext ctx) {
  ODBGC_CHECK(partition < partitions_.size());
  pool_->WriteThrough(PageId{partition, kMetaPageIndex}, ctx);
}

void ObjectStore::CommitRecordRead(PartitionId partition, IoContext ctx) {
  ODBGC_CHECK(partition < partitions_.size());
  pool_->ReadThrough(PageId{partition, kMetaPageIndex}, ctx);
}

void ObjectStore::DestroyObject(ObjectId id) {
  ObjectRecord& rec = mutable_object(id);
  ++plan_epochs_[rec.partition];
  for (uint32_t slot = 0; slot < rec.slot_count; ++slot) {
    const ObjectId target = slot_arena_[rec.slot_begin + slot].target;
    if (target == kNullObject) continue;
    // The target may itself have been destroyed earlier in this sweep.
    if (!Exists(target)) continue;
    DetachInRef(id, slot, target);
  }
  // Note: used_bytes_ is not reduced here. The object's bytes still occupy
  // from-space until the collector compacts the partition and calls
  // AdjustUsedBytes().
  --live_objects_;
  rec.exists = false;
  // The slot range is abandoned in the arenas (bump allocation).
  rec.slot_count = 0;
  in_refs_[id].clear();
  in_refs_[id].shrink_to_fit();
  rec.xpart_in_refs = 0;
}

void ObjectStore::AdjustUsedBytes(PartitionId partition, uint32_t old_used,
                                  uint32_t new_used) {
  ODBGC_CHECK(used_bytes_ + new_used >= old_used);
  used_bytes_ = used_bytes_ - old_used + new_used;
  ODBGC_CHECK(partition < partitions_.size());
  free_index_.Update(partition, partitions_[partition].free_bytes());
}

void ObjectStore::SaveState(SnapshotWriter& w) const {
  w.Tag("STOR");
  w.U64(partitions_.size());
  for (const Partition& p : partitions_) p.SaveState(w);

  // Logical per-object content in the historical (AoS) field order —
  // slots, in-ref sources, in-ref slots, slot back-references — so the
  // byte format is independent of the arena layout.
  w.U64(objects_.size());
  std::vector<uint32_t> tmp;
  for (size_t i = 0; i < objects_.size(); ++i) {
    const ObjectRecord& rec = objects_[i];
    w.Bool(rec.exists);
    if (!rec.exists) continue;
    w.U32(rec.size);
    w.U32(rec.partition);
    w.U32(rec.offset);
    tmp.clear();
    for (uint32_t j = 0; j < rec.slot_count; ++j) {
      tmp.push_back(slot_arena_[rec.slot_begin + j].target);
    }
    w.VecU32(tmp);
    const std::vector<InRef>& tin = in_refs_[i];
    tmp.clear();
    for (const InRef& ir : tin) tmp.push_back(ir.src);
    w.VecU32(tmp);
    tmp.clear();
    // Serialized as relative slot indices (the historical byte format):
    // arena positions are layout-dependent and rebuilt on restore.
    for (const InRef& ir : tin) {
      tmp.push_back(ir.backref_pos - objects_[ir.src].slot_begin);
    }
    w.VecU32(tmp);
    tmp.clear();
    for (uint32_t j = 0; j < rec.slot_count; ++j) {
      tmp.push_back(slot_arena_[rec.slot_begin + j].backref);
    }
    w.VecU32(tmp);
    w.U32(rec.xpart_in_refs);
  }

  w.VecU32(roots_);
  // External pins, already in ascending id order (sorted invariant).
  std::vector<uint32_t> pin_ids;
  std::vector<uint32_t> pin_counts;
  for (const auto& [id, count] : external_pins_) {
    pin_ids.push_back(id);
    pin_counts.push_back(count);
  }
  w.VecU32(pin_ids);
  w.VecU32(pin_counts);
  w.U32(newest_object_);
  w.U32(alloc_cursor_);
  // Quarantined partition ids, ascending (the flag vector is positional,
  // so iteration order is already sorted).
  std::vector<uint32_t> quarantined_ids;
  for (PartitionId p = 0; p < quarantined_.size(); ++p) {
    if (quarantined_[p] != 0) quarantined_ids.push_back(p);
  }
  w.VecU32(quarantined_ids);

  w.Tag("POOL");
  pool_->SaveState(w);
  w.Bool(disk_ != nullptr);
  if (disk_ != nullptr) disk_->SaveState(w);
  w.Bool(fault_ != nullptr);
  if (fault_ != nullptr) fault_->SaveState(w);

  w.Tag("CNTR");
  w.U64(used_bytes_);
  w.U64(live_objects_);
  w.U64(pointer_overwrites_);
  w.U64(allocated_bytes_total_);
  w.U64(garbage_created_bytes_);
  w.U64(garbage_created_objects_);
  w.U64(garbage_collected_bytes_);
  w.U64(garbage_collected_objects_);
}

void ObjectStore::RestoreState(SnapshotReader& r) {
  r.Tag("STOR");
  const uint64_t part_count = r.U64();
  if (!r.ok()) return;
  partitions_.clear();
  free_index_ = FreeSpaceIndex();
  for (uint64_t i = 0; i < part_count && r.ok(); ++i) {
    partitions_.emplace_back(static_cast<PartitionId>(i),
                             config_.partition_bytes);
    partitions_.back().RestoreState(r);
    free_index_.PushPartition(partitions_.back().free_bytes());
  }
  // Fresh epochs under a fresh serial: any collector plan cache keyed on
  // the pre-restore serial goes cold rather than matching epoch 0.
  plan_epochs_.assign(partitions_.size(), 0);
  serial_ = ++g_store_serial;

  const uint64_t obj_count = r.U64();
  if (!r.ok()) return;
  objects_.clear();
  objects_.resize(static_cast<size_t>(obj_count));
  in_refs_.clear();
  in_refs_.resize(static_cast<size_t>(obj_count));
  slot_arena_.clear();
  for (uint64_t i = 0; i < obj_count && r.ok(); ++i) {
    ObjectRecord& rec = objects_[i];
    rec.exists = r.Bool();
    if (!rec.exists) continue;
    rec.size = r.U32();
    rec.partition = r.U32();
    rec.offset = r.U32();
    const std::vector<uint32_t> slots = r.VecU32();
    const std::vector<uint32_t> srcs = r.VecU32();
    const std::vector<uint32_t> src_slots = r.VecU32();
    const std::vector<uint32_t> backrefs = r.VecU32();
    rec.xpart_in_refs = r.U32();
    if (!r.ok()) return;
    if (srcs.size() != src_slots.size() || backrefs.size() != slots.size()) {
      r.MarkMalformed("object reverse-index arrays disagree");
      return;
    }
    rec.slot_begin = static_cast<uint32_t>(slot_arena_.size());
    rec.slot_count = static_cast<uint32_t>(slots.size());
    for (size_t k = 0; k < slots.size(); ++k) {
      slot_arena_.push_back(Slot{slots[k], backrefs[k]});
    }
    std::vector<InRef>& tin = in_refs_[i];
    tin.clear();
    tin.reserve(srcs.size());
    for (size_t k = 0; k < srcs.size(); ++k) {
      // backref_pos temporarily holds the relative slot; the fixup pass
      // below resolves it once every source's slot_begin is known.
      tin.push_back(InRef{srcs[k], src_slots[k]});
    }
  }
  // Fixup: resolve relative slot indices to arena positions. Sources with
  // ids above the owner are not yet placed during the loop above, so this
  // must run after every header's slot_begin is final.
  for (uint64_t i = 0; i < obj_count && r.ok(); ++i) {
    for (InRef& ir : in_refs_[i]) {
      if (ir.src < objects_.size() && objects_[ir.src].exists) {
        ir.backref_pos += objects_[ir.src].slot_begin;
      }
    }
  }

  roots_ = r.VecU32();
  {
    std::vector<uint32_t> pin_ids = r.VecU32();
    std::vector<uint32_t> pin_counts = r.VecU32();
    if (pin_counts.size() != pin_ids.size()) {
      r.MarkMalformed("external pin id/count length mismatch");
      return;
    }
    external_pins_.clear();
    for (size_t i = 0; i < pin_ids.size(); ++i) {
      if (i > 0 && pin_ids[i] <= pin_ids[i - 1]) {
        r.MarkMalformed("external pins not strictly ascending");
        return;
      }
      if (pin_counts[i] == 0) {
        r.MarkMalformed("external pin with zero count");
        return;
      }
      external_pins_.emplace_back(pin_ids[i], pin_counts[i]);
    }
  }
  newest_object_ = r.U32();
  alloc_cursor_ = r.U32();
  quarantined_.clear();
  quarantined_count_ = 0;
  for (uint32_t p : r.VecU32()) {
    if (p >= partitions_.size()) {
      r.MarkMalformed("quarantined partition out of range");
      return;
    }
    if (quarantined_.size() < partitions_.size()) {
      quarantined_.resize(partitions_.size(), 0);
    }
    quarantined_[p] = 1;
    ++quarantined_count_;
    free_index_.Update(p, 0);
  }

  r.Tag("POOL");
  pool_->RestoreState(r);
  if (r.Bool()) {
    if (disk_ == nullptr) {
      r.MarkMalformed("snapshot has disk-model state but timing is off");
      return;
    }
    disk_->RestoreState(r);
  }
  if (r.Bool()) {
    if (fault_ == nullptr) {
      r.MarkMalformed("snapshot has fault-injector state but faults are off");
      return;
    }
    fault_->RestoreState(r);
  }

  r.Tag("CNTR");
  used_bytes_ = r.U64();
  live_objects_ = r.U64();
  pointer_overwrites_ = r.U64();
  allocated_bytes_total_ = r.U64();
  garbage_created_bytes_ = r.U64();
  garbage_created_objects_ = r.U64();
  garbage_collected_bytes_ = r.U64();
  garbage_collected_objects_ = r.U64();
}

}  // namespace odbgc
