#ifndef ODBGC_STORAGE_FREE_SPACE_INDEX_H_
#define ODBGC_STORAGE_FREE_SPACE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace odbgc {

// Incrementally maintained first-fit index over partition free space.
//
// The store's allocation path needs "the lowest-id partition with at
// least `size` free bytes" (space freed by collections is reused before
// the database grows, and placement must stay byte-identical to the
// historical linear scan). A flat max-segment-tree over the per-partition
// free bytes answers that in O(log P) — descend left-first, so the
// leftmost qualifying leaf is found — and costs O(log P) to maintain on
// every allocation / compaction, instead of the O(P) first-fit scan per
// allocation it replaces.
class FreeSpaceIndex {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  // Appends a partition (ids are dense and append-only).
  void PushPartition(uint32_t free_bytes);

  // Updates partition `p`'s free bytes after an allocation or compaction.
  void Update(uint32_t p, uint32_t free_bytes);

  // Lowest partition id with free bytes >= size, or kNotFound. Matches
  // first-fit exactly: the linear scan would return the same partition.
  uint32_t FirstFit(uint32_t size) const;

  // Indexed free bytes of `p` (the heap verifier cross-checks this
  // against the partition's actual free_bytes()).
  uint32_t FreeBytesAt(uint32_t p) const { return tree_[leaves_ + p]; }

  size_t size() const { return count_; }

 private:
  // 1-based implicit binary tree; leaves occupy [leaves_, 2*leaves_).
  // Internal nodes hold the max free bytes of their subtree; unused
  // leaves hold 0 so they can never satisfy a fit (allocations are > 0).
  std::vector<uint32_t> tree_;
  size_t leaves_ = 0;
  size_t count_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_FREE_SPACE_INDEX_H_
