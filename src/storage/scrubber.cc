#include "storage/scrubber.h"

namespace odbgc {

ScrubReport Scrubber::ScrubQuantum(ObjectStore& store, uint32_t budget) {
  ScrubReport report;
  const size_t partition_count = store.partition_count();
  if (partition_count == 0 || budget == 0) return report;
  if (part_ >= partition_count) {
    part_ = 0;
    page_ = 0;
  }

  BufferPool& pool = store.buffer_pool();
  const size_t pending_before = pool.pending_corruption_count();
  const uint32_t page_bytes = store.config().page_bytes;
  pool.SetScrubbing(true);
  // Bound the walk: `budget` media reads plus at most one full lap of
  // partition advances (skipping empty/quarantined ones costs no budget).
  size_t advances = 0;
  while (report.pages_scrubbed < budget && advances <= partition_count) {
    const Partition& part = store.partition(part_);
    const uint32_t used_pages =
        static_cast<uint32_t>((static_cast<uint64_t>(part.used()) +
                               page_bytes - 1) /
                              page_bytes);
    if (store.IsQuarantined(part_) || page_ >= used_pages) {
      part_ = static_cast<PartitionId>((part_ + 1) % partition_count);
      page_ = 0;
      ++advances;
      continue;
    }
    pool.ReadThrough(PageId{part_, page_}, IoContext::kCollector);
    ++report.pages_scrubbed;
    ++page_;
  }
  pool.SetScrubbing(false);
  report.corruption_found =
      pool.pending_corruption_count() - pending_before;
  return report;
}

void Scrubber::SaveState(SnapshotWriter& w) const {
  w.U32(part_);
  w.U32(page_);
}

void Scrubber::RestoreState(SnapshotReader& r) {
  part_ = r.U32();
  page_ = r.U32();
}

}  // namespace odbgc
