#include "storage/reachability.h"

namespace odbgc {

void ScanReachabilityInto(const ObjectStore& store, ReachabilityResult* result,
                          ReachabilityScratch* scratch) {
  ReachabilityScratch local;
  if (scratch == nullptr) scratch = &local;
  std::vector<ObjectId>& worklist = scratch->worklist;
  worklist.clear();

  result->reachable_bytes = 0;
  result->reachable_objects = 0;
  result->unreachable_bytes = 0;
  result->unreachable_objects = 0;
  result->reachable.assign(store.max_object_id() + 1, false);

  for (ObjectId root : store.roots()) {
    if (!result->reachable[root]) {
      result->reachable[root] = true;
      worklist.push_back(root);
    }
  }
  // Breadth-first via a head cursor — one growable buffer, no per-node
  // deque block traffic.
  for (size_t head = 0; head < worklist.size(); ++head) {
    ObjectId id = worklist[head];
    const ObjectRecord& rec = store.object(id);
    result->reachable_bytes += rec.size;
    ++result->reachable_objects;
    for (ObjectId target : rec.slots) {
      if (target != kNullObject && !result->reachable[target]) {
        result->reachable[target] = true;
        worklist.push_back(target);
      }
    }
  }
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (store.Exists(id) && !result->reachable[id]) {
      result->unreachable_bytes += store.object(id).size;
      ++result->unreachable_objects;
    }
  }
}

ReachabilityResult ScanReachability(const ObjectStore& store,
                                    ReachabilityScratch* scratch) {
  ReachabilityResult result;
  ScanReachabilityInto(store, &result, scratch);
  return result;
}

uint64_t UnreachableBytesInPartition(const ObjectStore& store,
                                     const ReachabilityResult& scan,
                                     PartitionId p) {
  uint64_t bytes = 0;
  for (ObjectId id : store.partition(p).objects()) {
    if (store.Exists(id) && !scan.reachable[id]) {
      bytes += store.object(id).size;
    }
  }
  return bytes;
}

}  // namespace odbgc
