#include "storage/reachability.h"

#include <deque>

namespace odbgc {

ReachabilityResult ScanReachability(const ObjectStore& store) {
  ReachabilityResult result;
  result.reachable.assign(store.max_object_id() + 1, false);
  std::deque<ObjectId> queue;
  for (ObjectId root : store.roots()) {
    if (!result.reachable[root]) {
      result.reachable[root] = true;
      queue.push_back(root);
    }
  }
  while (!queue.empty()) {
    ObjectId id = queue.front();
    queue.pop_front();
    const ObjectRecord& rec = store.object(id);
    result.reachable_bytes += rec.size;
    ++result.reachable_objects;
    for (ObjectId target : rec.slots) {
      if (target != kNullObject && !result.reachable[target]) {
        result.reachable[target] = true;
        queue.push_back(target);
      }
    }
  }
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (store.Exists(id) && !result.reachable[id]) {
      result.unreachable_bytes += store.object(id).size;
      ++result.unreachable_objects;
    }
  }
  return result;
}

uint64_t UnreachableBytesInPartition(const ObjectStore& store,
                                     const ReachabilityResult& scan,
                                     PartitionId p) {
  uint64_t bytes = 0;
  for (ObjectId id : store.partition(p).objects()) {
    if (store.Exists(id) && !scan.reachable[id]) {
      bytes += store.object(id).size;
    }
  }
  return bytes;
}

}  // namespace odbgc
