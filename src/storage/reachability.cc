#include "storage/reachability.h"

namespace odbgc {

void ScanReachabilityInto(const ObjectStore& store, ReachabilityResult* result,
                          ReachabilityScratch* scratch) {
  ReachabilityScratch local;
  if (scratch == nullptr) scratch = &local;
  std::vector<ObjectId>& worklist = scratch->worklist;
  worklist.clear();

  result->reachable_bytes = 0;
  result->reachable_objects = 0;
  result->unreachable_bytes = 0;
  result->unreachable_objects = 0;
  MarkBitmap& reachable = result->reachable;
  reachable.Reset(store.max_object_id() + 1);

  for (ObjectId root : store.roots()) {
    if (reachable.TestAndSet(root)) worklist.push_back(root);
  }
  // Externally pinned objects are live by remote reference (the
  // cross-shard remembered set); the scanner mirrors the collector.
  for (const auto& [pinned, count] : store.external_pins()) {
    (void)count;
    if (store.Exists(pinned) && reachable.TestAndSet(pinned)) {
      worklist.push_back(pinned);
    }
  }
  // Breadth-first via a head cursor — one growable buffer, no per-node
  // deque block traffic.
  const ObjectRecord* headers = store.header_arena();
  const Slot* slot_arena = store.slot_arena();
  for (size_t head = 0; head < worklist.size(); ++head) {
    ObjectId id = worklist[head];
    const ObjectRecord& rec = store.object(id);
    result->reachable_bytes += rec.size;
    ++result->reachable_objects;
    const Slot* slots = slot_arena + rec.slot_begin;
    for (uint32_t i = 0; i < rec.slot_count; ++i) {
      const ObjectId target = slots[i].target;
      if (target != kNullObject) {
        // The header is needed (size) when the target is first visited;
        // the load misses for cold ids, so start it under the bitmap test.
        __builtin_prefetch(&headers[target]);
        if (reachable.TestAndSet(target)) worklist.push_back(target);
      }
    }
  }
  // Unreachable accounting: ctz-iterate the clear bits, skipping fully
  // marked words 64 ids at a time.
  uint64_t unreachable_bytes = 0;
  uint64_t unreachable_objects = 0;
  reachable.ForEachClearBelow(
      store.max_object_id() + 1, [&](size_t id) {
        if (id != 0 && headers[id].exists) {
          unreachable_bytes += headers[id].size;
          ++unreachable_objects;
        }
      });
  result->unreachable_bytes = unreachable_bytes;
  result->unreachable_objects = unreachable_objects;
}

ReachabilityResult ScanReachability(const ObjectStore& store,
                                    ReachabilityScratch* scratch) {
  ReachabilityResult result;
  ScanReachabilityInto(store, &result, scratch);
  return result;
}

uint64_t UnreachableBytesInPartition(const ObjectStore& store,
                                     const ReachabilityResult& scan,
                                     PartitionId p) {
  uint64_t bytes = 0;
  for (ObjectId id : store.partition(p).objects()) {
    if (store.Exists(id) && !scan.reachable[id]) {
      bytes += store.object(id).size;
    }
  }
  return bytes;
}

}  // namespace odbgc
