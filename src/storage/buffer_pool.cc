#include "storage/buffer_pool.h"

#include "util/check.h"

namespace odbgc {

BufferPool::BufferPool(uint32_t frame_count) : frame_count_(frame_count) {
  ODBGC_CHECK(frame_count > 0);
}

void BufferPool::CountRead(PageId page, IoContext ctx) {
  if (ctx == IoContext::kApplication) {
    ++stats_.app_reads;
  } else {
    ++stats_.gc_reads;
  }
  if (disk_ != nullptr) disk_->OnTransfer(page, ctx);
}

void BufferPool::CountWrite(PageId page, IoContext ctx) {
  if (ctx == IoContext::kApplication) {
    ++stats_.app_writes;
  } else {
    ++stats_.gc_writes;
  }
  if (disk_ != nullptr) disk_->OnTransfer(page, ctx);
}

void BufferPool::Access(PageId page, bool dirty, IoContext ctx) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++hits_;
    // Move to front of LRU; merge dirtiness.
    it->second->dirty = it->second->dirty || dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++misses_;
  CountRead(page, ctx);
  if (lru_.size() >= frame_count_) {
    Frame& victim = lru_.back();
    if (victim.dirty) CountWrite(victim.page, ctx);
    map_.erase(victim.page);
    lru_.pop_back();
  }
  lru_.push_front(Frame{page, dirty});
  map_[page] = lru_.begin();
}

void BufferPool::DropPartitionTail(PartitionId partition,
                                   uint32_t first_dropped) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->page.partition == partition &&
        it->page.page_index >= first_dropped) {
      map_.erase(it->page);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferPool::FlushAll(IoContext ctx) {
  for (auto& frame : lru_) {
    if (frame.dirty) {
      CountWrite(frame.page, ctx);
      frame.dirty = false;
    }
  }
}

}  // namespace odbgc
