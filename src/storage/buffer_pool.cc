#include "storage/buffer_pool.h"

#include <algorithm>

#include "util/check.h"

namespace odbgc {

const char* CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kChecksum:
      return "checksum";
    case CorruptionKind::kDeviceFault:
      return "device-fault";
    case CorruptionKind::kScrub:
      return "scrub";
  }
  return "unknown";
}

BufferPool::BufferPool(uint32_t frame_count,
                       uint32_t pages_per_partition_hint)
    : frame_count_(frame_count), pages_hint_(pages_per_partition_hint) {
  ODBGC_CHECK(frame_count > 0);
  frames_.resize(frame_count);
  ResetFreeList();
}

void BufferPool::ResetFreeList() {
  for (uint32_t i = 0; i < frame_count_; ++i) {
    frames_[i].next = i + 1 < frame_count_ ? static_cast<int32_t>(i + 1)
                                           : kNoFrame;
    frames_[i].prev = kNoFrame;
  }
  free_head_ = 0;
  lru_head_ = kNoFrame;
  lru_tail_ = kNoFrame;
  resident_ = 0;
}

void BufferPool::AttachTelemetry(obs::Telemetry* telemetry) {
  tel_ = telemetry;
  if (tel_ == nullptr) return;
  obs::MetricsRegistry& m = tel_->metrics();
  tc_.reads_app = m.GetCounter("storage.page_reads.app");
  tc_.reads_gc = m.GetCounter("storage.page_reads.gc");
  tc_.writes_app = m.GetCounter("storage.page_writes.app");
  tc_.writes_gc = m.GetCounter("storage.page_writes.gc");
  tc_.hits = m.GetCounter("storage.buffer.hits");
  tc_.misses = m.GetCounter("storage.buffer.misses");
  tc_.evictions = m.GetCounter("storage.buffer.evictions");
  tc_.fault_retries = m.GetCounter("storage.fault.retries");
  tc_.fault_permanent = m.GetCounter("storage.fault.permanent_failures");
  tc_.torn_writes = m.GetCounter("storage.fault.torn_writes");
  tc_.torn_repairs = m.GetCounter("storage.fault.torn_repairs");
  tc_.checksum_failures = m.GetCounter("storage.checksum_failures");
  tc_.bitflips = m.GetCounter("storage.fault.bitflips");
  tc_.device_faults = m.GetCounter("storage.fault.device_faults");
  tc_.fault_retry_stall = m.GetHistogram("stall.fault_retry_io");
}

void BufferPool::RecordTransfer(PageId page, IoContext ctx, bool is_write) {
  const bool app = ctx == IoContext::kApplication;
  uint64_t& counter = is_write ? (app ? stats_.app_writes : stats_.gc_writes)
                               : (app ? stats_.app_reads : stats_.gc_reads);
  ++counter;
  if (disk_ != nullptr) disk_->OnTransfer(page, ctx);
  ODBGC_IF_TEL(tel_) {
    tel_->Advance();  // one logical microsecond per physical transfer
    (is_write ? (app ? tc_.writes_app : tc_.writes_gc)
              : (app ? tc_.reads_app : tc_.reads_gc))
        ->Increment();
    if (tel_->page_events()) {
      tel_->Instant(is_write ? "page_write" : "page_read",
                    {{"partition", page.partition},
                     {"page", page.page_index},
                     {"ctx", app ? "app" : "gc"}});
    }
  }
  if (fault_ == nullptr) return;

  FaultOutcome outcome =
      is_write ? fault_->OnWrite(page) : fault_->OnRead(page);
  if (outcome.retries > 0) {
    // Each retry is a real transfer: charge the issuing context's main
    // counter (the policies' I/O clocks must see the cost) and the retry
    // breakout, plus exponential backoff in the disk-time model.
    counter += outcome.retries;
    (app ? stats_.app_retries : stats_.gc_retries) += outcome.retries;
    if (disk_ != nullptr) {
      double backoff = fault_->plan().retry_backoff_ms;
      for (uint32_t i = 0; i < outcome.retries; ++i) {
        disk_->OnTransfer(page, ctx);
        disk_->AddDelay(ctx, backoff);
        backoff *= 2.0;
      }
    }
  }
  if (outcome.permanent) {
    ++(is_write ? stats_.write_failures : stats_.read_failures);
  }
  if (outcome.torn) ++stats_.torn_writes;
  if (outcome.repaired_tear) {
    // The read detected a torn page: rewrite it from redundancy. The
    // repair write is charged to the reader but not re-faulted.
    ++stats_.torn_repairs;
    ++(app ? stats_.app_writes : stats_.gc_writes);
    if (disk_ != nullptr) disk_->OnTransfer(page, ctx);
  }
  if (outcome.bitflipped) ++stats_.bitflips;
  if (outcome.decay_armed) ++stats_.decays_armed;
  if (outcome.corrupt) {
    // Page CRC mismatch. There is no in-page redundancy to rewrite from,
    // so unlike a tear this is not absorbed here: the detection is queued
    // for the simulation to quarantine the partition and run repair.
    ++stats_.checksum_failures;
    pending_corruption_.push_back(
        {page, scrubbing_ ? CorruptionKind::kScrub
                          : CorruptionKind::kChecksum});
  }
  if (outcome.dead) {
    ++stats_.device_faults;
    pending_corruption_.push_back({page, CorruptionKind::kDeviceFault});
  }
  ODBGC_IF_TEL(tel_) {
    if (outcome.retries > 0) {
      tel_->Advance(outcome.retries);  // retries are real transfers
      tc_.fault_retries->Add(outcome.retries);
      if (app) tc_.fault_retry_stall->Record(outcome.retries);
      tel_->Instant("fault_retry", {{"partition", page.partition},
                                    {"page", page.page_index},
                                    {"retries", outcome.retries},
                                    {"permanent", outcome.permanent ? 1 : 0}});
    }
    if (outcome.permanent) tc_.fault_permanent->Increment();
    if (outcome.torn) tc_.torn_writes->Increment();
    if (outcome.repaired_tear) {
      tel_->Advance();  // the repair write
      tc_.torn_repairs->Increment();
      (app ? tc_.writes_app : tc_.writes_gc)->Increment();
    }
    if (outcome.bitflipped) tc_.bitflips->Increment();
    if (outcome.corrupt) tc_.checksum_failures->Increment();
    if (outcome.dead) tc_.device_faults->Increment();
  }
}

int32_t BufferPool::Lookup(PageId page) const {
  if (page.partition >= table_partitions_ || page.page_index >= row_stride_) {
    return kNoFrame;
  }
  return table_[static_cast<size_t>(page.partition) * row_stride_ +
                page.page_index];
}

void BufferPool::GrowTable(PageId page) {
  uint32_t new_stride = row_stride_;
  if (page.page_index >= new_stride) {
    new_stride = page.page_index + 1;
    if (new_stride < pages_hint_) new_stride = pages_hint_;
    if (new_stride < row_stride_ * 2) new_stride = row_stride_ * 2;
  }
  uint32_t new_parts = table_partitions_;
  if (page.partition >= new_parts) new_parts = page.partition + 1;
  if (new_stride != row_stride_) {
    std::vector<int32_t> grown(static_cast<size_t>(new_parts) * new_stride,
                               kNoFrame);
    for (uint32_t p = 0; p < table_partitions_; ++p) {
      std::copy_n(table_.begin() + static_cast<size_t>(p) * row_stride_,
                  row_stride_,
                  grown.begin() + static_cast<size_t>(p) * new_stride);
    }
    table_ = std::move(grown);
    row_stride_ = new_stride;
  } else if (new_parts != table_partitions_) {
    table_.resize(static_cast<size_t>(new_parts) * row_stride_, kNoFrame);
  }
  table_partitions_ = new_parts;
}

void BufferPool::ReleaseFrame(int32_t f) {
  ClearSlot(frames_[f].page);
  Unlink(f);
  frames_[f].next = free_head_;
  frames_[f].prev = kNoFrame;
  free_head_ = f;
  --resident_;
}

void BufferPool::Pin(PageId page) {
  const int32_t f = Lookup(page);
  ODBGC_CHECK_MSG(f != kNoFrame, "Pin of a non-resident page");
  if (frames_[f].pins++ == 0) ++pinned_pages_;
}

void BufferPool::Unpin(PageId page) {
  const int32_t f = Lookup(page);
  ODBGC_CHECK_MSG(f != kNoFrame, "Unpin of a non-resident page");
  ODBGC_CHECK_MSG(frames_[f].pins > 0, "Unpin without a matching Pin");
  if (--frames_[f].pins == 0) --pinned_pages_;
}

void BufferPool::DropPartitionTail(PartitionId partition,
                                   uint32_t first_dropped) {
  for (int32_t f = lru_head_; f != kNoFrame;) {
    const int32_t next = frames_[f].next;
    if (frames_[f].page.partition == partition &&
        frames_[f].page.page_index >= first_dropped) {
      ODBGC_CHECK_MSG(frames_[f].pins == 0, "dropping a pinned page");
      ReleaseFrame(f);
    }
    f = next;
  }
  // The tail's media content is discarded along with the frames: pending
  // tears / corruption / decay on those pages are moot now.
  if (fault_ != nullptr) fault_->ForgetTail(partition, first_dropped);
}

void BufferPool::FlushAll(IoContext ctx) {
  // MRU -> LRU order (matters: the disk model's sequential/random
  // classification depends on transfer order).
  for (int32_t f = lru_head_; f != kNoFrame; f = frames_[f].next) {
    if (frames_[f].dirty) {
      CountWrite(frames_[f].page, ctx);
      frames_[f].dirty = false;
    }
  }
}

void BufferPool::FlushPartition(PartitionId partition, IoContext ctx) {
  for (int32_t f = lru_head_; f != kNoFrame; f = frames_[f].next) {
    if (frames_[f].dirty && frames_[f].page.partition == partition) {
      CountWrite(frames_[f].page, ctx);
      frames_[f].dirty = false;
    }
  }
}

void BufferPool::SaveState(SnapshotWriter& w) const {
  ODBGC_CHECK_MSG(pinned_pages_ == 0,
                  "checkpoint with pinned buffer pages");
  // Resident pages, MRU -> LRU.
  w.U64(resident_);
  for (int32_t f = lru_head_; f != kNoFrame; f = frames_[f].next) {
    w.U32(frames_[f].page.partition);
    w.U32(frames_[f].page.page_index);
    w.Bool(frames_[f].dirty);
  }
  w.U64(stats_.app_reads);
  w.U64(stats_.app_writes);
  w.U64(stats_.gc_reads);
  w.U64(stats_.gc_writes);
  w.U64(stats_.app_retries);
  w.U64(stats_.gc_retries);
  w.U64(stats_.read_failures);
  w.U64(stats_.write_failures);
  w.U64(stats_.torn_writes);
  w.U64(stats_.torn_repairs);
  w.U64(stats_.checksum_failures);
  w.U64(stats_.bitflips);
  w.U64(stats_.decays_armed);
  w.U64(stats_.device_faults);
  w.U64(hits_);
  w.U64(misses_);
  // Undrained detections (normally empty: the simulation drains the
  // queue before every checkpoint boundary).
  w.U64(pending_corruption_.size());
  for (const CorruptionEvent& e : pending_corruption_) {
    w.U32(e.page.partition);
    w.U32(e.page.page_index);
    w.U8(static_cast<uint8_t>(e.kind));
  }
}

void BufferPool::RestoreState(SnapshotReader& r) {
  // Drop whatever the fresh pool holds, then rebuild the LRU list by
  // inserting the saved pages LRU-first: after the loop the head/tail
  // order matches the checkpointed pool exactly.
  ResetFreeList();
  std::fill(table_.begin(), table_.end(), kNoFrame);
  pinned_pages_ = 0;
  const uint64_t n = r.U64();
  if (!r.ok() || n > frame_count_) return;
  std::vector<Frame> saved(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    saved[i].page = PageId{r.U32(), r.U32()};
    saved[i].dirty = r.Bool();
  }
  if (!r.ok()) return;
  for (size_t i = saved.size(); i-- > 0;) {
    const int32_t fresh = free_head_;
    free_head_ = frames_[fresh].next;
    frames_[fresh].page = saved[i].page;
    frames_[fresh].dirty = saved[i].dirty;
    frames_[fresh].pins = 0;
    PushFront(fresh);
    SetSlot(saved[i].page, fresh);
    ++resident_;
  }
  stats_.app_reads = r.U64();
  stats_.app_writes = r.U64();
  stats_.gc_reads = r.U64();
  stats_.gc_writes = r.U64();
  stats_.app_retries = r.U64();
  stats_.gc_retries = r.U64();
  stats_.read_failures = r.U64();
  stats_.write_failures = r.U64();
  stats_.torn_writes = r.U64();
  stats_.torn_repairs = r.U64();
  stats_.checksum_failures = r.U64();
  stats_.bitflips = r.U64();
  stats_.decays_armed = r.U64();
  stats_.device_faults = r.U64();
  hits_ = r.U64();
  misses_ = r.U64();
  pending_corruption_.clear();
  const uint64_t pending = r.U64();
  for (uint64_t i = 0; i < pending && r.ok(); ++i) {
    CorruptionEvent e;
    e.page = PageId{r.U32(), r.U32()};
    e.kind = static_cast<CorruptionKind>(r.U8());
    pending_corruption_.push_back(e);
  }
}

size_t BufferPool::DiscardAll() {
  size_t dirty = 0;
  for (int32_t f = lru_head_; f != kNoFrame; f = frames_[f].next) {
    if (frames_[f].dirty) ++dirty;
    ClearSlot(frames_[f].page);
    frames_[f].pins = 0;
  }
  ResetFreeList();
  pinned_pages_ = 0;
  return dirty;
}

}  // namespace odbgc
