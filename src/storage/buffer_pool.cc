#include "storage/buffer_pool.h"

#include "util/check.h"

namespace odbgc {

BufferPool::BufferPool(uint32_t frame_count) : frame_count_(frame_count) {
  ODBGC_CHECK(frame_count > 0);
}

void BufferPool::AttachTelemetry(obs::Telemetry* telemetry) {
  tel_ = telemetry;
  if (tel_ == nullptr) return;
  obs::MetricsRegistry& m = tel_->metrics();
  tc_.reads_app = m.GetCounter("storage.page_reads.app");
  tc_.reads_gc = m.GetCounter("storage.page_reads.gc");
  tc_.writes_app = m.GetCounter("storage.page_writes.app");
  tc_.writes_gc = m.GetCounter("storage.page_writes.gc");
  tc_.hits = m.GetCounter("storage.buffer.hits");
  tc_.misses = m.GetCounter("storage.buffer.misses");
  tc_.evictions = m.GetCounter("storage.buffer.evictions");
  tc_.fault_retries = m.GetCounter("storage.fault.retries");
  tc_.fault_permanent = m.GetCounter("storage.fault.permanent_failures");
  tc_.torn_writes = m.GetCounter("storage.fault.torn_writes");
  tc_.torn_repairs = m.GetCounter("storage.fault.torn_repairs");
}

void BufferPool::RecordTransfer(PageId page, IoContext ctx, bool is_write) {
  const bool app = ctx == IoContext::kApplication;
  uint64_t& counter = is_write ? (app ? stats_.app_writes : stats_.gc_writes)
                               : (app ? stats_.app_reads : stats_.gc_reads);
  ++counter;
  if (disk_ != nullptr) disk_->OnTransfer(page, ctx);
  ODBGC_IF_TEL(tel_) {
    tel_->Advance();  // one logical microsecond per physical transfer
    (is_write ? (app ? tc_.writes_app : tc_.writes_gc)
              : (app ? tc_.reads_app : tc_.reads_gc))
        ->Increment();
    if (tel_->page_events()) {
      tel_->Instant(is_write ? "page_write" : "page_read",
                    {{"partition", page.partition},
                     {"page", page.page_index},
                     {"ctx", app ? "app" : "gc"}});
    }
  }
  if (fault_ == nullptr) return;

  FaultOutcome outcome =
      is_write ? fault_->OnWrite(page) : fault_->OnRead(page);
  if (outcome.retries > 0) {
    // Each retry is a real transfer: charge the issuing context's main
    // counter (the policies' I/O clocks must see the cost) and the retry
    // breakout, plus exponential backoff in the disk-time model.
    counter += outcome.retries;
    (app ? stats_.app_retries : stats_.gc_retries) += outcome.retries;
    if (disk_ != nullptr) {
      double backoff = fault_->plan().retry_backoff_ms;
      for (uint32_t i = 0; i < outcome.retries; ++i) {
        disk_->OnTransfer(page, ctx);
        disk_->AddDelay(ctx, backoff);
        backoff *= 2.0;
      }
    }
  }
  if (outcome.permanent) {
    ++(is_write ? stats_.write_failures : stats_.read_failures);
  }
  if (outcome.torn) ++stats_.torn_writes;
  if (outcome.repaired_tear) {
    // The read detected a torn page: rewrite it from redundancy. The
    // repair write is charged to the reader but not re-faulted.
    ++stats_.torn_repairs;
    ++(app ? stats_.app_writes : stats_.gc_writes);
    if (disk_ != nullptr) disk_->OnTransfer(page, ctx);
  }
  ODBGC_IF_TEL(tel_) {
    if (outcome.retries > 0) {
      tel_->Advance(outcome.retries);  // retries are real transfers
      tc_.fault_retries->Add(outcome.retries);
      tel_->Instant("fault_retry", {{"partition", page.partition},
                                    {"page", page.page_index},
                                    {"retries", outcome.retries},
                                    {"permanent", outcome.permanent ? 1 : 0}});
    }
    if (outcome.permanent) tc_.fault_permanent->Increment();
    if (outcome.torn) tc_.torn_writes->Increment();
    if (outcome.repaired_tear) {
      tel_->Advance();  // the repair write
      tc_.torn_repairs->Increment();
      (app ? tc_.writes_app : tc_.writes_gc)->Increment();
    }
  }
}

void BufferPool::CountRead(PageId page, IoContext ctx) {
  RecordTransfer(page, ctx, /*is_write=*/false);
}

void BufferPool::CountWrite(PageId page, IoContext ctx) {
  RecordTransfer(page, ctx, /*is_write=*/true);
}

void BufferPool::Access(PageId page, bool dirty, IoContext ctx) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++hits_;
    ODBGC_IF_TEL(tel_) { tc_.hits->Increment(); }
    // Move to front of LRU; merge dirtiness.
    it->second->dirty = it->second->dirty || dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++misses_;
  ODBGC_IF_TEL(tel_) { tc_.misses->Increment(); }
  CountRead(page, ctx);
  if (lru_.size() >= frame_count_) {
    // Evict the least recently used unpinned frame.
    auto victim = lru_.end();
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      if (rit->pins == 0) {
        victim = std::prev(rit.base());
        break;
      }
    }
    ODBGC_CHECK_MSG(victim != lru_.end(),
                    "every buffer frame is pinned; cannot evict");
    if (victim->dirty) CountWrite(victim->page, ctx);
    ODBGC_IF_TEL(tel_) { tc_.evictions->Increment(); }
    map_.erase(victim->page);
    lru_.erase(victim);
  }
  lru_.push_front(Frame{page, dirty, 0});
  map_[page] = lru_.begin();
}

void BufferPool::Pin(PageId page) {
  auto it = map_.find(page);
  ODBGC_CHECK_MSG(it != map_.end(), "Pin of a non-resident page");
  if (it->second->pins++ == 0) ++pinned_pages_;
}

void BufferPool::Unpin(PageId page) {
  auto it = map_.find(page);
  ODBGC_CHECK_MSG(it != map_.end(), "Unpin of a non-resident page");
  ODBGC_CHECK_MSG(it->second->pins > 0, "Unpin without a matching Pin");
  if (--it->second->pins == 0) --pinned_pages_;
}

void BufferPool::DropPartitionTail(PartitionId partition,
                                   uint32_t first_dropped) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->page.partition == partition &&
        it->page.page_index >= first_dropped) {
      ODBGC_CHECK_MSG(it->pins == 0, "dropping a pinned page");
      map_.erase(it->page);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferPool::FlushAll(IoContext ctx) {
  for (auto& frame : lru_) {
    if (frame.dirty) {
      CountWrite(frame.page, ctx);
      frame.dirty = false;
    }
  }
}

void BufferPool::FlushPartition(PartitionId partition, IoContext ctx) {
  for (auto& frame : lru_) {
    if (frame.dirty && frame.page.partition == partition) {
      CountWrite(frame.page, ctx);
      frame.dirty = false;
    }
  }
}

size_t BufferPool::DiscardAll() {
  size_t dirty = 0;
  for (const auto& frame : lru_) {
    if (frame.dirty) ++dirty;
  }
  lru_.clear();
  map_.clear();
  pinned_pages_ = 0;
  return dirty;
}

}  // namespace odbgc
