#ifndef ODBGC_STORAGE_DISK_MODEL_H_
#define ODBGC_STORAGE_DISK_MODEL_H_

#include <cstdint>

#include "storage/types.h"
#include "util/snapshot.h"

namespace odbgc {

// Physical parameters of the simulated disk. Defaults approximate a
// mid-1990s SCSI drive, the hardware class of the paper's era: ~8 ms
// average seek, ~4 ms half-rotation, ~10 MB/s media transfer.
struct DiskParams {
  double seek_ms = 8.0;
  double rotational_ms = 4.0;
  double transfer_mb_per_s = 10.0;
};

// Service-time model for page transfers. The paper evaluates policies by
// I/O *operation counts*; this optional model (in the spirit of the
// CWZ93 simulation system the paper builds on) converts those operations
// into elapsed time, distinguishing sequential transfers (no seek — the
// collector's partition scans benefit) from random ones.
//
// Pages map to a linear block address (partition-major); a transfer is
// sequential if it addresses the block immediately after the previous
// transfer.
class DiskModel {
 public:
  DiskModel(const DiskParams& params, uint32_t page_bytes,
            uint32_t pages_per_partition);

  // Records one page transfer and accumulates its service time.
  void OnTransfer(PageId page, IoContext ctx);

  // Adds a non-transfer delay (retry backoff under fault injection) to
  // the given context's elapsed time.
  void AddDelay(IoContext ctx, double ms);

  double app_ms() const { return app_ms_; }
  double gc_ms() const { return gc_ms_; }
  double total_ms() const { return app_ms_ + gc_ms_; }
  uint64_t sequential_transfers() const { return sequential_; }
  uint64_t random_transfers() const { return random_; }

  double transfer_ms_per_page() const { return transfer_ms_; }
  double positioning_ms() const {
    return params_.seek_ms + params_.rotational_ms;
  }

  // Checkpoint hooks: head position and accumulated times (params are
  // configuration).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  DiskParams params_;
  double transfer_ms_;
  uint32_t pages_per_partition_;
  uint64_t last_lba_ = ~0ull;
  bool has_last_ = false;

  double app_ms_ = 0.0;
  double gc_ms_ = 0.0;
  uint64_t sequential_ = 0;
  uint64_t random_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_DISK_MODEL_H_
