#ifndef ODBGC_STORAGE_TYPES_H_
#define ODBGC_STORAGE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace odbgc {

// Logical object identifier. Pointers between database objects are stored
// as ObjectIds in slot arrays; kNullObject (0) is the null pointer.
using ObjectId = uint32_t;
inline constexpr ObjectId kNullObject = 0;

using PartitionId = uint32_t;
inline constexpr PartitionId kInvalidPartition = 0xffffffffu;

// A page is identified by (partition, page index within partition).
struct PageId {
  PartitionId partition;
  uint32_t page_index;

  friend bool operator==(const PageId&, const PageId&) = default;
};

// Reserved page index for a partition's metadata page: holds the
// collector's durable commit record (gc/collector.h's atomic-flip
// protocol). Never part of the object data range, always accessed
// write-through / read-through, never cached.
inline constexpr uint32_t kMetaPageIndex = 0xffffffffu;

struct PageIdHash {
  size_t operator()(const PageId& p) const {
    return (static_cast<size_t>(p.partition) << 20) ^ p.page_index;
  }
};

// Who is performing an I/O operation. The paper's policies depend on
// splitting I/O between the application and the collector (SAIO controls
// the collector's share).
enum class IoContext : uint8_t { kApplication, kCollector };

// Cumulative I/O operation counters. One "I/O operation" is one page
// transfer between the buffer pool and the (simulated) disk. Under fault
// injection every retry is itself a transfer: retries bump the read/write
// counters of the context that issued the original transfer (so the
// policies' I/O clocks see the real cost) and are additionally broken out
// in the retry counters.
struct IoStats {
  uint64_t app_reads = 0;
  uint64_t app_writes = 0;
  uint64_t gc_reads = 0;
  uint64_t gc_writes = 0;

  // Fault-injection accounting (zero when no injector is attached).
  uint64_t app_retries = 0;     // retried transfer attempts, app context
  uint64_t gc_retries = 0;      // retried transfer attempts, GC context
  uint64_t read_failures = 0;   // permanent read errors (retries exhausted)
  uint64_t write_failures = 0;  // permanent write errors
  uint64_t torn_writes = 0;     // writes that left the page torn
  uint64_t torn_repairs = 0;    // tears detected on read and rewritten

  // Self-healing accounting (zero unless the matching FaultPlan knobs
  // are set). Injection counters record what the fault plan did to the
  // media; checksum_failures records what the read path caught.
  uint64_t checksum_failures = 0;  // reads that failed page CRC verify
  uint64_t bitflips = 0;           // writes that silently corrupted a page
  uint64_t decays_armed = 0;       // writes that landed on a weak sector
  uint64_t device_faults = 0;      // transfers lost to dead pages/devices

  uint64_t app_total() const { return app_reads + app_writes; }
  uint64_t gc_total() const { return gc_reads + gc_writes; }
  uint64_t total() const { return app_total() + gc_total(); }
  uint64_t retries_total() const { return app_retries + gc_retries; }
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_TYPES_H_
