#ifndef ODBGC_STORAGE_TYPES_H_
#define ODBGC_STORAGE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace odbgc {

// Logical object identifier. Pointers between database objects are stored
// as ObjectIds in slot arrays; kNullObject (0) is the null pointer.
using ObjectId = uint32_t;
inline constexpr ObjectId kNullObject = 0;

using PartitionId = uint32_t;
inline constexpr PartitionId kInvalidPartition = 0xffffffffu;

// A page is identified by (partition, page index within partition).
struct PageId {
  PartitionId partition;
  uint32_t page_index;

  friend bool operator==(const PageId&, const PageId&) = default;
};

struct PageIdHash {
  size_t operator()(const PageId& p) const {
    return (static_cast<size_t>(p.partition) << 20) ^ p.page_index;
  }
};

// Who is performing an I/O operation. The paper's policies depend on
// splitting I/O between the application and the collector (SAIO controls
// the collector's share).
enum class IoContext : uint8_t { kApplication, kCollector };

// Cumulative I/O operation counters. One "I/O operation" is one page
// transfer between the buffer pool and the (simulated) disk.
struct IoStats {
  uint64_t app_reads = 0;
  uint64_t app_writes = 0;
  uint64_t gc_reads = 0;
  uint64_t gc_writes = 0;

  uint64_t app_total() const { return app_reads + app_writes; }
  uint64_t gc_total() const { return gc_reads + gc_writes; }
  uint64_t total() const { return app_total() + gc_total(); }
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_TYPES_H_
