#ifndef ODBGC_STORAGE_MARK_BITMAP_H_
#define ODBGC_STORAGE_MARK_BITMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace odbgc {

// Dense mark bitmap over object ids, one bit per id, packed into 64-bit
// words. This replaces the epoch-stamped dense mark array: at one bit per
// object the whole mark state of an OO7 Small' database fits in L1, a
// Reset is a short memset instead of an epoch bump, and the word layout
// admits SIMD-style scans — popcount for survivor accounting, ctz-driven
// iteration that skips clear runs a word (64 ids) at a time.
//
// Users: the collector's per-partition marking (gc/collector.h, one
// bitmap per planning thread in the parallel batch path, so no atomics
// are needed), and whole-database reachability scans
// (storage/reachability.h), whose result bitmap exposes the same
// operator[] the old vector<bool> did.
class MarkBitmap {
 public:
  MarkBitmap() = default;

  // Sizes the bitmap to cover bit indices [0, bits) and clears every bit.
  // Word storage is retained across Resets, so a per-collection Reset
  // costs one memset of bits/8 bytes and no allocator traffic once the
  // high-water mark is reached.
  void Reset(size_t bits);

  // Number of bit indices covered (operator[] below this is valid).
  size_t size() const { return bits_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  bool operator[](size_t i) const { return Test(i); }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  // Sets bit i; true iff it was clear (the caller owns first-visit work).
  bool TestAndSet(size_t i) {
    uint64_t& w = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (w & mask) return false;
    w |= mask;
    return true;
  }

  // Popcount over the whole bitmap.
  uint64_t CountSet() const;

  // Calls f(i) for every set bit in ascending order: ctz finds the next
  // set bit and `w &= w - 1` strips it, so wholly clear words cost one
  // load + compare for 64 ids.
  template <typename F>
  void ForEachSet(F&& f) const {
    const size_t words = (bits_ + 63) / 64;
    for (size_t wi = 0; wi < words; ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const size_t i = (wi << 6) +
                         static_cast<size_t>(std::countr_zero(w));
        if (i >= bits_) return;
        f(i);
        w &= w - 1;
      }
    }
  }

  // Calls f(i) for every *clear* bit below `limit` (<= size()) in
  // ascending order; wholly set words are skipped the same way. This is
  // the unreachable-object scan: invert, then ctz-iterate.
  template <typename F>
  void ForEachClearBelow(size_t limit, F&& f) const {
    const size_t words = (limit + 63) / 64;
    for (size_t wi = 0; wi < words; ++wi) {
      uint64_t w = ~words_[wi];
      while (w != 0) {
        const size_t i = (wi << 6) +
                         static_cast<size_t>(std::countr_zero(w));
        if (i >= limit) return;
        f(i);
        w &= w - 1;
      }
    }
  }

  // Raw word access for tests and word-granular consumers.
  const uint64_t* words() const { return words_.data(); }
  size_t word_count() const { return (bits_ + 63) / 64; }

 private:
  std::vector<uint64_t> words_;
  size_t bits_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_MARK_BITMAP_H_
