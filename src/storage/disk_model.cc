#include "storage/disk_model.h"

#include "util/check.h"

namespace odbgc {

DiskModel::DiskModel(const DiskParams& params, uint32_t page_bytes,
                     uint32_t pages_per_partition)
    : params_(params), pages_per_partition_(pages_per_partition) {
  ODBGC_CHECK(params.transfer_mb_per_s > 0.0);
  ODBGC_CHECK(pages_per_partition > 0);
  transfer_ms_ = static_cast<double>(page_bytes) /
                 (params.transfer_mb_per_s * 1.0e6) * 1.0e3;
}

void DiskModel::OnTransfer(PageId page, IoContext ctx) {
  uint64_t lba = static_cast<uint64_t>(page.partition) *
                     pages_per_partition_ +
                 page.page_index;
  bool sequential = has_last_ && lba == last_lba_ + 1;
  last_lba_ = lba;
  has_last_ = true;

  double ms = transfer_ms_;
  if (sequential) {
    ++sequential_;
  } else {
    ++random_;
    ms += params_.seek_ms + params_.rotational_ms;
  }
  if (ctx == IoContext::kApplication) {
    app_ms_ += ms;
  } else {
    gc_ms_ += ms;
  }
}

void DiskModel::AddDelay(IoContext ctx, double ms) {
  if (ctx == IoContext::kApplication) {
    app_ms_ += ms;
  } else {
    gc_ms_ += ms;
  }
}

void DiskModel::SaveState(SnapshotWriter& w) const {
  w.U64(last_lba_);
  w.Bool(has_last_);
  w.F64(app_ms_);
  w.F64(gc_ms_);
  w.U64(sequential_);
  w.U64(random_);
}

void DiskModel::RestoreState(SnapshotReader& r) {
  last_lba_ = r.U64();
  has_last_ = r.Bool();
  app_ms_ = r.F64();
  gc_ms_ = r.F64();
  sequential_ = r.U64();
  random_ = r.U64();
}

}  // namespace odbgc
