#ifndef ODBGC_STORAGE_OBJECT_STORE_H_
#define ODBGC_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/fault_injector.h"
#include "storage/free_space_index.h"
#include "storage/partition.h"
#include "storage/types.h"
#include "util/check.h"

namespace odbgc {

// One reverse-index entry: a slot of object `src` references the owning
// object. Kept as a single packed array per object (rather than the
// historical parallel in_refs / in_ref_slots vectors) so the collector's
// remembered-set walk reads one contiguous stream. `backref_pos` is the
// source slot's absolute position in the slot arenas (the source's
// slot_begin + slot): storing the resolved arena position instead of the
// relative slot index lets DetachInRef patch a swap-erased entry's
// back-pointer without loading the source's header (one random cache
// miss per pointer overwrite on the WriteRef hot path).
struct InRef {
  ObjectId src = kNullObject;
  uint32_t backref_pos = 0;  // index into the slot arena

  friend bool operator==(const InRef&, const InRef&) = default;
};

// One pointer slot: the referenced object plus the slot's entry index in
// that object's in-ref list (meaningless while `target` is null). Target
// and back-reference are interleaved in one arena so the WriteRef hot
// path reads and patches both with a single cache line per slot, instead
// of one line in each of two parallel arrays.
struct Slot {
  ObjectId target = kNullObject;
  uint32_t backref = 0;
};

// Per-object header. This is a compact POD (no embedded containers):
// pointer slots and their back-references live in store-level arenas
// (structure-of-arrays layout), addressed by [slot_begin, slot_begin +
// slot_count). Shrinking the header from ~112 bytes (four embedded
// vectors) to 28 packs 2+ headers per cache line, which is what the
// mark/scan walks and WriteRef mostly read.
//
// The reverse index is maintained in O(1) per pointer write: every slot
// remembers where its entry sits in the target's in-ref list (the
// slot_backrefs arena), every in-ref entry remembers which arena slot of
// the source it came from (InRef::backref_pos, needed to patch the moved
// entry's back-pointer on a swap-erase), and `xpart_in_refs` counts the entries
// whose source lives in another partition so partition-root discovery
// never has to scan the lists.
struct ObjectRecord {
  bool exists = false;
  uint32_t size = 0;
  PartitionId partition = kInvalidPartition;
  uint32_t offset = 0;
  // Range of this object's pointer slots in the store's slot arenas.
  // Slot counts are fixed at creation; a destroyed object's range is
  // abandoned (bump arena — see ObjectStore).
  uint32_t slot_begin = 0;
  uint32_t slot_count = 0;
  // Number of in-ref entries whose source is in a different partition.
  uint32_t xpart_in_refs = 0;
};

struct StoreConfig {
  uint32_t partition_bytes = 96 * 1024;
  uint32_t page_bytes = 8 * 1024;
  uint32_t buffer_pages = 12;  // buffer size == partition size (Sec. 3.1)
  // Treat the most recent allocation as a GC root (the application still
  // holds a transient reference to an object it has not linked in yet).
  // Trace-driven simulations need this; bare-store fixtures may not.
  bool pin_newest_allocation = true;
  // Optional physical-disk service-time model (off: the paper's
  // operation-count methodology; on: elapsed-time estimates too).
  bool enable_disk_timing = false;
  DiskParams disk;
  // Deterministic fault schedule (I/O faults, torn pages, crash points).
  // Defaults to all-off, which leaves behavior byte-identical to a store
  // without fault support.
  FaultPlan fault;
  // Capacity ceiling in bytes for the partition footprint (0 = uncapped,
  // today's unbounded growth). With a cap, an allocation that needs a
  // new partition when the footprint is already at the ceiling raises
  // SpaceExhaustedError (sim/errors.h) instead of growing — the regime
  // the 1996 paper's rate control exists to prevent. Capped runs whose
  // footprint never reaches the ceiling are byte-identical to uncapped
  // ones.
  uint64_t max_db_bytes = 0;
};

// The simulated object database: partitions, objects, pointer slots,
// roots, a paged buffer pool, and the bookkeeping the collection-rate
// policies consume (pointer-overwrite counters, I/O statistics, and
// ground-truth garbage accounting).
//
// Data layout (structure of arrays): object headers are one contiguous
// vector of compact PODs; slot targets and slot back-references are two
// parallel store-level arenas bump-allocated at object creation; in-ref
// lists are per-object packed InRef vectors. Arena ranges of destroyed
// objects are abandoned, not recycled — slot storage grows with bytes
// ever allocated, which is bounded by the trace.
//
// Database growth is decoupled from collection (Section 3.1): if no
// existing partition can hold an allocation, a new partition is added;
// allocation never triggers a collection.
class ObjectStore {
 public:
  explicit ObjectStore(const StoreConfig& config);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // --- Application operations (drive app-attributed I/O) ---

  // Creates object `id` with `size` bytes and `num_slots` null pointer
  // slots. Placement: the partition of `near_hint` if given and it fits
  // (OO7-style clustering), else the current allocation partition, else
  // the first partition with space, else a new partition.
  void CreateObject(ObjectId id, uint32_t size, uint32_t num_slots,
                    ObjectId near_hint = kNullObject);

  // Reads an object: touches its pages through the buffer pool.
  void ReadObject(ObjectId id);

  // Modifies an object's non-pointer data (OO7 T2-style attribute
  // update): dirties its pages; connectivity and the overwrite clock
  // are untouched.
  void UpdateObject(ObjectId id);

  // Stores `new_target` into slot `slot` of `src`. If the previous value
  // was non-null this is a *pointer overwrite*: the partition holding the
  // old target gets its overwrite counter bumped (the old target is the
  // object that became less connected), and the global overwrite clock
  // advances. Returns the partition charged with the overwrite, or
  // kInvalidPartition if the write was not an overwrite.
  PartitionId WriteRef(ObjectId src, uint32_t slot, ObjectId new_target) {
    ObjectRecord& s = mutable_object(src);
    ODBGC_CHECK(slot < s.slot_count);
    const uint32_t pos = s.slot_begin + slot;
    ObjectId& slot_ref = slot_arena_[pos].target;
    const ObjectId old_target = slot_ref;
    if (old_target == new_target) {
      // Writing the same value still dirties the source page but is not a
      // pointer overwrite (connectivity unchanged).
      TouchRange(s.partition, s.offset, s.size, /*dirty=*/true,
                 IoContext::kApplication);
      return kInvalidPartition;
    }
    // The detach/attach below need the targets' headers, the old entry's
    // list position, the swap-source tail entry, and the attach
    // destination — all data-dependent loads scattered across the arenas.
    // Start them now so they resolve while the buffer-pool touch (often a
    // miss plus an eviction) runs.
    if (old_target != kNullObject) {
      __builtin_prefetch(&objects_[old_target]);
      const std::vector<InRef>& otin = in_refs_[old_target];
      const uint32_t idx = slot_arena_[pos].backref;
      if (!otin.empty()) {
        __builtin_prefetch(otin.data() + otin.size() - 1);
        // Write intent: the swap-erase stores to this entry.
        if (idx < otin.size()) __builtin_prefetch(otin.data() + idx, 1);
      }
    }
    if (new_target != kNullObject && new_target < objects_.size()) {
      __builtin_prefetch(&objects_[new_target]);
      const std::vector<InRef>& ntin = in_refs_[new_target];
      // Write intent: the attach push_back stores here.
      __builtin_prefetch(ntin.data() + ntin.size(), 1);
    }
    slot_ref = new_target;
    TouchRange(s.partition, s.offset, s.size, /*dirty=*/true,
               IoContext::kApplication);

    // Fused detach + attach (the bodies of DetachInRef / AttachInRef with
    // the source-side work shared): one load of the source header, one
    // slot position, one plan-epoch bump for the source partition. The
    // standalone helpers remain for the other callers.
    PartitionId overwritten_partition = kInvalidPartition;
    ++plan_epochs_[s.partition];  // the source's out-edge list changes
    if (old_target != kNullObject) {
      // Unchecked: a non-null slot target always exists (DestroyObject
      // detaches every inbound slot), and the verifier audits the edge
      // tables; re-validating here would tax every overwrite.
      ObjectRecord& ot = objects_[old_target];
      std::vector<InRef>& otin = in_refs_[old_target];
      const uint32_t idx = slot_arena_[pos].backref;
      // Bounds only; entry identity is the verifier's job (see DetachInRef).
      ODBGC_CHECK_MSG(idx < otin.size(), "reverse index out of sync");
      if (s.partition != ot.partition) {
        ODBGC_CHECK_MSG(ot.xpart_in_refs > 0, "reverse index out of sync");
        --ot.xpart_in_refs;
        ++plan_epochs_[ot.partition];
      }
      const uint32_t last = static_cast<uint32_t>(otin.size()) - 1;
      if (idx != last) {
        const InRef moved = otin[last];
        otin[idx] = moved;
        slot_arena_[moved.backref_pos].backref = idx;
      }
      otin.pop_back();
      // The old target became less connected: charge the overwrite to the
      // partition that holds it (feeds FGS and UpdatedPointer selection).
      partitions_[ot.partition].RecordOverwrite();
      ++pointer_overwrites_;
      overwritten_partition = ot.partition;
    }
    if (new_target != kNullObject) {
      ObjectRecord& nt = mutable_object(new_target);
      std::vector<InRef>& ntin = in_refs_[new_target];
      slot_arena_[pos].backref = static_cast<uint32_t>(ntin.size());
      ntin.push_back(InRef{src, pos});
      if (s.partition != nt.partition) {
        ++nt.xpart_in_refs;
        ++plan_epochs_[nt.partition];
      }
    }
    return overwritten_partition;
  }

  void AddRoot(ObjectId id);
  void RemoveRoot(ObjectId id);

  // --- Ground-truth garbage accounting (oracle instrumentation) ---

  // The trace generator knows exactly when its unlink operations detach a
  // cluster; it reports the detached bytes here. This mirrors the paper's
  // "perfect garbage estimator" simulator facility; the practical
  // estimators never read it.
  void RecordGarbageCreated(uint64_t bytes, uint64_t objects);
  // Called by the collector with the bytes it reclaimed.
  void RecordGarbageCollected(uint64_t bytes, uint64_t objects);

  uint64_t total_garbage_created() const { return garbage_created_bytes_; }
  uint64_t total_garbage_collected() const {
    return garbage_collected_bytes_;
  }
  // Exact unreachable bytes currently stored (created minus collected).
  // Saturates at zero for hosts that collect without reporting markers
  // (e.g. unit fixtures); in marker-driven runs collected never exceeds
  // created, which the test suite verifies against a full scan.
  uint64_t actual_garbage_bytes() const {
    return garbage_created_bytes_ > garbage_collected_bytes_
               ? garbage_created_bytes_ - garbage_collected_bytes_
               : 0;
  }

  // --- Accessors ---

  // Inline: every slot view, reverse-index view, and mutation funnels
  // through these, so they are the hottest accessors in the store.
  const ObjectRecord& object(ObjectId id) const {
    ODBGC_CHECK(id < objects_.size() && objects_[id].exists);
    return objects_[id];
  }
  ObjectRecord& mutable_object(ObjectId id) {
    ODBGC_CHECK(id < objects_.size() && objects_[id].exists);
    return objects_[id];
  }
  bool Exists(ObjectId id) const {
    return id < objects_.size() && objects_[id].exists;
  }

  // Pointer-slot views into the slot arena (valid until the next
  // CreateObject, which may grow the arena). Each entry carries the
  // target and its in-ref back-reference; the mutable view is exposed
  // for corruption-injecting tests.
  std::span<const Slot> slots(ObjectId id) const {
    const ObjectRecord& rec = object(id);
    return {slot_arena_.data() + rec.slot_begin, rec.slot_count};
  }
  std::span<Slot> mutable_slots(ObjectId id) {
    ObjectRecord& rec = mutable_object(id);
    return {slot_arena_.data() + rec.slot_begin, rec.slot_count};
  }

  // Reverse index: one entry per referencing slot, duplicates allowed,
  // unordered (swap-erase on detach).
  const std::vector<InRef>& in_refs(ObjectId id) const {
    object(id);  // existence check
    return in_refs_[id];
  }
  std::vector<InRef>& mutable_in_refs(ObjectId id) {
    object(id);  // existence check
    return in_refs_[id];
  }

  // Raw arena base (prefetch targets for the mark/scan walks). The
  // in-ref arena base lets the collector's remembered-set walk skip the
  // per-object existence check — its ids come from a copy order whose
  // objects are live by construction.
  const Slot* slot_arena() const { return slot_arena_.data(); }
  const ObjectRecord* header_arena() const { return objects_.data(); }
  const std::vector<InRef>* in_ref_arena() const { return in_refs_.data(); }

  size_t partition_count() const { return partitions_.size(); }
  const Partition& partition(PartitionId p) const;
  Partition& mutable_partition(PartitionId p);
  const std::vector<Partition>& partitions() const { return partitions_; }

  // Bytes committed to partitions on disk — the quantity capped by
  // StoreConfig::max_db_bytes. Grows in whole partitions and never
  // shrinks (collections compact within partitions).
  uint64_t committed_bytes() const {
    return static_cast<uint64_t>(partitions_.size()) *
           config_.partition_bytes;
  }
  // Fraction of the capacity occupied by live + uncollected garbage
  // bytes; 0 when uncapped. This is the governor's utilization signal:
  // unlike the committed footprint it falls when collections reclaim.
  double utilization() const {
    if (config_.max_db_bytes == 0) return 0.0;
    return static_cast<double>(used_bytes_) /
           static_cast<double>(config_.max_db_bytes);
  }

  // --- Plan-input versioning (the collector's plan cache) ---
  //
  // A partition's plan epoch changes whenever an input of the collector's
  // read-only planning phase for that partition may have changed:
  // membership and list order (create / destroy / a flip that moved or
  // removed anything), reference topology touching the partition (an
  // attached or detached edge whose source or target lives in it), the
  // root set, the pinned newest allocation, or a checkpoint restore.
  // Object offsets are deliberately NOT versioned: planning derives the
  // compacted layout from sizes alone and the apply phase reads positions
  // live. An unchanged epoch therefore guarantees PlanPartition would
  // reproduce its previous result bit for bit.
  uint64_t plan_epoch(PartitionId p) const { return plan_epochs_[p]; }
  // Identity of this store instance and restore generation. Collectors
  // key their plan caches on it, so a cache never survives a different
  // store at the same address or a RestoreState that reset the epochs.
  uint64_t store_serial() const { return serial_; }
  // Collector hook: a completed flip changed the partition's object list.
  void BumpPlanEpoch(PartitionId p) { ++plan_epochs_[p]; }

  const std::vector<ObjectId>& roots() const { return roots_; }
  bool IsRoot(ObjectId id) const;

  // --- External pins (cross-shard remembered set) ---
  //
  // A refcounted liveness pin held by a referencer *outside* this store
  // — in the sharded multi-tenant engine, an object in another shard
  // whose pointer slot targets this object. Pins extend the
  // slot_backrefs/xpart_in_refs remembered-set machinery across the
  // store boundary: the collector treats every pinned object as a
  // partition root (it can never be reclaimed while pinned), exactly as
  // an object with xpart_in_refs > 0 is protected within one store.
  // Unlike AddRoot, pins are counted, so several remote referencers can
  // pin the same object independently. Kept as a sorted (id, count)
  // vector: iteration order is deterministic for planning and
  // serialization, and the set stays small (one entry per remotely
  // referenced object, not per remote reference).
  void AddExternalPin(ObjectId id);
  // Decrements; drops the entry at zero. CHECK-fails on an unpinned id.
  void RemoveExternalPin(ObjectId id);
  bool IsExternallyPinned(ObjectId id) const;
  // Sorted by object id.
  const std::vector<std::pair<ObjectId, uint32_t>>& external_pins() const {
    return external_pins_;
  }

  // The most recently created object (kNullObject if none, or if the
  // pin is disabled by config). A real application holds a transient
  // reference to its newest allocation until it links the object into
  // the database; the collector treats it as a root so that an in-flight
  // allocation cannot be reclaimed.
  ObjectId newest_object() const {
    return config_.pin_newest_allocation ? newest_object_ : kNullObject;
  }

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t live_object_count() const { return live_objects_; }
  uint64_t pointer_overwrites() const { return pointer_overwrites_; }
  // Cumulative bytes ever allocated (never decreases; feeds the
  // allocation-clock baseline policies).
  uint64_t allocated_bytes_total() const { return allocated_bytes_total_; }

  BufferPool& buffer_pool() { return *pool_; }
  const BufferPool& buffer_pool() const { return *pool_; }
  const IoStats& io_stats() const { return pool_->stats(); }
  const StoreConfig& config() const { return config_; }
  // Null unless config.enable_disk_timing.
  const DiskModel* disk_model() const { return disk_.get(); }
  // Null unless config.fault has I/O faults enabled.
  const FaultInjector* fault_injector() const { return fault_.get(); }
  // Mutable injector access for the repair path (healing page state).
  FaultInjector* mutable_fault_injector() { return fault_.get(); }

  // --- Quarantine (self-healing) ---
  //
  // A partition whose pages failed checksum verification or whose device
  // died is quarantined: the allocator stops placing objects in it, the
  // collector and the partition selectors skip it, and the simulation
  // excludes its bytes from the policies' accounting until repair
  // restores it to service. Returns false if already quarantined.
  bool QuarantinePartition(PartitionId p);
  // Returns the partition to service (allocation and collection resume).
  void ReleasePartition(PartitionId p);
  bool IsQuarantined(PartitionId p) const {
    return quarantined_count_ != 0 && p < quarantined_.size() &&
           quarantined_[p] != 0;
  }
  size_t quarantined_count() const { return quarantined_count_; }
  // Bytes currently resident in quarantined partitions (zero when none
  // is quarantined, so zero-fault accounting is untouched).
  uint64_t quarantined_used_bytes() const;

  // Rebuilds every piece of derived state from the primary data (slot
  // arena targets + partition object lists + headers + roots): the
  // reverse index (in-ref lists and slot back-references), the
  // cross-partition in-ref counters, and the free-space index. In-ref
  // lists come out in canonical (source id, slot) order — equivalent
  // under the verifier's multiset semantics, deterministic at any thread
  // count. All plan epochs are bumped. Used by RepairHeap.
  void RebuildDerivedState();

  // --- Collector support ---

  // Touches every page overlapping [offset, offset+len) of `partition`.
  // Inline: remembered-set maintenance issues one of these per external
  // in-ref, and nearly all of them resolve to a single Access hit.
  void TouchRange(PartitionId partition, uint32_t offset, uint32_t len,
                  bool dirty, IoContext ctx) {
    ODBGC_CHECK(partition < partitions_.size());
    uint32_t first, last;
    if (page_shift_ >= 0) {
      first = offset >> page_shift_;
      last = (offset + len - 1) >> page_shift_;
    } else {
      first = offset / config_.page_bytes;
      last = (offset + len - 1) / config_.page_bytes;
    }
    for (uint32_t pg = first; pg <= last; ++pg) {
      pool_->Access(PageId{partition, pg}, dirty, ctx);
    }
  }

  // Durable (write-through) update of `partition`'s commit-record
  // metadata page, and the matching read used by recovery. Both cost one
  // uncached transfer; the collector's atomic-flip protocol brackets a
  // collection's logical flip with them.
  void CommitRecordWrite(PartitionId partition, IoContext ctx);
  void CommitRecordRead(PartitionId partition, IoContext ctx);

  // Removes a (garbage) object: detaches its out-pointers from the
  // reverse index and frees its record. The caller (collector) is
  // responsible for partition bookkeeping and I/O accounting.
  void DestroyObject(ObjectId id);

  // Moves `id` to a new offset within its partition (compaction).
  // Inline: the collector calls this once per survivor per collection.
  void Relocate(ObjectId id, uint32_t new_offset) {
    mutable_object(id).offset = new_offset;
  }

  // Adjusts the cached used-bytes total (and the allocation free-space
  // index) after a compaction changed `partition`'s used size from
  // `old_used` to `new_used`. Call after the partition's own bookkeeping
  // has been updated.
  void AdjustUsedBytes(PartitionId partition, uint32_t old_used,
                       uint32_t new_used);

  // Highest object id ever created (for iteration); ids are dense-ish.
  ObjectId max_object_id() const {
    return static_cast<ObjectId>(objects_.size() - 1);
  }

  // Free bytes of `partition` according to the allocation index (the
  // heap verifier cross-checks this against the partition itself).
  uint32_t indexed_free_bytes(PartitionId p) const {
    return free_index_.FreeBytesAt(p);
  }

  // --- Checkpoint hooks (sim/checkpoint.h) ---
  //
  // Saves / restores the complete mutable store: partitions, object
  // records (slots + reverse index), roots, allocation cursor, buffer
  // pool residency, disk-model and fault-injector state, and all
  // counters. The byte format is layout-independent (logical slot and
  // in-ref contents, not arena offsets), so it is unchanged from the
  // AoS store. The free-space index is rebuilt rather than serialized.
  // Restore requires the store to have been constructed with the same
  // StoreConfig.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  Partition& PartitionFor(uint32_t size, ObjectId near_hint);

  // O(1) reverse-index maintenance: links/unlinks the (src, slot) ->
  // target edge, keeping back-pointers and the cross-partition counters
  // in sync. DetachInRef patches the swap-erased entry's back-pointer.
  void AttachInRef(ObjectId src, uint32_t slot, ObjectId target);
  void DetachInRef(ObjectId src, uint32_t slot, ObjectId target);

  StoreConfig config_;
  std::vector<Partition> partitions_;
  // Parallel to partitions_; see plan_epoch().
  std::vector<uint64_t> plan_epochs_;
  uint64_t serial_;
  std::vector<ObjectRecord> objects_;  // index 0 unused (null)
  // Slot arena; see ObjectRecord::slot_begin.
  std::vector<Slot> slot_arena_;
  // Reverse-index lists, indexed by ObjectId like objects_.
  std::vector<std::vector<InRef>> in_refs_;
  std::vector<ObjectId> roots_;
  // Sorted (id, refcount); see AddExternalPin.
  std::vector<std::pair<ObjectId, uint32_t>> external_pins_;
  ObjectId newest_object_ = kNullObject;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<FaultInjector> fault_;
  // Parallel to partitions_ (1 = quarantined) plus a count so the
  // zero-quarantine common case is a single integer compare.
  std::vector<uint8_t> quarantined_;
  size_t quarantined_count_ = 0;
  PartitionId alloc_cursor_ = 0;  // partition last allocated from
  FreeSpaceIndex free_index_;     // first-fit over partition free bytes
  // log2(page_bytes) when page_bytes is a power of two (the common
  // case), else -1; TouchRange turns its per-page divisions into shifts.
  int page_shift_ = -1;

  uint64_t used_bytes_ = 0;
  uint64_t live_objects_ = 0;
  uint64_t pointer_overwrites_ = 0;
  uint64_t allocated_bytes_total_ = 0;
  uint64_t garbage_created_bytes_ = 0;
  uint64_t garbage_created_objects_ = 0;
  uint64_t garbage_collected_bytes_ = 0;
  uint64_t garbage_collected_objects_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_OBJECT_STORE_H_
