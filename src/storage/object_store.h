#ifndef ODBGC_STORAGE_OBJECT_STORE_H_
#define ODBGC_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/fault_injector.h"
#include "storage/free_space_index.h"
#include "storage/partition.h"
#include "storage/types.h"

namespace odbgc {

// Per-object record. Pointers are logical ObjectIds held in `slots`;
// `in_refs` is the reverse index (one entry per referencing slot,
// duplicates allowed) that the collector uses to find partition roots and
// to account for cross-partition pointer updates after relocation.
//
// The reverse index is maintained in O(1) per pointer write: every slot
// remembers where its entry sits in the target's `in_refs`
// (`slot_backrefs`), every `in_refs` entry remembers which slot of the
// source it came from (`in_ref_slots`, needed to patch the moved entry's
// back-pointer on a swap-erase), and `xpart_in_refs` counts the entries
// whose source lives in another partition so partition-root discovery
// never has to scan the lists.
struct ObjectRecord {
  bool exists = false;
  uint32_t size = 0;
  PartitionId partition = kInvalidPartition;
  uint32_t offset = 0;
  std::vector<ObjectId> slots;
  std::vector<ObjectId> in_refs;
  // Parallel to in_refs: the slot index in the referencing object.
  std::vector<uint32_t> in_ref_slots;
  // Parallel to slots: index of this slot's entry in the target's
  // in_refs (meaningless for null slots).
  std::vector<uint32_t> slot_backrefs;
  // Number of in_refs entries whose source is in a different partition.
  uint32_t xpart_in_refs = 0;
};

struct StoreConfig {
  uint32_t partition_bytes = 96 * 1024;
  uint32_t page_bytes = 8 * 1024;
  uint32_t buffer_pages = 12;  // buffer size == partition size (Sec. 3.1)
  // Treat the most recent allocation as a GC root (the application still
  // holds a transient reference to an object it has not linked in yet).
  // Trace-driven simulations need this; bare-store fixtures may not.
  bool pin_newest_allocation = true;
  // Optional physical-disk service-time model (off: the paper's
  // operation-count methodology; on: elapsed-time estimates too).
  bool enable_disk_timing = false;
  DiskParams disk;
  // Deterministic fault schedule (I/O faults, torn pages, crash points).
  // Defaults to all-off, which leaves behavior byte-identical to a store
  // without fault support.
  FaultPlan fault;
};

// The simulated object database: partitions, objects, pointer slots,
// roots, a paged buffer pool, and the bookkeeping the collection-rate
// policies consume (pointer-overwrite counters, I/O statistics, and
// ground-truth garbage accounting).
//
// Database growth is decoupled from collection (Section 3.1): if no
// existing partition can hold an allocation, a new partition is added;
// allocation never triggers a collection.
class ObjectStore {
 public:
  explicit ObjectStore(const StoreConfig& config);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // --- Application operations (drive app-attributed I/O) ---

  // Creates object `id` with `size` bytes and `num_slots` null pointer
  // slots. Placement: the partition of `near_hint` if given and it fits
  // (OO7-style clustering), else the current allocation partition, else
  // the first partition with space, else a new partition.
  void CreateObject(ObjectId id, uint32_t size, uint32_t num_slots,
                    ObjectId near_hint = kNullObject);

  // Reads an object: touches its pages through the buffer pool.
  void ReadObject(ObjectId id);

  // Modifies an object's non-pointer data (OO7 T2-style attribute
  // update): dirties its pages; connectivity and the overwrite clock
  // are untouched.
  void UpdateObject(ObjectId id);

  // Stores `new_target` into `slots[slot]` of `src`. If the previous value
  // was non-null this is a *pointer overwrite*: the partition holding the
  // old target gets its overwrite counter bumped (the old target is the
  // object that became less connected), and the global overwrite clock
  // advances. Returns the partition charged with the overwrite, or
  // kInvalidPartition if the write was not an overwrite.
  PartitionId WriteRef(ObjectId src, uint32_t slot, ObjectId new_target);

  void AddRoot(ObjectId id);
  void RemoveRoot(ObjectId id);

  // --- Ground-truth garbage accounting (oracle instrumentation) ---

  // The trace generator knows exactly when its unlink operations detach a
  // cluster; it reports the detached bytes here. This mirrors the paper's
  // "perfect garbage estimator" simulator facility; the practical
  // estimators never read it.
  void RecordGarbageCreated(uint64_t bytes, uint64_t objects);
  // Called by the collector with the bytes it reclaimed.
  void RecordGarbageCollected(uint64_t bytes, uint64_t objects);

  uint64_t total_garbage_created() const { return garbage_created_bytes_; }
  uint64_t total_garbage_collected() const {
    return garbage_collected_bytes_;
  }
  // Exact unreachable bytes currently stored (created minus collected).
  // Saturates at zero for hosts that collect without reporting markers
  // (e.g. unit fixtures); in marker-driven runs collected never exceeds
  // created, which the test suite verifies against a full scan.
  uint64_t actual_garbage_bytes() const {
    return garbage_created_bytes_ > garbage_collected_bytes_
               ? garbage_created_bytes_ - garbage_collected_bytes_
               : 0;
  }

  // --- Accessors ---

  const ObjectRecord& object(ObjectId id) const;
  ObjectRecord& mutable_object(ObjectId id);
  bool Exists(ObjectId id) const;

  size_t partition_count() const { return partitions_.size(); }
  const Partition& partition(PartitionId p) const;
  Partition& mutable_partition(PartitionId p);
  const std::vector<Partition>& partitions() const { return partitions_; }

  const std::vector<ObjectId>& roots() const { return roots_; }
  bool IsRoot(ObjectId id) const;

  // The most recently created object (kNullObject if none, or if the
  // pin is disabled by config). A real application holds a transient
  // reference to its newest allocation until it links the object into
  // the database; the collector treats it as a root so that an in-flight
  // allocation cannot be reclaimed.
  ObjectId newest_object() const {
    return config_.pin_newest_allocation ? newest_object_ : kNullObject;
  }

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t live_object_count() const { return live_objects_; }
  uint64_t pointer_overwrites() const { return pointer_overwrites_; }
  // Cumulative bytes ever allocated (never decreases; feeds the
  // allocation-clock baseline policies).
  uint64_t allocated_bytes_total() const { return allocated_bytes_total_; }

  BufferPool& buffer_pool() { return *pool_; }
  const BufferPool& buffer_pool() const { return *pool_; }
  const IoStats& io_stats() const { return pool_->stats(); }
  const StoreConfig& config() const { return config_; }
  // Null unless config.enable_disk_timing.
  const DiskModel* disk_model() const { return disk_.get(); }
  // Null unless config.fault has I/O faults enabled.
  const FaultInjector* fault_injector() const { return fault_.get(); }

  // --- Collector support ---

  // Touches every page overlapping [offset, offset+len) of `partition`.
  void TouchRange(PartitionId partition, uint32_t offset, uint32_t len,
                  bool dirty, IoContext ctx);

  // Durable (write-through) update of `partition`'s commit-record
  // metadata page, and the matching read used by recovery. Both cost one
  // uncached transfer; the collector's atomic-flip protocol brackets a
  // collection's logical flip with them.
  void CommitRecordWrite(PartitionId partition, IoContext ctx);
  void CommitRecordRead(PartitionId partition, IoContext ctx);

  // Removes a (garbage) object: detaches its out-pointers from the
  // reverse index and frees its record. The caller (collector) is
  // responsible for partition bookkeeping and I/O accounting.
  void DestroyObject(ObjectId id);

  // Moves `id` to a new offset within its partition (compaction).
  void Relocate(ObjectId id, uint32_t new_offset);

  // Adjusts the cached used-bytes total (and the allocation free-space
  // index) after a compaction changed `partition`'s used size from
  // `old_used` to `new_used`. Call after the partition's own bookkeeping
  // has been updated.
  void AdjustUsedBytes(PartitionId partition, uint32_t old_used,
                       uint32_t new_used);

  // Highest object id ever created (for iteration); ids are dense-ish.
  ObjectId max_object_id() const {
    return static_cast<ObjectId>(objects_.size() - 1);
  }

  // --- Marking support (epoch-stamped mark array) ---

  // Opens a marking epoch: bumps the epoch stamp (handling wraparound)
  // and sizes the mark array to cover every object id. An object is
  // marked iff mark_epochs()[id] == the returned epoch, so collections
  // reuse one dense array instead of building a fresh set each time.
  uint32_t BeginMarkEpoch();
  std::vector<uint32_t>& mark_epochs() { return mark_epochs_; }

  // Free bytes of `partition` according to the allocation index (the
  // heap verifier cross-checks this against the partition itself).
  uint32_t indexed_free_bytes(PartitionId p) const {
    return free_index_.FreeBytesAt(p);
  }

  // --- Checkpoint hooks (sim/checkpoint.h) ---
  //
  // Saves / restores the complete mutable store: partitions, object
  // records (slots + reverse index), roots, allocation cursor, buffer
  // pool residency, disk-model and fault-injector state, and all
  // counters. The free-space index and mark epochs are rebuilt/reset
  // rather than serialized (both are derivable). Restore requires the
  // store to have been constructed with the same StoreConfig.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  Partition& PartitionFor(uint32_t size, ObjectId near_hint);

  // O(1) reverse-index maintenance: links/unlinks the (src, slot) ->
  // target edge, keeping back-pointers and the cross-partition counters
  // in sync. DetachInRef patches the swap-erased entry's back-pointer.
  void AttachInRef(ObjectId src, uint32_t slot, ObjectId target);
  void DetachInRef(ObjectId src, uint32_t slot, ObjectId target);

  StoreConfig config_;
  std::vector<Partition> partitions_;
  std::vector<ObjectRecord> objects_;  // index 0 unused (null)
  std::vector<ObjectId> roots_;
  ObjectId newest_object_ = kNullObject;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<FaultInjector> fault_;
  PartitionId alloc_cursor_ = 0;  // partition last allocated from
  FreeSpaceIndex free_index_;     // first-fit over partition free bytes

  std::vector<uint32_t> mark_epochs_;  // dense mark array (collector)
  uint32_t mark_epoch_ = 0;

  uint64_t used_bytes_ = 0;
  uint64_t live_objects_ = 0;
  uint64_t pointer_overwrites_ = 0;
  uint64_t allocated_bytes_total_ = 0;
  uint64_t garbage_created_bytes_ = 0;
  uint64_t garbage_created_objects_ = 0;
  uint64_t garbage_collected_bytes_ = 0;
  uint64_t garbage_collected_objects_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_OBJECT_STORE_H_
