#ifndef ODBGC_STORAGE_PARTITION_H_
#define ODBGC_STORAGE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "storage/types.h"
#include "util/snapshot.h"

namespace odbgc {

// One database partition: a fixed-size disk region that is the unit of
// garbage collection. Objects are bump-allocated; a collection compacts
// the survivors back to offset 0.
class Partition {
 public:
  Partition(PartitionId id, uint32_t capacity_bytes);

  PartitionId id() const { return id_; }
  uint32_t capacity() const { return capacity_; }
  uint32_t used() const { return used_; }
  uint32_t free_bytes() const { return capacity_ - used_; }

  bool Fits(uint32_t size) const { return size <= free_bytes(); }

  // Bump-allocates `size` bytes for `obj`; returns the byte offset.
  uint32_t Allocate(ObjectId obj, uint32_t size);

  // Replaces the resident-object list and used size after a compaction.
  // Takes the survivor list by const reference and copy-assigns so the
  // partition's own list keeps its capacity (the collector reuses one
  // scratch copy-order buffer across collections). Returns true if the
  // list or the used size actually changed; a no-op flip (everything
  // survived, already in copy order) returns false so the caller can
  // skip plan-cache invalidation.
  bool ResetAfterCollection(const std::vector<ObjectId>& survivors,
                            uint32_t new_used);

  const std::vector<ObjectId>& objects() const { return objects_; }

  // Pointer-overwrite counter: the fine-grain state (FGS) of Section 2.4
  // and the input of the UpdatedPointer selection policy. Incremented when
  // a pointer *into* this partition is overwritten; reset to 0 by a
  // collection of this partition.
  uint64_t overwrites() const { return overwrites_; }
  void RecordOverwrite() { ++overwrites_; }
  void ResetOverwrites() { overwrites_ = 0; }

  uint64_t collections() const { return collections_; }
  void RecordCollection() { ++collections_; }

  // Monotonic stamp of the last collection (or 0), used by selectors to
  // break ties toward the least recently collected partition.
  uint64_t last_collected_stamp() const { return last_collected_stamp_; }
  void set_last_collected_stamp(uint64_t s) { last_collected_stamp_ = s; }

  // Checkpoint hooks. id and capacity are structural (reconstructed by
  // the store from config); only the mutable state travels.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  PartitionId id_;
  uint32_t capacity_;
  uint32_t used_ = 0;
  std::vector<ObjectId> objects_;
  uint64_t overwrites_ = 0;
  uint64_t collections_ = 0;
  uint64_t last_collected_stamp_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_STORAGE_PARTITION_H_
