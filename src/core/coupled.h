#ifndef ODBGC_CORE_COUPLED_H_
#define ODBGC_CORE_COUPLED_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "core/estimator.h"
#include "core/rate_policy.h"

namespace odbgc {

// The coupled policy sketched in the paper's Section 5: "the SAIO policy
// could use information provided by the SAGA heuristics to determine the
// cost-effectiveness of the I/O operations being performed, and adjust
// itself accordingly."
//
// CoupledIoPolicy is SAIO with a garbage-aware throttle. The user states
// an I/O budget (io_frac) and a reference garbage level
// (garbage_ref_frac) at which spending the full budget is justified.
// After each collection the policy scales its effective I/O fraction by
// how much garbage the estimator believes exists:
//
//   effective_frac = io_frac * clamp(ActGarbEst / (DBSize * ref_frac),
//                                    min_scale, max_scale)
//
// so collections back off when there is little to reclaim (e.g. GenDB,
// read-mostly phases) and may modestly exceed the budget when garbage
// piles up. With min_scale = max_scale = 1 it degenerates to plain SAIO.
class CoupledIoPolicy : public RatePolicy {
 public:
  struct Options {
    double io_frac = 0.10;          // the I/O budget (SAIO_Frac)
    double garbage_ref_frac = 0.10; // garbage level justifying the budget
    double min_scale = 0.25;        // never drop below 1/4 of the budget
    double max_scale = 1.5;         // may exceed the budget by up to 50%
    size_t history_size = 0;        // SAIO's c_hist
    uint64_t bootstrap_app_io = 2000;
  };

  CoupledIoPolicy(const Options& options,
                  std::unique_ptr<GarbageEstimator> estimator);

  bool ShouldCollect(const SimClock& clock) override;
  void OnCollection(const CollectionOutcome& outcome,
                    const SimClock& clock) override;
  std::string name() const override;

  // Budget coordination: retargets the base I/O budget the garbage
  // scale multiplies (the scale clamps are unchanged).
  void SetIoBudget(double io_frac) override {
    if (io_frac > 0.0 && io_frac < 1.0) options_.io_frac = io_frac;
  }

  GarbageEstimator& estimator() { return *estimator_; }
  const Options& options() const { return options_; }
  double last_effective_frac() const { return last_effective_frac_; }
  uint64_t next_app_io_threshold() const { return next_app_io_threshold_; }

  // Serializes the control state and the owned estimator's state.
  void SaveState(SnapshotWriter& w) const override;
  void RestoreState(SnapshotReader& r) override;

 private:
  // Out of line so OnCollection's hot path pays only a predicted-not-
  // taken branch, not the trace-argument stack frame.
  void RecordDecision(double scale, double delta_app_io,
                      obs::DecisionReason reason);

  Options options_;
  std::unique_ptr<GarbageEstimator> estimator_;

  // SAIO-style history window over (period app I/O, collection GC I/O).
  struct PeriodRecord {
    uint64_t app_io;
    uint64_t gc_io;
  };
  std::deque<PeriodRecord> history_;
  uint64_t hist_app_io_sum_ = 0;
  uint64_t hist_gc_io_sum_ = 0;
  uint64_t app_io_at_last_collection_ = 0;
  uint64_t next_app_io_threshold_;
  double last_effective_frac_;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_COUPLED_H_
