#ifndef ODBGC_CORE_FIXED_RATE_H_
#define ODBGC_CORE_FIXED_RATE_H_

#include <cstdint>

#include "core/rate_policy.h"

namespace odbgc {

// The baseline policy of Section 2.1: collect every N pointer overwrites,
// for a fixed N chosen up front. The paper shows any fixed N is wrong for
// some application (or some phase of one application).
class FixedRatePolicy : public RatePolicy {
 public:
  explicit FixedRatePolicy(uint64_t overwrites_per_collection);

  bool ShouldCollect(const SimClock& clock) override;
  void OnCollection(const CollectionOutcome& outcome,
                    const SimClock& clock) override;
  std::string name() const override;

  uint64_t overwrites_per_collection() const { return interval_; }

  void SaveState(SnapshotWriter& w) const override { w.U64(next_threshold_); }
  void RestoreState(SnapshotReader& r) override { next_threshold_ = r.U64(); }

 protected:
  // Ledger/trace wire name; the connectivity subclass overrides it so its
  // decisions stay distinguishable from a hand-picked fixed rate.
  void set_wire_name(const char* name) { wire_name_ = name; }

 private:
  // Out of line so OnCollection's hot path pays only a predicted-not-
  // taken branch, not the trace-argument stack frame.
  void RecordDecision();

  uint64_t interval_;
  uint64_t next_threshold_;
  const char* wire_name_ = "fixed";
};

// The "more clever" fixed-rate heuristic of Section 2.1: derive N from
// static database characteristics — collect once a partition's worth of
// garbage *should* have accumulated, assuming every `connectivity`
// pointer overwrites free one object of `avg_object_bytes`. The paper
// shows this underestimates garbage creation by ~5x ("fails miserably"),
// because single overwrites can detach whole clusters.
class ConnectivityHeuristicPolicy : public FixedRatePolicy {
 public:
  ConnectivityHeuristicPolicy(double avg_connectivity,
                              double avg_object_bytes,
                              uint64_t partition_bytes);

  std::string name() const override { return "ConnectivityHeuristic"; }

  static uint64_t DeriveInterval(double avg_connectivity,
                                 double avg_object_bytes,
                                 uint64_t partition_bytes);
};

}  // namespace odbgc

#endif  // ODBGC_CORE_FIXED_RATE_H_
