#include "core/saio.h"

#include <cmath>

#include "util/check.h"

namespace odbgc {

SaioPolicy::SaioPolicy(double io_frac, size_t history_size,
                       uint64_t bootstrap_app_io)
    : io_frac_(io_frac),
      history_size_(history_size),
      next_app_io_threshold_(bootstrap_app_io) {
  ODBGC_CHECK_MSG(io_frac > 0.0 && io_frac < 1.0,
                  "SAIO_Frac must be in (0, 1)");
  ODBGC_CHECK(bootstrap_app_io > 0);
}

bool SaioPolicy::ShouldCollect(const SimClock& clock) {
  return clock.app_io >= next_app_io_threshold_;
}

void SaioPolicy::OnCollection(const CollectionOutcome& outcome,
                              const SimClock& clock) {
  const uint64_t period_app_io = clock.app_io - app_io_at_last_collection_;
  app_io_at_last_collection_ = clock.app_io;
  const uint64_t curr_gc_io = outcome.gc_io_ops;

  // Maintain the c_hist window. The current collection belongs to the
  // history term GCIO|_{c-c_hist}^{c} as well as serving as the estimate
  // of the *next* collection's cost.
  if (history_size_ > 0) {
    history_.push_back(PeriodRecord{period_app_io, curr_gc_io});
    hist_app_io_sum_ += period_app_io;
    hist_gc_io_sum_ += curr_gc_io;
    while (history_.size() > history_size_ &&
           history_size_ != kInfiniteHistory) {
      hist_app_io_sum_ -= history_.front().app_io;
      hist_gc_io_sum_ -= history_.front().gc_io;
      history_.pop_front();
    }
  }

  const double f = io_frac_;
  const double gc_term =
      static_cast<double>(hist_gc_io_sum_) + static_cast<double>(curr_gc_io);
  double delta_app_io =
      gc_term * (1.0 - f) / f - static_cast<double>(hist_app_io_sum_);
  // The solved interval can be non-positive when the window is already
  // over budget; the soonest we can act is the next application I/O.
  const bool over_budget = delta_app_io < 1.0;
  if (over_budget) delta_app_io = 1.0;
  last_delta_app_io_ = static_cast<uint64_t>(std::llround(delta_app_io));
  next_app_io_threshold_ = clock.app_io + last_delta_app_io_;
  // A scheduled collection under load means garbage is flowing again;
  // re-arm the idle probe.
  idle_yield_known_ = false;

  ODBGC_IF_TEL(tel_) { RecordDecision(period_app_io, curr_gc_io, over_budget); }
}

void SaioPolicy::RecordDecision(uint64_t period_app_io, uint64_t curr_gc_io,
                                bool over_budget) {
  tel_->Instant("policy_decision",
                {{"policy", "saio"},
                 {"delta_app_io", last_delta_app_io_},
                 {"period_app_io", period_app_io},
                 {"gc_io", curr_gc_io},
                 {"next_threshold", next_app_io_threshold_}});
  tel_->metrics().GetGauge("policy.saio.delta_app_io")->Set(
      static_cast<double>(last_delta_app_io_));
  if (obs::DecisionLedger* ledger = tel_->ledger()) {
    ledger->Append("saio",
                   over_budget ? obs::DecisionReason::kOverBudgetFloor
                               : obs::DecisionReason::kBudgetSolve,
                   static_cast<double>(last_delta_app_io_),
                   next_app_io_threshold_, 100.0 * io_frac_);
  }
}

void SaioPolicy::set_opportunism(bool enabled,
                                 uint64_t min_idle_yield_bytes) {
  opportunism_enabled_ = enabled;
  min_idle_yield_bytes_ = min_idle_yield_bytes;
}

bool SaioPolicy::ShouldCollectWhenIdle(const SimClock& /*clock*/) {
  if (!opportunism_enabled_) return false;
  // Collect until a collection stops finding a worthwhile yield; the
  // next *scheduled* collection resets the probe (garbage accumulates
  // again under load).
  return !idle_yield_known_ || last_idle_yield_ >= min_idle_yield_bytes_;
}

void SaioPolicy::OnIdleCollection(const CollectionOutcome& outcome,
                                  const SimClock& /*clock*/) {
  idle_yield_known_ = true;
  last_idle_yield_ = outcome.bytes_reclaimed;
}

void SaioPolicy::SaveState(SnapshotWriter& w) const {
  w.U64(history_.size());
  for (const PeriodRecord& p : history_) {
    w.U64(p.app_io);
    w.U64(p.gc_io);
  }
  w.U64(hist_app_io_sum_);
  w.U64(hist_gc_io_sum_);
  w.U64(app_io_at_last_collection_);
  w.U64(next_app_io_threshold_);
  w.U64(last_delta_app_io_);
  w.Bool(idle_yield_known_);
  w.U64(last_idle_yield_);
}

void SaioPolicy::RestoreState(SnapshotReader& r) {
  const uint64_t n = r.U64();
  history_.clear();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    const uint64_t app_io = r.U64();
    const uint64_t gc_io = r.U64();
    history_.push_back(PeriodRecord{app_io, gc_io});
  }
  hist_app_io_sum_ = r.U64();
  hist_gc_io_sum_ = r.U64();
  app_io_at_last_collection_ = r.U64();
  next_app_io_threshold_ = r.U64();
  last_delta_app_io_ = r.U64();
  idle_yield_known_ = r.Bool();
  last_idle_yield_ = r.U64();
}

std::string SaioPolicy::name() const {
  std::string hist = history_size_ == kInfiniteHistory
                         ? "inf"
                         : std::to_string(history_size_);
  return "SAIO(frac=" + std::to_string(io_frac_) + ",hist=" + hist + ")";
}

}  // namespace odbgc
