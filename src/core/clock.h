#ifndef ODBGC_CORE_CLOCK_H_
#define ODBGC_CORE_CLOCK_H_

#include <cstdint>

namespace odbgc {

// Snapshot of the observable counters a collection-rate policy may
// consult. Policies deliberately see only this view — not the store —
// so that the core library is independent of any particular ODBMS: a
// host system feeds counters in and triggers collections out.
struct SimClock {
  uint64_t app_io = 0;              // application I/O operations so far
  uint64_t gc_io = 0;               // collector I/O operations so far
  uint64_t pointer_overwrites = 0;  // the paper's unit of "time"
  uint64_t events = 0;              // database events processed
  uint64_t collections = 0;         // collections completed
  uint64_t db_used_bytes = 0;       // current database size
  uint64_t bytes_allocated = 0;     // cumulative allocation volume
  uint64_t partitions = 0;          // partitions the database occupies

  uint64_t total_io() const { return app_io + gc_io; }
};

// What a policy learns when a collection finishes.
struct CollectionOutcome {
  uint64_t gc_io_ops = 0;        // I/O operations this collection cost
  uint64_t bytes_reclaimed = 0;  // garbage bytes it recovered
};

}  // namespace odbgc

#endif  // ODBGC_CORE_CLOCK_H_
