#ifndef ODBGC_CORE_RATE_POLICY_H_
#define ODBGC_CORE_RATE_POLICY_H_

#include <string>

#include "core/clock.h"
#include "obs/telemetry.h"
#include "util/snapshot.h"

namespace odbgc {

// A collection-rate policy decides *when* the next garbage collection
// should run (the policy area this paper introduces). The host system
// calls ShouldCollect() as its counters advance and OnCollection() after
// each collection completes.
class RatePolicy {
 public:
  virtual ~RatePolicy() = default;

  // True if a collection should be started now.
  virtual bool ShouldCollect(const SimClock& clock) = 0;

  // Reports a finished collection so the policy can schedule the next.
  virtual void OnCollection(const CollectionOutcome& outcome,
                            const SimClock& clock) = 0;

  // --- Opportunistic quiescence extension (paper Section 5) ---
  //
  // When the host observes a quiescent workload it may offer the policy
  // free collections beyond its user-stated limits. The default policy
  // declines (the base paper's behavior).

  // True if an opportunistic collection is worthwhile right now.
  virtual bool ShouldCollectWhenIdle(const SimClock& clock) {
    (void)clock;
    return false;
  }

  // Reports a collection run during quiescence. Deliberately separate
  // from OnCollection: idle collections must not perturb the policy's
  // active-workload scheduling assumptions.
  virtual void OnIdleCollection(const CollectionOutcome& outcome,
                                const SimClock& clock) {
    (void)outcome;
    (void)clock;
  }

  virtual std::string name() const = 0;

  // --- Multi-tenant budget coordination (sim/multi_tenant.h) ---
  //
  // Retargets the policy's GC I/O budget to `io_frac` of total I/O. A
  // global coordinator calls this between collections to rebalance one
  // fleet-wide budget across per-shard policies; policies without an
  // I/O-fraction knob (fixed rate, SAGA, the allocation baselines)
  // ignore it. Takes effect at the next OnCollection solve — the armed
  // threshold is not retroactively moved, so a budget change never
  // reorders an already-scheduled collection.
  virtual void SetIoBudget(double io_frac) { (void)io_frac; }

  // Checkpoint hooks (sim/checkpoint.h). Implementations serialize their
  // mutable scheduling state — thresholds, histories, smoothed slopes —
  // but not constructor parameters (those travel with SimConfig). The
  // default is for stateless policies.
  virtual void SaveState(SnapshotWriter& /*w*/) const {}
  virtual void RestoreState(SnapshotReader& /*r*/) {}

  // Attaches per-run telemetry (not owned; may be null). Policies record a
  // `policy_decision` instant from OnCollection — the cold path only;
  // ShouldCollect stays untouched.
  void AttachTelemetry(obs::Telemetry* telemetry) { tel_ = telemetry; }

 protected:
  obs::Telemetry* tel_ = nullptr;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_RATE_POLICY_H_
