#include "core/coupled.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace odbgc {

CoupledIoPolicy::CoupledIoPolicy(const Options& options,
                                 std::unique_ptr<GarbageEstimator> estimator)
    : options_(options),
      estimator_(std::move(estimator)),
      next_app_io_threshold_(options.bootstrap_app_io),
      last_effective_frac_(options.io_frac) {
  ODBGC_CHECK_MSG(options.io_frac > 0.0 && options.io_frac < 1.0,
                  "io_frac must be in (0, 1)");
  ODBGC_CHECK(options.garbage_ref_frac > 0.0);
  ODBGC_CHECK(options.min_scale > 0.0 &&
              options.min_scale <= options.max_scale);
  ODBGC_CHECK(estimator_ != nullptr);
}

bool CoupledIoPolicy::ShouldCollect(const SimClock& clock) {
  return clock.app_io >= next_app_io_threshold_;
}

void CoupledIoPolicy::OnCollection(const CollectionOutcome& outcome,
                                   const SimClock& clock) {
  const uint64_t period_app_io = clock.app_io - app_io_at_last_collection_;
  app_io_at_last_collection_ = clock.app_io;
  const uint64_t curr_gc_io = outcome.gc_io_ops;

  if (options_.history_size > 0) {
    history_.push_back(PeriodRecord{period_app_io, curr_gc_io});
    hist_app_io_sum_ += period_app_io;
    hist_gc_io_sum_ += curr_gc_io;
    while (history_.size() > options_.history_size) {
      hist_app_io_sum_ -= history_.front().app_io;
      hist_gc_io_sum_ -= history_.front().gc_io;
      history_.pop_front();
    }
  }

  // Cost-effectiveness: how much garbage does the estimator believe is
  // out there, relative to the reference level that justifies the full
  // budget?
  double scale = 1.0;
  obs::DecisionReason reason = obs::DecisionReason::kBudgetSolve;
  if (clock.db_used_bytes > 0) {
    double reference = static_cast<double>(clock.db_used_bytes) *
                       options_.garbage_ref_frac;
    scale = estimator_->Estimate() / reference;
  }
  if (scale < options_.min_scale) {
    reason = obs::DecisionReason::kScaleFloor;
  } else if (scale > options_.max_scale) {
    reason = obs::DecisionReason::kScaleCeiling;
  }
  scale = std::clamp(scale, options_.min_scale, options_.max_scale);
  double f = options_.io_frac * scale;
  // Keep the effective fraction a valid fraction.
  f = std::min(f, 0.95);
  last_effective_frac_ = f;

  const double gc_term =
      static_cast<double>(hist_gc_io_sum_) + static_cast<double>(curr_gc_io);
  double delta_app_io =
      gc_term * (1.0 - f) / f - static_cast<double>(hist_app_io_sum_);
  const bool over_budget = delta_app_io < 1.0;
  if (over_budget) delta_app_io = 1.0;
  if (over_budget && reason == obs::DecisionReason::kBudgetSolve) {
    reason = obs::DecisionReason::kOverBudgetFloor;
  }
  next_app_io_threshold_ =
      clock.app_io + static_cast<uint64_t>(std::llround(delta_app_io));

  ODBGC_IF_TEL(tel_) { RecordDecision(scale, delta_app_io, reason); }
}

void CoupledIoPolicy::RecordDecision(double scale, double delta_app_io,
                                     obs::DecisionReason reason) {
  tel_->Instant("policy_decision",
                {{"policy", "coupled"},
                 {"effective_frac", last_effective_frac_},
                 {"scale", scale},
                 {"delta_app_io", delta_app_io},
                 {"next_threshold", next_app_io_threshold_}});
  tel_->metrics().GetGauge("policy.coupled.effective_frac")
      ->Set(last_effective_frac_);
  if (obs::DecisionLedger* ledger = tel_->ledger()) {
    ledger->Append("coupled", reason, delta_app_io, next_app_io_threshold_,
                   100.0 * last_effective_frac_);
  }
}

void CoupledIoPolicy::SaveState(SnapshotWriter& w) const {
  w.U64(history_.size());
  for (const PeriodRecord& p : history_) {
    w.U64(p.app_io);
    w.U64(p.gc_io);
  }
  w.U64(hist_app_io_sum_);
  w.U64(hist_gc_io_sum_);
  w.U64(app_io_at_last_collection_);
  w.U64(next_app_io_threshold_);
  w.F64(last_effective_frac_);
  estimator_->SaveState(w);
}

void CoupledIoPolicy::RestoreState(SnapshotReader& r) {
  const uint64_t n = r.U64();
  history_.clear();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    const uint64_t app_io = r.U64();
    const uint64_t gc_io = r.U64();
    history_.push_back(PeriodRecord{app_io, gc_io});
  }
  hist_app_io_sum_ = r.U64();
  hist_gc_io_sum_ = r.U64();
  app_io_at_last_collection_ = r.U64();
  next_app_io_threshold_ = r.U64();
  last_effective_frac_ = r.F64();
  estimator_->RestoreState(r);
}

std::string CoupledIoPolicy::name() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "CoupledIO(frac=%.3f,ref=%.3f,%s)",
                options_.io_frac, options_.garbage_ref_frac,
                estimator_->name().c_str());
  return buf;
}

}  // namespace odbgc
