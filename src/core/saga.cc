#include "core/saga.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace odbgc {

SagaPolicy::SagaPolicy(const Options& options,
                       std::unique_ptr<GarbageEstimator> estimator)
    : options_(options),
      estimator_(std::move(estimator)),
      next_overwrite_threshold_(options.bootstrap_overwrites) {
  ODBGC_CHECK_MSG(options.garbage_frac > 0.0 && options.garbage_frac < 1.0,
                  "SAGA_Frac must be in (0, 1)");
  ODBGC_CHECK(options.slope_weight >= 0.0 && options.slope_weight <= 1.0);
  ODBGC_CHECK(options.dt_min >= 1 && options.dt_min <= options.dt_max);
  ODBGC_CHECK(estimator_ != nullptr);
}

bool SagaPolicy::ShouldCollect(const SimClock& clock) {
  return clock.pointer_overwrites >= next_overwrite_threshold_;
}

void SagaPolicy::OnCollection(const CollectionOutcome& outcome,
                              const SimClock& clock) {
  const uint64_t t = clock.pointer_overwrites;
  total_collected_ += outcome.bytes_reclaimed;

  // TotGarb(t) = ActGarb(t) + TotColl(t); ActGarb comes from the
  // estimator (which the host updated before this call).
  const double act_garb = estimator_->Estimate();
  const double tot_garb = act_garb + static_cast<double>(total_collected_);

  // Smoothed finite-difference slope of TotGarb.
  if (has_prev_point_ && t > prev_time_) {
    double sample =
        (tot_garb - prev_tot_garb_) / static_cast<double>(t - prev_time_);
    if (!has_slope_) {
      slope_ = sample;
      has_slope_ = true;
    } else {
      slope_ = options_.slope_weight * slope_ +
               (1.0 - options_.slope_weight) * sample;
    }
  }
  prev_tot_garb_ = tot_garb;
  prev_time_ = t;
  has_prev_point_ = true;

  const double target_garb =
      static_cast<double>(clock.db_used_bytes) * options_.garbage_frac;
  const double garb_diff = act_garb - target_garb;
  const double curr_coll = static_cast<double>(outcome.bytes_reclaimed);
  const double numerator = curr_coll - garb_diff;

  double dt;
  obs::DecisionReason reason = obs::DecisionReason::kSlopeSolve;
  constexpr double kSlopeEpsilon = 1e-9;
  if (has_slope_ && slope_ > kSlopeEpsilon) {
    dt = numerator / slope_;
  } else {
    // Degenerate slope: no garbage is being created (or the estimate is
    // shrinking). If we are over budget, act as soon as possible;
    // otherwise there is no reason to collect for a long time. Both
    // fallbacks count as clamp utilizations (cf. Section 2.3's remark
    // that dt_min/dt_max are rarely needed in practice).
    if (numerator < 0.0) {
      dt = static_cast<double>(options_.dt_min);
      ++dt_min_clamps_;
      reason = obs::DecisionReason::kDegenerateSlopeMin;
    } else {
      dt = static_cast<double>(options_.dt_max);
      ++dt_max_clamps_;
      reason = obs::DecisionReason::kDegenerateSlopeMax;
    }
  }

  uint64_t dt_int;
  if (!(dt >= static_cast<double>(options_.dt_min))) {  // also catches NaN
    dt_int = options_.dt_min;
    ++dt_min_clamps_;
    if (reason == obs::DecisionReason::kSlopeSolve) {
      reason = obs::DecisionReason::kDtMinClamp;
    }
  } else if (dt >= static_cast<double>(options_.dt_max)) {
    dt_int = options_.dt_max;
    ++dt_max_clamps_;
    if (reason == obs::DecisionReason::kSlopeSolve) {
      reason = obs::DecisionReason::kDtMaxClamp;
    }
  } else {
    dt_int = static_cast<uint64_t>(std::llround(dt));
  }
  last_dt_ = dt_int;
  next_overwrite_threshold_ = t + dt_int;
  idle_stalled_ = false;  // load resumed; re-arm opportunism

  ODBGC_IF_TEL(tel_) { RecordDecision(dt_int, act_garb, target_garb, reason); }
}

void SagaPolicy::RecordDecision(uint64_t dt, double act_garb,
                                double target_garb,
                                obs::DecisionReason reason) {
  tel_->Instant("policy_decision",
                {{"policy", "saga"},
                 {"dt", dt},
                 {"slope", has_slope_ ? slope_ : 0.0},
                 {"act_garb", act_garb},
                 {"target_garb", target_garb},
                 {"next_threshold", next_overwrite_threshold_}});
  tel_->metrics().GetGauge("policy.saga.dt")->Set(static_cast<double>(dt));
  tel_->metrics().GetGauge("policy.saga.act_garb")->Set(act_garb);
  if (obs::DecisionLedger* ledger = tel_->ledger()) {
    ledger->Append("saga", reason, static_cast<double>(dt),
                   next_overwrite_threshold_, 100.0 * options_.garbage_frac);
  }
}

bool SagaPolicy::ShouldCollectWhenIdle(const SimClock& clock) {
  if (!options_.opportunism) return false;
  if (idle_stalled_) return false;
  double floor = static_cast<double>(clock.db_used_bytes) *
                 options_.idle_floor_frac;
  return estimator_->Estimate() > floor;
}

void SagaPolicy::OnIdleCollection(const CollectionOutcome& outcome,
                                  const SimClock& clock) {
  total_collected_ += outcome.bytes_reclaimed;
  // An idle collection that reclaims nothing means the remaining garbage
  // is out of the collector's immediate reach (e.g. cross-partition
  // floating garbage); stop burning idle cycles until load resumes.
  idle_stalled_ = outcome.bytes_reclaimed == 0;
  // Recompute the next scheduled collection against the reduced garbage
  // level; the slope history is untouched (no overwrite time passed).
  const double act_garb = estimator_->Estimate();
  const double target_garb =
      static_cast<double>(clock.db_used_bytes) * options_.garbage_frac;
  const double garb_diff = act_garb - target_garb;
  const double numerator =
      static_cast<double>(outcome.bytes_reclaimed) - garb_diff;
  if (has_slope_ && slope_ > 1e-9) {
    double dt = numerator / slope_;
    if (dt < static_cast<double>(options_.dt_min)) {
      dt = static_cast<double>(options_.dt_min);
    } else if (dt > static_cast<double>(options_.dt_max)) {
      dt = static_cast<double>(options_.dt_max);
    }
    last_dt_ = static_cast<uint64_t>(dt);
    next_overwrite_threshold_ = clock.pointer_overwrites + last_dt_;
    ODBGC_IF_TEL(tel_) {
      RecordDecision(last_dt_, act_garb, target_garb,
                     obs::DecisionReason::kIdleReschedule);
    }
  }
}

void SagaPolicy::SaveState(SnapshotWriter& w) const {
  w.U64(total_collected_);
  w.F64(slope_);
  w.Bool(has_slope_);
  w.F64(prev_tot_garb_);
  w.U64(prev_time_);
  w.Bool(has_prev_point_);
  w.U64(next_overwrite_threshold_);
  w.U64(last_dt_);
  w.U64(dt_min_clamps_);
  w.U64(dt_max_clamps_);
  w.Bool(idle_stalled_);
  estimator_->SaveState(w);
}

void SagaPolicy::RestoreState(SnapshotReader& r) {
  total_collected_ = r.U64();
  slope_ = r.F64();
  has_slope_ = r.Bool();
  prev_tot_garb_ = r.F64();
  prev_time_ = r.U64();
  has_prev_point_ = r.Bool();
  next_overwrite_threshold_ = r.U64();
  last_dt_ = r.U64();
  dt_min_clamps_ = r.U64();
  dt_max_clamps_ = r.U64();
  idle_stalled_ = r.Bool();
  estimator_->RestoreState(r);
}

std::string SagaPolicy::name() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "SAGA(frac=%.3f,%s)",
                options_.garbage_frac, estimator_->name().c_str());
  return buf;
}

}  // namespace odbgc
