#include "core/alloc_triggered.h"

#include "util/check.h"

namespace odbgc {

AllocationRatePolicy::AllocationRatePolicy(uint64_t bytes_per_collection)
    : interval_(bytes_per_collection),
      next_threshold_(bytes_per_collection) {
  ODBGC_CHECK(bytes_per_collection > 0);
}

bool AllocationRatePolicy::ShouldCollect(const SimClock& clock) {
  return clock.bytes_allocated >= next_threshold_;
}

void AllocationRatePolicy::OnCollection(const CollectionOutcome& /*outcome*/,
                                        const SimClock& clock) {
  next_threshold_ = clock.bytes_allocated + interval_;
  ODBGC_IF_TEL(tel_) { RecordDecision(); }
}

void AllocationRatePolicy::RecordDecision() {
  tel_->Instant("policy_decision", {{"policy", "alloc_rate"},
                                    {"interval", interval_},
                                    {"next_threshold", next_threshold_}});
  if (obs::DecisionLedger* ledger = tel_->ledger()) {
    ledger->Append("alloc_rate", obs::DecisionReason::kAllocInterval,
                   static_cast<double>(interval_), next_threshold_, 0.0);
  }
}

std::string AllocationRatePolicy::name() const {
  return "AllocationRate(" + std::to_string(interval_) + "B)";
}

bool AllocationTriggeredPolicy::ShouldCollect(const SimClock& clock) {
  return clock.partitions > partitions_seen_;
}

void AllocationTriggeredPolicy::OnCollection(
    const CollectionOutcome& /*outcome*/, const SimClock& clock) {
  partitions_seen_ = clock.partitions;
  ODBGC_IF_TEL(tel_) { RecordDecision(); }
}

void AllocationTriggeredPolicy::RecordDecision() {
  tel_->Instant("policy_decision", {{"policy", "alloc_triggered"},
                                    {"partitions_seen", partitions_seen_}});
  if (obs::DecisionLedger* ledger = tel_->ledger()) {
    ledger->Append("alloc_triggered", obs::DecisionReason::kPartitionGrowth,
                   0.0, partitions_seen_, 0.0);
  }
}

}  // namespace odbgc
