#include "core/alloc_triggered.h"

#include "util/check.h"

namespace odbgc {

AllocationRatePolicy::AllocationRatePolicy(uint64_t bytes_per_collection)
    : interval_(bytes_per_collection),
      next_threshold_(bytes_per_collection) {
  ODBGC_CHECK(bytes_per_collection > 0);
}

bool AllocationRatePolicy::ShouldCollect(const SimClock& clock) {
  return clock.bytes_allocated >= next_threshold_;
}

void AllocationRatePolicy::OnCollection(const CollectionOutcome& /*outcome*/,
                                        const SimClock& clock) {
  next_threshold_ = clock.bytes_allocated + interval_;
}

std::string AllocationRatePolicy::name() const {
  return "AllocationRate(" + std::to_string(interval_) + "B)";
}

bool AllocationTriggeredPolicy::ShouldCollect(const SimClock& clock) {
  return clock.partitions > partitions_seen_;
}

void AllocationTriggeredPolicy::OnCollection(
    const CollectionOutcome& /*outcome*/, const SimClock& clock) {
  partitions_seen_ = clock.partitions;
}

}  // namespace odbgc
