#ifndef ODBGC_CORE_SAGA_H_
#define ODBGC_CORE_SAGA_H_

#include <cstdint>
#include <memory>

#include "core/estimator.h"
#include "core/rate_policy.h"

namespace odbgc {

// SAGA — the Semi-Automatic GArbage policy (Section 2.3).
//
// The user asks that unreachable data stay near a fraction SAGA_Frac of
// the database size. Time is measured in pointer overwrites (no garbage
// can appear without one). After each collection at time t, the policy
// schedules the next collection Delta_t overwrites later:
//
//   Delta_t = (CurrColl - GarbDiff(t)) / TotGarb'(t)
//
// where GarbDiff(t) = ActGarb(t) - DBSize(t) * SAGA_Frac, CurrColl is the
// garbage just reclaimed (assumed representative of the next collection),
// and TotGarb'(t) — the garbage creation rate — is estimated by an
// exponentially smoothed finite difference with weight Weight (0.7 in
// the paper). ActGarb comes from a pluggable GarbageEstimator (oracle,
// CGS/CB or FGS/HB). Delta_t is clamped to [dt_min, dt_max] because the
// quotient degenerates when the slope approaches zero or goes negative.
class SagaPolicy : public RatePolicy {
 public:
  struct Options {
    double garbage_frac = 0.10;   // SAGA_Frac
    double slope_weight = 0.7;    // the paper's Weight
    uint64_t dt_min = 2;          // overwrites
    uint64_t dt_max = 1000;       // overwrites
    uint64_t bootstrap_overwrites = 1000;  // first collection trigger
    // Quiescence extension (Section 5): when the host reports an idle
    // workload, collect below the user's stated limit, down to
    // idle_floor_frac of the database. Disabled by default (the base
    // paper's behavior).
    bool opportunism = false;
    double idle_floor_frac = 0.05;
  };

  SagaPolicy(const Options& options,
             std::unique_ptr<GarbageEstimator> estimator);

  bool ShouldCollect(const SimClock& clock) override;
  void OnCollection(const CollectionOutcome& outcome,
                    const SimClock& clock) override;
  std::string name() const override;

  // Quiescence extension: while idle, keep collecting until the garbage
  // estimate falls to idle_floor_frac of the database (or collections
  // stop yielding). Idle reclaims update TotColl — TotGarb is invariant
  // to collections — but do not perturb the slope history.
  bool ShouldCollectWhenIdle(const SimClock& clock) override;
  void OnIdleCollection(const CollectionOutcome& outcome,
                        const SimClock& clock) override;

  GarbageEstimator& estimator() { return *estimator_; }
  const GarbageEstimator& estimator() const { return *estimator_; }
  const Options& options() const { return options_; }

  uint64_t last_dt() const { return last_dt_; }
  double slope() const { return slope_; }
  uint64_t dt_min_clamps() const { return dt_min_clamps_; }
  uint64_t dt_max_clamps() const { return dt_max_clamps_; }

  // Serializes the control state and the owned estimator's state.
  void SaveState(SnapshotWriter& w) const override;
  void RestoreState(SnapshotReader& r) override;

 private:
  // Out of line so OnCollection's hot path pays only a predicted-not-
  // taken branch, not the trace-argument stack frame.
  void RecordDecision(uint64_t dt, double act_garb, double target_garb,
                      obs::DecisionReason reason);

  Options options_;
  std::unique_ptr<GarbageEstimator> estimator_;

  uint64_t total_collected_ = 0;  // TotColl
  double slope_ = 0.0;            // TotGarb'(t), smoothed
  bool has_slope_ = false;
  double prev_tot_garb_ = 0.0;
  uint64_t prev_time_ = 0;
  bool has_prev_point_ = false;

  uint64_t next_overwrite_threshold_;
  uint64_t last_dt_ = 0;
  uint64_t dt_min_clamps_ = 0;
  uint64_t dt_max_clamps_ = 0;
  bool idle_stalled_ = false;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_SAGA_H_
