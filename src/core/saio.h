#ifndef ODBGC_CORE_SAIO_H_
#define ODBGC_CORE_SAIO_H_

#include <cstdint>
#include <deque>
#include <limits>

#include "core/rate_policy.h"

namespace odbgc {

// SAIO — the Semi-Automatic I/O policy (Section 2.2).
//
// The user asks that garbage collection consume a fraction SAIO_Frac of
// all I/O operations. After each collection the policy schedules the next
// one Delta_AppIO application I/O operations away, chosen so that over the
// history window (the last c_hist inter-collection periods plus the
// predicted next one) the GC share of I/O equals SAIO_Frac:
//
//   (HistGCIO + CurrGCIO) /
//   (HistAppIO + Delta_AppIO + HistGCIO + CurrGCIO)  =  SAIO_Frac
//
// under the assumption Delta_GCIO ~= CurrGCIO (successive collections
// cost about the same I/O). With c_hist = 0 this reduces to
// Delta_AppIO = CurrGCIO * (1 - f) / f.
class SaioPolicy : public RatePolicy {
 public:
  static constexpr size_t kInfiniteHistory =
      std::numeric_limits<size_t>::max();

  // io_frac in (0, 1): requested collector share of total I/O.
  // history_size is the paper's c_hist (number of past collections used).
  // bootstrap_app_io schedules the very first collection (the paper uses
  // an oracle-driven preamble; any sane bootstrap is excluded from
  // measurement by the preamble convention).
  SaioPolicy(double io_frac, size_t history_size = 0,
             uint64_t bootstrap_app_io = 2000);

  bool ShouldCollect(const SimClock& clock) override;
  void OnCollection(const CollectionOutcome& outcome,
                    const SimClock& clock) override;
  std::string name() const override;

  // Quiescence extension: idle I/O is free, so keep collecting while
  // collections still find a worthwhile amount of garbage. Idle
  // collections are excluded from the c_hist window — they must not
  // stretch the active-workload schedule.
  bool ShouldCollectWhenIdle(const SimClock& clock) override;
  void OnIdleCollection(const CollectionOutcome& outcome,
                        const SimClock& clock) override;

  // Enables/configures opportunism (disabled yields base-paper behavior).
  void set_opportunism(bool enabled, uint64_t min_idle_yield_bytes = 4096);

  // Budget coordination: clamps to (0, 1) open interval; the new
  // fraction feeds the next OnCollection solve.
  void SetIoBudget(double io_frac) override {
    if (io_frac > 0.0 && io_frac < 1.0) io_frac_ = io_frac;
  }

  double io_frac() const { return io_frac_; }
  size_t history_size() const { return history_size_; }
  uint64_t next_app_io_threshold() const { return next_app_io_threshold_; }
  uint64_t last_delta_app_io() const { return last_delta_app_io_; }

  void SaveState(SnapshotWriter& w) const override;
  void RestoreState(SnapshotReader& r) override;

 private:
  struct PeriodRecord {
    uint64_t app_io;  // application I/O during the period before a GC
    uint64_t gc_io;   // that GC's I/O
  };

  // Out of line so OnCollection's hot path pays only a predicted-not-
  // taken branch, not the trace-argument stack frame.
  void RecordDecision(uint64_t period_app_io, uint64_t curr_gc_io,
                      bool over_budget);

  double io_frac_;
  size_t history_size_;
  std::deque<PeriodRecord> history_;
  uint64_t hist_app_io_sum_ = 0;
  uint64_t hist_gc_io_sum_ = 0;
  uint64_t app_io_at_last_collection_ = 0;
  uint64_t next_app_io_threshold_;
  uint64_t last_delta_app_io_ = 0;

  bool opportunism_enabled_ = false;
  uint64_t min_idle_yield_bytes_ = 4096;
  bool idle_yield_known_ = false;
  uint64_t last_idle_yield_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_SAIO_H_
