#include "core/fixed_rate.h"

#include "util/check.h"

namespace odbgc {

FixedRatePolicy::FixedRatePolicy(uint64_t overwrites_per_collection)
    : interval_(overwrites_per_collection),
      next_threshold_(overwrites_per_collection) {
  ODBGC_CHECK(overwrites_per_collection > 0);
}

bool FixedRatePolicy::ShouldCollect(const SimClock& clock) {
  return clock.pointer_overwrites >= next_threshold_;
}

void FixedRatePolicy::OnCollection(const CollectionOutcome& /*outcome*/,
                                   const SimClock& clock) {
  next_threshold_ = clock.pointer_overwrites + interval_;
  ODBGC_IF_TEL(tel_) { RecordDecision(); }
}

void FixedRatePolicy::RecordDecision() {
  tel_->Instant("policy_decision", {{"policy", wire_name_},
                                    {"interval", interval_},
                                    {"next_threshold", next_threshold_}});
  if (obs::DecisionLedger* ledger = tel_->ledger()) {
    ledger->Append(wire_name_, obs::DecisionReason::kIntervalElapsed,
                   static_cast<double>(interval_), next_threshold_, 0.0);
  }
}

std::string FixedRatePolicy::name() const {
  return "FixedRate(" + std::to_string(interval_) + ")";
}

uint64_t ConnectivityHeuristicPolicy::DeriveInterval(
    double avg_connectivity, double avg_object_bytes,
    uint64_t partition_bytes) {
  ODBGC_CHECK(avg_connectivity > 0 && avg_object_bytes > 0);
  // Every avg_connectivity overwrites supposedly free avg_object_bytes;
  // collect when a partition's worth has "accumulated".
  double garbage_per_overwrite = avg_object_bytes / avg_connectivity;
  double interval =
      static_cast<double>(partition_bytes) / garbage_per_overwrite;
  // Truncation matches the paper's worked example: connectivity 4,
  // 133-byte objects and 96 KB partitions give "every 2956 overwrites".
  return static_cast<uint64_t>(interval);
}

ConnectivityHeuristicPolicy::ConnectivityHeuristicPolicy(
    double avg_connectivity, double avg_object_bytes,
    uint64_t partition_bytes)
    : FixedRatePolicy(DeriveInterval(avg_connectivity, avg_object_bytes,
                                     partition_bytes)) {
  set_wire_name("connectivity");
}

}  // namespace odbgc
