#ifndef ODBGC_CORE_ESTIMATOR_H_
#define ODBGC_CORE_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/snapshot.h"

namespace odbgc {

// What an estimator learns from a finished collection (Section 2.4's
// "behavior" component, plus the state inputs it needs).
struct EstimatorCollectionInfo {
  uint32_t partition = 0;
  uint64_t bytes_reclaimed = 0;  // C: bytes reclaimed by this collection
  // FGS value of the collected partition at collection time: pointer
  // overwrites accumulated there since its previous collection. The
  // collection resets it to zero.
  uint64_t partition_overwrites = 0;
  uint64_t partition_count = 0;  // p: allocated partitions (CGS)
  // Oracle instrumentation only — exact unreachable bytes after this
  // collection. Practical estimators must not read it.
  uint64_t ground_truth_garbage_bytes = 0;
};

// Estimates the amount of unreachable data in the database (ActGarb in
// Section 2.3) without scanning it. Estimators combine a *state*
// description (coarse: partition count; fine: per-partition overwrite
// counters) with a *behavior* metric derived from past collections
// (current or history-averaged) — Section 2.4's design space.
class GarbageEstimator {
 public:
  virtual ~GarbageEstimator() = default;

  // Current estimate of unreachable bytes.
  virtual double Estimate() const = 0;

  // A pointer into `partition` was overwritten (fine-grain state feed).
  virtual void OnPointerOverwrite(uint32_t partition) = 0;

  // A collection completed.
  virtual void OnCollection(const EstimatorCollectionInfo& info) = 0;

  virtual std::string name() const = 0;

  // Checkpoint hooks (sim/checkpoint.h): mutable estimation state only
  // (history factors are constructor parameters and travel with config).
  virtual void SaveState(SnapshotWriter& w) const = 0;
  virtual void RestoreState(SnapshotReader& r) = 0;
};

// Perfect estimator: returns the exact garbage content. This is the
// paper's impractical-to-implement oracle used to evaluate the SAGA
// control algorithm independent of estimation error.
class OracleEstimator : public GarbageEstimator {
 public:
  double Estimate() const override { return ground_truth_; }
  void OnPointerOverwrite(uint32_t partition) override;
  void OnCollection(const EstimatorCollectionInfo& info) override;
  std::string name() const override { return "Oracle"; }

  // The oracle may also be fed continuously (e.g. per event) by a host
  // that tracks exact garbage.
  void SetGroundTruth(double bytes) { ground_truth_ = bytes; }

  void SaveState(SnapshotWriter& w) const override { w.F64(ground_truth_); }
  void RestoreState(SnapshotReader& r) override { ground_truth_ = r.F64(); }

 private:
  double ground_truth_ = 0.0;
};

// Coarse Grain State / History Behavior: the fourth corner of Section
// 2.4's state x behavior design space. Like CGS/CB, but the bytes-
// reclaimed-per-collection behavior metric is smoothed with an
// exponential mean before being multiplied by the partition count:
//   C_h     = h * C_h + (1 - h) * C
//   ActGarb = C_h * p
// Smoothing removes CGS/CB's collection-to-collection swings but not its
// bias: under a selection policy that targets garbage-rich partitions,
// the smoothed C_h is just as unrepresentative.
class CgsHbEstimator : public GarbageEstimator {
 public:
  explicit CgsHbEstimator(double history_factor);

  double Estimate() const override;
  void OnPointerOverwrite(uint32_t partition) override;
  void OnCollection(const EstimatorCollectionInfo& info) override;
  std::string name() const override;

  double history_factor() const { return history_factor_; }
  double smoothed_reclaimed() const { return smoothed_reclaimed_; }

  void SaveState(SnapshotWriter& w) const override;
  void RestoreState(SnapshotReader& r) override;

 private:
  double history_factor_;
  double smoothed_reclaimed_ = 0.0;
  bool has_history_ = false;
  uint64_t partition_count_ = 0;
};

// Coarse Grain State / Current Behavior (Section 2.4.1):
//   ActGarb = C * p
// i.e. assume the bytes reclaimed from the last collected partition are
// representative of every allocated partition. Accurate only if the
// selection policy picks average partitions; under UpdatedPointer it
// grossly overestimates (Figure 6a).
class CgsCbEstimator : public GarbageEstimator {
 public:
  double Estimate() const override;
  void OnPointerOverwrite(uint32_t partition) override;
  void OnCollection(const EstimatorCollectionInfo& info) override;
  std::string name() const override { return "CGS/CB"; }

  void SaveState(SnapshotWriter& w) const override;
  void RestoreState(SnapshotReader& r) override;

 private:
  uint64_t last_reclaimed_ = 0;
  uint64_t partition_count_ = 0;
};

// Fine Grain State / History Behavior (Section 2.4.2):
//   GPPO_h  = h * GPPO_h + (1 - h) * GPPO        (exponential mean)
//   ActGarb = GPPO_h * sum_p PO(p)
// where GPPO is bytes reclaimed per pointer overwrite observed by the
// last collection and PO(p) counts overwrites outstanding in partition p
// (reset to 0 when p is collected). h = 0 degenerates to FGS/CB.
class FgsHbEstimator : public GarbageEstimator {
 public:
  explicit FgsHbEstimator(double history_factor);

  double Estimate() const override;
  void OnPointerOverwrite(uint32_t partition) override;
  void OnCollection(const EstimatorCollectionInfo& info) override;
  std::string name() const override;

  double history_factor() const { return history_factor_; }
  double gppo_history() const { return gppo_history_; }
  uint64_t outstanding_overwrites() const { return outstanding_overwrites_; }

  void SaveState(SnapshotWriter& w) const override;
  void RestoreState(SnapshotReader& r) override;

 private:
  double history_factor_;
  double gppo_history_ = 0.0;
  bool has_history_ = false;
  std::vector<uint64_t> per_partition_overwrites_;
  uint64_t outstanding_overwrites_ = 0;
};

// The four corners of Section 2.4's design space (state: coarse/fine x
// behavior: current/history), plus the oracle. kFgsCb is FGS/HB with the
// history factor forced to 0 (the degenerate case the paper notes).
enum class EstimatorKind { kOracle, kCgsCb, kCgsHb, kFgsCb, kFgsHb };

std::unique_ptr<GarbageEstimator> MakeEstimator(EstimatorKind kind,
                                                double history_factor);

}  // namespace odbgc

#endif  // ODBGC_CORE_ESTIMATOR_H_
