#ifndef ODBGC_CORE_ALLOC_TRIGGERED_H_
#define ODBGC_CORE_ALLOC_TRIGGERED_H_

#include <cstdint>

#include "core/rate_policy.h"

namespace odbgc {

// The allocation-clock baselines the paper contrasts itself against:
// Yong, Naughton and Yu "assume that collection is triggered either when
// free-space becomes unavailable or after a fixed amount of storage is
// allocated" — heuristics borrowed from programming-language GC, where
// allocation and garbage creation correlate. Section 2 argues they do
// NOT correlate in object databases; these policies exist so that claim
// can be measured (bench/ablation_triggers).

// "After a fixed amount of storage is allocated": collect every
// `bytes_per_collection` allocated bytes.
class AllocationRatePolicy : public RatePolicy {
 public:
  explicit AllocationRatePolicy(uint64_t bytes_per_collection);

  bool ShouldCollect(const SimClock& clock) override;
  void OnCollection(const CollectionOutcome& outcome,
                    const SimClock& clock) override;
  std::string name() const override;

  uint64_t bytes_per_collection() const { return interval_; }

  void SaveState(SnapshotWriter& w) const override { w.U64(next_threshold_); }
  void RestoreState(SnapshotReader& r) override { next_threshold_ = r.U64(); }

 private:
  // Out of line; see FixedRatePolicy::RecordDecision.
  void RecordDecision();

  uint64_t interval_;
  uint64_t next_threshold_;
};

// "When free-space becomes unavailable": collect whenever an allocation
// forced the database to grow a partition (growth is the store's
// free-space-exhausted signal, since growth never blocks — Section 3.1
// decouples the two on purpose, which is exactly what this baseline
// re-couples).
class AllocationTriggeredPolicy : public RatePolicy {
 public:
  AllocationTriggeredPolicy() = default;

  bool ShouldCollect(const SimClock& clock) override;
  void OnCollection(const CollectionOutcome& outcome,
                    const SimClock& clock) override;
  std::string name() const override { return "AllocationTriggered"; }

  void SaveState(SnapshotWriter& w) const override { w.U64(partitions_seen_); }
  void RestoreState(SnapshotReader& r) override { partitions_seen_ = r.U64(); }

 private:
  // Out of line; see FixedRatePolicy::RecordDecision.
  void RecordDecision();

  uint64_t partitions_seen_ = 0;
};

}  // namespace odbgc

#endif  // ODBGC_CORE_ALLOC_TRIGGERED_H_
