#include "core/estimator.h"

#include <cstdio>

#include "util/check.h"

namespace odbgc {

void OracleEstimator::OnPointerOverwrite(uint32_t /*partition*/) {}

void OracleEstimator::OnCollection(const EstimatorCollectionInfo& info) {
  ground_truth_ = static_cast<double>(info.ground_truth_garbage_bytes);
}

CgsHbEstimator::CgsHbEstimator(double history_factor)
    : history_factor_(history_factor) {
  ODBGC_CHECK_MSG(history_factor >= 0.0 && history_factor <= 1.0,
                  "history factor must be in [0, 1]");
}

double CgsHbEstimator::Estimate() const {
  return smoothed_reclaimed_ * static_cast<double>(partition_count_);
}

void CgsHbEstimator::OnPointerOverwrite(uint32_t /*partition*/) {}

void CgsHbEstimator::OnCollection(const EstimatorCollectionInfo& info) {
  double c = static_cast<double>(info.bytes_reclaimed);
  if (!has_history_) {
    smoothed_reclaimed_ = c;
    has_history_ = true;
  } else {
    smoothed_reclaimed_ =
        history_factor_ * smoothed_reclaimed_ + (1.0 - history_factor_) * c;
  }
  partition_count_ = info.partition_count;
}

std::string CgsHbEstimator::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "CGS/HB(h=%.2f)", history_factor_);
  return buf;
}

void CgsHbEstimator::SaveState(SnapshotWriter& w) const {
  w.F64(smoothed_reclaimed_);
  w.Bool(has_history_);
  w.U64(partition_count_);
}

void CgsHbEstimator::RestoreState(SnapshotReader& r) {
  smoothed_reclaimed_ = r.F64();
  has_history_ = r.Bool();
  partition_count_ = r.U64();
}

double CgsCbEstimator::Estimate() const {
  return static_cast<double>(last_reclaimed_) *
         static_cast<double>(partition_count_);
}

void CgsCbEstimator::OnPointerOverwrite(uint32_t /*partition*/) {}

void CgsCbEstimator::OnCollection(const EstimatorCollectionInfo& info) {
  last_reclaimed_ = info.bytes_reclaimed;
  partition_count_ = info.partition_count;
}

void CgsCbEstimator::SaveState(SnapshotWriter& w) const {
  w.U64(last_reclaimed_);
  w.U64(partition_count_);
}

void CgsCbEstimator::RestoreState(SnapshotReader& r) {
  last_reclaimed_ = r.U64();
  partition_count_ = r.U64();
}

FgsHbEstimator::FgsHbEstimator(double history_factor)
    : history_factor_(history_factor) {
  ODBGC_CHECK_MSG(history_factor >= 0.0 && history_factor <= 1.0,
                  "history factor must be in [0, 1]");
}

double FgsHbEstimator::Estimate() const {
  return gppo_history_ * static_cast<double>(outstanding_overwrites_);
}

void FgsHbEstimator::OnPointerOverwrite(uint32_t partition) {
  if (partition >= per_partition_overwrites_.size()) {
    per_partition_overwrites_.resize(partition + 1, 0);
  }
  ++per_partition_overwrites_[partition];
  ++outstanding_overwrites_;
}

void FgsHbEstimator::OnCollection(const EstimatorCollectionInfo& info) {
  if (info.partition < per_partition_overwrites_.size()) {
    uint64_t po = per_partition_overwrites_[info.partition];
    ODBGC_CHECK(outstanding_overwrites_ >= po);
    outstanding_overwrites_ -= po;
    per_partition_overwrites_[info.partition] = 0;
  }
  // Behavior sample: bytes reclaimed per pointer overwrite into the
  // collected partition. A collection of a partition with no overwrites
  // carries no rate information; skip the history update.
  if (info.partition_overwrites > 0) {
    double gppo = static_cast<double>(info.bytes_reclaimed) /
                  static_cast<double>(info.partition_overwrites);
    if (!has_history_) {
      gppo_history_ = gppo;
      has_history_ = true;
    } else {
      gppo_history_ =
          history_factor_ * gppo_history_ + (1.0 - history_factor_) * gppo;
    }
  }
}

std::string FgsHbEstimator::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "FGS/HB(h=%.2f)", history_factor_);
  return buf;
}

void FgsHbEstimator::SaveState(SnapshotWriter& w) const {
  w.F64(gppo_history_);
  w.Bool(has_history_);
  w.VecU64(per_partition_overwrites_);
  w.U64(outstanding_overwrites_);
}

void FgsHbEstimator::RestoreState(SnapshotReader& r) {
  gppo_history_ = r.F64();
  has_history_ = r.Bool();
  per_partition_overwrites_ = r.VecU64();
  outstanding_overwrites_ = r.U64();
}

std::unique_ptr<GarbageEstimator> MakeEstimator(EstimatorKind kind,
                                                double history_factor) {
  switch (kind) {
    case EstimatorKind::kOracle:
      return std::make_unique<OracleEstimator>();
    case EstimatorKind::kCgsCb:
      return std::make_unique<CgsCbEstimator>();
    case EstimatorKind::kCgsHb:
      return std::make_unique<CgsHbEstimator>(history_factor);
    case EstimatorKind::kFgsCb:
      return std::make_unique<FgsHbEstimator>(0.0);
    case EstimatorKind::kFgsHb:
      return std::make_unique<FgsHbEstimator>(history_factor);
  }
  ODBGC_CHECK_MSG(false, "unknown estimator kind");
  return nullptr;
}

}  // namespace odbgc
