#ifndef ODBGC_OO7_GENERATOR_H_
#define ODBGC_OO7_GENERATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "oo7/params.h"
#include "storage/types.h"
#include "trace/trace.h"
#include "util/random.h"

namespace odbgc {

// Generates application traces against a shadow OO7 database. The
// generator maintains its own logical copy of the object graph (it never
// touches the simulated store) and emits the event stream a real OO7
// application would produce: creations, list walks (reads), pointer
// overwrites, and ground-truth garbage markers at the instant a cluster
// becomes unreachable.
//
// The four phases reproduce Figure 2 (with the paper's modifications to
// the Yong/Naughton/Yu application described in Section 3.4):
//   GenDB    - build the database of Table 1 / Figure 3.
//   Reorg1   - delete half the atomic parts of each composite and
//              reinsert them clustered (composite by composite).
//   Traverse - read-only depth-first traversal over all atomic parts.
//   Reorg2   - delete half the atomic parts again, then reinsert them
//              interleaved across composites so that the physical
//              clustering of a composite's parts is destroyed.
class Oo7Generator {
 public:
  Oo7Generator(const Oo7Params& params, uint64_t seed);

  // Emits all four phases (GenDB, Reorg1, Traverse, Reorg2) into a fresh
  // trace, with phase-mark annotations.
  Trace GenerateFullApplication();

  // Individual phases, for custom workload composition. GenDb must run
  // first; the others may be repeated or reordered.
  void GenDb(Trace* trace);
  void Reorg1(Trace* trace);
  void Traverse(Trace* trace);
  void Reorg2(Trace* trace);

  // Further OO7 operations [CDN93], usable after GenDb:
  //
  // T2: the T1 traversal with attribute updates on the atomic parts —
  // `updates_per_part` kUpdate events per visited part (OO7's T2a/b/c
  // are 1-per-composite, 1-per-part, 4-per-part). Updates dirty pages
  // but never advance the overwrite clock.
  void TraverseT2(Trace* trace, int updates_per_part);
  // T6: a sparse traversal touching each composite and its first atomic
  // part only.
  void TraverseT6(Trace* trace);
  // Structural insert: build `count` new composite parts (documents,
  // atomic parts, connections) and link each into a base assembly with a
  // free reference slot. Returns how many were actually inserted (base
  // assemblies have bounded slot capacity).
  int StructuralInsert(Trace* trace, int count);
  // Structural delete: unlink `count` randomly chosen composite parts
  // from every referencing assembly. The final unlink detaches the whole
  // composite cluster — part hierarchy, connections, and the 2000-byte
  // document — in one pointer overwrite: the paper's Section 2.1 remark
  // about single overwrites disconnecting "very large objects, such as
  // OO7 document nodes". Returns how many were deleted.
  int StructuralDelete(Trace* trace, int count);

  size_t live_composite_count() const;

  const Oo7Params& params() const { return params_; }
  ObjectId next_object_id() const { return next_id_; }
  size_t live_atomic_count() const { return atomics_.size(); }
  size_t live_connection_count() const { return conns_.size(); }

 private:
  struct AtomicInfo {
    size_t composite = 0;          // index into composites_
    std::vector<ObjectId> conns;   // outgoing connections, list order
    std::vector<ObjectId> in_conns;
  };

  struct ConnInfo {
    ObjectId owner = kNullObject;
    ObjectId target = kNullObject;
  };

  struct CompositeInfo {
    ObjectId id = kNullObject;
    std::vector<ObjectId> parts;  // atomic list order, front = head
    // Whether an assembly references the composite yet. Until then the
    // application's workspace pins it (AddRoot/RemoveRoot in the trace).
    bool linked = false;
    bool alive = true;
    // (assembly index, slot) pairs referencing this composite.
    std::vector<std::pair<size_t, uint32_t>> refs;
    // Document node ids (head first), for size accounting on delete.
    std::vector<ObjectId> doc_nodes;
  };

  struct AssemblyInfo {
    ObjectId id = kNullObject;
    // Interior: child assemblies. Base: slot contents (kNullObject for
    // a free reference slot).
    std::vector<ObjectId> children;
    bool base = false;
  };

  ObjectId NewId() { return next_id_++; }

  void BuildComposite(Trace* t, size_t comp_index);
  ObjectId BuildAssembly(Trace* t, uint32_t level,
                         const std::vector<size_t>& comp_pool);
  void CreateConnection(Trace* t, ObjectId source, ObjectId target,
                        ObjectId near_hint = kNullObject);
  void UnlinkConnectionFromOwner(Trace* t, ObjectId conn);
  void DeleteAtomic(Trace* t, ObjectId atomic);
  ObjectId ReinsertAtomic(Trace* t, size_t comp_index, bool clustered);
  std::vector<ObjectId> ChooseDeletions(size_t comp_index);
  ObjectId PickTarget(size_t comp_index, ObjectId exclude);
  ObjectId PickTarget2(size_t comp_index, ObjectId exclude_a,
                       ObjectId exclude_b);
  void TraverseComposite(Trace* t, size_t comp_index, int updates_per_part);
  // Records that base assembly `assm_index` slot `slot` references the
  // composite, emitting the write and handling the construction unpin.
  void LinkCompositeToAssembly(Trace* t, size_t assm_index, uint32_t slot,
                               size_t comp_index);
  uint64_t CompositeClusterBytes(const CompositeInfo& comp) const;
  uint32_t CompositeClusterObjects(const CompositeInfo& comp) const;

  Oo7Params params_;
  Rng rng_;
  ObjectId next_id_ = 1;
  bool generated_ = false;
  // Base-assembly composite slots filled so far in the current module;
  // the first |composites| slots cover every composite deterministically.
  size_t next_base_slot_ = 0;

  std::vector<ObjectId> module_ids_;
  std::vector<CompositeInfo> composites_;
  std::vector<AssemblyInfo> assemblies_;
  std::unordered_map<ObjectId, AtomicInfo> atomics_;
  std::unordered_map<ObjectId, ConnInfo> conns_;
};

}  // namespace odbgc

#endif  // ODBGC_OO7_GENERATOR_H_
