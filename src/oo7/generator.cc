#include "oo7/generator.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace odbgc {

namespace {

// Slot layouts of the simulated OO7 object types.
//
//   Module:        slot0 = manual head, slot1 = design-root assembly
//   ManualSection: slot0 = next section
//   Assembly:      slot i = child assembly (interior) or composite (base)
//   CompositePart: slot0 = document head, slot1 = atomic-part list head
//   DocumentNode:  slot0 = next node
//   AtomicPart:    slot0 = next part in composite list, slot1 = conn head
//   Connection:    slot0 = next conn in owner's list, slot1 = target part
constexpr uint32_t kModuleSlots = 2;
constexpr uint32_t kManualSlots = 1;
constexpr uint32_t kCompositeSlots = 2;
constexpr uint32_t kDocNodeSlots = 1;
constexpr uint32_t kAtomicSlots = 2;
constexpr uint32_t kConnectionSlots = 2;

constexpr uint32_t kAtomicNextSlot = 0;
constexpr uint32_t kAtomicConnHeadSlot = 1;
constexpr uint32_t kCompositePartHeadSlot = 1;
constexpr uint32_t kCompositeDocHeadSlot = 0;
constexpr uint32_t kConnNextSlot = 0;
constexpr uint32_t kConnTargetSlot = 1;
constexpr uint32_t kModuleManualSlot = 0;
constexpr uint32_t kModuleDesignRootSlot = 1;

// Spare composite-reference slots per base assembly, so structural
// inserts can add references without displacing existing ones.
constexpr uint32_t kExtraBaseSlots = 4;

}  // namespace

Oo7Generator::Oo7Generator(const Oo7Params& params, uint64_t seed)
    : params_(params), rng_(seed) {}

Trace Oo7Generator::GenerateFullApplication() {
  Trace trace;
  trace.Append(PhaseMarkEvent(Phase::kGenDb));
  GenDb(&trace);
  trace.Append(PhaseMarkEvent(Phase::kReorg1));
  Reorg1(&trace);
  trace.Append(PhaseMarkEvent(Phase::kTraverse));
  Traverse(&trace);
  trace.Append(PhaseMarkEvent(Phase::kReorg2));
  Reorg2(&trace);
  return trace;
}

void Oo7Generator::GenDb(Trace* t) {
  ODBGC_CHECK_MSG(!generated_, "GenDb may only run once");
  generated_ = true;

  for (uint32_t m = 0; m < params_.num_modules; ++m) {
    ObjectId module = NewId();
    t->Append(CreateEvent(module, kModuleBytes, kModuleSlots));
    t->Append(AddRootEvent(module));
    module_ids_.push_back(module);

    // Manual: a chain of fixed-size sections (a 100 KB manual cannot fit
    // one 96 KB partition; the chain preserves its space/IO role).
    ObjectId prev_section = kNullObject;
    for (uint32_t s = 0; s < params_.manual_sections_per_module(); ++s) {
      ObjectId sec = NewId();
      t->Append(CreateEvent(sec, kManualSectionBytes, kManualSlots));
      if (prev_section == kNullObject) {
        t->Append(WriteRefEvent(module, kModuleManualSlot, sec));
      } else {
        t->Append(WriteRefEvent(prev_section, 0, sec));
      }
      prev_section = sec;
    }

    // Composite parts (with documents, atomic parts, connections).
    size_t first_comp = composites_.size();
    std::vector<size_t> comp_pool;
    for (uint32_t c = 0; c < params_.num_comp_per_module; ++c) {
      composites_.emplace_back();
      BuildComposite(t, first_comp + c);
      comp_pool.push_back(first_comp + c);
    }

    // Assembly hierarchy. Base assemblies reference composites randomly,
    // but every composite is referenced at least once so that nothing is
    // born garbage.
    next_base_slot_ = 0;
    ObjectId design_root = BuildAssembly(t, /*level=*/1, comp_pool);
    t->Append(WriteRefEvent(module, kModuleDesignRootSlot, design_root));
    t->Append(RemoveRootEvent(design_root));
  }
}

void Oo7Generator::BuildComposite(Trace* t, size_t comp_index) {
  CompositeInfo& comp = composites_[comp_index];
  comp.id = NewId();
  t->Append(CreateEvent(comp.id, kCompositeBytes, kCompositeSlots));
  // The composite is not referenced by the assembly hierarchy until the
  // base assemblies are built; the application's workspace reference
  // pins it (and, transitively, everything it owns) until then.
  t->Append(AddRootEvent(comp.id));

  // Document: chain of nodes.
  ObjectId prev_node = kNullObject;
  for (uint32_t d = 0; d < params_.doc_nodes_per_document(); ++d) {
    ObjectId node = NewId();
    t->Append(CreateEvent(node, kDocNodeBytes, kDocNodeSlots));
    if (prev_node == kNullObject) {
      t->Append(WriteRefEvent(comp.id, kCompositeDocHeadSlot, node));
    } else {
      t->Append(WriteRefEvent(prev_node, 0, node));
    }
    comp.doc_nodes.push_back(node);
    prev_node = node;
  }

  // Atomic parts, head-inserted into the composite's part list. After the
  // first insertion each head update overwrites a non-null pointer; these
  // are the benign pointer overwrites that advance the overwrite clock
  // during GenDB without creating garbage.
  for (uint32_t a = 0; a < params_.num_atomic_per_comp; ++a) {
    ObjectId part = NewId();
    t->Append(CreateEvent(part, kAtomicBytes, kAtomicSlots));
    ObjectId old_head = comp.parts.empty() ? kNullObject : comp.parts.front();
    t->Append(WriteRefEvent(part, kAtomicNextSlot, old_head));
    t->Append(WriteRefEvent(comp.id, kCompositePartHeadSlot, part));
    comp.parts.insert(comp.parts.begin(), part);
    AtomicInfo info;
    info.composite = comp_index;
    atomics_.emplace(part, std::move(info));
  }

  // Connections: each atomic part sources num_conn_per_atomic connections
  // to random parts of the same composite.
  for (ObjectId part : comp.parts) {
    for (uint32_t k = 0; k < params_.num_conn_per_atomic; ++k) {
      CreateConnection(t, part, PickTarget(comp_index, part), comp.id);
    }
  }
}

void Oo7Generator::LinkCompositeToAssembly(Trace* t, size_t assm_index,
                                           uint32_t slot,
                                           size_t comp_index) {
  AssemblyInfo& assm = assemblies_[assm_index];
  CompositeInfo& comp = composites_[comp_index];
  ODBGC_CHECK(assm.base);
  ODBGC_CHECK(assm.children[slot] == kNullObject);
  t->Append(WriteRefEvent(assm.id, slot, comp.id));
  assm.children[slot] = comp.id;
  comp.refs.emplace_back(assm_index, slot);
  if (!comp.linked) {
    comp.linked = true;
    t->Append(RemoveRootEvent(comp.id));
  }
}

ObjectId Oo7Generator::BuildAssembly(Trace* t, uint32_t level,
                                     const std::vector<size_t>& comp_pool) {
  assemblies_.emplace_back();
  size_t index = assemblies_.size() - 1;
  ObjectId id = NewId();
  assemblies_[index].id = id;
  uint32_t fanout = params_.num_assm_per_assm;
  bool base = level >= params_.num_assm_levels;
  uint32_t slots =
      base ? params_.num_comp_per_assm + kExtraBaseSlots : fanout;
  t->Append(CreateEvent(id, kAssemblyBytes, slots));
  // Pinned by the application until the parent assembly (or the module,
  // for the design root) links it in.
  t->Append(AddRootEvent(id));
  if (!base) {
    for (uint32_t c = 0; c < fanout; ++c) {
      ObjectId child = BuildAssembly(t, level + 1, comp_pool);
      t->Append(WriteRefEvent(id, c, child));
      t->Append(RemoveRootEvent(child));
      assemblies_[index].children.push_back(child);
    }
  } else {
    assemblies_[index].base = true;
    assemblies_[index].children.assign(slots, kNullObject);
    for (uint32_t c = 0; c < params_.num_comp_per_assm; ++c) {
      // Deterministic coverage first (so every composite is referenced),
      // then random picks.
      size_t comp_index;
      if (next_base_slot_ < comp_pool.size()) {
        comp_index = comp_pool[next_base_slot_];
      } else {
        comp_index = comp_pool[rng_.NextBelow(comp_pool.size())];
      }
      ++next_base_slot_;
      LinkCompositeToAssembly(t, index, c, comp_index);
    }
  }
  return id;
}

void Oo7Generator::CreateConnection(Trace* t, ObjectId source,
                                    ObjectId target, ObjectId near_hint) {
  AtomicInfo& src = atomics_.at(source);
  ObjectId conn = NewId();
  t->Append(CreateEvent(conn, kConnectionBytes, kConnectionSlots, near_hint));
  t->Append(WriteRefEvent(conn, kConnTargetSlot, target));
  ObjectId old_head = src.conns.empty() ? kNullObject : src.conns.front();
  t->Append(WriteRefEvent(conn, kConnNextSlot, old_head));
  t->Append(WriteRefEvent(source, kAtomicConnHeadSlot, conn));
  src.conns.insert(src.conns.begin(), conn);
  atomics_.at(target).in_conns.push_back(conn);
  conns_.emplace(conn, ConnInfo{source, target});
}

ObjectId Oo7Generator::PickTarget(size_t comp_index, ObjectId exclude) {
  return PickTarget2(comp_index, exclude, exclude);
}

ObjectId Oo7Generator::PickTarget2(size_t comp_index, ObjectId exclude_a,
                                   ObjectId exclude_b) {
  const CompositeInfo& comp = composites_[comp_index];
  ODBGC_CHECK(!comp.parts.empty());
  bool any_allowed = false;
  for (ObjectId p : comp.parts) {
    if (p != exclude_a && p != exclude_b) {
      any_allowed = true;
      break;
    }
  }
  if (!any_allowed) return comp.parts.front();
  for (;;) {
    ObjectId cand = comp.parts[rng_.NextBelow(comp.parts.size())];
    if (cand != exclude_a && cand != exclude_b) return cand;
  }
}

void Oo7Generator::UnlinkConnectionFromOwner(Trace* t, ObjectId conn) {
  const ConnInfo info = conns_.at(conn);
  AtomicInfo& owner = atomics_.at(info.owner);
  // The application clears the dying connection's endpoint first (as
  // OO7's delete does): without this, the garbage connection's stale
  // pointer would pin the deleted part in other partitions indefinitely.
  t->Append(ReadEvent(conn));
  t->Append(WriteRefEvent(conn, kConnTargetSlot, kNullObject));
  t->Append(ReadEvent(info.owner));
  auto it = std::find(owner.conns.begin(), owner.conns.end(), conn);
  ODBGC_CHECK_MSG(it != owner.conns.end(), "connection not in owner list");
  // Walk the list up to (and including) the connection being removed.
  for (auto walk = owner.conns.begin();; ++walk) {
    t->Append(ReadEvent(*walk));
    if (walk == it) break;
  }
  size_t pos = static_cast<size_t>(it - owner.conns.begin());
  ObjectId next =
      (pos + 1 < owner.conns.size()) ? owner.conns[pos + 1] : kNullObject;
  if (pos == 0) {
    t->Append(WriteRefEvent(info.owner, kAtomicConnHeadSlot, next));
  } else {
    t->Append(WriteRefEvent(owner.conns[pos - 1], kConnNextSlot, next));
  }
  owner.conns.erase(it);
  // The connection is now unreachable: its only reference was the list
  // link we just overwrote.
  t->Append(GarbageMarkEvent(kConnectionBytes, 1));
  // Shadow maintenance.
  AtomicInfo& target = atomics_.at(info.target);
  auto tin = std::find(target.in_conns.begin(), target.in_conns.end(), conn);
  ODBGC_CHECK(tin != target.in_conns.end());
  target.in_conns.erase(tin);
  conns_.erase(conn);
}

void Oo7Generator::DeleteAtomic(Trace* t, ObjectId atomic) {
  AtomicInfo& info = atomics_.at(atomic);
  CompositeInfo& comp = composites_[info.composite];
  size_t comp_index = info.composite;

  // The application's workspace holds the part for the duration of the
  // delete operation, so a collection landing mid-operation cannot
  // reclaim it while its fields are still being dismantled.
  t->Append(AddRootEvent(atomic));

  // 1. Remove every connection that targets this part (clear its target
  //    field, then unlink it from its owner's list — each a pointer
  //    overwrite — leaving one garbage connection object). The owner
  //    immediately rewires to another part, as OO7-style reorganizations
  //    do, so every atomic part keeps sourcing exactly NumConnPerAtomic
  //    connections and the database stays stationary across phases.
  std::vector<ObjectId> incoming = info.in_conns;
  for (ObjectId conn : incoming) {
    ObjectId owner = conns_.at(conn).owner;
    UnlinkConnectionFromOwner(t, conn);
    if (owner != atomic) {
      CreateConnection(t, owner, PickTarget2(comp_index, atomic, owner),
                       owner);
    }
  }
  ODBGC_CHECK(atomics_.at(atomic).in_conns.empty());

  // 2. Unlink the part from the composite's part list (it stays pinned
  //    by the workspace reference).
  t->Append(ReadEvent(comp.id));
  auto it = std::find(comp.parts.begin(), comp.parts.end(), atomic);
  ODBGC_CHECK_MSG(it != comp.parts.end(), "part not in composite list");
  for (auto walk = comp.parts.begin();; ++walk) {
    t->Append(ReadEvent(*walk));
    if (walk == it) break;
  }
  size_t pos = static_cast<size_t>(it - comp.parts.begin());
  ObjectId next =
      (pos + 1 < comp.parts.size()) ? comp.parts[pos + 1] : kNullObject;
  if (pos == 0) {
    t->Append(WriteRefEvent(comp.id, kCompositePartHeadSlot, next));
  } else {
    t->Append(WriteRefEvent(comp.parts[pos - 1], kAtomicNextSlot, next));
  }
  comp.parts.erase(it);

  // 3. Dismantle the part's own pointers so the garbage it becomes holds
  //    no stale references into live data: its sibling link, then its
  //    connection chain from the tail up. Clearing an element's next
  //    link detaches its (already fully cleared) successor, which dies
  //    at that instant; the head dies when the part's list-head slot is
  //    cleared.
  t->Append(WriteRefEvent(atomic, kAtomicNextSlot, kNullObject));
  AtomicInfo& doomed = atomics_.at(atomic);
  const std::vector<ObjectId>& chain = doomed.conns;  // front = head
  for (size_t i = chain.size(); i-- > 0;) {
    ObjectId conn = chain[i];
    t->Append(ReadEvent(conn));
    t->Append(WriteRefEvent(conn, kConnTargetSlot, kNullObject));
    t->Append(WriteRefEvent(conn, kConnNextSlot, kNullObject));
    if (i + 1 < chain.size()) {
      t->Append(GarbageMarkEvent(kConnectionBytes, 1));  // successor died
    }
    const ConnInfo& ci = conns_.at(conn);
    AtomicInfo& target = atomics_.at(ci.target);
    auto tin =
        std::find(target.in_conns.begin(), target.in_conns.end(), conn);
    ODBGC_CHECK(tin != target.in_conns.end());
    target.in_conns.erase(tin);
  }
  if (!chain.empty()) {
    t->Append(WriteRefEvent(atomic, kAtomicConnHeadSlot, kNullObject));
    t->Append(GarbageMarkEvent(kConnectionBytes, 1));  // head died
    for (ObjectId conn : chain) conns_.erase(conn);
  }

  // 5. Release the workspace pin: the part itself is now garbage
  //    (Figure 3's detachable cluster is fully detached).
  t->Append(RemoveRootEvent(atomic));
  t->Append(GarbageMarkEvent(kAtomicBytes, 1));
  atomics_.erase(atomic);
}

ObjectId Oo7Generator::ReinsertAtomic(Trace* t, size_t comp_index,
                                      bool clustered) {
  CompositeInfo& comp = composites_[comp_index];
  ObjectId part = NewId();
  // Clustered reinsertion places the part (and its connections) with its
  // composite; unclustered reinsertion takes whatever the allocator's
  // cursor offers, which is how Reorg2 destroys physical clustering.
  ObjectId hint = clustered ? comp.id : kNullObject;
  t->Append(CreateEvent(part, kAtomicBytes, kAtomicSlots, hint));
  t->Append(ReadEvent(comp.id));
  ObjectId old_head = comp.parts.empty() ? kNullObject : comp.parts.front();
  t->Append(WriteRefEvent(part, kAtomicNextSlot, old_head));
  t->Append(WriteRefEvent(comp.id, kCompositePartHeadSlot, part));
  comp.parts.insert(comp.parts.begin(), part);
  AtomicInfo info;
  info.composite = comp_index;
  atomics_.emplace(part, std::move(info));
  for (uint32_t k = 0; k < params_.num_conn_per_atomic; ++k) {
    CreateConnection(t, part, PickTarget(comp_index, part), hint);
  }
  return part;
}

std::vector<ObjectId> Oo7Generator::ChooseDeletions(size_t comp_index) {
  std::vector<ObjectId> pool = composites_[comp_index].parts;
  rng_.Shuffle(pool);
  pool.resize(pool.size() / 2);
  return pool;
}

void Oo7Generator::Reorg1(Trace* t) {
  ODBGC_CHECK(generated_);
  // Clustered reorganization: each composite's deletions are immediately
  // followed by its reinsertions, so the replacement parts are allocated
  // contiguously and the composite stays physically clustered.
  for (size_t c = 0; c < composites_.size(); ++c) {
    if (!composites_[c].alive) continue;
    std::vector<ObjectId> victims = ChooseDeletions(c);
    for (ObjectId v : victims) DeleteAtomic(t, v);
    for (size_t i = 0; i < victims.size(); ++i) {
      ReinsertAtomic(t, c, /*clustered=*/true);
    }
  }
}

void Oo7Generator::Reorg2(Trace* t) {
  ODBGC_CHECK(generated_);
  // Declustering reorganization (Section 3.4): the same delete/reinsert
  // work as Reorg1, but interleaved round-robin across composites so
  // consecutive allocations belong to different composites and any
  // physical clustering of a composite's parts is destroyed.
  std::vector<size_t> alive;
  for (size_t c = 0; c < composites_.size(); ++c) {
    if (composites_[c].alive) alive.push_back(c);
  }
  std::vector<std::vector<ObjectId>> victims(alive.size());
  size_t max_rounds = 0;
  for (size_t i = 0; i < alive.size(); ++i) {
    victims[i] = ChooseDeletions(alive[i]);
    max_rounds = std::max(max_rounds, victims[i].size());
  }
  for (size_t round = 0; round < max_rounds; ++round) {
    for (size_t i = 0; i < alive.size(); ++i) {
      if (round >= victims[i].size()) continue;
      DeleteAtomic(t, victims[i][round]);
      // Reinsert into the previously handled composite so that the
      // allocation stream alternates composites.
      size_t prev = (i + alive.size() - 1) % alive.size();
      size_t reinsert = round < victims[prev].size() ? prev : i;
      ReinsertAtomic(t, alive[reinsert], /*clustered=*/false);
    }
  }
}

void Oo7Generator::TraverseComposite(Trace* t, size_t comp_index,
                                     int updates_per_part) {
  const CompositeInfo& comp = composites_[comp_index];
  t->Append(ReadEvent(comp.id));
  std::unordered_set<ObjectId> visited;
  std::vector<ObjectId> stack;
  for (ObjectId first : comp.parts) {
    if (visited.count(first) != 0) continue;
    stack.push_back(first);
    visited.insert(first);
    while (!stack.empty()) {
      ObjectId part = stack.back();
      stack.pop_back();
      t->Append(ReadEvent(part));
      for (int u = 0; u < updates_per_part; ++u) {
        t->Append(UpdateEvent(part));
      }
      const AtomicInfo& info = atomics_.at(part);
      for (ObjectId conn : info.conns) {
        t->Append(ReadEvent(conn));
        ObjectId target = conns_.at(conn).target;
        if (visited.insert(target).second) {
          stack.push_back(target);
        }
      }
    }
  }
}

void Oo7Generator::Traverse(Trace* t) {
  ODBGC_CHECK(generated_);
  // Read-only depth-first traversal over all atomic parts (the paper's
  // third phase). Composites shared by several base assemblies are
  // traversed once per reference, as in OO7's T1.
  TraverseT2(t, /*updates_per_part=*/0);
}

void Oo7Generator::TraverseT2(Trace* t, int updates_per_part) {
  ODBGC_CHECK(generated_);
  std::unordered_map<ObjectId, size_t> comp_index;
  for (size_t c = 0; c < composites_.size(); ++c) {
    if (composites_[c].alive) comp_index[composites_[c].id] = c;
  }
  for (ObjectId module : module_ids_) {
    t->Append(ReadEvent(module));
  }
  for (const AssemblyInfo& assm : assemblies_) {
    t->Append(ReadEvent(assm.id));
    if (!assm.base) continue;
    for (ObjectId comp_id : assm.children) {
      if (comp_id == kNullObject) continue;
      TraverseComposite(t, comp_index.at(comp_id), updates_per_part);
    }
  }
}

void Oo7Generator::TraverseT6(Trace* t) {
  ODBGC_CHECK(generated_);
  // Sparse traversal: hierarchy, composite, and its first atomic part.
  std::unordered_map<ObjectId, size_t> comp_index;
  for (size_t c = 0; c < composites_.size(); ++c) {
    if (composites_[c].alive) comp_index[composites_[c].id] = c;
  }
  for (ObjectId module : module_ids_) {
    t->Append(ReadEvent(module));
  }
  for (const AssemblyInfo& assm : assemblies_) {
    t->Append(ReadEvent(assm.id));
    if (!assm.base) continue;
    for (ObjectId comp_id : assm.children) {
      if (comp_id == kNullObject) continue;
      const CompositeInfo& comp = composites_[comp_index.at(comp_id)];
      t->Append(ReadEvent(comp.id));
      if (!comp.parts.empty()) {
        t->Append(ReadEvent(comp.parts.front()));
      }
    }
  }
}

uint64_t Oo7Generator::CompositeClusterBytes(
    const CompositeInfo& comp) const {
  uint64_t conns = 0;
  for (ObjectId part : comp.parts) {
    conns += atomics_.at(part).conns.size();
  }
  return kCompositeBytes +
         static_cast<uint64_t>(comp.doc_nodes.size()) * kDocNodeBytes +
         static_cast<uint64_t>(comp.parts.size()) * kAtomicBytes +
         conns * kConnectionBytes;
}

uint32_t Oo7Generator::CompositeClusterObjects(
    const CompositeInfo& comp) const {
  uint64_t conns = 0;
  for (ObjectId part : comp.parts) {
    conns += atomics_.at(part).conns.size();
  }
  return static_cast<uint32_t>(1 + comp.doc_nodes.size() +
                               comp.parts.size() + conns);
}

size_t Oo7Generator::live_composite_count() const {
  size_t n = 0;
  for (const CompositeInfo& c : composites_) {
    if (c.alive) ++n;
  }
  return n;
}

int Oo7Generator::StructuralInsert(Trace* t, int count) {
  ODBGC_CHECK(generated_);
  // Candidate base assemblies with a free reference slot.
  int inserted = 0;
  for (int i = 0; i < count; ++i) {
    // Find a free (assembly, slot); give up after a bounded search.
    size_t assm_index = assemblies_.size();
    uint32_t slot = 0;
    for (int tries = 0; tries < 64; ++tries) {
      size_t cand = rng_.NextBelow(assemblies_.size());
      if (!assemblies_[cand].base) continue;
      const std::vector<ObjectId>& slots = assemblies_[cand].children;
      for (uint32_t s = 0; s < slots.size(); ++s) {
        if (slots[s] == kNullObject) {
          assm_index = cand;
          slot = s;
          break;
        }
      }
      if (assm_index != assemblies_.size()) break;
    }
    if (assm_index == assemblies_.size()) break;  // capacity exhausted

    composites_.emplace_back();
    size_t comp_index = composites_.size() - 1;
    BuildComposite(t, comp_index);
    t->Append(ReadEvent(assemblies_[assm_index].id));
    LinkCompositeToAssembly(t, assm_index, slot, comp_index);
    ++inserted;
  }
  return inserted;
}

int Oo7Generator::StructuralDelete(Trace* t, int count) {
  ODBGC_CHECK(generated_);
  std::vector<size_t> alive;
  for (size_t c = 0; c < composites_.size(); ++c) {
    if (composites_[c].alive) alive.push_back(c);
  }
  int deleted = 0;
  for (int i = 0; i < count && alive.size() > 1; ++i) {
    size_t pick = rng_.NextBelow(alive.size());
    size_t comp_index = alive[pick];
    alive[pick] = alive.back();
    alive.pop_back();
    CompositeInfo& comp = composites_[comp_index];

    // Unlink every assembly reference; the composite cluster — part
    // graph, connections, and the whole document — detaches at the
    // final overwrite.
    uint64_t cluster_bytes = CompositeClusterBytes(comp);
    uint32_t cluster_objects = CompositeClusterObjects(comp);
    ODBGC_CHECK(!comp.refs.empty());
    for (const auto& [assm_index, slot] : comp.refs) {
      AssemblyInfo& assm = assemblies_[assm_index];
      t->Append(ReadEvent(assm.id));
      t->Append(WriteRefEvent(assm.id, slot, kNullObject));
      assm.children[slot] = kNullObject;
    }
    t->Append(GarbageMarkEvent(static_cast<uint32_t>(cluster_bytes),
                               cluster_objects));
    comp.refs.clear();

    // Shadow teardown.
    for (ObjectId part : comp.parts) {
      for (ObjectId conn : atomics_.at(part).conns) {
        conns_.erase(conn);
      }
    }
    for (ObjectId part : comp.parts) {
      atomics_.erase(part);
    }
    comp.parts.clear();
    comp.doc_nodes.clear();
    comp.alive = false;
    ++deleted;
  }
  return deleted;
}

}  // namespace odbgc
