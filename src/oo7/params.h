#ifndef ODBGC_OO7_PARAMS_H_
#define ODBGC_OO7_PARAMS_H_

#include <cstdint>

namespace odbgc {

// OO7 benchmark database parameters (Table 1 of the paper). The defaults
// are the paper's Small' configuration; Small() gives the original OO7
// Small database of Carey/DeWitt/Naughton used by Yong/Naughton/Yu.
struct Oo7Params {
  uint32_t num_atomic_per_comp = 20;
  uint32_t num_conn_per_atomic = 3;  // the "connectivity": 3, 6, or 9
  uint32_t document_bytes = 2000;
  uint32_t manual_kbytes = 100;
  uint32_t num_comp_per_module = 150;
  uint32_t num_assm_per_assm = 3;
  uint32_t num_assm_levels = 6;
  uint32_t num_comp_per_assm = 3;
  uint32_t num_modules = 1;

  static Oo7Params SmallPrime();  // the paper's Small'
  static Oo7Params Small();       // OO7 Small [CDN93]
  // A miniature configuration for fast unit tests (not from the paper).
  static Oo7Params Tiny();

  // Derived structural counts (per module).
  uint32_t assemblies_per_module() const;       // full k-ary tree
  uint32_t base_assemblies_per_module() const;  // leaves of that tree
  uint32_t doc_nodes_per_document() const;
  uint32_t manual_sections_per_module() const;

  // Expected total database bytes right after GenDB.
  uint64_t expected_database_bytes() const;
  uint64_t expected_object_count() const;
};

// Simulated object sizes. Chosen so that the Small' database matches the
// aggregates the paper reports: ~3.7 MB at connectivity 3, ~7.9 MB at
// connectivity 9, ~133-byte average object, atomic-part in-connectivity
// of ~4, and ~1 KB of garbage per ~6 pointer overwrites during the
// reorganization phases.
inline constexpr uint32_t kModuleBytes = 256;
inline constexpr uint32_t kManualSectionBytes = 4096;
inline constexpr uint32_t kAssemblyBytes = 128;
inline constexpr uint32_t kCompositeBytes = 256;
inline constexpr uint32_t kDocNodeBytes = 20;
inline constexpr uint32_t kAtomicBytes = 332;
inline constexpr uint32_t kConnectionBytes = 245;

}  // namespace odbgc

#endif  // ODBGC_OO7_PARAMS_H_
