#include "oo7/params.h"

namespace odbgc {

Oo7Params Oo7Params::SmallPrime() { return Oo7Params{}; }

Oo7Params Oo7Params::Small() {
  Oo7Params p;
  p.num_comp_per_module = 500;
  p.num_assm_levels = 7;
  return p;
}

Oo7Params Oo7Params::Tiny() {
  Oo7Params p;
  p.num_atomic_per_comp = 6;
  p.num_conn_per_atomic = 2;
  p.document_bytes = 200;
  p.manual_kbytes = 8;
  p.num_comp_per_module = 9;
  p.num_assm_levels = 3;
  return p;
}

uint32_t Oo7Params::assemblies_per_module() const {
  // Full num_assm_per_assm-ary tree with num_assm_levels levels.
  uint32_t total = 0;
  uint32_t level_count = 1;
  for (uint32_t l = 0; l < num_assm_levels; ++l) {
    total += level_count;
    level_count *= num_assm_per_assm;
  }
  return total;
}

uint32_t Oo7Params::base_assemblies_per_module() const {
  uint32_t level_count = 1;
  for (uint32_t l = 1; l < num_assm_levels; ++l) {
    level_count *= num_assm_per_assm;
  }
  return level_count;
}

uint32_t Oo7Params::doc_nodes_per_document() const {
  return document_bytes / kDocNodeBytes;
}

uint32_t Oo7Params::manual_sections_per_module() const {
  return manual_kbytes * 1024 / kManualSectionBytes;
}

uint64_t Oo7Params::expected_database_bytes() const {
  uint64_t per_comp =
      kCompositeBytes +
      static_cast<uint64_t>(doc_nodes_per_document()) * kDocNodeBytes +
      static_cast<uint64_t>(num_atomic_per_comp) *
          (kAtomicBytes +
           static_cast<uint64_t>(num_conn_per_atomic) * kConnectionBytes);
  uint64_t per_module =
      kModuleBytes +
      static_cast<uint64_t>(manual_sections_per_module()) *
          kManualSectionBytes +
      static_cast<uint64_t>(assemblies_per_module()) * kAssemblyBytes +
      static_cast<uint64_t>(num_comp_per_module) * per_comp;
  return per_module * num_modules;
}

uint64_t Oo7Params::expected_object_count() const {
  uint64_t per_comp = 1 + doc_nodes_per_document() +
                      static_cast<uint64_t>(num_atomic_per_comp) *
                          (1 + num_conn_per_atomic);
  uint64_t per_module = 1 + manual_sections_per_module() +
                        assemblies_per_module() +
                        static_cast<uint64_t>(num_comp_per_module) * per_comp;
  return per_module * num_modules;
}

}  // namespace odbgc
