#include "util/snapshot.h"

#include <cstring>

namespace odbgc {

void SnapshotWriter::U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

void SnapshotWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void SnapshotWriter::Str(const std::string& s) {
  U64(s.size());
  out_.append(s);
}

void SnapshotWriter::Tag(const char (&fourcc)[5]) {
  out_.append(fourcc, 4);
}

void SnapshotWriter::VecU32(const std::vector<uint32_t>& v) {
  U64(v.size());
  for (uint32_t x : v) U32(x);
}

void SnapshotWriter::VecU64(const std::vector<uint64_t>& v) {
  U64(v.size());
  for (uint64_t x : v) U64(x);
}

void SnapshotReader::Fail(const std::string& why) {
  if (!ok_) return;
  ok_ = false;
  error_ = why + " at offset " + std::to_string(pos_);
}

bool SnapshotReader::Need(size_t n) {
  if (!ok_) return false;
  if (size_ - pos_ < n) {
    Fail("truncated snapshot (need " + std::to_string(n) + " bytes)");
    return false;
  }
  return true;
}

uint8_t SnapshotReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint32_t SnapshotReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

uint64_t SnapshotReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double SnapshotReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::Str() {
  uint64_t n = U64();
  // Length is bounded by the bytes actually present: a corrupt count can
  // never trigger a multi-gigabyte allocation.
  if (!ok_ || n > size_ - pos_) {
    Fail("string length exceeds snapshot");
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return s;
}

void SnapshotReader::Tag(const char (&fourcc)[5]) {
  if (!Need(4)) return;
  if (std::memcmp(data_ + pos_, fourcc, 4) != 0) {
    Fail(std::string("section tag mismatch (want ") + fourcc + ")");
    return;
  }
  pos_ += 4;
}

std::vector<uint32_t> SnapshotReader::VecU32() {
  uint64_t n = U64();
  std::vector<uint32_t> v;
  if (!ok_ || n > (size_ - pos_) / 4) {
    Fail("vector count exceeds snapshot");
    return v;
  }
  v.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) v.push_back(U32());
  return v;
}

std::vector<uint64_t> SnapshotReader::VecU64() {
  uint64_t n = U64();
  std::vector<uint64_t> v;
  if (!ok_ || n > (size_ - pos_) / 8) {
    Fail("vector count exceeds snapshot");
    return v;
  }
  v.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) v.push_back(U64());
  return v;
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace odbgc
