#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace odbgc {

void RunningStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

RunningStats RunningStats::FromRaw(const Raw& r) {
  RunningStats s;
  s.count_ = r.count;
  s.mean_ = r.mean;
  s.m2_ = r.m2;
  s.min_ = r.min;
  s.max_ = r.max;
  return s;
}

MinMeanMax Summarize(const std::vector<double>& per_run_values) {
  MinMeanMax out;
  if (per_run_values.empty()) return out;
  RunningStats s;
  for (double v : per_run_values) s.Add(v);
  out.min = s.min();
  out.mean = s.mean();
  out.max = s.max();
  return out;
}

ExponentialMean::ExponentialMean(double history_weight)
    : history_weight_(history_weight) {
  ODBGC_CHECK(history_weight >= 0.0 && history_weight <= 1.0);
}

void ExponentialMean::Add(double sample) {
  if (!has_value_) {
    value_ = sample;
    has_value_ = true;
    return;
  }
  value_ = history_weight_ * value_ + (1.0 - history_weight_) * sample;
}

void ExponentialMean::Reset() {
  value_ = 0.0;
  has_value_ = false;
}

}  // namespace odbgc
