#ifndef ODBGC_UTIL_FLAGS_H_
#define ODBGC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace odbgc {

// Minimal command-line flag parser for the CLI tools:
// `--key=value`; bare `--key` is a boolean true; anything without a
// leading `--` is a positional argument.
class Flags {
 public:
  // Returns false (with a message in *error) on malformed input.
  static bool Parse(int argc, char** argv, Flags* out, std::string* error);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Keys that were provided but never read — catches typos in tools.
  std::vector<std::string> UnusedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_FLAGS_H_
