#ifndef ODBGC_UTIL_THREAD_POOL_H_
#define ODBGC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace odbgc {

// Resolves a thread-count knob: values >= 1 pass through; anything else
// means "one thread per hardware core" (hardware_concurrency, floored
// at 1 when unknown).
int ResolveThreadCount(int threads);

// Fixed-size worker pool over a FIFO task queue. Shared by the sweep
// engine (sim/parallel.h) and the intra-run parallel collector
// (gc/collector.h); it lives in util/ so that both layers can use it
// without a dependency cycle.
class ThreadPool {
 public:
  // threads <= 0 selects ResolveThreadCount's hardware default.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task; workers claim tasks in submission order. Tasks
  // must not throw (use ParallelFor for work that may).
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  // Runs fn(0) .. fn(n-1) across the pool and blocks until all have
  // finished. Indices are claimed in order, so with 1 thread this is
  // exactly the serial loop. If invocations throw, the exception from
  // the lowest index is rethrown after the whole batch has drained.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Index of the pool worker running the current thread (0-based), or -1
  // when called from a thread that is not a pool worker (e.g. the
  // submitter). Used by profiling code and by per-worker scratch buffers
  // (the parallel collector's mark bitmaps) to pick a slot.
  static int current_worker_index();

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::vector<std::function<void()>> queue_;  // FIFO via head cursor
  size_t queue_head_ = 0;
  size_t unfinished_ = 0;  // queued + running
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_THREAD_POOL_H_
