#include "util/table_printer.h"

#include <cstdio>
#include <iomanip>

#include "util/check.h"

namespace odbgc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  ODBGC_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) { return std::to_string(v); }
std::string TablePrinter::Fmt(int64_t v) { return std::to_string(v); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (size_t w : widths) rule += std::string(w, '-') + "  ";
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace odbgc
