#ifndef ODBGC_UTIL_JSON_H_
#define ODBGC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace odbgc {

// Minimal streaming JSON writer (objects, arrays, scalars, escaping) —
// enough for machine-readable simulation reports without a third-party
// dependency. Usage is push-style:
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("collections"); w.Value(uint64_t{42});
//   w.Key("log"); w.BeginArray(); ... w.EndArray();
//   w.EndObject();
//   std::string json = w.TakeString();
//
// Structural misuse (e.g. a value without a key inside an object) trips
// an ODBGC_CHECK.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& name);

  void Value(const std::string& s);
  void Value(const char* s);
  void Value(double d);
  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(bool b);
  void Null();

  // Finalizes and returns the document; the writer must be balanced.
  std::string TakeString();

  static std::string Escape(const std::string& s);

 private:
  enum class Frame { kObject, kArray };

  void BeforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool key_pending_ = false;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_JSON_H_
