#ifndef ODBGC_UTIL_JSON_H_
#define ODBGC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace odbgc {

// Minimal streaming JSON writer (objects, arrays, scalars, escaping) —
// enough for machine-readable simulation reports without a third-party
// dependency. Usage is push-style:
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("collections"); w.Value(uint64_t{42});
//   w.Key("log"); w.BeginArray(); ... w.EndArray();
//   w.EndObject();
//   std::string json = w.TakeString();
//
// Structural misuse (e.g. a value without a key inside an object) trips
// an ODBGC_CHECK.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& name);

  void Value(const std::string& s);
  void Value(const char* s);
  void Value(double d);
  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(bool b);
  void Null();

  // Splices `json` — an already-serialized document — in value position.
  // Used to embed one report inside another without re-parsing.
  void RawValue(const std::string& json);

  // Finalizes and returns the document; the writer must be balanced.
  std::string TakeString();

  static std::string Escape(const std::string& s);

 private:
  enum class Frame { kObject, kArray };

  void BeforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool key_pending_ = false;
};

// Parsed JSON document node. A small recursive-descent companion to
// JsonWriter — enough to round-trip this repo's own exports (reports,
// Chrome traces) in tests and validators without a third-party
// dependency. Numbers are held as double (the exports never need more
// than 53 bits of integer precision to validate).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return items_; }
  // Object members in document order (duplicate keys preserved).
  const std::vector<std::pair<std::string, JsonValue>>& object_members()
      const {
    return members_;
  }

  // First member named `key`, or nullptr.
  const JsonValue* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  // Parses `text` into *out. On failure returns false and describes the
  // problem (with a byte offset) in *error.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_JSON_H_
