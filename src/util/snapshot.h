#ifndef ODBGC_UTIL_SNAPSHOT_H_
#define ODBGC_UTIL_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace odbgc {

// Binary snapshot serialization for checkpoint/restore.
//
// The format is a flat little-endian byte stream with no self-description
// beyond optional fourcc section tags; reader and writer must agree on the
// field order (the checkpoint file header carries a format version for
// that). Doubles are stored as their IEEE-754 bit pattern so restored
// state is bit-exact — a requirement for the byte-identical-resume
// recovery oracle.
//
// SnapshotReader never throws and never reads out of bounds: after any
// malformed input it latches !ok() and every subsequent read returns a
// zero value. Callers check ok() once at the end.

class SnapshotWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);  // bit pattern, not decimal round-trip
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s);
  // Section tag, e.g. Tag("STOR"); purely a corruption tripwire.
  void Tag(const char (&fourcc)[5]);

  void VecU32(const std::vector<uint32_t>& v);
  void VecU64(const std::vector<uint64_t>& v);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class SnapshotReader {
 public:
  SnapshotReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit SnapshotReader(const std::string& buf)
      : SnapshotReader(buf.data(), buf.size()) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();
  // Fails (latches !ok()) unless the next four bytes match.
  void Tag(const char (&fourcc)[5]);

  std::vector<uint32_t> VecU32();
  std::vector<uint64_t> VecU64();

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  // Caller-detected inconsistency (e.g. snapshot state for a component
  // the current configuration does not instantiate): latches !ok().
  void MarkMalformed(const std::string& why) { Fail(why); }
  // All bytes consumed and no error.
  bool AtEnd() const { return ok_ && pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  void Fail(const std::string& why);
  bool Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// IEEE CRC-32 (reflected polynomial 0xEDB88320), chainable via `seed`.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace odbgc

#endif  // ODBGC_UTIL_SNAPSHOT_H_
