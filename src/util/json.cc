#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace odbgc {

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject) {
    ODBGC_CHECK_MSG(key_pending_, "object value requires a key");
    key_pending_ = false;
    return;
  }
  // Array element: comma-separate.
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
}

void JsonWriter::EndObject() {
  ODBGC_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  ODBGC_CHECK_MSG(!key_pending_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
}

void JsonWriter::EndArray() {
  ODBGC_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
}

void JsonWriter::Key(const std::string& name) {
  ODBGC_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  ODBGC_CHECK_MSG(!key_pending_, "two keys in a row");
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::Value(const std::string& s) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(s);
  out_ += '"';
}

void JsonWriter::Value(const char* s) { Value(std::string(s)); }

void JsonWriter::Value(double d) {
  BeforeValue();
  if (!std::isfinite(d)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  out_ += buf;
}

void JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
}

void JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
}

void JsonWriter::Value(bool b) {
  BeforeValue();
  out_ += b ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

std::string JsonWriter::TakeString() {
  ODBGC_CHECK_MSG(stack_.empty(), "unbalanced JSON document");
  return std::move(out_);
}

}  // namespace odbgc
