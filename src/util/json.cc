#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace odbgc {

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject) {
    ODBGC_CHECK_MSG(key_pending_, "object value requires a key");
    key_pending_ = false;
    return;
  }
  // Array element: comma-separate.
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
}

void JsonWriter::EndObject() {
  ODBGC_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  ODBGC_CHECK_MSG(!key_pending_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
}

void JsonWriter::EndArray() {
  ODBGC_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
}

void JsonWriter::Key(const std::string& name) {
  ODBGC_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  ODBGC_CHECK_MSG(!key_pending_, "two keys in a row");
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::Value(const std::string& s) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(s);
  out_ += '"';
}

void JsonWriter::Value(const char* s) { Value(std::string(s)); }

void JsonWriter::RawValue(const std::string& json) {
  BeforeValue();
  out_ += json;
}

void JsonWriter::Value(double d) {
  BeforeValue();
  if (!std::isfinite(d)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  out_ += buf;
}

void JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
}

void JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
}

void JsonWriter::Value(bool b) {
  BeforeValue();
  out_ += b ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

std::string JsonWriter::TakeString() {
  ODBGC_CHECK_MSG(stack_.empty(), "unbalanced JSON document");
  return std::move(out_);
}

// ---------------------------------------------------------------------
// Parser.

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 200;

  bool Fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return Fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Literal("true");
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Literal("false");
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        char e = text_[pos_];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode (surrogate pairs are passed through as two
            // 3-byte sequences; the repo's own exports only escape
            // control characters, which stay in the BMP).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("invalid number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  JsonParser parser(text, error);
  return parser.Parse(out);
}

}  // namespace odbgc
