#ifndef ODBGC_UTIL_RANDOM_H_
#define ODBGC_UTIL_RANDOM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace odbgc {

// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
//
// The simulation must be exactly reproducible from a seed across platforms,
// so we do not use std::mt19937 distributions (whose results are not
// guaranteed to match across standard library implementations for
// std::uniform_int_distribution). All derived values are computed from raw
// 64-bit draws with explicit algorithms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64-bit draw. Inline: trace generation and the bench loops draw
  // tens of millions of times, and an out-of-line draw costs more than
  // the dozen ALU ops of the draw itself.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0. Inline so that a
  // compile-time-constant bound folds both divisions into
  // multiply-shift sequences at the call site.
  uint64_t NextBelow(uint64_t bound) {
    ODBGC_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Fisher-Yates shuffle of a vector, deterministic given the stream state.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Raw generator state, for checkpoint/restore. Restoring the state
  // resumes the stream at exactly the point it was captured.
  std::array<uint64_t, 4> state() const;
  void set_state(const std::array<uint64_t, 4>& s);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_RANDOM_H_
