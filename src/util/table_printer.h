#ifndef ODBGC_UTIL_TABLE_PRINTER_H_
#define ODBGC_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace odbgc {

// Fixed-width plain-text table writer used by the benchmark harnesses to
// print the rows/series the paper's tables and figures report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(uint64_t v);
  static std::string Fmt(int64_t v);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_TABLE_PRINTER_H_
