#include "util/random.h"

#include "util/check.h"

namespace odbgc {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  ODBGC_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::array<uint64_t, 4> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<uint64_t, 4>& s) {
  for (int i = 0; i < 4; ++i) s_[i] = s[i];
}

}  // namespace odbgc
