#include "util/flags.h"

#include <cstdlib>

namespace odbgc {

bool Flags::Parse(int argc, char** argv, Flags* out, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out->positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      *error = "bare '--' is not a valid flag";
      return false;
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      out->values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      // Bare `--key` is a boolean. (No `--key value` form: it is
      // ambiguous with positional arguments.)
      out->values_[body] = "true";
    }
  }
  return true;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  read_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (read_.count(key) == 0) unused.push_back(key);
  }
  return unused;
}

}  // namespace odbgc
