#ifndef ODBGC_UTIL_STATS_H_
#define ODBGC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace odbgc {

// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Population variance / standard deviation.
  double variance() const;
  double stddev() const;

  // Bit-exact internal state for checkpoint/restore. `min`/`max` are the
  // raw accumulators (±infinity when empty), not the clamped accessors.
  struct Raw {
    size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  Raw raw() const { return {count_, mean_, m2_, min_, max_}; }
  static RunningStats FromRaw(const Raw& r);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Aggregates one scalar per run into min/mean/max across runs, mirroring
// the paper's error bars ("minimum and maximum means over the 10 runs").
struct MinMeanMax {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

MinMeanMax Summarize(const std::vector<double>& per_run_values);

// Exponentially-weighted mean: value' = h * value + (1 - h) * sample.
// This is exactly the form used by the paper for the FGS/HB history
// (Section 2.4.2) and for the SAGA slope smoothing (Section 2.3).
class ExponentialMean {
 public:
  // history_weight is the paper's `h` (or `Weight`): the fraction of the
  // previous value retained at each update. 0 = no history, 1 = frozen.
  explicit ExponentialMean(double history_weight);

  // First sample initializes the mean directly; later samples blend.
  void Add(double sample);
  void Reset();

  bool has_value() const { return has_value_; }
  double value() const { return value_; }
  double history_weight() const { return history_weight_; }

 private:
  double history_weight_;
  double value_ = 0.0;
  bool has_value_ = false;
};

}  // namespace odbgc

#endif  // ODBGC_UTIL_STATS_H_
