#include "util/thread_pool.h"

#include <exception>
#include <utility>

#include "util/check.h"

namespace odbgc {

namespace {
// -1 on every thread that is not a pool worker.
thread_local int tls_worker_index = -1;
}  // namespace

int ThreadPool::current_worker_index() { return tls_worker_index; }

int ResolveThreadCount(int threads) {
  if (threads >= 1) return threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  int n = ResolveThreadCount(threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ODBGC_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ODBGC_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return unfinished_ == 0; });
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(
          lock, [this] { return stop_ || queue_head_ < queue_.size(); });
      if (queue_head_ >= queue_.size()) return;  // stop_ and drained
      task = std::move(queue_[queue_head_]);
      ++queue_head_;
      if (queue_head_ == queue_.size()) {
        queue_.clear();
        queue_head_ = 0;
      }
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
      if (unfinished_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // One exception slot per index: written by at most one task, read only
  // after Wait(), so no synchronization beyond the pool's is needed.
  std::vector<std::exception_ptr> errors(n);
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, &errors, i] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  Wait();
  for (size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace odbgc
