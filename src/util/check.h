#ifndef ODBGC_UTIL_CHECK_H_
#define ODBGC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Always-on invariant checks. The simulator is deterministic, so a failed
// check indicates a logic bug; we abort with a source location rather than
// continue with corrupted state. Every flavor prints file:line plus the
// failed condition; the _MSG and _FMT flavors append context (_FMT takes a
// printf-style format plus arguments, for values computed at failure time).
#define ODBGC_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ODBGC_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define ODBGC_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ODBGC_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define ODBGC_CHECK_FMT(cond, ...)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ODBGC_CHECK failed at %s:%d: %s (", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, ")\n");                                         \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // ODBGC_UTIL_CHECK_H_
