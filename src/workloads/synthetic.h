#ifndef ODBGC_WORKLOADS_SYNTHETIC_H_
#define ODBGC_WORKLOADS_SYNTHETIC_H_

#include <cstdint>

#include "trace/trace.h"

namespace odbgc {

// Synthetic non-OO7 workloads, built to probe the assumptions the
// paper's policies make (its Section 5 asks exactly this: do other
// applications violate the assumptions, and what does that do to the
// policies?). Every workload emits a self-contained trace — root setup,
// events, and exact ground-truth garbage markers — deterministic in its
// seed, and validated against the reachability scanner in tests.

// Steady-state churn: `list_count` linked lists under one root; each
// cycle appends a node to one list (round-robin) and trims another back
// to `target_length`. Garbage is created at a near-constant rate and
// spread across the database — the benign case where every policy
// assumption holds.
struct UniformChurnOptions {
  uint64_t seed = 1;
  int cycles = 20000;
  int list_count = 16;
  int target_length = 64;
  uint32_t node_bytes = 400;
};
Trace MakeUniformChurn(const UniformChurnOptions& options);

// Bursty deletion: long quiet stretches (reads plus benign pointer
// shuffles that advance the overwrite clock without making garbage),
// punctuated by bursts that drop entire lists at once. Garbage creation
// per overwrite swings between ~0 and very large — stressing SAGA's
// smoothed-slope assumption — and collections alternate between empty
// and rich, stressing SAIO's Delta_GCIO ~= CurrGCIO assumption (which
// its c_hist history window is designed to absorb).
struct BurstyDeleteOptions {
  uint64_t seed = 1;
  int bursts = 40;
  int quiet_cycles_per_burst = 400;
  int lists_per_burst = 4;
  int list_length = 48;
  uint32_t node_bytes = 400;
};
Trace MakeBurstyDeletes(const BurstyDeleteOptions& options);

// Monotonic growth: churn at a fixed rate while the database keeps
// growing (a fraction of nodes is never trimmed). Violates SAGA's
// "database size does not change appreciably between collections"
// assumption and continuously dilutes any garbage percentage target.
struct GrowingDatabaseOptions {
  uint64_t seed = 1;
  int cycles = 30000;
  uint32_t node_bytes = 400;
  // Every `retain_every`-th appended node becomes permanent.
  int retain_every = 3;
  int churn_window = 64;  // transient nodes beyond this get trimmed
};
Trace MakeGrowingDatabase(const GrowingDatabaseOptions& options);

// Producer/consumer queue: head appends, periodic batched tail prunes.
// Garbage arrives in medium-sized, regular bursts with strong spatial
// locality (the dropped tail is contiguous) — a shape common in real
// systems and unlike OO7's reorganizations.
struct MessageQueueOptions {
  uint64_t seed = 1;
  int cycles = 20000;
  int batch = 50;
  uint32_t message_bytes = 600;
};
Trace MakeMessageQueue(const MessageQueueOptions& options);

}  // namespace odbgc

#endif  // ODBGC_WORKLOADS_SYNTHETIC_H_
