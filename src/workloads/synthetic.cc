#include "workloads/synthetic.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "storage/types.h"
#include "util/check.h"
#include "util/random.h"

namespace odbgc {

namespace {

// Shared shadow state for list-shaped workloads: a root object whose
// slots are list heads; nodes have one `next` slot.
class ListWorld {
 public:
  ListWorld(Trace* trace, uint32_t root_slots, uint32_t node_bytes)
      : trace_(trace), node_bytes_(node_bytes), lists_(root_slots) {
    root_ = next_id_++;
    trace_->Append(CreateEvent(root_, 64, root_slots));
    trace_->Append(AddRootEvent(root_));
  }

  ObjectId root() const { return root_; }
  size_t list_length(uint32_t li) const { return lists_[li].size(); }

  // Head-inserts a fresh node into list `li`. The root-slot update is a
  // benign overwrite once the list is non-empty.
  ObjectId Append(uint32_t li) {
    ObjectId node = next_id_++;
    trace_->Append(CreateEvent(node, node_bytes_, 1));
    ObjectId old_head = lists_[li].empty() ? kNullObject : lists_[li].front();
    trace_->Append(WriteRefEvent(node, 0, old_head));
    trace_->Append(WriteRefEvent(root_, li, node));
    lists_[li].push_front(node);
    return node;
  }

  // Walks list `li` (emitting reads) and drops its tail node: one
  // pointer overwrite, one node of garbage.
  void TrimTail(uint32_t li) {
    std::deque<ObjectId>& list = lists_[li];
    ODBGC_CHECK(!list.empty());
    for (ObjectId node : list) trace_->Append(ReadEvent(node));
    if (list.size() == 1) {
      trace_->Append(WriteRefEvent(root_, li, kNullObject));
    } else {
      trace_->Append(WriteRefEvent(list[list.size() - 2], 0, kNullObject));
    }
    trace_->Append(GarbageMarkEvent(node_bytes_, 1));
    list.pop_back();
  }

  // Drops a whole list in one batched delete: the application walks the
  // list and dismantles it tail-first (clearing each next pointer
  // detaches the successor), then clears the root slot. One overwrite
  // per node — a burst of garbage without leaving stale chain pointers
  // that would pin tails across partitions.
  void DropList(uint32_t li) {
    std::deque<ObjectId>& list = lists_[li];
    if (list.empty()) return;
    trace_->Append(ReadEvent(root_));
    for (ObjectId node : list) trace_->Append(ReadEvent(node));
    for (size_t i = list.size() - 1; i-- > 0;) {
      trace_->Append(WriteRefEvent(list[i], 0, kNullObject));
      trace_->Append(GarbageMarkEvent(node_bytes_, 1));  // successor died
    }
    trace_->Append(WriteRefEvent(root_, li, kNullObject));
    trace_->Append(GarbageMarkEvent(node_bytes_, 1));  // head died
    list.clear();
  }

  // Swaps two list heads: two pointer overwrites, zero garbage (both
  // lists stay reachable through the other slot). The application's
  // temporary variable pins list A across the instant where no root
  // slot references it.
  void SwapHeads(uint32_t a, uint32_t b) {
    if (a == b || lists_[a].empty() || lists_[b].empty()) return;
    ObjectId head_a = lists_[a].front();
    ObjectId head_b = lists_[b].front();
    trace_->Append(AddRootEvent(head_a));
    trace_->Append(WriteRefEvent(root_, a, head_b));
    trace_->Append(WriteRefEvent(root_, b, head_a));
    trace_->Append(RemoveRootEvent(head_a));
    std::swap(lists_[a], lists_[b]);
  }

  // Reads the first `depth` nodes of list `li`.
  void WalkPrefix(uint32_t li, size_t depth) {
    const std::deque<ObjectId>& list = lists_[li];
    size_t n = std::min(depth, list.size());
    for (size_t i = 0; i < n; ++i) trace_->Append(ReadEvent(list[i]));
  }

 private:
  Trace* trace_;
  uint32_t node_bytes_;
  ObjectId root_ = kNullObject;
  ObjectId next_id_ = 1;
  std::vector<std::deque<ObjectId>> lists_;
};

}  // namespace

Trace MakeUniformChurn(const UniformChurnOptions& options) {
  ODBGC_CHECK(options.list_count > 0 && options.target_length > 0);
  Trace trace;
  Rng rng(options.seed);
  uint32_t lists = static_cast<uint32_t>(options.list_count);
  ListWorld world(&trace, lists, options.node_bytes);
  for (int i = 0; i < options.cycles; ++i) {
    uint32_t append_list = static_cast<uint32_t>(i) % lists;
    world.Append(append_list);
    uint32_t trim_list =
        static_cast<uint32_t>(rng.NextBelow(lists));
    if (world.list_length(trim_list) >
        static_cast<size_t>(options.target_length)) {
      world.TrimTail(trim_list);
    }
  }
  return trace;
}

Trace MakeBurstyDeletes(const BurstyDeleteOptions& options) {
  ODBGC_CHECK(options.lists_per_burst > 0 && options.list_length > 0);
  Trace trace;
  Rng rng(options.seed);
  uint32_t lists = static_cast<uint32_t>(options.lists_per_burst);
  ListWorld world(&trace, lists, options.node_bytes);
  for (int burst = 0; burst < options.bursts; ++burst) {
    // Quiet phase: rebuild the lists, then idle along with reads and
    // benign head swaps (overwrites that create no garbage, so the
    // garbage-per-overwrite rate collapses between bursts).
    int rebuild = options.lists_per_burst * options.list_length;
    for (int i = 0; i < options.quiet_cycles_per_burst; ++i) {
      if (i < rebuild) {
        world.Append(static_cast<uint32_t>(i) % lists);
      } else if (i % 3 == 0 && lists > 1) {
        world.SwapHeads(static_cast<uint32_t>(rng.NextBelow(lists)),
                        static_cast<uint32_t>(rng.NextBelow(lists)));
      } else {
        world.WalkPrefix(static_cast<uint32_t>(rng.NextBelow(lists)), 12);
      }
    }
    // Burst: drop everything at once.
    for (uint32_t li = 0; li < lists; ++li) world.DropList(li);
  }
  return trace;
}

Trace MakeGrowingDatabase(const GrowingDatabaseOptions& options) {
  ODBGC_CHECK(options.retain_every > 0 && options.churn_window > 0);
  Trace trace;
  Rng rng(options.seed);
  // Slot 0: permanent list (never trimmed); slot 1: churn list.
  ListWorld world(&trace, 2, options.node_bytes);
  for (int i = 0; i < options.cycles; ++i) {
    if (i % options.retain_every == 0) {
      world.Append(0);  // permanent: the database keeps growing
    } else {
      world.Append(1);
      if (world.list_length(1) >
          static_cast<size_t>(options.churn_window)) {
        world.TrimTail(1);
      }
    }
    if (i % 7 == 0) {
      world.WalkPrefix(static_cast<uint32_t>(rng.NextBelow(2)), 8);
    }
  }
  return trace;
}

Trace MakeMessageQueue(const MessageQueueOptions& options) {
  ODBGC_CHECK(options.batch > 0);
  Trace trace;
  ListWorld world(&trace, 1, options.message_bytes);
  for (int i = 0; i < options.cycles; ++i) {
    world.Append(0);
    // Consume in batches: when the queue doubles, walk the live prefix
    // and cut the tail half off in one overwrite.
    if (world.list_length(0) >
        static_cast<size_t>(2 * options.batch)) {
      // Cut after `batch` messages: everything older dies as a cluster.
      // ListWorld has no partial-cut primitive, so trim node by node
      // would be O(n^2); instead drop and rebuild semantics are wrong —
      // emulate the cut directly through TrimTail repetitions kept short
      // by construction (queue length is bounded at 2*batch+1, so the
      // batch trim walks at most that).
      size_t drop = world.list_length(0) - options.batch;
      for (size_t k = 0; k < drop; ++k) world.TrimTail(0);
    }
  }
  return trace;
}

}  // namespace odbgc
