#include "workloads/streaming.h"

#include <algorithm>

#include "storage/types.h"
#include "util/check.h"

namespace odbgc {

StreamingChurnSource::StreamingChurnSource(
    const StreamingChurnOptions& options)
    : options_(options), rng_(options.seed), lists_(options.list_count) {
  ODBGC_CHECK(options.list_count > 0 && options.target_length > 0);
  root_ = next_id_++;
  pending_.push_back(CreateEvent(root_, 64, options_.list_count));
  pending_.push_back(AddRootEvent(root_));
}

bool StreamingChurnSource::Next(TraceEvent* out) {
  while (pending_.empty()) {
    if (cycle_ >= options_.cycles) return false;
    GenerateCycle();
  }
  *out = pending_.front();
  pending_.pop_front();
  return true;
}

size_t StreamingChurnSource::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const std::deque<uint32_t>& l : lists_) {
    bytes += l.size() * sizeof(uint32_t);
  }
  bytes += pending_.size() * sizeof(TraceEvent);
  return bytes;
}

void StreamingChurnSource::GenerateCycle() {
  const uint32_t lists = options_.list_count;
  Append(static_cast<uint32_t>(cycle_) % lists);
  uint32_t trim_list = static_cast<uint32_t>(rng_.NextBelow(lists));
  if (lists_[trim_list].size() > options_.target_length) {
    TrimTail(trim_list);
  }
  for (uint32_t r = 0; r < options_.read_factor; ++r) {
    WalkPrefix(static_cast<uint32_t>(rng_.NextBelow(lists)), 8);
  }
  ++cycle_;
}

// The three primitives mirror workloads/synthetic.cc's ListWorld exactly
// (same events, same ground-truth marks); they differ only in emitting
// into the pending buffer instead of a trace.

void StreamingChurnSource::Append(uint32_t li) {
  uint32_t node = next_id_++;
  pending_.push_back(CreateEvent(node, options_.node_bytes, 1));
  uint32_t old_head = lists_[li].empty() ? 0u : lists_[li].front();
  pending_.push_back(WriteRefEvent(node, 0, old_head));
  pending_.push_back(WriteRefEvent(root_, li, node));
  lists_[li].push_front(node);
}

void StreamingChurnSource::TrimTail(uint32_t li) {
  std::deque<uint32_t>& list = lists_[li];
  ODBGC_CHECK(!list.empty());
  for (uint32_t node : list) pending_.push_back(ReadEvent(node));
  if (list.size() == 1) {
    pending_.push_back(WriteRefEvent(root_, li, 0));
  } else {
    pending_.push_back(WriteRefEvent(list[list.size() - 2], 0, 0));
  }
  pending_.push_back(GarbageMarkEvent(options_.node_bytes, 1));
  list.pop_back();
}

void StreamingChurnSource::WalkPrefix(uint32_t li, size_t depth) {
  const std::deque<uint32_t>& list = lists_[li];
  size_t n = std::min(depth, list.size());
  for (size_t i = 0; i < n; ++i) pending_.push_back(ReadEvent(list[i]));
}

}  // namespace odbgc
