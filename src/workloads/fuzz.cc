#include "workloads/fuzz.h"

#include <vector>

#include "storage/object_store.h"
#include "storage/reachability.h"
#include "util/check.h"
#include "util/random.h"

namespace odbgc {

namespace {

// Drives the random surgery against a private shadow store, mirroring
// every event into the trace and emitting exact garbage markers.
class RandomGraphBuilder {
 public:
  explicit RandomGraphBuilder(const RandomGraphOptions& options)
      : options_(options), rng_(options.seed) {
    StoreConfig cfg;
    cfg.partition_bytes = 64 * 1024;
    cfg.page_bytes = 8 * 1024;
    cfg.buffer_pages = 4;
    cfg.pin_newest_allocation = false;  // no collector runs here
    shadow_ = std::make_unique<ObjectStore>(cfg);
  }

  Trace Build() {
    // Seed the world with a root that has the maximum fan-out.
    ObjectId root = Create(/*link_from=*/kNullObject);
    AddRoot(root);

    double total = options_.create_weight + options_.relink_weight +
                   options_.unlink_weight + options_.read_weight +
                   options_.root_weight;
    for (int op = 0; op < options_.operations; ++op) {
      double dice = rng_.NextDouble() * total;
      if ((dice -= options_.create_weight) < 0) {
        DoCreate();
      } else if ((dice -= options_.relink_weight) < 0) {
        DoRelink();
      } else if ((dice -= options_.unlink_weight) < 0) {
        DoUnlink();
      } else if ((dice -= options_.read_weight) < 0) {
        DoRead();
      } else {
        DoRootChange();
      }
    }
    return std::move(trace_);
  }

 private:
  // --- primitive operations, mirrored into shadow + trace ---

  ObjectId Create(ObjectId link_from) {
    uint32_t size = static_cast<uint32_t>(rng_.NextInRange(
        options_.min_object_bytes, options_.max_object_bytes));
    uint32_t slots =
        static_cast<uint32_t>(rng_.NextInRange(1, options_.max_slots));
    ObjectId id = next_id_++;
    shadow_->CreateObject(id, size, slots);
    trace_.Append(CreateEvent(id, size, slots));
    if (link_from != kNullObject) {
      // Link immediately so the node is reachable before the next event
      // (the application publishes its allocation).
      uint32_t slot = PickSlot(link_from);
      WriteRef(link_from, slot, id);
    }
    return id;
  }

  void AddRoot(ObjectId id) {
    shadow_->AddRoot(id);
    trace_.Append(AddRootEvent(id));
    RefreshReachable();
  }

  void WriteRef(ObjectId src, uint32_t slot, ObjectId target) {
    ObjectId old = shadow_->slots(src)[slot].target;
    shadow_->WriteRef(src, slot, target);
    trace_.Append(WriteRefEvent(src, slot, target));
    if (old != kNullObject && old != target) {
      // The overwrite may have detached something: emit the exact delta.
      EmitGarbageDelta();
    } else {
      RefreshReachable();
    }
  }

  void EmitGarbageDelta() {
    ScanReachabilityInto(*shadow_, &scan_, &scratch_);
    ODBGC_CHECK(scan_.unreachable_bytes >= known_unreachable_bytes_);
    uint64_t delta_bytes =
        scan_.unreachable_bytes - known_unreachable_bytes_;
    uint64_t delta_objects =
        scan_.unreachable_objects - known_unreachable_objects_;
    if (delta_bytes > 0) {
      trace_.Append(
          GarbageMarkEvent(static_cast<uint32_t>(delta_bytes),
                           static_cast<uint32_t>(delta_objects)));
      known_unreachable_bytes_ = scan_.unreachable_bytes;
      known_unreachable_objects_ = scan_.unreachable_objects;
    }
    RebuildReachableList();
  }

  void RefreshReachable() {
    ScanReachabilityInto(*shadow_, &scan_, &scratch_);
    RebuildReachableList();
  }

  void RebuildReachableList() {
    reachable_.clear();
    for (ObjectId id = 1; id <= shadow_->max_object_id(); ++id) {
      if (id < scan_.reachable.size() && scan_.reachable[id]) {
        reachable_.push_back(id);
      }
    }
  }

  // --- op mix ---

  ObjectId PickReachable() {
    ODBGC_CHECK(!reachable_.empty());
    return reachable_[rng_.NextBelow(reachable_.size())];
  }

  uint32_t PickSlot(ObjectId id) {
    return static_cast<uint32_t>(
        rng_.NextBelow(shadow_->object(id).slot_count));
  }

  void DoCreate() { Create(PickReachable()); }

  void DoRelink() {
    ObjectId src = PickReachable();
    ObjectId target = PickReachable();
    WriteRef(src, PickSlot(src), target);
  }

  void DoUnlink() {
    // Find a reachable node with a non-null slot (bounded search).
    for (int tries = 0; tries < 16; ++tries) {
      ObjectId src = PickReachable();
      const std::span<const Slot> slots = shadow_->slots(src);
      for (uint32_t s = 0; s < slots.size(); ++s) {
        if (slots[s].target != kNullObject) {
          WriteRef(src, s, kNullObject);
          return;
        }
      }
    }
  }

  void DoRead() {
    ObjectId id = PickReachable();
    shadow_->ReadObject(id);
    trace_.Append(ReadEvent(id));
  }

  void DoRootChange() {
    if (shadow_->roots().size() > 1 && rng_.NextBool(0.5)) {
      // Remove a non-primary root; its subgraph may become garbage.
      const std::vector<ObjectId>& roots = shadow_->roots();
      ObjectId victim = roots[1 + rng_.NextBelow(roots.size() - 1)];
      shadow_->RemoveRoot(victim);
      trace_.Append(RemoveRootEvent(victim));
      EmitGarbageDelta();
    } else {
      ObjectId id = PickReachable();
      if (!shadow_->IsRoot(id)) AddRoot(id);
    }
  }

  RandomGraphOptions options_;
  Rng rng_;
  std::unique_ptr<ObjectStore> shadow_;
  Trace trace_;
  ObjectId next_id_ = 1;
  std::vector<ObjectId> reachable_;
  // Scan workspace reused across the per-mutation shadow scans.
  ReachabilityResult scan_;
  ReachabilityScratch scratch_;
  uint64_t known_unreachable_bytes_ = 0;
  uint64_t known_unreachable_objects_ = 0;
};

}  // namespace

Trace MakeRandomGraph(const RandomGraphOptions& options) {
  ODBGC_CHECK(options.operations > 0);
  ODBGC_CHECK(options.min_object_bytes > 0 &&
              options.min_object_bytes <= options.max_object_bytes);
  ODBGC_CHECK(options.max_slots >= 1);
  RandomGraphBuilder builder(options);
  return builder.Build();
}

}  // namespace odbgc
