#ifndef ODBGC_WORKLOADS_FUZZ_H_
#define ODBGC_WORKLOADS_FUZZ_H_

#include <cstdint>

#include "trace/trace.h"

namespace odbgc {

// Randomized object-graph workload with exact ground truth. Unlike the
// structured workloads, this one performs arbitrary graph surgery —
// creates, relinks, unlinks, root changes, reads — over objects of
// random sizes and fan-outs, building cycles and shared structure
// freely. Ground-truth garbage markers are computed by replaying every
// mutation into a private shadow store and scanning reachability after
// each pointer overwrite, so the emitted markers are exact by
// construction regardless of graph shape.
//
// Purpose: an adversarial safety harness for the collector and the
// policies (fuzz tests sweep seeds and assert that markers, the
// scanner, and the collector never disagree).
struct RandomGraphOptions {
  uint64_t seed = 1;
  int operations = 3000;
  uint32_t min_object_bytes = 32;
  uint32_t max_object_bytes = 800;
  uint32_t max_slots = 4;
  // Relative weights of the operation mix.
  double create_weight = 0.35;  // create a node and link it in
  double relink_weight = 0.25;  // point an existing slot somewhere else
  double unlink_weight = 0.20;  // null out a non-null slot
  double read_weight = 0.15;    // read a reachable node
  double root_weight = 0.05;    // add/remove a root
};

Trace MakeRandomGraph(const RandomGraphOptions& options);

}  // namespace odbgc

#endif  // ODBGC_WORKLOADS_FUZZ_H_
