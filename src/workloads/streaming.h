#ifndef ODBGC_WORKLOADS_STREAMING_H_
#define ODBGC_WORKLOADS_STREAMING_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "trace/event_source.h"
#include "util/random.h"

namespace odbgc {

// Streaming synthetic clients: the generator equivalents of
// workloads/synthetic.cc that emit events on demand through the
// EventSource interface instead of materializing a trace. State is the
// shadow live set only (a few bounded lists plus a small pending-event
// buffer), so ten thousand concurrent clients cost O(clients) memory no
// matter how many events each will ever produce — the property the
// multi-tenant engine's 10,000-client sweeps depend on. OCB-style
// parameterization (PAPERS.md): each client is a fresh parameter vector,
// not a stored trace.

// One churn client: `list_count` linked lists under one root; every
// cycle head-inserts a node into one list (round-robin), trims a random
// list back to `target_length` when it overflows (creating garbage with
// an exact kGarbageMark annotation), and walks `read_factor` random
// prefixes. Object ids are consumed densely: exactly one node per
// cycle, so max_object_id is 1 + cycles regardless of the seed —
// events scale with read_factor while the id space (and thus per-shard
// store memory) does not.
struct StreamingChurnOptions {
  uint64_t seed = 1;
  uint64_t cycles = 1000;
  uint32_t list_count = 4;
  uint32_t target_length = 24;
  uint32_t node_bytes = 256;
  // Extra read walks per cycle (8 reads each): event volume without id
  // growth.
  uint32_t read_factor = 1;
};

class StreamingChurnSource : public EventSource {
 public:
  explicit StreamingChurnSource(const StreamingChurnOptions& options);

  bool Next(TraceEvent* out) override;
  uint32_t max_object_id() const override {
    // Root (id 1) plus one node per cycle.
    return static_cast<uint32_t>(1 + options_.cycles);
  }
  size_t ApproxMemoryBytes() const override;

 private:
  // Emits one cycle's events into pending_.
  void GenerateCycle();
  void Append(uint32_t li);
  void TrimTail(uint32_t li);
  void WalkPrefix(uint32_t li, size_t depth);

  StreamingChurnOptions options_;
  Rng rng_;
  uint64_t cycle_ = 0;
  uint32_t next_id_ = 1;
  uint32_t root_ = 0;
  std::vector<std::deque<uint32_t>> lists_;
  std::deque<TraceEvent> pending_;
};

}  // namespace odbgc

#endif  // ODBGC_WORKLOADS_STREAMING_H_
