#ifndef ODBGC_SIM_RUNNER_H_
#define ODBGC_SIM_RUNNER_H_

#include <cstdint>
#include <vector>

#include "oo7/params.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "util/stats.h"

namespace odbgc {

// Aggregate of several runs differing only in their random seed —
// the paper's "mean of 10 runs" with min/max error bars.
struct AggregateResult {
  std::vector<SimResult> runs;
  // Per-run achieved GC-I/O percentage (post-preamble).
  MinMeanMax achieved_io_pct;
  // Per-run mean garbage percentage (event-sampled, post-preamble).
  MinMeanMax mean_garbage_pct;
  MinMeanMax collections;
  MinMeanMax total_io;
};

// Generates the full four-phase OO7 application trace for (params, seed)
// and runs it under `config`.
SimResult RunOo7Once(const SimConfig& config, const Oo7Params& params,
                     uint64_t seed);

// Runs `num_runs` seeds (base_seed, base_seed+1, ...) and aggregates.
AggregateResult RunOo7Many(const SimConfig& config, const Oo7Params& params,
                           uint64_t base_seed, int num_runs);

}  // namespace odbgc

#endif  // ODBGC_SIM_RUNNER_H_
