#ifndef ODBGC_SIM_RUNNER_H_
#define ODBGC_SIM_RUNNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "oo7/params.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "trace/trace.h"
#include "util/stats.h"

namespace odbgc {

// Aggregate of several runs differing only in their random seed —
// the paper's "mean of 10 runs" with min/max error bars.
struct AggregateResult {
  std::vector<SimResult> runs;
  // Per-run achieved GC-I/O percentage (post-preamble).
  MinMeanMax achieved_io_pct;
  // Per-run mean garbage percentage (event-sampled, post-preamble).
  MinMeanMax mean_garbage_pct;
  MinMeanMax collections;
  MinMeanMax total_io;
};

// Summarizes per-run results (in the given order) into the aggregate.
AggregateResult AggregateRuns(std::vector<SimResult> runs);

// Derives every per-run RNG stream in `config` from the run's seed, in
// one place so the serial, cached, and thread-pooled paths stay
// byte-identical:
//   * selector_seed decorrelates from the trace generator (seed*7919+17);
//   * if the config enables I/O faults, FaultPlan::seed is mixed with the
//     run seed (SplitMix64 finalizer) so each run of a sweep draws an
//     independent fault stream while staying reproducible.
void ApplyRunSeeds(SimConfig* config, uint64_t seed);

// Generates the full four-phase OO7 application trace for (params, seed).
// Returned immutable and shared so sweeps can replay one generation many
// times with zero copies (see sim/parallel.h's TraceCache).
std::shared_ptr<const Trace> GenerateOo7Trace(const Oo7Params& params,
                                              uint64_t seed);

// Generates the trace for (params, seed) and runs it under `config`.
SimResult RunOo7Once(const SimConfig& config, const Oo7Params& params,
                     uint64_t seed);

// Replays a pre-generated (typically cached) OO7 trace under `config`.
// `seed` must be the trace's generation seed: the selector seed is
// derived from it exactly as RunOo7Once does.
SimResult RunOo7WithTrace(const SimConfig& config, const Trace& trace,
                          uint64_t seed);

// Runs `num_runs` seeds (base_seed, base_seed+1, ...) and aggregates.
// With threads != 1 the runs fan out across a thread pool (one trace
// generation per seed); results are byte-identical to the serial path
// for any thread count. threads <= 0 means one thread per hardware core.
AggregateResult RunOo7Many(const SimConfig& config, const Oo7Params& params,
                           uint64_t base_seed, int num_runs,
                           int threads = 1);

}  // namespace odbgc

#endif  // ODBGC_SIM_RUNNER_H_
