#ifndef ODBGC_SIM_CHECKPOINT_H_
#define ODBGC_SIM_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sim/config.h"

namespace odbgc {

class Simulation;

// Durable checkpoint/restore for a running simulation.
//
// File layout (all integers little-endian):
//
//   header (48 bytes):
//     magic          8 bytes  "ODBGCKPT"
//     version        u32      kCheckpointVersion
//     flags          u32      reserved, 0
//     config_hash    u64      ConfigFingerprint(config)
//     event_cursor   u64      applied trace events at checkpoint time
//     payload_size   u64
//     payload_crc    u32      IEEE CRC-32 of the payload bytes
//     header_crc     u32      CRC-32 of the 44 header bytes above
//   payload (payload_size bytes): Simulation::SaveState snapshot
//   footer (8 bytes):
//     footer_magic   u32      kCheckpointFooterMagic
//     payload_crc    u32      repeated — a missing/mismatched footer
//                             identifies a torn (partially written) file
//
// Writes are atomic: the image is written to `path + ".tmp"`, the
// previous checkpoint (if any) is renamed to `path + ".prev"`, and the
// temp file is renamed onto `path`. A reader that finds `path` corrupt
// falls back to `path + ".prev"`, so a crash during checkpointing never
// loses the last good checkpoint.
enum class CheckpointError : uint8_t {
  kNone = 0,
  kOpenFailed = 1,     // file missing or unreadable / uncreatable
  kWriteFailed = 2,    // short write, flush or rename failure
  kTruncated = 3,      // file shorter than header+payload+footer claims
  kBadMagic = 4,       // not a checkpoint file
  kBadVersion = 5,     // checkpoint from an incompatible format version
  kBadHeaderCrc = 6,   // header bytes corrupted
  kBadPayloadCrc = 7,  // payload bytes corrupted (or torn footer)
  kMalformed = 8,      // CRC passed but the snapshot did not deserialize
  kConfigMismatch = 9, // checkpoint was taken under a different config
};

const char* CheckpointErrorName(CheckpointError error);

// v2: self-healing state (page-health sets in the fault injector,
// quarantine flags, corruption queue, scrub cursor, repair counters).
// v3: telemetry state (logical ticks, metrics registry, decision ledger,
// time-series frames) as a length-prefixed blob — empty for
// telemetry-off runs.
// v4: the object store serializes external pins (the cross-shard
// remembered set) between the root list and the newest-allocation pin.
// v5: overload-governor state (pressure level, safe-mode flag and the
// fallback policy's schedule, oscillation window) between the passive
// estimators and the telemetry blob, plus the governor counters in the
// result block; the config fingerprint covers max_db_bytes and the
// governor knobs.
inline constexpr uint32_t kCheckpointVersion = 5;
inline constexpr uint32_t kCheckpointFooterMagic = 0x54504b43;  // "CKPT"

// Hash of the configuration fields that determine simulation behavior.
// Deliberately EXCLUDED, so that a resumed run may drop them: the crash
// schedule (crash_point / crash_at_collection / crash_at_event), the
// fault and selector seeds (the live RNG states travel in the payload),
// the wall-clock deadline, and telemetry options (telemetry state in the
// payload is restored when the resuming config enables telemetry, and
// skipped — without failing — when it does not).
uint64_t ConfigFingerprint(const SimConfig& config);

// Serializes `sim` and writes it to `path` atomically (see layout above).
CheckpointError WriteCheckpoint(const Simulation& sim,
                                const std::string& path);

struct ResumeResult {
  // Final outcome. kNone means `sim` is ready to continue.
  CheckpointError error = CheckpointError::kOpenFailed;
  // What loading `path` itself produced (differs from `error` when the
  // `.prev` fallback was consulted).
  CheckpointError primary_error = CheckpointError::kNone;
  bool used_fallback = false;
  std::string loaded_path;
  uint64_t events_applied = 0;
  std::unique_ptr<Simulation> sim;

  bool ok() const { return error == CheckpointError::kNone; }
};

// Loads the checkpoint at `path` into a fresh Simulation built from
// `config`. If `path` is missing or corrupt, tries `path + ".prev"`.
ResumeResult ResumeFromCheckpoint(const SimConfig& config,
                                  const std::string& path);

}  // namespace odbgc

#endif  // ODBGC_SIM_CHECKPOINT_H_
