#include "sim/parallel.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/perfetto_export.h"
#include "obs/progress.h"
#include "oo7/generator.h"
#include "sim/checkpoint.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace odbgc {

TraceCache::Key TraceCache::MakeKey(const Oo7Params& params, uint64_t seed) {
  return Key{params.num_atomic_per_comp, params.num_conn_per_atomic,
             params.document_bytes,      params.manual_kbytes,
             params.num_comp_per_module, params.num_assm_per_assm,
             params.num_assm_levels,     params.num_comp_per_assm,
             params.num_modules,         seed};
}

void TraceCache::set_generator_for_test(Generator generator) {
  std::lock_guard<std::mutex> lock(mu_);
  generator_ = std::move(generator);
}

std::shared_ptr<const Trace> TraceCache::GetOo7(const Oo7Params& params,
                                                uint64_t seed) {
  Key key = MakeKey(params, seed);
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      ++hits_;
      slot = it->second;
      slot->last_use = ++use_clock_;
      slot_ready_.wait(lock, [&slot] { return slot->ready; });
      if (slot->failed) {
        throw std::runtime_error("TraceCache: generation failed for key");
      }
      return slot->trace;
    }
    ++misses_;
    slot = std::make_shared<Slot>();
    slot->last_use = ++use_clock_;
    slots_.emplace(key, slot);
  }
  // Generate outside the lock so distinct keys generate concurrently.
  Generator generator;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generator = generator_;
  }
  std::shared_ptr<const Trace> trace;
  try {
    trace = generator ? generator(params, seed)
                      : GenerateOo7Trace(params, seed);
    if (trace == nullptr) {
      throw std::runtime_error("TraceCache: generator returned null");
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot->ready = true;
      slot->failed = true;
      slots_.erase(key);  // a later request may retry
    }
    slot_ready_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot->trace = trace;
    slot->bytes = trace->size() * sizeof(TraceEvent);
    slot->ready = true;
    retained_bytes_ += slot->bytes;
    EnforceBudgetLocked();
  }
  slot_ready_.notify_all();
  return trace;
}

void TraceCache::EnforceBudgetLocked() {
  while (byte_budget_ > 0 && retained_bytes_ > byte_budget_) {
    // O(entries) LRU scan; the cache holds at most a few dozen distinct
    // (params, seed) keys, so a linked list would be overkill.
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (!it->second->ready || it->second->failed) continue;
      if (victim == slots_.end() ||
          it->second->last_use < victim->second->last_use) {
        victim = it;
      }
    }
    if (victim == slots_.end()) break;  // everything left is in flight
    retained_bytes_ -= victim->second->bytes;
    ++evictions_;
    slots_.erase(victim);
  }
}

void TraceCache::set_byte_budget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  EnforceBudgetLocked();
}

uint64_t TraceCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t TraceCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t TraceCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t TraceCache::retained_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_bytes_;
}

namespace {
// Backstop against a mistyped thread knob (e.g. a seed pasted into
// --threads) spawning thousands of OS threads before anything runs.
constexpr int kMaxSweepThreads = 1024;

int ValidatedThreadCount(int threads) {
  if (threads > kMaxSweepThreads) {
    throw SimInvalidConfig("thread count " + std::to_string(threads) +
                           " exceeds the supported maximum " +
                           std::to_string(kMaxSweepThreads));
  }
  return threads;  // <= 0 still means "one per hardware core"
}
}  // namespace

SweepRunner::SweepRunner(int threads)
    : pool_(ValidatedThreadCount(threads)) {}

uint64_t SweepRunner::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void SweepRunner::EnableTracing(size_t max_events_per_worker) {
  if (!recorders_.empty()) return;
  const size_t slots = static_cast<size_t>(pool_.size()) + 1;
  recorders_.reserve(slots);
  for (size_t i = 0; i < slots; ++i) {
    recorders_.push_back(
        std::make_unique<obs::TraceRecorder>(max_events_per_worker));
  }
}

obs::TraceRecorder* SweepRunner::recorder_for_current_worker() {
  if (recorders_.empty()) return nullptr;
  int idx = ThreadPool::current_worker_index();
  // Non-worker threads (the submitter running RunOne directly) share the
  // extra last slot.
  if (idx < 0 || idx >= pool_.size()) idx = pool_.size();
  return recorders_[static_cast<size_t>(idx)].get();
}

bool SweepRunner::ExportTrace(const std::string& path) const {
  if (recorders_.empty()) return false;
  std::vector<obs::TraceThread> threads;
  threads.reserve(recorders_.size());
  for (size_t i = 0; i < recorders_.size(); ++i) {
    std::string name = i < recorders_.size() - 1
                           ? "worker-" + std::to_string(i)
                           : "submitter";
    threads.push_back(obs::TraceThread{recorders_[i].get(),
                                       static_cast<int>(i + 1), name});
  }
  return obs::WriteChromeTrace(threads, path, "odbgc-sweep");
}

std::vector<SimResult> SweepRunner::Run(const std::vector<SweepPoint>& points) {
  // Fail-fast wrapper: figure harnesses treat any run failure as fatal.
  std::vector<RunOutcome> outcomes = RunWithStatus(points, SweepOptions{});
  std::vector<SimResult> results(points.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].exception) std::rethrow_exception(outcomes[i].exception);
    results[i] = std::move(outcomes[i].result);
  }
  return results;
}

std::vector<RunOutcome> SweepRunner::RunWithStatus(
    const std::vector<SweepPoint>& points, const SweepOptions& options) {
  // Reject unusable options up front with a typed error instead of an
  // abort: a sweep harness can report the bad knob and exit cleanly, and
  // nothing has run yet, so there is no partial result to lose.
  if (options.max_attempts < 1) {
    throw SimInvalidConfig("max_attempts must be >= 1, got " +
                           std::to_string(options.max_attempts));
  }
  if (options.retry_backoff_ms < 0.0) {
    throw SimInvalidConfig("retry_backoff_ms must be >= 0");
  }
  if (options.run_deadline_ms < 0.0) {
    throw SimInvalidConfig("run_deadline_ms must be >= 0");
  }
  if (options.checkpoint_every > 0 && options.checkpoint_prefix.empty()) {
    throw SimInvalidConfig(
        "checkpoint_every is set but checkpoint_prefix is empty");
  }
  std::vector<RunOutcome> outcomes(points.size());
  std::unique_ptr<obs::SweepProgress> progress;
  if (progress_out_ != nullptr && !points.empty()) {
    progress = std::make_unique<obs::SweepProgress>(progress_out_,
                                                    points.size());
  }
  pool_.ParallelFor(points.size(),
                    [this, &points, &outcomes, &options, &progress](size_t i) {
    const SweepPoint& p = points[i];
    RunOutcome& out = outcomes[i];
    for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
      out.status.attempts = attempt;
      bool transient = false;
      try {
        obs::TraceRecorder* rec = recorder_for_current_worker();
        if (rec != nullptr) {
          rec->Begin("get_trace", NowMicros(), {{"seed", p.seed}});
        }
        std::shared_ptr<const Trace> trace = cache_.GetOo7(p.params, p.seed);
        if (rec != nullptr) rec->End("get_trace", NowMicros());
        SimConfig cfg = p.config;
        ApplyRunSeeds(&cfg, p.seed);  // as RunOo7Once
        if (options.run_deadline_ms > 0.0) {
          cfg.deadline_ms = options.run_deadline_ms;
        }
        if (rec != nullptr) {
          rec->Begin("run_simulation", NowMicros(),
                     {{"point", i}, {"seed", p.seed}});
        }
        const bool checkpointing = !options.checkpoint_prefix.empty() &&
                                   options.checkpoint_every > 0;
        if (checkpointing) {
          const std::string ckpt = options.checkpoint_prefix + ".run" +
                                   std::to_string(i) + ".ckpt";
          ResumeResult resumed = ResumeFromCheckpoint(cfg, ckpt);
          std::unique_ptr<Simulation> sim =
              resumed.ok() ? std::move(resumed.sim)
                           : std::make_unique<Simulation>(cfg);
          out.result = sim->RunFrom(*trace, ckpt, options.checkpoint_every);
        } else {
          out.result = RunSimulation(cfg, *trace);
        }
        if (rec != nullptr) {
          rec->End("run_simulation", NowMicros(),
                   {{"collections", out.result.collections}});
        }
        out.status.failed = false;
        out.status.message.clear();
        out.exception = nullptr;
        break;
      } catch (const SimError& e) {
        out.status.failed = true;
        out.status.error_kind = e.kind();
        out.status.message = e.what();
        out.exception = std::current_exception();
        transient = e.transient();
      } catch (const std::exception& e) {
        out.status.failed = true;
        out.status.error_kind = SimErrorKind::kGeneric;
        out.status.message = e.what();
        out.exception = std::current_exception();
      } catch (...) {
        out.status.failed = true;
        out.status.error_kind = SimErrorKind::kGeneric;
        out.status.message = "unknown exception";
        out.exception = std::current_exception();
      }
      if (!transient || attempt == options.max_attempts) break;
      if (options.retry_backoff_ms > 0.0) {
        const double factor = static_cast<double>(1u << (attempt - 1));
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            options.retry_backoff_ms * factor));
      }
    }
    if (progress != nullptr) progress->OnRunDone();
  });
  return outcomes;
}

SimResult SweepRunner::RunOne(const SimConfig& config, const Oo7Params& params,
                              uint64_t seed) {
  std::shared_ptr<const Trace> trace = cache_.GetOo7(params, seed);
  SimConfig cfg = config;
  ApplyRunSeeds(&cfg, seed);
  return RunSimulation(cfg, *trace);
}

AggregateResult SweepRunner::RunMany(const SimConfig& config,
                                     const Oo7Params& params,
                                     uint64_t base_seed, int num_runs) {
  ODBGC_CHECK(num_runs >= 0);
  std::vector<SweepPoint> points;
  points.reserve(static_cast<size_t>(num_runs));
  for (int i = 0; i < num_runs; ++i) {
    points.push_back(SweepPoint{config, params, base_seed + i});
  }
  return AggregateRuns(Run(points));
}

}  // namespace odbgc
