#include "sim/metrics.h"

namespace odbgc {

std::vector<double> CollectionRateSeries(const SimResult& result) {
  // Collections per pointer overwrite, between consecutive collections
  // (the top graph of Figure 7b). The first collection has no previous
  // point; it reports the rate since time zero.
  std::vector<double> rates;
  rates.reserve(result.log.size());
  uint64_t prev = 0;
  for (const CollectionRecord& rec : result.log) {
    uint64_t dt = rec.overwrite_time - prev;
    rates.push_back(dt == 0 ? 0.0 : 1.0 / static_cast<double>(dt));
    prev = rec.overwrite_time;
  }
  return rates;
}

std::vector<double> CollectionYieldSeries(const SimResult& result) {
  std::vector<double> yields;
  yields.reserve(result.log.size());
  for (const CollectionRecord& rec : result.log) {
    yields.push_back(static_cast<double>(rec.bytes_reclaimed));
  }
  return yields;
}

}  // namespace odbgc
