#ifndef ODBGC_SIM_SIMULATION_H_
#define ODBGC_SIM_SIMULATION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/rate_policy.h"
#include "gc/collector.h"
#include "gc/partition_selector.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "storage/object_store.h"
#include "storage/scrubber.h"
#include "trace/trace.h"

namespace odbgc {

// Builds the rate policy described by `config`. If the policy is SAGA,
// `estimator_hook` receives a non-owning pointer to its estimator (the
// simulation feeds it overwrite and collection events); otherwise it is
// set to nullptr.
std::unique_ptr<RatePolicy> MakePolicy(const SimConfig& config,
                                       GarbageEstimator** estimator_hook);

// Wires a trace through the object store, the collector, a partition
// selector and a collection-rate policy, gathering the measurements the
// paper reports. One Simulation processes one trace.
class Simulation {
 public:
  // Constructs with explicit components (the estimator, if any, must be
  // the one owned by the policy).
  Simulation(const SimConfig& config, std::unique_ptr<RatePolicy> policy,
             std::unique_ptr<PartitionSelector> selector,
             GarbageEstimator* estimator);

  // Convenience: builds policy + selector from the config.
  explicit Simulation(const SimConfig& config);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Processes the whole trace and returns the measurements.
  SimResult Run(const Trace& trace);

  // Processes the trace starting from the first event not yet applied
  // (event index events_applied(); 0 on a fresh simulation, the resume
  // point on one restored from a checkpoint). When `checkpoint_path` is
  // non-empty and `checkpoint_every` > 0, writes a checkpoint after
  // every `checkpoint_every` applied events; a failed write raises
  // SimCheckpointWriteError. Honors config().deadline_ms (raises
  // SimDeadlineExceeded) and the fault plan's crash_at_event (raises
  // SimCrashInjected). Run(trace) is RunFrom(trace, "", 0).
  SimResult RunFrom(const Trace& trace, const std::string& checkpoint_path,
                    uint64_t checkpoint_every);

  // Incremental interface (used by tests and custom drivers).
  void Apply(const TraceEvent& event);
  SimResult Finish();

  // Checkpoint hooks (sim/checkpoint.h wraps these in a checksummed,
  // atomically written file). The snapshot covers everything RunFrom
  // needs to continue deterministically: clock, accumulated results,
  // phase/window accounting, the store (partitions, objects, buffer
  // pool, fault injector, disk model), the collector, the policy with
  // its owned estimator, the partition selector, any passive estimators
  // registered at save time, and — when telemetry is on — the telemetry
  // state (logical ticks, every metric, the decision ledger and the
  // time-series frames), so a crash/resume run exports byte-identical
  // metric/decision/time-series streams. The structured trace recorder
  // is the one exception: traces remain per-process, so byte-identical
  // resume of a *trace export* is only guaranteed for capture-off runs.
  // RestoreState requires a simulation freshly built from the same
  // config (same component types and passive-estimator count).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

  const SimConfig& config() const { return config_; }
  // Number of trace events applied so far == the trace index RunFrom
  // resumes at.
  uint64_t events_applied() const { return clock_.events; }

  // Registers a passive estimator: it receives exactly the overwrite and
  // collection feeds the policy's estimator would, but is never consulted
  // by the policy. Used by ablations to measure what a different
  // estimator *would have* estimated under identical behavior. Not owned;
  // must outlive the simulation.
  void AddPassiveEstimator(GarbageEstimator* estimator);

  // The run's telemetry context; null unless config.telemetry.any() (or
  // when telemetry is compiled out). Valid for the simulation's lifetime,
  // so callers may export its trace after Finish().
  obs::Telemetry* telemetry() { return tel_.get(); }

  // Attaches a live progress reporter (not owned; may be null). Fed a
  // sample every few thousand events; never touches simulation state.
  void set_progress(obs::ProgressReporter* reporter) {
    progress_ = reporter;
  }

  ObjectStore& store() { return *store_; }
  const ObjectStore& store() const { return *store_; }
  RatePolicy& policy() { return *policy_; }
  uint64_t collections() const { return result_.collections; }
  // Live counters (the multi-tenant coordinator reads per-shard io/garbage
  // shares between events without waiting for Finish()).
  const SimClock& clock() const { return clock_; }

  // Overload governor view (sim/governor.h). kNormal / false when the
  // governor is disabled. The multi-tenant engine reads these from its
  // serial sections to drive admission backpressure and the per-shard
  // circuit breaker.
  PressureLevel pressure_level() const {
    return governor_ != nullptr ? governor_->level()
                                : PressureLevel::kNormal;
  }
  bool safe_mode() const { return safe_mode_; }
  const SimResult& result_so_far() const { return result_; }

 private:
  void UpdateClock();
  void SampleGarbage();
  // Applies the config's FaultPlan to the collector (commit protocol,
  // scheduled crash).
  void ConfigureCollector();
  // Recovers from an injected crash; returns true when recovery rolled
  // the collection forward, replacing *report with the completed one.
  bool HandleCrash(CollectionReport* report);
  // Runs the heap verifier; aborts with `when` in the message on any
  // violation.
  void RunVerifier(const char* when);
  void MaybeCollect();
  // Self-healing, run at every event boundary: drains the buffer pool's
  // corruption detections into quarantines, runs a scrub quantum when
  // one is due, and repairs quarantined partitions (at scrub ticks when
  // the scrubber is on, immediately otherwise). A no-op — one integer
  // compare — on healthy zero-fault runs.
  void SelfHealTick();
  // Quarantines the partition of every pending corruption detection.
  void DrainCorruption();
  // Heals, rewrites, rebuilds and releases every quarantined partition.
  void RepairQuarantined();
  void RunIdlePeriod(uint32_t max_collections);
  // Overload governor, evaluated every governor.check_interval_events
  // applied events: observes utilization / I/O saturation, runs the
  // yellow rate boost and red emergency collections, and commits
  // safe-mode transitions. One integer compare when the governor is off.
  void GovernorTick();
  // One governor-forced collection (boost or emergency). Returns false
  // when nothing was collectable (no partitions, all quarantined, or the
  // collection backed out). Accounted outside the policy's schedule.
  bool GovernorCollect(obs::DecisionReason reason);
  void EnterSafeMode();
  void ExitSafeMode();
  // The policy currently steering collections: the configured one, or
  // the conservative fixed-rate fallback while safe mode holds.
  RatePolicy* ActivePolicy() {
    return safe_mode_ ? safe_policy_.get() : policy_.get();
  }
  // Stages ledger context and appends a governor-originated record.
  void LedgerGovernorRecord(obs::DecisionReason reason,
                            const CollectionReport& report, double target);
  void OpenWindowIfReady();
  void ClosePhaseSegment();
  void OpenPhaseSegment(Phase phase);
  // Creates the telemetry context when the config enables it and attaches
  // it to the store's buffer pool, the collector and the policy.
  void InitTelemetry();
  // Creates the pressure governor and its emergency selector when
  // config.governor.enabled.
  void InitGovernor();
  // Cold paths behind ODBGC_IF_TEL: stage the run-context half of the
  // next ledger record (the policy appends its decision half from
  // OnCollection/OnIdleCollection) and take one time-series frame.
  void StageDecisionContext(obs::DecisionLedger& ledger,
                            const CollectionReport& report, bool idle);
  void TakeTimeSeriesSample(obs::TimeSeriesSampler& sampler);
  obs::ProgressSample MakeProgressSample() const;

  SimConfig config_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<RatePolicy> policy_;
  std::unique_ptr<PartitionSelector> selector_;

  // Telemetry (null unless enabled) and cached instrument handles.
  std::unique_ptr<obs::Telemetry> tel_;
  obs::Gauge* tel_garbage_pct_ = nullptr;
  obs::Gauge* tel_est_garbage_pct_ = nullptr;
  obs::Histogram* tel_est_err_ = nullptr;
  obs::Counter* tel_pages_scrubbed_ = nullptr;
  obs::Counter* tel_quarantined_ = nullptr;
  obs::Counter* tel_repaired_ = nullptr;
  obs::Counter* tel_repair_pages_ = nullptr;
  // Stall attribution: app-visible I/O stalls bucketed by cause
  // (docs/OBSERVABILITY.md). The fault-retry cause lives in BufferPool.
  obs::Histogram* tel_stall_gc_copy_ = nullptr;
  obs::Histogram* tel_stall_scrub_ = nullptr;
  obs::Histogram* tel_stall_repair_ = nullptr;
  bool tel_phase_span_open_ = false;

  // Live progress (not owned; null unless --progress).
  obs::ProgressReporter* progress_ = nullptr;
  uint64_t progress_total_events_ = 0;
  bool last_estimate_valid_ = false;
  double last_estimate_error_pp_ = 0.0;

  // Per-phase accounting (between consecutive kPhaseMark events).
  bool phase_open_ = false;
  PhaseStats phase_accum_;
  SimClock phase_base_clock_;
  uint64_t phase_base_collections_ = 0;
  uint64_t phase_base_reclaimed_ = 0;
  GarbageEstimator* estimator_;  // owned by policy_ (SAGA) or null
  std::vector<GarbageEstimator*> passive_estimators_;  // not owned
  Collector collector_;
  Scrubber scrubber_;

  // Overload protection (null / false unless config.governor.enabled).
  // The safe-mode fallback policy is created lazily on first entry and
  // kept for re-entries; the emergency selector is the highest-garbage
  // oracle regardless of the configured selection policy (at red the
  // goal is bytes back per collection, not estimator fidelity).
  std::unique_ptr<PressureGovernor> governor_;
  std::unique_ptr<RatePolicy> safe_policy_;
  std::unique_ptr<PartitionSelector> emergency_selector_;
  bool safe_mode_ = false;

  SimClock clock_;
  SimResult result_;
  Phase current_phase_ = Phase::kNone;

  // Post-preamble window baselines.
  uint64_t window_app_io_base_ = 0;
  uint64_t window_gc_io_base_ = 0;
  uint64_t window_reclaimed_base_ = 0;
  // Whole-run garbage sampling, used as the fallback when a run ends
  // before the preamble completes.
  RunningStats whole_run_garbage_pct_;
};

// One-call helper: run `trace` under `config`. The trace is only read;
// a cached/shared trace may be replayed by many simulations at once.
SimResult RunSimulation(const SimConfig& config, const Trace& trace);
SimResult RunSimulation(const SimConfig& config,
                        const std::shared_ptr<const Trace>& trace);

}  // namespace odbgc

#endif  // ODBGC_SIM_SIMULATION_H_
