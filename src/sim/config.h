#ifndef ODBGC_SIM_CONFIG_H_
#define ODBGC_SIM_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "core/coupled.h"
#include "core/estimator.h"
#include "core/saga.h"
#include "gc/partition_selector.h"
#include "obs/telemetry.h"
#include "sim/governor.h"
#include "storage/object_store.h"

namespace odbgc {

enum class PolicyKind {
  kFixedRate,
  kConnectivityHeuristic,
  kSaio,
  kSaga,
  // Section 5 extension: SAIO throttled by SAGA's garbage estimate.
  kCoupled,
  // YNY94-style allocation-clock baselines (Section 1's related work).
  kAllocationRate,
  kAllocationTriggered,
};

// Complete description of one simulation configuration. Mirrors the
// paper's experimental setup: 96 KB partitions, 8 KB pages, a buffer the
// size of one partition, UpdatedPointer selection, and a 10-collection
// preamble excluded from all means (Section 3).
struct SimConfig {
  StoreConfig store;
  // Cold-start exclusion (Section 3.2): the measurement window opens
  // after `preamble_collections` collections — except that for SAGA runs
  // still ramping toward a high garbage target, it stays closed until
  // the target is approached or `preamble_max_collections` is reached
  // ("preamble lengths range from 10 to 30 collections, depending on the
  // simulation parameters").
  uint32_t preamble_collections = 10;
  uint32_t preamble_max_collections = 30;
  bool record_collection_log = true;

  PolicyKind policy = PolicyKind::kSaga;

  // FixedRate.
  uint64_t fixed_rate_overwrites = 200;

  // AllocationRate baseline: collect every N allocated bytes.
  uint64_t allocation_rate_bytes = 96 * 1024;

  // ConnectivityHeuristic (Section 2.1's failed static derivation).
  double heuristic_connectivity = 4.0;
  double heuristic_object_bytes = 133.0;

  // SAIO.
  double saio_frac = 0.10;
  size_t saio_history = 0;  // c_hist; SaioPolicy::kInfiniteHistory = inf
  uint64_t saio_bootstrap_app_io = 2000;
  // Quiescence extension for SAIO (kIdleMark events in the trace).
  bool saio_opportunism = false;
  uint64_t saio_min_idle_yield = 4096;

  // SAGA (saga.opportunism enables its quiescence extension).
  SagaPolicy::Options saga;
  EstimatorKind estimator = EstimatorKind::kFgsHb;
  double fgs_history_factor = 0.8;

  // Coupled policy (Section 5 extension); uses `estimator` /
  // `fgs_history_factor` for its garbage estimate.
  CoupledIoPolicy::Options coupled;

  // Partition selection.
  SelectorKind selector = SelectorKind::kUpdatedPointer;
  uint64_t selector_seed = 1;

  // Heap invariant verification (storage/verifier.h). The verifier runs
  // after every crash recovery by default (a recovery that corrupts the
  // heap should abort the run, not skew its measurements) and can be
  // turned on after every collection for debugging; a violation aborts
  // via ODBGC_CHECK. `verify_reachability` additionally compares the
  // ground-truth garbage markers against a full reachability scan; it is
  // off by default because kGarbageMark annotations trail the mutation
  // that created the garbage by one trace event, so the comparison is
  // only exact at quiescent points (end of run, bare fixtures), not at
  // arbitrary mid-run collections.
  bool verify_after_collection = false;
  bool verify_after_recovery = true;
  bool verify_reachability = false;

  // Self-healing (storage/scrubber.h + quarantine/repair). The scrubber
  // runs one quantum every `scrub_interval_events` applied trace events
  // (0 disables it), reading up to `scrub_pages_per_quantum` pages
  // through the media so latent damage (bit-flips, decayed pages) is
  // detected before a demand read consumes it. Detections quarantine the
  // damaged partition; with `auto_repair` the simulation heals the
  // media, rewrites the partition's pages from the authoritative object
  // state, rebuilds all derived state, and releases the quarantine (at
  // scrub ticks when the scrubber is on — so the quarantine window is
  // observable — or immediately otherwise). `verify_after_repair` runs
  // the partition verifier on each repaired partition; a violation
  // aborts the run. Zero-fault runs never enter any of these paths.
  uint32_t scrub_interval_events = 0;
  uint32_t scrub_pages_per_quantum = 8;
  bool auto_repair = true;
  bool verify_after_repair = true;

  // Overload protection (sim/governor.h): watermark-driven pressure
  // governor with rate boost, emergency collection and safe-mode policy
  // fallback. Default-disabled; knob-free runs are byte-identical to
  // pre-governor builds. Works with StoreConfig::max_db_bytes for the
  // capacity watermarks (uncapped runs keep only the safe-mode fence).
  GovernorConfig governor;

  // Per-run wall-clock budget in milliseconds (0 disables). Checked every
  // 4096 events inside Simulation::RunFrom; an exceeded budget raises
  // SimDeadlineExceeded (sim/errors.h), which sweep harnesses classify
  // as transient. Excluded from the checkpoint config fingerprint, so a
  // resumed run may use a different budget.
  double deadline_ms = 0.0;

  // In-run telemetry (src/obs/): metrics registry and structured trace.
  // Default-disabled; an enabled run stays semantically identical (the
  // telemetry never feeds back into simulation decisions).
  obs::TelemetryOptions telemetry;
};

}  // namespace odbgc

#endif  // ODBGC_SIM_CONFIG_H_
