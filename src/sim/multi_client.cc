#include "sim/multi_client.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace odbgc {

// Which fields of an event hold object ids (by kind).
void RemapEventIds(TraceEvent* e, uint32_t offset) {
  auto shift = [offset](uint32_t id) {
    return id == 0 ? 0u : id + offset;
  };
  switch (e->kind) {
    case EventKind::kCreate:
      e->a = shift(e->a);
      e->d = shift(e->d);  // clustering hint
      break;
    case EventKind::kRead:
    case EventKind::kUpdate:
    case EventKind::kAddRoot:
    case EventKind::kRemoveRoot:
      e->a = shift(e->a);
      break;
    case EventKind::kWriteRef:
      e->a = shift(e->a);
      e->c = shift(e->c);  // target (0 stays null)
      break;
    case EventKind::kGarbageMark:
    case EventKind::kPhaseMark:
    case EventKind::kIdleMark:
      break;
  }
}

uint32_t MaxObjectId(const Trace& trace) {
  uint32_t max_id = 0;
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kCreate:
        max_id = std::max({max_id, e.a, e.d});
        break;
      case EventKind::kRead:
      case EventKind::kUpdate:
      case EventKind::kAddRoot:
      case EventKind::kRemoveRoot:
        max_id = std::max(max_id, e.a);
        break;
      case EventKind::kWriteRef:
        max_id = std::max({max_id, e.a, e.c});
        break;
      default:
        break;
    }
  }
  return max_id;
}

Trace RemapObjectIds(const Trace& trace, uint32_t offset) {
  Trace out;
  out.Reserve(trace.size());
  for (TraceEvent e : trace.events()) {
    RemapEventIds(&e, offset);
    out.Append(e);
  }
  return out;
}

Trace RemapObjectIds(Trace&& trace, uint32_t offset) {
  Trace out = std::move(trace);
  for (TraceEvent& e : out.mutable_events()) RemapEventIds(&e, offset);
  return out;
}

namespace {

// The merge core shared by both InterleaveClients overloads; inputs are
// already remapped into disjoint id ranges.
Trace MergeRemapped(const std::vector<Trace>& remapped, uint32_t chunk) {
  Trace out;
  size_t total = 0;
  for (const Trace& t : remapped) total += t.size();
  out.Reserve(total);

  // A client may only be preempted at a safe point: not while its most
  // recent allocation is still unlinked. The store's newest-allocation
  // pin protects exactly one in-flight object, and a client switch
  // would displace it; multi-event operations protect themselves with
  // explicit workspace roots (AddRoot/RemoveRoot), so the create->link
  // window is the only fragile one.
  std::vector<size_t> cursor(remapped.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t c = 0; c < remapped.size(); ++c) {
      size_t& pos = cursor[c];
      const Trace& t = remapped[c];
      uint32_t pending_unlinked = 0;
      for (uint32_t k = 0; pos < t.size(); ++k, ++pos) {
        if (k >= chunk && pending_unlinked == 0) break;
        const TraceEvent& e = t[pos];
        out.Append(e);
        progressed = true;
        if (e.kind == EventKind::kCreate) {
          pending_unlinked = e.a;
        } else if (pending_unlinked != 0 &&
                   ((e.kind == EventKind::kWriteRef &&
                     e.c == pending_unlinked) ||
                    (e.kind == EventKind::kAddRoot &&
                     e.a == pending_unlinked))) {
          pending_unlinked = 0;
        }
      }
    }
  }
  return out;
}

}  // namespace

Trace InterleaveClients(const std::vector<Trace>& clients, uint32_t chunk) {
  ODBGC_CHECK(chunk > 0);
  // Remap each client into a disjoint id range.
  std::vector<Trace> remapped;
  uint32_t offset = 0;
  for (const Trace& client : clients) {
    uint32_t max_id = MaxObjectId(client);
    remapped.push_back(RemapObjectIds(client, offset));
    offset += max_id + 1;
  }
  return MergeRemapped(remapped, chunk);
}

Trace InterleaveClients(std::vector<Trace>&& clients, uint32_t chunk) {
  ODBGC_CHECK(chunk > 0);
  uint32_t offset = 0;
  for (Trace& client : clients) {
    uint32_t max_id = MaxObjectId(client);  // before the in-place shift
    client = RemapObjectIds(std::move(client), offset);
    offset += max_id + 1;
  }
  return MergeRemapped(clients, chunk);
}

}  // namespace odbgc
