#ifndef ODBGC_SIM_TRACE_ANALYSIS_H_
#define ODBGC_SIM_TRACE_ANALYSIS_H_

#include <cstdint>

#include "trace/trace.h"
#include "util/stats.h"

namespace odbgc {

// Static analysis of an application trace against the policies'
// assumptions — the paper's first future-work item asks whether real
// applications violate them (Section 5). The analyzer replays the trace
// against a shadow store (no collector) and profiles how garbage
// creation relates to the pointer-overwrite clock.
struct AssumptionReport {
  uint64_t events = 0;
  uint64_t pointer_overwrites = 0;
  uint64_t garbage_bytes = 0;
  uint64_t garbage_objects = 0;

  // Overall bytes of garbage per pointer overwrite — what FGS-style
  // estimators must learn, and what Section 2.1's static derivation
  // gets wrong.
  double garbage_per_overwrite = 0.0;

  // Garbage-creation rate over fixed windows of `window_overwrites`
  // pointer overwrites. A small spread means SAGA's smoothed-slope
  // assumption holds; a wide one predicts trouble.
  uint64_t window_overwrites = 0;
  RunningStats window_gpo;

  // Share of all garbage that arrives within the busiest 10% of
  // windows: ~0.1 for a steady application, ~1.0 for a fully bursty
  // one. High burstiness predicts SAGA estimation failures (see
  // bench/ext_assumption_stress).
  double burstiness = 0.0;

  // Fraction of overwrites that created no garbage at all (benign head
  // shuffles). A high benign share weakens the overwrite~garbage
  // correlation UpdatedPointer and FGS rely on.
  double benign_overwrite_fraction = 0.0;
};

AssumptionReport AnalyzeAssumptions(const Trace& trace,
                                    uint64_t window_overwrites = 200);

}  // namespace odbgc

#endif  // ODBGC_SIM_TRACE_ANALYSIS_H_
