#include "sim/client_mux.h"

#include <limits>
#include <utility>

#include "sim/multi_client.h"
#include "util/check.h"

namespace odbgc {

size_t ClientMux::AddClient(std::unique_ptr<EventSource> source,
                            const MuxClientOptions& options) {
  ODBGC_CHECK(source != nullptr);
  ODBGC_CHECK(options.base_chunk > 0);
  ODBGC_CHECK_MSG(events_drawn_ == 0 && !turn_active_,
                  "AddClient after the first Next()");
  Client c;
  c.offset = next_offset_;
  const uint32_t max_id = source->max_object_id();
  ODBGC_CHECK_MSG(next_offset_ <=
                      std::numeric_limits<uint32_t>::max() - (max_id + 1),
                  "client id ranges overflow the 32-bit id space");
  next_offset_ += max_id + 1;
  c.source = std::move(source);
  c.rng = Rng(options.seed);
  c.options = options;
  clients_.push_back(std::move(c));
  ++alive_;
  return clients_.size() - 1;
}

size_t ClientMux::AddClient(std::shared_ptr<const Trace> trace,
                            const MuxClientOptions& options) {
  ODBGC_CHECK(trace != nullptr);
  const uint32_t max_id = MaxObjectId(*trace);
  return AddClient(
      std::make_unique<TraceCursorSource>(std::move(trace), max_id),
      options);
}

void ClientMux::SetAdmissionGate(AdmissionGate gate, uint32_t defer_limit) {
  gate_ = std::move(gate);
  defer_limit_ = defer_limit;
  if (!gate_) {
    for (Client& c : clients_) c.defer_streak = 0;
  }
}

bool ClientMux::StartTurn() {
  // Round-robin from cursor_; a pass that finds only sleeping clients
  // fast-forwards round_ to the earliest wake-up instead of spinning.
  while (alive_ > 0) {
    uint64_t earliest_wake = std::numeric_limits<uint64_t>::max();
    const size_t n = clients_.size();
    for (size_t scanned = 0; scanned < n; ++scanned) {
      if (cursor_ >= n) {
        cursor_ = 0;
        ++round_;
      }
      const size_t idx = cursor_++;
      Client& c = clients_[idx];
      if (c.exhausted) continue;
      if (c.sleep_until_round > round_) {
        if (c.sleep_until_round < earliest_wake) {
          earliest_wake = c.sleep_until_round;
        }
        continue;
      }
      // Admission gate: a deferred client sits this round out, exactly
      // like think time. The valve admits after defer_limit_ consecutive
      // deferrals so a persistently red gate throttles rather than
      // starves.
      if (gate_ && gate_(static_cast<uint32_t>(idx)) &&
          (defer_limit_ == 0 || c.defer_streak < defer_limit_)) {
        ++c.defer_streak;
        ++admission_deferrals_;
        c.sleep_until_round = round_ + 1;
        if (c.sleep_until_round < earliest_wake) {
          earliest_wake = c.sleep_until_round;
        }
        continue;
      }
      c.defer_streak = 0;
      // Found a turn: arm the budget (chunk plus seeded jitter).
      current_ = idx;
      turn_budget_ = c.options.base_chunk;
      if (c.options.chunk_jitter > 0) {
        turn_budget_ += static_cast<uint32_t>(
            c.rng.NextBelow(c.options.chunk_jitter + 1));
      }
      turn_active_ = true;
      return true;
    }
    // Every alive client is thinking: jump time forward.
    if (earliest_wake == std::numeric_limits<uint64_t>::max()) {
      return false;  // defensive; alive_ should have been 0
    }
    round_ = earliest_wake;
  }
  return false;
}

void ClientMux::EndTurn() {
  Client& c = clients_[current_];
  if (!c.exhausted && c.options.think_time > 0) {
    const uint64_t rest = c.rng.NextBelow(c.options.think_time + 1);
    if (rest > 0) c.sleep_until_round = round_ + 1 + (rest - 1);
  }
  turn_active_ = false;
  turn_budget_ = 0;
}

bool ClientMux::Next(TraceEvent* out, uint32_t* client) {
  while (alive_ > 0) {
    if (!turn_active_ && !StartTurn()) return false;
    Client& c = clients_[current_];
    TraceEvent e;
    if (!c.source->Next(&e)) {
      // Exhausted clients drop out of the rotation for good. A source
      // may not run dry mid create->link window (its own stream always
      // links what it creates), so no pending state needs unwinding.
      c.exhausted = true;
      --alive_;
      EndTurn();
      continue;
    }
    RemapEventIds(&e, c.offset);
    if (e.kind == EventKind::kCreate) {
      c.pending_unlinked = e.a;
    } else if (c.pending_unlinked != 0 &&
               ((e.kind == EventKind::kWriteRef &&
                 e.c == c.pending_unlinked) ||
                (e.kind == EventKind::kAddRoot &&
                 e.a == c.pending_unlinked))) {
      c.pending_unlinked = 0;
    }
    if (turn_budget_ > 0) --turn_budget_;
    if (turn_budget_ == 0 && c.pending_unlinked == 0) EndTurn();
    ++events_drawn_;
    *out = e;
    if (client != nullptr) *client = static_cast<uint32_t>(current_);
    return true;
  }
  return false;
}

size_t ClientMux::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this) + clients_.capacity() * sizeof(Client);
  for (const Client& c : clients_) {
    if (c.source != nullptr) bytes += c.source->ApproxMemoryBytes();
  }
  return bytes;
}

}  // namespace odbgc
