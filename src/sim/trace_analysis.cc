#include "sim/trace_analysis.h"

#include <algorithm>
#include <vector>

#include "storage/object_store.h"
#include "util/check.h"

namespace odbgc {

AssumptionReport AnalyzeAssumptions(const Trace& trace,
                                    uint64_t window_overwrites) {
  ODBGC_CHECK(window_overwrites > 0);
  StoreConfig cfg;
  cfg.partition_bytes = 1024 * 1024;  // geometry is irrelevant here
  cfg.page_bytes = 8 * 1024;
  cfg.buffer_pages = 4;
  cfg.pin_newest_allocation = false;
  ObjectStore store(cfg);

  AssumptionReport report;
  report.window_overwrites = window_overwrites;

  std::vector<double> window_garbage;  // bytes per window
  uint64_t window_start_ow = 0;
  uint64_t window_garbage_bytes = 0;
  uint64_t garbage_making_overwrites = 0;
  uint64_t last_overwrites = 0;

  auto maybe_close_windows = [&]() {
    while (store.pointer_overwrites() >=
           window_start_ow + window_overwrites) {
      window_garbage.push_back(static_cast<double>(window_garbage_bytes));
      report.window_gpo.Add(static_cast<double>(window_garbage_bytes) /
                            static_cast<double>(window_overwrites));
      window_garbage_bytes = 0;
      window_start_ow += window_overwrites;
    }
  };

  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kCreate:
        store.CreateObject(e.a, e.b, e.c, e.d);
        break;
      case EventKind::kRead:
        store.ReadObject(e.a);
        break;
      case EventKind::kUpdate:
        store.UpdateObject(e.a);
        break;
      case EventKind::kWriteRef:
        store.WriteRef(e.a, e.b, e.c);
        maybe_close_windows();
        break;
      case EventKind::kAddRoot:
        store.AddRoot(e.a);
        break;
      case EventKind::kRemoveRoot:
        store.RemoveRoot(e.a);
        break;
      case EventKind::kGarbageMark:
        report.garbage_bytes += e.a;
        report.garbage_objects += e.b;
        window_garbage_bytes += e.a;
        // Attribute this garbage to the overwrite(s) since the last
        // marker: at least one of them was garbage-making.
        if (store.pointer_overwrites() > last_overwrites) {
          ++garbage_making_overwrites;
          last_overwrites = store.pointer_overwrites();
        }
        break;
      case EventKind::kPhaseMark:
      case EventKind::kIdleMark:
        break;
    }
    ++report.events;
  }

  report.pointer_overwrites = store.pointer_overwrites();
  if (report.pointer_overwrites > 0) {
    report.garbage_per_overwrite =
        static_cast<double>(report.garbage_bytes) /
        static_cast<double>(report.pointer_overwrites);
    // Rough benign share: overwrites minus those adjacent to a marker.
    // Each deletion performs several overwrites per marker, so this is
    // an upper bound on the benign share; it still separates
    // construction-heavy traces from deletion-heavy ones.
    double garbage_making = static_cast<double>(garbage_making_overwrites);
    report.benign_overwrite_fraction =
        1.0 - garbage_making / static_cast<double>(
                                   report.pointer_overwrites);
  }

  // Burstiness: garbage share of the top-decile windows.
  if (!window_garbage.empty() && report.garbage_bytes > 0) {
    std::vector<double> sorted = window_garbage;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    size_t top = std::max<size_t>(1, sorted.size() / 10);
    double top_sum = 0;
    for (size_t i = 0; i < top; ++i) top_sum += sorted[i];
    double total = 0;
    for (double g : window_garbage) total += g;
    if (total > 0) report.burstiness = top_sum / total;
  }
  return report;
}

}  // namespace odbgc
