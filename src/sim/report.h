#ifndef ODBGC_SIM_REPORT_H_
#define ODBGC_SIM_REPORT_H_

#include <string>

#include "sim/metrics.h"

namespace odbgc {

// Serializes a simulation result to JSON for downstream tooling
// (plotting the paper's figures, regression dashboards, ...). Includes
// the headline aggregates, per-phase stats, and — when
// `include_collection_log` — the full per-collection time series.
std::string SimResultToJson(const SimResult& result,
                            bool include_collection_log = true);

// Writes SimResultToJson(result) to `path`; false on I/O failure.
bool WriteResultJson(const SimResult& result, const std::string& path,
                     bool include_collection_log = true);

}  // namespace odbgc

#endif  // ODBGC_SIM_REPORT_H_
