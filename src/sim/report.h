#ifndef ODBGC_SIM_REPORT_H_
#define ODBGC_SIM_REPORT_H_

#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/parallel.h"

namespace odbgc {

// Serializes a simulation result to JSON for downstream tooling
// (plotting the paper's figures, regression dashboards, ...). Includes
// the headline aggregates, per-phase stats, and — when
// `include_collection_log` — the full per-collection time series.
std::string SimResultToJson(const SimResult& result,
                            bool include_collection_log = true);

// Writes SimResultToJson(result) to `path`; false on I/O failure.
bool WriteResultJson(const SimResult& result, const std::string& path,
                     bool include_collection_log = true);

// Serializes a SweepRunner::RunWithStatus sweep: one entry per run (in
// submission order) carrying its seed, status, attempt count, and — for
// successful runs — the full per-run report; failed runs carry a typed
// error kind and message instead. `points` and `outcomes` must be
// parallel arrays.
std::string SweepReportToJson(const std::vector<SweepPoint>& points,
                              const std::vector<RunOutcome>& outcomes,
                              bool include_collection_log = false);

// Writes SweepReportToJson to `path`; false on I/O failure.
bool WriteSweepReportJson(const std::vector<SweepPoint>& points,
                          const std::vector<RunOutcome>& outcomes,
                          const std::string& path,
                          bool include_collection_log = false);

// Serializes the policy decision ledger as JSONL: one JSON object per
// line, oldest decision first, in the schema documented in
// docs/OBSERVABILITY.md. Deterministic: byte-identical for identical
// simulated executions.
std::string DecisionsToJsonl(const SimResult& result);

// Writes DecisionsToJsonl(result) to `path`; false on I/O failure.
bool WriteDecisionsJsonl(const SimResult& result, const std::string& path);

// Serializes the time-series sampler frames as JSONL, one frame per
// line, oldest first. Each frame carries the full metrics snapshot at
// that instant (counters/gauges/histograms).
std::string TimeSeriesToJsonl(const SimResult& result);

// Writes TimeSeriesToJsonl(result) to `path`; false on I/O failure.
bool WriteTimeSeriesJsonl(const SimResult& result, const std::string& path);

}  // namespace odbgc

#endif  // ODBGC_SIM_REPORT_H_
