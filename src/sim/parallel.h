#ifndef ODBGC_SIM_PARALLEL_H_
#define ODBGC_SIM_PARALLEL_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace_recorder.h"
#include "oo7/params.h"
#include "sim/config.h"
#include "sim/errors.h"
#include "sim/runner.h"
#include "trace/trace.h"
#include "util/thread_pool.h"

namespace odbgc {

// The parallel experiment engine. Every figure/ablation harness sweeps a
// grid of simulation configurations over a handful of trace seeds; the
// runs are independent, and most grid points replay the *same* OO7
// application trace. The pieces here exploit both facts:
//
//   ThreadPool   - fixed-size worker pool (util/thread_pool.h; moved
//                  there so gc/'s intra-run parallel collector can share
//                  it) with an indexed ParallelFor whose results land in
//                  submission order.
//   TraceCache   - immutable, shared traces keyed by (Oo7Params, seed):
//                  each trace is generated exactly once and handed out
//                  as shared_ptr<const Trace> with zero copies.
//   SweepRunner  - grid-of-(SimConfig x seed) driver over both, a
//                  drop-in replacement for serial RunOo7Once/RunOo7Many.
//
// Determinism guarantee: per-run RNGs are derived from the run's seed
// and runs never share mutable state, so a sweep's results — and any
// table printed from them in submission order — are byte-for-byte
// identical for every thread count, including 1.

// Thread-safe cache of generated OO7 application traces. The first
// requester of a (params, seed) key generates the trace; concurrent
// requesters of the same key block until it is ready. Entries are
// immutable and shared — callers must not mutate the returned trace.
//
// An optional byte budget bounds the cache's retained footprint: when
// the ready entries exceed it, the least-recently-requested ones are
// evicted (and regenerated on the next request for their key). Eviction
// only drops the cache's own reference — outstanding shared_ptrs keep
// an evicted trace alive, so readers are never invalidated.
class TraceCache {
 public:
  TraceCache() = default;
  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  // The full four-phase application for (params, seed), generated at
  // most once per *residency* of the key: a hit returns the shared
  // entry; a request for an evicted key regenerates it.
  std::shared_ptr<const Trace> GetOo7(const Oo7Params& params,
                                      uint64_t seed);

  // Retained-bytes budget (sum of event-array bytes of ready entries);
  // 0 (the default) retains everything forever. Shrinking the budget
  // evicts immediately. In-flight generations are never blocked by the
  // budget — a single over-budget trace is handed to its requesters and
  // then dropped from the cache.
  void set_byte_budget(size_t bytes);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  // Event-array bytes currently retained by ready entries.
  size_t retained_bytes() const;

  // Test hook: replaces the trace generator (GenerateOo7Trace). Lets
  // tests exercise the failed-generation retry path (a generator that
  // throws leaves no poisoned slot behind) without a real generation
  // failure. Not thread-safe against concurrent GetOo7 calls; install
  // before fanning work out.
  using Generator = std::function<std::shared_ptr<const Trace>(
      const Oo7Params&, uint64_t)>;
  void set_generator_for_test(Generator generator);

 private:
  // Every Oo7Params field plus the seed; params are plain counts, so
  // field-wise equality is exactly trace-identity.
  using Key = std::array<uint64_t, 10>;
  struct Slot {
    std::shared_ptr<const Trace> trace;
    bool ready = false;
    bool failed = false;
    size_t bytes = 0;         // event-array bytes once ready
    uint64_t last_use = 0;    // LRU stamp (use_clock_ at last request)
  };

  static Key MakeKey(const Oo7Params& params, uint64_t seed);
  // Evicts least-recently-used ready slots until the budget is met.
  // Caller holds mu_.
  void EnforceBudgetLocked();

  mutable std::mutex mu_;
  std::condition_variable slot_ready_;
  std::map<Key, std::shared_ptr<Slot>> slots_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t use_clock_ = 0;
  size_t byte_budget_ = 0;    // 0 = unbounded
  size_t retained_bytes_ = 0;
  Generator generator_;  // test override; null = GenerateOo7Trace
};

// Failure-isolation knobs for SweepRunner::RunWithStatus.
struct SweepOptions {
  // Attempts per run (>= 1). Only *transient* failures (SimError with
  // transient() == true, e.g. a missed deadline) are retried;
  // deterministic failures would fail identically again.
  int max_attempts = 1;
  // Sleep before the first retry; doubles per subsequent retry.
  double retry_backoff_ms = 0.0;
  // Per-run wall-clock watchdog: overrides SimConfig::deadline_ms for
  // every run when > 0 (0 keeps each config's own setting).
  double run_deadline_ms = 0.0;
  // Resumable sweeps: when checkpoint_prefix is non-empty and
  // checkpoint_every > 0, run i checkpoints to
  // "<prefix>.run<i>.ckpt" every checkpoint_every events, and an
  // interrupted sweep rerun with the same prefix resumes each run from
  // its last checkpoint instead of starting over (results stay
  // byte-identical to an uninterrupted sweep).
  std::string checkpoint_prefix;
  uint64_t checkpoint_every = 0;
};

// What happened to one sweep run.
struct RunStatus {
  bool failed = false;
  SimErrorKind error_kind = SimErrorKind::kGeneric;
  std::string message;   // empty unless failed
  int attempts = 1;      // attempts consumed (including the success)
  bool ok() const { return !failed; }
};

struct RunOutcome {
  SimResult result;  // meaningful only when status.ok()
  RunStatus status;
  // The failing attempt's exception (null when ok); lets callers that
  // want fail-fast semantics rethrow the original.
  std::exception_ptr exception;
};

// One grid point of a sweep: a simulation configuration applied to the
// OO7 application generated from (params, seed). Semantics mirror
// RunOo7Once exactly: the selector seed is derived from the trace seed
// (seed * 7919 + 17), decorrelated from the generator.
struct SweepPoint {
  SimConfig config;
  Oo7Params params;
  uint64_t seed = 1;
};

// Fans a grid of sweep points out across a thread pool, generating each
// distinct (params, seed) trace once. Results come back in submission
// order and are byte-identical to running RunOo7Once serially over the
// same points, for any thread count.
class SweepRunner {
 public:
  // threads <= 0 selects one thread per hardware core. Construction
  // validates the knob and throws SimInvalidConfig for unusable values
  // (absurdly large counts), so a bad flag fails before any threads
  // spawn; RunWithStatus likewise rejects unusable SweepOptions with
  // SimInvalidConfig before any run starts.
  explicit SweepRunner(int threads = 0);

  int threads() const { return pool_.size(); }
  ThreadPool& pool() { return pool_; }
  TraceCache& cache() { return cache_; }

  // Runs every point; results[i] corresponds to points[i]. Fail-fast:
  // if any run threw, the exception from the lowest-index failed run is
  // rethrown after the whole batch has drained (no retries). Kept for
  // harnesses where a failure should abort the figure.
  std::vector<SimResult> Run(const std::vector<SweepPoint>& points);

  // Failure-isolating variant: every run completes (or exhausts its
  // attempts) regardless of other runs' failures, and outcomes[i]
  // reports per-run status instead of throwing. Successful runs are
  // byte-identical to the same points under Run(), for any thread
  // count.
  std::vector<RunOutcome> RunWithStatus(const std::vector<SweepPoint>& points,
                                        const SweepOptions& options = {});

  // Cached-trace equivalent of RunOo7Once (identical result).
  SimResult RunOne(const SimConfig& config, const Oo7Params& params,
                   uint64_t seed);

  // Parallel equivalent of RunOo7Many (identical result): seeds
  // base_seed .. base_seed + num_runs - 1, aggregated in seed order.
  AggregateResult RunMany(const SimConfig& config, const Oo7Params& params,
                          uint64_t base_seed, int num_runs);

  // --- sweep profiling / progress (both off by default) ---
  //
  // Profiling records one wall-clock-timed recorder per worker (spans:
  // get_trace, run_simulation). It observes the sweep, never the runs:
  // SimResults remain byte-identical for any thread count; only the
  // profile's timestamps vary run to run (they are wall time by nature).
  void EnableTracing(size_t max_events_per_worker =
                         obs::TraceRecorder::kDefaultMaxEvents);
  bool tracing_enabled() const { return !recorders_.empty(); }
  // Merges the per-worker recorders into one Chrome trace (tid = worker
  // index). False if tracing was never enabled or the write failed.
  bool ExportTrace(const std::string& path) const;

  // Live "done/total runs" lines on `out` (stderr by convention) as
  // workers finish; null disables.
  void set_progress_stream(std::FILE* out) { progress_out_ = out; }

 private:
  // Wall microseconds since construction (profiling timebase).
  uint64_t NowMicros() const;
  obs::TraceRecorder* recorder_for_current_worker();

  ThreadPool pool_;
  TraceCache cache_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  // One recorder per worker plus one for the submitting thread (last
  // slot); empty unless EnableTracing was called.
  std::vector<std::unique_ptr<obs::TraceRecorder>> recorders_;
  std::FILE* progress_out_ = nullptr;
};

}  // namespace odbgc

#endif  // ODBGC_SIM_PARALLEL_H_
