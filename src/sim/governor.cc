#include "sim/governor.h"

#include "util/check.h"

namespace odbgc {

const char* PressureLevelName(PressureLevel level) {
  switch (level) {
    case PressureLevel::kNormal: return "normal";
    case PressureLevel::kYellow: return "yellow";
    case PressureLevel::kRed: return "red";
  }
  return "unknown";
}

PressureGovernor::PressureGovernor(const GovernorConfig& config)
    : config_(config) {
  ODBGC_CHECK_MSG(config_.yellow_frac > 0.0 &&
                      config_.yellow_frac <= config_.red_frac,
                  "governor watermarks must satisfy 0 < yellow <= red");
  ODBGC_CHECK_MSG(config_.hysteresis_frac >= 0.0,
                  "governor hysteresis must be non-negative");
  ODBGC_CHECK_MSG(config_.check_interval_events > 0,
                  "governor check interval must be positive");
  ODBGC_CHECK_MSG(config_.safe_mode_window >= 3,
                  "flip fraction needs a window of at least 3 intervals");
  ODBGC_CHECK_MSG(config_.safe_mode_fixed_interval > 0,
                  "safe-mode fixed interval must be positive");
}

PressureLevel PressureGovernor::ObserveUtilization(double utilization) {
  // Escalation is immediate (the store is filling now); de-escalation
  // steps down one level at a time and only once utilization has fallen
  // `hysteresis_frac` below the level's entry watermark, so oscillation
  // around a watermark holds the level rather than flapping it.
  switch (level_) {
    case PressureLevel::kNormal:
      if (utilization >= config_.red_frac) {
        level_ = PressureLevel::kRed;
      } else if (utilization >= config_.yellow_frac) {
        level_ = PressureLevel::kYellow;
      }
      break;
    case PressureLevel::kYellow:
      if (utilization >= config_.red_frac) {
        level_ = PressureLevel::kRed;
      } else if (utilization <
                 config_.yellow_frac - config_.hysteresis_frac) {
        level_ = PressureLevel::kNormal;
      }
      break;
    case PressureLevel::kRed:
      if (utilization < config_.red_frac - config_.hysteresis_frac) {
        level_ = PressureLevel::kYellow;
      }
      break;
  }
  return level_;
}

void PressureGovernor::ObserveIo(uint64_t app_io, uint64_t gc_io) {
  const uint64_t total = app_io + gc_io;
  const uint64_t d_total = total - last_total_io_;
  if (d_total > 0) {
    const uint64_t d_gc = gc_io - last_gc_io_;
    io_saturated_ = static_cast<double>(d_gc) /
                        static_cast<double>(d_total) >
                    config_.io_saturation_frac;
  }
  last_total_io_ = total;
  last_gc_io_ = gc_io;
}

void PressureGovernor::ObserveCollection(uint64_t overwrite_clock,
                                         bool divergence_valid,
                                         double divergence_frac) {
  if (have_last_collection_) {
    const uint64_t gap = overwrite_clock - last_collection_overwrites_;
    gaps_.push_back(gap);
    if (gaps_.size() > config_.safe_mode_window) {
      gaps_.erase(gaps_.begin());
    }
  }
  have_last_collection_ = true;
  last_collection_overwrites_ = overwrite_clock;

  const bool divergence_breach =
      divergence_valid && divergence_frac > config_.safe_mode_divergence_frac;
  divergence_breaches_ = divergence_breach ? divergence_breaches_ + 1 : 0;

  const bool oscillating =
      gaps_.size() >= config_.safe_mode_window &&
      FlipFraction() >= config_.safe_mode_flip_frac;
  if (divergence_breach || oscillating) {
    clean_streak_ = 0;
  } else {
    ++clean_streak_;
  }
}

double PressureGovernor::FlipFraction() const {
  if (gaps_.size() < 3) return 0.0;
  // Sign changes between consecutive deltas of the interval series: a
  // controller that alternately over- and under-shoots flips on nearly
  // every step; a converging one settles to a run of same-sign (or
  // zero) deltas.
  size_t flips = 0;
  int prev_sign = 0;
  for (size_t i = 1; i < gaps_.size(); ++i) {
    const int sign = gaps_[i] > gaps_[i - 1]   ? 1
                     : gaps_[i] < gaps_[i - 1] ? -1
                                               : 0;
    if (sign != 0 && prev_sign != 0 && sign != prev_sign) ++flips;
    if (sign != 0) prev_sign = sign;
  }
  return static_cast<double>(flips) /
         static_cast<double>(gaps_.size() - 2);
}

bool PressureGovernor::BoostDue(uint64_t overwrite_clock) const {
  if (level_ < PressureLevel::kYellow) return false;
  if (io_saturated_) return false;
  if (!forced_once_) return true;
  return overwrite_clock - last_forced_overwrites_ >=
         config_.boost_interval_overwrites;
}

void PressureGovernor::OnForcedCollection(uint64_t overwrite_clock) {
  forced_once_ = true;
  last_forced_overwrites_ = overwrite_clock;
}

bool PressureGovernor::ShouldEnterSafeMode() const {
  if (safe_mode_) return false;
  if (divergence_breaches_ >= config_.safe_mode_divergence_count) return true;
  return gaps_.size() >= config_.safe_mode_window &&
         FlipFraction() >= config_.safe_mode_flip_frac;
}

bool PressureGovernor::ShouldExitSafeMode() const {
  return safe_mode_ && clean_streak_ >= config_.safe_mode_exit_clean;
}

void PressureGovernor::EnterSafeMode() {
  ODBGC_CHECK(!safe_mode_);
  safe_mode_ = true;
  divergence_breaches_ = 0;
  clean_streak_ = 0;
  // The oscillation window belongs to the policy that oscillated; the
  // fallback starts with a fresh one so stale flips cannot block exit.
  gaps_.clear();
  have_last_collection_ = false;
}

void PressureGovernor::ExitSafeMode() {
  ODBGC_CHECK(safe_mode_);
  safe_mode_ = false;
  divergence_breaches_ = 0;
  clean_streak_ = 0;
  gaps_.clear();
  have_last_collection_ = false;
}

void PressureGovernor::SaveState(SnapshotWriter& w) const {
  w.Tag("GOV0");
  w.U8(static_cast<uint8_t>(level_));
  w.Bool(safe_mode_);
  w.Bool(io_saturated_);
  w.U64(last_total_io_);
  w.U64(last_gc_io_);
  w.U64(last_forced_overwrites_);
  w.Bool(forced_once_);
  w.U32(divergence_breaches_);
  w.U32(clean_streak_);
  w.Bool(have_last_collection_);
  w.U64(last_collection_overwrites_);
  w.VecU64(gaps_);
  w.Tag("GOVE");
}

void PressureGovernor::RestoreState(SnapshotReader& r) {
  r.Tag("GOV0");
  level_ = static_cast<PressureLevel>(r.U8());
  safe_mode_ = r.Bool();
  io_saturated_ = r.Bool();
  last_total_io_ = r.U64();
  last_gc_io_ = r.U64();
  last_forced_overwrites_ = r.U64();
  forced_once_ = r.Bool();
  divergence_breaches_ = r.U32();
  clean_streak_ = r.U32();
  have_last_collection_ = r.Bool();
  last_collection_overwrites_ = r.U64();
  gaps_ = r.VecU64();
  r.Tag("GOVE");
}

}  // namespace odbgc
