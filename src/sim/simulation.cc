#include "sim/simulation.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "core/alloc_triggered.h"
#include "core/coupled.h"
#include "core/fixed_rate.h"
#include "core/saio.h"
#include "core/saga.h"
#include "sim/checkpoint.h"
#include "sim/errors.h"
#include "storage/verifier.h"
#include "util/check.h"

namespace odbgc {

std::unique_ptr<RatePolicy> MakePolicy(const SimConfig& config,
                                       GarbageEstimator** estimator_hook) {
  *estimator_hook = nullptr;
  switch (config.policy) {
    case PolicyKind::kFixedRate:
      return std::make_unique<FixedRatePolicy>(config.fixed_rate_overwrites);
    case PolicyKind::kConnectivityHeuristic:
      return std::make_unique<ConnectivityHeuristicPolicy>(
          config.heuristic_connectivity, config.heuristic_object_bytes,
          config.store.partition_bytes);
    case PolicyKind::kSaio: {
      auto policy = std::make_unique<SaioPolicy>(
          config.saio_frac, config.saio_history,
          config.saio_bootstrap_app_io);
      policy->set_opportunism(config.saio_opportunism,
                              config.saio_min_idle_yield);
      return policy;
    }
    case PolicyKind::kSaga: {
      auto estimator =
          MakeEstimator(config.estimator, config.fgs_history_factor);
      *estimator_hook = estimator.get();
      return std::make_unique<SagaPolicy>(config.saga, std::move(estimator));
    }
    case PolicyKind::kCoupled: {
      auto estimator =
          MakeEstimator(config.estimator, config.fgs_history_factor);
      *estimator_hook = estimator.get();
      return std::make_unique<CoupledIoPolicy>(config.coupled,
                                               std::move(estimator));
    }
    case PolicyKind::kAllocationRate:
      return std::make_unique<AllocationRatePolicy>(
          config.allocation_rate_bytes);
    case PolicyKind::kAllocationTriggered:
      return std::make_unique<AllocationTriggeredPolicy>();
  }
  ODBGC_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

Simulation::Simulation(const SimConfig& config,
                       std::unique_ptr<RatePolicy> policy,
                       std::unique_ptr<PartitionSelector> selector,
                       GarbageEstimator* estimator)
    : config_(config),
      store_(std::make_unique<ObjectStore>(config.store)),
      policy_(std::move(policy)),
      selector_(std::move(selector)),
      estimator_(estimator) {
  ODBGC_CHECK(policy_ != nullptr && selector_ != nullptr);
  ConfigureCollector();
  InitTelemetry();
  InitGovernor();
}

namespace {

std::unique_ptr<RatePolicy> BuildPolicy(const SimConfig& config,
                                        GarbageEstimator** hook) {
  return MakePolicy(config, hook);
}

}  // namespace

Simulation::Simulation(const SimConfig& config)
    : config_(config), store_(std::make_unique<ObjectStore>(config.store)) {
  policy_ = BuildPolicy(config_, &estimator_);
  selector_ = MakeSelector(config_.selector, config_.selector_seed);
  ConfigureCollector();
  InitTelemetry();
  InitGovernor();
}

void Simulation::InitGovernor() {
  if (!config_.governor.enabled) return;
  governor_ = std::make_unique<PressureGovernor>(config_.governor);
  emergency_selector_ = std::make_unique<MostGarbageOracleSelector>();
}

void Simulation::InitTelemetry() {
#if ODBGC_TELEMETRY
  if (!config_.telemetry.any()) return;
  tel_ = std::make_unique<obs::Telemetry>(config_.telemetry);
  tel_garbage_pct_ = tel_->metrics().GetGauge("sim.garbage_pct");
  tel_est_garbage_pct_ =
      tel_->metrics().GetGauge("sim.estimator_garbage_pct");
  tel_est_err_ = tel_->metrics().GetHistogram("sim.estimator_error_pp_x100");
  tel_pages_scrubbed_ = tel_->metrics().GetCounter("storage.pages_scrubbed");
  tel_quarantined_ = tel_->metrics().GetCounter("gc.partitions_quarantined");
  tel_repaired_ = tel_->metrics().GetCounter("repair.partitions_repaired");
  tel_repair_pages_ = tel_->metrics().GetCounter("repair.pages_rewritten");
  tel_stall_gc_copy_ = tel_->metrics().GetHistogram("stall.gc_copy_io");
  tel_stall_scrub_ =
      tel_->metrics().GetHistogram("stall.scrub_read_through_io");
  tel_stall_repair_ =
      tel_->metrics().GetHistogram("stall.quarantine_repair_io");
  store_->buffer_pool().AttachTelemetry(tel_.get());
  collector_.AttachTelemetry(tel_.get());
  policy_->AttachTelemetry(tel_.get());
#endif
}

void Simulation::ConfigureCollector() {
  const FaultPlan& plan = config_.store.fault;
  collector_.set_commit_protocol(plan.commit_protocol);
  if (plan.crash_point != CrashPoint::kNone) {
    collector_.ScheduleCrash(plan.crash_point, plan.crash_at_collection);
  }
}

bool Simulation::HandleCrash(CollectionReport* report) {
  ++result_.crashes;
  RecoveryReport rec = collector_.Recover(*store_);
  ++result_.recoveries;
  result_.recovery_redo_updates += rec.redo_external_updates;
  if (rec.rolled_forward) {
    ++result_.recovery_rollforwards;
    *report = rec.completed;
  } else {
    ++result_.recovery_rollbacks;
  }
  if (config_.verify_after_recovery) RunVerifier("recovery");
  return rec.rolled_forward;
}

void Simulation::RunVerifier(const char* when) {
  ODBGC_TEL_SPAN(span, tel_.get(), "verifier", {{"after", when}});
  VerifierOptions opts;
  opts.check_reachability_agreement = config_.verify_reachability;
  VerifierReport vr = VerifyHeap(*store_, opts);
  ++result_.verifier_runs;
  ODBGC_CHECK_FMT(vr.ok(), "heap verifier after %s: %s", when,
                  vr.Summary().c_str());
}

void Simulation::DrainCorruption() {
  BufferPool& pool = store_->buffer_pool();
  if (pool.pending_corruption_count() == 0) return;
  for (const CorruptionEvent& ev : pool.TakeCorruptionEvents()) {
    if (ev.kind == CorruptionKind::kScrub) ++result_.scrub_detections;
    const PartitionId p = ev.page.partition;
    if (!store_->QuarantinePartition(p)) continue;  // already quarantined
    ++result_.partitions_quarantined;
    QuarantineEvent q;
    q.detected_event = clock_.events;
    q.partition = p;
    q.kind = static_cast<uint8_t>(ev.kind);
    result_.quarantine_log.push_back(q);
    ODBGC_IF_TEL(tel_.get()) {
      tel_quarantined_->Increment();
      tel_->Instant("quarantine",
                    {{"partition", p},
                     {"page", ev.page.page_index},
                     {"kind", CorruptionKindName(ev.kind)}});
    }
  }
}

void Simulation::RepairQuarantined() {
  std::vector<PartitionId> damaged;
  for (const Partition& p : store_->partitions()) {
    if (store_->IsQuarantined(p.id())) damaged.push_back(p.id());
  }
  if (damaged.empty()) return;
  ODBGC_TEL_SPAN(repair_span, tel_.get(), "repair",
                 {{"partitions", static_cast<uint64_t>(damaged.size())}});
  // Heal the media (in a real system: remap to spare blocks or restore
  // the extent from a replica) and rewrite every used page from the
  // authoritative object state — the slot arena survives page damage in
  // this simulator, exactly as a redundant copy would. The rewrites are
  // charged as collector I/O; they also clear any still-armed decay on
  // the rewritten pages.
  FaultInjector* injector = store_->mutable_fault_injector();
  BufferPool& pool = store_->buffer_pool();
  const uint32_t page_bytes = store_->config().page_bytes;
  for (PartitionId pid : damaged) {
    if (injector != nullptr) injector->HealPartition(pid);
    const Partition& part = store_->partition(pid);
    const uint32_t used_pages = static_cast<uint32_t>(
        (static_cast<uint64_t>(part.used()) + page_bytes - 1) / page_bytes);
    for (uint32_t pg = 0; pg < used_pages; ++pg) {
      pool.WriteThrough(PageId{pid, pg}, IoContext::kCollector);
    }
    result_.repair_pages_rewritten += used_pages;
    ODBGC_IF_TEL(tel_.get()) {
      tel_repair_pages_->Add(used_pages);
      tel_stall_repair_->Record(used_pages);
    }
  }
  // One pass rebuilds every partition's derived state (reverse index,
  // backrefs, cross-partition counters, free-space index) from the
  // primary slot arena; batching it across this tick's repairs keeps
  // the pass O(heap) regardless of how many partitions were damaged.
  store_->RebuildDerivedState();
  for (PartitionId pid : damaged) {
    store_->ReleasePartition(pid);
    ++result_.partitions_repaired;
    for (auto it = result_.quarantine_log.rbegin();
         it != result_.quarantine_log.rend(); ++it) {
      if (it->partition == pid && it->repaired_event == 0) {
        it->repaired_event = clock_.events;
        break;
      }
    }
    ODBGC_IF_TEL(tel_.get()) { tel_repaired_->Increment(); }
    if (config_.verify_after_repair) {
      VerifierReport vr = VerifyPartition(*store_, pid);
      ++result_.verifier_runs;
      ODBGC_CHECK_FMT(vr.ok(), "partition verifier after repair of %u: %s",
                      pid, vr.Summary().c_str());
    }
  }
}

void Simulation::SelfHealTick() {
  if (store_->partition_count() == 0) return;
  DrainCorruption();
  const uint32_t interval = config_.scrub_interval_events;
  const bool scrub_due =
      interval > 0 && clock_.events % interval == 0;
  if (scrub_due) {
    ScrubReport sr =
        scrubber_.ScrubQuantum(*store_, config_.scrub_pages_per_quantum);
    result_.pages_scrubbed += sr.pages_scrubbed;
    ODBGC_IF_TEL(tel_.get()) {
      tel_pages_scrubbed_->Add(sr.pages_scrubbed);
      if (sr.pages_scrubbed > 0) {
        tel_stall_scrub_->Record(sr.pages_scrubbed);
      }
    }
    DrainCorruption();
  }
  if (!config_.auto_repair) return;
  if (store_->quarantined_count() == 0) return;
  // With the scrubber on, repair rides its cadence so the quarantine
  // window is observable (selectors route around the partition in the
  // meantime); without it, repair synchronously.
  if (scrub_due || interval == 0) RepairQuarantined();
}

void Simulation::UpdateClock() {
  const IoStats& io = store_->io_stats();
  clock_.app_io = io.app_total();
  clock_.gc_io = io.gc_total();
  clock_.pointer_overwrites = store_->pointer_overwrites();
  // Quarantined partitions are out of service: their bytes do not feed
  // the policies' database-size view while repair owns them (exactly 0
  // unless something is quarantined right now).
  clock_.db_used_bytes =
      store_->used_bytes() - store_->quarantined_used_bytes();
  clock_.bytes_allocated = store_->allocated_bytes_total();
  clock_.partitions = store_->partition_count();
}

void Simulation::SampleGarbage() {
  uint64_t used = store_->used_bytes();
  if (used == 0) return;
  double pct = 100.0 * static_cast<double>(store_->actual_garbage_bytes()) /
               static_cast<double>(used);
  ODBGC_IF_TEL(tel_.get()) { tel_garbage_pct_->Set(pct); }
  whole_run_garbage_pct_.Add(pct);
  if (result_.window_opened) result_.garbage_pct.Add(pct);
  if (phase_open_) phase_accum_.garbage_pct.Add(pct);
}

void Simulation::OpenPhaseSegment(Phase phase) {
  phase_open_ = true;
  phase_accum_ = PhaseStats{};
  phase_accum_.phase = phase;
  phase_base_clock_ = clock_;
  phase_base_collections_ = result_.collections;
  phase_base_reclaimed_ = result_.total_reclaimed_bytes;
}

void Simulation::ClosePhaseSegment() {
  if (!phase_open_) return;
  phase_accum_.events = clock_.events - phase_base_clock_.events;
  phase_accum_.app_io = clock_.app_io - phase_base_clock_.app_io;
  phase_accum_.gc_io = clock_.gc_io - phase_base_clock_.gc_io;
  phase_accum_.pointer_overwrites =
      clock_.pointer_overwrites - phase_base_clock_.pointer_overwrites;
  phase_accum_.collections = result_.collections - phase_base_collections_;
  phase_accum_.bytes_reclaimed =
      result_.total_reclaimed_bytes - phase_base_reclaimed_;
  result_.phase_stats.push_back(phase_accum_);
  phase_open_ = false;
}

void Simulation::OpenWindowIfReady() {
  if (result_.window_opened) return;
  if (result_.collections < config_.preamble_collections) return;
  // A SAGA run aiming at a garbage level well above the cold-start state
  // spends its first collections ramping up; keep that ramp in the
  // preamble (up to the 30-collection bound the paper reports).
  if (config_.policy == PolicyKind::kSaga &&
      result_.collections < config_.preamble_max_collections) {
    double target_pct = 100.0 * config_.saga.garbage_frac;
    uint64_t used = store_->used_bytes();
    double actual_pct =
        used == 0 ? 0.0
                  : 100.0 *
                        static_cast<double>(store_->actual_garbage_bytes()) /
                        static_cast<double>(used);
    if (actual_pct < 0.9 * target_pct) return;
  }
  result_.window_opened = true;
  window_app_io_base_ = clock_.app_io;
  window_gc_io_base_ = clock_.gc_io;
  window_reclaimed_base_ = result_.total_reclaimed_bytes;
}

void Simulation::MaybeCollect() {
  if (store_->partition_count() == 0) return;
  if (!ActivePolicy()->ShouldCollect(clock_)) return;

  PartitionId pid = selector_->Select(*store_);
  // Every partition quarantined: nothing is collectable until repair
  // releases one; the policy gets another chance at the next event.
  if (pid == kInvalidPartition) return;
  uint64_t overwrites_at_selection = store_->partition(pid).overwrites();
  CollectionReport report = collector_.Collect(*store_, pid);
  if (report.aborted_corrupt) {
    // The from-space scan detected corruption and the collection backed
    // out before its commit point; the detection is pending and the next
    // SelfHealTick quarantines + repairs the partition. The aborted
    // scan's I/O stays in the store's counters (it really happened).
    ++result_.collections_aborted_corrupt;
    UpdateClock();
    return;
  }
  if (report.skipped_quarantine) return;
  if (report.crashed && !HandleCrash(&report)) {
    // Rolled back: no collection happened (its wasted I/O is still in the
    // store's counters); the policy gets another chance at the next event.
    UpdateClock();
    return;
  }
  if (config_.verify_after_collection) RunVerifier("collection");

  EstimatorCollectionInfo info;
  info.partition = pid;
  info.bytes_reclaimed = report.bytes_reclaimed;
  info.partition_overwrites = overwrites_at_selection;
  info.partition_count = store_->partition_count();
  info.ground_truth_garbage_bytes = store_->actual_garbage_bytes();
  if (estimator_ != nullptr) estimator_->OnCollection(info);
  for (GarbageEstimator* passive : passive_estimators_) {
    passive->OnCollection(info);
  }

  UpdateClock();
  ++clock_.collections;
  ++result_.collections;
  result_.total_reclaimed_bytes += report.bytes_reclaimed;
  result_.total_reclaimed_objects += report.objects_reclaimed;

  ODBGC_IF_TEL(tel_.get()) {
    // The collection's copy traffic is an app-visible stall regardless of
    // what the policy decides next.
    tel_stall_gc_copy_->Record(report.gc_io());
    if (obs::DecisionLedger* ledger = tel_->ledger()) {
      StageDecisionContext(*ledger, report, /*idle=*/false);
    }
  }

  ActivePolicy()->OnCollection(
      CollectionOutcome{report.gc_io(), report.bytes_reclaimed}, clock_);

  if (estimator_ != nullptr && store_->used_bytes() > 0) {
    const double used = static_cast<double>(store_->used_bytes());
    const double actual_pct =
        100.0 * static_cast<double>(store_->actual_garbage_bytes()) / used;
    const double est_pct = 100.0 * estimator_->Estimate() / used;
    last_estimate_valid_ = true;
    last_estimate_error_pp_ = est_pct - actual_pct;
    ODBGC_IF_TEL(tel_.get()) {
      // Histograms hold integers; store hundredths of a percentage point.
      tel_est_err_->Record(static_cast<uint64_t>(
          std::llround(std::abs(last_estimate_error_pp_) * 100.0)));
      tel_est_garbage_pct_->Set(est_pct);
    }
  }

  // Feed the governor's oscillation/divergence signals from the policy's
  // own collections only — governor-forced collections never count, or
  // the interventions would mask the instability they respond to.
  if (governor_ != nullptr) {
    const bool divergence_valid =
        estimator_ != nullptr && store_->used_bytes() > 0;
    const double divergence_frac =
        divergence_valid ? std::abs(last_estimate_error_pp_) / 100.0 : 0.0;
    governor_->ObserveCollection(clock_.pointer_overwrites, divergence_valid,
                                 divergence_frac);
  }

  if (config_.record_collection_log) {
    CollectionRecord rec;
    rec.index = result_.collections;
    rec.overwrite_time = clock_.pointer_overwrites;
    rec.app_io = clock_.app_io;
    rec.gc_io_delta = report.gc_io();
    rec.partition = pid;
    rec.bytes_reclaimed = report.bytes_reclaimed;
    rec.bytes_live = report.bytes_live;
    rec.db_used_bytes = store_->used_bytes();
    uint64_t used = store_->used_bytes();
    if (used > 0) {
      rec.actual_garbage_pct =
          100.0 * static_cast<double>(store_->actual_garbage_bytes()) /
          static_cast<double>(used);
      if (estimator_ != nullptr) {
        rec.estimated_garbage_pct = 100.0 * estimator_->Estimate() /
                                    static_cast<double>(used);
      }
    }
    if (auto* saga = dynamic_cast<SagaPolicy*>(policy_.get())) {
      rec.target_garbage_pct = 100.0 * saga->options().garbage_frac;
      rec.next_dt = saga->last_dt();
    }
    rec.phase = current_phase_;
    result_.log.push_back(rec);
  }

  OpenWindowIfReady();
}

void Simulation::StageDecisionContext(obs::DecisionLedger& ledger,
                                      const CollectionReport& report,
                                      bool idle) {
  obs::PolicyDecisionRecord ctx;
  ctx.tick = tel_->now();
  ctx.event = clock_.events;
  ctx.collection = idle ? 0 : result_.collections;
  ctx.app_io = clock_.app_io;
  ctx.gc_io = clock_.gc_io;
  const uint64_t total_io = clock_.total_io();
  if (total_io > 0) {
    ctx.io_pct = 100.0 * static_cast<double>(clock_.gc_io) /
                 static_cast<double>(total_io);
  }
  ctx.db_used_bytes = store_->used_bytes();
  ctx.actual_garbage_bytes = store_->actual_garbage_bytes();
  if (ctx.db_used_bytes > 0) {
    ctx.garbage_pct = 100.0 * static_cast<double>(ctx.actual_garbage_bytes) /
                      static_cast<double>(ctx.db_used_bytes);
  }
  // Estimator panel: the policy's own estimate plus the spread across
  // every attached estimator (policy + passives) — the disagreement
  // signal the paper's Section 4 accuracy discussion is about.
  bool have_any = false;
  double est_min = 0.0;
  double est_max = 0.0;
  auto fold = [&](double est) {
    if (est < 0.0) est = 0.0;
    if (!have_any) {
      est_min = est_max = est;
      have_any = true;
    } else {
      if (est < est_min) est_min = est;
      if (est > est_max) est_max = est;
    }
  };
  if (estimator_ != nullptr) {
    const double est = std::max(0.0, estimator_->Estimate());
    ctx.estimate_bytes = static_cast<uint64_t>(std::llround(est));
    fold(est);
  }
  for (GarbageEstimator* passive : passive_estimators_) {
    fold(passive->Estimate());
  }
  if (have_any) {
    ctx.estimator_spread_bytes =
        static_cast<uint64_t>(std::llround(est_max - est_min));
  }
  ctx.collection_gc_io = report.gc_io();
  ctx.bytes_reclaimed = report.bytes_reclaimed;
  ledger.SetContext(ctx);
}

void Simulation::TakeTimeSeriesSample(obs::TimeSeriesSampler& sampler) {
  sampler.Sample(clock_.events, tel_->now(), result_.collections,
                 tel_->metrics());
  tel_->Instant("timeseries_sample",
                {{"event", clock_.events}, {"frame", sampler.total() - 1}});
}

void Simulation::Apply(const TraceEvent& event) {
  // One logical-timebase tick per applied trace event (physical page
  // transfers add their own ticks inside the buffer pool).
  ODBGC_IF_TEL(tel_.get()) { tel_->Advance(); }
  switch (event.kind) {
    case EventKind::kCreate:
      store_->CreateObject(event.a, event.b, event.c, event.d);
      break;
    case EventKind::kRead:
      store_->ReadObject(event.a);
      break;
    case EventKind::kWriteRef: {
      PartitionId overwritten = store_->WriteRef(event.a, event.b, event.c);
      if (overwritten != kInvalidPartition) {
        if (estimator_ != nullptr) {
          estimator_->OnPointerOverwrite(overwritten);
        }
        for (GarbageEstimator* passive : passive_estimators_) {
          passive->OnPointerOverwrite(overwritten);
        }
      }
      break;
    }
    case EventKind::kAddRoot:
      store_->AddRoot(event.a);
      break;
    case EventKind::kRemoveRoot:
      store_->RemoveRoot(event.a);
      break;
    case EventKind::kGarbageMark:
      store_->RecordGarbageCreated(event.a, event.b);
      break;
    case EventKind::kPhaseMark:
      UpdateClock();
      ClosePhaseSegment();
      current_phase_ = static_cast<Phase>(event.a);
      result_.phases.push_back(PhaseTransition{current_phase_,
                                               result_.collections,
                                               clock_.events,
                                               clock_.pointer_overwrites});
      OpenPhaseSegment(current_phase_);
      ODBGC_IF_TEL(tel_.get()) {
        if (tel_phase_span_open_) tel_->End("phase");
        tel_->Begin("phase",
                    {{"name", PhaseName(current_phase_).c_str()}});
        tel_phase_span_open_ = true;
      }
      break;
    case EventKind::kIdleMark: {
      ODBGC_TEL_SPAN(idle_span, tel_.get(), "idle_period",
                     {{"max_collections", event.a}});
      RunIdlePeriod(event.a);
      break;
    }
    case EventKind::kUpdate:
      store_->UpdateObject(event.a);
      break;
  }
  ++clock_.events;
  UpdateClock();
  // The paper samples the garbage percentage at every database event
  // (Section 4.1); annotation events are not database events.
  if (event.kind == EventKind::kCreate || event.kind == EventKind::kRead ||
      event.kind == EventKind::kWriteRef ||
      event.kind == EventKind::kUpdate) {
    SampleGarbage();
  }
  MaybeCollect();
  SelfHealTick();
  if (governor_ != nullptr) GovernorTick();
  ODBGC_IF_TEL(tel_.get()) {
    if (obs::TimeSeriesSampler* sampler = tel_->sampler();
        sampler != nullptr && sampler->Due(clock_.events)) {
      TakeTimeSeriesSample(*sampler);
    }
  }
  // Offer the reporter a sample every 1024 events; it throttles on wall
  // time itself, so this only bounds how often we assemble a sample.
  if (progress_ != nullptr && (clock_.events & 1023u) == 0) {
    progress_->MaybeReport(MakeProgressSample());
  }
  // Whole-process crash injection: the event (and any collection it
  // triggered) is fully applied, then the "process dies". Raised after
  // the event so a checkpoint-every boundary at this event is never
  // written — resume replays from the previous checkpoint.
  const uint64_t crash_at = config_.store.fault.crash_at_event;
  if (crash_at != 0 && clock_.events == crash_at) {
    throw SimCrashInjected(crash_at);
  }
}

obs::ProgressSample Simulation::MakeProgressSample() const {
  obs::ProgressSample s;
  s.events = clock_.events;
  s.total_events = progress_total_events_;
  s.collections = result_.collections;
  s.app_io = clock_.app_io;
  s.gc_io = clock_.gc_io;
  s.has_estimate = last_estimate_valid_;
  s.estimate_error_pp = last_estimate_error_pp_;
  s.pages_scrubbed = result_.pages_scrubbed;
  s.scrub_cursor_partition = scrubber_.cursor_partition();
  s.quarantined_partitions = store_->quarantined_count();
  s.pending_corruption = store_->buffer_pool().pending_corruption_count();
  return s;
}

SimResult Simulation::Finish() {
  // End-of-run self-heal drain: quarantine any detection still pending
  // and repair outstanding quarantines so the run ends with a fully
  // healthy store (repair here is unconditional on the scrub cadence —
  // there are no more events for it to ride on).
  DrainCorruption();
  if (config_.auto_repair && store_->quarantined_count() > 0) {
    RepairQuarantined();
  }
  UpdateClock();
  ClosePhaseSegment();
  result_.clock = clock_;
  if (!result_.window_opened) {
    // The run ended before the preamble's collection count was reached
    // (e.g. a policy with a very coarse rate): fall back to whole-run
    // measurements rather than reporting nothing.
    window_app_io_base_ = 0;
    window_gc_io_base_ = 0;
    window_reclaimed_base_ = 0;
    result_.garbage_pct = whole_run_garbage_pct_;
  }
  result_.measured_app_io = clock_.app_io - window_app_io_base_;
  result_.measured_gc_io = clock_.gc_io - window_gc_io_base_;
  uint64_t total = result_.measured_app_io + result_.measured_gc_io;
  if (total > 0) {
    result_.achieved_gc_io_pct =
        100.0 * static_cast<double>(result_.measured_gc_io) /
        static_cast<double>(total);
  }
  result_.window_reclaimed_bytes =
      result_.total_reclaimed_bytes - window_reclaimed_base_;
  result_.final_db_used_bytes = store_->used_bytes();
  result_.final_actual_garbage_bytes = store_->actual_garbage_bytes();
  result_.final_partition_count = store_->partition_count();
  result_.buffer_hits = store_->buffer_pool().hits();
  result_.buffer_misses = store_->buffer_pool().misses();
  if (const DiskModel* disk = store_->disk_model()) {
    result_.disk_app_ms = disk->app_ms();
    result_.disk_gc_ms = disk->gc_ms();
    result_.disk_sequential_transfers = disk->sequential_transfers();
    result_.disk_random_transfers = disk->random_transfers();
  }
  if (auto* saga = dynamic_cast<SagaPolicy*>(policy_.get())) {
    result_.dt_min_clamps = saga->dt_min_clamps();
    result_.dt_max_clamps = saga->dt_max_clamps();
  }
  const IoStats& io = store_->io_stats();
  result_.io_retries = io.retries_total();
  result_.io_read_failures = io.read_failures;
  result_.io_write_failures = io.write_failures;
  result_.torn_writes = io.torn_writes;
  result_.torn_repairs = io.torn_repairs;
  result_.checksum_failures = io.checksum_failures;
  result_.bitflips_injected = io.bitflips;
  result_.decays_armed = io.decays_armed;
  result_.device_faults = io.device_faults;
  ODBGC_IF_TEL(tel_.get()) {
    if (tel_phase_span_open_) {
      tel_->End("phase");
      tel_phase_span_open_ = false;
    }
    result_.telemetry = tel_->Snapshot();
    if (const obs::DecisionLedger* ledger = tel_->ledger()) {
      result_.decisions = ledger->Records();
      result_.decisions_dropped = ledger->dropped();
    }
    if (const obs::TimeSeriesSampler* sampler = tel_->sampler()) {
      result_.timeseries = sampler->Frames();
      result_.timeseries_dropped = sampler->dropped();
    }
  }
  if (progress_ != nullptr) progress_->Finish(MakeProgressSample());
  return result_;
}

void Simulation::RunIdlePeriod(uint32_t max_collections) {
  // Quiescence (Section 5 extension): the workload has paused; offer the
  // policy up to max_collections free collections. They are accounted
  // separately and do not feed the policy's active-workload scheduling.
  if (store_->partition_count() == 0) return;
  for (uint32_t i = 0; i < max_collections; ++i) {
    UpdateClock();
    if (!ActivePolicy()->ShouldCollectWhenIdle(clock_)) break;
    PartitionId pid = selector_->Select(*store_);
    if (pid == kInvalidPartition) break;  // everything quarantined
    uint64_t overwrites_at_selection = store_->partition(pid).overwrites();
    CollectionReport report = collector_.Collect(*store_, pid);
    if (report.aborted_corrupt) {
      // Quarantine immediately (the idle loop re-selects within this
      // event, so the detection must take effect now or the same damaged
      // partition would be re-scanned until the iteration bound).
      ++result_.collections_aborted_corrupt;
      DrainCorruption();
      continue;
    }
    if (report.skipped_quarantine) continue;
    if (report.crashed && !HandleCrash(&report)) continue;
    if (config_.verify_after_collection) RunVerifier("collection");

    EstimatorCollectionInfo info;
    info.partition = pid;
    info.bytes_reclaimed = report.bytes_reclaimed;
    info.partition_overwrites = overwrites_at_selection;
    info.partition_count = store_->partition_count();
    info.ground_truth_garbage_bytes = store_->actual_garbage_bytes();
    if (estimator_ != nullptr) estimator_->OnCollection(info);
    for (GarbageEstimator* passive : passive_estimators_) {
      passive->OnCollection(info);
    }

    UpdateClock();
    ++result_.idle_collections;
    result_.idle_gc_io += report.gc_io();
    result_.total_reclaimed_bytes += report.bytes_reclaimed;
    result_.total_reclaimed_objects += report.objects_reclaimed;
    ODBGC_IF_TEL(tel_.get()) {
      if (obs::DecisionLedger* ledger = tel_->ledger()) {
        StageDecisionContext(*ledger, report, /*idle=*/true);
      }
    }
    ActivePolicy()->OnIdleCollection(
        CollectionOutcome{report.gc_io(), report.bytes_reclaimed}, clock_);
  }
}

void Simulation::GovernorTick() {
  const GovernorConfig& gov = config_.governor;
  if (clock_.events % gov.check_interval_events != 0) return;
  const double util = store_->utilization();
  const uint64_t util_x100 =
      static_cast<uint64_t>(std::llround(util * 10000.0));
  if (util_x100 > result_.peak_utilization_pct_x100) {
    result_.peak_utilization_pct_x100 = util_x100;
  }
  governor_->ObserveIo(clock_.app_io, clock_.gc_io);
  const PressureLevel before = governor_->level();
  const PressureLevel level = governor_->ObserveUtilization(util);
  if (level > before) {
    if (level == PressureLevel::kYellow) {
      ++result_.governor_yellow_entries;
    } else {
      ++result_.governor_red_entries;
    }
  }
  if (level == PressureLevel::kRed) {
    // Red: space is nearly gone. Collect the highest-garbage partitions
    // synchronously until the pressure breaks or the per-tick bound is
    // hit — regardless of I/O saturation, because exhausting capacity is
    // strictly worse than a stall.
    for (uint32_t i = 0; i < gov.emergency_max_collections; ++i) {
      if (store_->utilization() < gov.red_frac - gov.hysteresis_frac) break;
      if (!GovernorCollect(obs::DecisionReason::kEmergencyGc)) break;
      ++result_.governor_emergency_collections;
    }
    governor_->OnForcedCollection(clock_.pointer_overwrites);
    governor_->ObserveUtilization(store_->utilization());
  } else if (governor_->BoostDue(clock_.pointer_overwrites)) {
    // Yellow: one forced collection through the configured selector every
    // boost interval, on top of whatever the active policy schedules.
    // BoostDue holds off while the disk is GC-saturated — more GC I/O
    // would steal the bandwidth the backlog needs; backpressure (in the
    // multi-tenant engine) is the right lever there.
    if (GovernorCollect(obs::DecisionReason::kGovernorBoost)) {
      ++result_.governor_boost_collections;
    }
    governor_->OnForcedCollection(clock_.pointer_overwrites);
    governor_->ObserveUtilization(store_->utilization());
  }
  if (!safe_mode_ && governor_->ShouldEnterSafeMode()) {
    EnterSafeMode();
  } else if (safe_mode_ && governor_->ShouldExitSafeMode()) {
    ExitSafeMode();
  }
}

bool Simulation::GovernorCollect(obs::DecisionReason reason) {
  if (store_->partition_count() == 0) return false;
  PartitionSelector* sel = reason == obs::DecisionReason::kEmergencyGc
                               ? emergency_selector_.get()
                               : selector_.get();
  PartitionId pid = sel->Select(*store_);
  if (pid == kInvalidPartition) return false;  // everything quarantined
  uint64_t overwrites_at_selection = store_->partition(pid).overwrites();
  CollectionReport report = collector_.Collect(*store_, pid);
  if (report.aborted_corrupt) {
    // Quarantine now: the emergency loop re-selects within this tick, so
    // the detection must take effect immediately or the same damaged
    // partition would be re-scanned until the iteration bound.
    ++result_.collections_aborted_corrupt;
    DrainCorruption();
    UpdateClock();
    return false;
  }
  if (report.skipped_quarantine) return false;
  if (report.crashed && !HandleCrash(&report)) {
    UpdateClock();
    return false;
  }
  if (config_.verify_after_collection) RunVerifier("collection");

  EstimatorCollectionInfo info;
  info.partition = pid;
  info.bytes_reclaimed = report.bytes_reclaimed;
  info.partition_overwrites = overwrites_at_selection;
  info.partition_count = store_->partition_count();
  info.ground_truth_garbage_bytes = store_->actual_garbage_bytes();
  if (estimator_ != nullptr) estimator_->OnCollection(info);
  for (GarbageEstimator* passive : passive_estimators_) {
    passive->OnCollection(info);
  }

  UpdateClock();
  // Governor-forced collections are outside the policy's schedule: like
  // idle collections they skip OnCollection (the policy's own threshold
  // stays armed) and are accounted in the governor_* counters, not
  // result_.collections.
  result_.governor_gc_io += report.gc_io();
  result_.total_reclaimed_bytes += report.bytes_reclaimed;
  result_.total_reclaimed_objects += report.objects_reclaimed;
  ODBGC_IF_TEL(tel_.get()) { tel_stall_gc_copy_->Record(report.gc_io()); }
  LedgerGovernorRecord(reason, report, 100.0 * store_->utilization());
  return true;
}

void Simulation::EnterSafeMode() {
  safe_mode_ = true;
  ++result_.safe_mode_entries;
  governor_->EnterSafeMode();
  if (safe_policy_ == nullptr) {
    safe_policy_ = std::make_unique<FixedRatePolicy>(
        config_.governor.safe_mode_fixed_interval);
#if ODBGC_TELEMETRY
    if (tel_ != nullptr) safe_policy_->AttachTelemetry(tel_.get());
#endif
  }
  // FixedRatePolicy's threshold semantics make the first safe-mode
  // collection fire at the next event — exactly the right reflex when
  // the configured policy has just been judged untrustworthy.
  LedgerGovernorRecord(obs::DecisionReason::kSafeModeEnter,
                       CollectionReport{}, 100.0 * store_->utilization());
}

void Simulation::ExitSafeMode() {
  safe_mode_ = false;
  ++result_.safe_mode_exits;
  governor_->ExitSafeMode();
  LedgerGovernorRecord(obs::DecisionReason::kSafeModeExit,
                       CollectionReport{}, 100.0 * store_->utilization());
}

void Simulation::LedgerGovernorRecord(obs::DecisionReason reason,
                                      const CollectionReport& report,
                                      double target) {
  ODBGC_IF_TEL(tel_.get()) {
    obs::DecisionLedger* ledger = tel_->ledger();
    if (ledger == nullptr) return;
    StageDecisionContext(*ledger, report, /*idle=*/true);
    double interval = 0.0;
    if (reason == obs::DecisionReason::kGovernorBoost) {
      interval =
          static_cast<double>(config_.governor.boost_interval_overwrites);
    } else if (reason == obs::DecisionReason::kSafeModeEnter) {
      interval =
          static_cast<double>(config_.governor.safe_mode_fixed_interval);
    }
    ledger->Append("governor", reason, interval, 0, target);
  }
}

void Simulation::AddPassiveEstimator(GarbageEstimator* estimator) {
  ODBGC_CHECK(estimator != nullptr);
  passive_estimators_.push_back(estimator);
}

SimResult Simulation::Run(const Trace& trace) {
  return RunFrom(trace, std::string(), 0);
}

SimResult Simulation::RunFrom(const Trace& trace,
                              const std::string& checkpoint_path,
                              uint64_t checkpoint_every) {
  const std::vector<TraceEvent>& events = trace.events();
  ODBGC_CHECK_MSG(clock_.events <= events.size(),
                  "checkpoint lies beyond the end of this trace");
  progress_total_events_ = events.size();
  const bool take_checkpoints =
      !checkpoint_path.empty() && checkpoint_every > 0;
  const bool deadline_armed = config_.deadline_ms > 0.0;
  const auto started = std::chrono::steady_clock::now();
  for (size_t i = clock_.events; i < events.size(); ++i) {
    Apply(events[i]);
    if (take_checkpoints && clock_.events % checkpoint_every == 0) {
      CheckpointError err = WriteCheckpoint(*this, checkpoint_path);
      if (err != CheckpointError::kNone) {
        throw SimCheckpointWriteError(std::string(CheckpointErrorName(err)) +
                                      " (" + checkpoint_path + ")");
      }
    }
    if (deadline_armed && (clock_.events & 4095u) == 0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (elapsed_ms > config_.deadline_ms) {
        throw SimDeadlineExceeded(elapsed_ms, config_.deadline_ms);
      }
    }
  }
  return Finish();
}

SimResult RunSimulation(const SimConfig& config, const Trace& trace) {
  Simulation sim(config);
  return sim.Run(trace);
}

SimResult RunSimulation(const SimConfig& config,
                        const std::shared_ptr<const Trace>& trace) {
  ODBGC_CHECK(trace != nullptr);
  return RunSimulation(config, *trace);
}

}  // namespace odbgc
