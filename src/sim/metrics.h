#ifndef ODBGC_SIM_METRICS_H_
#define ODBGC_SIM_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/clock.h"
#include "obs/decision_ledger.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "storage/types.h"
#include "trace/event.h"
#include "util/stats.h"

namespace odbgc {

// One row of the per-collection time series (the raw material of the
// paper's Figures 6 and 7).
struct CollectionRecord {
  uint64_t index = 0;           // 1-based collection number
  uint64_t overwrite_time = 0;  // pointer-overwrite clock at collection
  uint64_t app_io = 0;          // cumulative application I/O
  uint64_t gc_io_delta = 0;     // this collection's I/O cost
  PartitionId partition = kInvalidPartition;
  uint64_t bytes_reclaimed = 0;  // collection yield
  uint64_t bytes_live = 0;
  uint64_t db_used_bytes = 0;
  double actual_garbage_pct = 0.0;     // ground truth, after collection
  double estimated_garbage_pct = 0.0;  // estimator view (SAGA only)
  double target_garbage_pct = 0.0;     // requested (SAGA only)
  uint64_t next_dt = 0;                // scheduled interval (SAGA only)
  Phase phase = Phase::kNone;
};

// One partition quarantine episode (self-healing): a corruption
// detection took the partition out of service, and repair (if any)
// returned it.
struct QuarantineEvent {
  uint64_t detected_event = 0;  // clock.events when quarantined
  PartitionId partition = kInvalidPartition;
  uint8_t kind = 0;             // CorruptionKind of the first detection
  uint64_t repaired_event = 0;  // clock.events at release; 0 = never
};

struct PhaseTransition {
  Phase phase = Phase::kNone;
  uint64_t at_collection = 0;  // collections completed when phase began
  uint64_t at_event = 0;
  uint64_t at_overwrite = 0;
};

// Per-application-phase breakdown of one run (whole run, no preamble
// exclusion — phases are about the application's behavior over time).
struct PhaseStats {
  Phase phase = Phase::kNone;
  uint64_t events = 0;
  uint64_t app_io = 0;
  uint64_t gc_io = 0;
  uint64_t pointer_overwrites = 0;
  uint64_t collections = 0;
  uint64_t bytes_reclaimed = 0;
  RunningStats garbage_pct;  // sampled at each event of the phase
};

// Everything one simulation run produces.
struct SimResult {
  SimClock clock;  // final counters
  uint64_t collections = 0;

  // Post-preamble measurement window (Section 3.2: means exclude the
  // cold-start preamble). If the run finishes before the preamble's
  // collection count is ever reached, the window falls back to the whole
  // run (window_opened stays false to flag it).
  bool window_opened = false;
  uint64_t measured_app_io = 0;
  uint64_t measured_gc_io = 0;
  double achieved_gc_io_pct = 0.0;  // 100 * gc / (gc + app), in window
  RunningStats garbage_pct;         // sampled at every event in window
  uint64_t window_reclaimed_bytes = 0;

  // Whole-run totals.
  uint64_t total_reclaimed_bytes = 0;
  uint64_t total_reclaimed_objects = 0;
  uint64_t final_db_used_bytes = 0;
  uint64_t final_actual_garbage_bytes = 0;
  size_t final_partition_count = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;

  // Simulated elapsed disk time (0 unless StoreConfig::enable_disk_timing).
  double disk_app_ms = 0.0;
  double disk_gc_ms = 0.0;
  uint64_t disk_sequential_transfers = 0;
  uint64_t disk_random_transfers = 0;

  // SAGA diagnostics.
  uint64_t dt_min_clamps = 0;
  uint64_t dt_max_clamps = 0;

  // Quiescence extension: collections run during kIdleMark periods
  // (beyond the user-stated limits) and their I/O cost.
  uint64_t idle_collections = 0;
  uint64_t idle_gc_io = 0;

  // Fault injection / crash recovery (zero unless a FaultPlan is set).
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t recovery_rollbacks = 0;
  uint64_t recovery_rollforwards = 0;
  uint64_t recovery_redo_updates = 0;
  uint64_t verifier_runs = 0;
  uint64_t io_retries = 0;
  uint64_t io_read_failures = 0;
  uint64_t io_write_failures = 0;
  uint64_t torn_writes = 0;
  uint64_t torn_repairs = 0;

  // Self-healing (zero unless the fault plan injects silent corruption
  // or the scrubber is enabled).
  uint64_t checksum_failures = 0;    // corrupt pages caught on read
  uint64_t bitflips_injected = 0;
  uint64_t decays_armed = 0;
  uint64_t device_faults = 0;        // reads/writes hitting dead media
  uint64_t pages_scrubbed = 0;
  uint64_t scrub_detections = 0;     // detections made by the scrubber
  uint64_t partitions_quarantined = 0;
  uint64_t partitions_repaired = 0;
  uint64_t repair_pages_rewritten = 0;
  uint64_t collections_aborted_corrupt = 0;
  std::vector<QuarantineEvent> quarantine_log;

  // Overload governor (zero unless SimConfig::governor.enabled and the
  // run actually came under pressure). Governor-forced collections are
  // accounted here, not in `collections` — like idle collections they
  // are outside the policy's schedule.
  uint64_t governor_yellow_entries = 0;
  uint64_t governor_red_entries = 0;
  uint64_t governor_boost_collections = 0;
  uint64_t governor_emergency_collections = 0;
  uint64_t governor_gc_io = 0;  // forced collections' copy traffic
  uint64_t safe_mode_entries = 0;
  uint64_t safe_mode_exits = 0;
  uint64_t peak_utilization_pct_x100 = 0;  // max observed, 100ths of a %

  std::vector<CollectionRecord> log;
  std::vector<PhaseTransition> phases;
  // One entry per kPhaseMark in trace order (phases may repeat).
  std::vector<PhaseStats> phase_stats;

  // Telemetry snapshot (empty unless SimConfig::telemetry.enabled).
  obs::TelemetrySnapshot telemetry;

  // Policy decision ledger (empty unless telemetry.record_decisions) and
  // periodic time-series frames (empty unless
  // telemetry.sample_interval_events > 0), oldest-first. The *_dropped
  // counters report how many older entries each bounded ring shed.
  std::vector<obs::PolicyDecisionRecord> decisions;
  uint64_t decisions_dropped = 0;
  std::vector<obs::TimeSeriesFrame> timeseries;
  uint64_t timeseries_dropped = 0;
};

// Derived per-collection series (Figure 7b's graphs).
std::vector<double> CollectionRateSeries(const SimResult& result);
std::vector<double> CollectionYieldSeries(const SimResult& result);

}  // namespace odbgc

#endif  // ODBGC_SIM_METRICS_H_
