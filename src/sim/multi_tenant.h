#ifndef ODBGC_SIM_MULTI_TENANT_H_
#define ODBGC_SIM_MULTI_TENANT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/decision_ledger.h"
#include "obs/metrics.h"
#include "sim/client_mux.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "trace/event_source.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace odbgc {

// Sharded multi-tenant scale-out: partitions the client fleet across
// independent shards — each with its own ObjectStore, BufferPool and
// RatePolicy — applies per-shard event batches on a thread pool, and
// rebalances a global GC I/O budget across the shard policies from
// observed garbage shares. See DESIGN.md ("Sharded multi-tenant
// scale-out") for the commit-order determinism argument and the
// cross-shard exchange protocol.
struct MultiTenantOptions {
  uint32_t num_shards = 4;
  // Apply-lane thread pool size (<= 0 selects the hardware default).
  // Output is byte-identical at any value: shards share no mutable
  // state during the parallel phase and everything order-sensitive
  // happens in the serial epoch barrier.
  int threads = 1;
  // Events drained from the mux per epoch — the serial commit grain.
  // Larger epochs amortize the barrier; smaller ones tighten the
  // remembered-set exchange lag (which is <= 1 epoch either way).
  uint32_t epoch_events = 4096;
  // Shared catalog: immortal directory objects per shard that remote
  // tenants may reference. 0 disables all cross-shard machinery.
  uint32_t catalog_per_shard = 4;
  uint32_t catalog_object_bytes = 512;
  // Probability that a null-target pointer write is redirected at a
  // random catalog object (the cross-shard reference generator). Only
  // null-target writes are rewritten: the old-target detach is a no-op
  // either way and catalog objects are immortal, so the clients'
  // kGarbageMark ground truth is untouched.
  double share_prob = 0.02;
  // Engine RNG seed (share draws, contention jitter) — independent of
  // every per-client and per-shard stream.
  uint64_t seed = 1;
  // Budget coordinator cadence in epochs; 0 disables it.
  uint32_t coordinator_period = 8;
  // Fleet-wide GC I/O budget: the mean per-shard io fraction the
  // coordinator redistributes, and the per-shard clamp range it may
  // grant any single tenant.
  double global_io_frac = 0.10;
  double min_shard_frac = 0.02;
  double max_shard_frac = 0.40;
  // Overload protection across the fleet (both default-off; the
  // backpressure gate reads shard pressure, so it needs
  // shard_config.governor.enabled to ever fire).
  //
  // Admission backpressure: while a shard sits at the red watermark, its
  // clients' turns are deferred at mux safe points — the fleet stops
  // feeding allocations to the tenant that is out of space. The valve
  // admits a client after admission_defer_limit consecutive deferrals,
  // because a shard only collects while events are applied: backpressure
  // throttles the backlog, it must never starve the GC out of existence.
  bool backpressure = false;
  uint32_t admission_defer_limit = 4;
  // Circuit breaker: a red-watermark or quarantine-heavy shard has its
  // GC I/O budget pinned to min_shard_frac until it has been healthy for
  // breaker_close_ticks consecutive coordinator ticks. The point is
  // fleet isolation, not space recovery — a sick shard's garbage share
  // would otherwise earn it an ever-larger slice of the global budget
  // while its collections abort against quarantined partitions; the
  // shard's own governor still runs emergency collections outside the
  // policy budget, so clamping never blocks the space path.
  bool breaker = false;
  double breaker_quarantine_frac = 0.5;  // quarantined/partitions to open
  uint32_t breaker_close_ticks = 2;
  // Template for every shard's Simulation; per-shard seeds are derived
  // from `seed` via ApplyRunSeeds so shard selectors decorrelate.
  SimConfig shard_config;
};

// Everything one multi-tenant run produces. Plain data; the bench and
// the determinism tests compare FleetChecksum() across thread counts.
struct MultiTenantReport {
  std::vector<SimResult> shards;

  uint64_t clients = 0;
  uint64_t events = 0;  // total events drained from the mux
  uint64_t epochs = 0;

  // Cross-shard remembered-set exchange.
  uint64_t xshard_writes = 0;     // writes redirected across shards
  uint64_t pins_granted = 0;      // +1 pin messages enqueued
  uint64_t pins_revoked = 0;      // -1 from slot overwrites
  uint64_t pins_reconciled = 0;   // -1 from dead source objects
  uint64_t exchange_batches = 0;  // non-empty per-shard buffers applied

  // Budget coordinator.
  uint64_t budget_grants = 0;
  uint64_t budget_revokes = 0;
  std::vector<obs::PolicyDecisionRecord> coordinator_decisions;

  // Overload protection (zero unless the options enable it and some
  // shard actually came under pressure).
  uint64_t admission_deferrals = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_closes = 0;

  // Contention model: seeded latch-queueing delay charged to shards
  // drawing more than twice the fair share of an epoch's cost.
  uint64_t contention_events = 0;
  uint64_t contention_delay_units = 0;

  // Deterministic modeled scale-out (see EXPERIMENTS.md): per-epoch
  // shard costs are LPT-packed onto L lanes for each fixed L below and
  // the makespans accumulated. modeled_units[i] is the fleet's modeled
  // apply time on kLanes[i] lanes — computed identically at any actual
  // --threads, so the scaling story is host- and thread-independent.
  static constexpr size_t kLaneCounts = 4;
  static constexpr uint32_t kLanes[kLaneCounts] = {1, 2, 4, 8};
  double modeled_units[kLaneCounts] = {0.0, 0.0, 0.0, 0.0};
  // Serial-units / L-lane-units; 0 when the run was empty.
  double ModeledSpeedup(size_t lane_index) const;

  // Fleet-wide app-visible GC stall distribution: every shard's
  // stall.gc_copy_io histogram merged (empty id when telemetry was off).
  obs::HistogramSnapshot stall_gc_copy;

  // FNV-1a over every order-sensitive counter above plus each shard's
  // final clock — the cross-thread byte-identity witness.
  uint64_t FleetChecksum() const;
};

// The sharded engine. Usage:
//
//   MultiTenantEngine engine(options);
//   engine.AddClient(std::make_unique<StreamingChurnSource>(...), mux_opts);
//   ...
//   MultiTenantReport report = engine.Run();
//
// Clients are assigned to shards round-robin (client index % num_shards)
// and their mux-global object ids are re-remapped into the owning
// shard's private id space at routing time, so each shard's store sees
// a dense id range it alone owns.
//
// Epoch loop (Run): serially apply the previous epoch's exchanged pin
// deltas shard-by-shard, serially drain up to epoch_events from the mux
// (routing each event to its shard and intercepting cross-shard
// writes), apply every shard's batch in parallel (disjoint state), then
// serially close the epoch: charge contention, accumulate the modeled
// lane schedule, reconcile dead remote sources, and run the budget
// coordinator. All randomness and all cross-shard decisions live in the
// serial sections, so the report is a pure function of (options,
// clients) at any thread count.
class MultiTenantEngine {
 public:
  explicit MultiTenantEngine(const MultiTenantOptions& options);

  MultiTenantEngine(const MultiTenantEngine&) = delete;
  MultiTenantEngine& operator=(const MultiTenantEngine&) = delete;

  // Registers a tenant; must precede Run(). Returns the client index.
  size_t AddClient(std::unique_ptr<EventSource> source,
                   const MuxClientOptions& mux_options);
  size_t AddClient(std::shared_ptr<const Trace> trace,
                   const MuxClientOptions& mux_options);

  // Drains every client to exhaustion and returns the fleet report.
  // Callable once.
  MultiTenantReport Run();

  const MultiTenantOptions& options() const { return options_; }
  size_t num_shards() const { return sims_.size(); }
  ClientMux& mux() { return mux_; }
  Simulation& shard(size_t s) { return *sims_[s]; }
  // Engine + mux + per-shard batch buffers (stores excluded; their size
  // tracks the live set, not the event count).
  size_t ApproxMemoryBytes() const;

 private:
  // A cross-shard remembered-set entry: (source shard, source local id,
  // slot) -> (target shard, target local id). std::map for deterministic
  // reconciliation order.
  using RefKey = std::tuple<uint32_t, uint32_t, uint32_t>;
  struct PinDelta {
    uint32_t id = 0;
    int32_t delta = 0;
  };

  void CreateCatalog();
  // Applies (and clears) every shard's pending pin-delta buffer, in
  // shard order.
  void ApplyExchange();
  // Routes one drained event to its shard, intercepting pointer writes
  // for the cross-shard reference model.
  void RouteEvent(TraceEvent e, uint32_t client);
  void EnqueuePinDelta(uint32_t shard, uint32_t id, int32_t delta);
  // Drops remembered-set entries whose source object died this epoch.
  void Reconcile();
  // Contention + modeled lanes + reconciliation + coordinator.
  void EndEpoch();
  void CoordinatorTick();
  // Circuit-breaker state machine for shard `s`; returns the budget the
  // coordinator may grant (min_shard_frac while the breaker is open).
  double BreakerClamp(size_t s, double budget);
  // Stages shard context and appends a breaker/admission ledger record.
  void LedgerShardEvent(size_t s, const char* who,
                        obs::DecisionReason reason, double target_frac);
  MultiTenantReport BuildReport();

  MultiTenantOptions options_;
  Rng rng_;
  ClientMux mux_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Simulation>> sims_;

  // Per-client routing state (index == mux client index).
  std::vector<uint32_t> client_shard_;
  std::vector<uint32_t> client_delta_;  // local_offset - global_offset

  // Per-shard local id allocation cursor (catalog ids come first).
  std::vector<uint32_t> shard_next_offset_;

  // Epoch state.
  std::vector<std::vector<TraceEvent>> epoch_batch_;
  std::vector<std::vector<PinDelta>> exchange_;
  std::vector<uint64_t> prev_io_;
  std::map<RefKey, std::pair<uint32_t, uint32_t>> remote_refs_;
  uint64_t epochs_ = 0;

  // Coordinator state.
  obs::DecisionLedger ledger_;
  std::vector<double> shard_budget_;

  // Circuit breaker / backpressure state.
  std::vector<uint8_t> breaker_open_;
  std::vector<uint32_t> breaker_clean_;     // consecutive healthy ticks
  std::vector<uint64_t> defer_ledger_epoch_;  // last epoch ledgered, 1-based

  // Counters mirrored into the report.
  uint64_t xshard_writes_ = 0;
  uint64_t pins_granted_ = 0;
  uint64_t pins_revoked_ = 0;
  uint64_t pins_reconciled_ = 0;
  uint64_t exchange_batches_ = 0;
  uint64_t budget_grants_ = 0;
  uint64_t budget_revokes_ = 0;
  uint64_t breaker_opens_ = 0;
  uint64_t breaker_closes_ = 0;
  uint64_t contention_events_ = 0;
  uint64_t contention_delay_ = 0;
  double modeled_units_[MultiTenantReport::kLaneCounts] = {0, 0, 0, 0};

  bool finished_ = false;
};

}  // namespace odbgc

#endif  // ODBGC_SIM_MULTI_TENANT_H_
