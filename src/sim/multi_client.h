#ifndef ODBGC_SIM_MULTI_CLIENT_H_
#define ODBGC_SIM_MULTI_CLIENT_H_

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace odbgc {

// Multi-client composition: several applications manipulating the same
// database. The paper's Section 1 motivates semi-automatic control
// precisely because a rate hand-tuned from one application's profile
// "may be in conflict with other applications manipulating the same
// database"; these helpers build that situation from per-client traces.

// Rewrites every object id in `trace` by adding `offset`, so traces
// generated independently (each numbering its objects from 1) can share
// one store without collisions. Clustering hints are remapped too;
// annotation events are untouched.
Trace RemapObjectIds(const Trace& trace, uint32_t offset);

// The largest object id referenced by the trace (0 if none).
uint32_t MaxObjectId(const Trace& trace);

// Interleaves the clients' traces into one stream against a shared
// database, remapping ids so the clients are disjoint. Events are drawn
// client by client in chunks of `chunk` events, round-robin, preserving
// each client's internal order (a simple model of time-sliced clients;
// the paper's setup serializes access — the database is locked during
// collection — so no finer concurrency model is needed). Exhausted
// clients drop out; the result carries every event of every client.
Trace InterleaveClients(const std::vector<Trace>& clients, uint32_t chunk);

}  // namespace odbgc

#endif  // ODBGC_SIM_MULTI_CLIENT_H_
