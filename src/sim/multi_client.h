#ifndef ODBGC_SIM_MULTI_CLIENT_H_
#define ODBGC_SIM_MULTI_CLIENT_H_

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace odbgc {

// Multi-client composition: several applications manipulating the same
// database. The paper's Section 1 motivates semi-automatic control
// precisely because a rate hand-tuned from one application's profile
// "may be in conflict with other applications manipulating the same
// database"; these helpers build that situation from per-client traces.
//
// This is the legacy materializing path (ext_multi_client): every
// client's whole trace is held in memory and merged into one new trace.
// The streaming equivalent for thousands of clients is sim/client_mux.h,
// which draws events lazily and applies the same id remapping
// arithmetic per event at draw time.

// Adds `offset` to every object id field of one event in place, by
// event kind (null ids and annotation events are untouched). The single
// shared definition of "which fields hold ids" — used by the trace-copy
// remap below and by ClientMux's draw-time remap.
void RemapEventIds(TraceEvent* e, uint32_t offset);

// Rewrites every object id in `trace` by adding `offset`, so traces
// generated independently (each numbering its objects from 1) can share
// one store without collisions. Clustering hints are remapped too;
// annotation events are untouched.
Trace RemapObjectIds(const Trace& trace, uint32_t offset);
// In-place overload: rewrites the owned trace without copying its event
// vector (the legacy interleaver feeds per-client copies through this).
Trace RemapObjectIds(Trace&& trace, uint32_t offset);

// The largest object id referenced by the trace (0 if none), in one
// pass over every id-bearing field including clustering hints.
uint32_t MaxObjectId(const Trace& trace);

// Interleaves the clients' traces into one stream against a shared
// database, remapping ids so the clients are disjoint. Events are drawn
// client by client in chunks of `chunk` events, round-robin, preserving
// each client's internal order (a simple model of time-sliced clients;
// the paper's setup serializes access — the database is locked during
// collection — so no finer concurrency model is needed). Exhausted
// clients drop out; the result carries every event of every client.
Trace InterleaveClients(const std::vector<Trace>& clients, uint32_t chunk);
// Move overload: consumes the client traces, remapping each in place
// (halves peak memory — no remapped copy alongside the originals).
Trace InterleaveClients(std::vector<Trace>&& clients, uint32_t chunk);

}  // namespace odbgc

#endif  // ODBGC_SIM_MULTI_CLIENT_H_
