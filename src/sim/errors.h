#ifndef ODBGC_SIM_ERRORS_H_
#define ODBGC_SIM_ERRORS_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace odbgc {

// Classifies the failures a single simulation run can raise, so that a
// sweep harness (sim/parallel.h) can report them structurally and decide
// whether retrying the run could possibly help.
enum class SimErrorKind : uint8_t {
  kGeneric = 0,
  // The run exceeded SimConfig::deadline_ms of wall-clock time. A rerun
  // on a less loaded machine may succeed, so this is transient.
  kDeadlineExceeded = 1,
  // FaultPlan::crash_at_event fired: the process "died" mid-trace. The
  // run must be resumed from its last checkpoint, not retried from
  // scratch with the same crash schedule (it would only crash again).
  kCrashInjected = 2,
  // A periodic checkpoint could not be written during the run.
  kCheckpointWrite = 3,
  // The caller handed the sweep harness an unusable configuration (e.g.
  // zero attempts, a negative backoff, an absurd thread count). Raised
  // at construction / call entry, before any run starts, so a bad knob
  // cannot abort a half-finished sweep.
  kInvalidConfig = 4,
  // An allocation needed a new partition but StoreConfig::max_db_bytes
  // was already fully committed. Deterministic: the same trace against
  // the same capacity exhausts at the same event, so never transient.
  kSpaceExhausted = 5,
};

const char* SimErrorKindName(SimErrorKind kind);

// Base class for recoverable simulation failures. `transient()` answers
// "could an identical retry plausibly succeed?" — true only for
// environment-dependent failures (deadlines), never for deterministic
// ones (an injected crash would fire again at the same event).
class SimError : public std::runtime_error {
 public:
  SimError(SimErrorKind kind, bool transient, const std::string& what)
      : std::runtime_error(what), kind_(kind), transient_(transient) {}

  SimErrorKind kind() const { return kind_; }
  bool transient() const { return transient_; }

 private:
  SimErrorKind kind_;
  bool transient_;
};

class SimDeadlineExceeded : public SimError {
 public:
  SimDeadlineExceeded(double elapsed_ms, double deadline_ms)
      : SimError(SimErrorKind::kDeadlineExceeded, /*transient=*/true,
                 "simulation exceeded its deadline (" +
                     std::to_string(elapsed_ms) + " ms elapsed, limit " +
                     std::to_string(deadline_ms) + " ms)"),
        elapsed_ms_(elapsed_ms),
        deadline_ms_(deadline_ms) {}

  double elapsed_ms() const { return elapsed_ms_; }
  double deadline_ms() const { return deadline_ms_; }

 private:
  double elapsed_ms_;
  double deadline_ms_;
};

class SimCrashInjected : public SimError {
 public:
  explicit SimCrashInjected(uint64_t at_event)
      : SimError(SimErrorKind::kCrashInjected, /*transient=*/false,
                 "injected crash after event " + std::to_string(at_event)),
        at_event_(at_event) {}

  uint64_t at_event() const { return at_event_; }

 private:
  uint64_t at_event_;
};

class SimCheckpointWriteError : public SimError {
 public:
  explicit SimCheckpointWriteError(const std::string& detail)
      : SimError(SimErrorKind::kCheckpointWrite, /*transient=*/false,
                 "checkpoint write failed: " + detail) {}
};

// A rejected harness configuration. Never transient: retrying with the
// same knobs would be rejected identically.
class SimInvalidConfig : public SimError {
 public:
  explicit SimInvalidConfig(const std::string& detail)
      : SimError(SimErrorKind::kInvalidConfig, /*transient=*/false,
                 "invalid sweep configuration: " + detail) {}
};

// The database hit its configured capacity: an allocation needed a new
// partition, no existing partition could hold the object, and growing
// would push the committed partition footprint past
// StoreConfig::max_db_bytes. Carries the accounting a caller needs to
// report how full the store was when it died.
class SpaceExhaustedError : public SimError {
 public:
  SpaceExhaustedError(uint64_t used_bytes, uint64_t committed_bytes,
                      uint64_t max_db_bytes)
      : SimError(SimErrorKind::kSpaceExhausted, /*transient=*/false,
                 "database capacity exhausted: " +
                     std::to_string(used_bytes) + " bytes live+garbage, " +
                     std::to_string(committed_bytes) +
                     " bytes committed to partitions, capacity " +
                     std::to_string(max_db_bytes) + " bytes"),
        used_bytes_(used_bytes),
        committed_bytes_(committed_bytes),
        max_db_bytes_(max_db_bytes) {}

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t committed_bytes() const { return committed_bytes_; }
  uint64_t max_db_bytes() const { return max_db_bytes_; }

 private:
  uint64_t used_bytes_;
  uint64_t committed_bytes_;
  uint64_t max_db_bytes_;
};

inline const char* SimErrorKindName(SimErrorKind kind) {
  switch (kind) {
    case SimErrorKind::kGeneric: return "generic";
    case SimErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case SimErrorKind::kCrashInjected: return "crash_injected";
    case SimErrorKind::kCheckpointWrite: return "checkpoint_write";
    case SimErrorKind::kInvalidConfig: return "invalid_config";
    case SimErrorKind::kSpaceExhausted: return "space_exhausted";
  }
  return "unknown";
}

}  // namespace odbgc

#endif  // ODBGC_SIM_ERRORS_H_
