#ifndef ODBGC_SIM_GOVERNOR_H_
#define ODBGC_SIM_GOVERNOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/snapshot.h"

namespace odbgc {

// Overload-protection knobs (SimConfig::governor). Default-disabled; an
// enabled governor with a store that never leaves the normal band is
// byte-identical to a disabled one (the governor only observes).
struct GovernorConfig {
  bool enabled = false;

  // Utilization watermarks: fraction of StoreConfig::max_db_bytes
  // occupied by live + uncollected-garbage bytes. Uncapped stores
  // (max_db_bytes == 0) report utilization 0, so only the safe-mode
  // machinery is live for them.
  double yellow_frac = 0.70;
  double red_frac = 0.85;
  // De-escalation hysteresis: a level is left only after utilization
  // drops this far below its entry watermark, so jitter around a
  // watermark cannot flap the state machine.
  double hysteresis_frac = 0.05;

  // Events between governor evaluations (pressure is a slow signal; the
  // tick keeps the steady-state cost at one modulo per event).
  uint32_t check_interval_events = 64;

  // Yellow actuator: rate boost — force a collection through the
  // configured selector every `boost_interval_overwrites` pointer
  // overwrites, on top of whatever the active policy schedules. Skipped
  // while the recent GC share of I/O exceeds `io_saturation_frac` (the
  // disk is already collection-bound; more GC I/O would only deepen
  // application stalls — red-level emergency collection ignores this,
  // space being existential).
  uint64_t boost_interval_overwrites = 128;
  double io_saturation_frac = 0.50;

  // Red actuator: per tick, synchronously collect up to this many of
  // the highest-garbage partitions (oracle selection) until utilization
  // falls back below red_frac - hysteresis_frac.
  uint32_t emergency_max_collections = 4;

  // Safe-mode triggers. Estimator/oracle divergence is measured per
  // policy-driven collection as |estimate - actual| / used_bytes; a
  // breach sustained for `safe_mode_divergence_count` consecutive
  // collections enters safe mode. Independently, the flip fraction of
  // the inter-collection interval series (the decision-ledger
  // oscillation signal, recomputed here so it works with telemetry off)
  // over the last `safe_mode_window` collections entering at
  // `safe_mode_flip_frac` means the controller is oscillating, not
  // converging.
  double safe_mode_divergence_frac = 0.25;
  uint32_t safe_mode_divergence_count = 3;
  double safe_mode_flip_frac = 0.75;
  uint32_t safe_mode_window = 8;
  // Hysteresis-gated re-entry: this many consecutive healthy
  // collections (no divergence breach, no oscillating window) before
  // control returns to the configured policy.
  uint32_t safe_mode_exit_clean = 16;
  // The conservative fixed-rate fallback: overwrites per collection
  // while safe mode holds.
  uint64_t safe_mode_fixed_interval = 64;
};

enum class PressureLevel : uint8_t { kNormal = 0, kYellow = 1, kRed = 2 };

const char* PressureLevelName(PressureLevel level);

// Deterministic overload state machine. The governor is pure state — it
// is fed utilization / I/O / per-collection signals from the
// simulation's serial sections and answers actuator queries; the
// simulation performs the actual interventions (forced collections,
// policy swap) so that all accounting stays in one place. Everything
// here is a function of the fed signals, so governor-driven runs stay
// byte-identical at any thread count and across checkpoint/resume (the
// full state round-trips through Save/RestoreState).
class PressureGovernor {
 public:
  explicit PressureGovernor(const GovernorConfig& config);

  // --- signal feeds ---

  // Per-tick utilization observation; applies the watermark/hysteresis
  // transition and returns the new level.
  PressureLevel ObserveUtilization(double utilization);
  // Per-tick I/O observation (cumulative counters); updates the
  // saturation flag from the share of GC I/O since the previous tick.
  void ObserveIo(uint64_t app_io, uint64_t gc_io);
  // Per-policy-collection feed: the overwrite clock (for the interval
  // oscillation window) and the estimator/oracle divergence as a
  // fraction of used bytes (divergence_valid is false for estimator-less
  // policies; such runs can only enter safe mode via the flip fraction).
  void ObserveCollection(uint64_t overwrite_clock, bool divergence_valid,
                         double divergence_frac);

  // --- actuator queries ---

  PressureLevel level() const { return level_; }
  bool safe_mode() const { return safe_mode_; }
  bool io_saturated() const { return io_saturated_; }

  // True when yellow(+) pressure holds, the boost interval has elapsed
  // since the last governor-forced collection, and the disk is not
  // already GC-saturated.
  bool BoostDue(uint64_t overwrite_clock) const;
  void OnForcedCollection(uint64_t overwrite_clock);

  // Safe-mode transition polls; the simulation performs the swap and
  // calls Enter/ExitSafeMode to commit it.
  bool ShouldEnterSafeMode() const;
  bool ShouldExitSafeMode() const;
  void EnterSafeMode();
  void ExitSafeMode();

  // Flip fraction of the current interval window (diagnostic; also the
  // safe-mode oscillation trigger). 0 until the window fills.
  double FlipFraction() const;

  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  GovernorConfig config_;

  PressureLevel level_ = PressureLevel::kNormal;
  bool safe_mode_ = false;
  bool io_saturated_ = false;
  uint64_t last_total_io_ = 0;
  uint64_t last_gc_io_ = 0;
  uint64_t last_forced_overwrites_ = 0;
  bool forced_once_ = false;

  // Safe-mode signal state.
  uint32_t divergence_breaches_ = 0;  // consecutive breaching collections
  uint32_t clean_streak_ = 0;         // consecutive healthy collections
  bool have_last_collection_ = false;
  uint64_t last_collection_overwrites_ = 0;
  std::vector<uint64_t> gaps_;  // bounded window of inter-collection gaps
};

}  // namespace odbgc

#endif  // ODBGC_SIM_GOVERNOR_H_
