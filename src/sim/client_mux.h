#ifndef ODBGC_SIM_CLIENT_MUX_H_
#define ODBGC_SIM_CLIENT_MUX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "trace/event_source.h"
#include "util/random.h"

namespace odbgc {

// Per-client scheduling knobs for the mux. All randomness comes from the
// client's own seeded RNG, drawn inside the mux's serial state machine,
// so the merged stream is a pure function of (clients, options, seeds).
struct MuxClientOptions {
  // Baseline events per turn (the legacy interleaver's `chunk`).
  uint32_t base_chunk = 64;
  // Turn length becomes base_chunk + uniform[0, chunk_jitter]; 0 draws
  // no randomness (keeps the stream bit-identical to the jitter-free
  // schedule).
  uint32_t chunk_jitter = 0;
  // After a turn the client thinks for uniform[0, think_time] rounds —
  // it skips that many of its round-robin slots; 0 draws no randomness.
  uint32_t think_time = 0;
  // Seed of the client's private scheduling RNG.
  uint64_t seed = 1;
};

// Streaming multi-client composition: merges events from per-client
// EventSources into one deterministic stream, drawing lazily — the
// replacement for the materialize-everything InterleaveClients at
// fleet scale. 10,000 clients x millions of events cost O(clients)
// memory: per client the mux holds a source cursor, an id offset, an
// RNG and a few counters.
//
// Semantics: deterministic round-robin in client-registration order.
// Each turn draws a chunk of events (base_chunk plus seeded jitter)
// from one client, extended past the chunk while the client's most
// recent allocation is still unlinked (the same safe-point rule as
// InterleaveClients: the store's newest-allocation pin protects exactly
// one in-flight object, so a client may not be preempted inside its
// create->link window). Think time makes a client sit out whole rounds.
// Exhausted clients drop out. Id remapping is an arithmetic offset per
// client applied at draw time (RemapEventIds), assigning each client
// the disjoint range [offset, offset + max_object_id] exactly as the
// legacy path did.
//
// The merged stream depends only on registration order and the options;
// it is byte-identical however the consumer batches its Next() calls.
// With zero jitter and zero think time it reproduces
// InterleaveClients(clients, chunk) event for event.
class ClientMux {
 public:
  ClientMux() = default;
  ClientMux(const ClientMux&) = delete;
  ClientMux& operator=(const ClientMux&) = delete;

  // Registers a client; draws come in registration order. Returns the
  // client's index. All registration must happen before the first
  // Next() call.
  size_t AddClient(std::unique_ptr<EventSource> source,
                   const MuxClientOptions& options);

  // Convenience: replay a (typically cache-shared) trace. Computes the
  // trace's max id once here; use the EventSource overload with a
  // precomputed TraceCursorSource to share that scan across clients.
  size_t AddClient(std::shared_ptr<const Trace> trace,
                   const MuxClientOptions& options);

  // Draws the next merged event. Returns false when every client is
  // exhausted. When `client` is non-null it receives the index of the
  // client that produced the event — the sharded engine routes on it
  // (annotation events carry no object id to route by).
  bool Next(TraceEvent* out, uint32_t* client = nullptr);

  // Admission backpressure. When a gate is installed, StartTurn consults
  // it at each turn boundary (the same safe points that bound create->
  // link windows): a gate returning true defers the client's whole turn
  // by one round instead of admitting it. A per-client valve admits
  // unconditionally after `defer_limit` consecutive deferrals, so
  // admission can never starve the collections that need events applied
  // to make progress. The gate MUST be a deterministic function of
  // (client, state updated only between Next() calls) — the merged
  // stream stays a pure function of registration order, options and the
  // gate's decisions, byte-identical across consumers and thread counts.
  // Passing a null gate uninstalls it. defer_limit == 0 disables the
  // valve — then the caller must guarantee the gate eventually admits,
  // or a universally-deferred fleet spins forever.
  using AdmissionGate = std::function<bool(uint32_t client)>;
  void SetAdmissionGate(AdmissionGate gate, uint32_t defer_limit);
  // Total turns deferred by the gate since construction.
  uint64_t admission_deferrals() const { return admission_deferrals_; }

  size_t clients() const { return clients_.size(); }
  size_t alive() const { return alive_; }
  uint64_t events_drawn() const { return events_drawn_; }
  // The id offset assigned to client `c` (its ids occupy
  // [offset + 1, offset + max_object_id]).
  uint32_t client_offset(size_t c) const { return clients_[c].offset; }
  // One past the largest id any registered client can emit.
  uint32_t id_limit() const { return next_offset_; }

  // Resident bytes of the mux itself plus every client's source state
  // (shared cached traces excluded; see EventSource::ApproxMemoryBytes).
  size_t ApproxMemoryBytes() const;

 private:
  struct Client {
    std::unique_ptr<EventSource> source;
    uint32_t offset = 0;
    Rng rng{1};
    MuxClientOptions options;
    uint64_t sleep_until_round = 0;
    uint32_t pending_unlinked = 0;  // remapped id of an unlinked create
    uint32_t defer_streak = 0;      // consecutive gate deferrals
    bool exhausted = false;
  };

  // Picks the next client with an eligible turn (round-robin from
  // cursor_, fast-forwarding rounds past universal think time). Returns
  // false when no client remains.
  bool StartTurn();
  void EndTurn();

  std::vector<Client> clients_;
  size_t alive_ = 0;
  uint64_t events_drawn_ = 0;
  uint32_t next_offset_ = 0;

  // Admission backpressure (null = admit everything).
  AdmissionGate gate_;
  uint32_t defer_limit_ = 0;
  uint64_t admission_deferrals_ = 0;

  // Turn state.
  bool turn_active_ = false;
  size_t current_ = 0;       // client owning the active turn
  uint32_t turn_budget_ = 0; // events left before the next safe point
  size_t cursor_ = 0;        // next client index to consider
  uint64_t round_ = 0;       // completed round-robin passes
};

}  // namespace odbgc

#endif  // ODBGC_SIM_CLIENT_MUX_H_
