#include "sim/report.h"

#include <cstdio>

#include "obs/build_info.h"
#include "storage/buffer_pool.h"
#include "util/json.h"

namespace odbgc {

namespace {

void WriteStats(JsonWriter& w, const RunningStats& s) {
  w.BeginObject();
  w.Key("count");
  w.Value(static_cast<uint64_t>(s.count()));
  w.Key("mean");
  w.Value(s.mean());
  w.Key("min");
  w.Value(s.min());
  w.Key("max");
  w.Value(s.max());
  w.Key("stddev");
  w.Value(s.stddev());
  w.EndObject();
}

void WriteSnapshot(JsonWriter& w, const obs::TelemetrySnapshot& snap) {
  w.Key("counters");
  w.BeginObject();
  for (const obs::CounterSnapshot& c : snap.counters) {
    w.Key(c.id);
    w.Value(c.value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const obs::GaugeSnapshot& g : snap.gauges) {
    w.Key(g.id);
    w.Value(g.value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    w.Key(h.id);
    w.BeginObject();
    w.Key("count");
    w.Value(h.count);
    w.Key("min");
    w.Value(h.min);
    w.Key("max");
    w.Value(h.max);
    w.Key("mean");
    w.Value(h.mean);
    w.Key("p50");
    w.Value(h.p50);
    w.Key("p95");
    w.Value(h.p95);
    w.Key("p99");
    w.Value(h.p99);
    w.EndObject();
  }
  w.EndObject();
}

// Maps the stall.* histogram ids onto the stall-cause taxonomy
// (docs/OBSERVABILITY.md). Order here is emission order.
struct StallCause {
  const char* histogram_id;
  const char* cause;
};
constexpr StallCause kStallCauses[] = {
    {"stall.gc_copy_io", "gc_copy"},
    {"stall.scrub_read_through_io", "scrub_read_through"},
    {"stall.quarantine_repair_io", "quarantine_repair"},
    {"stall.fault_retry_io", "fault_retry"},
};

}  // namespace

std::string SimResultToJson(const SimResult& result,
                            bool include_collection_log) {
  JsonWriter w;
  w.BeginObject();

  w.Key("events");
  w.Value(result.clock.events);
  w.Key("pointer_overwrites");
  w.Value(result.clock.pointer_overwrites);
  w.Key("app_io");
  w.Value(result.clock.app_io);
  w.Key("gc_io");
  w.Value(result.clock.gc_io);
  w.Key("collections");
  w.Value(result.collections);
  w.Key("idle_collections");
  w.Value(result.idle_collections);
  w.Key("idle_gc_io");
  w.Value(result.idle_gc_io);

  w.Key("window_opened");
  w.Value(result.window_opened);
  // Measurement-window context: a run that never reached the preamble's
  // collection count falls back to whole-run measurements; say so
  // explicitly instead of leaving window_opened=false to be guessed at.
  w.Key("measurement_window");
  w.BeginObject();
  w.Key("opened");
  w.Value(result.window_opened);
  w.Key("fallback_whole_run");
  w.Value(!result.window_opened);
  w.Key("app_io");
  w.Value(result.measured_app_io);
  w.Key("gc_io");
  w.Value(result.measured_gc_io);
  w.Key("reclaimed_bytes");
  w.Value(result.window_reclaimed_bytes);
  w.EndObject();
  w.Key("measured_app_io");
  w.Value(result.measured_app_io);
  w.Key("measured_gc_io");
  w.Value(result.measured_gc_io);
  w.Key("achieved_gc_io_pct");
  w.Value(result.achieved_gc_io_pct);
  w.Key("garbage_pct");
  WriteStats(w, result.garbage_pct);

  w.Key("total_reclaimed_bytes");
  w.Value(result.total_reclaimed_bytes);
  w.Key("total_reclaimed_objects");
  w.Value(result.total_reclaimed_objects);
  w.Key("final_db_used_bytes");
  w.Value(result.final_db_used_bytes);
  w.Key("final_actual_garbage_bytes");
  w.Value(result.final_actual_garbage_bytes);
  w.Key("final_partition_count");
  w.Value(static_cast<uint64_t>(result.final_partition_count));
  w.Key("buffer_hits");
  w.Value(result.buffer_hits);
  w.Key("buffer_misses");
  w.Value(result.buffer_misses);
  w.Key("dt_min_clamps");
  w.Value(result.dt_min_clamps);
  w.Key("dt_max_clamps");
  w.Value(result.dt_max_clamps);

  // Fault-injection / crash-recovery outcomes. Emitted whenever any of
  // them fired so fault-plan runs are self-describing; omitted for clean
  // runs to keep their reports lean.
  if (result.crashes > 0 || result.recoveries > 0 ||
      result.verifier_runs > 0 || result.io_retries > 0 ||
      result.io_read_failures > 0 || result.io_write_failures > 0 ||
      result.torn_writes > 0) {
    w.Key("faults");
    w.BeginObject();
    w.Key("crashes");
    w.Value(result.crashes);
    w.Key("recoveries");
    w.Value(result.recoveries);
    w.Key("recovery_rollbacks");
    w.Value(result.recovery_rollbacks);
    w.Key("recovery_rollforwards");
    w.Value(result.recovery_rollforwards);
    w.Key("recovery_redo_updates");
    w.Value(result.recovery_redo_updates);
    w.Key("verifier_runs");
    w.Value(result.verifier_runs);
    w.Key("io_retries");
    w.Value(result.io_retries);
    w.Key("io_read_failures");
    w.Value(result.io_read_failures);
    w.Key("io_write_failures");
    w.Value(result.io_write_failures);
    w.Key("torn_writes");
    w.Value(result.torn_writes);
    w.Key("torn_repairs");
    w.Value(result.torn_repairs);
    w.EndObject();
  }

  // Self-healing outcomes (checksums, scrub, quarantine, repair).
  // Emitted whenever the machinery did anything, same contract as
  // "faults" above.
  if (result.checksum_failures > 0 || result.device_faults > 0 ||
      result.bitflips_injected > 0 || result.decays_armed > 0 ||
      result.pages_scrubbed > 0 || result.partitions_quarantined > 0 ||
      result.collections_aborted_corrupt > 0) {
    w.Key("self_healing");
    w.BeginObject();
    w.Key("checksum_failures");
    w.Value(result.checksum_failures);
    w.Key("bitflips_injected");
    w.Value(result.bitflips_injected);
    w.Key("decays_armed");
    w.Value(result.decays_armed);
    w.Key("device_faults");
    w.Value(result.device_faults);
    w.Key("pages_scrubbed");
    w.Value(result.pages_scrubbed);
    w.Key("scrub_detections");
    w.Value(result.scrub_detections);
    w.Key("partitions_quarantined");
    w.Value(result.partitions_quarantined);
    w.Key("partitions_repaired");
    w.Value(result.partitions_repaired);
    w.Key("repair_pages_rewritten");
    w.Value(result.repair_pages_rewritten);
    w.Key("collections_aborted_corrupt");
    w.Value(result.collections_aborted_corrupt);
    w.Key("quarantine_log");
    w.BeginArray();
    for (const QuarantineEvent& q : result.quarantine_log) {
      w.BeginObject();
      w.Key("detected_event");
      w.Value(q.detected_event);
      w.Key("partition");
      w.Value(static_cast<uint64_t>(q.partition));
      w.Key("kind");
      w.Value(
          CorruptionKindName(static_cast<CorruptionKind>(q.kind)));
      w.Key("repaired_event");
      w.Value(q.repaired_event);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  // Overload governor outcomes. Emitted whenever the governor observed
  // any pressure or intervened, same contract as "faults" above.
  if (result.governor_yellow_entries > 0 || result.governor_red_entries > 0 ||
      result.governor_boost_collections > 0 ||
      result.governor_emergency_collections > 0 ||
      result.safe_mode_entries > 0 || result.safe_mode_exits > 0 ||
      result.peak_utilization_pct_x100 > 0) {
    w.Key("overload");
    w.BeginObject();
    w.Key("governor_yellow_entries");
    w.Value(result.governor_yellow_entries);
    w.Key("governor_red_entries");
    w.Value(result.governor_red_entries);
    w.Key("governor_boost_collections");
    w.Value(result.governor_boost_collections);
    w.Key("governor_emergency_collections");
    w.Value(result.governor_emergency_collections);
    w.Key("governor_gc_io");
    w.Value(result.governor_gc_io);
    w.Key("safe_mode_entries");
    w.Value(result.safe_mode_entries);
    w.Key("safe_mode_exits");
    w.Value(result.safe_mode_exits);
    w.Key("peak_utilization_pct");
    w.Value(static_cast<double>(result.peak_utilization_pct_x100) / 100.0);
    w.EndObject();
  }

  if (result.disk_app_ms > 0.0 || result.disk_gc_ms > 0.0) {
    w.Key("disk");
    w.BeginObject();
    w.Key("app_ms");
    w.Value(result.disk_app_ms);
    w.Key("gc_ms");
    w.Value(result.disk_gc_ms);
    w.Key("sequential_transfers");
    w.Value(result.disk_sequential_transfers);
    w.Key("random_transfers");
    w.Value(result.disk_random_transfers);
    w.EndObject();
  }

  w.Key("phases");
  w.BeginArray();
  for (const PhaseStats& p : result.phase_stats) {
    w.BeginObject();
    w.Key("phase");
    w.Value(PhaseName(p.phase));
    w.Key("events");
    w.Value(p.events);
    w.Key("app_io");
    w.Value(p.app_io);
    w.Key("gc_io");
    w.Value(p.gc_io);
    w.Key("pointer_overwrites");
    w.Value(p.pointer_overwrites);
    w.Key("collections");
    w.Value(p.collections);
    w.Key("bytes_reclaimed");
    w.Value(p.bytes_reclaimed);
    w.Key("garbage_pct");
    WriteStats(w, p.garbage_pct);
    w.EndObject();
  }
  w.EndArray();

  if (include_collection_log) {
    w.Key("collection_log");
    w.BeginArray();
    for (const CollectionRecord& r : result.log) {
      w.BeginObject();
      w.Key("index");
      w.Value(r.index);
      w.Key("phase");
      w.Value(PhaseName(r.phase));
      w.Key("overwrite_time");
      w.Value(r.overwrite_time);
      w.Key("app_io");
      w.Value(r.app_io);
      w.Key("gc_io_delta");
      w.Value(r.gc_io_delta);
      w.Key("partition");
      w.Value(static_cast<uint64_t>(r.partition));
      w.Key("bytes_reclaimed");
      w.Value(r.bytes_reclaimed);
      w.Key("bytes_live");
      w.Value(r.bytes_live);
      w.Key("db_used_bytes");
      w.Value(r.db_used_bytes);
      w.Key("actual_garbage_pct");
      w.Value(r.actual_garbage_pct);
      w.Key("estimated_garbage_pct");
      w.Value(r.estimated_garbage_pct);
      w.Key("target_garbage_pct");
      w.Value(r.target_garbage_pct);
      w.Key("next_dt");
      w.Value(r.next_dt);
      w.EndObject();
    }
    w.EndArray();
  }

  if (!result.telemetry.empty()) {
    w.Key("telemetry");
    w.BeginObject();
    WriteSnapshot(w, result.telemetry);
    w.EndObject();

    // Stall attribution: which subsystem's I/O the application stalled
    // behind, as per-cause log2 histograms. Emitted only when at least
    // one cause fired, same contract as "faults"/"self_healing".
    bool any_stall = false;
    for (const obs::HistogramSnapshot& h : result.telemetry.histograms) {
      for (const StallCause& cause : kStallCauses) {
        if (h.id == cause.histogram_id && h.count > 0) any_stall = true;
      }
    }
    if (any_stall) {
      w.Key("stall_attribution");
      w.BeginObject();
      for (const StallCause& cause : kStallCauses) {
        for (const obs::HistogramSnapshot& h : result.telemetry.histograms) {
          if (h.id != cause.histogram_id || h.count == 0) continue;
          w.Key(cause.cause);
          w.BeginObject();
          w.Key("count");
          w.Value(h.count);
          w.Key("mean");
          w.Value(h.mean);
          w.Key("p50");
          w.Value(h.p50);
          w.Key("p95");
          w.Value(h.p95);
          w.Key("p99");
          w.Value(h.p99);
          w.EndObject();
        }
      }
      w.EndObject();
    }
  }

  // Decision-ledger / time-series stream stats. The streams themselves
  // export as JSONL (DecisionsToJsonl / TimeSeriesToJsonl); the report
  // only says how much each stream captured and shed.
  if (!result.decisions.empty() || result.decisions_dropped > 0) {
    w.Key("decision_ledger");
    w.BeginObject();
    w.Key("records");
    w.Value(static_cast<uint64_t>(result.decisions.size()));
    w.Key("dropped");
    w.Value(result.decisions_dropped);
    w.EndObject();
  }
  if (!result.timeseries.empty() || result.timeseries_dropped > 0) {
    w.Key("timeseries");
    w.BeginObject();
    w.Key("frames");
    w.Value(static_cast<uint64_t>(result.timeseries.size()));
    w.Key("dropped");
    w.Value(result.timeseries_dropped);
    w.EndObject();
  }

  const obs::BuildInfo& build = obs::GetBuildInfo();
  w.Key("build_info");
  w.BeginObject();
  w.Key("git_sha");
  w.Value(build.git_sha);
  w.Key("git_dirty");
  w.Value(build.git_dirty);
  w.Key("build_type");
  w.Value(build.build_type);
  w.Key("telemetry");
  w.Value(build.telemetry);
  w.EndObject();

  w.EndObject();
  return w.TakeString();
}

bool WriteResultJson(const SimResult& result, const std::string& path,
                     bool include_collection_log) {
  std::string json = SimResultToJson(result, include_collection_log);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

std::string SweepReportToJson(const std::vector<SweepPoint>& points,
                              const std::vector<RunOutcome>& outcomes,
                              bool include_collection_log) {
  JsonWriter w;
  w.BeginObject();

  size_t ok_runs = 0;
  size_t failed_runs = 0;
  w.Key("runs");
  w.BeginArray();
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& out = outcomes[i];
    w.BeginObject();
    w.Key("index");
    w.Value(static_cast<uint64_t>(i));
    if (i < points.size()) {
      w.Key("seed");
      w.Value(points[i].seed);
    }
    w.Key("status");
    w.Value(out.status.ok() ? "ok" : "failed");
    w.Key("attempts");
    w.Value(static_cast<uint64_t>(out.status.attempts));
    if (out.status.ok()) {
      ++ok_runs;
      w.Key("report");
      w.RawValue(SimResultToJson(out.result, include_collection_log));
    } else {
      ++failed_runs;
      w.Key("error_kind");
      w.Value(SimErrorKindName(out.status.error_kind));
      w.Key("error");
      w.Value(out.status.message);
    }
    w.EndObject();
  }
  w.EndArray();

  w.Key("summary");
  w.BeginObject();
  w.Key("total");
  w.Value(static_cast<uint64_t>(outcomes.size()));
  w.Key("ok");
  w.Value(static_cast<uint64_t>(ok_runs));
  w.Key("failed");
  w.Value(static_cast<uint64_t>(failed_runs));
  w.EndObject();

  const obs::BuildInfo& build = obs::GetBuildInfo();
  w.Key("build_info");
  w.BeginObject();
  w.Key("git_sha");
  w.Value(build.git_sha);
  w.Key("git_dirty");
  w.Value(build.git_dirty);
  w.Key("build_type");
  w.Value(build.build_type);
  w.Key("telemetry");
  w.Value(build.telemetry);
  w.EndObject();

  w.EndObject();
  return w.TakeString();
}

bool WriteSweepReportJson(const std::vector<SweepPoint>& points,
                          const std::vector<RunOutcome>& outcomes,
                          const std::string& path,
                          bool include_collection_log) {
  std::string json =
      SweepReportToJson(points, outcomes, include_collection_log);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

std::string DecisionsToJsonl(const SimResult& result) {
  std::string out;
  for (const obs::PolicyDecisionRecord& d : result.decisions) {
    JsonWriter w;
    w.BeginObject();
    w.Key("seq");
    w.Value(d.seq);
    w.Key("tick");
    w.Value(d.tick);
    w.Key("event");
    w.Value(d.event);
    w.Key("collection");
    w.Value(d.collection);
    w.Key("policy");
    w.Value(d.policy);
    w.Key("reason");
    w.Value(obs::DecisionReasonName(d.reason));
    w.Key("chosen_interval");
    w.Value(d.chosen_interval);
    w.Key("next_threshold");
    w.Value(d.next_threshold);
    w.Key("target");
    w.Value(d.target);
    w.Key("io_pct");
    w.Value(d.io_pct);
    w.Key("garbage_pct");
    w.Value(d.garbage_pct);
    w.Key("app_io");
    w.Value(d.app_io);
    w.Key("gc_io");
    w.Value(d.gc_io);
    w.Key("actual_garbage_bytes");
    w.Value(d.actual_garbage_bytes);
    w.Key("estimate_bytes");
    w.Value(d.estimate_bytes);
    w.Key("estimator_spread_bytes");
    w.Value(d.estimator_spread_bytes);
    w.Key("db_used_bytes");
    w.Value(d.db_used_bytes);
    w.Key("collection_gc_io");
    w.Value(d.collection_gc_io);
    w.Key("bytes_reclaimed");
    w.Value(d.bytes_reclaimed);
    w.EndObject();
    out += w.TakeString();
    out += '\n';
  }
  return out;
}

bool WriteDecisionsJsonl(const SimResult& result, const std::string& path) {
  std::string jsonl = DecisionsToJsonl(result);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  return written == jsonl.size();
}

std::string TimeSeriesToJsonl(const SimResult& result) {
  std::string out;
  for (const obs::TimeSeriesFrame& frame : result.timeseries) {
    JsonWriter w;
    w.BeginObject();
    w.Key("seq");
    w.Value(frame.seq);
    w.Key("event");
    w.Value(frame.event);
    w.Key("tick");
    w.Value(frame.tick);
    w.Key("collections");
    w.Value(frame.collections);
    WriteSnapshot(w, frame.metrics);
    w.EndObject();
    out += w.TakeString();
    out += '\n';
  }
  return out;
}

bool WriteTimeSeriesJsonl(const SimResult& result, const std::string& path) {
  std::string jsonl = TimeSeriesToJsonl(result);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  return written == jsonl.size();
}

}  // namespace odbgc
