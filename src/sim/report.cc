#include "sim/report.h"

#include <cstdio>

#include "util/json.h"

namespace odbgc {

namespace {

void WriteStats(JsonWriter& w, const RunningStats& s) {
  w.BeginObject();
  w.Key("count");
  w.Value(static_cast<uint64_t>(s.count()));
  w.Key("mean");
  w.Value(s.mean());
  w.Key("min");
  w.Value(s.min());
  w.Key("max");
  w.Value(s.max());
  w.Key("stddev");
  w.Value(s.stddev());
  w.EndObject();
}

}  // namespace

std::string SimResultToJson(const SimResult& result,
                            bool include_collection_log) {
  JsonWriter w;
  w.BeginObject();

  w.Key("events");
  w.Value(result.clock.events);
  w.Key("pointer_overwrites");
  w.Value(result.clock.pointer_overwrites);
  w.Key("app_io");
  w.Value(result.clock.app_io);
  w.Key("gc_io");
  w.Value(result.clock.gc_io);
  w.Key("collections");
  w.Value(result.collections);
  w.Key("idle_collections");
  w.Value(result.idle_collections);
  w.Key("idle_gc_io");
  w.Value(result.idle_gc_io);

  w.Key("window_opened");
  w.Value(result.window_opened);
  w.Key("measured_app_io");
  w.Value(result.measured_app_io);
  w.Key("measured_gc_io");
  w.Value(result.measured_gc_io);
  w.Key("achieved_gc_io_pct");
  w.Value(result.achieved_gc_io_pct);
  w.Key("garbage_pct");
  WriteStats(w, result.garbage_pct);

  w.Key("total_reclaimed_bytes");
  w.Value(result.total_reclaimed_bytes);
  w.Key("total_reclaimed_objects");
  w.Value(result.total_reclaimed_objects);
  w.Key("final_db_used_bytes");
  w.Value(result.final_db_used_bytes);
  w.Key("final_actual_garbage_bytes");
  w.Value(result.final_actual_garbage_bytes);
  w.Key("final_partition_count");
  w.Value(static_cast<uint64_t>(result.final_partition_count));
  w.Key("buffer_hits");
  w.Value(result.buffer_hits);
  w.Key("buffer_misses");
  w.Value(result.buffer_misses);
  w.Key("dt_min_clamps");
  w.Value(result.dt_min_clamps);
  w.Key("dt_max_clamps");
  w.Value(result.dt_max_clamps);

  if (result.disk_app_ms > 0.0 || result.disk_gc_ms > 0.0) {
    w.Key("disk");
    w.BeginObject();
    w.Key("app_ms");
    w.Value(result.disk_app_ms);
    w.Key("gc_ms");
    w.Value(result.disk_gc_ms);
    w.Key("sequential_transfers");
    w.Value(result.disk_sequential_transfers);
    w.Key("random_transfers");
    w.Value(result.disk_random_transfers);
    w.EndObject();
  }

  w.Key("phases");
  w.BeginArray();
  for (const PhaseStats& p : result.phase_stats) {
    w.BeginObject();
    w.Key("phase");
    w.Value(PhaseName(p.phase));
    w.Key("events");
    w.Value(p.events);
    w.Key("app_io");
    w.Value(p.app_io);
    w.Key("gc_io");
    w.Value(p.gc_io);
    w.Key("pointer_overwrites");
    w.Value(p.pointer_overwrites);
    w.Key("collections");
    w.Value(p.collections);
    w.Key("bytes_reclaimed");
    w.Value(p.bytes_reclaimed);
    w.Key("garbage_pct");
    WriteStats(w, p.garbage_pct);
    w.EndObject();
  }
  w.EndArray();

  if (include_collection_log) {
    w.Key("collection_log");
    w.BeginArray();
    for (const CollectionRecord& r : result.log) {
      w.BeginObject();
      w.Key("index");
      w.Value(r.index);
      w.Key("phase");
      w.Value(PhaseName(r.phase));
      w.Key("overwrite_time");
      w.Value(r.overwrite_time);
      w.Key("app_io");
      w.Value(r.app_io);
      w.Key("gc_io_delta");
      w.Value(r.gc_io_delta);
      w.Key("partition");
      w.Value(static_cast<uint64_t>(r.partition));
      w.Key("bytes_reclaimed");
      w.Value(r.bytes_reclaimed);
      w.Key("bytes_live");
      w.Value(r.bytes_live);
      w.Key("db_used_bytes");
      w.Value(r.db_used_bytes);
      w.Key("actual_garbage_pct");
      w.Value(r.actual_garbage_pct);
      w.Key("estimated_garbage_pct");
      w.Value(r.estimated_garbage_pct);
      w.Key("target_garbage_pct");
      w.Value(r.target_garbage_pct);
      w.Key("next_dt");
      w.Value(r.next_dt);
      w.EndObject();
    }
    w.EndArray();
  }

  w.EndObject();
  return w.TakeString();
}

bool WriteResultJson(const SimResult& result, const std::string& path,
                     bool include_collection_log) {
  std::string json = SimResultToJson(result, include_collection_log);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace odbgc
