#include "sim/runner.h"

#include "oo7/generator.h"
#include "sim/simulation.h"

namespace odbgc {

SimResult RunOo7Once(const SimConfig& config, const Oo7Params& params,
                     uint64_t seed) {
  Oo7Generator generator(params, seed);
  Trace trace = generator.GenerateFullApplication();
  SimConfig cfg = config;
  cfg.selector_seed = seed * 7919 + 17;  // decorrelate from the generator
  return RunSimulation(cfg, trace);
}

AggregateResult RunOo7Many(const SimConfig& config, const Oo7Params& params,
                           uint64_t base_seed, int num_runs) {
  AggregateResult agg;
  std::vector<double> io_pct;
  std::vector<double> garb_pct;
  std::vector<double> colls;
  std::vector<double> total_io;
  for (int i = 0; i < num_runs; ++i) {
    SimResult r = RunOo7Once(config, params, base_seed + i);
    io_pct.push_back(r.achieved_gc_io_pct);
    garb_pct.push_back(r.garbage_pct.mean());
    colls.push_back(static_cast<double>(r.collections));
    total_io.push_back(static_cast<double>(r.clock.total_io()));
    agg.runs.push_back(std::move(r));
  }
  agg.achieved_io_pct = Summarize(io_pct);
  agg.mean_garbage_pct = Summarize(garb_pct);
  agg.collections = Summarize(colls);
  agg.total_io = Summarize(total_io);
  return agg;
}

}  // namespace odbgc
