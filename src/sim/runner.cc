#include "sim/runner.h"

#include <utility>

#include "oo7/generator.h"
#include "sim/parallel.h"
#include "sim/simulation.h"

namespace odbgc {

AggregateResult AggregateRuns(std::vector<SimResult> runs) {
  AggregateResult agg;
  std::vector<double> io_pct;
  std::vector<double> garb_pct;
  std::vector<double> colls;
  std::vector<double> total_io;
  for (SimResult& r : runs) {
    io_pct.push_back(r.achieved_gc_io_pct);
    garb_pct.push_back(r.garbage_pct.mean());
    colls.push_back(static_cast<double>(r.collections));
    total_io.push_back(static_cast<double>(r.clock.total_io()));
    agg.runs.push_back(std::move(r));
  }
  agg.achieved_io_pct = Summarize(io_pct);
  agg.mean_garbage_pct = Summarize(garb_pct);
  agg.collections = Summarize(colls);
  agg.total_io = Summarize(total_io);
  return agg;
}

std::shared_ptr<const Trace> GenerateOo7Trace(const Oo7Params& params,
                                              uint64_t seed) {
  Oo7Generator generator(params, seed);
  auto trace = std::make_shared<Trace>(generator.GenerateFullApplication());
  return trace;
}

void ApplyRunSeeds(SimConfig* config, uint64_t seed) {
  config->selector_seed = seed * 7919 + 17;  // decorrelate from the generator
  if (config->store.fault.io_faults_enabled()) {
    // SplitMix64 finalizer over (plan seed, run seed): well-mixed, cheap,
    // and independent of the selector stream.
    uint64_t z = config->store.fault.seed +
                 0x9e3779b97f4a7c15ull * (seed + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    config->store.fault.seed = z ^ (z >> 31);
  }
}

SimResult RunOo7WithTrace(const SimConfig& config, const Trace& trace,
                          uint64_t seed) {
  SimConfig cfg = config;
  ApplyRunSeeds(&cfg, seed);
  return RunSimulation(cfg, trace);
}

SimResult RunOo7Once(const SimConfig& config, const Oo7Params& params,
                     uint64_t seed) {
  std::shared_ptr<const Trace> trace = GenerateOo7Trace(params, seed);
  return RunOo7WithTrace(config, *trace, seed);
}

AggregateResult RunOo7Many(const SimConfig& config, const Oo7Params& params,
                           uint64_t base_seed, int num_runs, int threads) {
  if (threads == 1) {
    std::vector<SimResult> runs;
    runs.reserve(static_cast<size_t>(num_runs > 0 ? num_runs : 0));
    for (int i = 0; i < num_runs; ++i) {
      runs.push_back(RunOo7Once(config, params, base_seed + i));
    }
    return AggregateRuns(std::move(runs));
  }
  SweepRunner runner(threads);
  return runner.RunMany(config, params, base_seed, num_runs);
}

}  // namespace odbgc
