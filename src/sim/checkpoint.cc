#include "sim/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "core/fixed_rate.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"
#include "util/snapshot.h"

namespace odbgc {

namespace {

constexpr char kMagic[8] = {'O', 'D', 'B', 'G', 'C', 'K', 'P', 'T'};
constexpr size_t kHeaderSize = 48;
constexpr size_t kFooterSize = 8;

// ---------------------------------------------------------------------
// Simulation state serialization helpers.

void SaveClock(SnapshotWriter& w, const SimClock& c) {
  w.U64(c.app_io);
  w.U64(c.gc_io);
  w.U64(c.pointer_overwrites);
  w.U64(c.events);
  w.U64(c.collections);
  w.U64(c.db_used_bytes);
  w.U64(c.bytes_allocated);
  w.U64(c.partitions);
}

SimClock LoadClock(SnapshotReader& r) {
  SimClock c;
  c.app_io = r.U64();
  c.gc_io = r.U64();
  c.pointer_overwrites = r.U64();
  c.events = r.U64();
  c.collections = r.U64();
  c.db_used_bytes = r.U64();
  c.bytes_allocated = r.U64();
  c.partitions = r.U64();
  return c;
}

void SaveStats(SnapshotWriter& w, const RunningStats& s) {
  const RunningStats::Raw raw = s.raw();
  w.U64(raw.count);
  w.F64(raw.mean);
  w.F64(raw.m2);
  w.F64(raw.min);
  w.F64(raw.max);
}

RunningStats LoadStats(SnapshotReader& r) {
  RunningStats::Raw raw;
  raw.count = static_cast<size_t>(r.U64());
  raw.mean = r.F64();
  raw.m2 = r.F64();
  raw.min = r.F64();
  raw.max = r.F64();
  return RunningStats::FromRaw(raw);
}

Phase LoadPhase(SnapshotReader& r) {
  const uint8_t v = r.U8();
  if (v > static_cast<uint8_t>(Phase::kReorg2)) {
    r.MarkMalformed("bad phase value in snapshot");
    return Phase::kNone;
  }
  return static_cast<Phase>(v);
}

void SaveCollectionRecord(SnapshotWriter& w, const CollectionRecord& rec) {
  w.U64(rec.index);
  w.U64(rec.overwrite_time);
  w.U64(rec.app_io);
  w.U64(rec.gc_io_delta);
  w.U32(rec.partition);
  w.U64(rec.bytes_reclaimed);
  w.U64(rec.bytes_live);
  w.U64(rec.db_used_bytes);
  w.F64(rec.actual_garbage_pct);
  w.F64(rec.estimated_garbage_pct);
  w.F64(rec.target_garbage_pct);
  w.U64(rec.next_dt);
  w.U8(static_cast<uint8_t>(rec.phase));
}

CollectionRecord LoadCollectionRecord(SnapshotReader& r) {
  CollectionRecord rec;
  rec.index = r.U64();
  rec.overwrite_time = r.U64();
  rec.app_io = r.U64();
  rec.gc_io_delta = r.U64();
  rec.partition = r.U32();
  rec.bytes_reclaimed = r.U64();
  rec.bytes_live = r.U64();
  rec.db_used_bytes = r.U64();
  rec.actual_garbage_pct = r.F64();
  rec.estimated_garbage_pct = r.F64();
  rec.target_garbage_pct = r.F64();
  rec.next_dt = r.U64();
  rec.phase = LoadPhase(r);
  return rec;
}

void SavePhaseStats(SnapshotWriter& w, const PhaseStats& p) {
  w.U8(static_cast<uint8_t>(p.phase));
  w.U64(p.events);
  w.U64(p.app_io);
  w.U64(p.gc_io);
  w.U64(p.pointer_overwrites);
  w.U64(p.collections);
  w.U64(p.bytes_reclaimed);
  SaveStats(w, p.garbage_pct);
}

PhaseStats LoadPhaseStats(SnapshotReader& r) {
  PhaseStats p;
  p.phase = LoadPhase(r);
  p.events = r.U64();
  p.app_io = r.U64();
  p.gc_io = r.U64();
  p.pointer_overwrites = r.U64();
  p.collections = r.U64();
  p.bytes_reclaimed = r.U64();
  p.garbage_pct = LoadStats(r);
  return p;
}

// Everything in SimResult except the telemetry snapshot, which is not
// checkpointed (see Simulation::SaveState's contract).
void SaveResult(SnapshotWriter& w, const SimResult& res) {
  w.Tag("RSLT");
  SaveClock(w, res.clock);
  w.U64(res.collections);
  w.Bool(res.window_opened);
  w.U64(res.measured_app_io);
  w.U64(res.measured_gc_io);
  w.F64(res.achieved_gc_io_pct);
  SaveStats(w, res.garbage_pct);
  w.U64(res.window_reclaimed_bytes);
  w.U64(res.total_reclaimed_bytes);
  w.U64(res.total_reclaimed_objects);
  w.U64(res.final_db_used_bytes);
  w.U64(res.final_actual_garbage_bytes);
  w.U64(res.final_partition_count);
  w.U64(res.buffer_hits);
  w.U64(res.buffer_misses);
  w.F64(res.disk_app_ms);
  w.F64(res.disk_gc_ms);
  w.U64(res.disk_sequential_transfers);
  w.U64(res.disk_random_transfers);
  w.U64(res.dt_min_clamps);
  w.U64(res.dt_max_clamps);
  w.U64(res.idle_collections);
  w.U64(res.idle_gc_io);
  w.U64(res.crashes);
  w.U64(res.recoveries);
  w.U64(res.recovery_rollbacks);
  w.U64(res.recovery_rollforwards);
  w.U64(res.recovery_redo_updates);
  w.U64(res.verifier_runs);
  w.U64(res.io_retries);
  w.U64(res.io_read_failures);
  w.U64(res.io_write_failures);
  w.U64(res.torn_writes);
  w.U64(res.torn_repairs);
  w.U64(res.checksum_failures);
  w.U64(res.bitflips_injected);
  w.U64(res.decays_armed);
  w.U64(res.device_faults);
  w.U64(res.pages_scrubbed);
  w.U64(res.scrub_detections);
  w.U64(res.partitions_quarantined);
  w.U64(res.partitions_repaired);
  w.U64(res.repair_pages_rewritten);
  w.U64(res.collections_aborted_corrupt);
  w.U64(res.governor_yellow_entries);
  w.U64(res.governor_red_entries);
  w.U64(res.governor_boost_collections);
  w.U64(res.governor_emergency_collections);
  w.U64(res.governor_gc_io);
  w.U64(res.safe_mode_entries);
  w.U64(res.safe_mode_exits);
  w.U64(res.peak_utilization_pct_x100);
  w.U64(res.quarantine_log.size());
  for (const QuarantineEvent& q : res.quarantine_log) {
    w.U64(q.detected_event);
    w.U32(q.partition);
    w.U8(q.kind);
    w.U64(q.repaired_event);
  }
  w.U64(res.log.size());
  for (const CollectionRecord& rec : res.log) SaveCollectionRecord(w, rec);
  w.U64(res.phases.size());
  for (const PhaseTransition& t : res.phases) {
    w.U8(static_cast<uint8_t>(t.phase));
    w.U64(t.at_collection);
    w.U64(t.at_event);
    w.U64(t.at_overwrite);
  }
  w.U64(res.phase_stats.size());
  for (const PhaseStats& p : res.phase_stats) SavePhaseStats(w, p);
}

void LoadResult(SnapshotReader& r, SimResult* res) {
  r.Tag("RSLT");
  res->clock = LoadClock(r);
  res->collections = r.U64();
  res->window_opened = r.Bool();
  res->measured_app_io = r.U64();
  res->measured_gc_io = r.U64();
  res->achieved_gc_io_pct = r.F64();
  res->garbage_pct = LoadStats(r);
  res->window_reclaimed_bytes = r.U64();
  res->total_reclaimed_bytes = r.U64();
  res->total_reclaimed_objects = r.U64();
  res->final_db_used_bytes = r.U64();
  res->final_actual_garbage_bytes = r.U64();
  res->final_partition_count = static_cast<size_t>(r.U64());
  res->buffer_hits = r.U64();
  res->buffer_misses = r.U64();
  res->disk_app_ms = r.F64();
  res->disk_gc_ms = r.F64();
  res->disk_sequential_transfers = r.U64();
  res->disk_random_transfers = r.U64();
  res->dt_min_clamps = r.U64();
  res->dt_max_clamps = r.U64();
  res->idle_collections = r.U64();
  res->idle_gc_io = r.U64();
  res->crashes = r.U64();
  res->recoveries = r.U64();
  res->recovery_rollbacks = r.U64();
  res->recovery_rollforwards = r.U64();
  res->recovery_redo_updates = r.U64();
  res->verifier_runs = r.U64();
  res->io_retries = r.U64();
  res->io_read_failures = r.U64();
  res->io_write_failures = r.U64();
  res->torn_writes = r.U64();
  res->torn_repairs = r.U64();
  res->checksum_failures = r.U64();
  res->bitflips_injected = r.U64();
  res->decays_armed = r.U64();
  res->device_faults = r.U64();
  res->pages_scrubbed = r.U64();
  res->scrub_detections = r.U64();
  res->partitions_quarantined = r.U64();
  res->partitions_repaired = r.U64();
  res->repair_pages_rewritten = r.U64();
  res->collections_aborted_corrupt = r.U64();
  res->governor_yellow_entries = r.U64();
  res->governor_red_entries = r.U64();
  res->governor_boost_collections = r.U64();
  res->governor_emergency_collections = r.U64();
  res->governor_gc_io = r.U64();
  res->safe_mode_entries = r.U64();
  res->safe_mode_exits = r.U64();
  res->peak_utilization_pct_x100 = r.U64();
  const uint64_t quarantine_count = r.U64();
  res->quarantine_log.clear();
  for (uint64_t i = 0; i < quarantine_count && r.ok(); ++i) {
    QuarantineEvent q;
    q.detected_event = r.U64();
    q.partition = r.U32();
    q.kind = r.U8();
    q.repaired_event = r.U64();
    res->quarantine_log.push_back(q);
  }
  const uint64_t log_count = r.U64();
  res->log.clear();
  for (uint64_t i = 0; i < log_count && r.ok(); ++i) {
    res->log.push_back(LoadCollectionRecord(r));
  }
  const uint64_t phase_count = r.U64();
  res->phases.clear();
  for (uint64_t i = 0; i < phase_count && r.ok(); ++i) {
    PhaseTransition t;
    t.phase = LoadPhase(r);
    t.at_collection = r.U64();
    t.at_event = r.U64();
    t.at_overwrite = r.U64();
    res->phases.push_back(t);
  }
  const uint64_t stats_count = r.U64();
  res->phase_stats.clear();
  for (uint64_t i = 0; i < stats_count && r.ok(); ++i) {
    res->phase_stats.push_back(LoadPhaseStats(r));
  }
}

// ---------------------------------------------------------------------
// File-level helpers.

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

CheckpointError WriteFileAtomic(const std::string& path,
                                const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return CheckpointError::kOpenFailed;
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (std::fflush(f) != 0) ok = false;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return CheckpointError::kWriteFailed;
  }
  // Keep the previous image as the fallback; on the first checkpoint
  // there is nothing to roll, so a failed rename here is not an error.
  std::rename(path.c_str(), (path + ".prev").c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return CheckpointError::kWriteFailed;
  }
  return CheckpointError::kNone;
}

// Parses and validates one checkpoint file; on success fills *out with a
// restored simulation.
CheckpointError LoadCheckpointFile(const SimConfig& config,
                                   const std::string& path,
                                   std::unique_ptr<Simulation>* out,
                                   uint64_t* events_applied) {
  std::string bytes;
  if (!ReadWholeFile(path, &bytes)) return CheckpointError::kOpenFailed;
  if (bytes.size() < kHeaderSize + kFooterSize) {
    return CheckpointError::kTruncated;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return CheckpointError::kBadMagic;
  }
  SnapshotReader hr(bytes.data() + sizeof(kMagic),
                    kHeaderSize - sizeof(kMagic));
  const uint32_t version = hr.U32();
  hr.U32();  // flags, reserved
  const uint64_t config_hash = hr.U64();
  const uint64_t event_cursor = hr.U64();
  const uint64_t payload_size = hr.U64();
  const uint32_t payload_crc = hr.U32();
  const uint32_t header_crc = hr.U32();
  if (Crc32(bytes.data(), kHeaderSize - 4) != header_crc) {
    return CheckpointError::kBadHeaderCrc;
  }
  if (version != kCheckpointVersion) return CheckpointError::kBadVersion;
  if (bytes.size() != kHeaderSize + payload_size + kFooterSize) {
    return CheckpointError::kTruncated;
  }
  SnapshotReader fr(bytes.data() + kHeaderSize + payload_size, kFooterSize);
  if (fr.U32() != kCheckpointFooterMagic) return CheckpointError::kTruncated;
  if (fr.U32() != payload_crc) return CheckpointError::kBadPayloadCrc;
  if (Crc32(bytes.data() + kHeaderSize, payload_size) != payload_crc) {
    return CheckpointError::kBadPayloadCrc;
  }
  if (config_hash != ConfigFingerprint(config)) {
    return CheckpointError::kConfigMismatch;
  }
  auto sim = std::make_unique<Simulation>(config);
  SnapshotReader pr(bytes.data() + kHeaderSize, payload_size);
  sim->RestoreState(pr);
  if (!pr.AtEnd()) return CheckpointError::kMalformed;
  if (sim->events_applied() != event_cursor) {
    return CheckpointError::kMalformed;
  }
  *out = std::move(sim);
  *events_applied = event_cursor;
  return CheckpointError::kNone;
}

}  // namespace

const char* CheckpointErrorName(CheckpointError error) {
  switch (error) {
    case CheckpointError::kNone: return "none";
    case CheckpointError::kOpenFailed: return "open_failed";
    case CheckpointError::kWriteFailed: return "write_failed";
    case CheckpointError::kTruncated: return "truncated";
    case CheckpointError::kBadMagic: return "bad_magic";
    case CheckpointError::kBadVersion: return "bad_version";
    case CheckpointError::kBadHeaderCrc: return "bad_header_crc";
    case CheckpointError::kBadPayloadCrc: return "bad_payload_crc";
    case CheckpointError::kMalformed: return "malformed";
    case CheckpointError::kConfigMismatch: return "config_mismatch";
  }
  return "unknown";
}

uint64_t ConfigFingerprint(const SimConfig& config) {
  SnapshotWriter w;
  const StoreConfig& st = config.store;
  w.U32(st.partition_bytes);
  w.U32(st.page_bytes);
  w.U32(st.buffer_pages);
  w.U64(st.max_db_bytes);
  w.Bool(st.pin_newest_allocation);
  w.Bool(st.enable_disk_timing);
  w.F64(st.disk.seek_ms);
  w.F64(st.disk.rotational_ms);
  w.F64(st.disk.transfer_mb_per_s);
  // Fault plan: the I/O fault mix shapes behavior, so it is hashed. The
  // crash schedule and seed are not (see ConfigFingerprint's contract).
  w.F64(st.fault.read_fault_prob);
  w.F64(st.fault.write_fault_prob);
  w.F64(st.fault.torn_write_prob);
  w.F64(st.fault.bitflip_prob);
  w.F64(st.fault.decay_prob);
  w.U32(st.fault.decay_latency);
  w.F64(st.fault.dead_page_prob);
  w.F64(st.fault.dead_partition_prob);
  w.U32(st.fault.max_retries);
  w.F64(st.fault.retry_backoff_ms);
  w.Bool(st.fault.commit_protocol);
  w.U32(config.preamble_collections);
  w.U32(config.preamble_max_collections);
  w.Bool(config.record_collection_log);
  w.U8(static_cast<uint8_t>(config.policy));
  w.U64(config.fixed_rate_overwrites);
  w.U64(config.allocation_rate_bytes);
  w.F64(config.heuristic_connectivity);
  w.F64(config.heuristic_object_bytes);
  w.F64(config.saio_frac);
  w.U64(config.saio_history);
  w.U64(config.saio_bootstrap_app_io);
  w.Bool(config.saio_opportunism);
  w.U64(config.saio_min_idle_yield);
  w.F64(config.saga.garbage_frac);
  w.F64(config.saga.slope_weight);
  w.U64(config.saga.dt_min);
  w.U64(config.saga.dt_max);
  w.U64(config.saga.bootstrap_overwrites);
  w.Bool(config.saga.opportunism);
  w.F64(config.saga.idle_floor_frac);
  w.U8(static_cast<uint8_t>(config.estimator));
  w.F64(config.fgs_history_factor);
  w.F64(config.coupled.io_frac);
  w.F64(config.coupled.garbage_ref_frac);
  w.F64(config.coupled.min_scale);
  w.F64(config.coupled.max_scale);
  w.U64(config.coupled.history_size);
  w.U64(config.coupled.bootstrap_app_io);
  w.U8(static_cast<uint8_t>(config.selector));
  w.Bool(config.verify_after_collection);
  w.Bool(config.verify_after_recovery);
  w.Bool(config.verify_reachability);
  w.U32(config.scrub_interval_events);
  w.U32(config.scrub_pages_per_quantum);
  w.Bool(config.auto_repair);
  w.Bool(config.verify_after_repair);
  const GovernorConfig& gov = config.governor;
  w.Bool(gov.enabled);
  w.F64(gov.yellow_frac);
  w.F64(gov.red_frac);
  w.F64(gov.hysteresis_frac);
  w.U32(gov.check_interval_events);
  w.U64(gov.boost_interval_overwrites);
  w.F64(gov.io_saturation_frac);
  w.U32(gov.emergency_max_collections);
  w.F64(gov.safe_mode_divergence_frac);
  w.U32(gov.safe_mode_divergence_count);
  w.F64(gov.safe_mode_flip_frac);
  w.U32(gov.safe_mode_window);
  w.U32(gov.safe_mode_exit_clean);
  w.U64(gov.safe_mode_fixed_interval);
  // FNV-1a 64 over the canonical field bytes.
  uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : w.data()) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void Simulation::SaveState(SnapshotWriter& w) const {
  w.Tag("SIM0");
  SaveClock(w, clock_);
  SaveResult(w, result_);
  w.U8(static_cast<uint8_t>(current_phase_));
  w.Bool(phase_open_);
  SavePhaseStats(w, phase_accum_);
  SaveClock(w, phase_base_clock_);
  w.U64(phase_base_collections_);
  w.U64(phase_base_reclaimed_);
  w.U64(window_app_io_base_);
  w.U64(window_gc_io_base_);
  w.U64(window_reclaimed_base_);
  SaveStats(w, whole_run_garbage_pct_);
  w.Bool(last_estimate_valid_);
  w.F64(last_estimate_error_pp_);
  store_->SaveState(w);
  collector_.SaveState(w);
  scrubber_.SaveState(w);
  policy_->SaveState(w);
  selector_->SaveState(w);
  w.U64(passive_estimators_.size());
  for (const GarbageEstimator* passive : passive_estimators_) {
    passive->SaveState(w);
  }
  // Overload governor. Presence is config-determined (the fingerprint
  // covers governor.enabled), so the flag is a consistency check, not a
  // negotiation.
  w.Bool(governor_ != nullptr);
  if (governor_ != nullptr) {
    governor_->SaveState(w);
    w.Bool(safe_mode_);
    w.Bool(safe_policy_ != nullptr);
    if (safe_policy_ != nullptr) safe_policy_->SaveState(w);
  }
  // Telemetry travels as a length-prefixed sub-blob: an empty string for
  // telemetry-off runs, so the surrounding layout is version-stable.
  SnapshotWriter tw;
  if (tel_ != nullptr) tel_->SaveState(tw);
  w.Str(tw.Take());
  w.Tag("ENDS");
}

void Simulation::RestoreState(SnapshotReader& r) {
  r.Tag("SIM0");
  clock_ = LoadClock(r);
  LoadResult(r, &result_);
  current_phase_ = LoadPhase(r);
  phase_open_ = r.Bool();
  phase_accum_ = LoadPhaseStats(r);
  phase_base_clock_ = LoadClock(r);
  phase_base_collections_ = r.U64();
  phase_base_reclaimed_ = r.U64();
  window_app_io_base_ = r.U64();
  window_gc_io_base_ = r.U64();
  window_reclaimed_base_ = r.U64();
  whole_run_garbage_pct_ = LoadStats(r);
  last_estimate_valid_ = r.Bool();
  last_estimate_error_pp_ = r.F64();
  store_->RestoreState(r);
  collector_.RestoreState(r);
  scrubber_.RestoreState(r);
  policy_->RestoreState(r);
  selector_->RestoreState(r);
  const uint64_t passive_count = r.U64();
  if (passive_count != passive_estimators_.size()) {
    r.MarkMalformed("passive estimator count mismatch");
    return;
  }
  for (GarbageEstimator* passive : passive_estimators_) {
    passive->RestoreState(r);
  }
  const bool has_governor = r.Bool();
  if (has_governor != (governor_ != nullptr)) {
    r.MarkMalformed("governor presence mismatch");
    return;
  }
  if (has_governor) {
    governor_->RestoreState(r);
    safe_mode_ = r.Bool();
    if (r.Bool()) {
      if (safe_policy_ == nullptr) {
        safe_policy_ = std::make_unique<FixedRatePolicy>(
            config_.governor.safe_mode_fixed_interval);
#if ODBGC_TELEMETRY
        if (tel_ != nullptr) safe_policy_->AttachTelemetry(tel_.get());
#endif
      }
      safe_policy_->RestoreState(r);
    }
  }
  // Telemetry sub-blob. Empty means the checkpointed run had telemetry
  // off; a non-empty blob is restored only when this run has telemetry
  // (the config fingerprint deliberately ignores telemetry options, so a
  // resume may enable or disable it).
  const std::string tel_blob = r.Str();
  if (tel_ != nullptr && !tel_blob.empty()) {
    SnapshotReader tr(tel_blob);
    tel_->RestoreState(tr);
    if (!tr.ok()) {
      r.MarkMalformed("telemetry blob: " + tr.error());
      return;
    }
  }
  r.Tag("ENDS");
}

CheckpointError WriteCheckpoint(const Simulation& sim,
                                const std::string& path) {
  SnapshotWriter pw;
  sim.SaveState(pw);
  const std::string payload = pw.Take();
  const uint32_t payload_crc = Crc32(payload.data(), payload.size());

  SnapshotWriter hw;
  for (const char c : kMagic) hw.U8(static_cast<uint8_t>(c));
  hw.U32(kCheckpointVersion);
  hw.U32(0);  // flags, reserved
  hw.U64(ConfigFingerprint(sim.config()));
  hw.U64(sim.events_applied());
  hw.U64(payload.size());
  hw.U32(payload_crc);
  hw.U32(Crc32(hw.data().data(), hw.data().size()));  // header CRC

  SnapshotWriter fw;
  fw.U32(kCheckpointFooterMagic);
  fw.U32(payload_crc);

  std::string file = hw.Take();
  file += payload;
  file += fw.data();
  return WriteFileAtomic(path, file);
}

ResumeResult ResumeFromCheckpoint(const SimConfig& config,
                                  const std::string& path) {
  ResumeResult res;
  res.primary_error =
      LoadCheckpointFile(config, path, &res.sim, &res.events_applied);
  res.error = res.primary_error;
  res.loaded_path = path;
  if (res.error != CheckpointError::kNone) {
    const std::string prev = path + ".prev";
    std::unique_ptr<Simulation> sim;
    uint64_t events = 0;
    const CheckpointError fb =
        LoadCheckpointFile(config, prev, &sim, &events);
    if (fb == CheckpointError::kNone) {
      res.error = fb;
      res.used_fallback = true;
      res.loaded_path = prev;
      res.sim = std::move(sim);
      res.events_applied = events;
    }
  }
  return res;
}

}  // namespace odbgc
