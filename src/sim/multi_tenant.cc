#include "sim/multi_tenant.h"

#include <algorithm>
#include <cmath>

#include "sim/multi_client.h"
#include "sim/runner.h"
#include "util/check.h"

namespace odbgc {

constexpr uint32_t MultiTenantReport::kLanes[];

double MultiTenantReport::ModeledSpeedup(size_t lane_index) const {
  ODBGC_CHECK(lane_index < kLaneCounts);
  if (modeled_units[lane_index] <= 0.0) return 0.0;
  return modeled_units[0] / modeled_units[lane_index];
}

uint64_t MultiTenantReport::FleetChecksum() const {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(clients);
  mix(events);
  mix(epochs);
  mix(xshard_writes);
  mix(pins_granted);
  mix(pins_revoked);
  mix(pins_reconciled);
  mix(exchange_batches);
  mix(budget_grants);
  mix(budget_revokes);
  mix(admission_deferrals);
  mix(breaker_opens);
  mix(breaker_closes);
  mix(contention_events);
  mix(contention_delay_units);
  for (const SimResult& s : shards) {
    mix(s.clock.app_io);
    mix(s.clock.gc_io);
    mix(s.clock.pointer_overwrites);
    mix(s.clock.events);
    mix(s.collections);
    mix(s.total_reclaimed_bytes);
    mix(s.final_db_used_bytes);
    mix(s.final_actual_garbage_bytes);
  }
  return h;
}

MultiTenantEngine::MultiTenantEngine(const MultiTenantOptions& options)
    : options_(options),
      rng_(options.seed),
      ledger_(1 << 12) {
  ODBGC_CHECK(options_.num_shards > 0);
  ODBGC_CHECK(options_.epoch_events > 0);
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    SimConfig cfg = options_.shard_config;
    // Decorrelate the shard selectors/fault streams from each other and
    // from every client RNG.
    ApplyRunSeeds(&cfg, options_.seed * 1000003ull + s);
    sims_.push_back(std::make_unique<Simulation>(cfg));
  }
  // Catalog ids occupy [1, catalog_per_shard] of every shard's local id
  // space; tenants get offsets past them.
  shard_next_offset_.assign(options_.num_shards, options_.catalog_per_shard);
  epoch_batch_.resize(options_.num_shards);
  exchange_.resize(options_.num_shards);
  prev_io_.assign(options_.num_shards, 0);
  shard_budget_.assign(options_.num_shards, options_.global_io_frac);
  breaker_open_.assign(options_.num_shards, 0);
  breaker_clean_.assign(options_.num_shards, 0);
  defer_ledger_epoch_.assign(options_.num_shards, 0);
  CreateCatalog();
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    prev_io_[s] = sims_[s]->clock().total_io();
  }
}

void MultiTenantEngine::CreateCatalog() {
  // The catalog objects are unreachable from any root on purpose: their
  // liveness is carried entirely by external pins — the engine's
  // permanent "directory pin" here plus one refcount per live remote
  // reference. They carry no kGarbageMark and are never unpinned, so
  // they can never perturb a shard's garbage ground truth.
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    for (uint32_t k = 1; k <= options_.catalog_per_shard; ++k) {
      sims_[s]->Apply(CreateEvent(k, options_.catalog_object_bytes, 0));
      sims_[s]->store().AddExternalPin(k);
    }
  }
}

size_t MultiTenantEngine::AddClient(std::unique_ptr<EventSource> source,
                                    const MuxClientOptions& mux_options) {
  ODBGC_CHECK(!finished_);
  ODBGC_CHECK(source != nullptr);
  const uint32_t max_id = source->max_object_id();
  const size_t c = mux_.AddClient(std::move(source), mux_options);
  ODBGC_CHECK(c == client_shard_.size());
  const uint32_t shard = static_cast<uint32_t>(c % sims_.size());
  const uint32_t local_offset = shard_next_offset_[shard];
  ODBGC_CHECK_MSG(
      local_offset <= UINT32_MAX - (max_id + 1),
      "shard-local id ranges overflow the 32-bit id space");
  shard_next_offset_[shard] = local_offset + max_id + 1;
  client_shard_.push_back(shard);
  // Composing the mux's global offset with this delta (mod 2^32) lands
  // the client's ids on [local_offset + 1, local_offset + max_id].
  client_delta_.push_back(local_offset - mux_.client_offset(c));
  return c;
}

size_t MultiTenantEngine::AddClient(std::shared_ptr<const Trace> trace,
                                    const MuxClientOptions& mux_options) {
  ODBGC_CHECK(trace != nullptr);
  const uint32_t max_id = MaxObjectId(*trace);
  return AddClient(
      std::make_unique<TraceCursorSource>(std::move(trace), max_id),
      mux_options);
}

void MultiTenantEngine::EnqueuePinDelta(uint32_t shard, uint32_t id,
                                        int32_t delta) {
  exchange_[shard].push_back(PinDelta{id, delta});
}

void MultiTenantEngine::ApplyExchange() {
  for (size_t s = 0; s < sims_.size(); ++s) {
    if (exchange_[s].empty()) continue;
    ++exchange_batches_;
    ObjectStore& store = sims_[s]->store();
    for (const PinDelta& d : exchange_[s]) {
      if (d.delta > 0) {
        store.AddExternalPin(d.id);
      } else {
        store.RemoveExternalPin(d.id);
      }
    }
    exchange_[s].clear();
  }
}

void MultiTenantEngine::RouteEvent(TraceEvent e, uint32_t client) {
  const uint32_t s = client_shard_[client];
  RemapEventIds(&e, client_delta_[client]);
  const uint64_t total_catalog =
      static_cast<uint64_t>(sims_.size()) * options_.catalog_per_shard;
  if (e.kind == EventKind::kWriteRef && total_catalog > 0) {
    const RefKey key{s, e.a, e.b};
    auto it = remote_refs_.find(key);
    if (it != remote_refs_.end()) {
      // The slot is being overwritten: the old remote target loses one
      // refcount (delivered at the next epoch start; the target stays
      // alive meanwhile under the engine's directory pin).
      EnqueuePinDelta(it->second.first, it->second.second, -1);
      ++pins_revoked_;
      remote_refs_.erase(it);
    }
    // Only null-target writes are redirected: the local apply then
    // detaches nothing it would not have detached anyway, so the
    // clients' garbage ground truth is untouched.
    if (e.c == 0 && options_.share_prob > 0.0 &&
        rng_.NextDouble() < options_.share_prob) {
      const uint64_t pick = rng_.NextBelow(total_catalog);
      const uint32_t target_shard =
          static_cast<uint32_t>(pick / options_.catalog_per_shard);
      const uint32_t target_id =
          1 + static_cast<uint32_t>(pick % options_.catalog_per_shard);
      if (target_shard == s) {
        // Same shard: an ordinary local reference.
        e.c = target_id;
      } else {
        // Cross-shard: the local store keeps the null slot (shard
        // stores never hold foreign ids); the reference lives in the
        // engine's remembered set, backed by a +1 pin on the target.
        remote_refs_[key] = {target_shard, target_id};
        EnqueuePinDelta(target_shard, target_id, +1);
        ++pins_granted_;
        ++xshard_writes_;
      }
    }
  }
  epoch_batch_[s].push_back(e);
}

void MultiTenantEngine::Reconcile() {
  for (auto it = remote_refs_.begin(); it != remote_refs_.end();) {
    const uint32_t src_shard = std::get<0>(it->first);
    const uint32_t src_id = std::get<1>(it->first);
    if (!sims_[src_shard]->store().Exists(src_id)) {
      EnqueuePinDelta(it->second.first, it->second.second, -1);
      ++pins_reconciled_;
      it = remote_refs_.erase(it);
    } else {
      ++it;
    }
  }
}

void MultiTenantEngine::EndEpoch() {
  const size_t n = sims_.size();
  // Per-shard epoch cost: events applied plus this epoch's simulated
  // I/O — the unit of the modeled lane schedule.
  std::vector<uint64_t> cost(n, 0);
  uint64_t total = 0;
  for (size_t s = 0; s < n; ++s) {
    const uint64_t io = sims_[s]->clock().total_io();
    cost[s] = epoch_batch_[s].size() + (io - prev_io_[s]);
    prev_io_[s] = io;
    total += cost[s];
  }
  // Contention: a shard drawing more than twice the fair share of the
  // epoch queues behind the shared commit latch. The delay grows with
  // the excess and carries seeded jitter; it is charged to the hot
  // shard's lane cost (and the serial schedule), never to real state.
  for (size_t s = 0; s < n; ++s) {
    if (n > 1 && cost[s] * n > 2 * total) {
      const uint64_t excess = cost[s] * n - 2 * total;
      const uint64_t delay =
          excess / (2 * n) + rng_.NextBelow(cost[s] / 16 + 1);
      cost[s] += delay;
      contention_delay_ += delay;
      ++contention_events_;
    }
  }
  // Modeled lane schedule: LPT-pack the shard costs onto L lanes for
  // each fixed L and accumulate the makespan. Descending cost, shard id
  // breaking ties; the least-loaded (lowest-index on ties) lane wins —
  // fully deterministic and independent of the actual thread count.
  std::vector<size_t> order(n);
  for (size_t s = 0; s < n; ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&cost](size_t a, size_t b) {
    if (cost[a] != cost[b]) return cost[a] > cost[b];
    return a < b;
  });
  for (size_t li = 0; li < MultiTenantReport::kLaneCounts; ++li) {
    const uint32_t lanes = MultiTenantReport::kLanes[li];
    std::vector<uint64_t> load(lanes, 0);
    for (size_t s : order) {
      size_t best = 0;
      for (size_t l = 1; l < lanes; ++l) {
        if (load[l] < load[best]) best = l;
      }
      load[best] += cost[s];
    }
    modeled_units_[li] +=
        static_cast<double>(*std::max_element(load.begin(), load.end()));
  }
  Reconcile();
  if (options_.coordinator_period > 0 &&
      epochs_ % options_.coordinator_period == 0) {
    CoordinatorTick();
  }
}

double MultiTenantEngine::BreakerClamp(size_t s, double budget) {
  // Unhealthy = red-watermark pressure or a quarantine-heavy store. Open
  // the breaker on the first unhealthy tick; close it only after
  // breaker_close_ticks consecutive healthy ones.
  const ObjectStore& store = sims_[s]->store();
  const size_t parts = store.partition_count();
  const double qfrac =
      parts > 0 ? static_cast<double>(store.quarantined_count()) /
                      static_cast<double>(parts)
                : 0.0;
  const bool unhealthy =
      sims_[s]->pressure_level() == PressureLevel::kRed ||
      qfrac >= options_.breaker_quarantine_frac;
  if (breaker_open_[s] == 0) {
    if (unhealthy) {
      breaker_open_[s] = 1;
      breaker_clean_[s] = 0;
      ++breaker_opens_;
      LedgerShardEvent(s, "breaker", obs::DecisionReason::kBreakerOpen,
                       options_.min_shard_frac);
    }
  } else if (unhealthy) {
    breaker_clean_[s] = 0;
  } else if (++breaker_clean_[s] >= options_.breaker_close_ticks) {
    breaker_open_[s] = 0;
    breaker_clean_[s] = 0;
    ++breaker_closes_;
    LedgerShardEvent(s, "breaker", obs::DecisionReason::kBreakerClose,
                     budget);
  }
  return breaker_open_[s] != 0 ? options_.min_shard_frac : budget;
}

void MultiTenantEngine::LedgerShardEvent(size_t s, const char* who,
                                         obs::DecisionReason reason,
                                         double target_frac) {
  const SimClock& ck = sims_[s]->clock();
  obs::PolicyDecisionRecord ctx;
  ctx.event = mux_.events_drawn();
  ctx.app_io = ck.app_io;
  ctx.gc_io = ck.gc_io;
  ctx.io_pct = ck.total_io() > 0
                   ? 100.0 * static_cast<double>(ck.gc_io) /
                         static_cast<double>(ck.total_io())
                   : 0.0;
  ctx.db_used_bytes = ck.db_used_bytes;
  ctx.actual_garbage_bytes = sims_[s]->store().actual_garbage_bytes();
  ctx.garbage_pct = ck.db_used_bytes > 0
                        ? 100.0 * static_cast<double>(
                                      ctx.actual_garbage_bytes) /
                              static_cast<double>(ck.db_used_bytes)
                        : 0.0;
  ctx.collection = sims_[s]->collections();
  ledger_.SetContext(ctx);
  // Same field semantics as the coordinator's budget records:
  // next_threshold carries the shard index, target the fraction in
  // percent (docs/POLICIES.md).
  ledger_.Append(who, reason, 0.0, s, 100.0 * target_frac);
}

void MultiTenantEngine::CoordinatorTick() {
  const size_t n = sims_.size();
  // Redistribute the fleet budget by observed garbage share: tenants
  // sitting on more uncollected garbage earn a larger io fraction, each
  // grant clamped to [min_shard_frac, max_shard_frac].
  std::vector<uint64_t> garbage(n, 0);
  uint64_t total_garbage = 0;
  for (size_t s = 0; s < n; ++s) {
    garbage[s] = sims_[s]->store().actual_garbage_bytes();
    total_garbage += garbage[s];
  }
  for (size_t s = 0; s < n; ++s) {
    const double weight =
        total_garbage > 0
            ? static_cast<double>(garbage[s]) /
                  static_cast<double>(total_garbage)
            : 1.0 / static_cast<double>(n);
    double budget = options_.global_io_frac *
                    static_cast<double>(n) * weight;
    budget = std::min(std::max(budget, options_.min_shard_frac),
                      options_.max_shard_frac);
    if (options_.breaker) {
      budget = BreakerClamp(s, budget);
    }
    const double old = shard_budget_[s];
    if (std::fabs(budget - old) < 1e-9) continue;
    sims_[s]->policy().SetIoBudget(budget);
    shard_budget_[s] = budget;
    const SimClock& ck = sims_[s]->clock();
    obs::PolicyDecisionRecord ctx;
    ctx.event = mux_.events_drawn();
    ctx.app_io = ck.app_io;
    ctx.gc_io = ck.gc_io;
    ctx.io_pct = ck.total_io() > 0
                     ? 100.0 * static_cast<double>(ck.gc_io) /
                           static_cast<double>(ck.total_io())
                     : 0.0;
    ctx.garbage_pct = ck.db_used_bytes > 0
                          ? 100.0 * static_cast<double>(garbage[s]) /
                                static_cast<double>(ck.db_used_bytes)
                          : 0.0;
    ctx.actual_garbage_bytes = garbage[s];
    ctx.db_used_bytes = ck.db_used_bytes;
    ctx.collection = sims_[s]->collections();
    ledger_.SetContext(ctx);
    // chosen_interval carries the budget delta, next_threshold the shard
    // index, target the granted fraction in percent (docs/POLICIES.md).
    const bool grant = budget > old;
    ledger_.Append("budget_coordinator",
                   grant ? obs::DecisionReason::kBudgetGrant
                         : obs::DecisionReason::kBudgetRevoke,
                   budget - old, s, 100.0 * budget);
    if (grant) {
      ++budget_grants_;
    } else {
      ++budget_revokes_;
    }
  }
}

MultiTenantReport MultiTenantEngine::Run() {
  ODBGC_CHECK_MSG(!finished_, "MultiTenantEngine::Run is callable once");
  finished_ = true;
  if (options_.backpressure) {
    // The gate runs inside the serial drain; pressure levels only move
    // during the parallel apply, so within one drain the gate is a fixed
    // function of the shard states the barrier committed — deterministic
    // at any thread count.
    mux_.SetAdmissionGate(
        [this](uint32_t client) {
          const uint32_t s = client_shard_[client];
          if (sims_[s]->pressure_level() != PressureLevel::kRed) {
            return false;
          }
          if (defer_ledger_epoch_[s] != epochs_) {
            // First deferral this epoch for this shard (epochs_ is the
            // 1-based current epoch inside the drain).
            defer_ledger_epoch_[s] = epochs_;
            LedgerShardEvent(s, "admission",
                             obs::DecisionReason::kAdmissionDefer,
                             shard_budget_[s]);
          }
          return true;
        },
        options_.admission_defer_limit);
  }
  bool done = false;
  TraceEvent e;
  uint32_t client = 0;
  while (!done) {
    ++epochs_;
    // 1. Serial: deliver the previous epoch's pin deltas, shard order.
    ApplyExchange();
    // 2. Serial: drain one epoch from the mux, routing + intercepting.
    for (auto& batch : epoch_batch_) batch.clear();
    uint32_t drained = 0;
    while (drained < options_.epoch_events && mux_.Next(&e, &client)) {
      RouteEvent(e, client);
      ++drained;
    }
    done = drained < options_.epoch_events;
    if (drained == 0) {
      --epochs_;  // nothing happened; do not close an empty epoch
      break;
    }
    // 3. Parallel: apply each shard's batch. Shards share no mutable
    // state, so any thread count computes the same result.
    pool_->ParallelFor(sims_.size(), [this](size_t s) {
      for (const TraceEvent& ev : epoch_batch_[s]) sims_[s]->Apply(ev);
    });
    // 4. Serial barrier: contention, modeled lanes, reconciliation,
    // coordinator.
    EndEpoch();
  }
  // Flush the last epoch's reconciliation/overwrite revokes so final
  // pin counts balance.
  ApplyExchange();
  return BuildReport();
}

MultiTenantReport MultiTenantEngine::BuildReport() {
  MultiTenantReport r;
  r.clients = mux_.clients();
  r.events = mux_.events_drawn();
  r.epochs = epochs_;
  r.xshard_writes = xshard_writes_;
  r.pins_granted = pins_granted_;
  r.pins_revoked = pins_revoked_;
  r.pins_reconciled = pins_reconciled_;
  r.exchange_batches = exchange_batches_;
  r.budget_grants = budget_grants_;
  r.budget_revokes = budget_revokes_;
  r.admission_deferrals = mux_.admission_deferrals();
  r.breaker_opens = breaker_opens_;
  r.breaker_closes = breaker_closes_;
  r.coordinator_decisions = ledger_.Records();
  r.contention_events = contention_events_;
  r.contention_delay_units = contention_delay_;
  for (size_t li = 0; li < MultiTenantReport::kLaneCounts; ++li) {
    r.modeled_units[li] = modeled_units_[li];
  }
  obs::Histogram merged;
  bool any_tel = false;
  r.shards.reserve(sims_.size());
  for (auto& sim : sims_) {
    r.shards.push_back(sim->Finish());
    if (obs::Telemetry* tel = sim->telemetry()) {
      merged.Merge(*tel->metrics().GetHistogram("stall.gc_copy_io"));
      any_tel = true;
    }
  }
  if (any_tel) {
    r.stall_gc_copy.id = "stall.gc_copy_io";
    r.stall_gc_copy.count = merged.count();
    r.stall_gc_copy.min = merged.min();
    r.stall_gc_copy.max = merged.max();
    r.stall_gc_copy.mean = merged.mean();
    r.stall_gc_copy.p50 = merged.Percentile(50.0);
    r.stall_gc_copy.p95 = merged.Percentile(95.0);
    r.stall_gc_copy.p99 = merged.Percentile(99.0);
  }
  return r;
}

size_t MultiTenantEngine::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this) + mux_.ApproxMemoryBytes();
  for (const auto& batch : epoch_batch_) {
    bytes += batch.capacity() * sizeof(TraceEvent);
  }
  for (const auto& ex : exchange_) {
    bytes += ex.capacity() * sizeof(PinDelta);
  }
  bytes += remote_refs_.size() *
           (sizeof(RefKey) + sizeof(std::pair<uint32_t, uint32_t>) +
            4 * sizeof(void*));
  return bytes;
}

}  // namespace odbgc
