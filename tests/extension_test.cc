// Tests for the Section 5 extensions: opportunistic collection during
// quiescence (kIdleMark) and the coupled SAIO/SAGA policy.

#include <memory>

#include <gtest/gtest.h>

#include "core/coupled.h"
#include "core/saga.h"
#include "core/saio.h"
#include "oo7/generator.h"
#include "sim/runner.h"
#include "sim/simulation.h"

namespace odbgc {
namespace {

SimClock At(uint64_t app_io, uint64_t gc_io, uint64_t overwrites,
            uint64_t db_bytes) {
  SimClock c;
  c.app_io = app_io;
  c.gc_io = gc_io;
  c.pointer_overwrites = overwrites;
  c.db_used_bytes = db_bytes;
  return c;
}

SimConfig TinyConfig() {
  SimConfig cfg;
  cfg.store.partition_bytes = 16 * 1024;
  cfg.store.page_bytes = 2 * 1024;
  cfg.store.buffer_pages = 8;
  cfg.preamble_collections = 3;
  return cfg;
}

// --- SAIO opportunism unit behavior ---

TEST(SaioOpportunismTest, DisabledByDefault) {
  SaioPolicy policy(0.10);
  EXPECT_FALSE(policy.ShouldCollectWhenIdle(At(1000, 100, 50, 100000)));
}

TEST(SaioOpportunismTest, CollectsWhileYieldIsWorthwhile) {
  SaioPolicy policy(0.10);
  policy.set_opportunism(true, /*min_idle_yield_bytes=*/1000);
  SimClock clock = At(1000, 100, 50, 100000);
  // First probe always allowed.
  EXPECT_TRUE(policy.ShouldCollectWhenIdle(clock));
  policy.OnIdleCollection(CollectionOutcome{10, /*reclaimed=*/5000}, clock);
  EXPECT_TRUE(policy.ShouldCollectWhenIdle(clock));
  policy.OnIdleCollection(CollectionOutcome{10, /*reclaimed=*/500}, clock);
  EXPECT_FALSE(policy.ShouldCollectWhenIdle(clock));
}

TEST(SaioOpportunismTest, ScheduledCollectionRearmsIdleProbe) {
  SaioPolicy policy(0.10);
  policy.set_opportunism(true, 1000);
  SimClock clock = At(3000, 100, 50, 100000);
  policy.OnIdleCollection(CollectionOutcome{10, 0}, clock);
  EXPECT_FALSE(policy.ShouldCollectWhenIdle(clock));
  policy.OnCollection(CollectionOutcome{100, 20000}, clock);
  EXPECT_TRUE(policy.ShouldCollectWhenIdle(clock));
}

TEST(SaioOpportunismTest, IdleCollectionsDoNotPerturbSchedule) {
  SaioPolicy policy(0.10, 0, /*bootstrap=*/500);
  policy.set_opportunism(true, 1000);
  SimClock clock = At(500, 100, 0, 100000);
  policy.OnCollection(CollectionOutcome{100, 0}, clock);
  uint64_t threshold = policy.next_app_io_threshold();
  policy.OnIdleCollection(CollectionOutcome{5000, 50000}, clock);
  EXPECT_EQ(policy.next_app_io_threshold(), threshold);
}

// --- SAGA opportunism unit behavior ---

TEST(SagaOpportunismTest, CollectsDownToIdleFloor) {
  SagaPolicy::Options opts;
  opts.garbage_frac = 0.10;
  opts.opportunism = true;
  opts.idle_floor_frac = 0.05;
  auto est = std::make_unique<OracleEstimator>();
  OracleEstimator* oracle = est.get();
  SagaPolicy policy(opts, std::move(est));

  SimClock clock = At(0, 0, 500, 100000);
  oracle->SetGroundTruth(8000.0);  // 8% > 5% floor
  EXPECT_TRUE(policy.ShouldCollectWhenIdle(clock));
  oracle->SetGroundTruth(4000.0);  // 4% < 5% floor
  EXPECT_FALSE(policy.ShouldCollectWhenIdle(clock));
}

TEST(SagaOpportunismTest, StallsOnZeroYieldUntilLoadResumes) {
  SagaPolicy::Options opts;
  opts.opportunism = true;
  opts.idle_floor_frac = 0.01;
  auto est = std::make_unique<OracleEstimator>();
  OracleEstimator* oracle = est.get();
  SagaPolicy policy(opts, std::move(est));
  oracle->SetGroundTruth(50000.0);

  SimClock clock = At(0, 0, 500, 100000);
  EXPECT_TRUE(policy.ShouldCollectWhenIdle(clock));
  policy.OnIdleCollection(CollectionOutcome{10, /*reclaimed=*/0}, clock);
  // Remaining garbage is out of reach: stop burning idle cycles.
  EXPECT_FALSE(policy.ShouldCollectWhenIdle(clock));
  policy.OnCollection(CollectionOutcome{10, 100}, clock);
  EXPECT_TRUE(policy.ShouldCollectWhenIdle(clock));
}

TEST(SagaOpportunismTest, DisabledByDefault) {
  SagaPolicy::Options opts;
  auto est = std::make_unique<OracleEstimator>();
  est->SetGroundTruth(1.0e9);
  SagaPolicy policy(opts, std::move(est));
  EXPECT_FALSE(policy.ShouldCollectWhenIdle(At(0, 0, 500, 100000)));
}

// --- Idle periods through the full simulation ---

Trace TraceWithIdlePeriod(uint64_t seed, uint32_t idle_budget,
                          const Oo7Params& params = Oo7Params::Tiny()) {
  Oo7Generator gen(params, seed);
  Trace base;
  gen.GenDb(&base);
  gen.Reorg1(&base);
  base.Append(IdleMarkEvent(idle_budget));
  gen.Traverse(&base);
  return base;
}

TEST(IdleSimulationTest, OpportunismDrainsGarbageDuringIdle) {
  // Full-size database: the estimator needs an ongoing collection stream
  // for its view to be current when the idle period starts.
  SimConfig with;  // paper-default store
  with.policy = PolicyKind::kSaga;
  with.estimator = EstimatorKind::kOracle;
  with.saga.garbage_frac = 0.20;  // lazy under load
  with.saga.opportunism = true;
  with.saga.idle_floor_frac = 0.02;
  with.saga.bootstrap_overwrites = 100;

  SimConfig without = with;
  without.saga.opportunism = false;

  Trace trace =
      TraceWithIdlePeriod(3, /*idle_budget=*/100, Oo7Params::SmallPrime());
  SimResult r_with = RunSimulation(with, trace);
  SimResult r_without = RunSimulation(without, trace);

  EXPECT_GT(r_with.idle_collections, 0u);
  EXPECT_EQ(r_without.idle_collections, 0u);
  // Opportunism leaves less garbage at the end of the idle+readonly tail.
  EXPECT_LT(r_with.final_actual_garbage_bytes,
            r_without.final_actual_garbage_bytes);
}

TEST(IdleSimulationTest, IdleBudgetRespected) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kSaga;
  cfg.estimator = EstimatorKind::kOracle;
  cfg.saga.garbage_frac = 0.30;
  cfg.saga.opportunism = true;
  cfg.saga.idle_floor_frac = 0.001;  // wants to collect nearly forever
  cfg.saga.bootstrap_overwrites = 100;
  Trace trace = TraceWithIdlePeriod(4, /*idle_budget=*/3);
  SimResult r = RunSimulation(cfg, trace);
  EXPECT_LE(r.idle_collections, 3u);
}

TEST(IdleSimulationTest, IdleMarkIsNoOpForNonOpportunisticPolicies) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 50;
  Trace trace = TraceWithIdlePeriod(5, 100);
  SimResult r = RunSimulation(cfg, trace);
  EXPECT_EQ(r.idle_collections, 0u);
  EXPECT_EQ(r.idle_gc_io, 0u);
}

// --- Coupled policy ---

TEST(CoupledPolicyTest, DegeneratesToSaioWhenScalesPinned) {
  CoupledIoPolicy::Options opts;
  opts.io_frac = 0.10;
  opts.min_scale = 1.0;
  opts.max_scale = 1.0;
  opts.bootstrap_app_io = 500;
  CoupledIoPolicy coupled(opts, std::make_unique<OracleEstimator>());
  SaioPolicy saio(0.10, 0, 500);

  SimClock clock = At(500, 100, 0, 100000);
  coupled.OnCollection(CollectionOutcome{100, 0}, clock);
  saio.OnCollection(CollectionOutcome{100, 0}, clock);
  EXPECT_EQ(coupled.next_app_io_threshold(), saio.next_app_io_threshold());
}

TEST(CoupledPolicyTest, BacksOffWhenLittleGarbage) {
  CoupledIoPolicy::Options opts;
  opts.io_frac = 0.10;
  opts.garbage_ref_frac = 0.10;
  opts.min_scale = 0.25;
  opts.max_scale = 1.5;
  auto est = std::make_unique<OracleEstimator>();
  OracleEstimator* oracle = est.get();
  CoupledIoPolicy policy(opts, std::move(est));

  SimClock clock = At(2000, 100, 0, 100000);
  oracle->SetGroundTruth(1000.0);  // 1% garbage vs 10% reference
  policy.OnCollection(CollectionOutcome{100, 0}, clock);
  // scale = 0.1 -> clamped to 0.25 -> effective frac 2.5%.
  EXPECT_DOUBLE_EQ(policy.last_effective_frac(), 0.025);

  oracle->SetGroundTruth(20000.0);  // 20% garbage: boost, clamped at 1.5x
  policy.OnCollection(CollectionOutcome{100, 0}, clock);
  EXPECT_DOUBLE_EQ(policy.last_effective_frac(), 0.15);
}

TEST(CoupledPolicyTest, LowerEffectiveFracMeansLongerInterval) {
  CoupledIoPolicy::Options opts;
  opts.io_frac = 0.10;
  auto est = std::make_unique<OracleEstimator>();
  OracleEstimator* oracle = est.get();
  CoupledIoPolicy policy(opts, std::move(est));
  SimClock clock = At(2000, 100, 0, 100000);

  oracle->SetGroundTruth(10000.0);  // exactly at reference: plain SAIO
  policy.OnCollection(CollectionOutcome{100, 0}, clock);
  uint64_t at_reference = policy.next_app_io_threshold() - clock.app_io;

  CoupledIoPolicy policy2(opts, std::make_unique<OracleEstimator>());
  // Estimator reads 0 garbage -> min_scale floor -> longer interval.
  policy2.OnCollection(CollectionOutcome{100, 0}, clock);
  uint64_t at_floor = policy2.next_app_io_threshold() - clock.app_io;
  EXPECT_GT(at_floor, at_reference);
}

TEST(CoupledPolicyTest, EndToEndSpendsLessIoThanSaioAtSameBudget) {
  Oo7Generator gen(Oo7Params::Tiny(), 9);
  Trace trace = gen.GenerateFullApplication();

  SimConfig saio_cfg = TinyConfig();
  saio_cfg.policy = PolicyKind::kSaio;
  saio_cfg.saio_frac = 0.15;

  SimConfig coupled_cfg = TinyConfig();
  coupled_cfg.policy = PolicyKind::kCoupled;
  coupled_cfg.estimator = EstimatorKind::kFgsHb;
  coupled_cfg.coupled.io_frac = 0.15;
  coupled_cfg.coupled.garbage_ref_frac = 0.10;

  SimResult saio = RunSimulation(saio_cfg, trace);
  SimResult coupled = RunSimulation(coupled_cfg, trace);
  // The coupled policy backs off during the low-garbage phases, so it
  // must not spend more GC I/O overall.
  EXPECT_LE(coupled.clock.gc_io, saio.clock.gc_io);
}

TEST(CoupledPolicyTest, NameDescribesConfiguration) {
  CoupledIoPolicy::Options opts;
  CoupledIoPolicy policy(opts, std::make_unique<OracleEstimator>());
  EXPECT_NE(policy.name().find("CoupledIO"), std::string::npos);
  EXPECT_NE(policy.name().find("Oracle"), std::string::npos);
}

}  // namespace
}  // namespace odbgc
