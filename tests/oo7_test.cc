#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "oo7/generator.h"
#include "oo7/params.h"
#include "storage/object_store.h"
#include "storage/reachability.h"
#include "tests/replay_test_util.h"
#include "trace/trace.h"

namespace odbgc {
namespace {

StoreConfig BigStore() {
  StoreConfig cfg;
  cfg.partition_bytes = 96 * 1024;
  cfg.page_bytes = 8 * 1024;
  cfg.buffer_pages = 12;
  return cfg;
}

TEST(Oo7ParamsTest, Table1Presets) {
  Oo7Params sp = Oo7Params::SmallPrime();
  EXPECT_EQ(sp.num_atomic_per_comp, 20u);
  EXPECT_EQ(sp.num_conn_per_atomic, 3u);
  EXPECT_EQ(sp.document_bytes, 2000u);
  EXPECT_EQ(sp.manual_kbytes, 100u);
  EXPECT_EQ(sp.num_comp_per_module, 150u);
  EXPECT_EQ(sp.num_assm_per_assm, 3u);
  EXPECT_EQ(sp.num_assm_levels, 6u);
  EXPECT_EQ(sp.num_comp_per_assm, 3u);
  EXPECT_EQ(sp.num_modules, 1u);

  Oo7Params s = Oo7Params::Small();
  EXPECT_EQ(s.num_comp_per_module, 500u);
  EXPECT_EQ(s.num_assm_levels, 7u);
}

TEST(Oo7ParamsTest, DerivedCounts) {
  Oo7Params p = Oo7Params::SmallPrime();
  // 1 + 3 + 9 + 27 + 81 + 243 = 364 assemblies, 243 leaves.
  EXPECT_EQ(p.assemblies_per_module(), 364u);
  EXPECT_EQ(p.base_assemblies_per_module(), 243u);
  EXPECT_EQ(p.doc_nodes_per_document(), 100u);
  EXPECT_EQ(p.manual_sections_per_module(), 25u);
}

TEST(Oo7ParamsTest, DatabaseSizeMatchesPaperRange) {
  // The paper: "the test database ranges from approximately 3.7 to 7.9
  // megabytes" across connectivity 3..9 (Section 3.3).
  Oo7Params p3 = Oo7Params::SmallPrime();
  double mb3 = static_cast<double>(p3.expected_database_bytes()) / 1.0e6;
  EXPECT_NEAR(mb3, 3.7, 0.25);

  Oo7Params p9 = Oo7Params::SmallPrime();
  p9.num_conn_per_atomic = 9;
  double mb9 = static_cast<double>(p9.expected_database_bytes()) / 1.0e6;
  EXPECT_NEAR(mb9, 7.9, 0.4);
}

TEST(Oo7ParamsTest, AverageObjectSizeMatchesPaper) {
  // "object size is 133 bytes on average" (Section 2.1).
  Oo7Params p = Oo7Params::SmallPrime();
  double avg = static_cast<double>(p.expected_database_bytes()) /
               static_cast<double>(p.expected_object_count());
  EXPECT_NEAR(avg, 133.0, 8.0);
}

TEST(Oo7GeneratorTest, GenDbMatchesExpectedAggregates) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 1);
  Trace trace;
  gen.GenDb(&trace);
  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  EXPECT_EQ(store.used_bytes(), p.expected_database_bytes());
  EXPECT_EQ(store.live_object_count(), p.expected_object_count());
}

TEST(Oo7GeneratorTest, GenDbCreatesNoGarbage) {
  Oo7Generator gen(Oo7Params::Tiny(), 2);
  Trace trace;
  gen.GenDb(&trace);
  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  EXPECT_EQ(store.actual_garbage_bytes(), 0u);
  ReachabilityResult r = ScanReachability(store);
  EXPECT_EQ(r.unreachable_bytes, 0u);
}

TEST(Oo7GeneratorTest, GenDbProducesBenignOverwrites) {
  // Head insertions during construction overwrite non-null pointers
  // (advancing the overwrite clock) without creating garbage.
  Oo7Generator gen(Oo7Params::Tiny(), 3);
  Trace trace;
  gen.GenDb(&trace);
  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  EXPECT_GT(store.pointer_overwrites(), 0u);
  EXPECT_EQ(store.actual_garbage_bytes(), 0u);
}

TEST(Oo7GeneratorTest, GroundTruthMarkersMatchReachabilityAfterReorg1) {
  Oo7Generator gen(Oo7Params::Tiny(), 4);
  Trace trace;
  gen.GenDb(&trace);
  gen.Reorg1(&trace);
  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  ReachabilityResult r = ScanReachability(store);
  EXPECT_EQ(r.unreachable_bytes, store.actual_garbage_bytes());
  EXPECT_GT(store.actual_garbage_bytes(), 0u);
}

TEST(Oo7GeneratorTest, GroundTruthMarkersMatchReachabilityFullApp) {
  Oo7Generator gen(Oo7Params::Tiny(), 5);
  Trace trace = gen.GenerateFullApplication();
  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  ReachabilityResult r = ScanReachability(store);
  EXPECT_EQ(r.unreachable_bytes, store.actual_garbage_bytes());
}

TEST(Oo7GeneratorTest, ReorgPreservesAtomicPopulation) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 6);
  Trace trace;
  gen.GenDb(&trace);
  size_t atomics_before = gen.live_atomic_count();
  size_t conns_before = gen.live_connection_count();
  gen.Reorg1(&trace);
  EXPECT_EQ(gen.live_atomic_count(), atomics_before);
  EXPECT_EQ(gen.live_connection_count(), conns_before);
  gen.Reorg2(&trace);
  EXPECT_EQ(gen.live_atomic_count(), atomics_before);
}

TEST(Oo7GeneratorTest, TraverseIsReadOnly) {
  Oo7Generator gen(Oo7Params::Tiny(), 7);
  Trace setup;
  gen.GenDb(&setup);
  Trace traversal;
  gen.Traverse(&traversal);
  EXPECT_GT(traversal.size(), 0u);
  for (const TraceEvent& e : traversal.events()) {
    EXPECT_EQ(e.kind, EventKind::kRead);
  }
}

TEST(Oo7GeneratorTest, TraverseVisitsEveryAtomicPart) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 8);
  Trace setup;
  gen.GenDb(&setup);
  Trace traversal;
  gen.Traverse(&traversal);
  // Gather read ids; every atomic part created in GenDB must appear.
  std::unordered_set<ObjectId> read_ids;
  for (const TraceEvent& e : traversal.events()) read_ids.insert(e.a);
  size_t atomics_seen = 0;
  for (const TraceEvent& e : setup.events()) {
    if (e.kind == EventKind::kCreate && e.b == kAtomicBytes) {
      EXPECT_TRUE(read_ids.count(e.a) > 0) << "atomic " << e.a << " missed";
      ++atomics_seen;
    }
  }
  EXPECT_EQ(atomics_seen,
            static_cast<size_t>(p.num_comp_per_module) * p.num_atomic_per_comp);
}

TEST(Oo7GeneratorTest, DeterministicForSameSeed) {
  Oo7Generator a(Oo7Params::Tiny(), 99);
  Oo7Generator b(Oo7Params::Tiny(), 99);
  Trace ta = a.GenerateFullApplication();
  Trace tb = b.GenerateFullApplication();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i], tb[i]) << "event " << i;
  }
}

TEST(Oo7GeneratorTest, DifferentSeedsDiffer) {
  Oo7Generator a(Oo7Params::Tiny(), 1);
  Oo7Generator b(Oo7Params::Tiny(), 2);
  Trace ta = a.GenerateFullApplication();
  Trace tb = b.GenerateFullApplication();
  bool differ = ta.size() != tb.size();
  if (!differ) {
    for (size_t i = 0; i < ta.size(); ++i) {
      if (!(ta[i] == tb[i])) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Oo7GeneratorTest, GarbagePerOverwriteExceedsNaiveHeuristic) {
  // Section 2.1: the static heuristic predicts ~33 bytes of garbage per
  // overwrite (133 / 4); the application actually creates several times
  // more because single overwrites detach whole clusters.
  Oo7Generator gen(Oo7Params::SmallPrime(), 10);
  Trace trace;
  gen.GenDb(&trace);
  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  uint64_t ow_before = store.pointer_overwrites();
  Trace reorg;
  gen.Reorg1(&reorg);
  ReplayIntoStore(reorg, &store);
  uint64_t overwrites = store.pointer_overwrites() - ow_before;
  double garbage_per_overwrite =
      static_cast<double>(store.actual_garbage_bytes()) /
      static_cast<double>(overwrites);
  EXPECT_GT(garbage_per_overwrite, 2.0 * (133.0 / 4.0));
}

TEST(Oo7GeneratorTest, TraverseT2EmitsUpdates) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 21);
  Trace setup;
  gen.GenDb(&setup);
  Trace t2;
  gen.TraverseT2(&t2, /*updates_per_part=*/4);
  Trace::Summary s = t2.Summarize();
  EXPECT_GT(s.updates, 0u);
  EXPECT_EQ(s.write_refs, 0u);  // attribute updates, not pointer writes
  EXPECT_EQ(s.garbage_marks, 0u);
  // 4 updates per visited part; visits = reads of atomic parts.
  EXPECT_EQ(s.updates % 4, 0u);

  // Replaying T2 dirties pages but never advances the overwrite clock.
  ObjectStore store(BigStore());
  ReplayIntoStore(setup, &store);
  uint64_t ow = store.pointer_overwrites();
  uint64_t writes_before = store.io_stats().app_writes;
  ReplayIntoStore(t2, &store);
  EXPECT_EQ(store.pointer_overwrites(), ow);
  EXPECT_GE(store.io_stats().app_writes, writes_before);
}

TEST(Oo7GeneratorTest, TraverseT6TouchesFirstAtomicOnly) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 22);
  Trace setup;
  gen.GenDb(&setup);
  Trace t1;
  gen.Traverse(&t1);
  Trace t6;
  gen.TraverseT6(&t6);
  EXPECT_GT(t6.size(), 0u);
  EXPECT_LT(t6.size(), t1.size() / 2);  // sparse vs full traversal
  for (const TraceEvent& e : t6.events()) {
    EXPECT_EQ(e.kind, EventKind::kRead);
  }
}

TEST(Oo7GeneratorTest, StructuralDeleteDetachesWholeComposites) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 23);
  Trace trace;
  gen.GenDb(&trace);
  size_t comps_before = gen.live_composite_count();
  int deleted = gen.StructuralDelete(&trace, 3);
  EXPECT_EQ(deleted, 3);
  EXPECT_EQ(gen.live_composite_count(), comps_before - 3);

  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  ReachabilityResult scan = ScanReachability(store);
  EXPECT_EQ(scan.unreachable_bytes, store.actual_garbage_bytes());
  // Each composite cluster includes the document: a "very large object"
  // detached by a handful of overwrites (the Section 2.1 remark).
  uint64_t per_comp_min =
      kCompositeBytes + p.doc_nodes_per_document() * kDocNodeBytes +
      p.num_atomic_per_comp * kAtomicBytes;
  EXPECT_GE(store.actual_garbage_bytes(), 3 * per_comp_min);
}

TEST(Oo7GeneratorTest, StructuralInsertGrowsDatabase) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 24);
  Trace trace;
  gen.GenDb(&trace);
  size_t comps_before = gen.live_composite_count();
  int inserted = gen.StructuralInsert(&trace, 4);
  EXPECT_EQ(inserted, 4);
  EXPECT_EQ(gen.live_composite_count(), comps_before + 4);

  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  // Nothing inserted is garbage.
  ReachabilityResult scan = ScanReachability(store);
  EXPECT_EQ(scan.unreachable_bytes, 0u);
  EXPECT_GT(store.used_bytes(), p.expected_database_bytes());
}

TEST(Oo7GeneratorTest, StructuralChurnRoundTripsConsistently) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 25);
  Trace trace;
  gen.GenDb(&trace);
  for (int round = 0; round < 3; ++round) {
    gen.StructuralDelete(&trace, 2);
    gen.StructuralInsert(&trace, 2);
    gen.Reorg1(&trace);  // reorganize the surviving composites too
  }
  ObjectStore store(BigStore());
  ReplayIntoStore(trace, &store);
  ReachabilityResult scan = ScanReachability(store);
  EXPECT_EQ(scan.unreachable_bytes, store.actual_garbage_bytes());
}

TEST(Oo7GeneratorTest, StructuralInsertRespectsSlotCapacity) {
  Oo7Params p = Oo7Params::Tiny();
  Oo7Generator gen(p, 26);
  Trace trace;
  gen.GenDb(&trace);
  // Tiny has 9 base assemblies x 4 spare slots = 36 insert slots.
  int inserted = gen.StructuralInsert(&trace, 1000);
  EXPECT_LE(inserted, 36);
  EXPECT_GT(inserted, 0);
}

TEST(Oo7GeneratorTest, PhaseMarksPresentInFullApplication) {
  Oo7Generator gen(Oo7Params::Tiny(), 11);
  Trace t = gen.GenerateFullApplication();
  std::vector<Phase> phases;
  for (const TraceEvent& e : t.events()) {
    if (e.kind == EventKind::kPhaseMark) {
      phases.push_back(static_cast<Phase>(e.a));
    }
  }
  ASSERT_EQ(phases.size(), 4u);
  EXPECT_EQ(phases[0], Phase::kGenDb);
  EXPECT_EQ(phases[1], Phase::kReorg1);
  EXPECT_EQ(phases[2], Phase::kTraverse);
  EXPECT_EQ(phases[3], Phase::kReorg2);
}

TEST(Oo7GeneratorTest, SmallPrimeTraceSizeIsReasonable) {
  Oo7Generator gen(Oo7Params::SmallPrime(), 12);
  Trace t = gen.GenerateFullApplication();
  Trace::Summary s = t.Summarize();
  // ~27.5k initial objects + 2 * 1500 reinserted parts (each with 3
  // connections).
  EXPECT_GT(s.creates, 27000u);
  EXPECT_LT(s.creates, 60000u);
  EXPECT_GT(s.write_refs, s.creates / 2);
  EXPECT_GT(s.reads, 10000u);
}

}  // namespace
}  // namespace odbgc
