#include <gtest/gtest.h>

#include "storage/disk_model.h"
#include "storage/object_store.h"

namespace odbgc {
namespace {

DiskParams TestDisk() {
  DiskParams p;
  p.seek_ms = 10.0;
  p.rotational_ms = 5.0;
  p.transfer_mb_per_s = 8.0;  // 1 KB page -> 0.125 ms transfer
  return p;
}

TEST(DiskModelTest, FirstTransferIsRandom) {
  DiskModel disk(TestDisk(), 1024, 16);
  disk.OnTransfer(PageId{0, 0}, IoContext::kApplication);
  EXPECT_EQ(disk.random_transfers(), 1u);
  EXPECT_EQ(disk.sequential_transfers(), 0u);
  EXPECT_NEAR(disk.app_ms(), 15.0 + 0.128, 0.01);
}

TEST(DiskModelTest, ConsecutivePagesAreSequential) {
  DiskModel disk(TestDisk(), 1024, 16);
  disk.OnTransfer(PageId{0, 0}, IoContext::kCollector);
  disk.OnTransfer(PageId{0, 1}, IoContext::kCollector);
  disk.OnTransfer(PageId{0, 2}, IoContext::kCollector);
  EXPECT_EQ(disk.random_transfers(), 1u);
  EXPECT_EQ(disk.sequential_transfers(), 2u);
  // One positioned transfer + two pure transfers.
  EXPECT_NEAR(disk.gc_ms(), 15.0 + 3 * 0.128, 0.01);
}

TEST(DiskModelTest, PartitionBoundaryIsSequentialInLba) {
  // Partition-major layout: the last page of partition p is adjacent to
  // the first page of partition p+1.
  DiskModel disk(TestDisk(), 1024, 16);
  disk.OnTransfer(PageId{0, 15}, IoContext::kApplication);
  disk.OnTransfer(PageId{1, 0}, IoContext::kApplication);
  EXPECT_EQ(disk.sequential_transfers(), 1u);
}

TEST(DiskModelTest, BackwardAccessIsRandom) {
  DiskModel disk(TestDisk(), 1024, 16);
  disk.OnTransfer(PageId{0, 5}, IoContext::kApplication);
  disk.OnTransfer(PageId{0, 4}, IoContext::kApplication);  // backward: seek
  // Re-reading page 5 right after page 4 is forward-adjacent again.
  disk.OnTransfer(PageId{0, 5}, IoContext::kApplication);
  EXPECT_EQ(disk.random_transfers(), 2u);
  EXPECT_EQ(disk.sequential_transfers(), 1u);
}

TEST(DiskModelTest, ContextSplitsAccounting) {
  DiskModel disk(TestDisk(), 1024, 16);
  disk.OnTransfer(PageId{0, 0}, IoContext::kApplication);
  disk.OnTransfer(PageId{7, 3}, IoContext::kCollector);
  EXPECT_GT(disk.app_ms(), 0.0);
  EXPECT_GT(disk.gc_ms(), 0.0);
  EXPECT_NEAR(disk.total_ms(), disk.app_ms() + disk.gc_ms(), 1e-9);
}

TEST(DiskModelTest, StoreIntegrationSequentialScanIsCheap) {
  StoreConfig cfg;
  cfg.partition_bytes = 16 * 1024;
  cfg.page_bytes = 1024;
  // Large enough that no dirty evictions interleave with the scan
  // (write-backs would move the head and break sequentiality).
  cfg.buffer_pages = 16;
  cfg.enable_disk_timing = true;
  cfg.disk = TestDisk();
  ObjectStore store(cfg);
  ASSERT_NE(store.disk_model(), nullptr);

  // Sequentially allocate 12 KB: pages touched in order -> mostly
  // sequential transfers.
  for (ObjectId id = 1; id <= 12; ++id) {
    store.CreateObject(id, 1024, 0);
  }
  const DiskModel* disk = store.disk_model();
  EXPECT_GT(disk->sequential_transfers(), disk->random_transfers());
}

TEST(DiskModelTest, DisabledByDefault) {
  StoreConfig cfg;
  ObjectStore store(cfg);
  EXPECT_EQ(store.disk_model(), nullptr);
}

TEST(DiskModelTest, RandomReadsCostMoreThanSequential) {
  StoreConfig cfg;
  cfg.partition_bytes = 16 * 1024;
  cfg.page_bytes = 1024;
  cfg.buffer_pages = 2;  // tiny buffer: every access misses
  cfg.enable_disk_timing = true;
  cfg.disk = TestDisk();

  // Sequential workload.
  ObjectStore seq(cfg);
  for (ObjectId id = 1; id <= 14; ++id) seq.CreateObject(id, 1024, 0);
  double seq_ms = seq.disk_model()->total_ms();

  // Same volume, alternating between two distant partitions.
  ObjectStore rnd(cfg);
  rnd.CreateObject(1, 16 * 1024, 0);  // fills partition 0
  rnd.CreateObject(2, 16 * 1024, 0);  // fills partition 1
  for (int i = 0; i < 6; ++i) {
    rnd.ReadObject(1);
    rnd.ReadObject(2);
  }
  double rnd_ms = rnd.disk_model()->total_ms();
  EXPECT_GT(rnd_ms, seq_ms);
}

}  // namespace
}  // namespace odbgc
