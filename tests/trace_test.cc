#include <unistd.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "trace/trace.h"

namespace odbgc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TraceEventTest, Constructors) {
  TraceEvent e = CreateEvent(7, 100, 3);
  EXPECT_EQ(e.kind, EventKind::kCreate);
  EXPECT_EQ(e.a, 7u);
  EXPECT_EQ(e.b, 100u);
  EXPECT_EQ(e.c, 3u);

  EXPECT_EQ(ReadEvent(9).kind, EventKind::kRead);
  EXPECT_EQ(WriteRefEvent(1, 2, 3).b, 2u);
  EXPECT_EQ(GarbageMarkEvent(500, 2).a, 500u);
  EXPECT_EQ(PhaseMarkEvent(Phase::kReorg1).a,
            static_cast<uint32_t>(Phase::kReorg1));
}

TEST(TraceTest, SummarizeCountsKinds) {
  Trace t;
  t.Append(CreateEvent(1, 100, 1));
  t.Append(CreateEvent(2, 50, 0));
  t.Append(ReadEvent(1));
  t.Append(WriteRefEvent(1, 0, 2));
  t.Append(GarbageMarkEvent(75, 3));
  t.Append(PhaseMarkEvent(Phase::kGenDb));
  Trace::Summary s = t.Summarize();
  EXPECT_EQ(s.creates, 2u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.write_refs, 1u);
  EXPECT_EQ(s.garbage_marks, 1u);
  EXPECT_EQ(s.created_bytes, 150u);
  EXPECT_EQ(s.ground_truth_garbage_bytes, 75u);
  EXPECT_EQ(s.ground_truth_garbage_objects, 3u);
}

TEST(TraceTest, SaveLoadRoundTrip) {
  Trace t;
  t.Append(CreateEvent(1, 100, 2));
  t.Append(AddRootEvent(1));
  t.Append(WriteRefEvent(1, 1, 0));
  t.Append(RemoveRootEvent(1));
  t.Append(PhaseMarkEvent(Phase::kTraverse));
  std::string path = TempPath("roundtrip.trace");
  ASSERT_TRUE(t.SaveTo(path));

  Trace loaded;
  ASSERT_TRUE(Trace::LoadFrom(path, &loaded));
  ASSERT_EQ(loaded.size(), t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(loaded[i], t[i]) << "event " << i;
  }
  std::remove(path.c_str());
}

TEST(TraceTest, EmptyTraceRoundTrip) {
  Trace t;
  std::string path = TempPath("empty.trace");
  ASSERT_TRUE(t.SaveTo(path));
  Trace loaded;
  ASSERT_TRUE(Trace::LoadFrom(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsMissingFile) {
  Trace t;
  EXPECT_FALSE(Trace::LoadFrom(TempPath("does_not_exist.trace"), &t));
}

TEST(TraceTest, LoadRejectsBadMagic) {
  std::string path = TempPath("garbage.trace");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a trace file at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Trace t;
  EXPECT_FALSE(Trace::LoadFrom(path, &t));
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsTruncatedFile) {
  Trace t;
  t.Append(CreateEvent(1, 100, 2));
  t.Append(CreateEvent(2, 100, 2));
  std::string path = TempPath("truncated.trace");
  ASSERT_TRUE(t.SaveTo(path));
  // Truncate the file in the middle of the second event.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 8), 0);
  Trace loaded;
  EXPECT_FALSE(Trace::LoadFrom(path, &loaded));
  std::remove(path.c_str());
}

TEST(TraceTest, PhaseNames) {
  EXPECT_EQ(PhaseName(Phase::kGenDb), "GenDB");
  EXPECT_EQ(PhaseName(Phase::kReorg1), "Reorg1");
  EXPECT_EQ(PhaseName(Phase::kTraverse), "Traverse");
  EXPECT_EQ(PhaseName(Phase::kReorg2), "Reorg2");
  EXPECT_EQ(PhaseName(Phase::kNone), "None");
}


TEST(TraceTest, ClusteringHintSurvivesRoundTrip) {
  Trace t;
  t.Append(CreateEvent(1, 100, 2));
  t.Append(CreateEvent(2, 50, 1, /*near_hint=*/1));
  t.Append(IdleMarkEvent(25));
  t.Append(UpdateEvent(1));
  std::string path = TempPath("hints.trace");
  ASSERT_TRUE(t.SaveTo(path));
  Trace loaded;
  ASSERT_TRUE(Trace::LoadFrom(path, &loaded));
  ASSERT_EQ(loaded.size(), 4u);
  EXPECT_EQ(loaded[1].d, 1u);            // the hint
  EXPECT_EQ(loaded[2].kind, EventKind::kIdleMark);
  EXPECT_EQ(loaded[2].a, 25u);
  EXPECT_EQ(loaded[3].kind, EventKind::kUpdate);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsUnknownEventKind) {
  Trace t;
  t.Append(CreateEvent(1, 100, 0));
  std::string path = TempPath("badkind.trace");
  ASSERT_TRUE(t.SaveTo(path));
  // Corrupt the event kind field (first u32 of the first record, after
  // the 16-byte header).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16, SEEK_SET);
  uint32_t bogus = 250;
  ASSERT_EQ(std::fwrite(&bogus, sizeof(bogus), 1, f), 1u);
  std::fclose(f);
  Trace loaded;
  EXPECT_FALSE(Trace::LoadFrom(path, &loaded));
  std::remove(path.c_str());
}

TEST(TraceTest, SummarizeCountsUpdates) {
  Trace t;
  t.Append(UpdateEvent(3));
  t.Append(UpdateEvent(3));
  Trace::Summary s = t.Summarize();
  EXPECT_EQ(s.updates, 2u);
  EXPECT_EQ(s.reads, 0u);
}

}  // namespace
}  // namespace odbgc
