#include <gtest/gtest.h>

#include "storage/partition.h"

namespace odbgc {
namespace {

TEST(PartitionTest, BumpAllocationTracksUsage) {
  Partition p(3, 4096);
  EXPECT_EQ(p.id(), 3u);
  EXPECT_EQ(p.capacity(), 4096u);
  EXPECT_EQ(p.used(), 0u);
  EXPECT_EQ(p.free_bytes(), 4096u);

  EXPECT_EQ(p.Allocate(10, 100), 0u);
  EXPECT_EQ(p.Allocate(11, 200), 100u);
  EXPECT_EQ(p.used(), 300u);
  EXPECT_EQ(p.free_bytes(), 3796u);
  ASSERT_EQ(p.objects().size(), 2u);
  EXPECT_EQ(p.objects()[0], 10u);
  EXPECT_EQ(p.objects()[1], 11u);
}

TEST(PartitionTest, FitsBoundary) {
  Partition p(0, 1000);
  p.Allocate(1, 999);
  EXPECT_TRUE(p.Fits(1));
  EXPECT_FALSE(p.Fits(2));
  p.Allocate(2, 1);
  EXPECT_FALSE(p.Fits(1));
  EXPECT_EQ(p.used(), 1000u);
}

TEST(PartitionTest, OverflowAborts) {
  Partition p(0, 100);
  EXPECT_DEATH(p.Allocate(1, 101), "");
}

TEST(PartitionTest, OverwriteCounterLifecycle) {
  Partition p(0, 4096);
  EXPECT_EQ(p.overwrites(), 0u);
  p.RecordOverwrite();
  p.RecordOverwrite();
  EXPECT_EQ(p.overwrites(), 2u);
  p.ResetOverwrites();
  EXPECT_EQ(p.overwrites(), 0u);
}

TEST(PartitionTest, ResetAfterCollectionReplacesState) {
  Partition p(0, 4096);
  p.Allocate(1, 100);
  p.Allocate(2, 200);
  p.Allocate(3, 300);
  p.RecordOverwrite();

  p.ResetAfterCollection({1, 3}, 400);
  EXPECT_EQ(p.used(), 400u);
  ASSERT_EQ(p.objects().size(), 2u);
  EXPECT_EQ(p.objects()[0], 1u);
  EXPECT_EQ(p.objects()[1], 3u);
  // Collection resets the FGS counter and counts itself.
  EXPECT_EQ(p.overwrites(), 0u);
  EXPECT_EQ(p.collections(), 1u);
}

TEST(PartitionTest, CollectionStamp) {
  Partition p(0, 4096);
  EXPECT_EQ(p.last_collected_stamp(), 0u);
  p.set_last_collected_stamp(17);
  EXPECT_EQ(p.last_collected_stamp(), 17u);
}

TEST(PartitionTest, AllocationAfterCompactionReusesSpace) {
  Partition p(0, 1000);
  p.Allocate(1, 600);
  p.Allocate(2, 400);
  EXPECT_FALSE(p.Fits(1));
  p.ResetAfterCollection({2}, 400);  // object 1 died; 2 compacted
  EXPECT_TRUE(p.Fits(600));
  EXPECT_EQ(p.Allocate(3, 600), 400u);
}

}  // namespace
}  // namespace odbgc
