// The self-healing storage stack: silent-corruption fault kinds
// (bit-flips, latent decay, permanent device faults), checksum-on-read
// detection through the buffer pool's corruption-event queue, the
// background scrubber, partition quarantine, and the end-to-end
// detect -> quarantine -> repair pipeline inside a simulation run
// (deterministic at any thread count, clean runs untouched).

#include <vector>

#include <gtest/gtest.h>

#include "sim/parallel.h"
#include "sim/runner.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injector.h"
#include "storage/object_store.h"
#include "storage/scrubber.h"
#include "storage/verifier.h"
#include "util/snapshot.h"

namespace odbgc {
namespace {

PageId P(PartitionId part, uint32_t page) { return PageId{part, page}; }

TEST(FaultInjectorSelfHealTest, BitflipCorruptsUntilRewriteOrHeal) {
  FaultPlan plan;
  plan.bitflip_prob = 1.0;  // every completed write flips bits
  FaultInjector inj(plan, 3);
  FaultOutcome w = inj.OnWrite(P(0, 2));
  EXPECT_TRUE(w.bitflipped);
  EXPECT_FALSE(w.torn);  // silent: nothing observable at write time
  EXPECT_EQ(inj.corrupt_page_count(), 1u);
  // Every read of the stored image fails its checksum until repair.
  EXPECT_TRUE(inj.OnRead(P(0, 2)).corrupt);
  EXPECT_TRUE(inj.OnRead(P(0, 2)).corrupt);
  // Other pages are unaffected.
  EXPECT_FALSE(inj.OnRead(P(0, 3)).corrupt);
  inj.HealPage(P(0, 2));
  EXPECT_EQ(inj.corrupt_page_count(), 0u);
  EXPECT_FALSE(inj.OnRead(P(0, 2)).corrupt);
}

TEST(FaultInjectorSelfHealTest, DecayStaysLatentUntilItsDeadline) {
  FaultPlan plan;
  plan.decay_prob = 1.0;
  plan.decay_latency = 5;
  FaultInjector inj(plan, 3);
  FaultOutcome w = inj.OnWrite(P(1, 0));  // transfer 1, rots at 6
  EXPECT_TRUE(w.decay_armed);
  EXPECT_EQ(inj.decaying_page_count(), 1u);
  // Reads before the deadline still see a good image.
  EXPECT_FALSE(inj.OnRead(P(1, 0)).corrupt);  // transfer 2
  for (uint32_t i = 0; i < 3; ++i) inj.OnRead(P(9, i));  // transfers 3..5
  // The deadline has passed: the next read of the page materializes the
  // rot as a checksum mismatch.
  FaultOutcome r = inj.OnRead(P(1, 0));  // transfer 6
  EXPECT_TRUE(r.corrupt);
  EXPECT_EQ(inj.decaying_page_count(), 0u);
  EXPECT_EQ(inj.corrupt_page_count(), 1u);
}

TEST(FaultInjectorSelfHealTest, RewriteSupersedesPendingDamage) {
  FaultPlan plan;
  plan.bitflip_prob = 1.0;
  FaultInjector inj(plan, 3);
  inj.OnWrite(P(0, 0));
  ASSERT_EQ(inj.corrupt_page_count(), 1u);
  // A later write lays down a fresh image first (clearing the old
  // corruption) and only then rolls its own dice — with probability 1
  // it corrupts again, but exactly once, not cumulatively.
  inj.OnWrite(P(0, 0));
  EXPECT_EQ(inj.corrupt_page_count(), 1u);
}

TEST(FaultInjectorSelfHealTest, DeadPartitionKillsEveryTransferUntilHealed) {
  FaultPlan plan;
  plan.dead_page_prob = 1.0;
  plan.dead_partition_prob = 1.0;
  FaultInjector inj(plan, 3);
  FaultOutcome w = inj.OnWrite(P(4, 1));
  EXPECT_TRUE(w.dead);
  EXPECT_TRUE(inj.partition_dead(4));
  // Every page of the partition is unreachable, reads and writes alike,
  // and no retry draws are consumed (the device is gone, not flaky).
  EXPECT_TRUE(inj.OnRead(P(4, 0)).dead);
  EXPECT_TRUE(inj.OnWrite(P(4, 7)).dead);
  EXPECT_FALSE(inj.OnRead(P(5, 0)).dead);
  inj.HealPartition(4);
  EXPECT_FALSE(inj.partition_dead(4));
  EXPECT_FALSE(inj.OnRead(P(4, 0)).dead);
}

TEST(FaultInjectorSelfHealTest, ChaosPlanDeterministicBySeed) {
  FaultPlan plan;
  plan.bitflip_prob = 0.3;
  plan.decay_prob = 0.2;
  plan.decay_latency = 7;
  plan.dead_page_prob = 0.05;
  plan.dead_partition_prob = 0.5;
  FaultInjector a(plan, 42);
  FaultInjector b(plan, 42);
  for (uint32_t i = 0; i < 500; ++i) {
    PageId page = P(i % 5, i % 11);
    FaultOutcome oa = i % 2 ? a.OnWrite(page) : a.OnRead(page);
    FaultOutcome ob = i % 2 ? b.OnWrite(page) : b.OnRead(page);
    ASSERT_EQ(oa.corrupt, ob.corrupt) << i;
    ASSERT_EQ(oa.bitflipped, ob.bitflipped) << i;
    ASSERT_EQ(oa.decay_armed, ob.decay_armed) << i;
    ASSERT_EQ(oa.dead, ob.dead) << i;
  }
  EXPECT_EQ(a.corrupt_page_count(), b.corrupt_page_count());
  EXPECT_EQ(a.dead_page_count(), b.dead_page_count());
  EXPECT_EQ(a.dead_partition_count(), b.dead_partition_count());
}

TEST(FaultInjectorSelfHealTest, HealthStateSurvivesSnapshotRoundTrip) {
  FaultPlan plan;
  plan.bitflip_prob = 0.4;
  plan.decay_prob = 0.3;
  plan.decay_latency = 9;
  plan.dead_page_prob = 0.1;
  plan.dead_partition_prob = 0.5;
  FaultInjector a(plan, 11);
  for (uint32_t i = 0; i < 200; ++i) a.OnWrite(P(i % 6, i % 13));

  SnapshotWriter w;
  a.SaveState(w);
  FaultInjector b(plan, 0);  // seed overwritten by the restored RNG
  SnapshotReader r(w.data());
  b.RestoreState(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(a.corrupt_page_count(), b.corrupt_page_count());
  EXPECT_EQ(a.decaying_page_count(), b.decaying_page_count());
  EXPECT_EQ(a.dead_page_count(), b.dead_page_count());
  EXPECT_EQ(a.dead_partition_count(), b.dead_partition_count());
  // The restored stream continues identically, decay clock included.
  for (uint32_t i = 0; i < 200; ++i) {
    PageId page = P(i % 6, i % 13);
    FaultOutcome oa = i % 2 ? a.OnWrite(page) : a.OnRead(page);
    FaultOutcome ob = i % 2 ? b.OnWrite(page) : b.OnRead(page);
    ASSERT_EQ(oa.corrupt, ob.corrupt) << i;
    ASSERT_EQ(oa.dead, ob.dead) << i;
  }
}

TEST(BufferPoolSelfHealTest, ChecksumMismatchQueuesTypedEvent) {
  FaultPlan plan;
  plan.bitflip_prob = 1.0;
  FaultInjector inj(plan, 1);
  BufferPool pool(1);
  pool.AttachFaultInjector(&inj);
  // Dirty page 0; evicting it performs the (silently corrupting)
  // write-back. Nothing is detected yet.
  pool.Access(P(0, 0), /*dirty=*/true, IoContext::kApplication);
  pool.Access(P(0, 1), /*dirty=*/false, IoContext::kApplication);
  EXPECT_EQ(pool.stats().bitflips, 1u);
  EXPECT_EQ(pool.stats().checksum_failures, 0u);
  EXPECT_EQ(pool.pending_corruption_count(), 0u);
  // The re-read pulls the corrupt image and fails its checksum.
  pool.Access(P(0, 0), /*dirty=*/false, IoContext::kApplication);
  EXPECT_EQ(pool.stats().checksum_failures, 1u);
  ASSERT_EQ(pool.pending_corruption_count(), 1u);
  EXPECT_TRUE(pool.HasPendingCorruption(0));
  EXPECT_FALSE(pool.HasPendingCorruption(1));
  std::vector<CorruptionEvent> events = pool.TakeCorruptionEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].page, P(0, 0));
  EXPECT_EQ(events[0].kind, CorruptionKind::kChecksum);
  EXPECT_EQ(pool.pending_corruption_count(), 0u);
}

TEST(BufferPoolSelfHealTest, CachedHitsNeverConsultTheMedia) {
  FaultPlan plan;
  plan.bitflip_prob = 1.0;
  FaultInjector inj(plan, 1);
  BufferPool pool(4);
  pool.AttachFaultInjector(&inj);
  pool.Access(P(0, 0), /*dirty=*/true, IoContext::kApplication);
  // Repeated hits on the resident page are RAM reads: no transfer, no
  // checksum verification, no detection — the dirty (good) copy shields
  // the application until write-back.
  for (int i = 0; i < 10; ++i) {
    pool.Access(P(0, 0), /*dirty=*/false, IoContext::kApplication);
  }
  EXPECT_EQ(pool.stats().checksum_failures, 0u);
  EXPECT_EQ(pool.pending_corruption_count(), 0u);
}

// A store whose every write-back corrupts the stored image, for scrub
// and quarantine fixtures.
StoreConfig BitflipStoreConfig() {
  StoreConfig config;
  config.partition_bytes = 8 * 1024;
  config.page_bytes = 1024;
  config.buffer_pages = 12;
  config.fault.bitflip_prob = 1.0;
  return config;
}

TEST(ScrubberTest, FindsLatentCorruptionAndReportsItAsScrub) {
  ObjectStore store(BitflipStoreConfig());
  for (ObjectId id = 1; id <= 20; ++id) store.CreateObject(id, 512, 2);
  ASSERT_GT(store.partition_count(), 1u);
  // Flush everything: each written page's stored image is now silently
  // corrupt, while the cached copies stay good.
  store.buffer_pool().FlushAll(IoContext::kApplication);
  const size_t corrupt_pages =
      store.mutable_fault_injector()->corrupt_page_count();
  ASSERT_GT(corrupt_pages, 0u);

  // One full lap over the database: budget = total used pages, so every
  // corrupt page is read exactly once.
  uint32_t used_pages = 0;
  const uint32_t page_bytes = store.config().page_bytes;
  for (PartitionId p = 0; p < store.partition_count(); ++p) {
    used_pages += (store.partition(p).used() + page_bytes - 1) / page_bytes;
  }
  Scrubber scrubber;
  ScrubReport rep = scrubber.ScrubQuantum(store, used_pages);
  EXPECT_EQ(rep.pages_scrubbed, used_pages);
  EXPECT_EQ(rep.corruption_found, corrupt_pages);  // all latent damage
  // Every detection is typed as a scrub find, not a demand-read one.
  for (const CorruptionEvent& e :
       store.buffer_pool().TakeCorruptionEvents()) {
    EXPECT_EQ(e.kind, CorruptionKind::kScrub);
  }
}

TEST(ScrubberTest, DeterministicCursorAndSnapshotRoundTrip) {
  ObjectStore store(BitflipStoreConfig());
  for (ObjectId id = 1; id <= 20; ++id) store.CreateObject(id, 512, 2);
  Scrubber a;
  a.ScrubQuantum(store, 7);
  SnapshotWriter w;
  a.SaveState(w);
  Scrubber b;
  SnapshotReader r(w.data());
  b.RestoreState(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(a.cursor_partition(), b.cursor_partition());
  EXPECT_EQ(a.cursor_page(), b.cursor_page());
}

TEST(ScrubberTest, SkipsQuarantinedPartitionsForFree) {
  StoreConfig config = BitflipStoreConfig();
  config.fault.bitflip_prob = 0.0;  // healthy media
  ObjectStore store(config);
  for (ObjectId id = 1; id <= 20; ++id) store.CreateObject(id, 512, 2);
  const uint64_t reads_before = store.io_stats().gc_reads;
  for (PartitionId p = 0; p < store.partition_count(); ++p) {
    store.QuarantinePartition(p);
  }
  Scrubber scrubber;
  ScrubReport rep = scrubber.ScrubQuantum(store, 100);
  EXPECT_EQ(rep.pages_scrubbed, 0u);
  EXPECT_EQ(store.io_stats().gc_reads, reads_before);
}

TEST(QuarantineTest, ExcludesPartitionFromAllocationAndByteAccounting) {
  StoreConfig config;
  config.partition_bytes = 8 * 1024;
  config.page_bytes = 1024;
  config.buffer_pages = 12;
  ObjectStore store(config);
  store.CreateObject(1, 1024, 0);
  const PartitionId home = store.object(1).partition;
  ASSERT_FALSE(store.IsQuarantined(home));
  EXPECT_EQ(store.quarantined_used_bytes(), 0u);

  ASSERT_TRUE(store.QuarantinePartition(home));
  EXPECT_FALSE(store.QuarantinePartition(home));  // already out of service
  EXPECT_TRUE(store.IsQuarantined(home));
  EXPECT_EQ(store.quarantined_count(), 1u);
  EXPECT_GT(store.quarantined_used_bytes(), 0u);
  // New allocations avoid the quarantined partition even though it has
  // plenty of free space.
  store.CreateObject(2, 1024, 0);
  EXPECT_NE(store.object(2).partition, home);

  store.ReleasePartition(home);
  EXPECT_FALSE(store.IsQuarantined(home));
  EXPECT_EQ(store.quarantined_count(), 0u);
  EXPECT_EQ(store.quarantined_used_bytes(), 0u);
}

TEST(QuarantineTest, RebuildDerivedStatePassesTheVerifier) {
  StoreConfig config;
  config.partition_bytes = 8 * 1024;
  config.page_bytes = 1024;
  config.buffer_pages = 12;
  ObjectStore store(config);
  for (ObjectId id = 1; id <= 12; ++id) store.CreateObject(id, 400, 3);
  for (ObjectId id = 1; id < 12; ++id) store.WriteRef(id, 0, id + 1);
  store.WriteRef(12, 0, 1);
  VerifierOptions options;
  options.check_reachability_agreement = false;
  ASSERT_TRUE(VerifyHeap(store, options).ok());
  // Rebuilding from the primary slot arena must reproduce exactly the
  // derived state incremental maintenance has been keeping.
  store.RebuildDerivedState();
  VerifierReport vr = VerifyHeap(store, options);
  EXPECT_TRUE(vr.ok()) << vr.Summary();
}

// A chaos SimConfig small enough for unit tests: silent corruption of
// every kind plus the scrubber and auto-repair.
SimConfig ChaosConfig() {
  SimConfig cfg;
  cfg.store.partition_bytes = 16 * 1024;
  cfg.store.page_bytes = 2 * 1024;
  cfg.store.buffer_pages = 8;
  cfg.preamble_collections = 3;
  cfg.policy = PolicyKind::kSaga;
  cfg.saga.garbage_frac = 0.10;
  cfg.store.fault.bitflip_prob = 0.01;
  cfg.store.fault.decay_prob = 0.005;
  cfg.store.fault.decay_latency = 32;
  cfg.store.fault.dead_page_prob = 0.002;
  cfg.store.fault.dead_partition_prob = 0.2;
  cfg.scrub_interval_events = 64;
  cfg.scrub_pages_per_quantum = 8;
  return cfg;
}

TEST(SelfHealingEndToEndTest, ChaosRunDetectsQuarantinesAndRepairs) {
  SimResult r = RunOo7Once(ChaosConfig(), Oo7Params::Tiny(), 3);
  // The plan's rates are high enough that the run exercised injection,
  // detection and the repair pipeline.
  EXPECT_GT(r.bitflips_injected + r.decays_armed + r.device_faults, 0u);
  EXPECT_GT(r.checksum_failures + r.device_faults, 0u);
  EXPECT_GT(r.pages_scrubbed, 0u);
  EXPECT_GT(r.partitions_quarantined, 0u);
  // End-of-run repair guarantees nothing stays out of service, and the
  // log records one entry per quarantine with a closed repair window.
  EXPECT_EQ(r.partitions_quarantined, r.partitions_repaired);
  ASSERT_EQ(r.quarantine_log.size(), r.partitions_quarantined);
  for (const QuarantineEvent& e : r.quarantine_log) {
    EXPECT_GT(e.detected_event, 0u);
    EXPECT_GE(e.repaired_event, e.detected_event);
  }
  EXPECT_GT(r.repair_pages_rewritten, 0u);
}

TEST(SelfHealingEndToEndTest, ChaosSweepsMatchAcrossThreadCounts) {
  SimConfig cfg = ChaosConfig();
  Oo7Params params = Oo7Params::Tiny();
  AggregateResult serial = RunOo7Many(cfg, params, 100, 6, /*threads=*/1);
  AggregateResult parallel = RunOo7Many(cfg, params, 100, 6, /*threads=*/4);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (size_t i = 0; i < serial.runs.size(); ++i) {
    const SimResult& a = serial.runs[i];
    const SimResult& b = parallel.runs[i];
    EXPECT_EQ(a.collections, b.collections) << i;
    EXPECT_EQ(a.clock.app_io, b.clock.app_io) << i;
    EXPECT_EQ(a.clock.gc_io, b.clock.gc_io) << i;
    EXPECT_EQ(a.checksum_failures, b.checksum_failures) << i;
    EXPECT_EQ(a.pages_scrubbed, b.pages_scrubbed) << i;
    EXPECT_EQ(a.scrub_detections, b.scrub_detections) << i;
    EXPECT_EQ(a.partitions_quarantined, b.partitions_quarantined) << i;
    EXPECT_EQ(a.partitions_repaired, b.partitions_repaired) << i;
    EXPECT_EQ(a.repair_pages_rewritten, b.repair_pages_rewritten) << i;
    EXPECT_EQ(a.collections_aborted_corrupt,
              b.collections_aborted_corrupt) << i;
    ASSERT_EQ(a.quarantine_log.size(), b.quarantine_log.size()) << i;
    for (size_t j = 0; j < a.quarantine_log.size(); ++j) {
      EXPECT_EQ(a.quarantine_log[j].detected_event,
                b.quarantine_log[j].detected_event) << i << "," << j;
      EXPECT_EQ(a.quarantine_log[j].partition,
                b.quarantine_log[j].partition) << i << "," << j;
      EXPECT_EQ(a.quarantine_log[j].repaired_event,
                b.quarantine_log[j].repaired_event) << i << "," << j;
    }
  }
}

TEST(SelfHealingEndToEndTest, ScrubbingHealthyMediaDetectsNothing) {
  SimConfig cfg = ChaosConfig();
  cfg.store.fault = FaultPlan{};  // healthy media, scrubber still on
  SimResult r = RunOo7Once(cfg, Oo7Params::Tiny(), 3);
  EXPECT_GT(r.pages_scrubbed, 0u);
  EXPECT_EQ(r.scrub_detections, 0u);
  EXPECT_EQ(r.checksum_failures, 0u);
  EXPECT_EQ(r.partitions_quarantined, 0u);
  EXPECT_EQ(r.collections_aborted_corrupt, 0u);
  EXPECT_TRUE(r.quarantine_log.empty());
}

}  // namespace
}  // namespace odbgc
