#include <gtest/gtest.h>

#include "core/alloc_triggered.h"
#include "core/fixed_rate.h"

namespace odbgc {
namespace {

TEST(FixedRatePolicyTest, TriggersEveryNOverwrites) {
  FixedRatePolicy policy(100);
  SimClock clock;
  clock.pointer_overwrites = 99;
  EXPECT_FALSE(policy.ShouldCollect(clock));
  clock.pointer_overwrites = 100;
  EXPECT_TRUE(policy.ShouldCollect(clock));
}

TEST(FixedRatePolicyTest, ReschedulesFromCollectionTime) {
  FixedRatePolicy policy(100);
  SimClock clock;
  clock.pointer_overwrites = 130;  // collection happened late
  policy.OnCollection(CollectionOutcome{}, clock);
  clock.pointer_overwrites = 229;
  EXPECT_FALSE(policy.ShouldCollect(clock));
  clock.pointer_overwrites = 230;
  EXPECT_TRUE(policy.ShouldCollect(clock));
}

TEST(FixedRatePolicyTest, IgnoresIoCounters) {
  FixedRatePolicy policy(10);
  SimClock clock;
  clock.app_io = 1000000;
  clock.gc_io = 1000000;
  EXPECT_FALSE(policy.ShouldCollect(clock));
}

TEST(FixedRatePolicyTest, Name) {
  FixedRatePolicy policy(200);
  EXPECT_EQ(policy.name(), "FixedRate(200)");
  EXPECT_EQ(policy.overwrites_per_collection(), 200u);
}

TEST(ConnectivityHeuristicTest, ReproducesPaperDerivation) {
  // Section 2.1: connectivity 4, 133-byte objects, 96 KB partitions
  // "an obvious choice ... collect every 2956 pointer overwrites".
  EXPECT_EQ(ConnectivityHeuristicPolicy::DeriveInterval(4.0, 133.0,
                                                        96 * 1024),
            2956u);
}

TEST(ConnectivityHeuristicTest, BehavesAsFixedRateAtDerivedInterval) {
  ConnectivityHeuristicPolicy policy(4.0, 133.0, 96 * 1024);
  EXPECT_EQ(policy.overwrites_per_collection(), 2956u);
  SimClock clock;
  clock.pointer_overwrites = 2955;
  EXPECT_FALSE(policy.ShouldCollect(clock));
  clock.pointer_overwrites = 2956;
  EXPECT_TRUE(policy.ShouldCollect(clock));
  EXPECT_EQ(policy.name(), "ConnectivityHeuristic");
}

TEST(ConnectivityHeuristicTest, ScalesWithPartitionSize) {
  uint64_t small = ConnectivityHeuristicPolicy::DeriveInterval(4.0, 133.0,
                                                               48 * 1024);
  uint64_t large = ConnectivityHeuristicPolicy::DeriveInterval(4.0, 133.0,
                                                               96 * 1024);
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 2.0,
              0.01);
}


TEST(AllocationRatePolicyTest, TriggersOnAllocatedBytes) {
  AllocationRatePolicy policy(1000);
  SimClock c;
  c.bytes_allocated = 999;
  EXPECT_FALSE(policy.ShouldCollect(c));
  c.bytes_allocated = 1000;
  EXPECT_TRUE(policy.ShouldCollect(c));
  policy.OnCollection(CollectionOutcome{}, c);
  EXPECT_FALSE(policy.ShouldCollect(c));
  c.bytes_allocated = 2000;
  EXPECT_TRUE(policy.ShouldCollect(c));
}

TEST(AllocationRatePolicyTest, IgnoresOverwritesEntirely) {
  AllocationRatePolicy policy(1000);
  SimClock c;
  c.pointer_overwrites = 1000000;  // heavy deletion, no allocation
  EXPECT_FALSE(policy.ShouldCollect(c));
}

TEST(AllocationRatePolicyTest, Name) {
  AllocationRatePolicy policy(4096);
  EXPECT_EQ(policy.name(), "AllocationRate(4096B)");
}

TEST(AllocationTriggeredPolicyTest, FiresOnDatabaseGrowth) {
  AllocationTriggeredPolicy policy;
  SimClock c;
  c.partitions = 1;
  EXPECT_TRUE(policy.ShouldCollect(c));  // first partition = growth
  policy.OnCollection(CollectionOutcome{}, c);
  EXPECT_FALSE(policy.ShouldCollect(c));
  c.partitions = 2;
  EXPECT_TRUE(policy.ShouldCollect(c));
}

TEST(AllocationTriggeredPolicyTest, QuietWhileDatabaseStable) {
  AllocationTriggeredPolicy policy;
  SimClock c;
  c.partitions = 3;
  policy.OnCollection(CollectionOutcome{}, c);
  c.bytes_allocated = 1 << 20;  // churn reusing freed space: no growth
  c.pointer_overwrites = 50000;
  EXPECT_FALSE(policy.ShouldCollect(c));
}

}  // namespace
}  // namespace odbgc
