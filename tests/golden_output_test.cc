// Byte-identical-output regression harness (the oracle for data-structure
// swaps in the storage/GC core): replays a small OO7 trace through SAIO
// and SAGA and compares the full SimResultToJson output — collection log
// included — against a committed golden file. Any change to placement
// decisions, marking order, I/O accounting, or policy scheduling shows up
// as a byte diff here.
//
// The golden files were generated from the pre-overhaul (seed) structures;
// passing this test means the current structures reproduce those results
// bit for bit. To regenerate after an *intentional* behavior change, run
// with ODBGC_UPDATE_GOLDEN=1 in the environment and commit the diff.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "oo7/generator.h"
#include "sim/report.h"
#include "sim/simulation.h"

#ifndef ODBGC_GOLDEN_DIR
#error "ODBGC_GOLDEN_DIR must be defined by the build"
#endif

namespace odbgc {
namespace {

// build_info (git sha, build type) legitimately differs between builds;
// everything before it must not. It is always the final member.
std::string StripBuildInfo(const std::string& json) {
  size_t pos = json.rfind(",\"build_info\":");
  if (pos == std::string::npos) return json;
  return json.substr(0, pos) + "}";
}

std::string GoldenPath(const std::string& name) {
  return std::string(ODBGC_GOLDEN_DIR) + "/" + name;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void CheckAgainstGolden(const std::string& name, const std::string& json) {
  const std::string path = GoldenPath(name);
  if (std::getenv("ODBGC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << json << "\n";
    GTEST_SKIP() << "regenerated " << path;
  }
  std::string golden;
  ASSERT_TRUE(ReadFile(path, &golden))
      << "missing golden file " << path
      << " (run with ODBGC_UPDATE_GOLDEN=1 to create it)";
  // The committed file ends with a trailing newline.
  ASSERT_FALSE(golden.empty());
  if (golden.back() == '\n') golden.pop_back();
  EXPECT_EQ(json, golden)
      << "simulation output diverged from the committed golden result; "
         "the core data structures are no longer byte-identical";
}

// Small' is the paper's configuration: big enough that SAIO and SAGA
// both schedule dozens of collections (the golden must cover marking,
// relocation, remembered-set updates, and buffer-pool eviction, not just
// the mutator path), small enough to replay in well under a second.
Trace SmallPrimeTrace() {
  Oo7Generator gen(Oo7Params::SmallPrime(), /*seed=*/7);
  return gen.GenerateFullApplication();
}

TEST(GoldenOutputTest, SaioSmallPrimeTraceIsByteIdentical) {
  SimConfig cfg;
  cfg.policy = PolicyKind::kSaio;
  cfg.saio_frac = 0.10;
  SimResult result = RunSimulation(cfg, SmallPrimeTrace());
  EXPECT_GT(result.collections, 10u);  // the oracle must exercise the GC
  CheckAgainstGolden("saio_small_prime_oo7.json",
                     StripBuildInfo(SimResultToJson(result)));
}

TEST(GoldenOutputTest, SagaSmallPrimeTraceIsByteIdentical) {
  SimConfig cfg;
  cfg.policy = PolicyKind::kSaga;
  cfg.estimator = EstimatorKind::kFgsHb;
  cfg.saga.garbage_frac = 0.10;
  SimResult result = RunSimulation(cfg, SmallPrimeTrace());
  EXPECT_GT(result.collections, 10u);
  CheckAgainstGolden("saga_small_prime_oo7.json",
                     StripBuildInfo(SimResultToJson(result)));
}

// The verifier-instrumented run must agree too: collections verified
// after every collection catch mid-run structure desyncs that final
// aggregates could mask.
TEST(GoldenOutputTest, SagaWithPerCollectionVerifierMatchesPlainRun) {
  SimConfig cfg;
  cfg.policy = PolicyKind::kSaga;
  cfg.estimator = EstimatorKind::kFgsHb;
  cfg.saga.garbage_frac = 0.10;
  SimResult plain = RunSimulation(cfg, SmallPrimeTrace());
  cfg.verify_after_collection = true;
  SimResult verified = RunSimulation(cfg, SmallPrimeTrace());
  // verifier_runs differ by construction; compare the simulation outputs.
  verified.verifier_runs = plain.verifier_runs;
  EXPECT_EQ(StripBuildInfo(SimResultToJson(plain)),
            StripBuildInfo(SimResultToJson(verified)));
}

}  // namespace
}  // namespace odbgc
