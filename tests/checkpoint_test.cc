// Durable checkpoint/restore tests.
//
// The recovery oracle throughout: a run that checkpoints, "dies" (via
// FaultPlan::crash_at_event), and resumes must produce a final report
// byte-identical to the same run left uninterrupted. SimResultToJson is
// the comparison surface because it is exactly what the figure tooling
// consumes.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "oo7/params.h"
#include "sim/checkpoint.h"
#include "sim/errors.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "sim/simulation.h"
#include "util/snapshot.h"

namespace odbgc {
namespace {

constexpr size_t kHeaderSize = 48;

SimConfig TinySagaConfig() {
  SimConfig cfg;
  cfg.store.partition_bytes = 16 * 1024;
  cfg.store.page_bytes = 2 * 1024;
  cfg.store.buffer_pages = 8;
  cfg.preamble_collections = 3;
  cfg.policy = PolicyKind::kSaga;
  cfg.estimator = EstimatorKind::kFgsHb;
  cfg.fgs_history_factor = 0.8;
  cfg.saga.garbage_frac = 0.10;
  return cfg;
}

SimConfig TinySaioConfig() {
  SimConfig cfg;
  cfg.store.partition_bytes = 16 * 1024;
  cfg.store.page_bytes = 2 * 1024;
  cfg.store.buffer_pages = 8;
  cfg.preamble_collections = 3;
  cfg.policy = PolicyKind::kSaio;
  cfg.saio_frac = 0.10;
  return cfg;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "odbgc_" + name;
}

void RemoveCheckpointFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".tmp").c_str());
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return std::string();
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void PatchU32(std::string* bytes, size_t offset, uint32_t v) {
  ASSERT_LE(offset + 4, bytes->size());
  (*bytes)[offset + 0] = static_cast<char>(v & 0xff);
  (*bytes)[offset + 1] = static_cast<char>((v >> 8) & 0xff);
  (*bytes)[offset + 2] = static_cast<char>((v >> 16) & 0xff);
  (*bytes)[offset + 3] = static_cast<char>((v >> 24) & 0xff);
}

// A simulation advanced to exactly `k` applied trace events.
std::unique_ptr<Simulation> SimAtEvent(const SimConfig& cfg,
                                       const Trace& trace, uint64_t k) {
  auto sim = std::make_unique<Simulation>(cfg);
  for (uint64_t i = 0; i < k; ++i) sim->Apply(trace[i]);
  return sim;
}

// --- snapshot primitives -------------------------------------------------

TEST(SnapshotTest, RoundTripsEveryPrimitive) {
  SnapshotWriter w;
  w.Tag("TEST");
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.F64(-1234.5678901234);
  w.Bool(true);
  w.Str("hello snapshot");
  w.VecU64({1, 2, 3});

  SnapshotReader r(w.data());
  r.Tag("TEST");
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.F64(), -1234.5678901234);  // bit-exact, not approximate
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Str(), "hello snapshot");
  EXPECT_EQ(r.VecU64(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotTest, ReaderLatchesOnBadTagAndShortInput) {
  SnapshotWriter w;
  w.Tag("GOOD");
  w.U32(7);
  SnapshotReader r(w.data());
  r.Tag("EVIL");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // reads after failure return zero

  SnapshotReader short_r("\x01\x02", 2);
  short_r.U64();
  EXPECT_FALSE(short_r.ok());
}

TEST(SnapshotTest, Crc32MatchesKnownVector) {
  // The classic IEEE CRC-32 check value.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, 9), 0xCBF43926u);
}

// --- config fingerprint --------------------------------------------------

TEST(CheckpointTest, FingerprintIgnoresCrashScheduleSeedsAndDeadline) {
  SimConfig base = TinySaioConfig();
  const uint64_t fp = ConfigFingerprint(base);

  SimConfig crash = base;
  crash.store.fault.crash_at_event = 1234;
  EXPECT_EQ(ConfigFingerprint(crash), fp);

  SimConfig deadline = base;
  deadline.deadline_ms = 5000.0;
  EXPECT_EQ(ConfigFingerprint(deadline), fp);

  SimConfig seeds = base;
  seeds.selector_seed = 99;
  seeds.store.fault.seed = 77;
  EXPECT_EQ(ConfigFingerprint(seeds), fp);
}

TEST(CheckpointTest, FingerprintCoversBehaviorFields) {
  SimConfig base = TinySaioConfig();
  const uint64_t fp = ConfigFingerprint(base);

  SimConfig frac = base;
  frac.saio_frac = 0.20;
  EXPECT_NE(ConfigFingerprint(frac), fp);

  SimConfig policy = base;
  policy.policy = PolicyKind::kSaga;
  EXPECT_NE(ConfigFingerprint(policy), fp);

  SimConfig store = base;
  store.store.partition_bytes = 32 * 1024;
  EXPECT_NE(ConfigFingerprint(store), fp);
}

// --- write / resume round trip -------------------------------------------

TEST(CheckpointTest, WriteAndResumeRoundTripIsByteIdentical) {
  const Oo7Params params = Oo7Params::Tiny();
  std::shared_ptr<const Trace> trace = GenerateOo7Trace(params, 7);
  SimConfig cfg = TinySaioConfig();
  ApplyRunSeeds(&cfg, 7);

  const std::string golden = SimResultToJson(Simulation(cfg).Run(*trace));

  const std::string ckpt = TempPath("roundtrip.ckpt");
  RemoveCheckpointFiles(ckpt);
  const uint64_t k = trace->size() / 2;
  std::unique_ptr<Simulation> half = SimAtEvent(cfg, *trace, k);
  ASSERT_EQ(WriteCheckpoint(*half, ckpt), CheckpointError::kNone);

  ResumeResult rr = ResumeFromCheckpoint(cfg, ckpt);
  ASSERT_TRUE(rr.ok()) << CheckpointErrorName(rr.error);
  EXPECT_FALSE(rr.used_fallback);
  EXPECT_EQ(rr.loaded_path, ckpt);
  EXPECT_EQ(rr.events_applied, k);
  ASSERT_NE(rr.sim, nullptr);
  EXPECT_EQ(rr.sim->events_applied(), k);

  SimResult resumed = rr.sim->RunFrom(*trace, "", 0);
  EXPECT_EQ(SimResultToJson(resumed), golden);
  RemoveCheckpointFiles(ckpt);
}

TEST(CheckpointTest, MissingFileReportsOpenFailed) {
  SimConfig cfg = TinySaioConfig();
  ResumeResult rr = ResumeFromCheckpoint(cfg, TempPath("does_not_exist"));
  EXPECT_FALSE(rr.ok());
  EXPECT_EQ(rr.error, CheckpointError::kOpenFailed);
  EXPECT_EQ(rr.sim, nullptr);
}

TEST(CheckpointTest, WriteToUnwritablePathReportsOpenFailed) {
  const Oo7Params params = Oo7Params::Tiny();
  std::shared_ptr<const Trace> trace = GenerateOo7Trace(params, 3);
  SimConfig cfg = TinySaioConfig();
  ApplyRunSeeds(&cfg, 3);
  std::unique_ptr<Simulation> sim = SimAtEvent(cfg, *trace, 10);
  EXPECT_EQ(WriteCheckpoint(*sim, "/nonexistent_odbgc_dir/x.ckpt"),
            CheckpointError::kOpenFailed);
}

TEST(CheckpointTest, RunFromRaisesTypedErrorOnCheckpointWriteFailure) {
  const Oo7Params params = Oo7Params::Tiny();
  std::shared_ptr<const Trace> trace = GenerateOo7Trace(params, 3);
  SimConfig cfg = TinySaioConfig();
  ApplyRunSeeds(&cfg, 3);
  Simulation sim(cfg);
  EXPECT_THROW(sim.RunFrom(*trace, "/nonexistent_odbgc_dir/x.ckpt", 64),
               SimCheckpointWriteError);
}

// --- crash injection + resume (the tentpole oracle) ----------------------

// Runs the full crash → restore → replay cycle for one config and asserts
// the resumed report is byte-identical to the uninterrupted one.
void ExpectCrashResumeIdentical(SimConfig cfg, const std::string& tag) {
  const Oo7Params params = Oo7Params::Tiny();
  const uint64_t seed = 11;
  std::shared_ptr<const Trace> trace = GenerateOo7Trace(params, seed);
  ApplyRunSeeds(&cfg, seed);

  const std::string golden = SimResultToJson(Simulation(cfg).Run(*trace));

  const std::string ckpt = TempPath(tag + ".ckpt");
  RemoveCheckpointFiles(ckpt);
  const uint64_t checkpoint_every = 257;
  const uint64_t kill = trace->size() / 2;
  ASSERT_GT(kill, checkpoint_every);  // at least one checkpoint lands

  SimConfig crash_cfg = cfg;
  crash_cfg.store.fault.crash_at_event = kill;
  Simulation victim(crash_cfg);
  bool crashed = false;
  try {
    victim.RunFrom(*trace, ckpt, checkpoint_every);
  } catch (const SimCrashInjected& e) {
    crashed = true;
    EXPECT_EQ(e.at_event(), kill);
  }
  ASSERT_TRUE(crashed);

  // Restore WITHOUT the crash schedule (it is excluded from the config
  // fingerprint precisely so the resumed run can drop it).
  ResumeResult rr = ResumeFromCheckpoint(cfg, ckpt);
  ASSERT_TRUE(rr.ok()) << CheckpointErrorName(rr.error);
  EXPECT_GT(rr.events_applied, 0u);
  EXPECT_LT(rr.events_applied, kill);  // the kill-event boundary never wrote
  SimResult resumed = rr.sim->RunFrom(*trace, ckpt, checkpoint_every);
  EXPECT_EQ(SimResultToJson(resumed), golden) << tag;
  RemoveCheckpointFiles(ckpt);
}

TEST(CheckpointTest, SaioCrashResumeIsByteIdentical) {
  ExpectCrashResumeIdentical(TinySaioConfig(), "saio_crash");
}

TEST(CheckpointTest, SagaCrashResumeIsByteIdentical) {
  ExpectCrashResumeIdentical(TinySagaConfig(), "saga_crash");
}

// Crash-anywhere fuzzing: 50 deterministic pseudo-random kill points
// spread over the whole trace, each followed by restore + replay and a
// byte-identical comparison against the uninterrupted golden report.
TEST(RecoveryFuzzTest, FiftyRandomKillPointsAllResumeByteIdentical) {
  const Oo7Params params = Oo7Params::Tiny();
  const uint64_t seed = 23;
  std::shared_ptr<const Trace> trace = GenerateOo7Trace(params, seed);
  SimConfig cfg = TinySagaConfig();
  ApplyRunSeeds(&cfg, seed);

  const std::string golden = SimResultToJson(Simulation(cfg).Run(*trace));
  const uint64_t n = trace->size();
  ASSERT_GT(n, 2u);

  const std::string ckpt = TempPath("fuzz.ckpt");
  const uint64_t checkpoint_every = 101;
  uint64_t rng = 0x9E3779B97F4A7C15ull;  // fixed: kill points must be stable
  int resumed_from_checkpoint = 0;
  for (int round = 0; round < 50; ++round) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t kill = 1 + (rng >> 33) % (n - 1);
    RemoveCheckpointFiles(ckpt);

    SimConfig crash_cfg = cfg;
    crash_cfg.store.fault.crash_at_event = kill;
    Simulation victim(crash_cfg);
    bool crashed = false;
    try {
      victim.RunFrom(*trace, ckpt, checkpoint_every);
    } catch (const SimCrashInjected&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "kill=" << kill;

    // Resume if any checkpoint landed before the kill; otherwise the
    // whole run replays from scratch — both must match the golden.
    ResumeResult rr = ResumeFromCheckpoint(cfg, ckpt);
    std::unique_ptr<Simulation> sim;
    if (rr.ok()) {
      ++resumed_from_checkpoint;
      sim = std::move(rr.sim);
    } else {
      EXPECT_EQ(rr.error, CheckpointError::kOpenFailed) << "kill=" << kill;
      sim = std::make_unique<Simulation>(cfg);
    }
    SimResult result = sim->RunFrom(*trace, "", 0);
    EXPECT_EQ(SimResultToJson(result), golden) << "kill=" << kill;
  }
  // The kill points span the trace, so most rounds really exercised the
  // restore path (only kills before the first checkpoint start fresh).
  EXPECT_GT(resumed_from_checkpoint, 25);
  RemoveCheckpointFiles(ckpt);
}

// --- corrupt-checkpoint corpora ------------------------------------------

class CorruptCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = GenerateOo7Trace(Oo7Params::Tiny(), 5);
    cfg_ = TinySaioConfig();
    ApplyRunSeeds(&cfg_, 5);
    path_ = TempPath("corrupt.ckpt");
    RemoveCheckpointFiles(path_);
    std::unique_ptr<Simulation> sim =
        SimAtEvent(cfg_, *trace_, trace_->size() / 2);
    ASSERT_EQ(WriteCheckpoint(*sim, path_), CheckpointError::kNone);
    good_ = ReadFileBytes(path_);
    ASSERT_GT(good_.size(), kHeaderSize + 8);
  }

  void TearDown() override { RemoveCheckpointFiles(path_); }

  // Writes `bytes` as the checkpoint (no .prev beside it) and asserts the
  // typed load error.
  void ExpectLoadError(const std::string& bytes, CheckpointError want) {
    RemoveCheckpointFiles(path_);
    WriteFileBytes(path_, bytes);
    ResumeResult rr = ResumeFromCheckpoint(cfg_, path_);
    EXPECT_FALSE(rr.ok());
    EXPECT_EQ(rr.error, want)
        << "got " << CheckpointErrorName(rr.error) << ", want "
        << CheckpointErrorName(want);
    EXPECT_EQ(rr.sim, nullptr);
  }

  std::shared_ptr<const Trace> trace_;
  SimConfig cfg_;
  std::string path_;
  std::string good_;  // a pristine checkpoint image
};

TEST_F(CorruptCheckpointTest, TruncatedShortFile) {
  ExpectLoadError(good_.substr(0, 10), CheckpointError::kTruncated);
}

TEST_F(CorruptCheckpointTest, TruncatedMidPayload) {
  ExpectLoadError(good_.substr(0, good_.size() / 2),
                  CheckpointError::kTruncated);
}

TEST_F(CorruptCheckpointTest, WrongMagic) {
  std::string bad = good_;
  bad.replace(0, 8, "NOTACKPT");
  ExpectLoadError(bad, CheckpointError::kBadMagic);
}

TEST_F(CorruptCheckpointTest, HeaderBitFlip) {
  std::string bad = good_;
  bad[20] = static_cast<char>(bad[20] ^ 0x40);  // inside config_hash
  ExpectLoadError(bad, CheckpointError::kBadHeaderCrc);
}

TEST_F(CorruptCheckpointTest, StaleVersionWithValidCrcs) {
  // A legitimately written file from a future format version: patch the
  // version field and recompute the header CRC so only the version check
  // can reject it.
  std::string bad = good_;
  PatchU32(&bad, 8, kCheckpointVersion + 1);
  PatchU32(&bad, 44, Crc32(bad.data(), 44));
  ExpectLoadError(bad, CheckpointError::kBadVersion);
}

TEST_F(CorruptCheckpointTest, PayloadBitFlip) {
  std::string bad = good_;
  bad[kHeaderSize + 5] = static_cast<char>(bad[kHeaderSize + 5] ^ 0x01);
  ExpectLoadError(bad, CheckpointError::kBadPayloadCrc);
}

TEST_F(CorruptCheckpointTest, TornFooter) {
  std::string bad = good_;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x80);
  ExpectLoadError(bad, CheckpointError::kBadPayloadCrc);
}

TEST_F(CorruptCheckpointTest, ConfigMismatch) {
  SimConfig other = cfg_;
  other.saio_frac = 0.42;
  ResumeResult rr = ResumeFromCheckpoint(other, path_);
  EXPECT_FALSE(rr.ok());
  EXPECT_EQ(rr.error, CheckpointError::kConfigMismatch);
}

TEST_F(CorruptCheckpointTest, ErrorNamesAreStable) {
  EXPECT_STREQ(CheckpointErrorName(CheckpointError::kNone), "none");
  EXPECT_STREQ(CheckpointErrorName(CheckpointError::kBadMagic), "bad_magic");
  EXPECT_STREQ(CheckpointErrorName(CheckpointError::kConfigMismatch),
               "config_mismatch");
}

// --- .prev fallback -------------------------------------------------------

TEST(CheckpointTest, FallsBackToPrevWhenPrimaryIsCorrupt) {
  const Oo7Params params = Oo7Params::Tiny();
  std::shared_ptr<const Trace> trace = GenerateOo7Trace(params, 9);
  SimConfig cfg = TinySagaConfig();
  ApplyRunSeeds(&cfg, 9);

  const std::string golden = SimResultToJson(Simulation(cfg).Run(*trace));

  const std::string ckpt = TempPath("fallback.ckpt");
  RemoveCheckpointFiles(ckpt);
  const uint64_t k1 = trace->size() / 3;
  const uint64_t k2 = 2 * trace->size() / 3;

  Simulation sim(cfg);
  for (uint64_t i = 0; i < k1; ++i) sim.Apply((*trace)[i]);
  ASSERT_EQ(WriteCheckpoint(sim, ckpt), CheckpointError::kNone);
  for (uint64_t i = k1; i < k2; ++i) sim.Apply((*trace)[i]);
  ASSERT_EQ(WriteCheckpoint(sim, ckpt), CheckpointError::kNone);
  // The atomic-write protocol left the k1 image at `.prev`.

  std::string primary = ReadFileBytes(ckpt);
  primary[kHeaderSize + 3] = static_cast<char>(primary[kHeaderSize + 3] ^ 1);
  WriteFileBytes(ckpt, primary);

  ResumeResult rr = ResumeFromCheckpoint(cfg, ckpt);
  ASSERT_TRUE(rr.ok()) << CheckpointErrorName(rr.error);
  EXPECT_TRUE(rr.used_fallback);
  EXPECT_EQ(rr.primary_error, CheckpointError::kBadPayloadCrc);
  EXPECT_EQ(rr.loaded_path, ckpt + ".prev");
  EXPECT_EQ(rr.events_applied, k1);

  SimResult resumed = rr.sim->RunFrom(*trace, "", 0);
  EXPECT_EQ(SimResultToJson(resumed), golden);
  RemoveCheckpointFiles(ckpt);
}

// --- wall-clock watchdog --------------------------------------------------

TEST(CheckpointTest, DeadlineExceededIsTransient) {
  const Oo7Params params = Oo7Params::Tiny();
  std::shared_ptr<const Trace> trace = GenerateOo7Trace(params, 13);
  if (trace->size() <= 4096) {
    GTEST_SKIP() << "trace too short to hit the 4096-event deadline check";
  }
  SimConfig cfg = TinySaioConfig();
  ApplyRunSeeds(&cfg, 13);
  cfg.deadline_ms = 1e-6;  // expires before the first check
  Simulation sim(cfg);
  bool threw = false;
  try {
    sim.RunFrom(*trace, "", 0);
  } catch (const SimDeadlineExceeded& e) {
    threw = true;
    EXPECT_TRUE(e.transient());
    EXPECT_EQ(e.kind(), SimErrorKind::kDeadlineExceeded);
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace odbgc
