#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "storage/object_store.h"
#include "storage/reachability.h"
#include "tests/replay_test_util.h"
#include "workloads/synthetic.h"

namespace odbgc {
namespace {

// Replays a trace into a bare store (no GC) and checks that the
// workload's ground-truth garbage markers agree exactly with a full
// reachability scan.
void CheckMarkerConsistency(const Trace& trace) {
  StoreConfig cfg;
  cfg.partition_bytes = 32 * 1024;
  cfg.page_bytes = 4 * 1024;
  cfg.buffer_pages = 8;
  ObjectStore store(cfg);
  ReplayIntoStore(trace, &store);
  ReachabilityResult scan = ScanReachability(store);
  EXPECT_EQ(scan.unreachable_bytes, store.actual_garbage_bytes());
  EXPECT_GT(store.total_garbage_created(), 0u);
}

TEST(UniformChurnTest, MarkersMatchReachability) {
  UniformChurnOptions o;
  o.cycles = 3000;
  o.list_count = 8;
  o.target_length = 16;
  CheckMarkerConsistency(MakeUniformChurn(o));
}

TEST(UniformChurnTest, SteadyGarbageRate) {
  UniformChurnOptions o;
  o.cycles = 6000;
  o.list_count = 8;
  o.target_length = 16;
  Trace t = MakeUniformChurn(o);
  // After warm-up, roughly one node dies per appended node: garbage
  // objects ~ cycles - lists*target_length.
  Trace::Summary s = t.Summarize();
  uint64_t expected = 6000 - 8 * 16;
  EXPECT_NEAR(static_cast<double>(s.ground_truth_garbage_objects),
              static_cast<double>(expected), 0.2 * expected);
}

TEST(UniformChurnTest, DeterministicBySeed) {
  UniformChurnOptions o;
  o.cycles = 500;
  Trace a = MakeUniformChurn(o);
  Trace b = MakeUniformChurn(o);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(BurstyDeletesTest, MarkersMatchReachability) {
  BurstyDeleteOptions o;
  o.bursts = 10;
  o.quiet_cycles_per_burst = 200;
  CheckMarkerConsistency(MakeBurstyDeletes(o));
}

TEST(BurstyDeletesTest, GarbageArrivesInBursts) {
  BurstyDeleteOptions o;
  o.bursts = 5;
  o.quiet_cycles_per_burst = 300;
  o.lists_per_burst = 4;
  o.list_length = 48;
  Trace t = MakeBurstyDeletes(o);
  // Every deleted node gets its own marker as the batched delete
  // dismantles the list; garbage only appears in the bursts.
  Trace::Summary s = t.Summarize();
  EXPECT_EQ(s.garbage_marks, 5u * 4u * 48u);
  EXPECT_EQ(s.ground_truth_garbage_objects, 5u * 4u * 48u);
}

TEST(BurstyDeletesTest, QuietPhasesAdvanceOverwriteClockWithoutGarbage) {
  // Replay only the first quiet phase (up to the first burst) and check
  // overwrites happened but garbage did not.
  BurstyDeleteOptions o;
  o.bursts = 1;
  o.quiet_cycles_per_burst = 300;
  Trace t = MakeBurstyDeletes(o);
  StoreConfig cfg;
  cfg.partition_bytes = 32 * 1024;
  cfg.page_bytes = 4 * 1024;
  cfg.buffer_pages = 8;
  ObjectStore store(cfg);
  for (const TraceEvent& e : t.events()) {
    if (e.kind == EventKind::kGarbageMark) break;  // stop at the burst
    switch (e.kind) {
      case EventKind::kCreate:
        store.CreateObject(e.a, e.b, e.c, e.d);
        break;
      case EventKind::kWriteRef:
        store.WriteRef(e.a, e.b, e.c);
        break;
      case EventKind::kAddRoot:
        store.AddRoot(e.a);
        break;
      case EventKind::kRemoveRoot:
        store.RemoveRoot(e.a);
        break;
      default:
        break;
    }
  }
  EXPECT_GT(store.pointer_overwrites(), 0u);
  EXPECT_EQ(store.actual_garbage_bytes(), 0u);
}

TEST(GrowingDatabaseTest, MarkersMatchReachability) {
  GrowingDatabaseOptions o;
  o.cycles = 4000;
  CheckMarkerConsistency(MakeGrowingDatabase(o));
}

TEST(GrowingDatabaseTest, DatabaseGrowsMonotonically) {
  GrowingDatabaseOptions o;
  o.cycles = 9000;
  o.retain_every = 3;
  Trace t = MakeGrowingDatabase(o);
  Trace::Summary s = t.Summarize();
  // A third of the nodes are permanent: live bytes at the end are about
  // created - garbage ~ cycles/3 nodes (plus the churn window).
  uint64_t live = s.created_bytes - s.ground_truth_garbage_bytes;
  uint64_t permanent = (9000 / 3) * o.node_bytes;
  EXPECT_GT(live, permanent);
  EXPECT_LT(live, permanent + 100u * o.node_bytes);
}

TEST(MessageQueueTest, MarkersMatchReachability) {
  MessageQueueOptions o;
  o.cycles = 3000;
  o.batch = 25;
  CheckMarkerConsistency(MakeMessageQueue(o));
}

TEST(MessageQueueTest, QueueLengthBounded) {
  MessageQueueOptions o;
  o.cycles = 5000;
  o.batch = 40;
  Trace t = MakeMessageQueue(o);
  Trace::Summary s = t.Summarize();
  // Live messages at the end <= 2*batch (+1 in-flight).
  uint64_t live_objects =
      s.created_objects - s.ground_truth_garbage_objects;
  EXPECT_LE(live_objects, 2u * 40u + 2u);  // +root +in-flight
}

TEST(WorkloadSimulationTest, SagaControlsUniformChurn) {
  UniformChurnOptions o;
  o.cycles = 20000;
  Trace t = MakeUniformChurn(o);
  SimConfig cfg;
  cfg.store.partition_bytes = 32 * 1024;
  cfg.store.page_bytes = 4 * 1024;
  cfg.store.buffer_pages = 8;
  cfg.policy = PolicyKind::kSaga;
  cfg.estimator = EstimatorKind::kOracle;
  cfg.saga.garbage_frac = 0.10;
  cfg.saga.bootstrap_overwrites = 200;
  SimResult r = RunSimulation(cfg, t);
  ASSERT_TRUE(r.window_opened);
  // The benign workload: SAGA holds the target comfortably.
  EXPECT_NEAR(r.garbage_pct.mean(), 10.0, 4.0);
}

}  // namespace
}  // namespace odbgc
