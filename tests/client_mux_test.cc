#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "oo7/generator.h"
#include "sim/client_mux.h"
#include "sim/multi_client.h"
#include "storage/reachability.h"
#include "tests/replay_test_util.h"
#include "workloads/streaming.h"
#include "workloads/synthetic.h"

namespace odbgc {
namespace {

Trace TinyOo7(uint64_t seed) {
  Oo7Generator gen(Oo7Params::Tiny(), seed);
  return gen.GenerateFullApplication();
}

Trace SmallChurn(uint64_t seed) {
  UniformChurnOptions o;
  o.seed = seed;
  o.cycles = 1500;
  o.list_count = 8;
  o.target_length = 16;
  return MakeUniformChurn(o);
}

// Drains a mux to exhaustion into a materialized trace.
Trace Drain(ClientMux& mux) {
  Trace out;
  TraceEvent e;
  while (mux.Next(&e)) out.Append(e);
  return out;
}

TEST(ClientMuxTest, JitterFreeStreamMatchesInterleaveClients) {
  for (uint32_t chunk : {1u, 17u, 50u}) {
    Trace a = TinyOo7(1);
    Trace b = SmallChurn(2);
    Trace legacy = InterleaveClients({a, b}, chunk);

    ClientMux mux;
    MuxClientOptions opts;
    opts.base_chunk = chunk;
    mux.AddClient(std::make_shared<Trace>(a), opts);
    mux.AddClient(std::make_shared<Trace>(b), opts);
    Trace streamed = Drain(mux);

    ASSERT_EQ(streamed.size(), legacy.size()) << "chunk=" << chunk;
    for (size_t i = 0; i < legacy.size(); ++i) {
      ASSERT_EQ(streamed[i], legacy[i]) << "chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(ClientMuxTest, SingleClientIsRawTrace) {
  Trace a = SmallChurn(3);
  ClientMux mux;
  mux.AddClient(std::make_shared<Trace>(a), MuxClientOptions{});
  Trace streamed = Drain(mux);
  ASSERT_EQ(streamed.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(streamed[i], a[i]);
}

TEST(ClientMuxTest, StreamIndependentOfConsumerPullPattern) {
  // The merged stream must not depend on how the consumer batches its
  // pulls. Build the same two-mux fleet twice (with jitter and think
  // time, so every RNG path is live) and draw one in singles, the other
  // in ragged batches interleaved with client-state peeks.
  auto build = [] {
    auto mux = std::make_unique<ClientMux>();
    MuxClientOptions opts;
    opts.base_chunk = 13;
    opts.chunk_jitter = 9;
    opts.think_time = 3;
    opts.seed = 77;
    mux->AddClient(std::make_shared<Trace>(TinyOo7(4)), opts);
    opts.seed = 78;
    mux->AddClient(std::make_shared<Trace>(SmallChurn(5)), opts);
    opts.seed = 79;
    mux->AddClient(std::make_shared<Trace>(SmallChurn(6)), opts);
    return mux;
  };
  auto ones = build();
  Trace singles = Drain(*ones);

  auto batched = build();
  Trace ragged;
  TraceEvent e;
  size_t batch = 1;
  bool done = false;
  while (!done) {
    for (size_t i = 0; i < batch; ++i) {
      if (!batched->Next(&e)) {
        done = true;
        break;
      }
      ragged.Append(e);
    }
    (void)batched->alive();  // interleaved observation must be inert
    batch = (batch % 97) + 3;
  }
  ASSERT_EQ(ragged.size(), singles.size());
  for (size_t i = 0; i < singles.size(); ++i) {
    ASSERT_EQ(ragged[i], singles[i]) << "i=" << i;
  }
}

TEST(ClientMuxTest, ExhaustedClientsDropOutAndStreamStaysComplete) {
  Trace longer = SmallChurn(7);
  Trace shorter;
  shorter.Append(CreateEvent(1, 64, 0));
  shorter.Append(AddRootEvent(1));
  shorter.Append(ReadEvent(1));

  ClientMux mux;
  MuxClientOptions opts;
  opts.base_chunk = 2;
  mux.AddClient(std::make_shared<Trace>(longer), opts);
  mux.AddClient(std::make_shared<Trace>(shorter), opts);
  EXPECT_EQ(mux.alive(), 2u);

  Trace streamed = Drain(mux);
  EXPECT_EQ(mux.alive(), 0u);
  ASSERT_EQ(streamed.size(), longer.size() + shorter.size());
  // Once the short client runs dry the tail is purely the long client's
  // remapped suffix, in order.
  Trace longer_remapped = RemapObjectIds(longer, mux.client_offset(0));
  const size_t tail = streamed.size() - 8;
  size_t li = longer.size() - (streamed.size() - tail);
  for (size_t i = tail; i < streamed.size(); ++i, ++li) {
    EXPECT_EQ(streamed[i], longer_remapped[li]);
  }
}

TEST(ClientMuxTest, MergedStreamKeepsGroundTruthConsistent) {
  // Safe-point rule under scheduling randomness: a bare replay of the
  // merged stream must keep the garbage oracle equal to a full
  // reachability scan at quiescence.
  ClientMux mux;
  MuxClientOptions opts;
  opts.base_chunk = 5;
  opts.chunk_jitter = 11;
  opts.think_time = 2;
  opts.seed = 99;
  mux.AddClient(std::make_shared<Trace>(TinyOo7(8)), opts);
  mux.AddClient(std::make_shared<Trace>(SmallChurn(9)), opts);
  Trace mix = Drain(mux);

  StoreConfig cfg;
  cfg.partition_bytes = 16 * 1024;
  cfg.page_bytes = 2 * 1024;
  cfg.buffer_pages = 8;
  ObjectStore store(cfg);
  ReplayIntoStore(mix, &store);
  ReachabilityResult scan = ScanReachability(store);
  EXPECT_EQ(scan.unreachable_bytes, store.actual_garbage_bytes());
}

TEST(ClientMuxTest, StreamingChurnReplayMatchesGroundTruth) {
  StreamingChurnOptions o;
  o.seed = 11;
  o.cycles = 800;
  o.read_factor = 2;
  ClientMux mux;
  mux.AddClient(std::make_unique<StreamingChurnSource>(o),
                MuxClientOptions{});
  Trace t = Drain(mux);
  EXPECT_GT(t.size(), o.cycles * 3);

  StoreConfig cfg;
  cfg.partition_bytes = 16 * 1024;
  cfg.page_bytes = 2 * 1024;
  cfg.buffer_pages = 8;
  ObjectStore store(cfg);
  ReplayIntoStore(t, &store);
  ReachabilityResult scan = ScanReachability(store);
  EXPECT_EQ(scan.unreachable_bytes, store.actual_garbage_bytes());
}

TEST(ClientMuxTest, TenThousandClientsStreamInClientBoundedMemory) {
  // 10,000 generator-backed clients whose *total* event volume would be
  // far larger than their resident state. The mux + sources must cost
  // O(clients), independent of how many events remain undrawn.
  constexpr size_t kClients = 10000;
  ClientMux mux;
  for (size_t c = 0; c < kClients; ++c) {
    StreamingChurnOptions o;
    o.seed = 1000 + c;
    o.cycles = 2000;       // ~16k+ events per client if fully drained
    o.read_factor = 1;
    MuxClientOptions m;
    m.base_chunk = 8;
    m.chunk_jitter = 7;
    m.seed = 5000 + c;
    mux.AddClient(std::make_unique<StreamingChurnSource>(o), m);
  }
  // Draw a slice off the top; the fleet's undrawn remainder is ~200M
  // events (~4 GB if materialized the legacy way).
  TraceEvent e;
  for (size_t i = 0; i < 500000; ++i) ASSERT_TRUE(mux.Next(&e));
  // Resident accounting stays in tens of MB: a few KB per client.
  EXPECT_LT(mux.ApproxMemoryBytes(), 100u * 1024 * 1024);
  EXPECT_EQ(mux.clients(), kClients);
  EXPECT_EQ(mux.alive(), kClients);
}

TEST(ClientMuxTest, SourceMemoryIsIndependentOfRemainingEvents) {
  // Same client parameters except total cycles: resident state tracks
  // the bounded live lists, not the event horizon.
  StreamingChurnOptions small;
  small.cycles = 200;
  StreamingChurnOptions large = small;
  large.cycles = 20000;
  StreamingChurnSource a(small);
  StreamingChurnSource b(large);
  TraceEvent e;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(a.Next(&e));
    ASSERT_TRUE(b.Next(&e));
  }
  // Identical prefix behavior -> identical resident state; allow slack
  // for deque block granularity.
  EXPECT_LT(b.ApproxMemoryBytes(), 2 * a.ApproxMemoryBytes());
}

TEST(ClientMuxAdmissionTest, GateDefersWithoutLosingEvents) {
  // A permanently hostile gate against one client: the defer valve must
  // keep admitting it every `defer_limit` rounds, so the merged stream
  // still carries every event of every client.
  Trace a = SmallChurn(21);
  Trace b = SmallChurn(22);
  ClientMux gated;
  gated.AddClient(std::make_shared<Trace>(a), MuxClientOptions{});
  gated.AddClient(std::make_shared<Trace>(b), MuxClientOptions{});
  gated.SetAdmissionGate([](uint32_t client) { return client == 1; },
                         /*defer_limit=*/2);
  Trace streamed = Drain(gated);
  EXPECT_EQ(streamed.size(), a.size() + b.size());
  EXPECT_GT(gated.admission_deferrals(), 0u);
}

TEST(ClientMuxAdmissionTest, GatedStreamIndependentOfPullPattern) {
  // The backpressure path must preserve the mux's core contract: the
  // merged stream is a function of client state only, not of how the
  // consumer batches its pulls.
  auto build = [] {
    auto mux = std::make_unique<ClientMux>();
    MuxClientOptions opts;
    opts.base_chunk = 13;
    opts.chunk_jitter = 9;
    opts.think_time = 3;
    opts.seed = 81;
    mux->AddClient(std::make_shared<Trace>(SmallChurn(23)), opts);
    opts.seed = 82;
    mux->AddClient(std::make_shared<Trace>(SmallChurn(24)), opts);
    opts.seed = 83;
    mux->AddClient(std::make_shared<Trace>(TinyOo7(25)), opts);
    mux->SetAdmissionGate([](uint32_t client) { return client != 0; },
                          /*defer_limit=*/3);
    return mux;
  };
  auto ones = build();
  Trace singles = Drain(*ones);

  auto batched = build();
  Trace ragged;
  TraceEvent e;
  size_t batch = 1;
  bool done = false;
  while (!done) {
    for (size_t i = 0; i < batch; ++i) {
      if (!batched->Next(&e)) {
        done = true;
        break;
      }
      ragged.Append(e);
    }
    batch = (batch % 7) + 1;
  }
  ASSERT_EQ(singles.size(), ragged.size());
  for (size_t i = 0; i < singles.size(); ++i) {
    ASSERT_EQ(singles[i], ragged[i]) << "i=" << i;
  }
  EXPECT_EQ(ones->admission_deferrals(), batched->admission_deferrals());
}

TEST(ClientMuxAdmissionTest, UninstallingGateRestoresUngatedStream) {
  // Installing and immediately uninstalling a gate before the first
  // draw must leave the schedule untouched.
  Trace a = SmallChurn(26);
  Trace b = SmallChurn(27);
  auto run = [&](bool install) {
    ClientMux mux;
    mux.AddClient(std::make_shared<Trace>(a), MuxClientOptions{});
    mux.AddClient(std::make_shared<Trace>(b), MuxClientOptions{});
    if (install) {
      mux.SetAdmissionGate([](uint32_t) { return true; }, 2);
      mux.SetAdmissionGate(nullptr, 0);
    }
    return Drain(mux);
  };
  Trace plain = run(false);
  Trace cycled = run(true);
  ASSERT_EQ(plain.size(), cycled.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(plain[i], cycled[i]) << "i=" << i;
  }
}

TEST(ClientMuxTest, RegistrationAfterFirstDrawIsRejected) {
  ClientMux mux;
  mux.AddClient(std::make_shared<Trace>(SmallChurn(12)),
                MuxClientOptions{});
  TraceEvent e;
  ASSERT_TRUE(mux.Next(&e));
  EXPECT_DEATH(mux.AddClient(std::make_shared<Trace>(SmallChurn(13)),
                             MuxClientOptions{}),
               "AddClient after the first Next");
}

}  // namespace
}  // namespace odbgc
