#include <gtest/gtest.h>

#include "storage/buffer_pool.h"

namespace odbgc {
namespace {

PageId P(PartitionId part, uint32_t page) { return PageId{part, page}; }

TEST(BufferPoolTest, FirstAccessIsAMissAndRead) {
  BufferPool pool(4);
  pool.Access(P(0, 0), /*dirty=*/false, IoContext::kApplication);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.stats().app_reads, 1u);
  EXPECT_EQ(pool.stats().app_writes, 0u);
}

TEST(BufferPoolTest, RepeatedAccessHits) {
  BufferPool pool(4);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  pool.Access(P(0, 0), true, IoContext::kApplication);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.stats().app_reads, 1u);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  BufferPool pool(2);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  pool.Access(P(0, 1), false, IoContext::kApplication);
  // Touch page 0 so page 1 becomes LRU.
  pool.Access(P(0, 0), false, IoContext::kApplication);
  // Page 2 evicts page 1.
  pool.Access(P(0, 2), false, IoContext::kApplication);
  // Page 0 should still be resident (hit); page 1 should miss.
  pool.Access(P(0, 0), false, IoContext::kApplication);
  EXPECT_EQ(pool.hits(), 2u);
  pool.Access(P(0, 1), false, IoContext::kApplication);
  EXPECT_EQ(pool.misses(), 4u);
}

TEST(BufferPoolTest, DirtyEvictionCostsWrite) {
  BufferPool pool(1);
  pool.Access(P(0, 0), /*dirty=*/true, IoContext::kApplication);
  EXPECT_EQ(pool.stats().app_writes, 0u);  // not written back yet
  pool.Access(P(0, 1), false, IoContext::kApplication);
  // Evicting dirty page 0 costs one write attributed to the evictor.
  EXPECT_EQ(pool.stats().app_writes, 1u);
  EXPECT_EQ(pool.stats().app_reads, 2u);
}

TEST(BufferPoolTest, CleanEvictionCostsNoWrite) {
  BufferPool pool(1);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  pool.Access(P(0, 1), false, IoContext::kApplication);
  EXPECT_EQ(pool.stats().app_writes, 0u);
}

TEST(BufferPoolTest, DirtinessMergesAcrossAccesses) {
  BufferPool pool(1);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  pool.Access(P(0, 0), true, IoContext::kApplication);  // now dirty
  pool.Access(P(0, 1), false, IoContext::kApplication);
  EXPECT_EQ(pool.stats().app_writes, 1u);
}

TEST(BufferPoolTest, GcContextAttribution) {
  BufferPool pool(1);
  pool.Access(P(0, 0), true, IoContext::kCollector);
  pool.Access(P(0, 1), false, IoContext::kCollector);
  EXPECT_EQ(pool.stats().gc_reads, 2u);
  EXPECT_EQ(pool.stats().gc_writes, 1u);
  EXPECT_EQ(pool.stats().app_total(), 0u);
}

TEST(BufferPoolTest, EvictionAttributedToEvictorNotOwner) {
  BufferPool pool(1);
  // App dirties a page; the collector's access evicts it. The write-back
  // is charged to the collector (it caused the transfer).
  pool.Access(P(0, 0), true, IoContext::kApplication);
  pool.Access(P(0, 1), false, IoContext::kCollector);
  EXPECT_EQ(pool.stats().app_writes, 0u);
  EXPECT_EQ(pool.stats().gc_writes, 1u);
}

TEST(BufferPoolTest, DropPartitionTailDiscardsWithoutWriteback) {
  BufferPool pool(4);
  pool.Access(P(3, 0), true, IoContext::kCollector);
  pool.Access(P(3, 1), true, IoContext::kCollector);
  pool.Access(P(4, 1), true, IoContext::kCollector);
  pool.DropPartitionTail(3, 1);
  EXPECT_EQ(pool.resident_pages(), 2u);  // (3,0) and (4,1) remain
  pool.FlushAll(IoContext::kCollector);
  // Only the two surviving dirty pages get written.
  EXPECT_EQ(pool.stats().gc_writes, 2u);
}

TEST(BufferPoolTest, FlushAllWritesDirtyOnce) {
  BufferPool pool(4);
  pool.Access(P(0, 0), true, IoContext::kApplication);
  pool.Access(P(0, 1), false, IoContext::kApplication);
  pool.FlushAll(IoContext::kApplication);
  EXPECT_EQ(pool.stats().app_writes, 1u);
  pool.FlushAll(IoContext::kApplication);  // now clean: no-op
  EXPECT_EQ(pool.stats().app_writes, 1u);
}

TEST(BufferPoolTest, NeverExceedsFrameCount) {
  BufferPool pool(3);
  for (uint32_t i = 0; i < 100; ++i) {
    pool.Access(P(i % 7, i), i % 2 == 0, IoContext::kApplication);
    EXPECT_LE(pool.resident_pages(), 3u);
  }
}

TEST(BufferPoolTest, PagesDistinguishedByPartition) {
  BufferPool pool(4);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  pool.Access(P(1, 0), false, IoContext::kApplication);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(BufferPoolTest, DirtyEvictionWritesBackExactlyOnce) {
  // Regression: a dirty page must be written back when evicted, and the
  // write-back must not leave a phantom dirty frame behind — re-faulting
  // the page and evicting it clean must cost no second write.
  BufferPool pool(1);
  pool.Access(P(0, 0), /*dirty=*/true, IoContext::kApplication);
  pool.Access(P(0, 1), false, IoContext::kApplication);  // evicts 0 dirty
  EXPECT_EQ(pool.stats().app_writes, 1u);
  pool.Access(P(0, 0), false, IoContext::kApplication);  // back in, clean
  pool.Access(P(0, 1), false, IoContext::kApplication);  // evicts 0 clean
  EXPECT_EQ(pool.stats().app_writes, 1u);
  EXPECT_EQ(pool.stats().app_reads, 4u);
}

TEST(BufferPoolTest, PinAccountingNestsAndBalances) {
  BufferPool pool(4);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  EXPECT_EQ(pool.pinned_pages(), 0u);
  pool.Pin(P(0, 0));
  pool.Pin(P(0, 0));  // pins nest
  EXPECT_EQ(pool.pinned_pages(), 1u);
  pool.Unpin(P(0, 0));
  EXPECT_EQ(pool.pinned_pages(), 1u);  // still held once
  pool.Unpin(P(0, 0));
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(BufferPoolTest, PinnedPageSurvivesEvictionPressure) {
  BufferPool pool(2);
  pool.Access(P(0, 0), /*dirty=*/true, IoContext::kApplication);
  pool.Pin(P(0, 0));
  pool.Access(P(0, 1), false, IoContext::kApplication);
  // Page 0 is LRU but pinned: page 1 must be the victim instead.
  pool.Access(P(0, 2), false, IoContext::kApplication);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  EXPECT_EQ(pool.hits(), 1u);  // pinned page stayed resident
  EXPECT_EQ(pool.stats().app_writes, 0u);  // and was never written back
  pool.Unpin(P(0, 0));
}

TEST(BufferPoolTest, AllFramesPinnedAbortsEviction) {
  BufferPool pool(1);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  pool.Pin(P(0, 0));
  EXPECT_DEATH(pool.Access(P(0, 1), false, IoContext::kApplication),
               "every buffer frame is pinned");
}

TEST(BufferPoolTest, UnbalancedUnpinAborts) {
  BufferPool pool(2);
  pool.Access(P(0, 0), false, IoContext::kApplication);
  EXPECT_DEATH(pool.Unpin(P(0, 0)), "without a matching Pin");
  EXPECT_DEATH(pool.Pin(P(0, 1)), "non-resident");
}

TEST(BufferPoolTest, FlushPartitionWritesOnlyThatPartition) {
  BufferPool pool(4);
  pool.Access(P(0, 0), /*dirty=*/true, IoContext::kCollector);
  pool.Access(P(0, 1), /*dirty=*/false, IoContext::kCollector);
  pool.Access(P(1, 0), /*dirty=*/true, IoContext::kCollector);
  pool.FlushPartition(0, IoContext::kCollector);
  EXPECT_EQ(pool.stats().gc_writes, 1u);  // only (0,0)
  EXPECT_EQ(pool.resident_pages(), 3u);   // flushed page stays resident
  pool.FlushPartition(0, IoContext::kCollector);  // now clean: no-op
  EXPECT_EQ(pool.stats().gc_writes, 1u);
  pool.FlushAll(IoContext::kCollector);  // partition 1 still dirty
  EXPECT_EQ(pool.stats().gc_writes, 2u);
}

TEST(BufferPoolTest, DiscardAllDropsEverythingWithoutWriteback) {
  BufferPool pool(4);
  pool.Access(P(0, 0), /*dirty=*/true, IoContext::kApplication);
  pool.Access(P(0, 1), /*dirty=*/true, IoContext::kApplication);
  pool.Access(P(0, 2), /*dirty=*/false, IoContext::kApplication);
  pool.Pin(P(0, 0));  // even pinned frames die in a crash
  size_t lost = pool.DiscardAll();
  EXPECT_EQ(lost, 2u);  // the two dirty pages
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_EQ(pool.pinned_pages(), 0u);
  EXPECT_EQ(pool.stats().app_writes, 0u);  // nothing was flushed
  // The pool is fully usable afterwards.
  pool.Access(P(0, 0), false, IoContext::kApplication);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST(BufferPoolTest, WriteThroughBypassesFrames) {
  BufferPool pool(2);
  pool.WriteThrough(P(0, kMetaPageIndex), IoContext::kCollector);
  pool.ReadThrough(P(0, kMetaPageIndex), IoContext::kCollector);
  EXPECT_EQ(pool.stats().gc_writes, 1u);
  EXPECT_EQ(pool.stats().gc_reads, 1u);
  EXPECT_EQ(pool.resident_pages(), 0u);  // never occupies a frame
  EXPECT_EQ(pool.hits() + pool.misses(), 0u);
}

}  // namespace
}  // namespace odbgc
