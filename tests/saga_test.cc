#include <memory>

#include <gtest/gtest.h>

#include "core/saga.h"

namespace odbgc {
namespace {

SimClock At(uint64_t overwrites, uint64_t db_bytes) {
  SimClock c;
  c.pointer_overwrites = overwrites;
  c.db_used_bytes = db_bytes;
  return c;
}

SagaPolicy::Options Opts(double frac, uint64_t bootstrap = 100) {
  SagaPolicy::Options o;
  o.garbage_frac = frac;
  o.bootstrap_overwrites = bootstrap;
  return o;
}

// Builds a SAGA policy with an oracle estimator we control directly.
struct OracleSaga {
  explicit OracleSaga(const SagaPolicy::Options& opts) {
    auto est = std::make_unique<OracleEstimator>();
    oracle = est.get();
    policy = std::make_unique<SagaPolicy>(opts, std::move(est));
  }
  OracleEstimator* oracle;
  std::unique_ptr<SagaPolicy> policy;
};

TEST(SagaPolicyTest, BootstrapTriggersFirstCollection) {
  OracleSaga s(Opts(0.10, /*bootstrap=*/100));
  EXPECT_FALSE(s.policy->ShouldCollect(At(99, 10000)));
  EXPECT_TRUE(s.policy->ShouldCollect(At(100, 10000)));
}

TEST(SagaPolicyTest, NoGarbageCreationSchedulesFarAhead) {
  OracleSaga s(Opts(0.10));
  // Two collections with zero garbage anywhere: the slope is zero and we
  // are under target, so the policy waits dt_max.
  s.oracle->SetGroundTruth(0.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(100, 10000));
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(200, 10000));
  EXPECT_EQ(s.policy->last_dt(), s.policy->options().dt_max);
}

TEST(SagaPolicyTest, OverBudgetWithDeadSlopeCollectsSoon) {
  OracleSaga s(Opts(0.10));
  // Garbage sits at 5000 bytes (50% of a 10000-byte DB), never growing.
  s.oracle->SetGroundTruth(5000.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(100, 10000));
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(200, 10000));
  // numerator = CurrColl - GarbDiff = 0 - (5000 - 1000) < 0 -> dt_min.
  EXPECT_EQ(s.policy->last_dt(), s.policy->options().dt_min);
  EXPECT_GE(s.policy->dt_min_clamps(), 1u);
}

TEST(SagaPolicyTest, SteadyStateComputesPaperFormula) {
  SagaPolicy::Options o = Opts(0.10);
  o.slope_weight = 0.0;  // no smoothing: slope = latest finite difference
  OracleSaga s(o);

  // Collection 1 at t=100: ActGarb 1000, reclaimed 500 -> TotGarb=1500.
  s.oracle->SetGroundTruth(1000.0);
  s.policy->OnCollection(CollectionOutcome{0, /*reclaimed=*/500},
                         At(100, 10000));
  // Collection 2 at t=200: ActGarb 1200, reclaimed 600.
  // TotColl=1100, TotGarb = 1200 + 1100 = 2300.
  // slope = (2300 - 1500) / 100 = 8 bytes/overwrite.
  // GarbDiff = 1200 - 0.1*10000 = 200. numerator = 600 - 200 = 400.
  // dt = 400 / 8 = 50.
  s.oracle->SetGroundTruth(1200.0);
  s.policy->OnCollection(CollectionOutcome{0, 600}, At(200, 10000));
  EXPECT_EQ(s.policy->last_dt(), 50u);
  EXPECT_DOUBLE_EQ(s.policy->slope(), 8.0);
}

TEST(SagaPolicyTest, SlopeSmoothingUsesWeight) {
  SagaPolicy::Options o = Opts(0.10);
  o.slope_weight = 0.7;
  OracleSaga s(o);
  s.oracle->SetGroundTruth(0.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(100, 10000));
  // First finite difference initializes the slope directly.
  s.oracle->SetGroundTruth(1000.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(200, 10000));
  EXPECT_DOUBLE_EQ(s.policy->slope(), 10.0);
  // Second difference: sample = (2000+0 - 1000)/100 = 10... use a bigger
  // jump: ActGarb 4000 => TotGarb 4000, sample = (4000-1000)/100 = 30.
  s.oracle->SetGroundTruth(4000.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(300, 10000));
  // 0.7 * 10 + 0.3 * 30 = 16.
  EXPECT_DOUBLE_EQ(s.policy->slope(), 16.0);
}

TEST(SagaPolicyTest, DtClampedToMax) {
  SagaPolicy::Options o = Opts(0.10);
  o.slope_weight = 0.0;
  OracleSaga s(o);
  // Shallow slope and far under target -> dt astronomical -> dt_max.
  s.oracle->SetGroundTruth(0.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(100, 1000000));
  s.oracle->SetGroundTruth(100.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(200, 1000000));
  // slope = 1; numerator = 0 - (100 - 100000) = 99900 -> dt huge.
  EXPECT_EQ(s.policy->last_dt(), o.dt_max);
  EXPECT_GE(s.policy->dt_max_clamps(), 1u);
}

TEST(SagaPolicyTest, DtClampedToMin) {
  SagaPolicy::Options o = Opts(0.10);
  o.slope_weight = 0.0;
  OracleSaga s(o);
  // Steep slope and way over budget -> dt below dt_min -> clamped up.
  s.oracle->SetGroundTruth(0.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(100, 10000));
  s.oracle->SetGroundTruth(50000.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(200, 10000));
  // slope = 500; numerator = 0 - (50000 - 1000) < 0 -> dt_min.
  EXPECT_EQ(s.policy->last_dt(), o.dt_min);
}

TEST(SagaPolicyTest, NextCollectionScheduledAtDt) {
  SagaPolicy::Options o = Opts(0.10);
  o.slope_weight = 0.0;
  OracleSaga s(o);
  s.oracle->SetGroundTruth(1000.0);
  s.policy->OnCollection(CollectionOutcome{0, 500}, At(100, 10000));
  s.oracle->SetGroundTruth(1200.0);
  s.policy->OnCollection(CollectionOutcome{0, 600}, At(200, 10000));
  ASSERT_EQ(s.policy->last_dt(), 50u);
  EXPECT_FALSE(s.policy->ShouldCollect(At(249, 10000)));
  EXPECT_TRUE(s.policy->ShouldCollect(At(250, 10000)));
}

TEST(SagaPolicyTest, ReadOnlyPhaseFreezesTime) {
  // If no pointer overwrites happen, ShouldCollect never fires — the
  // paper's observation that "time" stops during Traverse.
  OracleSaga s(Opts(0.10, /*bootstrap=*/100));
  SimClock frozen = At(50, 10000);
  frozen.app_io = 1000000;  // plenty of I/O, but no overwrites
  EXPECT_FALSE(s.policy->ShouldCollect(frozen));
}

TEST(SagaPolicyTest, NameIncludesEstimator) {
  OracleSaga s(Opts(0.05));
  EXPECT_NE(s.policy->name().find("SAGA"), std::string::npos);
  EXPECT_NE(s.policy->name().find("Oracle"), std::string::npos);
}

TEST(SagaPolicyTest, RejectsInvalidOptions) {
  auto make = [](double frac) {
    SagaPolicy::Options o;
    o.garbage_frac = frac;
    return o;
  };
  EXPECT_DEATH(
      { SagaPolicy p(make(0.0), std::make_unique<OracleEstimator>()); }, "");
  EXPECT_DEATH(
      { SagaPolicy p(make(1.5), std::make_unique<OracleEstimator>()); }, "");
}


TEST(SagaPolicyTest, CollectionAtSameOverwriteTimeSkipsSlopeUpdate) {
  SagaPolicy::Options o = Opts(0.10);
  o.slope_weight = 0.0;
  OracleSaga s(o);
  s.oracle->SetGroundTruth(0.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(100, 10000));
  s.oracle->SetGroundTruth(1000.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(200, 10000));
  double slope = s.policy->slope();
  // A second collection at the same overwrite time (e.g. dt_min spam
  // during a write-free stretch) must not divide by zero or move the
  // slope.
  s.oracle->SetGroundTruth(1500.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(200, 10000));
  EXPECT_DOUBLE_EQ(s.policy->slope(), slope);
}

TEST(SagaPolicyTest, TargetScalesWithDatabaseSize) {
  SagaPolicy::Options o = Opts(0.10);
  o.slope_weight = 0.0;
  OracleSaga s(o);
  // Same garbage level, different database sizes: the bigger database
  // tolerates more garbage, so its next interval is longer.
  s.oracle->SetGroundTruth(0.0);
  s.policy->OnCollection(CollectionOutcome{0, 0}, At(100, 10000));
  s.oracle->SetGroundTruth(2000.0);
  s.policy->OnCollection(CollectionOutcome{0, 1000}, At(200, 10000));
  uint64_t small_db_dt = s.policy->last_dt();

  OracleSaga s2(o);
  s2.oracle->SetGroundTruth(0.0);
  s2.policy->OnCollection(CollectionOutcome{0, 0}, At(100, 100000));
  s2.oracle->SetGroundTruth(2000.0);
  s2.policy->OnCollection(CollectionOutcome{0, 1000}, At(200, 100000));
  uint64_t big_db_dt = s2.policy->last_dt();
  EXPECT_GT(big_db_dt, small_db_dt);
}

TEST(SagaPolicyTest, ClampCountersStartAtZero) {
  OracleSaga s(Opts(0.10));
  EXPECT_EQ(s.policy->dt_min_clamps(), 0u);
  EXPECT_EQ(s.policy->dt_max_clamps(), 0u);
}

}  // namespace
}  // namespace odbgc
