// Randomized safety harness: arbitrary graph surgery (cycles, shared
// structure, root changes) with exact ground truth, swept across seeds
// and policy configurations. If the collector, the reverse index, the
// markers, or the scanner ever disagree, these tests fail.

#include <algorithm>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "storage/reachability.h"
#include "tests/replay_test_util.h"
#include "workloads/fuzz.h"

namespace odbgc {
namespace {

StoreConfig FuzzStore() {
  StoreConfig cfg;
  cfg.partition_bytes = 8 * 1024;
  cfg.page_bytes = 1024;
  cfg.buffer_pages = 8;
  return cfg;
}

RandomGraphOptions FuzzOptions(uint64_t seed) {
  RandomGraphOptions o;
  o.seed = seed;
  o.operations = 1500;
  o.max_object_bytes = 700;
  return o;
}

class FuzzMarkers : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzMarkers, MarkersMatchScannerOnBareReplay) {
  Trace trace = MakeRandomGraph(FuzzOptions(GetParam()));
  ObjectStore store(FuzzStore());
  ReplayIntoStore(trace, &store);
  ReachabilityResult scan = ScanReachability(store);
  EXPECT_EQ(scan.unreachable_bytes, store.actual_garbage_bytes());
  EXPECT_EQ(scan.unreachable_objects,
            store.total_garbage_created() > 0
                ? scan.unreachable_objects  // tautology guard
                : 0u);
  EXPECT_GT(trace.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMarkers,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

struct FuzzComboParam {
  uint64_t seed;
  PolicyKind policy;
  SelectorKind selector;
  const char* label;
};

class FuzzSimulation : public ::testing::TestWithParam<FuzzComboParam> {};

TEST_P(FuzzSimulation, CollectorNeverEatsReachableObjects) {
  const FuzzComboParam& p = GetParam();
  Trace trace = MakeRandomGraph(FuzzOptions(p.seed));

  // Ground truth: the reachable set after a collector-free replay.
  ObjectStore bare(FuzzStore());
  ReplayIntoStore(trace, &bare);
  ReachabilityResult truth = ScanReachability(bare);

  SimConfig cfg;
  cfg.store = FuzzStore();
  cfg.policy = p.policy;
  cfg.selector = p.selector;
  cfg.fixed_rate_overwrites = 25;
  cfg.saio_frac = 0.20;
  cfg.saio_bootstrap_app_io = 200;
  cfg.saga.garbage_frac = 0.10;
  cfg.saga.bootstrap_overwrites = 50;
  cfg.coupled.io_frac = 0.20;
  cfg.coupled.bootstrap_app_io = 200;
  cfg.estimator = EstimatorKind::kFgsHb;
  cfg.preamble_collections = 2;

  Simulation sim(cfg);
  SimResult r = sim.Run(trace);
  EXPECT_GT(r.collections, 0u) << p.label;

  const ObjectStore& store = sim.store();
  // 1. Everything reachable in truth still exists and is reachable.
  ReachabilityResult after = ScanReachability(store);
  for (ObjectId id = 1; id <= bare.max_object_id(); ++id) {
    if (id < truth.reachable.size() && truth.reachable[id]) {
      ASSERT_TRUE(store.Exists(id)) << p.label << " lost object " << id;
      EXPECT_TRUE(after.reachable[id]) << p.label << " unreached " << id;
    }
  }
  // 2. Marker accounting consistent with the scanner.
  EXPECT_EQ(after.unreachable_bytes, store.actual_garbage_bytes())
      << p.label;
  // 3. The reverse index survived all the churn.
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    for (ObjectId target : store.object(id).slots) {
      if (target == kNullObject) continue;
      ASSERT_TRUE(store.Exists(target)) << p.label;
      const auto& in = store.object(target).in_refs;
      EXPECT_NE(std::find(in.begin(), in.end(), id), in.end()) << p.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, FuzzSimulation,
    ::testing::Values(
        FuzzComboParam{11, PolicyKind::kFixedRate,
                       SelectorKind::kUpdatedPointer, "fixed_up_11"},
        FuzzComboParam{12, PolicyKind::kFixedRate, SelectorKind::kRandom,
                       "fixed_rand_12"},
        FuzzComboParam{13, PolicyKind::kFixedRate,
                       SelectorKind::kRoundRobin, "fixed_rr_13"},
        FuzzComboParam{14, PolicyKind::kSaio,
                       SelectorKind::kUpdatedPointer, "saio_up_14"},
        FuzzComboParam{15, PolicyKind::kSaga,
                       SelectorKind::kUpdatedPointer, "saga_up_15"},
        FuzzComboParam{16, PolicyKind::kSaga, SelectorKind::kRandom,
                       "saga_rand_16"},
        FuzzComboParam{17, PolicyKind::kCoupled,
                       SelectorKind::kUpdatedPointer, "coupled_up_17"},
        FuzzComboParam{18, PolicyKind::kSaga,
                       SelectorKind::kMostGarbageOracle,
                       "saga_oracle_sel_18"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(FuzzWorkloadTest, DeterministicBySeed) {
  Trace a = MakeRandomGraph(FuzzOptions(42));
  Trace b = MakeRandomGraph(FuzzOptions(42));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(FuzzWorkloadTest, DifferentSeedsDiffer) {
  Trace a = MakeRandomGraph(FuzzOptions(1));
  Trace b = MakeRandomGraph(FuzzOptions(2));
  bool differ = a.size() != b.size();
  for (size_t i = 0; !differ && i < a.size(); ++i) {
    differ = !(a[i] == b[i]);
  }
  EXPECT_TRUE(differ);
}

TEST(FuzzWorkloadTest, ProducesGarbageAndCycles) {
  Trace t = MakeRandomGraph(FuzzOptions(3));
  Trace::Summary s = t.Summarize();
  EXPECT_GT(s.ground_truth_garbage_bytes, 0u);
  EXPECT_GT(s.creates, 100u);
  EXPECT_GT(s.write_refs, s.creates);  // relinks beyond initial links
}

}  // namespace
}  // namespace odbgc
