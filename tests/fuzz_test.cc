// Randomized safety harness: arbitrary graph surgery (cycles, shared
// structure, root changes) with exact ground truth, swept across seeds
// and policy configurations. If the collector, the reverse index, the
// markers, or the scanner ever disagree, these tests fail.

#include <algorithm>
#include <fstream>
#include <iterator>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "storage/reachability.h"
#include "tests/replay_test_util.h"
#include "workloads/fuzz.h"

namespace odbgc {
namespace {

StoreConfig FuzzStore() {
  StoreConfig cfg;
  cfg.partition_bytes = 8 * 1024;
  cfg.page_bytes = 1024;
  cfg.buffer_pages = 8;
  return cfg;
}

RandomGraphOptions FuzzOptions(uint64_t seed) {
  RandomGraphOptions o;
  o.seed = seed;
  o.operations = 1500;
  o.max_object_bytes = 700;
  return o;
}

class FuzzMarkers : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzMarkers, MarkersMatchScannerOnBareReplay) {
  Trace trace = MakeRandomGraph(FuzzOptions(GetParam()));
  ObjectStore store(FuzzStore());
  ReplayIntoStore(trace, &store);
  ReachabilityResult scan = ScanReachability(store);
  EXPECT_EQ(scan.unreachable_bytes, store.actual_garbage_bytes());
  EXPECT_EQ(scan.unreachable_objects,
            store.total_garbage_created() > 0
                ? scan.unreachable_objects  // tautology guard
                : 0u);
  EXPECT_GT(trace.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMarkers,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

struct FuzzComboParam {
  uint64_t seed;
  PolicyKind policy;
  SelectorKind selector;
  const char* label;
};

class FuzzSimulation : public ::testing::TestWithParam<FuzzComboParam> {};

TEST_P(FuzzSimulation, CollectorNeverEatsReachableObjects) {
  const FuzzComboParam& p = GetParam();
  Trace trace = MakeRandomGraph(FuzzOptions(p.seed));

  // Ground truth: the reachable set after a collector-free replay.
  ObjectStore bare(FuzzStore());
  ReplayIntoStore(trace, &bare);
  ReachabilityResult truth = ScanReachability(bare);

  SimConfig cfg;
  cfg.store = FuzzStore();
  cfg.policy = p.policy;
  cfg.selector = p.selector;
  cfg.fixed_rate_overwrites = 25;
  cfg.saio_frac = 0.20;
  cfg.saio_bootstrap_app_io = 200;
  cfg.saga.garbage_frac = 0.10;
  cfg.saga.bootstrap_overwrites = 50;
  cfg.coupled.io_frac = 0.20;
  cfg.coupled.bootstrap_app_io = 200;
  cfg.estimator = EstimatorKind::kFgsHb;
  cfg.preamble_collections = 2;

  Simulation sim(cfg);
  SimResult r = sim.Run(trace);
  EXPECT_GT(r.collections, 0u) << p.label;

  const ObjectStore& store = sim.store();
  // 1. Everything reachable in truth still exists and is reachable.
  ReachabilityResult after = ScanReachability(store);
  for (ObjectId id = 1; id <= bare.max_object_id(); ++id) {
    if (id < truth.reachable.size() && truth.reachable[id]) {
      ASSERT_TRUE(store.Exists(id)) << p.label << " lost object " << id;
      EXPECT_TRUE(after.reachable[id]) << p.label << " unreached " << id;
    }
  }
  // 2. Marker accounting consistent with the scanner.
  EXPECT_EQ(after.unreachable_bytes, store.actual_garbage_bytes())
      << p.label;
  // 3. The reverse index survived all the churn.
  for (ObjectId id = 1; id <= store.max_object_id(); ++id) {
    if (!store.Exists(id)) continue;
    for (const auto& [target, backref] : store.slots(id)) {
      if (target == kNullObject) continue;
      ASSERT_TRUE(store.Exists(target)) << p.label;
      const auto& in = store.in_refs(target);
      EXPECT_NE(std::find_if(in.begin(), in.end(),
                             [&](const InRef& ir) { return ir.src == id; }),
                in.end())
          << p.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, FuzzSimulation,
    ::testing::Values(
        FuzzComboParam{11, PolicyKind::kFixedRate,
                       SelectorKind::kUpdatedPointer, "fixed_up_11"},
        FuzzComboParam{12, PolicyKind::kFixedRate, SelectorKind::kRandom,
                       "fixed_rand_12"},
        FuzzComboParam{13, PolicyKind::kFixedRate,
                       SelectorKind::kRoundRobin, "fixed_rr_13"},
        FuzzComboParam{14, PolicyKind::kSaio,
                       SelectorKind::kUpdatedPointer, "saio_up_14"},
        FuzzComboParam{15, PolicyKind::kSaga,
                       SelectorKind::kUpdatedPointer, "saga_up_15"},
        FuzzComboParam{16, PolicyKind::kSaga, SelectorKind::kRandom,
                       "saga_rand_16"},
        FuzzComboParam{17, PolicyKind::kCoupled,
                       SelectorKind::kUpdatedPointer, "coupled_up_17"},
        FuzzComboParam{18, PolicyKind::kSaga,
                       SelectorKind::kMostGarbageOracle,
                       "saga_oracle_sel_18"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(FuzzWorkloadTest, DeterministicBySeed) {
  Trace a = MakeRandomGraph(FuzzOptions(42));
  Trace b = MakeRandomGraph(FuzzOptions(42));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(FuzzWorkloadTest, DifferentSeedsDiffer) {
  Trace a = MakeRandomGraph(FuzzOptions(1));
  Trace b = MakeRandomGraph(FuzzOptions(2));
  bool differ = a.size() != b.size();
  for (size_t i = 0; !differ && i < a.size(); ++i) {
    differ = !(a[i] == b[i]);
  }
  EXPECT_TRUE(differ);
}

TEST(FuzzWorkloadTest, ProducesGarbageAndCycles) {
  Trace t = MakeRandomGraph(FuzzOptions(3));
  Trace::Summary s = t.Summarize();
  EXPECT_GT(s.ground_truth_garbage_bytes, 0u);
  EXPECT_GT(s.creates, 100u);
  EXPECT_GT(s.write_refs, s.creates);  // relinks beyond initial links
}

// ---------------------------------------------------------------------
// Corrupt-trace corpora: the binary loader must reject every malformed
// variant with a typed error — never crash, assert, or over-allocate.

std::vector<unsigned char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path,
                   const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::string CorpusPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// A small valid trace (8 events = 16-byte header + 160 record bytes).
std::vector<unsigned char> ValidTraceBytes(const std::string& path) {
  Trace t;
  t.Append(CreateEvent(1, 100, 2));
  t.Append(CreateEvent(2, 60, 1));
  t.Append(AddRootEvent(1));
  t.Append(WriteRefEvent(1, 0, 2));
  t.Append(ReadEvent(2));
  t.Append(UpdateEvent(1));
  t.Append(GarbageMarkEvent(60, 1));
  t.Append(RemoveRootEvent(1));
  EXPECT_TRUE(t.SaveTo(path));
  return ReadAllBytes(path);
}

TEST(CorruptTraceTest, EveryTruncationIsATypedError) {
  std::string path = CorpusPath("truncated.trace");
  std::vector<unsigned char> good = ValidTraceBytes(path);
  ASSERT_EQ(good.size(), 16u + 8u * 20u);
  for (size_t len = 0; len < good.size(); ++len) {
    WriteAllBytes(path, std::vector<unsigned char>(good.begin(),
                                                   good.begin() + len));
    Trace out;
    TraceLoadError err = Trace::Load(path, &out);
    ASSERT_NE(err, TraceLoadError::kNone) << "length " << len;
    ASSERT_TRUE(out.empty()) << "length " << len;
    if (len < 16) {
      EXPECT_EQ(err, TraceLoadError::kTruncatedHeader) << "length " << len;
    } else {
      EXPECT_EQ(err, TraceLoadError::kTruncatedEvents) << "length " << len;
    }
  }
}

TEST(CorruptTraceTest, BadMagicAndVersion) {
  std::string path = CorpusPath("badmagic.trace");
  std::vector<unsigned char> good = ValidTraceBytes(path);

  std::vector<unsigned char> bad = good;
  bad[0] ^= 0xff;
  WriteAllBytes(path, bad);
  Trace out;
  EXPECT_EQ(Trace::Load(path, &out), TraceLoadError::kBadMagic);

  bad = good;
  bad[4] ^= 0xff;
  WriteAllBytes(path, bad);
  EXPECT_EQ(Trace::Load(path, &out), TraceLoadError::kBadVersion);
}

TEST(CorruptTraceTest, CountFieldLiesAreCaughtBeforeAllocation) {
  std::string path = CorpusPath("badcount.trace");
  std::vector<unsigned char> good = ValidTraceBytes(path);

  // Count inflated to the maximum: must be rejected by the overflow
  // guard, not attempted as a reserve of ~2^64 events.
  std::vector<unsigned char> bad = good;
  for (size_t i = 8; i < 16; ++i) bad[i] = 0xff;
  WriteAllBytes(path, bad);
  Trace out;
  EXPECT_EQ(Trace::Load(path, &out), TraceLoadError::kBadEventCount);

  // Count promises one event more than the file holds.
  bad = good;
  bad[8] = 9;
  WriteAllBytes(path, bad);
  EXPECT_EQ(Trace::Load(path, &out), TraceLoadError::kTruncatedEvents);

  // Count admits one event fewer: the leftover record bytes are trailing
  // garbage, not silently ignored data.
  bad = good;
  bad[8] = 7;
  WriteAllBytes(path, bad);
  EXPECT_EQ(Trace::Load(path, &out), TraceLoadError::kTrailingBytes);
}

TEST(CorruptTraceTest, BadEventKindAndTrailingBytes) {
  std::string path = CorpusPath("badkind.trace");
  std::vector<unsigned char> good = ValidTraceBytes(path);

  std::vector<unsigned char> bad = good;
  bad[16] = 0xfe;  // first record's kind
  WriteAllBytes(path, bad);
  Trace out;
  EXPECT_EQ(Trace::Load(path, &out), TraceLoadError::kBadEventKind);
  EXPECT_TRUE(out.empty());

  bad = good;
  bad.push_back(0x00);
  WriteAllBytes(path, bad);
  EXPECT_EQ(Trace::Load(path, &out), TraceLoadError::kTrailingBytes);

  EXPECT_EQ(Trace::Load(CorpusPath("no-such-file.trace"), &out),
            TraceLoadError::kOpenFailed);
}

TEST(CorruptTraceTest, SingleByteFlipSweepNeverCrashesLoader) {
  std::string path = CorpusPath("byteflip.trace");
  std::vector<unsigned char> good = ValidTraceBytes(path);
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::vector<unsigned char> bad = good;
    bad[pos] ^= 0xff;
    WriteAllBytes(path, bad);
    Trace out;
    TraceLoadError err = Trace::Load(path, &out);
    if (err == TraceLoadError::kNone) {
      // A flip inside an event payload is indistinguishable from valid
      // data; the structure must still be intact.
      EXPECT_EQ(out.size(), 8u) << "pos " << pos;
    } else {
      EXPECT_TRUE(out.empty()) << "pos " << pos;
    }
  }
}

TEST(CorruptTraceTest, ErrorNamesAreStable) {
  EXPECT_STREQ(TraceLoadErrorName(TraceLoadError::kNone), "none");
  EXPECT_STREQ(TraceLoadErrorName(TraceLoadError::kBadMagic), "bad-magic");
  EXPECT_STREQ(TraceLoadErrorName(TraceLoadError::kTruncatedEvents),
               "truncated-events");
  EXPECT_STREQ(TraceLoadErrorName(TraceLoadError::kTrailingBytes),
               "trailing-bytes");
}

}  // namespace
}  // namespace odbgc
