#include <gtest/gtest.h>

#include "oo7/generator.h"
#include "sim/runner.h"
#include "sim/simulation.h"

namespace odbgc {
namespace {

SimConfig TinyConfig() {
  SimConfig cfg;
  cfg.store.partition_bytes = 16 * 1024;
  cfg.store.page_bytes = 2 * 1024;
  cfg.store.buffer_pages = 8;
  cfg.preamble_collections = 2;
  return cfg;
}

// A hand-rolled trace: a root holding one slot that is repeatedly
// repointed at fresh objects, turning the old target into garbage.
Trace ChurnTrace(int cycles, uint32_t object_bytes = 500) {
  Trace t;
  t.Append(CreateEvent(1, 100, 1));
  t.Append(AddRootEvent(1));
  uint32_t next_id = 2;
  uint32_t current = 0;
  for (int i = 0; i < cycles; ++i) {
    uint32_t fresh = next_id++;
    t.Append(CreateEvent(fresh, object_bytes, 0));
    t.Append(WriteRefEvent(1, 0, fresh));
    if (current != 0) {
      t.Append(GarbageMarkEvent(object_bytes, 1));
    }
    t.Append(ReadEvent(fresh));
    current = fresh;
  }
  return t;
}

TEST(SimulationTest, FixedRateCollectsAtConfiguredRate) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 10;
  Trace t = ChurnTrace(200);
  SimResult r = RunSimulation(cfg, t);
  // 199 overwrites at one per cycle -> about 19 collections.
  EXPECT_GE(r.collections, 15u);
  EXPECT_LE(r.collections, 21u);
}

TEST(SimulationTest, CollectionsReclaimChurnGarbage) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 20;
  Trace t = ChurnTrace(300);
  SimResult r = RunSimulation(cfg, t);
  EXPECT_GT(r.total_reclaimed_bytes, 0u);
  // Outstanding garbage stays bounded by roughly one interval's churn
  // plus one partition's worth of stragglers.
  EXPECT_LT(r.final_actual_garbage_bytes, 40u * 500u);
}

TEST(SimulationTest, PreambleWindowExcludesColdStart) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 10;
  cfg.preamble_collections = 5;
  Trace t = ChurnTrace(200);
  SimResult r = RunSimulation(cfg, t);
  ASSERT_TRUE(r.window_opened);
  EXPECT_LT(r.measured_app_io, r.clock.app_io);
  EXPECT_GT(r.garbage_pct.count(), 0u);
}

TEST(SimulationTest, WindowFallsBackToWholeRunWithoutEnoughCollections) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 1000000;  // never collects
  Trace t = ChurnTrace(50);
  SimResult r = RunSimulation(cfg, t);
  EXPECT_EQ(r.collections, 0u);
  EXPECT_FALSE(r.window_opened);
  // The preamble never completed, so measurements cover the whole run.
  EXPECT_GT(r.garbage_pct.count(), 0u);
  EXPECT_EQ(r.measured_app_io, r.clock.app_io);
  EXPECT_EQ(r.achieved_gc_io_pct, 0.0);
}

TEST(SimulationTest, CollectionLogRecordsEachCollection) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 25;
  Trace t = ChurnTrace(200);
  SimResult r = RunSimulation(cfg, t);
  ASSERT_EQ(r.log.size(), r.collections);
  uint64_t prev_time = 0;
  for (size_t i = 0; i < r.log.size(); ++i) {
    EXPECT_EQ(r.log[i].index, i + 1);
    EXPECT_GE(r.log[i].overwrite_time, prev_time);
    prev_time = r.log[i].overwrite_time;
  }
}

TEST(SimulationTest, SagaOracleSeesExactGarbage) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kSaga;
  cfg.estimator = EstimatorKind::kOracle;
  cfg.saga.garbage_frac = 0.10;
  cfg.saga.bootstrap_overwrites = 20;
  Trace t = ChurnTrace(3000);
  SimResult r = RunSimulation(cfg, t);
  ASSERT_GT(r.collections, 2u);
  // Oracle estimate equals ground truth at every logged collection.
  for (const CollectionRecord& rec : r.log) {
    EXPECT_NEAR(rec.estimated_garbage_pct, rec.actual_garbage_pct, 1e-9);
  }
}

TEST(SimulationTest, SaioControlsIoShareOnChurn) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kSaio;
  cfg.saio_frac = 0.20;
  cfg.saio_bootstrap_app_io = 200;
  cfg.preamble_collections = 3;
  Trace t = ChurnTrace(3000);
  SimResult r = RunSimulation(cfg, t);
  ASSERT_TRUE(r.window_opened);
  EXPECT_NEAR(r.achieved_gc_io_pct, 20.0, 6.0);
}

TEST(SimulationTest, PhaseMarksRecorded) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 50;
  Trace t;
  t.Append(PhaseMarkEvent(Phase::kGenDb));
  Trace churn = ChurnTrace(100);
  for (const auto& e : churn.events()) t.Append(e);
  t.Append(PhaseMarkEvent(Phase::kReorg1));
  SimResult r = RunSimulation(cfg, t);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].phase, Phase::kGenDb);
  EXPECT_EQ(r.phases[1].phase, Phase::kReorg1);
}

TEST(SimulationTest, PhaseStatsPartitionTheRun) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 50;
  Oo7Generator gen(Oo7Params::Tiny(), 77);
  Trace trace = gen.GenerateFullApplication();
  SimResult r = RunSimulation(cfg, trace);

  ASSERT_EQ(r.phase_stats.size(), 4u);
  EXPECT_EQ(r.phase_stats[0].phase, Phase::kGenDb);
  EXPECT_EQ(r.phase_stats[1].phase, Phase::kReorg1);
  EXPECT_EQ(r.phase_stats[2].phase, Phase::kTraverse);
  EXPECT_EQ(r.phase_stats[3].phase, Phase::kReorg2);

  // Segments partition the whole run.
  uint64_t events = 0;
  uint64_t app_io = 0;
  uint64_t gc_io = 0;
  uint64_t overwrites = 0;
  uint64_t collections = 0;
  for (const PhaseStats& p : r.phase_stats) {
    events += p.events;
    app_io += p.app_io;
    gc_io += p.gc_io;
    overwrites += p.pointer_overwrites;
    collections += p.collections;
  }
  EXPECT_EQ(app_io, r.clock.app_io);
  EXPECT_EQ(gc_io, r.clock.gc_io);
  EXPECT_EQ(overwrites, r.clock.pointer_overwrites);
  EXPECT_EQ(collections, r.collections);
  // Every event after the first phase mark is inside some segment.
  EXPECT_GE(events + 4, r.clock.events);

  // Traverse is read-only: no overwrites, no garbage reclaimed.
  EXPECT_EQ(r.phase_stats[2].pointer_overwrites, 0u);
  EXPECT_GT(r.phase_stats[2].app_io, 0u);
  // Reorgs do the churn.
  EXPECT_GT(r.phase_stats[1].pointer_overwrites, 0u);
  EXPECT_GT(r.phase_stats[3].pointer_overwrites, 0u);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kSaga;
  cfg.estimator = EstimatorKind::kFgsHb;
  Oo7Generator gen(Oo7Params::Tiny(), 33);
  Trace t = gen.GenerateFullApplication();
  SimResult a = RunSimulation(cfg, t);
  SimResult b = RunSimulation(cfg, t);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.clock.total_io(), b.clock.total_io());
  EXPECT_EQ(a.total_reclaimed_bytes, b.total_reclaimed_bytes);
  EXPECT_DOUBLE_EQ(a.garbage_pct.mean(), b.garbage_pct.mean());
}

TEST(SimulationTest, EstimatorHookWiredForSaga) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kSaga;
  GarbageEstimator* hook = nullptr;
  auto policy = MakePolicy(cfg, &hook);
  EXPECT_NE(hook, nullptr);
  cfg.policy = PolicyKind::kSaio;
  auto policy2 = MakePolicy(cfg, &hook);
  EXPECT_EQ(hook, nullptr);
}

TEST(RunnerTest, RunOo7ManyAggregatesAcrossSeeds) {
  SimConfig cfg = TinyConfig();
  cfg.policy = PolicyKind::kFixedRate;
  cfg.fixed_rate_overwrites = 100;
  cfg.preamble_collections = 2;
  AggregateResult agg = RunOo7Many(cfg, Oo7Params::Tiny(), 1, 3);
  ASSERT_EQ(agg.runs.size(), 3u);
  EXPECT_LE(agg.achieved_io_pct.min, agg.achieved_io_pct.mean);
  EXPECT_LE(agg.achieved_io_pct.mean, agg.achieved_io_pct.max);
  EXPECT_GT(agg.collections.mean, 0.0);
}

}  // namespace
}  // namespace odbgc
