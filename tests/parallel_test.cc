#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/parallel.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "util/json.h"

namespace odbgc {
namespace {

SimConfig TinySagaConfig(EstimatorKind est) {
  SimConfig cfg;
  cfg.store.partition_bytes = 16 * 1024;
  cfg.store.page_bytes = 2 * 1024;
  cfg.store.buffer_pages = 8;
  cfg.preamble_collections = 3;
  cfg.policy = PolicyKind::kSaga;
  cfg.estimator = est;
  cfg.fgs_history_factor = 0.8;
  cfg.saga.garbage_frac = 0.10;
  return cfg;
}

SimConfig TinySaioConfig() {
  SimConfig cfg;
  cfg.store.partition_bytes = 16 * 1024;
  cfg.store.page_bytes = 2 * 1024;
  cfg.store.buffer_pages = 8;
  cfg.preamble_collections = 3;
  cfg.policy = PolicyKind::kSaio;
  cfg.saio_frac = 0.10;
  return cfg;
}

// Every observable a table would print, compared field by field.
void ExpectSameResult(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.clock.app_io, b.clock.app_io);
  EXPECT_EQ(a.clock.gc_io, b.clock.gc_io);
  EXPECT_EQ(a.clock.pointer_overwrites, b.clock.pointer_overwrites);
  EXPECT_EQ(a.achieved_gc_io_pct, b.achieved_gc_io_pct);
  EXPECT_EQ(a.garbage_pct.mean(), b.garbage_pct.mean());
  EXPECT_EQ(a.garbage_pct.min(), b.garbage_pct.min());
  EXPECT_EQ(a.garbage_pct.max(), b.garbage_pct.max());
  EXPECT_EQ(a.total_reclaimed_bytes, b.total_reclaimed_bytes);
  EXPECT_EQ(a.final_actual_garbage_bytes, b.final_actual_garbage_bytes);
  EXPECT_EQ(a.log.size(), b.log.size());
  for (size_t i = 0; i < a.log.size() && i < b.log.size(); ++i) {
    EXPECT_EQ(a.log[i].index, b.log[i].index);
    EXPECT_EQ(a.log[i].actual_garbage_pct, b.log[i].actual_garbage_pct);
    EXPECT_EQ(a.log[i].estimated_garbage_pct, b.log[i].estimated_garbage_pct);
  }
}

TEST(ResolveThreadCountTest, PositivePassesThroughElseHardware) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexInOrderSlots) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<size_t> out(100, 0);
  pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelForZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexAndStaysUsable) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(10, [&](size_t i) {
      if (i == 2 || i == 7) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      ++completed;
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");  // lowest failing index wins
  }
  EXPECT_EQ(completed.load(), 8);  // the batch drained despite the throws

  // The pool survives a throwing batch.
  std::atomic<int> again{0};
  pool.ParallelFor(5, [&](size_t) { ++again; });
  EXPECT_EQ(again.load(), 5);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEverything) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 10; ++i) {
    pool.Submit([&sum, i] { sum += i; });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 55);
}

TEST(TraceCacheTest, GeneratesOncePerKeyAndCountsHits) {
  TraceCache cache;
  Oo7Params params = Oo7Params::Tiny();
  std::shared_ptr<const Trace> a = cache.GetOo7(params, 1);
  std::shared_ptr<const Trace> b = cache.GetOo7(params, 1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // same immutable trace, not a copy
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  // A different seed or different params is a different trace.
  std::shared_ptr<const Trace> c = cache.GetOo7(params, 2);
  EXPECT_NE(a.get(), c.get());
  Oo7Params denser = params;
  denser.num_conn_per_atomic += 1;
  std::shared_ptr<const Trace> d = cache.GetOo7(denser, 1);
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(TraceCacheTest, ConcurrentRequestsShareOneGeneration) {
  TraceCache cache;
  Oo7Params params = Oo7Params::Tiny();
  ThreadPool pool(8);
  std::vector<std::shared_ptr<const Trace>> got(32);
  pool.ParallelFor(got.size(), [&](size_t i) {
    got[i] = cache.GetOo7(params, 42);
  });
  for (const auto& t : got) {
    EXPECT_EQ(t.get(), got[0].get());
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), got.size() - 1);
}

TEST(SweepRunnerTest, EmptyGridYieldsEmptyResults) {
  SweepRunner runner(2);
  std::vector<SimResult> results = runner.Run({});
  EXPECT_TRUE(results.empty());
}

TEST(SweepRunnerTest, RunOneMatchesRunOo7Once) {
  Oo7Params params = Oo7Params::Tiny();
  SimConfig cfg = TinySagaConfig(EstimatorKind::kFgsHb);
  SimResult serial = RunOo7Once(cfg, params, 5);
  SweepRunner runner(3);
  SimResult pooled = runner.RunOne(cfg, params, 5);
  ExpectSameResult(serial, pooled);
}

TEST(SweepRunnerTest, GridResultsLandInSubmissionOrder) {
  Oo7Params params = Oo7Params::Tiny();
  std::vector<SweepPoint> points;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SweepPoint p;
    p.config = TinySagaConfig(EstimatorKind::kOracle);
    p.params = params;
    p.seed = seed;
    points.push_back(p);
  }
  SweepRunner runner(4);
  std::vector<SimResult> results = runner.Run(points);
  ASSERT_EQ(results.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    SimResult serial = RunOo7Once(points[i].config, params, points[i].seed);
    ExpectSameResult(serial, results[i]);
  }
}

void ExpectSameAggregate(const AggregateResult& a, const AggregateResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (size_t i = 0; i < a.runs.size(); ++i) {
    ExpectSameResult(a.runs[i], b.runs[i]);
  }
  EXPECT_EQ(a.achieved_io_pct.mean, b.achieved_io_pct.mean);
  EXPECT_EQ(a.mean_garbage_pct.mean, b.mean_garbage_pct.mean);
  EXPECT_EQ(a.mean_garbage_pct.min, b.mean_garbage_pct.min);
  EXPECT_EQ(a.mean_garbage_pct.max, b.mean_garbage_pct.max);
  EXPECT_EQ(a.collections.mean, b.collections.mean);
  EXPECT_EQ(a.total_io.mean, b.total_io.mean);
}

// The tentpole guarantee: RunOo7Many is byte-identical for any thread
// count. Exercised for both adaptive policies.
TEST(DeterminismTest, SagaAggregateIdenticalAcrossThreadCounts) {
  Oo7Params params = Oo7Params::Tiny();
  SimConfig cfg = TinySagaConfig(EstimatorKind::kFgsHb);
  AggregateResult serial = RunOo7Many(cfg, params, 1, 4, /*threads=*/1);
  AggregateResult pooled = RunOo7Many(cfg, params, 1, 4, /*threads=*/4);
  ExpectSameAggregate(serial, pooled);
}

TEST(DeterminismTest, SaioAggregateIdenticalAcrossThreadCounts) {
  Oo7Params params = Oo7Params::Tiny();
  SimConfig cfg = TinySaioConfig();
  AggregateResult serial = RunOo7Many(cfg, params, 10, 4, /*threads=*/1);
  AggregateResult pooled = RunOo7Many(cfg, params, 10, 4, /*threads=*/3);
  ExpectSameAggregate(serial, pooled);
}

// Regression for the failed-generation retry path: a generator that
// throws must erase its slot so a later request regenerates instead of
// reporting the stale failure forever.
TEST(TraceCacheTest, FailedGenerationLeavesNoPoisonedSlot) {
  TraceCache cache;
  Oo7Params params = Oo7Params::Tiny();
  std::atomic<int> calls{0};
  cache.set_generator_for_test(
      [&calls](const Oo7Params& p,
               uint64_t seed) -> std::shared_ptr<const Trace> {
        if (calls.fetch_add(1) == 0) {
          throw std::runtime_error("simulated generation failure");
        }
        return GenerateOo7Trace(p, seed);
      });
  EXPECT_THROW(cache.GetOo7(params, 1), std::runtime_error);
  std::shared_ptr<const Trace> t = cache.GetOo7(params, 1);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(cache.misses(), 2u);  // the poisoned slot did not count as a hit
}

TEST(TraceCacheTest, NullGeneratorResultIsAFailureNotACrash) {
  TraceCache cache;
  Oo7Params params = Oo7Params::Tiny();
  bool first = true;
  cache.set_generator_for_test(
      [&first](const Oo7Params& p,
               uint64_t seed) -> std::shared_ptr<const Trace> {
        if (first) {
          first = false;
          return nullptr;
        }
        return GenerateOo7Trace(p, seed);
      });
  EXPECT_THROW(cache.GetOo7(params, 2), std::runtime_error);
  EXPECT_NE(cache.GetOo7(params, 2), nullptr);  // slot was erased, retried
}

// --- sweep failure isolation ---------------------------------------------

TEST(SweepRunnerTest, FailedRunIsIsolatedAndOthersMatchCleanSweep) {
  Oo7Params params = Oo7Params::Tiny();
  std::vector<SweepPoint> points;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SweepPoint p;
    p.config = TinySagaConfig(EstimatorKind::kFgsHb);
    p.params = params;
    p.seed = seed;
    points.push_back(p);
  }
  for (int threads : {1, 4}) {
    SweepRunner clean_runner(threads);
    std::vector<RunOutcome> clean = clean_runner.RunWithStatus(points);
    ASSERT_EQ(clean.size(), points.size());
    for (const RunOutcome& out : clean) {
      EXPECT_TRUE(out.status.ok());
    }

    std::vector<SweepPoint> broken = points;
    broken[2].config.store.fault.crash_at_event = 500;
    SweepRunner broken_runner(threads);
    std::vector<RunOutcome> outcomes = broken_runner.RunWithStatus(broken);
    ASSERT_EQ(outcomes.size(), points.size());
    EXPECT_TRUE(outcomes[2].status.failed);
    EXPECT_EQ(outcomes[2].status.error_kind, SimErrorKind::kCrashInjected);
    EXPECT_NE(outcomes[2].exception, nullptr);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (i == 2) continue;
      EXPECT_TRUE(outcomes[i].status.ok()) << "run " << i;
      ExpectSameResult(clean[i].result, outcomes[i].result);
    }
  }
}

TEST(SweepRunnerTest, RunFailFastRethrowsTheFailure) {
  Oo7Params params = Oo7Params::Tiny();
  SweepPoint p;
  p.config = TinySaioConfig();
  p.config.store.fault.crash_at_event = 200;
  p.params = params;
  p.seed = 1;
  SweepRunner runner(2);
  EXPECT_THROW(runner.Run({p}), SimCrashInjected);
}

TEST(SweepRunnerTest, TransientFailureIsRetriedToSuccess) {
  Oo7Params params = Oo7Params::Tiny();
  SweepPoint p;
  p.config = TinySaioConfig();
  p.params = params;
  p.seed = 3;
  SweepRunner runner(1);
  std::atomic<int> calls{0};
  runner.cache().set_generator_for_test(
      [&calls](const Oo7Params& pp,
               uint64_t s) -> std::shared_ptr<const Trace> {
        if (calls.fetch_add(1) == 0) {
          throw SimDeadlineExceeded(1.0, 1.0);  // transient by contract
        }
        return GenerateOo7Trace(pp, s);
      });
  SweepOptions opt;
  opt.max_attempts = 3;
  std::vector<RunOutcome> outcomes = runner.RunWithStatus({p}, opt);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[0].status.attempts, 2);
  ExpectSameResult(outcomes[0].result, RunOo7Once(p.config, params, 3));
}

TEST(SweepRunnerTest, DeterministicFailureIsNotRetried) {
  Oo7Params params = Oo7Params::Tiny();
  SweepPoint p;
  p.config = TinySaioConfig();
  p.config.store.fault.crash_at_event = 100;  // would crash identically again
  p.params = params;
  p.seed = 1;
  SweepOptions opt;
  opt.max_attempts = 3;
  SweepRunner runner(2);
  std::vector<RunOutcome> outcomes = runner.RunWithStatus({p}, opt);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].status.failed);
  EXPECT_EQ(outcomes[0].status.error_kind, SimErrorKind::kCrashInjected);
  EXPECT_EQ(outcomes[0].status.attempts, 1);
}

// Resumable sweeps: a sweep whose runs all "die" mid-trace, rerun with
// the same checkpoint prefix, finishes byte-identical to a clean sweep.
TEST(SweepRunnerTest, CrashedSweepResumesByteIdentical) {
  Oo7Params params = Oo7Params::Tiny();
  std::vector<SweepPoint> points;
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    SweepPoint p;
    p.config = TinySaioConfig();
    p.params = params;
    p.seed = seed;
    points.push_back(p);
  }
  const std::string prefix = ::testing::TempDir() + "odbgc_sweep";
  for (size_t i = 0; i < points.size(); ++i) {
    const std::string ckpt = prefix + ".run" + std::to_string(i) + ".ckpt";
    std::remove(ckpt.c_str());
    std::remove((ckpt + ".prev").c_str());
  }
  SweepOptions opt;
  opt.checkpoint_prefix = prefix;
  opt.checkpoint_every = 301;

  SweepRunner clean_runner(2);
  std::vector<RunOutcome> clean = clean_runner.RunWithStatus(points);

  std::vector<SweepPoint> crashing = points;
  for (SweepPoint& p : crashing) {
    p.config.store.fault.crash_at_event = 1000;
  }
  SweepRunner crash_runner(2);
  std::vector<RunOutcome> crashed = crash_runner.RunWithStatus(crashing, opt);
  for (const RunOutcome& out : crashed) {
    EXPECT_TRUE(out.status.failed);
    EXPECT_EQ(out.status.error_kind, SimErrorKind::kCrashInjected);
  }

  SweepRunner resume_runner(2);
  std::vector<RunOutcome> resumed = resume_runner.RunWithStatus(points, opt);
  ASSERT_EQ(resumed.size(), clean.size());
  for (size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_TRUE(resumed[i].status.ok()) << "run " << i;
    ExpectSameResult(clean[i].result, resumed[i].result);
  }
  for (size_t i = 0; i < points.size(); ++i) {
    const std::string ckpt = prefix + ".run" + std::to_string(i) + ".ckpt";
    std::remove(ckpt.c_str());
    std::remove((ckpt + ".prev").c_str());
  }
}

// --- sweep report JSON -----------------------------------------------------

TEST(SweepReportTest, CarriesPerRunStatusAndSummary) {
  Oo7Params params = Oo7Params::Tiny();
  std::vector<SweepPoint> points;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SweepPoint p;
    p.config = TinySaioConfig();
    p.params = params;
    p.seed = seed;
    points.push_back(p);
  }
  points[1].config.store.fault.crash_at_event = 300;
  SweepRunner runner(2);
  std::vector<RunOutcome> outcomes = runner.RunWithStatus(points);

  std::string json = SweepReportToJson(points, outcomes);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonValue::Parse(json, &doc, &err)) << err;

  const JsonValue* runs = doc.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->is_array());
  ASSERT_EQ(runs->array_items().size(), 3u);
  const JsonValue& ok_run = runs->array_items()[0];
  EXPECT_EQ(ok_run.Find("status")->string_value(), "ok");
  EXPECT_TRUE(ok_run.Has("report"));
  const JsonValue& bad_run = runs->array_items()[1];
  EXPECT_EQ(bad_run.Find("status")->string_value(), "failed");
  EXPECT_EQ(bad_run.Find("error_kind")->string_value(), "crash_injected");
  EXPECT_FALSE(bad_run.Has("report"));

  const JsonValue* summary = doc.Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("total")->number_value(), 3.0);
  EXPECT_EQ(summary->Find("ok")->number_value(), 2.0);
  EXPECT_EQ(summary->Find("failed")->number_value(), 1.0);
}

TEST(SweepRunnerTest, InvalidOptionsAreRejectedWithTypedError) {
  SweepRunner runner(1);
  SweepPoint p;
  p.config = TinySaioConfig();
  p.params = Oo7Params::Tiny();
  p.seed = 1;

  SweepOptions bad_attempts;
  bad_attempts.max_attempts = 0;
  EXPECT_THROW(runner.RunWithStatus({p}, bad_attempts), SimInvalidConfig);

  SweepOptions bad_backoff;
  bad_backoff.retry_backoff_ms = -1.0;
  EXPECT_THROW(runner.RunWithStatus({p}, bad_backoff), SimInvalidConfig);

  SweepOptions bad_deadline;
  bad_deadline.run_deadline_ms = -5.0;
  EXPECT_THROW(runner.RunWithStatus({p}, bad_deadline), SimInvalidConfig);

  SweepOptions bad_checkpoint;
  bad_checkpoint.checkpoint_every = 100;  // but no prefix
  EXPECT_THROW(runner.RunWithStatus({p}, bad_checkpoint), SimInvalidConfig);

  // The rejection happens before any run: the runner stays usable and the
  // error is classified + non-transient.
  try {
    runner.RunWithStatus({p}, bad_attempts);
    FAIL() << "expected SimInvalidConfig";
  } catch (const SimInvalidConfig& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kInvalidConfig);
    EXPECT_FALSE(e.transient());
  }
  std::vector<RunOutcome> ok = runner.RunWithStatus({p}, SweepOptions{});
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0].status.ok());
}

TEST(SweepRunnerTest, AbsurdThreadCountIsRejectedAtConstruction) {
  EXPECT_THROW(SweepRunner(1 << 20), SimInvalidConfig);
  EXPECT_EQ(std::string(SimErrorKindName(SimErrorKind::kInvalidConfig)),
            "invalid_config");
}

TEST(DeterminismTest, RepeatedPooledRunsAgree) {
  Oo7Params params = Oo7Params::Tiny();
  SimConfig cfg = TinySagaConfig(EstimatorKind::kCgsCb);
  SweepRunner runner(4);
  AggregateResult first = runner.RunMany(cfg, params, 1, 3);
  AggregateResult second = runner.RunMany(cfg, params, 1, 3);  // cache hits
  ExpectSameAggregate(first, second);
  EXPECT_GT(runner.cache().hits(), 0u);
}

TEST(TraceCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  TraceCache cache;
  // Fixed-size synthetic traces so the byte arithmetic is exact.
  cache.set_generator_for_test([](const Oo7Params&, uint64_t seed) {
    auto t = std::make_shared<Trace>();
    for (int i = 0; i < 100; ++i) {
      t->Append(ReadEvent(static_cast<uint32_t>(seed)));
    }
    return t;
  });
  Oo7Params params = Oo7Params::Tiny();
  std::shared_ptr<const Trace> a = cache.GetOo7(params, 1);
  const size_t one_trace = a->size() * sizeof(TraceEvent);
  // Room for exactly two traces.
  cache.set_byte_budget(2 * one_trace);
  cache.GetOo7(params, 2);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.retained_bytes(), 2 * one_trace);

  // Touch seed 1 so seed 2 is the LRU victim when seed 3 arrives.
  cache.GetOo7(params, 1);
  cache.GetOo7(params, 3);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.retained_bytes(), 2 * one_trace);

  // Seed 1 survived (hit); seed 2 was evicted (regenerates as a miss).
  const uint64_t misses_before = cache.misses();
  std::shared_ptr<const Trace> a2 = cache.GetOo7(params, 1);
  EXPECT_EQ(a2.get(), a.get());
  EXPECT_EQ(cache.misses(), misses_before);
  cache.GetOo7(params, 2);
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_EQ(cache.evictions(), 2u);  // the insert pushed out another entry
}

TEST(TraceCacheTest, EvictionNeverInvalidatesOutstandingReaders) {
  TraceCache cache;
  Oo7Params params = Oo7Params::Tiny();
  std::shared_ptr<const Trace> held = cache.GetOo7(params, 10);
  const size_t held_size = held->size();
  // A budget of one byte evicts everything the cache retains — but the
  // shared_ptr handed out above keeps the trace alive for its readers.
  cache.set_byte_budget(1);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_EQ(cache.retained_bytes(), 0u);
  EXPECT_EQ(held->size(), held_size);
  EXPECT_EQ(held.use_count(), 1);

  // An over-budget generation still serves its requester, then drops.
  std::shared_ptr<const Trace> again = cache.GetOo7(params, 10);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->size(), held_size);
  EXPECT_NE(again.get(), held.get());  // regenerated, not resurrected
  EXPECT_EQ(cache.retained_bytes(), 0u);
}

TEST(TraceCacheTest, ZeroBudgetRetainsEverything) {
  TraceCache cache;
  Oo7Params params = Oo7Params::Tiny();
  cache.GetOo7(params, 1);
  cache.GetOo7(params, 2);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_GT(cache.retained_bytes(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  cache.GetOo7(params, 1);
  EXPECT_EQ(cache.hits(), 1u);
}

}  // namespace
}  // namespace odbgc
